// Command vlqload is the serving layer's load harness: it drives a
// vlqserve-shaped server with concurrent clients across three legs and
// writes BENCH_serve.json with latency percentiles, throughput, and the
// ledger/coalescing hit rates that prove the hardening works under load.
//
// The three legs, in order:
//
//	cold      distinct-seed sweeps fired by -clients concurrent workers:
//	          every cell misses the ledger and runs on the engine. This is
//	          the baseline the dedup layers are measured against.
//	repeat    the same sweeps resubmitted: every cell is served from the
//	          result ledger without engine work. The p50 ratio against the
//	          cold leg is the harness's headline number.
//	coalesce  -clients identical fresh-seed sweeps fired simultaneously:
//	          the first to plan each cell runs it, everyone else shares
//	          the in-flight execution (or reads the ledger just after).
//
// Each leg's section of the report carries request-latency p50/p95/p99,
// cells/sec, and the /v1/stats deltas it incurred (engine builds, decoded
// shots, ledger hits, coalesce hits). The harness follows the
// prepare → drive → monitor → parse shape: prepare builds the request
// bodies and (by default) an in-process server; drive fires the requests
// and records per-request wall time; monitor snapshots /v1/stats around
// every leg and scrapes /metrics once at the end (a missing exposition
// family fails the run); parse computes percentiles, writes -out, and
// prints one machine-parseable BENCHLINE to stdout for CI logs.
//
// Against an external server (-addr), the harness skips the in-process
// setup and drives whatever is listening; note the stats deltas are then
// polluted by any other traffic the server is taking.
//
// Usage:
//
//	vlqload [-out BENCH_serve.json] [-clients 8] [-requests 24] [-trials 500] [-ledger path] [-addr host:port]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/montecarlo"
	"repro/internal/serve"
)

type legReport struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Cells    int     `json:"cells"`
	Errors   int     `json:"errors"`
	WallMS   float64 `json:"wall_ms"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	CellsSec float64 `json:"cells_per_sec"`
	// Stats deltas across the leg: how the cells were actually served.
	EngineBuilds int64 `json:"engine_builds"`
	DecodeShots  int64 `json:"decode_shots"`
	LedgerHits   int64 `json:"ledger_hits"`
	CoalesceHits int64 `json:"coalesce_hits"`
}

type report struct {
	Clients  int         `json:"clients"`
	Requests int         `json:"requests"`
	Trials   int         `json:"trials"`
	Legs     []legReport `json:"legs"`
	// RepeatSpeedupP50 is cold p50 / repeat p50 — the headline: how much
	// faster an already-answered sweep returns.
	RepeatSpeedupP50 float64 `json:"repeat_speedup_p50"`
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "report output path")
	addr := flag.String("addr", "", "drive an external server at this base URL or host:port (empty = in-process)")
	clients := flag.Int("clients", 8, "concurrent client workers")
	requests := flag.Int("requests", 24, "sweep submissions in the cold and repeat legs")
	trials := flag.Int("trials", 500, "Monte-Carlo trials per cell")
	ledgerPath := flag.String("ledger", "", "JSONL ledger file for the in-process server (empty = in-memory)")
	flag.Parse()
	if *clients < 1 || *requests < 1 || *trials < 1 {
		fmt.Fprintln(os.Stderr, "vlqload: -clients, -requests, and -trials must be positive")
		os.Exit(2)
	}

	// ── prepare ─────────────────────────────────────────────────────────
	base := *addr
	if base == "" {
		var ledger serve.Ledger
		if *ledgerPath != "" {
			var err error
			if ledger, err = serve.OpenFileLedger(*ledgerPath); err != nil {
				fatal(err)
			}
			defer ledger.Close()
		}
		srv := serve.NewServer(serve.Config{
			Engine:            montecarlo.NewEngine(),
			Ledger:            ledger,
			MaxConcurrentJobs: *clients,
			QueueDepth:        2 * *clients * *requests, // never 429 the harness
		})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		base = ts.URL
	} else if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	// Distinct seeds make the cold leg all engine work; the repeat leg
	// reuses the exact bodies. The grid is small (one distance, three
	// rates) so the harness measures serving overhead and dedup, not
	// decoder throughput — bench-decoder owns that.
	body := func(seed int64) string {
		return fmt.Sprintf(
			`{"scheme":"baseline","distances":[3],"rates":[0.004,0.008,0.016],"trials":%d,"seed":%d}`,
			*trials, seed)
	}
	coldBodies := make([]string, *requests)
	for i := range coldBodies {
		coldBodies[i] = body(1000 + int64(i))
	}
	// The coalesce leg: every client submits the same fresh-seed body whose
	// rate grid deliberately repeats one cell four times. The duplicates
	// are the guarantee — a job plans all its cells in one pass before any
	// decoding, so the first copy leads and the other three share its
	// in-flight execution even on a single-core runner, where
	// cross-request timing cannot be pinned (the leader's decode pool owns
	// the only P and follower requests only get scheduled in preemption
	// gaps). Cross-request coalescing still happens opportunistically on
	// top when cores allow; the rendezvous below maximizes its window.
	coalesceBody := fmt.Sprintf(
		`{"scheme":"baseline","distances":[3],"rates":[0.008,0.008,0.008,0.008],"trials":%d,"seed":9999999}`,
		20**trials)
	coalesceBodies := make([]string, *clients)
	for i := range coalesceBodies {
		coalesceBodies[i] = coalesceBody // identical on purpose
	}

	// ── drive + monitor ─────────────────────────────────────────────────
	rep := report{Clients: *clients, Requests: *requests, Trials: *trials}
	for _, l := range []struct {
		name       string
		bodies     []string
		rendezvous bool
	}{
		{"cold", coldBodies, false},
		{"repeat", coldBodies, false},
		{"coalesce", coalesceBodies, true},
	} {
		before := getStats(base)
		var lr legReport
		if l.rendezvous {
			lr = driveCoalesce(base, l.name, l.bodies)
		} else {
			lr = drive(base, l.name, l.bodies, *clients)
		}
		after := getStats(base)
		lr.EngineBuilds = after.Engine.Builds - before.Engine.Builds
		lr.DecodeShots = after.Decode.Shots - before.Decode.Shots
		lr.LedgerHits = after.Ledger.Hits - before.Ledger.Hits
		lr.CoalesceHits = after.Ledger.CoalesceHits - before.Ledger.CoalesceHits
		rep.Legs = append(rep.Legs, lr)
		fmt.Fprintf(os.Stderr,
			"vlqload: %-8s %d reqs %d cells in %.0fms  p50 %.2fms p95 %.2fms p99 %.2fms  ledger %d coalesce %d engine-shots %d\n",
			lr.Name, lr.Requests, lr.Cells, lr.WallMS, lr.P50MS, lr.P95MS, lr.P99MS,
			lr.LedgerHits, lr.CoalesceHits, lr.DecodeShots)
	}
	checkMetrics(base)

	// ── parse ───────────────────────────────────────────────────────────
	cold, repeat := rep.Legs[0], rep.Legs[1]
	if repeat.P50MS > 0 {
		rep.RepeatSpeedupP50 = cold.P50MS / repeat.P50MS
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("BENCHLINE bench=serve clients=%d requests=%d trials=%d cold_p50_ms=%.2f repeat_p50_ms=%.2f repeat_speedup_p50=%.2f ledger_hits=%d coalesce_hits=%d errors=%d\n",
		*clients, *requests, *trials, cold.P50MS, repeat.P50MS, rep.RepeatSpeedupP50,
		repeat.LedgerHits, rep.Legs[2].CoalesceHits,
		cold.Errors+repeat.Errors+rep.Legs[2].Errors)
}

// drive fires every body at the server from a fixed-size worker pool,
// reading each stream to completion and timing it end to end.
func drive(base, name string, bodies []string, workers int) legReport {
	type outcome struct {
		ms    float64
		cells int
		err   error
	}
	work := make(chan string)
	results := make(chan outcome, len(bodies))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				start := time.Now()
				cells, err := submit(base, b)
				results <- outcome{float64(time.Since(start).Microseconds()) / 1000, cells, err}
			}
		}()
	}
	wallStart := time.Now()
	for _, b := range bodies {
		work <- b
	}
	close(work)
	wg.Wait()
	wallMS := float64(time.Since(wallStart).Microseconds()) / 1000
	close(results)

	lr := legReport{Name: name, Requests: len(bodies), WallMS: wallMS}
	var lat []float64
	for o := range results {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "vlqload: %s: %v\n", name, o.err)
			lr.Errors++
			continue
		}
		lr.Cells += o.cells
		lat = append(lat, o.ms)
	}
	lr.P50MS, lr.P95MS, lr.P99MS = pct(lat, 0.50), pct(lat, 0.95), pct(lat, 0.99)
	if wallMS > 0 {
		lr.CellsSec = float64(lr.Cells) / (wallMS / 1000)
	}
	return lr
}

// driveCoalesce fires the duplicate-cell bodies with a rendezvous: the
// first submission goes alone, and the rest launch once /v1/stats shows a
// cell claimed in the coalescer's pending map (the leader has planned but
// not finished) — or the leader has already finished, on machines too
// busy to observe the window. The wait maximizes the cross-request
// coalescing window; the in-request duplicate cells carry the guarantee
// regardless.
func driveCoalesce(base, name string, bodies []string) legReport {
	type outcome struct {
		ms    float64
		cells int
		err   error
	}
	results := make(chan outcome, len(bodies))
	post := func(b string) {
		start := time.Now()
		cells, err := submit(base, b)
		results <- outcome{float64(time.Since(start).Microseconds()) / 1000, cells, err}
	}
	wallStart := time.Now()
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		post(bodies[0])
	}()
rendezvous:
	for getStats(base).Ledger.CoalescePending == 0 {
		select {
		case <-leaderDone:
			break rendezvous
		default:
			time.Sleep(500 * time.Microsecond)
		}
	}
	var wg sync.WaitGroup
	for _, b := range bodies[1:] {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(b)
		}()
	}
	wg.Wait()
	lr := legReport{Name: name, Requests: len(bodies), WallMS: float64(time.Since(wallStart).Microseconds()) / 1000}
	var lat []float64
	for range bodies {
		o := <-results
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "vlqload: %s: %v\n", name, o.err)
			lr.Errors++
			continue
		}
		lr.Cells += o.cells
		lat = append(lat, o.ms)
	}
	lr.P50MS, lr.P95MS, lr.P99MS = pct(lat, 0.50), pct(lat, 0.95), pct(lat, 0.99)
	if lr.WallMS > 0 {
		lr.CellsSec = float64(lr.Cells) / (lr.WallMS / 1000)
	}
	return lr
}

// submit posts one sweep and consumes its NDJSON stream, returning the
// cell count and checking the trailing status line reports done.
func submit(base, body string) (int, error) {
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var last string
	cells := -1 // the trailing line is the JobStatus, not a cell
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		if ln := strings.TrimSpace(sc.Text()); ln != "" {
			last = ln
			cells++
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	var status struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last), &status); err != nil {
		return 0, fmt.Errorf("trailing status line %q: %w", last, err)
	}
	if status.State != "done" {
		return 0, fmt.Errorf("job ended %q: %s", status.State, status.Error)
	}
	return cells, nil
}

// statsSnapshot is the subset of GET /v1/stats the harness diffs.
type statsSnapshot struct {
	Engine struct {
		Builds int64 `json:"builds"`
	} `json:"engine"`
	Decode struct {
		Shots int64 `json:"shots"`
	} `json:"decode"`
	Ledger struct {
		Hits            int64 `json:"hits"`
		CoalesceHits    int64 `json:"coalesce_hits"`
		CoalescePending int   `json:"coalesce_pending"`
	} `json:"ledger"`
}

func getStats(base string) statsSnapshot {
	var st statsSnapshot
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatal(fmt.Errorf("stats: %w", err))
	}
	return st
}

// checkMetrics scrapes /metrics once and fails the run if the serving
// families the dashboard depends on are missing — the harness doubles as
// the exposition's end-to-end test.
func checkMetrics(base string) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	for _, fam := range []string{
		"vlq_serve_submissions_total", "vlq_serve_cells_total",
		"vlq_serve_cell_wait_seconds_bucket", "vlq_serve_request_seconds_bucket",
		"vlq_ledger_hits_total", "vlq_coalesce_hits_total",
		"vlq_engine_cache_builds_total", "vlq_decode_shots_total",
	} {
		if !strings.Contains(string(b), fam) {
			fatal(fmt.Errorf("metrics scrape missing family %s", fam))
		}
	}
}

// pct is the nearest-rank percentile of an unsorted latency sample.
func pct(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vlqload:", err)
	os.Exit(1)
}
