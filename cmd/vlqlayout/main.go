// Command vlqlayout prints the surface-code embeddings and their hardware
// resource accounting: the Natural and Compact mappings of Figs. 1, 7 and 8,
// the Table II resource formulas, and the transmon-savings headline claims.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/layout"
)

func main() {
	d := flag.Int("d", 3, "code distance (odd, >= 3)")
	k := flag.Int("k", 10, "cavity depth (modes per cavity)")
	kind := flag.String("kind", "all", "embedding: baseline-2d, natural, compact, or all")
	flag.Parse()

	code, err := layout.NewRotated(*d)
	if err != nil {
		fatal(err)
	}
	kinds := []layout.EmbeddingKind{layout.Baseline2D, layout.Natural, layout.Compact}
	if *kind != "all" {
		found := false
		for _, kk := range kinds {
			if kk.String() == *kind {
				kinds = []layout.EmbeddingKind{kk}
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown embedding %q", *kind))
		}
	}
	for _, kk := range kinds {
		e, err := layout.NewEmbedding(kk, code)
		if err != nil {
			fatal(err)
		}
		fmt.Println(e.Render())
		r := layout.EmbeddingResources(kk, *d, *k)
		fmt.Printf("resources at k=%d: %d transmons, %d cavities, %d total qubits, %d logical qubits\n\n",
			*k, r.Transmons, r.Cavities, r.TotalQubits(), r.LogicalQubits)
	}

	base := layout.EmbeddingResources(layout.Baseline2D, *d, 0)
	nat := layout.EmbeddingResources(layout.Natural, *d, *k)
	cmp := layout.EmbeddingResources(layout.Compact, *d, *k)
	fmt.Printf("transmons per logical qubit: baseline %.1f, natural %.1f (%.1fx saving), compact %.1f (%.1fx saving)\n",
		float64(base.Transmons),
		float64(nat.Transmons)/float64(*k),
		float64(base.Transmons)*float64(*k)/float64(nat.Transmons),
		float64(cmp.Transmons)/float64(*k),
		float64(base.Transmons)*float64(*k)/float64(cmp.Transmons))
	if *d == 3 {
		fmt.Printf("headline (§I): the smallest Compact instance needs %d transmons and %d cavities for %d logical qubits\n",
			cmp.Transmons, cmp.Cavities, *k)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vlqlayout:", err)
	os.Exit(1)
}
