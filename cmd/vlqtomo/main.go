// Command vlqtomo runs the §III-B verification: stabilizer process
// tomography of the transversal CNOT on two full distance-d logical patches
// sharing a stack, checking the conjugation of every logical generator and
// the preservation of all code stabilizers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tomo"
)

func main() {
	d := flag.Int("d", 3, "code distance (odd, >= 3)")
	flag.Parse()

	rep, err := tomo.VerifyTransversalCNOT(*d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlqtomo:", err)
		os.Exit(1)
	}
	fmt.Printf("transversal CNOT process tomography at distance %d (%d physical qubits)\n", rep.Distance, rep.PhysicalQubits)
	for _, c := range rep.Checks {
		status := "ok"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Printf("  [%-4s] %s\n", status, c.Name)
	}
	if rep.StabilizersOK {
		fmt.Println("  [ok  ] all code stabilizers of both patches preserved")
	} else {
		fmt.Println("  [FAIL] code stabilizers disturbed")
	}
	if rep.AllOK {
		fmt.Println("verdict: the physical circuit implements the logical CNOT exactly")
	} else {
		fmt.Println("verdict: FAILED")
		os.Exit(1)
	}
}
