// Command vlqserve runs the sweep-serving front end: a long-lived HTTP
// service that executes the paper's threshold (Fig. 11) and sensitivity
// (Fig. 12) sweeps on demand and streams per-cell results as NDJSON or
// SSE. One process-wide Monte-Carlo engine backs every request, so
// repeated sweeps of the same (scheme, distance) experiment skip the
// circuit, fault-structure, and decoding-graph builds entirely — check
// GET /v1/stats for the cache counters.
//
// Example session:
//
//	vlqserve -addr :8324 &
//	curl -N -d '{"scheme":"baseline","distances":[3],"trials":2000}' \
//	    localhost:8324/v1/sweeps
//	curl localhost:8324/v1/stats
//
// Flags: -addr listen address, -jobs default scheduler pool width per
// sweep, -cache engine structure-cache entries, -max-jobs concurrent
// sweeps, -queue waiting sweeps beyond that (further submissions get 429),
// -retain finished jobs kept for status/replay, -pprof a separate debug
// listen address serving net/http/pprof (off by default; keep it on a
// loopback or otherwise private address — profiles expose internals).
// SIGINT/SIGTERM drain in-flight requests, then cancel outstanding jobs.
//
// With -ledger the server persists every finished cell to an append-only
// JSONL file and replays it on startup: a cell the file already holds —
// from this run or any earlier one — is served without touching the
// engine, marked "source":"ledger" in its record. Without the flag the
// same dedup still happens in memory, for the life of the process only.
// GET /metrics exposes the serving stack (submissions, cell provenance,
// latency histograms, ledger/coalescing/engine counters) in Prometheus
// text format.
//
// With -fabric-listen the process additionally runs a fabric coordinator
// on that address: vlqworker processes connect to it, and sweeps submitted
// with "mode":"fabric" are leased to them instead of the local pool —
// merging to bit-identical results. -fabric-ttl tunes the lease
// time-to-live (how quickly a lost worker's units are reassigned).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/montecarlo"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8324", "listen address")
	jobs := flag.Int("jobs", 0, "default scheduler pool width per sweep (0 = GOMAXPROCS)")
	cache := flag.Int("cache", montecarlo.DefaultCacheEntries, "engine structure-cache entries (LRU; <= 0 unbounded)")
	maxJobs := flag.Int("max-jobs", 2, "sweep jobs running concurrently")
	queue := flag.Int("queue", 8, "sweep jobs waiting beyond -max-jobs before submissions get 429 (negative: no queueing)")
	retain := flag.Int("retain", 64, "finished jobs retained for status/replay")
	ledgerPath := flag.String("ledger", "", "append-only JSONL result-ledger file, replayed on startup (empty = in-memory only)")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof debug endpoints (e.g. localhost:6060; empty = disabled)")
	fabricAddr := flag.String("fabric-listen", "", "listen address for the fabric coordinator (e.g. :8791; empty = fabric mode disabled)")
	fabricTTL := flag.Duration("fabric-ttl", fabric.DefaultLeaseTTL, "fabric lease time-to-live before a silent worker's units are reassigned")
	flag.Parse()

	// The profiling endpoints live on their own listener and mux, never the
	// serving one, so enabling them cannot expose /debug/pprof to sweep
	// clients.
	if *pprofAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "vlqserve: pprof on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, dbg); err != nil {
				fmt.Fprintln(os.Stderr, "vlqserve: pprof:", err)
			}
		}()
	}

	var hub *fabric.Hub
	var fabricServer *http.Server
	if *fabricAddr != "" {
		hub = fabric.NewHub(fabric.Options{LeaseTTL: *fabricTTL})
		fabricServer = &http.Server{Addr: *fabricAddr, Handler: hub.Handler()}
		go func() {
			fmt.Fprintf(os.Stderr, "vlqserve: fabric coordinator on %s (lease ttl %s)\n", *fabricAddr, *fabricTTL)
			if err := fabricServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "vlqserve: fabric:", err)
			}
		}()
	}

	var ledger serve.Ledger
	if *ledgerPath != "" {
		var err error
		if ledger, err = serve.OpenFileLedger(*ledgerPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vlqserve: result ledger %s (%d cells replayed)\n",
			*ledgerPath, ledger.Stats().Entries)
	}

	server := serve.NewServer(serve.Config{
		Engine:            montecarlo.NewEngineWithCache(*cache),
		Ledger:            ledger,
		MaxConcurrentJobs: *maxJobs,
		QueueDepth:        *queue,
		DefaultPoolWidth:  *jobs,
		RetainJobs:        *retain,
		Fabric:            hub,
	})
	httpServer := &http.Server{Addr: *addr, Handler: server}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vlqserve: listening on %s (max-jobs=%d queue=%d cache=%d)\n",
		*addr, *maxJobs, *queue, *cache)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, let in-flight streams finish
	// their current cell, then cancel whatever is still running.
	fmt.Fprintln(os.Stderr, "vlqserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	server.Close() // cancels outstanding jobs; streams end at the next cell boundary
	if hub != nil {
		hub.Close() // tells polling workers to shut down, cancels fabric runs
		if fabricServer != nil {
			_ = fabricServer.Shutdown(shutdownCtx)
		}
	}
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	if ledger != nil {
		if err := ledger.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	if errors.Is(err, http.ErrServerClosed) {
		return
	}
	fmt.Fprintln(os.Stderr, "vlqserve:", err)
	os.Exit(1)
}
