// Command vlqfabric runs a standalone fabric coordinator: the lease server
// that vlqworker processes pull sweep shard units from. It serves the
// fabric wire protocol plus GET /fabric/v1/stats, and accepts sweep
// submissions on POST /v1/fabric/sweeps with the same SweepRequest body
// the serving front end takes — results stream back as NDJSON cell lines,
// bit-identical to a local run of the same request.
//
// Example cluster on one machine:
//
//	vlqfabric -addr 127.0.0.1:8791 &
//	vlqworker -coordinator http://127.0.0.1:8791 &
//	vlqworker -coordinator http://127.0.0.1:8791 &
//	curl -N -d '{"scheme":"baseline","distances":[3],"trials":2000,"shard_shots":1024}' \
//	    127.0.0.1:8791/v1/fabric/sweeps
//
// Flags: -addr listen address, -ttl lease time-to-live (a worker silent
// for this long forfeits its leases and their units are reassigned).
// SIGINT/SIGTERM cancels outstanding runs, tells polling workers to shut
// down, and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/sched"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address")
	ttl := flag.Duration("ttl", fabric.DefaultLeaseTTL, "lease time-to-live before a silent worker's units are reassigned")
	flag.Parse()

	hub := fabric.NewHub(fabric.Options{LeaseTTL: *ttl})

	mux := http.NewServeMux()
	mux.Handle("/fabric/v1/", hub.Handler())
	mux.HandleFunc("POST /v1/fabric/sweeps", func(w http.ResponseWriter, r *http.Request) {
		handleSweep(hub, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	httpServer := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlqfabric:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()
	// The resolved address line (":0" resolves to an ephemeral port) is the
	// smoke harness's handle on the coordinator.
	fmt.Fprintf(os.Stderr, "vlqfabric: coordinating on %s (lease ttl %s)\n", ln.Addr(), *ttl)

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vlqfabric:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "vlqfabric: shutting down")
	hub.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpServer.Shutdown(shutdownCtx)
}

// handleSweep expands one SweepRequest, submits it to the hub, and streams
// the merged cells back as NDJSON, ending when the run completes or the
// client disconnects (which cancels the run).
func handleSweep(hub *fabric.Hub, w http.ResponseWriter, r *http.Request) {
	var req serve.SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "invalid request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	cells, err := serve.BuildCells(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	recs := make(chan serve.CellRecord, len(cells))
	run, err := hub.Submit(cells, fabric.RunOptions{
		ShardShots: req.ShardShots,
		OnResult:   func(res sched.CellResult) { recs <- serve.ToCellRecord(res) },
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	done := 0
	for done < len(cells) {
		select {
		case rec := <-recs:
			done++
			_ = enc.Encode(rec)
			if flusher != nil {
				flusher.Flush()
			}
		case <-run.Done():
			// Drain anything already queued, then stop.
			for {
				select {
				case rec := <-recs:
					done++
					_ = enc.Encode(rec)
				default:
					if flusher != nil {
						flusher.Flush()
					}
					return
				}
			}
		case <-r.Context().Done():
			run.Cancel()
			return
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, _ = run.Wait(ctx)
}
