// Command vlqworker is a fabric worker: it registers with a coordinator
// (vlqfabric, or vlqserve -fabric-listen), pulls sweep shard leases, runs
// them on a process-wide Monte-Carlo engine — one long-lived worker state,
// so consecutive leases of the same experiment skip structure and
// decoding-graph builds — and streams shard tallies back. Which worker
// runs a shard never reaches the results: the coordinator's merge is
// bit-identical to a local run at any worker count.
//
//	vlqworker -coordinator http://127.0.0.1:8791
//
// Flags: -coordinator base URL (required), -name operator-facing label,
// -cache engine structure-cache entries, -poll idle polling interval.
// SIGINT/SIGTERM aborts the in-flight shard at its next batch boundary
// without submitting a partial tally (the coordinator reassigns the unit)
// and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/montecarlo"
)

func main() {
	coord := flag.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:8791 (required)")
	name := flag.String("name", "", "operator-facing worker label (default: hostname)")
	cache := flag.Int("cache", montecarlo.DefaultCacheEntries, "engine structure-cache entries (LRU; <= 0 unbounded)")
	poll := flag.Duration("poll", 50*time.Millisecond, "idle polling interval when the coordinator has no work")
	flag.Parse()

	if *coord == "" {
		fmt.Fprintln(os.Stderr, "vlqworker: -coordinator is required")
		os.Exit(2)
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	w := fabric.NewWorker(&fabric.HTTPTransport{Base: *coord}, fabric.WorkerOptions{
		Name:         *name,
		Engine:       montecarlo.NewEngineWithCache(*cache),
		PollInterval: *poll,
	})
	fmt.Fprintf(os.Stderr, "vlqworker: pulling leases from %s\n", *coord)
	err := w.Run(ctx)
	switch {
	case err == nil:
		fmt.Fprintln(os.Stderr, "vlqworker: coordinator shut down; exiting")
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "vlqworker: signal received; exiting")
	default:
		fmt.Fprintln(os.Stderr, "vlqworker:", err)
		os.Exit(1)
	}
}
