// Command vlqsense reproduces the Fig. 12 sensitivity studies: logical error
// rate of Compact-Interleaved at the 2e-3 operating point while one hardware
// parameter sweeps its range (SC-SC / load-store / SC-mode gate error,
// cavity or transmon T1, load-store duration, cavity size).
//
// Example:
//
//	vlqsense -panel cavity-t1 -distances 3,5 -trials 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/montecarlo"
)

func main() {
	panel := flag.String("panel", "all", "panel: sc-sc-error, load-store-error, sc-mode-error, cavity-t1, transmon-t1, load-store-duration, cavity-size, or all")
	distances := flag.String("distances", "3,5", "comma-separated code distances")
	values := flag.String("values", "", "comma-separated parameter values (default: paper's range)")
	nvalues := flag.Int("nvalues", 5, "number of grid values when -values is empty")
	trials := flag.Int("trials", 3000, "Monte-Carlo trials per point (a cap when -target-failures is set)")
	target := flag.Int("target-failures", 0, "end each point once this many failures accumulate (0 = fixed trial count)")
	seed := flag.Int64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()

	var panels []montecarlo.Panel
	if *panel == "all" {
		panels = montecarlo.Panels
	} else {
		panels = []montecarlo.Panel{montecarlo.Panel(*panel)}
	}
	ds, err := parseInts(*distances)
	if err != nil {
		fatal(err)
	}

	if *csv {
		fmt.Println("panel,value,distance,logical_rate,stderr,trials")
	}
	// One engine for the whole invocation: probability and coherence-time
	// panels share one structure per distance.
	engine := montecarlo.NewEngine()
	for _, pn := range panels {
		vals := pn.DefaultValues(*nvalues)
		if *values != "" {
			if vals, err = parseFloats(*values); err != nil {
				fatal(err)
			}
		}
		pts, err := engine.SensitivitySweep(pn, vals, ds, *trials, *seed, montecarlo.SweepOptions{TargetFailures: *target})
		if err != nil {
			fatal(err)
		}
		if *csv {
			for _, pt := range pts {
				fmt.Printf("%s,%g,%d,%g,%g,%d\n", pt.Panel, pt.Value, pt.Distance, pt.Result.Rate(), pt.Result.StdErr(), pt.Result.Trials)
			}
			continue
		}
		fmt.Printf("\n== Fig. 12 panel: %s (compact-interleaved at p=2e-3, trials/point=%d) ==\n", pn, *trials)
		fmt.Printf("%-12s", "value \\ d")
		for _, d := range ds {
			fmt.Printf("  d=%-9d", d)
		}
		fmt.Println()
		for _, v := range vals {
			fmt.Printf("%-12.3g", v)
			for _, d := range ds {
				for _, pt := range pts {
					if pt.Distance == d && pt.Value == v {
						fmt.Printf("  %-11.5f", pt.Result.Rate())
					}
				}
			}
			fmt.Println()
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vlqsense:", err)
	os.Exit(1)
}
