// Command vlqsense reproduces the Fig. 12 sensitivity studies: logical error
// rate of Compact-Interleaved at the 2e-3 operating point while one hardware
// parameter sweeps its range (SC-SC / load-store / SC-mode gate error,
// cavity or transmon T1, load-store duration, cavity size).
//
// Sweep cells are drained through the shared-pool scheduler (-jobs controls
// the width); with -csv or -json each cell's row streams to stdout the
// moment it finishes, so long sweeps emit results incrementally. Results
// are deterministic for a given seed regardless of -jobs.
//
// Example:
//
//	vlqsense -panel cavity-t1 -distances 3,5 -trials 10000
//	vlqsense -panel all -jobs 8 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/decoder"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

func main() {
	panel := flag.String("panel", "all", "panel: sc-sc-error, load-store-error, sc-mode-error, cavity-t1, transmon-t1, load-store-duration, cavity-size, or all")
	distances := flag.String("distances", "3,5", "comma-separated code distances")
	values := flag.String("values", "", "comma-separated parameter values (default: paper's range)")
	nvalues := flag.Int("nvalues", 5, "number of grid values when -values is empty")
	trials := flag.Int("trials", 3000, "Monte-Carlo trials per point (a cap when -target-failures is set)")
	target := flag.Int("target-failures", 0, "end each point once this many failures accumulate (0 = fixed trial count)")
	seed := flag.Int64("seed", 1, "random seed")
	dec := flag.String("decoder", "uf", "decoder: uf, blossom, mwpm, or exact")
	jobs := flag.Int("jobs", 0, "scheduler pool width: sweep cells decoded concurrently (0 = GOMAXPROCS)")
	shardShots := flag.Int("shard-shots", 0, fmt.Sprintf("split cells into stolen shard units of ~this many trials; cells below twice the size stay whole (0 = off; floor %d)", montecarlo.MinShardShots))
	pipeline := flag.Bool("decode-pipeline", true, "batch decode pipeline: skip zero-defect shots and dedup repeated syndromes before the matcher (bit-identical results; false = decode every shot)")
	rare := flag.Bool("rare-event", false, "importance-sampled estimation: draw faults from a boosted proposal and report likelihood-ratio-weighted rates with error bars (for deep sub-threshold points)")
	boost := flag.Float64("boost", 0, fmt.Sprintf("proposal boost factor for -rare-event: each fault fires boost times as often (0 = default %g; 1 = plain sampling)", montecarlo.DefaultBoost))
	targetRelErr := flag.Float64("target-rel-err", 0, "end each -rare-event point once its relative standard error drops below this (0 = fixed trial count)")
	csv := flag.Bool("csv", false, "stream CSV rows as cells finish instead of printing a table")
	jsonOut := flag.Bool("json", false, "stream one JSON object per cell as it finishes")
	flag.Parse()
	if *csv && *jsonOut {
		fatal(fmt.Errorf("-csv and -json are mutually exclusive"))
	}
	if *shardShots < 0 {
		fatal(fmt.Errorf("-shard-shots must be non-negative, got %d", *shardShots))
	}
	if !*rare && (*boost != 0 || *targetRelErr != 0) {
		fatal(fmt.Errorf("-boost and -target-rel-err require -rare-event"))
	}
	if *rare && *target != 0 {
		fatal(fmt.Errorf("-target-failures does not apply to -rare-event runs; use -target-rel-err"))
	}

	var panels []montecarlo.Panel
	if *panel == "all" {
		panels = montecarlo.Panels
	} else {
		panels = []montecarlo.Panel{montecarlo.Panel(*panel)}
	}
	ds, err := parseInts(*distances)
	if err != nil {
		fatal(err)
	}

	if *csv {
		fmt.Println("panel,value,distance,logical_rate,stderr,trials")
	}
	enc := json.NewEncoder(os.Stdout)
	stream := func(r sched.CellResult) {
		if r.Err != nil {
			return // surfaced by Run's summary error
		}
		cell := r.Job.Tag.(sched.SensitivityCell)
		switch {
		case *csv:
			fmt.Printf("%s,%g,%d,%g,%g,%d\n", cell.Panel, cell.Value, cell.Distance,
				r.Result.Rate(), r.Result.StdErr(), r.Result.Trials)
		case *jsonOut:
			row := sensitivityRow{
				Panel: string(cell.Panel), Value: cell.Value, Distance: cell.Distance,
				LogicalRate: r.Result.Rate(), StdErr: r.Result.StdErr(),
				Trials: r.Result.Trials, Failures: r.Result.Failures,
				Skipped: r.Result.Skipped, DedupHits: r.Result.DedupHits,
			}
			if r.Job.Cfg.RareEvent {
				re, ess := r.Result.RelErr(), r.Result.ESS()
				if math.IsInf(re, 1) {
					re = -1 // no failures observed yet
				}
				row.RelErr, row.ESS = &re, &ess
			}
			if !r.Result.Stats.IsZero() {
				st := r.Result.Stats
				row.DecoderStats = &st
			}
			enc.Encode(row)
		}
	}

	// One engine for the whole invocation: probability and coherence-time
	// panels share one structure (and graph topology) per distance; one
	// shared worker pool drains each panel's grid, longest-cell-first,
	// stealing shards of cells above -shard-shots.
	opts := sched.Options{Jobs: *jobs, ShardShots: *shardShots}
	if *csv || *jsonOut {
		opts.OnResult = stream
	}
	scheduler := sched.New(montecarlo.NewEngine(), opts)
	for _, pn := range panels {
		vals := pn.DefaultValues(*nvalues)
		if *values != "" {
			if vals, err = parseFloats(*values); err != nil {
				fatal(err)
			}
		}
		pts, err := scheduler.SensitivitySweep(pn, vals, ds, *trials, *seed,
			montecarlo.DecoderKind(*dec), montecarlo.SweepOptions{
				TargetFailures: *target, DisablePipeline: !*pipeline,
				RareEvent: *rare, Boost: *boost, TargetRelErr: *targetRelErr,
			})
		if err != nil {
			fatal(err)
		}
		if *csv || *jsonOut {
			continue // rows already streamed
		}
		fmt.Printf("\n== Fig. 12 panel: %s (compact-interleaved at p=2e-3, trials/point=%d) ==\n", pn, *trials)
		fmt.Printf("%-12s", "value \\ d")
		for _, d := range ds {
			fmt.Printf("  d=%-9d", d)
		}
		fmt.Println()
		for _, v := range vals {
			fmt.Printf("%-12.3g", v)
			for _, d := range ds {
				for _, pt := range pts {
					if pt.Distance == d && pt.Value == v {
						fmt.Printf("  %-11.5f", pt.Result.Rate())
					}
				}
			}
			fmt.Println()
		}
	}
}

type sensitivityRow struct {
	Panel       string  `json:"panel"`
	Value       float64 `json:"value"`
	Distance    int     `json:"distance"`
	LogicalRate float64 `json:"logical_rate"`
	StdErr      float64 `json:"stderr"`
	Trials      int     `json:"trials"`
	Failures    int     `json:"failures"`
	Skipped     int     `json:"skipped,omitempty"`
	DedupHits   int     `json:"dedup_hits,omitempty"`
	// RelErr and ESS are present on -rare-event rows: the estimate's
	// relative standard error (-1 while no failures are observed) and the
	// Kish effective sample size of the importance weights.
	RelErr *float64 `json:"rel_err,omitempty"`
	ESS    *float64 `json:"ess,omitempty"`
	// DecoderStats carries the cell's matcher-internal stage counters
	// (growth rounds, escalations, tree phases, ...) when any are non-zero.
	DecoderStats *decoder.DecoderStats `json:"decoder_stats,omitempty"`
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vlqsense:", err)
	os.Exit(1)
}
