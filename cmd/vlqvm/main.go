// Command vlqvm runs a randomized logical workload on the virtualized-
// logical-qubit machine and reports its schedule: timesteps, refreshes,
// paging traffic, transversal vs surgery CNOT mix, movement serialization,
// and the refresh-deadline margin.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/layout"
)

func main() {
	rows := flag.Int("rows", 2, "stack grid rows")
	cols := flag.Int("cols", 2, "stack grid cols")
	d := flag.Int("d", 5, "code distance")
	k := flag.Int("k", 10, "cavity depth")
	kind := flag.String("kind", "compact", "embedding: natural or compact")
	qubits := flag.Int("qubits", 16, "logical qubits to allocate")
	ops := flag.Int("ops", 200, "random logical operations to schedule")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	emb := layout.Compact
	if *kind == "natural" {
		emb = layout.Natural
	}
	params := hardware.Default()
	params.CavityDepth = *k
	m, err := core.New(core.Config{
		Rows: *rows, Cols: *cols, Distance: *d,
		Embedding: emb, Params: params,
	})
	if err != nil {
		fatal(err)
	}
	hw := m.HardwareResources()
	fmt.Printf("machine: %dx%d stacks, %s d=%d k=%d -> capacity %d logical qubits on %d transmons + %d cavities (%d total physical qubits)\n",
		*rows, *cols, emb, *d, *k, m.Capacity(), hw.Transmons, hw.Cavities, hw.TotalQubits())

	if *qubits > m.Capacity() {
		fatal(fmt.Errorf("requested %d qubits exceeds capacity %d", *qubits, m.Capacity()))
	}
	rng := rand.New(rand.NewSource(*seed))
	var live []core.QubitID
	for i := 0; i < *qubits; i++ {
		q, err := m.Alloc(fmt.Sprintf("q%d", i))
		if err != nil {
			fatal(err)
		}
		live = append(live, q)
	}
	for i := 0; i < *ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			if err := m.SingleQubit(live[rng.Intn(len(live))]); err != nil {
				fatal(err)
			}
		case 3:
			if err := m.InjectT(live[rng.Intn(len(live))]); err != nil {
				fatal(err)
			}
		case 4:
			q := live[rng.Intn(len(live))]
			dst := hardware.PhysicalAddr{Row: rng.Intn(*rows), Col: rng.Intn(*cols)}
			_ = m.Move(q, dst) // full stacks legitimately refuse
		default:
			a, b := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
			if a != b {
				if err := m.CNOT(a, b); err != nil {
					fatal(err)
				}
			}
		}
		if err := m.Audit(); err != nil {
			fatal(fmt.Errorf("invariant violated after op %d: %w", i, err))
		}
	}

	st := m.Stats()
	fmt.Printf("\nschedule for %d random logical ops:\n", *ops)
	fmt.Printf("  timesteps            %8d (each = %d EC cycles)\n", st.Timesteps, *d)
	fmt.Printf("  transversal CNOTs    %8d\n", st.TransversalCNOTs)
	fmt.Printf("  surgery CNOTs        %8d (6x latency each)\n", st.SurgeryCNOTs)
	fmt.Printf("  patch moves          %8d\n", st.Moves)
	fmt.Printf("  refreshes            %8d (DRAM-style EC of stored qubits)\n", st.Refreshes)
	fmt.Printf("  loads / stores       %8d / %d\n", st.Loads, st.Stores)
	fmt.Printf("  deadline delays      %8d timesteps\n", st.DelayedTimesteps)
	fmt.Printf("  route conflicts      %8d timesteps\n", st.RouteConflicts)
	fmt.Printf("  max staleness seen   %8d timesteps (deadline: k+%d)\n", st.MaxStalenessSeen, 6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vlqvm:", err)
	os.Exit(1)
}
