// Command vlqthreshold reproduces the Fig. 11 error-threshold experiments:
// logical error rate vs physical error rate over several code distances, for
// any of the five syndrome-extraction setups, with a crossing-point
// threshold estimate.
//
// Sweep cells are drained through the shared-pool scheduler (-jobs controls
// the width); with -csv or -json each cell's row streams to stdout the
// moment it finishes, so long sweeps emit results incrementally. Results
// are deterministic for a given seed regardless of -jobs.
//
// Example:
//
//	vlqthreshold -scheme compact-interleaved -distances 3,5,7 -trials 20000
//	vlqthreshold -scheme all -jobs 8 -csv -target-failures 200 -trials 200000
//	vlqthreshold -scheme baseline -distances 9 -rates 1e-3 -rare-event -boost 1.5 -trials 100000 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/decoder"
	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

func main() {
	scheme := flag.String("scheme", "all", "extraction scheme: baseline, natural-all-at-once, natural-interleaved, compact-all-at-once, compact-interleaved, or all")
	distances := flag.String("distances", "3,5,7", "comma-separated code distances")
	rates := flag.String("rates", "", "comma-separated physical error rates (default: log grid)")
	nrates := flag.Int("nrates", 6, "number of grid rates when -rates is empty")
	trials := flag.Int("trials", 4000, "Monte-Carlo trials per point (a cap when -target-failures is set)")
	target := flag.Int("target-failures", 0, "end each point once this many failures accumulate (0 = fixed trial count)")
	seed := flag.Int64("seed", 1, "random seed")
	dec := flag.String("decoder", "uf", "decoder: uf, blossom, mwpm, or exact")
	jobs := flag.Int("jobs", 0, "scheduler pool width: sweep cells decoded concurrently (0 = GOMAXPROCS)")
	shardShots := flag.Int("shard-shots", 0, fmt.Sprintf("split cells into stolen shard units of ~this many trials; cells below twice the size stay whole (0 = off; floor %d)", montecarlo.MinShardShots))
	pipeline := flag.Bool("decode-pipeline", true, "batch decode pipeline: skip zero-defect shots and dedup repeated syndromes before the matcher (bit-identical results; false = decode every shot)")
	rare := flag.Bool("rare-event", false, "importance-sampled estimation: draw faults from a boosted proposal and report likelihood-ratio-weighted rates with error bars (for deep sub-threshold points)")
	boost := flag.Float64("boost", 0, fmt.Sprintf("proposal boost factor for -rare-event: each fault fires boost times as often (0 = default %g; 1 = plain sampling)", montecarlo.DefaultBoost))
	targetRelErr := flag.Float64("target-rel-err", 0, "end each -rare-event point once its relative standard error drops below this (0 = fixed trial count)")
	csv := flag.Bool("csv", false, "stream CSV rows as cells finish instead of printing a table")
	jsonOut := flag.Bool("json", false, "stream one JSON object per cell as it finishes")
	flag.Parse()
	if *csv && *jsonOut {
		fatal(fmt.Errorf("-csv and -json are mutually exclusive"))
	}
	if *shardShots < 0 {
		fatal(fmt.Errorf("-shard-shots must be non-negative, got %d", *shardShots))
	}
	if !*rare && (*boost != 0 || *targetRelErr != 0) {
		fatal(fmt.Errorf("-boost and -target-rel-err require -rare-event"))
	}
	if *rare && *target != 0 {
		fatal(fmt.Errorf("-target-failures does not apply to -rare-event runs; use -target-rel-err"))
	}

	var schemes []extract.Scheme
	if *scheme == "all" {
		schemes = extract.Schemes
	} else {
		s, err := schemeByName(*scheme)
		if err != nil {
			fatal(err)
		}
		schemes = []extract.Scheme{s}
	}
	ds, err := parseInts(*distances)
	if err != nil {
		fatal(err)
	}
	var ps []float64
	if *rates == "" {
		ps = montecarlo.DefaultPhysRates(*nrates)
	} else if ps, err = parseFloats(*rates); err != nil {
		fatal(err)
	}

	if *csv {
		fmt.Println("scheme,distance,phys_rate,logical_rate,stderr,trials")
	}
	enc := json.NewEncoder(os.Stdout)
	stream := func(r sched.CellResult) {
		if r.Err != nil {
			return // surfaced by Run's summary error
		}
		cell := r.Job.Tag.(sched.ThresholdCell)
		switch {
		case *csv:
			fmt.Printf("%s,%d,%g,%g,%g,%d\n", cell.Scheme, cell.Distance, cell.Phys,
				r.Result.Rate(), r.Result.StdErr(), r.Result.Trials)
		case *jsonOut:
			row := thresholdRow{
				Scheme: cell.Scheme.String(), Distance: cell.Distance, PhysRate: cell.Phys,
				LogicalRate: r.Result.Rate(), StdErr: r.Result.StdErr(),
				Trials: r.Result.Trials, Failures: r.Result.Failures,
				Skipped: r.Result.Skipped, DedupHits: r.Result.DedupHits,
			}
			if r.Job.Cfg.RareEvent {
				re, ess := r.Result.RelErr(), r.Result.ESS()
				if math.IsInf(re, 1) {
					re = -1 // no failures observed yet
				}
				row.RelErr, row.ESS = &re, &ess
			}
			if !r.Result.Stats.IsZero() {
				st := r.Result.Stats
				row.DecoderStats = &st
			}
			enc.Encode(row)
		}
	}

	// One engine for the whole invocation: every (scheme, distance) builds
	// its circuit, fault structure, and graph topology once, shared across
	// all rates; one shared worker pool drains each scheme's grid,
	// longest-cell-first, stealing shards of cells above -shard-shots.
	opts := sched.Options{Jobs: *jobs, ShardShots: *shardShots}
	if *csv || *jsonOut {
		opts.OnResult = stream
	}
	scheduler := sched.New(montecarlo.NewEngine(), opts)
	for _, sch := range schemes {
		pts, err := scheduler.ThresholdSweep(sch, ds, ps, hardware.Default(), *trials, *seed,
			montecarlo.DecoderKind(*dec), montecarlo.SweepOptions{
				TargetFailures: *target, DisablePipeline: !*pipeline,
				RareEvent: *rare, Boost: *boost, TargetRelErr: *targetRelErr,
			})
		if err != nil {
			fatal(err)
		}
		if *csv || *jsonOut {
			continue // rows already streamed
		}
		fmt.Printf("\n== %s (trials/point=%d, decoder=%s) ==\n", sch, *trials, *dec)
		fmt.Printf("%-8s", "p \\ d")
		for _, d := range ds {
			fmt.Printf("  d=%-9d", d)
		}
		fmt.Println()
		for _, p := range ps {
			fmt.Printf("%-8.2g", p)
			for _, d := range ds {
				for _, pt := range pts {
					if pt.Distance == d && pt.Phys == p {
						fmt.Printf("  %-11.5f", pt.Result.Rate())
					}
				}
			}
			fmt.Println()
		}
		if th := montecarlo.EstimateThreshold(pts); th > 0 {
			fmt.Printf("estimated threshold p_th ~= %.4f (paper: 0.008-0.009)\n", th)
		} else {
			fmt.Println("no threshold crossing bracketed by this grid")
		}
	}
}

type thresholdRow struct {
	Scheme      string  `json:"scheme"`
	Distance    int     `json:"distance"`
	PhysRate    float64 `json:"phys_rate"`
	LogicalRate float64 `json:"logical_rate"`
	StdErr      float64 `json:"stderr"`
	Trials      int     `json:"trials"`
	Failures    int     `json:"failures"`
	Skipped     int     `json:"skipped,omitempty"`
	DedupHits   int     `json:"dedup_hits,omitempty"`
	// RelErr and ESS are present on -rare-event rows: the estimate's
	// relative standard error (-1 while no failures are observed) and the
	// Kish effective sample size of the importance weights.
	RelErr *float64 `json:"rel_err,omitempty"`
	ESS    *float64 `json:"ess,omitempty"`
	// DecoderStats carries the cell's matcher-internal stage counters
	// (growth rounds, escalations, tree phases, ...) when any are non-zero.
	DecoderStats *decoder.DecoderStats `json:"decoder_stats,omitempty"`
}

func schemeByName(name string) (extract.Scheme, error) {
	for _, s := range extract.Schemes {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vlqthreshold:", err)
	os.Exit(1)
}
