// Command benchguard is the CI regression gate over BENCH_decoder.json:
// it compares the current benchmark run against a baseline copy of the
// same file (restored from the previous run's cache) and exits non-zero
// if any guarded leg's decode throughput regressed beyond the allowed
// fraction. Guarded legs are the below-threshold cells — phys_rate at or
// under the file's op_phys_rate — because that is the regime the paper's
// conclusions (and the decode pipeline's wins) live in; the at-threshold
// legs are reported but never gate.
//
// Throughput is shots per second on the pipeline-on path, 1e9/ns_per_shot.
// Legs are matched across files by (phys_rate, distance, decoder); legs
// present on only one side are reported and skipped, so adding or removing
// a grid point does not break the gate. A missing baseline file is a clean
// pass (first run, nothing to compare against).
//
// Independently of the baseline, every current leg's allocs_per_shot is
// gated against an absolute ceiling (-max-allocs): the steady-state decode
// path is allocation-free, so the recorded number is per-cell prepare
// overhead amortized over the trials, and anything beyond the ceiling means
// a leak crept onto the hot path. Baselines written before the field
// existed simply read as zero and cannot trip it.
//
// With -rare-current, benchguard additionally (or instead) gates the
// rare-event leg in BENCH_rare.json: every boosted leg's shots-to-target
// gain over brute force must clear an absolute floor (-min-rare-gain) with
// enough effective failure observations to trust the error bar
// (fail_ess >= 10), and — when -rare-baseline restores a previous run's
// copy — must not regress beyond -max-regress against it. The seeds are
// pinned, so the gains are deterministic per platform and the floor gates
// estimator quality, not timing noise.
//
// With -serve-current, benchguard gates the serving-layer report
// cmd/vlqload writes to BENCH_serve.json: the repeat leg must have been
// served from the result ledger (ledger hits > 0, zero engine shots would
// be even stricter but ledger hits is the contract), the coalesce leg
// must show in-flight executions actually shared (coalesce hits > 0), no
// leg may have request errors, and the repeat leg's p50 speedup over the
// cold leg must clear -min-serve-speedup. The speedup is a same-machine
// ratio, so it gates the dedup layers' effect rather than absolute
// timing, and needs no baseline file.
//
// Usage:
//
//	benchguard -baseline baseline/BENCH_decoder.json [-current BENCH_decoder.json] [-max-regress 0.10] [-max-allocs 1.2]
//	benchguard -rare-baseline baseline/BENCH_rare.json [-rare-current BENCH_rare.json] [-min-rare-gain 1.2]
//	benchguard -serve-current BENCH_serve.json [-min-serve-speedup 1.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type leg struct {
	PhysRate        float64 `json:"phys_rate"`
	Distance        int     `json:"distance"`
	Decoder         string  `json:"decoder"`
	Trials          int     `json:"trials"`
	NsPerShot       float64 `json:"ns_per_shot"`
	NsPerShotNoPipe float64 `json:"ns_per_shot_nopipe"`
	PipelineSpeedup float64 `json:"pipeline_speedup"`
	// AllocsPerShot gates absolutely, not against the baseline: the
	// steady-state decode path is allocation-free, so anything beyond the
	// amortized per-cell prepare overhead is a leak. Absent in old baseline
	// files (zero value), which is fine — only current legs are gated.
	AllocsPerShot float64 `json:"allocs_per_shot"`
}

type report struct {
	Scheme     string  `json:"scheme"`
	OpPhysRate float64 `json:"op_phys_rate"`
	Legs       []leg   `json:"legs"`
}

type key struct {
	phys float64
	dist int
	dec  string
}

func load(path string) (report, error) {
	var r report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Legs) == 0 {
		return r, fmt.Errorf("%s: no legs", path)
	}
	return r, nil
}

func shotsPerSec(nsPerShot float64) float64 {
	if nsPerShot <= 0 {
		return 0
	}
	return 1e9 / nsPerShot
}

// rareLeg mirrors one entry of BENCH_rare.json's legs array.
type rareLeg struct {
	Boost     float64 `json:"boost"`
	Trials    int     `json:"trials"`
	RelErr    float64 `json:"rel_err"`
	FailESS   float64 `json:"fail_ess"`
	ShotsGain float64 `json:"shots_gain_vs_brute"`
	WallGain  float64 `json:"wall_gain_vs_brute"`
}

type rareReport struct {
	Scheme       string    `json:"scheme"`
	Distance     int       `json:"distance"`
	PhysRate     float64   `json:"phys_rate"`
	TargetRelErr float64   `json:"target_rel_err"`
	Legs         []rareLeg `json:"legs"`
}

func loadRare(path string) (rareReport, error) {
	var r rareReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Legs) == 0 {
		return r, fmt.Errorf("%s: no legs", path)
	}
	return r, nil
}

// guardRare gates the rare-event report: absolute estimator-quality floors
// on every boosted leg, plus a regression check against the previous run's
// best gain when a baseline exists. Returns the number of failures.
func guardRare(currentPath, baselinePath string, minGain, maxRegress float64) int {
	cur, err := loadRare(currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		return 1
	}
	fmt.Printf("benchguard: %s (d=%d p=%g), gating boosted shots-to-%.0f%%-relerr gain >= %.2fx, fail_ess >= 10\n",
		currentPath, cur.Distance, cur.PhysRate, 100*cur.TargetRelErr, minGain)
	fails := 0
	bestGain := 0.0
	for _, l := range cur.Legs {
		if l.Boost <= 1 {
			fmt.Printf("  boost %-4g relerr %.3f  (brute reference)\n", l.Boost, l.RelErr)
			continue
		}
		verdict := "ok"
		if l.ShotsGain < minGain {
			verdict = fmt.Sprintf("BELOW FLOOR %.2fx", minGain)
			fails++
		}
		if l.FailESS < 10 {
			verdict = fmt.Sprintf("UNTRUSTWORTHY (fail_ess %.1f < 10)", l.FailESS)
			fails++
		}
		if l.ShotsGain > bestGain {
			bestGain = l.ShotsGain
		}
		fmt.Printf("  boost %-4g relerr %.3f  gain %.2fx shots / %.2fx wall  fail_ess %6.1f  %s\n",
			l.Boost, l.RelErr, l.ShotsGain, l.WallGain, l.FailESS, verdict)
	}
	if baselinePath != "" {
		base, err := loadRare(baselinePath)
		if os.IsNotExist(err) {
			fmt.Printf("  no rare baseline at %s — first run, nothing to compare\n", baselinePath)
			return fails
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			return fails + 1
		}
		baseBest := 0.0
		for _, l := range base.Legs {
			if l.Boost > 1 && l.ShotsGain > baseBest {
				baseBest = l.ShotsGain
			}
		}
		if baseBest > 0 && bestGain < baseBest*(1-maxRegress) {
			fmt.Printf("  best gain %.2fx REGRESSED from baseline %.2fx beyond %.0f%%\n",
				bestGain, baseBest, 100*maxRegress)
			fails++
		} else if baseBest > 0 {
			fmt.Printf("  best gain %.2fx vs baseline %.2fx — ok\n", bestGain, baseBest)
		}
	}
	return fails
}

// serveLeg and serveReport mirror cmd/vlqload's BENCH_serve.json.
type serveLeg struct {
	Name         string  `json:"name"`
	Requests     int     `json:"requests"`
	Cells        int     `json:"cells"`
	Errors       int     `json:"errors"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	LedgerHits   int64   `json:"ledger_hits"`
	CoalesceHits int64   `json:"coalesce_hits"`
	DecodeShots  int64   `json:"decode_shots"`
}

type serveReport struct {
	Legs             []serveLeg `json:"legs"`
	RepeatSpeedupP50 float64    `json:"repeat_speedup_p50"`
}

// guardServe gates the load-harness report: the dedup layers must be
// observed working (ledger hits on the repeat leg, coalesce hits on the
// coalesce leg), every request must have succeeded, and the repeat leg
// must actually be faster. Returns the number of failures.
func guardServe(path string, minSpeedup float64) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		return 1
	}
	var r serveReport
	if err := json.Unmarshal(buf, &r); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("benchguard: %s, gating repeat p50 speedup >= %.2fx, ledger/coalesce hits > 0, zero errors\n",
		path, minSpeedup)
	fails := 0
	legs := map[string]serveLeg{}
	for _, l := range r.Legs {
		legs[l.Name] = l
		verdict := "ok"
		if l.Errors > 0 {
			verdict = fmt.Sprintf("%d REQUEST ERRORS", l.Errors)
			fails++
		}
		fmt.Printf("  %-8s %3d reqs %4d cells  p50 %8.2fms p95 %8.2fms  ledger %4d coalesce %3d engine-shots %8d  %s\n",
			l.Name, l.Requests, l.Cells, l.P50MS, l.P95MS, l.LedgerHits, l.CoalesceHits, l.DecodeShots, verdict)
	}
	repeat, ok := legs["repeat"]
	if !ok {
		fmt.Println("  no repeat leg — NOTHING TO GATE")
		return fails + 1
	}
	if repeat.LedgerHits == 0 {
		fmt.Println("  repeat leg had ZERO ledger hits — the result ledger is not serving")
		fails++
	}
	if co, ok := legs["coalesce"]; ok && co.CoalesceHits == 0 {
		fmt.Println("  coalesce leg had ZERO coalesce hits — in-flight sharing is not happening")
		fails++
	}
	if r.RepeatSpeedupP50 < minSpeedup {
		fmt.Printf("  repeat p50 speedup %.2fx BELOW FLOOR %.2fx\n", r.RepeatSpeedupP50, minSpeedup)
		fails++
	} else {
		fmt.Printf("  repeat p50 speedup %.2fx — ok\n", r.RepeatSpeedupP50)
	}
	return fails
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline BENCH_decoder.json from the previous run (missing file = clean pass)")
	currentPath := flag.String("current", "BENCH_decoder.json", "current run's BENCH_decoder.json")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional throughput regression on guarded legs")
	maxAllocs := flag.Float64("max-allocs", 1.2, "maximum heap allocations per shot on any current leg (absolute; the decode path is allocation-free in steady state, leaving only amortized per-cell prepare overhead, which grows with distance)")
	rareCurrent := flag.String("rare-current", "", "current run's BENCH_rare.json; when set, gate the rare-event leg")
	rareBaseline := flag.String("rare-baseline", "", "baseline BENCH_rare.json from the previous run (missing file = clean pass)")
	minRareGain := flag.Float64("min-rare-gain", 1.2, "minimum shots-to-target gain over brute force any boosted rare-event leg must hold")
	serveCurrent := flag.String("serve-current", "", "current run's BENCH_serve.json; when set, gate the serving-layer legs")
	minServeSpeedup := flag.Float64("min-serve-speedup", 1.5, "minimum repeat-over-cold p50 speedup the ledger-served leg must hold")
	flag.Parse()
	if *baselinePath == "" && *rareCurrent == "" && *serveCurrent == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline, -rare-current, or -serve-current is required")
		os.Exit(2)
	}
	if *maxRegress < 0 || *maxRegress >= 1 {
		fmt.Fprintf(os.Stderr, "benchguard: -max-regress must be in [0, 1), got %g\n", *maxRegress)
		os.Exit(2)
	}
	if *serveCurrent != "" {
		if fails := guardServe(*serveCurrent, *minServeSpeedup); fails > 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %d serve gate failure(s)\n", fails)
			os.Exit(1)
		}
		if *baselinePath == "" && *rareCurrent == "" {
			fmt.Println("benchguard: pass")
			return
		}
	}
	if *rareCurrent != "" {
		if fails := guardRare(*rareCurrent, *rareBaseline, *minRareGain, *maxRegress); fails > 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %d rare-event gate failure(s)\n", fails)
			os.Exit(1)
		}
		if *baselinePath == "" {
			fmt.Println("benchguard: pass")
			return
		}
	}

	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if os.IsNotExist(err) {
		fmt.Printf("benchguard: no baseline at %s — first run, nothing to compare\n", *baselinePath)
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	old := map[key]leg{}
	for _, l := range base.Legs {
		old[key{l.PhysRate, l.Distance, l.Decoder}] = l
	}

	fmt.Printf("benchguard: %s vs baseline, guarding p <= %g at -max-regress %.0f%%, allocs/shot <= %g\n",
		*currentPath, cur.OpPhysRate, 100**maxRegress, *maxAllocs)
	regressions := 0
	allocFails := 0
	matched := 0
	for _, l := range cur.Legs {
		// The alloc gate is absolute and covers every current leg, matched
		// or not — a leaked allocation is a leak at any grid point.
		if l.AllocsPerShot > *maxAllocs {
			fmt.Printf("  d=%-3d p=%-6g %-8s %.2f allocs/shot exceeds %g — ALLOC LEAK\n",
				l.Distance, l.PhysRate, l.Decoder, l.AllocsPerShot, *maxAllocs)
			allocFails++
		}
		b, ok := old[key{l.PhysRate, l.Distance, l.Decoder}]
		if !ok {
			fmt.Printf("  d=%-3d p=%-6g %-8s new leg, no baseline — skipped\n", l.Distance, l.PhysRate, l.Decoder)
			continue
		}
		delete(old, key{l.PhysRate, l.Distance, l.Decoder})
		matched++
		curTP, baseTP := shotsPerSec(l.NsPerShot), shotsPerSec(b.NsPerShot)
		delta := curTP/baseTP - 1
		guarded := l.PhysRate <= cur.OpPhysRate
		verdict := "ok"
		if guarded && curTP < baseTP*(1-*maxRegress) {
			verdict = "REGRESSED"
			regressions++
		} else if !guarded {
			verdict = "ok (unguarded, at-threshold)"
		}
		fmt.Printf("  d=%-3d p=%-6g %-8s %9.0f -> %9.0f shots/s  %+6.1f%%  %.2f allocs/shot  %s\n",
			l.Distance, l.PhysRate, l.Decoder, baseTP, curTP, 100*delta, l.AllocsPerShot, verdict)
	}
	for k := range old {
		fmt.Printf("  d=%-3d p=%-6g %-8s baseline leg missing from current run — skipped\n", k.dist, k.phys, k.dec)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no legs matched between current and baseline")
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d guarded leg(s) regressed more than %.0f%%\n", regressions, 100**maxRegress)
	}
	if allocFails > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d leg(s) exceed %g allocs/shot\n", allocFails, *maxAllocs)
	}
	if regressions > 0 || allocFails > 0 {
		os.Exit(1)
	}
	fmt.Println("benchguard: pass")
}
