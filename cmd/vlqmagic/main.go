// Command vlqmagic reproduces the §VII magic-state distillation analysis:
// Fig. 13a (T-state rate with 100 patches), Fig. 13b (space for one T state
// per timestep), Table II (hardware costs at d=5, k=10), and the
// mechanism-level 15-to-1 schedule estimate on the VLQ machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hardware"
	"repro/internal/layout"
	"repro/internal/magic"
)

func main() {
	d := flag.Int("d", 5, "code distance for resource accounting")
	k := flag.Int("k", 10, "cavity depth")
	patches := flag.Int("patches", 100, "patch budget for the rate comparison")
	flag.Parse()

	fmt.Printf("== Fig. 13a: T-state production rate with %d patches ==\n", *patches)
	for _, p := range magic.Protocols {
		fmt.Printf("  %-12s %.4f T/timestep\n", p.Name, p.RateWithPatches(*patches))
	}
	fmt.Printf("  VQubits vs Fast:  %.2fx (paper: 1.82x)\n", magic.VQubits.SpeedupOver(magic.FastLattice))
	fmt.Printf("  VQubits vs Small: %.2fx (paper: 1.22x)\n", magic.VQubits.SpeedupOver(magic.SmallLattice))

	fmt.Printf("\n== Fig. 13b: space to produce 1 T per timestep ==\n")
	for _, p := range magic.Protocols {
		fmt.Printf("  %-12s %.0f patches\n", p.Name, p.PatchesForOneTPerStep())
	}

	fmt.Printf("\n== Table II: qubit costs per block at d=%d, k=%d ==\n", *d, *k)
	fmt.Printf("  %-20s %10s %10s %12s\n", "protocol", "transmons", "cavities", "total qubits")
	rows := []struct {
		name string
		r    layout.Resources
	}{
		{"Fast Lattice [21]", magic.FastLattice.Resources(*d, *k)},
		{"Small Lattice [12]", magic.SmallLattice.Resources(*d, *k)},
		{"VQubits (natural)", magic.VQubitsSolo.Resources(*d, *k)},
		{"VQubits (compact)", magic.VQubitsSolo.WithEmbedding(layout.Compact, "VQubits (compact)").Resources(*d, *k)},
	}
	for _, row := range rows {
		fmt.Printf("  %-20s %10d %10d %12d\n", row.name, row.r.Transmons, row.r.Cavities, row.r.TotalQubits())
	}

	fmt.Printf("\n== 15-to-1 mechanism schedule on the VLQ machine ==\n")
	counts := magic.Circuit15to1Counts()
	fmt.Printf("  circuit: %d initializations, %d CNOTs, %d measurements (§VII)\n",
		counts.Initializations, counts.CNOTs, counts.Measurements)
	params := hardware.Default()
	params.CavityDepth = *k
	est, err := magic.EstimateVQubitsSchedule(params, *d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlqmagic:", err)
		os.Exit(1)
	}
	fmt.Printf("  scheduled on 1 stack with 6 virtual qubits: %d timesteps (paper's hand schedule: 110 solo, 99/2 lock-step)\n", est.Timesteps)
	fmt.Printf("  schedule stats: %d transversal CNOTs, %d refreshes, %d loads, max staleness %d\n",
		est.Stats.TransversalCNOTs, est.Stats.Refreshes, est.Stats.Loads, est.Stats.MaxStalenessSeen)
}
