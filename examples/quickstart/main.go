// Quickstart: build a Compact-Interleaved memory experiment at distance 3,
// measure its logical error rate at the paper's operating point, and compare
// hardware footprints against the conventional 2D baseline.
package main

import (
	"fmt"
	"log"

	vlq "repro"
)

func main() {
	// The 2.5D hardware model of Table I: transmons with 10-mode cavities.
	params := vlq.DefaultHardware().ScaledGatesTo(2e-3)

	// One distance-3 logical qubit in the Compact embedding: 11 transmons
	// and 9 cavities store k=10 patches (one mode kept free for movement).
	code, err := vlq.NewRotatedCode(3)
	if err != nil {
		log.Fatal(err)
	}
	emb, err := vlq.NewEmbedding(vlq.CompactEmbedding, code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Compact d=3 patch: %d transmons, %d cavities (baseline would use %d transmons per logical qubit)\n",
		emb.NumTransmons(), emb.NumCavities(),
		vlq.EmbeddingResources(vlq.Baseline2DEmbedding, 3, 0).Transmons)

	// Measure the logical error rate of the memory experiment: d rounds of
	// Fig. 10 syndrome extraction, decoded with weighted union-find.
	for _, scheme := range []vlq.Scheme{vlq.Baseline, vlq.CompactInterleaved} {
		res, err := vlq.RunMonteCarlo(vlq.MonteCarloConfig{
			Scheme:   scheme,
			Distance: 3,
			Basis:    vlq.BasisZ,
			Params:   params,
			Trials:   20_000,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s logical error rate = %.5f +- %.5f  (%d detectors, %d error mechanisms)\n",
			scheme, res.Rate(), res.StdErr(), res.DetectorCount, res.Mechanisms)
	}
}
