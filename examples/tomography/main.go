// Tomography example: §III-B's verification that the transversal CNOT of
// Fig. 6 — loading the control patch and applying transmon-mode CNOTs into
// the target patch's cavity modes — implements the exact logical CNOT.
package main

import (
	"fmt"
	"log"

	vlq "repro"
)

func main() {
	for _, d := range []int{3, 5} {
		rep, err := vlq.VerifyTransversalCNOT(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("distance %d (two patches, %d physical qubits):\n", d, rep.PhysicalQubits)
		for _, c := range rep.Checks {
			mark := "ok  "
			if !c.OK {
				mark = "FAIL"
			}
			fmt.Printf("  [%s] %s\n", mark, c.Name)
		}
		if rep.AllOK && rep.StabilizersOK {
			fmt.Println("  all logical generators conjugate as CNOT; all stabilizers preserved")
		}
	}
}
