// Magic-state example: the §VII analysis — compare T-state distillation
// throughput and footprint between the lattice-surgery protocols and the
// VQubits protocol that exploits transversal CNOTs inside a stack.
package main

import (
	"fmt"
	"log"

	vlq "repro"
)

func main() {
	fmt.Println("T-state generation (15-to-1 distillation), 100-patch budget:")
	for _, p := range vlq.DistillationProtocols {
		fmt.Printf("  %-12s %6.3f T/timestep  (block: %d patches, %d T per %d steps)\n",
			p.Name, p.RateWithPatches(100), p.PatchesPerBlock, p.TsPerBatch, p.StepsPerBatch)
	}
	fmt.Printf("\nVQubits speedup: %.2fx over Fast, %.2fx over Small (paper: 1.82x, 1.22x)\n",
		vlq.VQubits.SpeedupOver(vlq.FastLattice),
		vlq.VQubits.SpeedupOver(vlq.SmallLattice))

	fmt.Println("\nSpace to sustain 1 T state per timestep:")
	for _, p := range vlq.DistillationProtocols {
		fmt.Printf("  %-12s %6.0f patches\n", p.Name, p.PatchesForOneTPerStep())
	}

	d, k := 5, 10
	fmt.Printf("\nHardware per block at d=%d, k=%d (Table II):\n", d, k)
	for _, p := range []vlq.DistillationProtocol{vlq.FastLattice, vlq.SmallLattice, vlq.VQubitsSolo} {
		r := p.Resources(d, k)
		fmt.Printf("  %-16s %5d transmons %5d cavities %6d total qubits\n",
			p.Name, r.Transmons, r.Cavities, r.TotalQubits())
	}

	est, err := vlq.EstimateVQubitsSchedule(vlq.DefaultHardware(), d)
	if err != nil {
		log.Fatal(err)
	}
	c := vlq.Circuit15to1Counts()
	fmt.Printf("\n15-to-1 dataflow (%d inits, %d CNOTs, %d measurements) scheduled on one stack: %d timesteps\n",
		c.Initializations, c.CNOTs, c.Measurements, est.Timesteps)
	fmt.Println("(the paper's hand-tuned schedule: 110 timesteps solo, 99 for lock-step pairs)")
}
