// Example serve: submit a Fig. 11 row to the sweep-serving front end and
// stream its cells as they finish.
//
// With -addr pointing at a running vlqserve, the example acts as a pure
// client. Without it, the example starts an in-process server on a
// loopback port first, so it is self-contained:
//
//	go run ./examples/serve
//	go run ./examples/serve -addr localhost:8324
//
// The row is submitted twice. The first submission pays the structure
// builds; the second is served from the engine's cache, which the example
// shows by printing GET /v1/stats after each pass — builds stay flat on
// the repeat while hits grow by one per cell.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "address of a running vlqserve (empty: start one in-process)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		server := serve.NewServer(serve.Config{})
		defer server.Close()
		go http.Serve(ln, server)
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process server on %s\n", ln.Addr())
	}

	// One Fig. 11 row: Compact-Interleaved at d=3 across six physical
	// rates, early-stopped at 50 failures per cell.
	row := `{"scheme":"compact-interleaved","distances":[3],"trials":20000,"target_failures":50,"seed":11}`

	for pass := 1; pass <= 2; pass++ {
		fmt.Printf("\n-- pass %d: POST /v1/sweeps --\n", pass)
		resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(row))
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("submit: HTTP %d", resp.StatusCode))
		}
		fmt.Printf("job %s streaming:\n", resp.Header.Get("X-Sweep-Job"))
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var cell serve.CellRecord
			if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
				fatal(err)
			}
			if cell.Trials == 0 { // trailing JobStatus line
				var status serve.JobStatus
				if json.Unmarshal(sc.Bytes(), &status) == nil && status.State != "" {
					fmt.Printf("job %s: %s (%d/%d cells)\n",
						status.ID, status.State, status.Completed, status.Cells)
					continue
				}
			}
			fmt.Printf("  d=%d p=%-12.4g rate=%-10.3g +/- %-10.2g (%d trials)\n",
				cell.Distance, cell.PhysRate, cell.LogicalRate, cell.StdErr, cell.Trials)
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			fatal(err)
		}

		stats, err := http.Get(base + "/v1/stats")
		if err != nil {
			fatal(err)
		}
		var st serve.StatsResponse
		if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
			fatal(err)
		}
		stats.Body.Close()
		fmt.Printf("engine cache after pass %d: %d builds, %d hits, %d entries\n",
			pass, st.Engine.Builds, st.Engine.Hits, st.Engine.Entries)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve example:", err)
	os.Exit(1)
}
