// Threshold example: a miniature Fig. 11 — sweep the physical error rate
// over distances 3 and 5 for the baseline and the Compact-Interleaved 2.5D
// scheme, print both curves, and estimate the crossing points.
//
// The sweep runs through the shared-pool scheduler: cells stream a progress
// line the moment they finish (in completion order), while the final grid
// is deterministic — the same seed gives the same numbers at any pool
// width.
package main

import (
	"fmt"
	"log"

	vlq "repro"
)

func main() {
	distances := []int{3, 5}
	rates := vlq.DefaultPhysRates(5)
	const trials = 4000

	engine := vlq.NewMonteCarloEngine()
	scheduler := vlq.NewSweepScheduler(engine, vlq.SweepSchedulerOptions{
		OnResult: func(r vlq.SweepCellResult) {
			if r.Err != nil {
				return
			}
			cell := r.Job.Tag.(vlq.ThresholdSweepCell)
			fmt.Printf("  cell done: %-20s d=%d p=%-8.4g -> %.5f\n",
				cell.Scheme, cell.Distance, cell.Phys, r.Result.Rate())
		},
	})

	for _, scheme := range []vlq.Scheme{vlq.Baseline, vlq.CompactInterleaved} {
		fmt.Printf("== %s (streaming as cells finish) ==\n", scheme)
		pts, err := scheduler.ThresholdSweep(scheme, distances, rates, vlq.DefaultHardware(), trials, 7, vlq.DecodeUnionFind, vlq.SweepOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12s %-12s\n", "p", "d=3", "d=5")
		for _, p := range rates {
			fmt.Printf("%-10.4g", p)
			for _, d := range distances {
				for _, pt := range pts {
					if pt.Phys == p && pt.Distance == d {
						fmt.Printf(" %-12.5f", pt.Result.Rate())
					}
				}
			}
			fmt.Println()
		}
		if th := vlq.EstimateThreshold(pts); th > 0 {
			fmt.Printf("threshold estimate: p_th ~= %.4f (paper band: 0.008-0.009)\n\n", th)
		} else {
			fmt.Printf("no crossing bracketed on this grid\n\n")
		}
	}
	fmt.Println("Below threshold the d=5 column beats d=3; above it the ordering flips —")
	fmt.Println("the defining shape of every Fig. 11 panel.")
}
