// Threshold example: a miniature Fig. 11 — sweep the physical error rate
// over distances 3 and 5 for the baseline and the Compact-Interleaved 2.5D
// scheme, print both curves, and estimate the crossing points.
package main

import (
	"fmt"
	"log"

	vlq "repro"
)

func main() {
	distances := []int{3, 5}
	rates := vlq.DefaultPhysRates(5)
	const trials = 4000

	for _, scheme := range []vlq.Scheme{vlq.Baseline, vlq.CompactInterleaved} {
		pts, err := vlq.ThresholdSweep(scheme, distances, rates, vlq.DefaultHardware(), trials, 7, vlq.DecodeUnionFind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", scheme)
		fmt.Printf("%-10s %-12s %-12s\n", "p", "d=3", "d=5")
		for _, p := range rates {
			fmt.Printf("%-10.4g", p)
			for _, d := range distances {
				for _, pt := range pts {
					if pt.Phys == p && pt.Distance == d {
						fmt.Printf(" %-12.5f", pt.Result.Rate())
					}
				}
			}
			fmt.Println()
		}
		if th := vlq.EstimateThreshold(pts); th > 0 {
			fmt.Printf("threshold estimate: p_th ~= %.4f (paper band: 0.008-0.009)\n\n", th)
		} else {
			fmt.Printf("no crossing bracketed on this grid\n\n")
		}
	}
	fmt.Println("Below threshold the d=5 column beats d=3; above it the ordering flips —")
	fmt.Println("the defining shape of every Fig. 11 panel.")
}
