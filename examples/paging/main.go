// Paging example: the paper's proof-of-concept machine (§I, §VIII) — about
// ten logical qubits virtualized on a single Compact distance-3 stack of
// just 11 transmons and 9 cavities. Runs a small entangling workload and
// shows the DRAM-like refresh schedule, paging traffic, and the 6x
// transversal-CNOT advantage.
package main

import (
	"fmt"
	"log"

	vlq "repro"
)

func main() {
	params := vlq.DefaultHardware() // k = 10 modes per cavity
	m, err := vlq.NewMachine(vlq.MachineConfig{
		Rows: 1, Cols: 1, Distance: 3,
		Embedding: vlq.CompactEmbedding,
		Params:    params,
	})
	if err != nil {
		log.Fatal(err)
	}
	hw := m.HardwareResources()
	fmt.Printf("proof-of-concept machine: %d logical qubits on %d transmons + %d cavities\n",
		m.Capacity(), hw.Transmons, hw.Cavities)
	fmt.Println("(the paper's headline: ~10 logical qubits from 11 transmons and 9 cavities)")

	// Allocate nine logical qubits (one mode stays free for movement) and
	// run a GHZ-style entangling chain with transversal CNOTs.
	var qs []vlq.QubitID
	for i := 0; i < m.Capacity(); i++ {
		q, err := m.Alloc(fmt.Sprintf("q%d", i))
		if err != nil {
			log.Fatal(err)
		}
		qs = append(qs, q)
	}
	if err := m.SingleQubit(qs[0]); err != nil { // logical H on the root
		log.Fatal(err)
	}
	for i := 1; i < len(qs); i++ {
		if err := m.CNOT(qs[0], qs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := m.Audit(); err != nil {
		log.Fatal(err)
	}

	st := m.Stats()
	fmt.Printf("\nGHZ chain across all %d virtual qubits:\n", len(qs))
	fmt.Printf("  timesteps:         %d (every CNOT transversal, 1 timestep each)\n", st.Timesteps)
	fmt.Printf("  transversal CNOTs: %d   surgery CNOTs: %d\n", st.TransversalCNOTs, st.SurgeryCNOTs)
	fmt.Printf("  refreshes:         %d (stored patches error-corrected every <= k steps)\n", st.Refreshes)
	fmt.Printf("  loads/stores:      %d/%d\n", st.Loads, st.Stores)
	fmt.Printf("  max staleness:     %d timesteps\n", st.MaxStalenessSeen)
	fmt.Printf("\nthe same chain with lattice-surgery CNOTs would need %dx the CNOT latency\n",
		vlq.CostCNOTSurgery/vlq.CostCNOTTransversal)
}
