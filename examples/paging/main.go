// Paging example: the paper's proof-of-concept machine (§I, §VIII) — about
// ten logical qubits virtualized on a single Compact distance-3 stack of
// just 11 transmons and 9 cavities. Runs a small entangling workload and
// shows the DRAM-like refresh schedule, paging traffic, and the 6x
// transversal-CNOT advantage.
package main

import (
	"fmt"
	"log"

	vlq "repro"
)

func main() {
	params := vlq.DefaultHardware() // k = 10 modes per cavity
	m, err := vlq.NewMachine(vlq.MachineConfig{
		Rows: 1, Cols: 1, Distance: 3,
		Embedding: vlq.CompactEmbedding,
		Params:    params,
	})
	if err != nil {
		log.Fatal(err)
	}
	hw := m.HardwareResources()
	fmt.Printf("proof-of-concept machine: %d logical qubits on %d transmons + %d cavities\n",
		m.Capacity(), hw.Transmons, hw.Cavities)
	fmt.Println("(the paper's headline: ~10 logical qubits from 11 transmons and 9 cavities)")

	// Allocate nine logical qubits (one mode stays free for movement) and
	// run a GHZ-style entangling chain with transversal CNOTs.
	var qs []vlq.QubitID
	for i := 0; i < m.Capacity(); i++ {
		q, err := m.Alloc(fmt.Sprintf("q%d", i))
		if err != nil {
			log.Fatal(err)
		}
		qs = append(qs, q)
	}
	if err := m.SingleQubit(qs[0]); err != nil { // logical H on the root
		log.Fatal(err)
	}
	for i := 1; i < len(qs); i++ {
		if err := m.CNOT(qs[0], qs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := m.Audit(); err != nil {
		log.Fatal(err)
	}

	st := m.Stats()
	fmt.Printf("\nGHZ chain across all %d virtual qubits:\n", len(qs))
	fmt.Printf("  timesteps:         %d (every CNOT transversal, 1 timestep each)\n", st.Timesteps)
	fmt.Printf("  transversal CNOTs: %d   surgery CNOTs: %d\n", st.TransversalCNOTs, st.SurgeryCNOTs)
	fmt.Printf("  refreshes:         %d (stored patches error-corrected every <= k steps)\n", st.Refreshes)
	fmt.Printf("  loads/stores:      %d/%d\n", st.Loads, st.Stores)
	fmt.Printf("  max staleness:     %d timesteps\n", st.MaxStalenessSeen)
	fmt.Printf("\nthe same chain with lattice-surgery CNOTs would need %dx the CNOT latency\n",
		vlq.CostCNOTSurgery/vlq.CostCNOTTransversal)

	// How reliable is one paged-out visit? The refresh scheduler bounds how
	// long a stored patch waits between corrections, so the quantity that
	// matters is the logical error accumulated per visit as the number of
	// correction rounds grows. Sweep that directly: Compact-Interleaved
	// memory experiments of increasing length at the §VI operating point
	// (cavity serialization gaps included), drained through the sweep
	// scheduler's shared pool with rows streaming as they finish.
	fmt.Println("\nper-visit logical error vs rounds between refreshes (d=3, operating point):")
	op := vlq.OperatingPoint()
	var jobs []vlq.SweepJob
	roundCounts := []int{3, 6, 12}
	for _, rounds := range roundCounts {
		jobs = append(jobs, vlq.SweepJob{
			Cfg: vlq.MonteCarloConfig{
				Scheme:        vlq.CompactInterleaved,
				Distance:      3,
				Rounds:        rounds,
				Basis:         vlq.BasisZ,
				Params:        op,
				Trials:        1500,
				Seed:          42 + int64(rounds),
				ChargeGapIdle: true,
			},
			Tag: rounds,
		})
	}
	scheduler := vlq.NewSweepScheduler(vlq.NewMonteCarloEngine(), vlq.SweepSchedulerOptions{
		OnResult: func(r vlq.SweepCellResult) {
			if r.Err == nil {
				fmt.Printf("  rounds=%-3d logical error/visit = %.5f (+/- %.5f)\n",
					r.Job.Tag.(int), r.Result.Rate(), r.Result.StdErr())
			}
		},
	})
	if _, err := scheduler.Run(jobs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("longer storage intervals cost more per visit — the pressure that")
	fmt.Println("sizes the cavity depth k against the refresh budget (§VI).")
}
