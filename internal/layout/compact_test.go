package layout

import "testing"

// subStepOfUse returns, for each data qubit use (plaquette p, step s), the
// absolute sub-step within the cyclic 8-step round at which it executes.
func subStepOfUse(p *Plaquette, s int) int {
	return CompactStepOf(CompactGroupOf(p), s) % 8
}

// Every plaquette covers its full support under the Compact orders, matching
// the baseline orders as a set.
func TestCompactOrdersCoverSupport(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		for i := range c.Plaquettes {
			p := &c.Plaquettes[i]
			base := map[int]bool{}
			for _, q := range p.DataIdx {
				if q >= 0 {
					base[q] = true
				}
			}
			comp := map[int]bool{}
			for s := 0; s < 4; s++ {
				if q := c.CompactDataStep(p, s); q >= 0 {
					if comp[q] {
						t.Fatalf("d=%d plaquette %d: duplicate data %d", d, i, q)
					}
					comp[q] = true
				}
			}
			if len(base) != len(comp) {
				t.Fatalf("d=%d plaquette %d: support size %d vs %d", d, i, len(comp), len(base))
			}
			for q := range base {
				if !comp[q] {
					t.Fatalf("d=%d plaquette %d: data %d missing from compact order", d, i, q)
				}
			}
		}
	}
}

// Step 0 of every plaquette is the colocated data (the merge partner), when
// it exists.
func TestCompactStepZeroIsColocated(t *testing.T) {
	for _, d := range []int{3, 5} {
		c := mustCode(t, d)
		e, err := NewEmbedding(Compact, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Plaquettes {
			p := &c.Plaquettes[i]
			q := c.CompactDataStep(p, 0)
			if q < 0 {
				continue
			}
			merged := e.Transmons[e.AncHost[p.ID]].HasCavity
			if merged && !e.Colocated(p.ID, q) {
				t.Errorf("d=%d plaquette %d: step-0 data %d not colocated", d, i, q)
			}
		}
	}
}

// Hook safety under the Compact orders: the last two data of a Z plaquette
// share a column; the last two data of an X plaquette share a row.
func TestCompactHookSafety(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		for i := range c.Plaquettes {
			p := &c.Plaquettes[i]
			a, b := c.CompactDataStep(p, 2), c.CompactDataStep(p, 3)
			if a < 0 || b < 0 {
				continue
			}
			pa, pb := c.Data[a], c.Data[b]
			if p.Type == PlaqZ && pa.X != pb.X {
				t.Errorf("d=%d: Z plaquette %d compact hook pair %v,%v not column-aligned", d, i, pa, pb)
			}
			if p.Type == PlaqX && pa.Y != pb.Y {
				t.Errorf("d=%d: X plaquette %d compact hook pair %v,%v not row-aligned", d, i, pa, pb)
			}
		}
	}
}

// No data qubit is addressed by two plaquettes in the same sub-step of the
// cyclic schedule.
func TestCompactNoDataDoubleBooking(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		c := mustCode(t, d)
		for sub := 0; sub < 8; sub++ {
			used := map[int]int{}
			for i := range c.Plaquettes {
				p := &c.Plaquettes[i]
				for s := 0; s < 4; s++ {
					if subStepOfUse(p, s) != sub {
						continue
					}
					q := c.CompactDataStep(p, s)
					if q < 0 {
						continue
					}
					if prev, dup := used[q]; dup {
						t.Fatalf("d=%d sub-step %d: data %d used by plaquettes %d and %d", d, sub, q, prev, i)
					}
					used[q] = i
				}
			}
		}
	}
}

// A plaquette's non-colocated data must be hosted by transmons whose own
// duty window does not cover the sub-step of use — otherwise the host could
// not be loaded. This is the availability property the A/B/C/D phasing
// exists to provide.
func TestCompactHostAvailability(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		c := mustCode(t, d)
		e, err := NewEmbedding(Compact, c)
		if err != nil {
			t.Fatal(err)
		}
		inDuty := func(g CompactGroup, sub int) bool {
			first, last := CompactDutyWindow(g)
			for s := first; s <= last; s++ {
				if s%8 == sub {
					return true
				}
			}
			return false
		}
		for i := range c.Plaquettes {
			p := &c.Plaquettes[i]
			for s := 0; s < 4; s++ {
				q := c.CompactDataStep(p, s)
				if q < 0 || e.Colocated(p.ID, q) {
					continue
				}
				host := e.Transmons[e.DataHost[q]]
				if host.AncillaFor < 0 {
					continue // standalone data transmon, never an ancilla
				}
				hostGroup := CompactGroupOf(&c.Plaquettes[host.AncillaFor])
				sub := subStepOfUse(p, s)
				if inDuty(hostGroup, sub) {
					t.Fatalf("d=%d: plaquette %d step %d needs data %d hosted by group-%v transmon during its duty (sub-step %d)",
						d, i, s, q, hostGroup, sub)
				}
			}
		}
	}
}

// The pipelining dividend stated in the file comment: every bulk data
// qubit's three non-colocated uses are consecutive sub-steps (mod 8), so one
// load/store pair per round serves all of them.
func TestCompactBulkUsesConsecutive(t *testing.T) {
	c := mustCode(t, 7)
	e, err := NewEmbedding(Compact, c)
	if err != nil {
		t.Fatal(err)
	}
	uses := make(map[int][]int)
	for i := range c.Plaquettes {
		p := &c.Plaquettes[i]
		for s := 0; s < 4; s++ {
			q := c.CompactDataStep(p, s)
			if q < 0 || e.Colocated(p.ID, q) {
				continue
			}
			uses[q] = append(uses[q], subStepOfUse(p, s))
		}
	}
	for q, subs := range uses {
		pos := c.Data[q]
		bulk := pos.X > 1 && pos.X < 2*c.Distance-1 && pos.Y > 1 && pos.Y < 2*c.Distance-1
		if !bulk {
			continue
		}
		if len(subs) != 3 {
			t.Fatalf("bulk data %d has %d non-colocated uses, want 3", q, len(subs))
		}
		// Check the three sub-steps are consecutive modulo 8.
		ok := false
		for start := 0; start < 8; start++ {
			if contains(subs, start) && contains(subs, (start+1)%8) && contains(subs, (start+2)%8) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("bulk data %d uses at sub-steps %v are not consecutive", q, subs)
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
