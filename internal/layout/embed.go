package layout

import "fmt"

// EmbeddingKind selects how a surface-code patch is mapped onto hardware.
type EmbeddingKind uint8

// The three hardware mappings evaluated in the paper.
const (
	// Baseline2D is the conventional architecture: one transmon per data
	// qubit and one per ancilla, no memory (Fig. 2).
	Baseline2D EmbeddingKind = iota
	// Natural stores each data qubit in a cavity under its own transmon;
	// ancilla transmons have no cavities (§III-A, Fig. 1).
	Natural
	// Compact merges each Z ancilla with its upper-right data transmon and
	// each X ancilla with its lower-left data transmon, halving the
	// transmon count (§III-C, Fig. 7).
	Compact
)

func (k EmbeddingKind) String() string {
	switch k {
	case Baseline2D:
		return "baseline-2d"
	case Natural:
		return "natural"
	default:
		return "compact"
	}
}

// Transmon is one physical transmon in an embedding.
type Transmon struct {
	ID        int
	Pos       Coord
	HasCavity bool
	// HostsData is the data id whose home cavity hangs off this transmon,
	// or -1. In Baseline2D it is the data id living permanently in the
	// transmon itself.
	HostsData int
	// AncillaFor is the plaquette id this transmon serves as measurement
	// ancilla for, or -1.
	AncillaFor int
}

// Embedding maps a Code onto transmons and cavities.
type Embedding struct {
	Kind      EmbeddingKind
	Code      *Code
	Transmons []Transmon
	// DataHost[d] is the transmon id whose cavity (or body, for baseline)
	// holds data qubit d.
	DataHost []int
	// AncHost[p] is the transmon id acting as plaquette p's ancilla.
	AncHost []int
}

// NewEmbedding builds the embedding of code c for the given kind.
func NewEmbedding(kind EmbeddingKind, c *Code) (*Embedding, error) {
	switch kind {
	case Baseline2D, Natural:
		return newSeparateAncillaEmbedding(kind, c), nil
	case Compact:
		return newCompactEmbedding(c)
	default:
		return nil, fmt.Errorf("layout: unknown embedding kind %d", kind)
	}
}

// newSeparateAncillaEmbedding covers Baseline2D and Natural, which share the
// same site plan (one transmon per data and per ancilla); they differ only
// in whether data live in attached cavities (Natural) or in the transmons
// themselves (Baseline2D).
func newSeparateAncillaEmbedding(kind EmbeddingKind, c *Code) *Embedding {
	e := &Embedding{
		Kind:     kind,
		Code:     c,
		DataHost: make([]int, len(c.Data)),
		AncHost:  make([]int, len(c.Plaquettes)),
	}
	for d, pos := range c.Data {
		e.DataHost[d] = len(e.Transmons)
		e.Transmons = append(e.Transmons, Transmon{
			ID:         len(e.Transmons),
			Pos:        pos,
			HasCavity:  kind == Natural,
			HostsData:  d,
			AncillaFor: -1,
		})
	}
	for _, p := range c.Plaquettes {
		e.AncHost[p.ID] = len(e.Transmons)
		e.Transmons = append(e.Transmons, Transmon{
			ID:         len(e.Transmons),
			Pos:        p.Ancilla,
			HasCavity:  false,
			HostsData:  -1,
			AncillaFor: p.ID,
		})
	}
	return e
}

// compactMergePartner returns the data position a plaquette's ancilla merges
// with under the Compact rule: Z ancillas absorb their upper-right data,
// X ancillas their lower-left data. The opposite pairings are what preserve
// 4-way grid connectivity (Fig. 7b).
func compactMergePartner(p *Plaquette) Coord {
	if p.Type == PlaqZ {
		return p.Ancilla.Add(+1, +1)
	}
	return p.Ancilla.Add(-1, -1)
}

func newCompactEmbedding(c *Code) (*Embedding, error) {
	e := &Embedding{
		Kind:     Compact,
		Code:     c,
		DataHost: make([]int, len(c.Data)),
		AncHost:  make([]int, len(c.Plaquettes)),
	}
	for i := range e.DataHost {
		e.DataHost[i] = -1
	}
	for i := range e.AncHost {
		e.AncHost[i] = -1
	}
	// Pass 1: merged ancilla+data transmons at the ancilla site.
	for i := range c.Plaquettes {
		p := &c.Plaquettes[i]
		partner := c.DataIndex(compactMergePartner(p))
		if partner < 0 {
			continue // boundary ancilla with no partner; handled in pass 3
		}
		if e.DataHost[partner] >= 0 {
			return nil, fmt.Errorf("layout: data %d claimed by two ancillas", partner)
		}
		id := len(e.Transmons)
		e.Transmons = append(e.Transmons, Transmon{
			ID: id, Pos: p.Ancilla, HasCavity: true,
			HostsData: partner, AncillaFor: p.ID,
		})
		e.DataHost[partner] = id
		e.AncHost[p.ID] = id
	}
	// Pass 2: data qubits not absorbed by any ancilla keep their own
	// transmon+cavity.
	for d, pos := range c.Data {
		if e.DataHost[d] >= 0 {
			continue
		}
		id := len(e.Transmons)
		e.Transmons = append(e.Transmons, Transmon{
			ID: id, Pos: pos, HasCavity: true,
			HostsData: d, AncillaFor: -1,
		})
		e.DataHost[d] = id
	}
	// Pass 3: unmerged boundary ancillas get bare transmons (no cavity).
	for i := range c.Plaquettes {
		p := &c.Plaquettes[i]
		if e.AncHost[p.ID] >= 0 {
			continue
		}
		id := len(e.Transmons)
		e.Transmons = append(e.Transmons, Transmon{
			ID: id, Pos: p.Ancilla, HasCavity: false,
			HostsData: -1, AncillaFor: p.ID,
		})
		e.AncHost[p.ID] = id
	}
	// Sanity: syndrome-extraction partners must stay within reach of the
	// short-range couplers the paper assumes (at most two lattice units).
	for i := range c.Plaquettes {
		p := &c.Plaquettes[i]
		at := e.Transmons[e.AncHost[p.ID]].Pos
		for _, d := range p.DataIdx {
			if d < 0 {
				continue
			}
			ht := e.Transmons[e.DataHost[d]].Pos
			if abs(ht.X-at.X) > 2 || abs(ht.Y-at.Y) > 2 {
				return nil, fmt.Errorf("layout: plaquette %d data %d host %v too far from ancilla %v", p.ID, d, ht, at)
			}
		}
	}
	return e, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NumTransmons returns the number of transmons in the embedding.
func (e *Embedding) NumTransmons() int { return len(e.Transmons) }

// NumCavities returns the number of attached cavities.
func (e *Embedding) NumCavities() int {
	n := 0
	for _, t := range e.Transmons {
		if t.HasCavity {
			n++
		}
	}
	return n
}

// Colocated reports whether data qubit d lives in the cavity attached to the
// very transmon serving as plaquette p's ancilla. Such data interact with
// the ancilla through a direct transmon-mode gate and never need loading.
func (e *Embedding) Colocated(p, d int) bool {
	return e.AncHost[p] == e.DataHost[d]
}

// Resources summarizes hardware cost, the quantity compared in Table II.
type Resources struct {
	Transmons   int
	Cavities    int
	CavityDepth int // modes per cavity (k)
	// LogicalQubits is how many logical qubits the hardware stores: k per
	// stack for the memory embeddings, 1 per patch for the baseline.
	LogicalQubits int
}

// TotalQubits counts every two-level system: transmons plus k modes per
// cavity, matching the "total qubits" column of Table II.
func (r Resources) TotalQubits() int { return r.Transmons + r.Cavities*r.CavityDepth }

// EmbeddingResources returns the hardware cost of one distance-d patch under
// the given embedding with cavity depth k.
func EmbeddingResources(kind EmbeddingKind, d, k int) Resources {
	switch kind {
	case Baseline2D:
		return Resources{Transmons: 2*d*d - 1, Cavities: 0, CavityDepth: 0, LogicalQubits: 1}
	case Natural:
		return Resources{Transmons: 2*d*d - 1, Cavities: d * d, CavityDepth: k, LogicalQubits: k}
	default: // Compact
		return Resources{Transmons: d*d + d - 1, Cavities: d * d, CavityDepth: k, LogicalQubits: k}
	}
}

// Baseline2DPatchesResources returns the cost of a contiguous region of n
// distance-d patches on a conventional 2D grid: (2*n*d^2 - 1) transmons.
// This is the accounting behind the Fast/Small rows of Table II.
func Baseline2DPatchesResources(n, d int) Resources {
	return Resources{Transmons: 2*n*d*d - 1, LogicalQubits: n}
}
