package layout

// This file encodes the Compact syndrome-extraction schedule of Fig. 10.
//
// The plaquettes are split into four groups: Z plaquettes into A and B and X
// plaquettes into C and D by the column parity of their ancilla. Each round
// is eight CNOT sub-steps; in each sub-step two groups each execute one step
// of their four-CNOT sequence, phase-offset so that a transmon is never
// simultaneously an active ancilla and the (loaded) host of a data qubit
// another plaquette needs:
//
//	s0: A0 C2 | s1: A1 C3 | s2: A2 D0 | s3: A3 D1
//	s4: B0 D2 | s5: B1 D3 | s6: B2 C0 | s7: B3 C1
//
// (the paper's published sequence with the two X groups relabeled). Group C
// straddles the round boundary: its last two CNOTs execute in the first two
// sub-steps of the following round, so a multi-round schedule pipelines with
// a one-round warm-up/cool-down for C.
//
// Within this schedule each plaquette uses its own CNOT data order, uniform
// per type and chosen so that (a) the first Z step and the first X step are
// the colocated (transmon-mode) gate, (b) the hook-error suffix pairs stay
// perpendicular to the endangered logical operator, and (c) every data
// qubit's four uses land in four distinct sub-steps. Remarkably, the orders
// below make every bulk data qubit's three non-colocated uses consecutive,
// so one load and one store per data qubit per round suffices (the property
// Fig. 10 highlights).

// CompactZOffsets is the per-step (dx,dy) data order for Z plaquettes in the
// Compact schedule. Step 0 is the colocated upper-right data.
var CompactZOffsets = [4][2]int{{+1, +1}, {+1, -1}, {-1, -1}, {-1, +1}}

// CompactXOffsets is the per-step data order for X plaquettes. Step 0 is the
// colocated lower-left data.
var CompactXOffsets = [4][2]int{{-1, -1}, {+1, -1}, {+1, +1}, {-1, +1}}

// CompactGroup identifies one of the four phase groups.
type CompactGroup uint8

// The four Compact extraction groups.
const (
	GroupA CompactGroup = iota // Z plaquettes, even ancilla column
	GroupB                     // Z plaquettes, odd ancilla column
	GroupC                     // X plaquettes, even ancilla column
	GroupD                     // X plaquettes, odd ancilla column
)

func (g CompactGroup) String() string {
	return [...]string{"A", "B", "C", "D"}[g]
}

// CompactGroupOf returns the phase group of plaquette p.
func CompactGroupOf(p *Plaquette) CompactGroup {
	even := (p.Ancilla.X/2)%2 == 0
	if p.Type == PlaqZ {
		if even {
			return GroupA
		}
		return GroupB
	}
	if even {
		return GroupC
	}
	return GroupD
}

// GroupStep is one entry of a sub-step: the group acting and which of its
// four CNOT steps it performs.
type GroupStep struct {
	Group CompactGroup
	Step  int
}

// CompactSchedule lists, for each of the eight sub-steps of a round, the two
// (group, step) actions it contains.
var CompactSchedule = [8][2]GroupStep{
	{{GroupA, 0}, {GroupC, 2}},
	{{GroupA, 1}, {GroupC, 3}},
	{{GroupA, 2}, {GroupD, 0}},
	{{GroupA, 3}, {GroupD, 1}},
	{{GroupB, 0}, {GroupD, 2}},
	{{GroupB, 1}, {GroupD, 3}},
	{{GroupB, 2}, {GroupC, 0}},
	{{GroupB, 3}, {GroupC, 1}},
}

// CompactOffsets returns the data order offsets for plaquette type t.
func CompactOffsets(t PlaqType) [4][2]int {
	if t == PlaqZ {
		return CompactZOffsets
	}
	return CompactXOffsets
}

// DataAt returns the data id at the given offset from p's ancilla, or -1.
func (c *Code) DataAt(p *Plaquette, dx, dy int) int {
	return c.DataIndex(p.Ancilla.Add(dx, dy))
}

// CompactDataStep returns the data id plaquette p addresses at Compact step
// s (0..3), or -1 if that corner is outside the patch.
func (c *Code) CompactDataStep(p *Plaquette, s int) int {
	off := CompactOffsets(p.Type)[s]
	return c.DataAt(p, off[0], off[1])
}

// CompactDutyWindow returns the first and last sub-step index (in the
// unrolled stream of 8 per round, relative to the plaquette's own round) at
// which group g performs CNOTs. Group C's window extends past the round
// boundary (values >= 8 index into the next round's sub-steps).
func CompactDutyWindow(g CompactGroup) (first, last int) {
	switch g {
	case GroupA:
		return 0, 3
	case GroupB:
		return 4, 7
	case GroupD:
		return 2, 5
	default: // GroupC: s6, s7, then s0, s1 of the next round
		return 6, 9
	}
}

// CompactStepOf returns the global sub-step (relative to the start of the
// plaquette's own duty round) at which group g performs its CNOT step s.
func CompactStepOf(g CompactGroup, s int) int {
	first, _ := CompactDutyWindow(g)
	return first + s
}
