package layout

import (
	"testing"

	"repro/internal/pauli"
)

func mustCode(t *testing.T, d int) *Code {
	t.Helper()
	c, err := NewRotated(d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// plaquetteOperator renders plaquette p as a Pauli string over data qubits.
func plaquetteOperator(c *Code, p *Plaquette) pauli.Str {
	s := pauli.NewStr(c.NumData())
	base := pauli.Z
	if p.Type == PlaqX {
		base = pauli.X
	}
	for _, d := range p.DataIdx {
		if d >= 0 {
			s[d] = base
		}
	}
	return s
}

func logicalOperator(c *Code, ids []int, base pauli.Pauli) pauli.Str {
	s := pauli.NewStr(c.NumData())
	for _, d := range ids {
		s[d] = base
	}
	return s
}

func TestNewRotatedRejectsBadDistance(t *testing.T) {
	for _, d := range []int{0, 1, 2, 4, -3} {
		if _, err := NewRotated(d); err == nil {
			t.Errorf("NewRotated(%d) should fail", d)
		}
	}
}

func TestCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9, 11} {
		c := mustCode(t, d)
		if got := c.NumData(); got != d*d {
			t.Errorf("d=%d: %d data, want %d", d, got, d*d)
		}
		if got := c.NumPlaquettes(); got != d*d-1 {
			t.Errorf("d=%d: %d plaquettes, want %d", d, got, d*d-1)
		}
		nz := len(c.PlaquettesOfType(PlaqZ))
		nx := len(c.PlaquettesOfType(PlaqX))
		if nz != nx || nz+nx != d*d-1 {
			t.Errorf("d=%d: %d Z and %d X plaquettes, want equal split of %d", d, nz, nx, d*d-1)
		}
		if len(c.LogicalZ) != d || len(c.LogicalX) != d {
			t.Errorf("d=%d: logical operator weights %d/%d, want %d", d, len(c.LogicalZ), len(c.LogicalX), d)
		}
	}
}

func TestPlaquetteWeights(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		w2 := 0
		for i := range c.Plaquettes {
			switch w := c.Plaquettes[i].Weight(); w {
			case 2:
				w2++
			case 4:
			default:
				t.Fatalf("d=%d: plaquette %d has weight %d", d, i, w)
			}
		}
		if w2 != 2*(d-1) {
			t.Errorf("d=%d: %d half-plaquettes, want %d", d, w2, 2*(d-1))
		}
	}
}

func TestStabilizersCommute(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		ops := make([]pauli.Str, len(c.Plaquettes))
		for i := range c.Plaquettes {
			ops[i] = plaquetteOperator(c, &c.Plaquettes[i])
		}
		for i := range ops {
			for j := i + 1; j < len(ops); j++ {
				if !ops[i].Commutes(ops[j]) {
					t.Fatalf("d=%d: plaquettes %d and %d anticommute", d, i, j)
				}
			}
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		lz := logicalOperator(c, c.LogicalZ, pauli.Z)
		lx := logicalOperator(c, c.LogicalX, pauli.X)
		if lz.Commutes(lx) {
			t.Fatalf("d=%d: logical Z and X must anticommute", d)
		}
		if lz.Weight() != d || lx.Weight() != d {
			t.Fatalf("d=%d: logical weights %d/%d", d, lz.Weight(), lx.Weight())
		}
		for i := range c.Plaquettes {
			op := plaquetteOperator(c, &c.Plaquettes[i])
			if !op.Commutes(lz) {
				t.Fatalf("d=%d: plaquette %d anticommutes with logical Z", d, i)
			}
			if !op.Commutes(lx) {
				t.Fatalf("d=%d: plaquette %d anticommutes with logical X", d, i)
			}
		}
	}
}

// Every interior data qubit touches two Z and two X plaquettes; every data
// qubit touches at least one of each.
func TestDataCoverage(t *testing.T) {
	for _, d := range []int{3, 5} {
		c := mustCode(t, d)
		zc := make([]int, c.NumData())
		xc := make([]int, c.NumData())
		for i := range c.Plaquettes {
			p := &c.Plaquettes[i]
			for _, q := range p.DataIdx {
				if q < 0 {
					continue
				}
				if p.Type == PlaqZ {
					zc[q]++
				} else {
					xc[q]++
				}
			}
		}
		for q, pos := range c.Data {
			interior := pos.X > 1 && pos.X < 2*d-1 && pos.Y > 1 && pos.Y < 2*d-1
			if interior && (zc[q] != 2 || xc[q] != 2) {
				t.Errorf("d=%d: interior data %v has %d Z + %d X checks", d, pos, zc[q], xc[q])
			}
			if zc[q] < 1 || xc[q] < 1 || zc[q] > 2 || xc[q] > 2 {
				t.Errorf("d=%d: data %v has %d Z + %d X checks", d, pos, zc[q], xc[q])
			}
		}
	}
}

// No data qubit may be touched by two plaquettes in the same CNOT layer;
// this is what lets all plaquettes extract syndromes in four parallel
// moments.
func TestCNOTLayersConflictFree(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		for l := 0; l < 4; l++ {
			seen := make(map[int]int)
			for i := range c.Plaquettes {
				q := c.Plaquettes[i].DataIdx[l]
				if q < 0 {
					continue
				}
				if prev, dup := seen[q]; dup {
					t.Fatalf("d=%d layer %d: data %d used by plaquettes %d and %d", d, l, q, prev, i)
				}
				seen[q] = i
			}
		}
	}
}

// Hook-error safety: the data qubits touched by the *last two* CNOT layers
// of a plaquette must be aligned perpendicular to the logical operator that
// same-type hooks could extend. For Z plaquettes (whose hooks are X pairs,
// dangerous to horizontal logical X chains) the final pair must share a
// column; for X plaquettes it must share a row.
func TestHookOrderSafety(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		for i := range c.Plaquettes {
			p := &c.Plaquettes[i]
			a, b := p.DataIdx[2], p.DataIdx[3]
			if a < 0 || b < 0 {
				continue // half-plaquettes have weight-1 suffixes at worst
			}
			pa, pb := c.Data[a], c.Data[b]
			if p.Type == PlaqZ && pa.X != pb.X {
				t.Errorf("d=%d: Z plaquette %d hook pair %v,%v not column-aligned", d, i, pa, pb)
			}
			if p.Type == PlaqX && pa.Y != pb.Y {
				t.Errorf("d=%d: X plaquette %d hook pair %v,%v not row-aligned", d, i, pa, pb)
			}
		}
	}
}

func TestSharedData(t *testing.T) {
	c := mustCode(t, 3)
	// Any Z/X plaquette pair shares 0 or 2 data qubits (this is why they
	// commute).
	for i := range c.Plaquettes {
		for j := range c.Plaquettes {
			if i == j || c.Plaquettes[i].Type == c.Plaquettes[j].Type {
				continue
			}
			n := len(SharedData(&c.Plaquettes[i], &c.Plaquettes[j]))
			if n != 0 && n != 2 {
				t.Fatalf("plaquettes %d/%d share %d data", i, j, n)
			}
		}
	}
}

func TestDataIndex(t *testing.T) {
	c := mustCode(t, 3)
	if got := c.DataIndex(Coord{1, 1}); got != 0 {
		t.Errorf("DataIndex(1,1) = %d, want 0", got)
	}
	if got := c.DataIndex(Coord{0, 0}); got != -1 {
		t.Errorf("DataIndex(0,0) = %d, want -1", got)
	}
}
