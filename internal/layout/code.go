// Package layout implements the rotated surface code geometry (Fig. 2 of the
// paper) and the paper's two hardware embeddings of it onto the 2.5D
// transmon+cavity architecture: Natural (§III-A, Fig. 1) and Compact
// (§III-C, Figs. 7 and 8). It also provides the resource-counting functions
// behind Table II and the "11 transmons and 9 cavities" headline claim.
//
// Coordinate convention: the distance-d patch occupies lattice coordinates
// [0, 2d] x [0, 2d]. Data qubits sit at odd-odd coordinates; syndrome
// (measure) ancillas sit at even-even coordinates. The bottom (y=0) and top
// (y=2d) boundaries host Z half-plaquettes; the west (x=0) and east (x=2d)
// boundaries host X half-plaquettes. Logical Z is a vertical Z string on the
// x=1 column; logical X is a horizontal X string on the y=1 row.
package layout

import (
	"fmt"
)

// Coord is a lattice coordinate in the rotated surface code plane.
type Coord struct{ X, Y int }

// Add returns c translated by (dx, dy).
func (c Coord) Add(dx, dy int) Coord { return Coord{c.X + dx, c.Y + dy} }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// PlaqType distinguishes the two stabilizer types of the surface code.
type PlaqType uint8

// Plaquette types: Z plaquettes detect bit-flip (X) errors by measuring
// Z-parities; X plaquettes detect phase-flip (Z) errors by measuring
// X-parities.
const (
	PlaqZ PlaqType = iota
	PlaqX
)

func (t PlaqType) String() string {
	if t == PlaqZ {
		return "Z"
	}
	return "X"
}

// Plaquette is one stabilizer generator: an ancilla site and up to four data
// qubits listed in syndrome-extraction CNOT order. DataIdx has exactly four
// layers aligned across all plaquettes (layer l of every plaquette executes
// in the same circuit moment); boundary half-plaquettes mark their missing
// layers with -1.
//
// The CNOT orders are chosen so that mid-extraction ancilla ("hook") errors
// spread onto data pairs perpendicular to the logical operator they could
// harm, preserving the full code distance (the standard zigzag orders):
// Z plaquettes visit (+1,+1), (+1,-1), (-1,+1), (-1,-1);
// X plaquettes visit (+1,+1), (-1,+1), (+1,-1), (-1,-1).
type Plaquette struct {
	ID      int
	Type    PlaqType
	Ancilla Coord
	DataIdx [4]int // data index per CNOT layer, -1 if absent
}

// Weight returns the number of data qubits in the plaquette (2 or 4).
func (p *Plaquette) Weight() int {
	w := 0
	for _, d := range p.DataIdx {
		if d >= 0 {
			w++
		}
	}
	return w
}

// ZOrder and XOrder are the per-layer (dx,dy) offsets from an ancilla to the
// data qubit it interacts with in that layer.
var (
	ZOrder = [4][2]int{{+1, +1}, {+1, -1}, {-1, +1}, {-1, -1}}
	XOrder = [4][2]int{{+1, +1}, {-1, +1}, {+1, -1}, {-1, -1}}
)

// Code is a distance-d rotated surface code patch.
type Code struct {
	Distance   int
	Data       []Coord     // data qubit positions; index is the data id
	Plaquettes []Plaquette // all stabilizer generators
	LogicalZ   []int       // data ids of the vertical logical-Z string (x=1)
	LogicalX   []int       // data ids of the horizontal logical-X string (y=1)
	dataAt     map[Coord]int
}

// NewRotated constructs the distance-d rotated surface code. d must be odd
// and at least 3.
func NewRotated(d int) (*Code, error) {
	if d < 3 || d%2 == 0 {
		return nil, fmt.Errorf("layout: distance must be odd and >= 3, got %d", d)
	}
	c := &Code{
		Distance: d,
		dataAt:   make(map[Coord]int),
	}
	for y := 1; y < 2*d; y += 2 {
		for x := 1; x < 2*d; x += 2 {
			c.dataAt[Coord{x, y}] = len(c.Data)
			c.Data = append(c.Data, Coord{x, y})
		}
	}
	for j := 0; j <= d; j++ {
		for i := 0; i <= d; i++ {
			pos := Coord{2 * i, 2 * j}
			typ := PlaqX
			if (i+j)%2 == 0 {
				typ = PlaqZ
			}
			if !ancillaIncluded(d, i, j, typ) {
				continue
			}
			p := Plaquette{ID: len(c.Plaquettes), Type: typ, Ancilla: pos}
			order := ZOrder
			if typ == PlaqX {
				order = XOrder
			}
			for l, off := range order {
				q, ok := c.dataAt[pos.Add(off[0], off[1])]
				if !ok {
					q = -1
				}
				p.DataIdx[l] = q
			}
			c.Plaquettes = append(c.Plaquettes, p)
		}
	}
	for y := 1; y < 2*d; y += 2 {
		c.LogicalZ = append(c.LogicalZ, c.dataAt[Coord{1, y}])
	}
	for x := 1; x < 2*d; x += 2 {
		c.LogicalX = append(c.LogicalX, c.dataAt[Coord{x, 1}])
	}
	return c, nil
}

// ancillaIncluded implements the boundary rules: bulk ancillas are always
// present; the top/bottom boundaries keep only Z half-plaquettes; the
// east/west boundaries keep only X half-plaquettes; corners are dropped.
func ancillaIncluded(d, i, j int, typ PlaqType) bool {
	interiorI := i >= 1 && i <= d-1
	interiorJ := j >= 1 && j <= d-1
	switch {
	case interiorI && interiorJ:
		return true
	case (j == 0 || j == d) && interiorI:
		return typ == PlaqZ
	case (i == 0 || i == d) && interiorJ:
		return typ == PlaqX
	default:
		return false
	}
}

// DataIndex returns the data id at position c, or -1.
func (c *Code) DataIndex(pos Coord) int {
	if id, ok := c.dataAt[pos]; ok {
		return id
	}
	return -1
}

// NumData returns the number of data qubits (d^2).
func (c *Code) NumData() int { return len(c.Data) }

// NumPlaquettes returns the number of stabilizer generators (d^2 - 1).
func (c *Code) NumPlaquettes() int { return len(c.Plaquettes) }

// PlaquettesOfType returns the plaquettes with the given type.
func (c *Code) PlaquettesOfType(t PlaqType) []Plaquette {
	var out []Plaquette
	for _, p := range c.Plaquettes {
		if p.Type == t {
			out = append(out, p)
		}
	}
	return out
}

// SharedData returns the data ids common to plaquettes a and b.
func SharedData(a, b *Plaquette) []int {
	var out []int
	for _, da := range a.DataIdx {
		if da < 0 {
			continue
		}
		for _, db := range b.DataIdx {
			if da == db {
				out = append(out, da)
			}
		}
	}
	return out
}
