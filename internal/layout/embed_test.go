package layout

import "testing"

func mustEmbedding(t *testing.T, kind EmbeddingKind, d int) *Embedding {
	t.Helper()
	c := mustCode(t, d)
	e, err := NewEmbedding(kind, c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The paper's headline resource claim (§I, §VIII): the smallest Compact
// instance needs only 11 transmons and 9 cavities for k logical qubits.
func TestCompactSmallestInstance(t *testing.T) {
	e := mustEmbedding(t, Compact, 3)
	if got := e.NumTransmons(); got != 11 {
		t.Errorf("Compact d=3: %d transmons, want 11", got)
	}
	if got := e.NumCavities(); got != 9 {
		t.Errorf("Compact d=3: %d cavities, want 9", got)
	}
}

// Table II: VQubits (natural) = 49 transmons + 25 cavities; VQubits
// (compact) = 29 transmons + 25 cavities; with k=10 the totals are 299 and
// 279 qubits. Fast Lattice = 1499 transmons (30 patches), Small = 549 (11).
func TestTableIIResourceCounts(t *testing.T) {
	nat := EmbeddingResources(Natural, 5, 10)
	if nat.Transmons != 49 || nat.Cavities != 25 || nat.TotalQubits() != 299 {
		t.Errorf("Natural d=5 k=10: got %+v (total %d)", nat, nat.TotalQubits())
	}
	cmp := EmbeddingResources(Compact, 5, 10)
	if cmp.Transmons != 29 || cmp.Cavities != 25 || cmp.TotalQubits() != 279 {
		t.Errorf("Compact d=5 k=10: got %+v (total %d)", cmp, cmp.TotalQubits())
	}
	fast := Baseline2DPatchesResources(30, 5)
	if fast.Transmons != 1499 {
		t.Errorf("Fast Lattice (30 patches, d=5): %d transmons, want 1499", fast.Transmons)
	}
	small := Baseline2DPatchesResources(11, 5)
	if small.Transmons != 549 {
		t.Errorf("Small Lattice (11 patches, d=5): %d transmons, want 549", small.Transmons)
	}
}

// The embedding structs must agree with the closed-form resource formulas.
func TestEmbeddingMatchesFormulas(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		for _, kind := range []EmbeddingKind{Baseline2D, Natural, Compact} {
			e := mustEmbedding(t, kind, d)
			r := EmbeddingResources(kind, d, 10)
			if e.NumTransmons() != r.Transmons {
				t.Errorf("%v d=%d: embedding has %d transmons, formula says %d", kind, d, e.NumTransmons(), r.Transmons)
			}
			if e.NumCavities() != r.Cavities {
				t.Errorf("%v d=%d: embedding has %d cavities, formula says %d", kind, d, e.NumCavities(), r.Cavities)
			}
		}
	}
}

// The paper's savings claims: Natural saves ~k transmons per logical qubit
// (10x at k=10) and Compact saves ~2x more.
func TestTransmonSavingsClaims(t *testing.T) {
	d, k := 5, 10
	base := EmbeddingResources(Baseline2D, d, 0)
	nat := EmbeddingResources(Natural, d, k)
	cmp := EmbeddingResources(Compact, d, k)

	baselinePerLogical := float64(base.Transmons)
	natPerLogical := float64(nat.Transmons) / float64(k)
	cmpPerLogical := float64(cmp.Transmons) / float64(k)

	if ratio := baselinePerLogical / natPerLogical; ratio < 9 || ratio > 11 {
		t.Errorf("Natural transmon saving = %.2fx, want ~10x", ratio)
	}
	if ratio := natPerLogical / cmpPerLogical; ratio < 1.5 || ratio > 2.1 {
		t.Errorf("Compact extra saving = %.2fx, want ~2x", ratio)
	}
}

func TestEmbeddingInvariants(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		for _, kind := range []EmbeddingKind{Baseline2D, Natural, Compact} {
			e := mustEmbedding(t, kind, d)
			c := e.Code
			// Every data qubit has exactly one host; every plaquette has
			// exactly one ancilla transmon; hosts are consistent with the
			// transmon records.
			for q := range c.Data {
				h := e.DataHost[q]
				if h < 0 || h >= len(e.Transmons) {
					t.Fatalf("%v d=%d: data %d has invalid host %d", kind, d, q, h)
				}
				if e.Transmons[h].HostsData != q {
					t.Fatalf("%v d=%d: host mismatch for data %d", kind, d, q)
				}
				if kind != Baseline2D && !e.Transmons[h].HasCavity {
					t.Fatalf("%v d=%d: data %d hosted by cavity-less transmon", kind, d, q)
				}
			}
			for p := range c.Plaquettes {
				h := e.AncHost[p]
				if h < 0 || e.Transmons[h].AncillaFor != p {
					t.Fatalf("%v d=%d: ancilla host mismatch for plaquette %d", kind, d, p)
				}
			}
			// No two data share a host cavity/slot.
			seen := make(map[int]bool)
			for q := range c.Data {
				if seen[e.DataHost[q]] {
					t.Fatalf("%v d=%d: two data share host %d", kind, d, e.DataHost[q])
				}
				seen[e.DataHost[q]] = true
			}
		}
	}
}

// In Compact, exactly one data qubit per merged plaquette is colocated with
// its ancilla (reachable with a direct transmon-mode gate); in Natural and
// Baseline2D none are.
func TestColocation(t *testing.T) {
	for _, d := range []int{3, 5} {
		e := mustEmbedding(t, Compact, d)
		merged := 0
		for p := range e.Code.Plaquettes {
			n := 0
			for _, q := range e.Code.Plaquettes[p].DataIdx {
				if q >= 0 && e.Colocated(p, q) {
					n++
				}
			}
			if n > 1 {
				t.Fatalf("Compact d=%d: plaquette %d colocated with %d data", d, p, n)
			}
			if n == 1 {
				merged++
			}
		}
		if want := e.Code.NumPlaquettes() - (d - 1); merged != want {
			t.Errorf("Compact d=%d: %d merged plaquettes, want %d", d, merged, want)
		}

		nat := mustEmbedding(t, Natural, d)
		for p := range nat.Code.Plaquettes {
			for _, q := range nat.Code.Plaquettes[p].DataIdx {
				if q >= 0 && nat.Colocated(p, q) {
					t.Fatalf("Natural d=%d: unexpected colocation", d)
				}
			}
		}
	}
}

func TestCompactUnmergedAncillaCount(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		e := mustEmbedding(t, Compact, d)
		bare := 0
		for _, tr := range e.Transmons {
			if !tr.HasCavity {
				bare++
			}
		}
		if bare != d-1 {
			t.Errorf("Compact d=%d: %d bare ancilla transmons, want %d", d, bare, d-1)
		}
	}
}
