package layout

import (
	"fmt"
	"strings"
)

// Render draws the embedding as ASCII art in the paper's Fig. 2/7 style:
// 'D' marks a data transmon, 'z'/'x' mark Z/X measure ancillas, 'Z'/'X'
// mark Compact's merged ancilla+data transmons (cavity attached), and '.'
// marks empty lattice sites.
func (e *Embedding) Render() string {
	d := e.Code.Distance
	grid := make([][]byte, 2*d+1)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", 2*d+1))
	}
	for _, tr := range e.Transmons {
		var c byte
		switch {
		case tr.AncillaFor >= 0 && tr.HasCavity:
			c = 'Z'
			if e.Code.Plaquettes[tr.AncillaFor].Type == PlaqX {
				c = 'X'
			}
		case tr.AncillaFor >= 0:
			c = 'z'
			if e.Code.Plaquettes[tr.AncillaFor].Type == PlaqX {
				c = 'x'
			}
		default:
			c = 'D'
		}
		grid[tr.Pos.Y][tr.Pos.X] = c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s embedding, distance %d (%d transmons, %d cavities)\n",
		e.Kind, d, e.NumTransmons(), e.NumCavities())
	// Print with y increasing upward, like the figures.
	for y := 2 * d; y >= 0; y-- {
		for x := 0; x <= 2*d; x++ {
			b.WriteByte(grid[y][x])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	b.WriteString("D data transmon | z/x bare Z/X ancilla | Z/X merged ancilla+cavity | . empty\n")
	return b.String()
}
