package layout

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pauli"
)

// Property: for any valid distance, the full stabilizer group machinery
// holds — counts, commutation, logical anticommutation, embedding formula
// agreement for all three embeddings.
func TestCodePropertiesQuick(t *testing.T) {
	f := func(seed uint8) bool {
		d := 3 + 2*int(seed%5) // 3,5,7,9,11
		c, err := NewRotated(d)
		if err != nil {
			return false
		}
		if c.NumData() != d*d || c.NumPlaquettes() != d*d-1 {
			return false
		}
		lz := logicalOperator(c, c.LogicalZ, pauli.Z)
		lx := logicalOperator(c, c.LogicalX, pauli.X)
		if lz.Commutes(lx) {
			return false
		}
		for i := range c.Plaquettes {
			op := plaquetteOperator(c, &c.Plaquettes[i])
			if !op.Commutes(lz) || !op.Commutes(lx) {
				return false
			}
		}
		for _, kind := range []EmbeddingKind{Baseline2D, Natural, Compact} {
			e, err := NewEmbedding(kind, c)
			if err != nil {
				return false
			}
			r := EmbeddingResources(kind, d, 10)
			if e.NumTransmons() != r.Transmons || e.NumCavities() != r.Cavities {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// The stabilizer group must have full rank d^2-1: no generator is a product
// of the others. Verified by symplectic Gaussian elimination.
func TestStabilizerIndependence(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := mustCode(t, d)
		// Build binary symplectic vectors (x|z) per generator.
		n := c.NumData()
		rows := make([][]byte, 0, c.NumPlaquettes())
		for i := range c.Plaquettes {
			op := plaquetteOperator(c, &c.Plaquettes[i])
			v := make([]byte, 2*n)
			for q, p := range op {
				if p.XBit() {
					v[q] = 1
				}
				if p.ZBit() {
					v[n+q] = 1
				}
			}
			rows = append(rows, v)
		}
		rank := 0
		for col := 0; col < 2*n && rank < len(rows); col++ {
			pivot := -1
			for r := rank; r < len(rows); r++ {
				if rows[r][col] == 1 {
					pivot = r
					break
				}
			}
			if pivot < 0 {
				continue
			}
			rows[rank], rows[pivot] = rows[pivot], rows[rank]
			for r := 0; r < len(rows); r++ {
				if r != rank && rows[r][col] == 1 {
					for cc := 0; cc < 2*n; cc++ {
						rows[r][cc] ^= rows[rank][cc]
					}
				}
			}
			rank++
		}
		if rank != d*d-1 {
			t.Errorf("d=%d: stabilizer rank %d, want %d", d, rank, d*d-1)
		}
	}
}

// Logical operators are minimal-weight representatives: no stabilizer
// product can reduce logical Z below weight d. (Checked indirectly: logical
// Z times any single stabilizer has weight >= d.)
func TestLogicalMinimality(t *testing.T) {
	c := mustCode(t, 5)
	lz := logicalOperator(c, c.LogicalZ, pauli.Z)
	for i := range c.Plaquettes {
		op := plaquetteOperator(c, &c.Plaquettes[i])
		prod := lz.Clone()
		prod.MulInto(op)
		if prod.Weight() < c.Distance {
			t.Errorf("logical Z * plaquette %d has weight %d < d", i, prod.Weight())
		}
	}
}

func TestRender(t *testing.T) {
	for _, kind := range []EmbeddingKind{Baseline2D, Natural, Compact} {
		e := mustEmbedding(t, kind, 3)
		s := e.Render()
		if !strings.Contains(s, "distance 3") {
			t.Errorf("%v: render missing header", kind)
		}
		if kind == Compact {
			if !strings.Contains(s, "Z") || !strings.Contains(s, "X") {
				t.Error("compact render must show merged transmons")
			}
			// d-1 bare ancillas remain.
			if strings.Count(s, "z")+strings.Count(s, "x") < 2 {
				t.Error("compact render must show the unmerged boundary ancillas")
			}
		}
		if kind == Baseline2D && strings.Contains(strings.Split(s, "\n")[1], "Z") {
			t.Error("baseline render must not show merged transmons")
		}
	}
}

func TestCompactScheduleTable(t *testing.T) {
	// Every (group, step) pair appears exactly once in the schedule.
	seen := map[GroupStep]bool{}
	for _, sub := range CompactSchedule {
		for _, gs := range sub {
			if seen[gs] {
				t.Fatalf("duplicate schedule entry %+v", gs)
			}
			seen[gs] = true
		}
	}
	if len(seen) != 16 {
		t.Fatalf("schedule covers %d entries, want 16", len(seen))
	}
	for _, g := range []CompactGroup{GroupA, GroupB, GroupC, GroupD} {
		first, last := CompactDutyWindow(g)
		if last-first != 3 {
			t.Errorf("group %v duty window [%d,%d] is not 4 contiguous steps", g, first, last)
		}
		for s := 0; s < 4; s++ {
			if got := CompactStepOf(g, s); got != first+s {
				t.Errorf("CompactStepOf(%v,%d) = %d, want %d", g, s, got, first+s)
			}
		}
	}
}

func TestCompactGroupOf(t *testing.T) {
	c := mustCode(t, 5)
	counts := map[CompactGroup]int{}
	for i := range c.Plaquettes {
		p := &c.Plaquettes[i]
		g := CompactGroupOf(p)
		counts[g]++
		// Z plaquettes land in A/B, X in C/D.
		isZ := p.Type == PlaqZ
		if isZ != (g == GroupA || g == GroupB) {
			t.Fatalf("plaquette %d type %v assigned group %v", i, p.Type, g)
		}
	}
	for g, n := range counts {
		if n == 0 {
			t.Errorf("group %v empty", g)
		}
	}
}
