// Package sched is the serving-oriented sweep scheduler: a queue of
// Monte-Carlo sweep cells drained by one shared worker pool, instead of the
// cell-at-a-time loop with per-cell worker forking that sweeps used before.
//
// Each cell executes single-threaded on whichever pool worker picks it up
// (montecarlo.Engine.RunOn as worker 0 of its own point), so a cell's
// result depends only on its Config — never on the pool width or on which
// cells finished first. Workers thread one montecarlo.WorkerState through
// their consecutive cells, reusing sampler tables, union-find arrays, and
// batch buffers across the noise scales of a row; the engine's bounded
// structure cache does the same for the expensive structural halves.
//
// Results stream as cells finish — through the Options.OnResult callback
// (serialized, completion order) or the Stream channel — while Run returns
// them in submission order, so CLIs print rows incrementally and still end
// with a deterministic grid. The ordering contract, precisely: completion
// ORDER varies with pool width and cell durations, but result IDENTITY
// does not — the CellResult carrying a given Index is bit-identical at
// every pool width.
//
// Entry points:
//
//   - Job / CellResult: one schedulable cell and its outcome
//   - New(engine, Options) -> Scheduler; Options.Jobs sets the pool width
//   - Scheduler.Run / RunContext: drain jobs, results in submission order;
//     RunContext stops picking up cells once the context is cancelled
//     (cell-boundary granularity — the hook the HTTP front end's job
//     cancellation is built on)
//   - Scheduler.Stream / StreamContext: drain jobs, results on a channel
//     in completion order
//   - ThresholdJobs / SensitivityJobs: expand a Fig. 11 grid or Fig. 12
//     panel into jobs, cell-for-cell identical to the sequential sweeps
//     in internal/montecarlo
//
// internal/serve builds on this package to run sweeps as cancellable HTTP
// jobs; cmd/vlqthreshold and cmd/vlqsense use it for -jobs/-csv/-json
// streaming sweeps.
package sched
