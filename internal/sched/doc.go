// Package sched is the serving-oriented sweep scheduler: a queue of
// Monte-Carlo sweep cells drained by one shared worker pool, cost-ordered
// and work-stealing, instead of the cell-at-a-time loop with per-cell
// worker forking that sweeps used before.
//
// # Execution model
//
// Each cell executes single-threaded on whichever pool worker picks it up
// (montecarlo.Engine.RunOn as worker 0 of its own point), so a cell's
// result depends only on its Config — never on the pool width or on which
// cells finished first. Workers thread one montecarlo.WorkerState through
// their consecutive units, reusing sampler tables, union-find arrays, and
// batch buffers across the noise scales of a row; the engine's bounded
// structure cache does the same for the expensive structural halves.
//
// # Cost model
//
// The queue is ordered longest-cell-first by default (Options.Queue ==
// OrderCost). CellCost estimates a cell's decode cost from the
// dem.Structure dimensions its Config implies — detectors per round
// (d^2-1), rounds, trials — without touching the engine, so ordering is a
// pure function of the job list. Longest-first matters on skewed grids:
// submission order parks the dominant cell behind the small ones and the
// pool idles while it finishes alone at the tail. OrderFIFO retains the
// old behavior as the benchmark baseline. Ordering affects wall clock
// only, never results.
//
// # Work stealing and the shard-plan determinism invariant
//
// Options.ShardShots splits cells above the threshold into shard units
// (montecarlo.PlanShards; positive thresholds below
// montecarlo.MinShardShots are raised to that floor) that idle workers
// steal from the same queue. Shard i of a cell consumes ChaCha8 worker
// stream i of the cell's seed, and the last shard to finish merges the
// parts (montecarlo.MergeShards) into the cell's one CellResult. The
// invariant: a shard plan derives from the cell spec and the threshold
// alone — never from pool width or runtime state — so a sharded cell's
// merged result is bit-identical at every pool width, and equals
// montecarlo.Engine.Run with Workers == shards (not the unsharded
// single-stream result; pick a threshold, keep it, and results are
// reproducible).
//
// # Cross-shard early stop
//
// A sharded cell with Config.TargetFailures > 0 coordinates early
// stopping through one shared montecarlo.ShardBudget: every shard banks
// its failures into the budget's atomic and checks it per 64-shot batch,
// so the whole cell stops soon after the target is met no matter which
// shard met it. The contract: failure and trial counts merge
// deterministically from whatever the shards report, but WHICH shot a
// sharded point stops at is timing-dependent — the same trade
// montecarlo.Engine.Run's workers have always made. Fixed-trial sharded
// cells (TargetFailures == 0) remain bit-exact.
//
// # Cancellation
//
// RunContext/StreamContext observe cancellation at unit boundaries: once
// the context is done, workers stop picking up units, cells that never
// started carry the context error (without being emitted), and in-flight
// shards of sharded cells abort at their next batch boundary — their cell
// can no longer complete, so finishing them is wasted work. A cell with
// any skipped or aborted shard is dropped, never emitted: consumers see
// no partial merges. In-flight unsharded cells run to completion as
// before. This is the hook the HTTP front end's job cancellation (DELETE,
// client disconnect) is built on.
//
// # Entry points
//
//   - Job / CellResult: one schedulable cell and its outcome
//   - New(engine, Options) -> Scheduler; Options.Jobs sets the pool
//     width, Options.Queue the order, Options.ShardShots the stealing
//     threshold
//   - Scheduler.Run / RunContext: drain jobs, results in submission order
//   - Scheduler.Stream / StreamContext: drain jobs, results on a channel
//     in completion order
//   - CellCost: the ordering estimate, exported for tests and tooling
//   - ThresholdJobs / SensitivityJobs: expand a Fig. 11 grid or Fig. 12
//     panel into jobs, cell-for-cell identical to the sequential sweeps
//     in internal/montecarlo
//
// The ordering contract, precisely: completion ORDER varies with pool
// width and cell durations, but result IDENTITY does not — the CellResult
// carrying a given Index is bit-identical at every pool width, per shard
// plan. internal/serve builds on this package to run sweeps as
// cancellable HTTP jobs; cmd/vlqthreshold and cmd/vlqsense use it for
// -jobs/-shard-shots/-csv/-json streaming sweeps.
package sched
