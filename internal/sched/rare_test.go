package sched

import (
	"fmt"
	"math"
	"slices"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
)

func rareOpts(boost, targetRelErr float64) montecarlo.SweepOptions {
	return montecarlo.SweepOptions{RareEvent: true, Boost: boost, TargetRelErr: targetRelErr}
}

// Weighted sweeps must carry the full determinism contract: bit-identical
// weighted tallies across pool widths {1,2,4,8} × shard thresholds ×
// Run/Stream, with the sharded merge equal to the engine's multi-worker run
// of the same plan.
func TestRareSweepDeterministicAcrossWidthsAndShards(t *testing.T) {
	if testing.Short() {
		t.Skip("width x threshold matrix; run by the dedicated race-scheduler CI job")
	}
	const trials = 4200
	mk := func() []Job {
		return ThresholdJobs(extract.Baseline, []int{3, 5}, []float64{2e-3, 4e-3},
			hardware.Default(), trials, 21, montecarlo.UF, rareOpts(2, 0))
	}
	for _, shardShots := range []int{0, montecarlo.MinShardShots, 2 * montecarlo.MinShardShots} {
		plan := montecarlo.PlanShards(trials, shardShots)
		name := fmt.Sprintf("shard=%d(plan %d)", shardShots, plan.Shards)
		var ref []CellResult
		for _, width := range []int{1, 2, 4, 8} {
			en := montecarlo.NewEngine()
			s := New(en, Options{Jobs: width, ShardShots: shardShots})
			results, err := s.Run(mk())
			if err != nil {
				t.Fatalf("%s width %d: %v", name, width, err)
			}
			var streamed []CellResult
			for r := range s.Stream(mk()) {
				if r.Err != nil {
					t.Fatalf("%s width %d: stream cell %d: %v", name, width, r.Index, r.Err)
				}
				streamed = append(streamed, r)
			}
			slices.SortFunc(streamed, func(a, b CellResult) int { return a.Index - b.Index })
			for i := range results {
				a, b := results[i].Result, streamed[i].Result
				if a.Weighted != b.Weighted || a.Failures != b.Failures {
					t.Errorf("%s width %d cell %d: Run and Stream weighted tallies diverged:\n%+v\n%+v",
						name, width, i, a.Weighted, b.Weighted)
				}
			}
			if ref == nil {
				ref = results
				if plan.Shards > 1 {
					cfg := results[0].Job.Cfg
					cfg.Workers = plan.Shards
					want, err := en.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					got := results[0].Result
					if got.Weighted != want.Weighted {
						t.Errorf("%s: sharded merge diverged from Run(Workers=%d):\n%+v\n%+v",
							name, plan.Shards, got.Weighted, want.Weighted)
					}
				}
				continue
			}
			for i := range results {
				a, b := results[i].Result, ref[i].Result
				if a.Weighted != b.Weighted || a.Failures != b.Failures {
					t.Errorf("%s width %d cell %d: weighted tally diverged from width-1 reference:\n%+v\n%+v",
						name, width, i, a.Weighted, b.Weighted)
				}
			}
		}
	}
}

// A weighted cell whose pooled estimate converges must settle its remaining
// shard units without touching the engine — the rel-err sibling of the
// TargetFailures steal-aware skip.
func TestStealAwareTargetRelErrSkipsShards(t *testing.T) {
	const trials = 4 * montecarlo.MinShardShots
	cfg := montecarlo.ThresholdCellConfig(extract.Baseline, 3, 1.6e-2, hardware.Default(),
		trials, 21, montecarlo.UF, rareOpts(1.5, 0.3))
	en := montecarlo.NewEngine()
	s := New(en, Options{Jobs: 1, ShardShots: montecarlo.MinShardShots})
	results, err := s.Run([]Job{{Cfg: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0].Result
	if res.Weighted.Estimate() <= 0 {
		t.Fatalf("no estimate at d=3 p=1.6e-2 over %d trials", res.Trials)
	}
	if re := res.RelErr(); !(re <= 0.3) {
		t.Errorf("converged cell reports relative error %g, target 0.3", re)
	}
	if res.Trials <= 0 || res.Trials > montecarlo.MinShardShots {
		t.Errorf("first shard took %d trials; rel-err stop should cap it at the %d-trial shard",
			res.Trials, montecarlo.MinShardShots)
	}
	if res.Mechanisms == 0 || res.DetectorCount == 0 {
		t.Errorf("merged cell lost its model dimensions: %d mechs, %d detectors",
			res.Mechanisms, res.DetectorCount)
	}
	stats := en.CacheStats()
	if got := stats.Builds + stats.Hits; got != 1 {
		t.Errorf("engine saw %d structure accesses (%d builds + %d hits), want 1: "+
			"converged shard units must be skipped without an engine prepare",
			got, stats.Builds, stats.Hits)
	}
}

// Rare-event cells must rank above their unweighted twins in the cost queue
// (denser syndromes cost more), and the multiplier must be a pure function
// of the Config.
func TestCellCostRareMultiplier(t *testing.T) {
	base := montecarlo.ThresholdCellConfig(extract.Baseline, 5, 1e-3, hardware.Default(),
		10000, 1, montecarlo.UF, montecarlo.SweepOptions{})
	rare := base
	rare.RareEvent, rare.Boost = true, 3
	if !(CellCost(rare) > CellCost(base)) {
		t.Errorf("rare cell cost %g not above plain %g", CellCost(rare), CellCost(base))
	}
	if got, want := CellCost(rare), 3*CellCost(base); math.Abs(got-want) > 1e-9*want {
		t.Errorf("boost-3 cost %g, want %g", got, want)
	}
	def := base
	def.RareEvent = true // zero Boost => DefaultBoost
	if got, want := CellCost(def), montecarlo.DefaultBoost*CellCost(base); math.Abs(got-want) > 1e-9*want {
		t.Errorf("default-boost cost %g, want %g", got, want)
	}
}
