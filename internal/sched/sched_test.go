package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
)

func thresholdGrid(trials int) []Job {
	return ThresholdJobs(extract.Baseline, []int{3, 5}, []float64{4e-3, 8e-3, 1.6e-2},
		hardware.Default(), trials, 21, montecarlo.UF, montecarlo.SweepOptions{})
}

// Same seed => identical per-cell stats regardless of the pool width (and
// therefore of cell completion order): every cell runs single-threaded as
// worker 0 of its own point, so the stream it consumes is fixed by its
// Config alone.
func TestSchedulerDeterministicAcrossPoolWidths(t *testing.T) {
	var ref []CellResult
	for _, width := range []int{1, 2, 7} {
		s := New(montecarlo.NewEngine(), Options{Jobs: width})
		results, err := s.Run(thresholdGrid(400))
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if ref == nil {
			ref = results
			continue
		}
		for i := range results {
			a, b := results[i].Result, ref[i].Result
			if a.Failures != b.Failures || a.Trials != b.Trials {
				t.Errorf("width %d cell %d: %d/%d failures/trials, want %d/%d (width 1)",
					width, i, a.Failures, a.Trials, b.Failures, b.Trials)
			}
		}
	}
}

// A scheduled cell must be bit-identical to running its Config directly
// with Workers == 1: the pool is pure orchestration.
func TestSchedulerCellMatchesDirectRun(t *testing.T) {
	en := montecarlo.NewEngine()
	jobs := thresholdGrid(300)
	results, err := New(en, Options{Jobs: 3}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		cfg := jobs[i].Cfg
		cfg.Workers = 1
		want, err := en.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Failures != want.Failures || r.Result.Trials != want.Trials {
			t.Errorf("cell %d: scheduled %d/%d vs direct %d/%d failures/trials",
				i, r.Result.Failures, r.Result.Trials, want.Failures, want.Trials)
		}
	}
}

// Run returns results in submission order with the jobs' tags intact, and
// OnResult fires exactly once per cell. The non-atomic counter inside the
// callback doubles as a serialization check under -race.
func TestSchedulerStreamsEveryCellOnce(t *testing.T) {
	jobs := thresholdGrid(150)
	seen := make([]int, len(jobs))
	calls := 0
	s := New(nil, Options{Jobs: 4, OnResult: func(r CellResult) {
		seen[r.Index]++
		calls++
	}})
	results, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Errorf("OnResult fired %d times for %d jobs", calls, len(jobs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("cell %d streamed %d times", i, n)
		}
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		cell := r.Job.Tag.(ThresholdCell)
		want := jobs[i].Tag.(ThresholdCell)
		if cell != want {
			t.Errorf("result %d tag %+v, want %+v", i, cell, want)
		}
	}
}

// The channel API must deliver every cell exactly once and close.
func TestSchedulerStreamChannel(t *testing.T) {
	jobs := thresholdGrid(150)
	seen := make([]int, len(jobs))
	for r := range New(nil, Options{Jobs: 2}).Stream(jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		seen[r.Index]++
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("cell %d delivered %d times", i, n)
		}
	}
}

// A failing cell must not abort the sweep: the other cells still complete,
// and Run reports the first failure by submission order.
func TestSchedulerCellErrorDoesNotAbortSweep(t *testing.T) {
	jobs := thresholdGrid(150)
	bad := jobs[1]
	bad.Cfg.Trials = 0 // invalid
	jobs[1] = bad
	results, err := New(nil, Options{Jobs: 2}).Run(jobs)
	if err == nil || !strings.Contains(err.Error(), "cell 1") {
		t.Fatalf("want error naming cell 1, got %v", err)
	}
	for i, r := range results {
		if i == 1 {
			if r.Err == nil {
				t.Error("cell 1 should carry its error")
			}
			continue
		}
		if r.Err != nil || r.Result.Trials == 0 {
			t.Errorf("cell %d did not complete: %+v err=%v", i, r.Result, r.Err)
		}
	}
}

// The scheduler's grid helpers must agree with the sequential sweep paths
// cell for cell: same coordinates in the same order, and statistically
// consistent rates at equal trial counts.
func TestThresholdSweepMatchesSequential(t *testing.T) {
	ds := []int{3}
	ps := []float64{6e-3, 1.2e-2}
	const trials = 3000
	en := montecarlo.NewEngine()
	seq, err := en.ThresholdSweep(extract.Baseline, ds, ps, hardware.Default(), trials, 5, montecarlo.UF, montecarlo.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := New(en, Options{Jobs: 2}).ThresholdSweep(extract.Baseline, ds, ps, hardware.Default(), trials, 5, montecarlo.UF, montecarlo.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(sch) {
		t.Fatalf("%d sequential points vs %d scheduled", len(seq), len(sch))
	}
	for i := range seq {
		a, b := seq[i], sch[i]
		if a.Distance != b.Distance || a.Phys != b.Phys {
			t.Fatalf("point %d: grid (%d, %g) vs (%d, %g)", i, a.Distance, a.Phys, b.Distance, b.Phys)
		}
		if a.Result.Trials != b.Result.Trials {
			t.Errorf("point %d: %d vs %d trials", i, a.Result.Trials, b.Result.Trials)
		}
		diff := math.Abs(a.Result.Rate() - b.Result.Rate())
		if sigma := a.Result.StdErr() + b.Result.StdErr(); diff > 3*sigma {
			t.Errorf("point %d: sequential %.4f vs scheduled %.4f beyond 3 sigma (%.4f)",
				i, a.Result.Rate(), b.Result.Rate(), 3*sigma)
		}
	}
}

// SensitivityJobs must mirror the sequential panel sweep's grid and run
// through the scheduler.
func TestSensitivitySweepGrid(t *testing.T) {
	pts, err := New(nil, Options{Jobs: 2}).SensitivitySweep(
		montecarlo.PanelCavityT1, []float64{1e-4, 1e-2}, []int{3}, 200, 1, montecarlo.UF, montecarlo.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for i, v := range []float64{1e-4, 1e-2} {
		if pts[i].Value != v || pts[i].Distance != 3 || pts[i].Panel != montecarlo.PanelCavityT1 {
			t.Errorf("point %d: %+v", i, pts[i])
		}
		if pts[i].Result.Trials != 200 {
			t.Errorf("point %d: %d trials", i, pts[i].Result.Trials)
		}
	}
}

// The documented ordering guarantee on OnResult/Stream, pinned: arrival
// order may vary with the pool width, but result identity may not. Collect
// the stream at several widths, sort by Index, and require bit-identical
// per-cell statistics.
func TestStreamResultIdentityDeterministicAtAnyWidth(t *testing.T) {
	var ref []CellResult
	for _, width := range []int{1, 3, 8} {
		var got []CellResult
		for r := range New(montecarlo.NewEngine(), Options{Jobs: width}).Stream(thresholdGrid(300)) {
			if r.Err != nil {
				t.Fatalf("width %d: cell %d: %v", width, r.Index, r.Err)
			}
			got = append(got, r)
		}
		slices.SortFunc(got, func(a, b CellResult) int { return a.Index - b.Index })
		for i, r := range got {
			if r.Index != i {
				t.Fatalf("width %d: missing or duplicated cell %d", width, i)
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			a, b := got[i].Result, ref[i].Result
			if a.Failures != b.Failures || a.Trials != b.Trials {
				t.Errorf("width %d cell %d: %d/%d failures/trials, want %d/%d (width 1)",
					width, i, a.Failures, a.Trials, b.Failures, b.Trials)
			}
		}
	}
}

// Cancelling mid-sweep stops the pool at the next cell boundary: cells
// that never started carry the context error and are not emitted, while
// every emitted cell genuinely ran. Width 1 makes the split deterministic:
// cancel during the first cell's emission (the most expensive cell under
// the default cost order) and every other cell must be skipped.
func TestRunContextCancelSkipsRemainingCells(t *testing.T) {
	jobs := thresholdGrid(150)
	ctx, cancel := context.WithCancel(context.Background())
	var emitted []int
	s := New(nil, Options{Jobs: 1, OnResult: func(r CellResult) {
		emitted = append(emitted, r.Index)
		cancel()
	}})
	results, err := s.RunContext(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if len(emitted) != 1 {
		t.Fatalf("emitted cells %v, want exactly one", emitted)
	}
	first := emitted[0]
	if results[first].Err != nil || results[first].Result.Trials == 0 {
		t.Errorf("cell %d should have completed: %+v", first, results[first])
	}
	for i := range results {
		if i == first {
			continue
		}
		if !errors.Is(results[i].Err, context.Canceled) {
			t.Errorf("cell %d err = %v, want context.Canceled", i, results[i].Err)
		}
		if results[i].Result.Trials != 0 {
			t.Errorf("cell %d ran %d trials after cancel", i, results[i].Result.Trials)
		}
	}
}

// StreamContext closes its channel after cancellation without delivering
// the skipped cells.
func TestStreamContextCancelClosesChannel(t *testing.T) {
	jobs := thresholdGrid(150)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any cell starts
	n := 0
	for range New(nil, Options{Jobs: 2}).StreamContext(ctx, jobs) {
		n++
	}
	if n != 0 {
		t.Errorf("pre-cancelled stream delivered %d cells, want 0", n)
	}
}

// The tentpole determinism property: for every shard threshold — each
// fixing one shard plan per cell — Run and Stream results are bit-identical
// across pool widths {1, 2, 4, 8}, on both grid types. Sharding changes
// WHICH deterministic result a big cell produces (the merge of its plan's
// worker streams instead of the single stream), so results are only
// compared within a threshold, never across thresholds.
func TestSchedulerDeterministicAcrossWidthsAndShardThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("full width x threshold sweep matrix; run by the dedicated race-scheduler CI job")
	}
	const trials = 4200 // 4 shards at the floor threshold, 2 at twice it
	grids := []struct {
		name string
		mk   func(t *testing.T) []Job
	}{
		{"threshold", func(t *testing.T) []Job {
			return ThresholdJobs(extract.Baseline, []int{3, 5}, []float64{4e-3, 1.6e-2},
				hardware.Default(), trials, 21, montecarlo.UF, montecarlo.SweepOptions{})
		}},
		{"sensitivity", func(t *testing.T) []Job {
			jobs, err := SensitivityJobs(montecarlo.PanelCavityT1, []float64{1e-4, 1e-2}, []int{3},
				trials, 7, montecarlo.UF, montecarlo.SweepOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return jobs
		}},
	}
	for _, grid := range grids {
		for _, shardShots := range []int{0, montecarlo.MinShardShots, 2 * montecarlo.MinShardShots} {
			plan := montecarlo.PlanShards(trials, shardShots)
			name := fmt.Sprintf("%s/shard=%d(plan %d)", grid.name, shardShots, plan.Shards)
			var ref []CellResult
			for _, width := range []int{1, 2, 4, 8} {
				en := montecarlo.NewEngine()
				s := New(en, Options{Jobs: width, ShardShots: shardShots})
				results, err := s.Run(grid.mk(t))
				if err != nil {
					t.Fatalf("%s width %d: %v", name, width, err)
				}
				var streamed []CellResult
				for r := range s.Stream(grid.mk(t)) {
					if r.Err != nil {
						t.Fatalf("%s width %d: stream cell %d: %v", name, width, r.Index, r.Err)
					}
					streamed = append(streamed, r)
				}
				slices.SortFunc(streamed, func(a, b CellResult) int { return a.Index - b.Index })
				for i := range results {
					a, b := results[i].Result, streamed[i].Result
					if a.Failures != b.Failures || a.Trials != b.Trials {
						t.Errorf("%s width %d cell %d: Run %d/%d vs Stream %d/%d failures/trials",
							name, width, i, a.Failures, a.Trials, b.Failures, b.Trials)
					}
				}
				if ref == nil {
					ref = results
					// The sharded merge must equal the engine's multi-worker
					// run of the same plan — pinning that the scheduler's
					// stolen shards consume exactly worker streams 0..n-1.
					if plan.Shards > 1 {
						cfg := results[0].Job.Cfg
						cfg.Workers = plan.Shards
						want, err := en.Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						got := results[0].Result
						if got.Failures != want.Failures || got.Trials != want.Trials {
							t.Errorf("%s: sharded cell 0 merged %d/%d failures/trials, Run(Workers=%d) %d/%d",
								name, got.Failures, got.Trials, plan.Shards, want.Failures, want.Trials)
						}
					}
					continue
				}
				for i := range results {
					a, b := results[i].Result, ref[i].Result
					if a.Failures != b.Failures || a.Trials != b.Trials {
						t.Errorf("%s width %d cell %d: %d/%d failures/trials, want %d/%d (width 1)",
							name, width, i, a.Failures, a.Trials, b.Failures, b.Trials)
					}
				}
			}
		}
	}
}

// The queue order is a wall-clock knob only: OrderFIFO and the default
// OrderCost produce bit-identical per-cell results.
func TestQueueOrderDoesNotChangeResults(t *testing.T) {
	en := montecarlo.NewEngine()
	cost, err := New(en, Options{Jobs: 4}).Run(thresholdGrid(300))
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := New(en, Options{Jobs: 4, Queue: OrderFIFO}).Run(thresholdGrid(300))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cost {
		a, b := cost[i].Result, fifo[i].Result
		if a.Failures != b.Failures || a.Trials != b.Trials {
			t.Errorf("cell %d: cost-ordered %d/%d vs FIFO %d/%d failures/trials",
				i, a.Failures, a.Trials, b.Failures, b.Trials)
		}
	}
}

// CellCost must order a mixed grid longest-first: higher distance, more
// rounds, or more trials all rank ahead; the estimate is pure and cheap.
func TestCellCostOrdering(t *testing.T) {
	base := montecarlo.Config{Distance: 5, Trials: 1000}
	bigger := []montecarlo.Config{
		{Distance: 7, Trials: 1000},             // more detectors and rounds
		{Distance: 5, Trials: 2000},             // more trials
		{Distance: 5, Rounds: 15, Trials: 1000}, // more rounds
	}
	for _, cfg := range bigger {
		if CellCost(cfg) <= CellCost(base) {
			t.Errorf("CellCost(%+v) = %g not above CellCost(%+v) = %g",
				cfg, CellCost(cfg), base, CellCost(base))
		}
	}
	if CellCost(base) != CellCost(base) || CellCost(base) <= 0 {
		t.Errorf("CellCost not a positive pure function: %g", CellCost(base))
	}
}

// Two sweeps sharing one engine may run concurrently — the -race CI job
// exercises the engine's cache and the hoisted graph build under real
// contention here.
func TestSchedulersShareEngineConcurrently(t *testing.T) {
	en := montecarlo.NewEngine()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = New(en, Options{Jobs: 2}).Run(thresholdGrid(150))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("sweep %d: %v", i, err)
		}
	}
	if en.StructureBuilds() != 2 {
		t.Errorf("concurrent sweeps built %d structures, want 2 (one per distance)", en.StructureBuilds())
	}
}

// Steal-aware TargetFailures sizing: once a sharded cell's shards bank the
// failure target, the remaining shard units must settle without touching
// the engine at all. With a serial pool the first shard banks the target
// (high noise, target 1), so exactly one engine prepare happens for a
// four-shard plan — observable as one cache access — and the merged cell
// still carries the model dimensions from the shard that ran.
func TestStealAwareTargetFailuresSkipsShards(t *testing.T) {
	const trials = 4 * montecarlo.MinShardShots
	cfg := montecarlo.ThresholdCellConfig(extract.Baseline, 3, 1.6e-2, hardware.Default(),
		trials, 21, montecarlo.UF, montecarlo.SweepOptions{TargetFailures: 1})
	en := montecarlo.NewEngine()
	s := New(en, Options{Jobs: 1, ShardShots: montecarlo.MinShardShots})
	results, err := s.Run([]Job{{Cfg: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0].Result
	if res.Failures < 1 {
		t.Fatalf("no failures banked at d=3 p=1.6e-2 over %d trials", res.Trials)
	}
	if res.Trials <= 0 || res.Trials > montecarlo.MinShardShots {
		t.Errorf("first shard took %d trials; early stop should cap it at the %d-trial shard",
			res.Trials, montecarlo.MinShardShots)
	}
	if res.Mechanisms == 0 || res.DetectorCount == 0 {
		t.Errorf("merged cell lost its model dimensions: %d mechs, %d detectors",
			res.Mechanisms, res.DetectorCount)
	}
	stats := en.CacheStats()
	if got := stats.Builds + stats.Hits; got != 1 {
		t.Errorf("engine saw %d structure accesses (%d builds + %d hits), want 1: "+
			"satisfied shard units must be skipped without an engine prepare",
			got, stats.Builds, stats.Hits)
	}
}
