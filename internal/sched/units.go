package sched

import (
	"slices"

	"repro/internal/montecarlo"
)

// Unit is one schedulable quantum of work: shard Shard of cell Cell, where
// Cell indexes the submitted job slice. An unsharded cell is a single unit
// with Shard 0.
type Unit struct {
	Cell  int
	Shard int
}

// UnitQueue is the fixed execution plan of one sweep: per-cell shard plans
// and the flat, ordered queue of units workers drain. It is what the
// fabric coordinator leases over the wire and what the local pool's
// work-stealing loop consumes — the same plan, so a cluster run and a
// local run execute identical unit sets.
type UnitQueue struct {
	// Plans holds each cell's shard plan, indexed like the job slice.
	Plans []montecarlo.ShardPlan
	// Units is the drain order: cells ordered per QueueOrder, a sharded
	// cell's units adjacent so its shards fan out immediately.
	Units []Unit
}

// BuildUnitQueue fixes the execution plan for a sweep. The plan is a pure
// function of the job specs, shardShots, and order — never of pool width,
// worker count, or any runtime state — which is what makes results
// reproducible across any execution of the queue, local or remote: same
// jobs + same shardShots => same plans => same per-shard ChaCha8 streams.
// Cells with Cfg.Workers > 1 parallelize internally and are never sharded.
func BuildUnitQueue(jobs []Job, shardShots int, order QueueOrder) UnitQueue {
	q := UnitQueue{Plans: make([]montecarlo.ShardPlan, len(jobs))}
	nunits := 0
	for i, job := range jobs {
		plan := montecarlo.ShardPlan{Shards: 1, Trials: job.Cfg.Trials}
		if shardShots > 0 && job.Cfg.Workers <= 1 {
			plan = montecarlo.PlanShards(job.Cfg.Trials, shardShots)
		}
		q.Plans[i] = plan
		nunits += plan.Shards
	}
	cellOrder := make([]int, len(jobs))
	for i := range cellOrder {
		cellOrder[i] = i
	}
	if order == OrderCost {
		slices.SortStableFunc(cellOrder, func(a, b int) int {
			ca, cb := CellCost(jobs[a].Cfg), CellCost(jobs[b].Cfg)
			switch {
			case ca > cb:
				return -1
			case ca < cb:
				return 1
			}
			return a - b
		})
	}
	q.Units = make([]Unit, 0, nunits)
	for _, ci := range cellOrder {
		for sh := 0; sh < q.Plans[ci].Shards; sh++ {
			q.Units = append(q.Units, Unit{Cell: ci, Shard: sh})
		}
	}
	return q
}
