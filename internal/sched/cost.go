package sched

import "repro/internal/montecarlo"

// CellCost estimates the relative decode cost of one sweep cell for queue
// ordering: the product of the dem.Structure dimensions its Config implies —
// detectors per round (the d^2-1 stabilizer measurements of a rotated
// distance-d surface code patch), measurement rounds (Config.Rounds, or d
// when zero, matching extract's default), and the trial budget. Sampling
// and union-find decoding are near-linear in detectors x rounds per shot,
// so the product tracks wall clock closely enough for longest-first
// ordering.
//
// The estimate deliberately never touches the engine: cells are ordered
// before any structure is built, so the cost model must be derivable from
// the Config alone. It does not need to be calibrated in absolute terms —
// only monotone in the true cost across the cells of one queue — and it is
// a pure function, so the queue order (and therefore the shard-unit layout
// workers steal from) is identical at every pool width.
func CellCost(cfg montecarlo.Config) float64 {
	d := cfg.Distance
	if d < 1 {
		d = 1
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = d
	}
	dets := d*d - 1
	if dets < 1 {
		dets = 1
	}
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	cost := float64(dets) * float64(rounds) * float64(trials)
	if cfg.RareEvent {
		// Importance-sampled cells fire mechanisms ~Boost times as often, so
		// their syndromes are denser and the matcher does proportionally more
		// work per shot. Still a pure function of the Config (DefaultBoost is
		// what normalize fills for a zero Boost).
		boost := cfg.Boost
		if boost < 1 {
			boost = montecarlo.DefaultBoost
		}
		cost *= boost
	}
	return cost
}
