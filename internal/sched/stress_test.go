package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
)

// skewedJobs builds the stress grid: many tiny cells plus one huge cell
// whose trial budget dwarfs them, the shape where cost ordering and shard
// stealing matter. hugeTrials above Options.ShardShots shards the big cell.
func skewedJobs(tiny, hugeTrials int, opts montecarlo.SweepOptions) []Job {
	jobs := ThresholdJobs(extract.Baseline, []int{3}, montecarlo.DefaultPhysRates(8),
		hardware.Default(), tiny, 31, montecarlo.UF, opts)
	// Duplicate the tiny row at shifted seeds for queue pressure.
	for i, n := 0, len(jobs); i < 4*n; i++ {
		j := jobs[i%n]
		j.Cfg.Seed += int64(1000 * (i/n + 1))
		jobs = append(jobs, j)
	}
	huge := montecarlo.ThresholdCellConfig(extract.Baseline, 5, 8e-3, hardware.Default(),
		hugeTrials, 31, montecarlo.UF, opts)
	jobs = append(jobs, Job{Cfg: huge, Tag: ThresholdCell{Scheme: extract.Baseline, Distance: 5, Phys: 8e-3}})
	return jobs
}

// The skewed-grid stress leg of the -race CI job: 40 tiny cells plus one
// huge sharded cell, stealing active at width 8, twice — covering the
// shard merge path under real contention and pinning run-to-run
// determinism of the merged counts.
func TestStressSkewedGridStealing(t *testing.T) {
	if testing.Short() {
		t.Skip("stress grid; run by the dedicated race-scheduler CI job")
	}
	const hugeTrials = 60_000
	var ref []CellResult
	for rep := 0; rep < 2; rep++ {
		s := New(montecarlo.NewEngine(), Options{Jobs: 8, ShardShots: montecarlo.MinShardShots})
		results, err := s.Run(skewedJobs(200, hugeTrials, montecarlo.SweepOptions{}))
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		huge := results[len(results)-1]
		if huge.Result.Trials != hugeTrials {
			t.Fatalf("rep %d: huge cell merged %d trials, want %d (partial merge escaped)",
				rep, huge.Result.Trials, hugeTrials)
		}
		if ref == nil {
			ref = results
			continue
		}
		for i := range results {
			a, b := results[i].Result, ref[i].Result
			if a.Failures != b.Failures || a.Trials != b.Trials {
				t.Errorf("cell %d: rep1 %d/%d vs rep0 %d/%d failures/trials",
					i, a.Failures, a.Trials, b.Failures, b.Trials)
			}
		}
	}
}

// The shared early-stop atomic under contention: every cell carries a
// failure target, the huge cell's shards bank failures into one budget
// concurrently, and the merged cell must respect both the target and the
// trial cap. Counts are timing-dependent here (as with Engine.Run's
// workers), so the assertions are the contract bounds, not exact values.
func TestStressSharedEarlyStopAcrossShards(t *testing.T) {
	const (
		hugeTrials = 200_000
		target     = 40
	)
	s := New(montecarlo.NewEngine(), Options{Jobs: 8, ShardShots: montecarlo.MinShardShots})
	results, err := s.Run(skewedJobs(150, hugeTrials, montecarlo.SweepOptions{TargetFailures: target}))
	if err != nil {
		t.Fatal(err)
	}
	huge := results[len(results)-1].Result
	if huge.Trials <= 0 || huge.Trials > hugeTrials {
		t.Errorf("huge cell took %d trials, want in (0, %d]", huge.Trials, hugeTrials)
	}
	if huge.Failures < target && huge.Trials < hugeTrials {
		t.Errorf("huge cell stopped at %d trials with only %d failures (target %d)",
			huge.Trials, huge.Failures, target)
	}
	// At d=5 and p=8e-3 (near threshold) the target is reached within a
	// small fraction of the cap; the early stop must have engaged.
	if huge.Trials == hugeTrials {
		t.Errorf("huge cell ran its whole %d-trial cap; early stop never engaged", hugeTrials)
	}
}

// Cancelling a sweep with a sharded cell in flight aborts the sibling
// shards and never emits a partial merge: every emitted cell is complete,
// every skipped cell carries the context error, and the pool returns long
// before the huge cell's full budget could have run.
func TestCancelAbortsInFlightShards(t *testing.T) {
	const hugeTrials = 5_000_000 // far more work than the test allows time for
	huge := montecarlo.ThresholdCellConfig(extract.Baseline, 5, 8e-3, hardware.Default(),
		hugeTrials, 31, montecarlo.UF, montecarlo.SweepOptions{})
	jobs := ThresholdJobs(extract.Baseline, []int{3}, []float64{4e-3, 8e-3},
		hardware.Default(), 200, 31, montecarlo.UF, montecarlo.SweepOptions{})
	jobs = append(jobs, Job{Cfg: huge, Tag: ThresholdCell{Scheme: extract.Baseline, Distance: 5, Phys: 8e-3}})

	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	emitted := map[int]montecarlo.Result{}
	s := New(montecarlo.NewEngine(), Options{Jobs: 4, ShardShots: montecarlo.MinShardShots,
		OnResult: func(r CellResult) {
			mu.Lock()
			emitted[r.Index] = r.Result
			mu.Unlock()
		}})

	done := make(chan []CellResult, 1)
	go func() {
		results, _ := s.RunContext(ctx, jobs)
		done <- results
	}()
	time.Sleep(30 * time.Millisecond) // let shards get in flight
	cancel()

	var results []CellResult
	select {
	case results = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pool did not return after cancellation; in-flight shards were not aborted")
	}

	for i, r := range results {
		_, wasEmitted := emitted[i]
		switch {
		case r.Err == nil:
			if !wasEmitted {
				t.Errorf("cell %d completed but was not emitted", i)
			}
			if r.Result.Trials != r.Job.Cfg.Trials {
				t.Errorf("cell %d emitted a partial result: %d of %d trials",
					i, r.Result.Trials, r.Job.Cfg.Trials)
			}
		case errors.Is(r.Err, context.Canceled):
			if wasEmitted {
				t.Errorf("cell %d was skipped by cancellation but still emitted", i)
			}
		default:
			t.Errorf("cell %d: unexpected error %v", i, r.Err)
		}
	}
	hugeRes := results[len(results)-1]
	if hugeRes.Err == nil && hugeRes.Result.Trials != hugeTrials {
		t.Errorf("huge cell neither skipped nor complete: %+v", hugeRes.Result)
	}
}
