package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
)

// Job is one sweep cell: a Monte-Carlo point configuration plus an opaque
// caller tag carried through to the result (grid coordinates, typically).
// If Cfg.Workers is 0 the cell runs single-threaded; an explicit positive
// value is honored via the engine's parallel path, which trades per-worker
// state reuse for intra-cell parallelism.
type Job struct {
	Cfg montecarlo.Config
	Tag any
}

// CellResult is one finished cell. Index is the job's position in the
// slice submitted to Run or Stream.
type CellResult struct {
	Index  int
	Job    Job
	Result montecarlo.Result
	Err    error
}

// Options tunes a Scheduler.
type Options struct {
	// Jobs is the shared pool width — how many cells decode concurrently.
	// 0 means GOMAXPROCS. The width affects wall clock only, never results.
	Jobs int
	// OnResult, when set, is called once per cell as it finishes, in
	// completion order. Calls are serialized; the callback may write to
	// shared state (e.g. stdout) without locking.
	//
	// Ordering guarantee: completion order is NOT deterministic — it
	// depends on the pool width and on how long each cell takes. What is
	// deterministic is result identity: the CellResult delivered for a
	// given Index carries exactly the Result that cell's Config produces
	// single-threaded, at any pool width. Consumers that need a stable
	// order must sort by Index (or use Run, which already returns
	// submission order); consumers that only key rows by the cell's Tag or
	// Index may stream directly.
	OnResult func(CellResult)
}

// Scheduler drains sweep cells through a shared worker pool over one
// montecarlo.Engine. A Scheduler is safe for concurrent use; concurrent
// Run/Stream calls share the engine's structure cache but use separate
// pools.
type Scheduler struct {
	en   *montecarlo.Engine
	opts Options
}

// New returns a scheduler over the engine (a fresh default engine if nil).
func New(en *montecarlo.Engine, opts Options) *Scheduler {
	if en == nil {
		en = montecarlo.NewEngine()
	}
	return &Scheduler{en: en, opts: opts}
}

// Engine returns the scheduler's underlying engine.
func (s *Scheduler) Engine() *montecarlo.Engine { return s.en }

func (s *Scheduler) width(n int) int {
	w := s.opts.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// run drains the jobs through the pool, storing each cell at its index and
// emitting it (serialized) as it finishes. Cancellation is observed at cell
// boundaries: once ctx is done, workers stop picking up new cells and mark
// the remaining ones with ctx's error (without emitting them); cells
// already decoding run to completion.
func (s *Scheduler) run(ctx context.Context, jobs []Job, results []CellResult, emit func(CellResult)) {
	var next atomic.Int64
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < s.width(len(jobs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st montecarlo.WorkerState
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				if err := ctx.Err(); err != nil {
					results[i] = CellResult{Index: i, Job: job, Err: err}
					continue
				}
				var res montecarlo.Result
				var err error
				if job.Cfg.Workers > 1 {
					res, err = s.en.Run(job.Cfg)
				} else {
					res, err = s.en.RunOn(job.Cfg, &st)
				}
				r := CellResult{Index: i, Job: job, Result: res, Err: err}
				results[i] = r
				if emit != nil {
					emitMu.Lock()
					emit(r)
					emitMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
}

// Run executes all jobs and returns their results in submission order —
// deterministic regardless of pool width and completion order. Every cell
// runs even if others fail; the returned error is the first failing cell's
// (by submission order), with per-cell errors in each CellResult.
func (s *Scheduler) Run(jobs []Job) ([]CellResult, error) {
	return s.RunContext(context.Background(), jobs)
}

// RunContext is Run with cancellation: when ctx is cancelled the pool stops
// picking up new cells (cells already decoding finish — cancellation has
// cell granularity), the skipped cells carry ctx's error in their
// CellResult, and RunContext returns ctx's error. Skipped cells are never
// delivered to Options.OnResult, so a streaming consumer sees only cells
// that genuinely ran.
func (s *Scheduler) RunContext(ctx context.Context, jobs []Job) ([]CellResult, error) {
	results := make([]CellResult, len(jobs))
	s.run(ctx, jobs, results, s.opts.OnResult)
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("sched: cell %d: %w", i, results[i].Err)
		}
	}
	return results, nil
}

// Stream executes all jobs and delivers results on the returned channel in
// completion order, closing it when the sweep is done. The channel is
// buffered to len(jobs), so the sweep never blocks on a slow consumer.
// Options.OnResult, if set, also fires per cell.
//
// Completion order is nondeterministic (it depends on pool width and cell
// durations), but result identity is not: for a given seed, the CellResult
// carrying Index i is identical at every pool width. Consumers needing a
// stable order should collect and sort by Index.
func (s *Scheduler) Stream(jobs []Job) <-chan CellResult {
	return s.StreamContext(context.Background(), jobs)
}

// StreamContext is Stream with cancellation semantics matching RunContext:
// after ctx is done, in-flight cells still arrive on the channel (they ran
// to completion) and the channel then closes; cells that never started are
// silently dropped from the stream.
func (s *Scheduler) StreamContext(ctx context.Context, jobs []Job) <-chan CellResult {
	ch := make(chan CellResult, len(jobs))
	results := make([]CellResult, len(jobs))
	go func() {
		defer close(ch)
		s.run(ctx, jobs, results, func(r CellResult) {
			if s.opts.OnResult != nil {
				s.opts.OnResult(r)
			}
			ch <- r
		})
	}()
	return ch
}

// ThresholdCell tags one Fig. 11 grid cell.
type ThresholdCell struct {
	Scheme   extract.Scheme
	Distance int
	Phys     float64
}

// ThresholdJobs builds the Fig. 11 grid as scheduler jobs, cell-for-cell
// identical to montecarlo.ThresholdSweep (both build each cell through
// montecarlo.ThresholdCellConfig) so the two paths stay statistically
// comparable. Each job is tagged with its ThresholdCell coordinates.
func ThresholdJobs(scheme extract.Scheme, distances []int, physRates []float64, base hardware.Params, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) []Job {
	jobs := make([]Job, 0, len(distances)*len(physRates))
	for _, d := range distances {
		for _, p := range physRates {
			jobs = append(jobs, Job{
				Cfg: montecarlo.ThresholdCellConfig(scheme, d, p, base, trials, seed, dec, opts),
				Tag: ThresholdCell{Scheme: scheme, Distance: d, Phys: p},
			})
		}
	}
	return jobs
}

// ThresholdSweep runs a Fig. 11 grid through the scheduler, returning
// points in grid order (distances outer, rates inner) like
// montecarlo.ThresholdSweep.
func (s *Scheduler) ThresholdSweep(scheme extract.Scheme, distances []int, physRates []float64, base hardware.Params, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) ([]montecarlo.SweepPoint, error) {
	results, err := s.Run(ThresholdJobs(scheme, distances, physRates, base, trials, seed, dec, opts))
	if err != nil {
		return nil, fmt.Errorf("sweep %v: %w", scheme, err)
	}
	pts := make([]montecarlo.SweepPoint, len(results))
	for i, r := range results {
		cell := r.Job.Tag.(ThresholdCell)
		pts[i] = montecarlo.SweepPoint{Distance: cell.Distance, Phys: cell.Phys, Result: r.Result}
	}
	return pts, nil
}

// SensitivityCell tags one Fig. 12 panel cell.
type SensitivityCell struct {
	Panel    montecarlo.Panel
	Value    float64
	Distance int
}

// SensitivityJobs builds one Fig. 12 panel as scheduler jobs, cell-for-cell
// identical to montecarlo.SensitivitySweep (both build each cell through
// montecarlo.SensitivityCellConfig).
func SensitivityJobs(panel montecarlo.Panel, values []float64, distances []int, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) ([]Job, error) {
	jobs := make([]Job, 0, len(distances)*len(values))
	for _, d := range distances {
		for _, v := range values {
			cfg, err := montecarlo.SensitivityCellConfig(panel, v, d, trials, seed, dec, opts)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, Job{
				Cfg: cfg,
				Tag: SensitivityCell{Panel: panel, Value: v, Distance: d},
			})
		}
	}
	return jobs, nil
}

// SensitivitySweep runs one Fig. 12 panel through the scheduler, returning
// points in grid order like montecarlo.SensitivitySweep.
func (s *Scheduler) SensitivitySweep(panel montecarlo.Panel, values []float64, distances []int, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) ([]montecarlo.SensitivityPoint, error) {
	jobs, err := SensitivityJobs(panel, values, distances, trials, seed, dec, opts)
	if err != nil {
		return nil, err
	}
	results, err := s.Run(jobs)
	if err != nil {
		return nil, fmt.Errorf("sensitivity %v: %w", panel, err)
	}
	pts := make([]montecarlo.SensitivityPoint, len(results))
	for i, r := range results {
		cell := r.Job.Tag.(SensitivityCell)
		pts[i] = montecarlo.SensitivityPoint{Panel: cell.Panel, Value: cell.Value, Distance: cell.Distance, Result: r.Result}
	}
	return pts, nil
}
