package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
)

// Job is one sweep cell: a Monte-Carlo point configuration plus an opaque
// caller tag carried through to the result (grid coordinates, typically).
// If Cfg.Workers is 0 the cell runs single-threaded; an explicit positive
// value is honored via the engine's parallel path, which trades per-worker
// state reuse for intra-cell parallelism.
type Job struct {
	Cfg montecarlo.Config
	Tag any
}

// CellResult is one finished cell. Index is the job's position in the
// slice submitted to Run or Stream.
type CellResult struct {
	Index  int
	Job    Job
	Result montecarlo.Result
	Err    error
}

// QueueOrder selects how the pool's job queue is ordered.
type QueueOrder int

const (
	// OrderCost drains cells longest-first by CellCost, so the cell that
	// dominates the sweep's tail starts immediately instead of landing on
	// an otherwise-idle pool at the end. The order affects wall clock only,
	// never results. This is the default.
	OrderCost QueueOrder = iota
	// OrderFIFO preserves submission order — the pre-cost-model behavior,
	// kept as the makespan benchmark baseline (BenchmarkSweepRowSkewed).
	OrderFIFO
)

// Options tunes a Scheduler.
type Options struct {
	// Jobs is the shared pool width — how many workers drain the queue of
	// cells (and shard units; see ShardShots) concurrently. 0 means
	// GOMAXPROCS. The width affects wall clock only, never results.
	Jobs int
	// OnResult, when set, is called once per cell as it finishes, in
	// completion order. Calls are serialized; the callback may write to
	// shared state (e.g. stdout) without locking. A sharded cell fires the
	// callback once, after its last shard merges.
	//
	// Ordering guarantee: completion order is NOT deterministic — it
	// depends on the pool width and on how long each cell takes. What is
	// deterministic is result identity: the CellResult delivered for a
	// given Index carries exactly the Result that cell's Config produces
	// single-threaded (or, for a sharded cell, the deterministic merge of
	// its fixed shard plan), at any pool width. Consumers that need a
	// stable order must sort by Index (or use Run, which already returns
	// submission order); consumers that only key rows by the cell's Tag or
	// Index may stream directly.
	OnResult func(CellResult)
	// Queue selects the job-queue order (default OrderCost: longest cell
	// first).
	Queue QueueOrder
	// ShardShots, when positive, splits cells whose trial budget exceeds
	// it into shard units of ~ShardShots trials (never smaller — floor
	// division folds the last partial chunk into the others) that idle
	// workers steal, cutting the tail latency of a grid dominated by one
	// huge cell. Values below montecarlo.MinShardShots are raised to that
	// floor, so pinned small cells are never split. The shard plan is a
	// pure function of (Config.Trials, ShardShots) and per-shard RNG
	// streams derive from the cell seed + shard index, so a sharded cell's
	// merged Result is bit-identical at every pool width; it equals
	// montecarlo.Engine.Run with Workers == shards, not the unsharded
	// single-threaded result. With Config.TargetFailures set, shards
	// coordinate early stop through one shared atomic budget, and the
	// shots taken depend on shard timing (exactly as Run's workers always
	// have); shard units reaching the front of the queue after the target
	// is already banked are settled as empty without touching the engine,
	// so a satisfied cell stops spawning decode work entirely. Cells with
	// Config.Workers > 1 already parallelize internally and are never
	// sharded.
	ShardShots int
}

// Scheduler drains sweep cells through a shared worker pool over one
// montecarlo.Engine. A Scheduler is safe for concurrent use; concurrent
// Run/Stream calls share the engine's structure cache but use separate
// pools.
type Scheduler struct {
	en   *montecarlo.Engine
	opts Options
}

// New returns a scheduler over the engine (a fresh default engine if nil).
func New(en *montecarlo.Engine, opts Options) *Scheduler {
	if en == nil {
		en = montecarlo.NewEngine()
	}
	return &Scheduler{en: en, opts: opts}
}

// Engine returns the scheduler's underlying engine.
func (s *Scheduler) Engine() *montecarlo.Engine { return s.en }

func (s *Scheduler) width(n int) int {
	w := s.opts.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// cellRun is the execution state of one cell: its fixed shard plan, the
// budget its shards share, and the merge accumulator. For unsharded cells
// (plan.Shards == 1) the direct Result is stored as-is, preserving the
// RunOn path bit for bit.
type cellRun struct {
	index  int
	job    Job
	plan   montecarlo.ShardPlan
	budget montecarlo.ShardBudget

	mu        sync.Mutex
	remaining int                      // shards not yet finished or skipped
	parts     []montecarlo.ShardResult // by shard index (sharded cells)
	errs      []error                  // by shard index
	skipErr   error                    // set when any shard was skipped by cancellation
	direct    montecarlo.Result        // unsharded result
}

// buildQueue fixes the execution plan for a sweep through BuildUnitQueue —
// per-cell shard plans and the flat unit queue workers steal from — and
// wraps each cell's plan in its local execution state.
func (s *Scheduler) buildQueue(jobs []Job) ([]*cellRun, []Unit) {
	q := BuildUnitQueue(jobs, s.opts.ShardShots, s.opts.Queue)
	cells := make([]*cellRun, len(jobs))
	for i, job := range jobs {
		plan := q.Plans[i]
		c := &cellRun{index: i, job: job, plan: plan, remaining: plan.Shards}
		if plan.Shards > 1 {
			c.parts = make([]montecarlo.ShardResult, plan.Shards)
			c.errs = make([]error, plan.Shards)
		}
		cells[i] = c
	}
	return cells, q.Units
}

// finishUnit records one unit's outcome on its cell and, when it was the
// cell's last outstanding unit, merges and emits the CellResult. skipErr
// marks a unit that was skipped (or aborted mid-run) by cancellation; a
// cell with any skipped unit carries that error and is never emitted, so
// consumers see no partial merges.
func (s *Scheduler) finishUnit(c *cellRun, u Unit, sr montecarlo.ShardResult, err, skipErr error,
	results []CellResult, emit func(CellResult), emitMu *sync.Mutex) {
	c.mu.Lock()
	if c.plan.Shards > 1 {
		c.parts[u.Shard] = sr
		c.errs[u.Shard] = err
	}
	if skipErr != nil && c.skipErr == nil {
		c.skipErr = skipErr
	}
	c.remaining--
	last := c.remaining == 0
	c.mu.Unlock()
	if err != nil && c.plan.Shards > 1 {
		// A failed shard dooms the cell; stop its siblings early.
		c.budget.Abort()
	}
	if !last {
		return
	}

	r := CellResult{Index: c.index, Job: c.job}
	if c.skipErr != nil {
		// A genuine shard execution error outranks the cancellation error:
		// an operator debugging a failing cell should see the real cause,
		// not just "canceled".
		r.Err = c.skipErr
		for _, e := range c.errs {
			if e != nil {
				r.Err = e
				break
			}
		}
		results[c.index] = r
		return // skipped cells are never emitted
	}
	if c.plan.Shards == 1 {
		r.Result, r.Err = c.direct, err
	} else {
		for _, e := range c.errs { // deterministic: first error by shard index
			if e != nil {
				r.Err = e
				break
			}
		}
		if r.Err == nil {
			r.Result, r.Err = montecarlo.MergeShards(c.job.Cfg, c.parts)
		}
	}
	results[c.index] = r
	if emit != nil {
		emitMu.Lock()
		emit(r)
		emitMu.Unlock()
	}
}

// run drains the jobs through the pool, storing each cell at its index and
// emitting it (serialized) as it finishes. The queue holds units — whole
// cells, or stolen shards of cells above the sharding threshold — ordered
// longest-cell-first under OrderCost. Cancellation is observed at unit
// boundaries: once ctx is done, workers stop picking up new units, mark the
// affected cells with ctx's error (without emitting them), and in-flight
// shards of sharded cells abort at their next batch boundary (their cell
// can no longer complete, so finishing them is wasted work). In-flight
// unsharded cells keep the documented run-to-completion semantics.
func (s *Scheduler) run(ctx context.Context, jobs []Job, results []CellResult, emit func(CellResult)) {
	cells, units := s.buildQueue(jobs)

	if done := ctx.Done(); done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				for _, c := range cells {
					if c.plan.Shards > 1 {
						c.budget.Abort()
					}
				}
			case <-finished:
			}
		}()
	}

	var next atomic.Int64
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < s.width(len(units)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st montecarlo.WorkerState
			for {
				k := int(next.Add(1)) - 1
				if k >= len(units) {
					return
				}
				u := units[k]
				c := cells[u.Cell]
				if err := ctx.Err(); err != nil {
					s.finishUnit(c, u, montecarlo.ShardResult{}, nil, err, results, emit, &emitMu)
					continue
				}
				var sr montecarlo.ShardResult
				var err error
				if c.plan.Shards == 1 {
					if c.job.Cfg.Workers > 1 {
						c.direct, err = s.en.Run(c.job.Cfg)
					} else {
						c.direct, err = s.en.RunOn(c.job.Cfg, &st)
					}
				} else if tf := c.job.Cfg.TargetFailures; tf > 0 && c.budget.Failures() >= int64(tf) {
					// Steal-aware early stop: sibling shards already banked
					// the cell's failure target, so this unit would observe
					// the met budget and exit after zero batches. Settle it
					// as an empty shard without paying the engine prepare;
					// MergeShards takes the model dimensions from the lowest
					// shard that actually ran.
					sr = montecarlo.ShardResult{Shard: u.Shard}
				} else if re := c.job.Cfg.TargetRelErr; re > 0 && c.budget.WeightedRelErrMet(re) {
					// Weighted sibling of the failure-target skip: the pooled
					// weighted estimate already reached the target relative
					// error, so settle the unit empty.
					sr = montecarlo.ShardResult{Shard: u.Shard}
				} else {
					sr, err = s.en.RunShardOn(c.job.Cfg, c.plan, u.Shard, &c.budget, &st)
				}
				// An abort observed alongside cancellation means this unit's
				// tally may be short; treat the cell as skipped rather than
				// merging a partial shard.
				var skipErr error
				if c.plan.Shards > 1 && c.budget.Aborted() {
					if cerr := ctx.Err(); cerr != nil {
						skipErr = cerr
					}
				}
				s.finishUnit(c, u, sr, err, skipErr, results, emit, &emitMu)
			}
		}()
	}
	wg.Wait()
}

// Run executes all jobs and returns their results in submission order —
// deterministic regardless of pool width and completion order. Every cell
// runs even if others fail; the returned error is the first failing cell's
// (by submission order), with per-cell errors in each CellResult.
func (s *Scheduler) Run(jobs []Job) ([]CellResult, error) {
	return s.RunContext(context.Background(), jobs)
}

// RunContext is Run with cancellation: when ctx is cancelled the pool
// stops picking up new units. In-flight unsharded cells finish; in-flight
// shards of sharded cells abort at their next batch boundary, since their
// cell can no longer merge completely. Cells skipped or aborted carry
// ctx's error in their CellResult, RunContext returns ctx's error, and
// such cells are never delivered to Options.OnResult — a streaming
// consumer sees only cells that ran to completion, never a partial merge.
func (s *Scheduler) RunContext(ctx context.Context, jobs []Job) ([]CellResult, error) {
	results := make([]CellResult, len(jobs))
	s.run(ctx, jobs, results, s.opts.OnResult)
	if err := ctx.Err(); err != nil {
		return results, err
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("sched: cell %d: %w", i, results[i].Err)
		}
	}
	return results, nil
}

// Stream executes all jobs and delivers results on the returned channel in
// completion order, closing it when the sweep is done. The channel is
// buffered to len(jobs), so the sweep never blocks on a slow consumer.
// Options.OnResult, if set, also fires per cell.
//
// Completion order is nondeterministic (it depends on pool width and cell
// durations), but result identity is not: for a given seed, the CellResult
// carrying Index i is identical at every pool width. Consumers needing a
// stable order should collect and sort by Index.
func (s *Scheduler) Stream(jobs []Job) <-chan CellResult {
	return s.StreamContext(context.Background(), jobs)
}

// StreamContext is Stream with cancellation semantics matching
// RunContext: after ctx is done, in-flight unsharded cells still arrive
// on the channel (they ran to completion) and the channel then closes;
// cells that never started — and sharded cells whose in-flight shards
// were aborted — are silently dropped from the stream.
func (s *Scheduler) StreamContext(ctx context.Context, jobs []Job) <-chan CellResult {
	ch := make(chan CellResult, len(jobs))
	results := make([]CellResult, len(jobs))
	go func() {
		defer close(ch)
		s.run(ctx, jobs, results, func(r CellResult) {
			if s.opts.OnResult != nil {
				s.opts.OnResult(r)
			}
			ch <- r
		})
	}()
	return ch
}

// ThresholdCell tags one Fig. 11 grid cell.
type ThresholdCell struct {
	Scheme   extract.Scheme
	Distance int
	Phys     float64
}

// ThresholdJobs builds the Fig. 11 grid as scheduler jobs, cell-for-cell
// identical to montecarlo.ThresholdSweep (both build each cell through
// montecarlo.ThresholdCellConfig) so the two paths stay statistically
// comparable. Each job is tagged with its ThresholdCell coordinates.
func ThresholdJobs(scheme extract.Scheme, distances []int, physRates []float64, base hardware.Params, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) []Job {
	jobs := make([]Job, 0, len(distances)*len(physRates))
	for _, d := range distances {
		for _, p := range physRates {
			jobs = append(jobs, Job{
				Cfg: montecarlo.ThresholdCellConfig(scheme, d, p, base, trials, seed, dec, opts),
				Tag: ThresholdCell{Scheme: scheme, Distance: d, Phys: p},
			})
		}
	}
	return jobs
}

// ThresholdSweep runs a Fig. 11 grid through the scheduler, returning
// points in grid order (distances outer, rates inner) like
// montecarlo.ThresholdSweep.
func (s *Scheduler) ThresholdSweep(scheme extract.Scheme, distances []int, physRates []float64, base hardware.Params, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) ([]montecarlo.SweepPoint, error) {
	results, err := s.Run(ThresholdJobs(scheme, distances, physRates, base, trials, seed, dec, opts))
	if err != nil {
		return nil, fmt.Errorf("sweep %v: %w", scheme, err)
	}
	pts := make([]montecarlo.SweepPoint, len(results))
	for i, r := range results {
		cell := r.Job.Tag.(ThresholdCell)
		pts[i] = montecarlo.SweepPoint{Distance: cell.Distance, Phys: cell.Phys, Result: r.Result}
	}
	return pts, nil
}

// SensitivityCell tags one Fig. 12 panel cell.
type SensitivityCell struct {
	Panel    montecarlo.Panel
	Value    float64
	Distance int
}

// SensitivityJobs builds one Fig. 12 panel as scheduler jobs, cell-for-cell
// identical to montecarlo.SensitivitySweep (both build each cell through
// montecarlo.SensitivityCellConfig).
func SensitivityJobs(panel montecarlo.Panel, values []float64, distances []int, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) ([]Job, error) {
	jobs := make([]Job, 0, len(distances)*len(values))
	for _, d := range distances {
		for _, v := range values {
			cfg, err := montecarlo.SensitivityCellConfig(panel, v, d, trials, seed, dec, opts)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, Job{
				Cfg: cfg,
				Tag: SensitivityCell{Panel: panel, Value: v, Distance: d},
			})
		}
	}
	return jobs, nil
}

// SensitivitySweep runs one Fig. 12 panel through the scheduler, returning
// points in grid order like montecarlo.SensitivitySweep.
func (s *Scheduler) SensitivitySweep(panel montecarlo.Panel, values []float64, distances []int, trials int, seed int64, dec montecarlo.DecoderKind, opts montecarlo.SweepOptions) ([]montecarlo.SensitivityPoint, error) {
	jobs, err := SensitivityJobs(panel, values, distances, trials, seed, dec, opts)
	if err != nil {
		return nil, err
	}
	results, err := s.Run(jobs)
	if err != nil {
		return nil, fmt.Errorf("sensitivity %v: %w", panel, err)
	}
	pts := make([]montecarlo.SensitivityPoint, len(results))
	for i, r := range results {
		cell := r.Job.Tag.(SensitivityCell)
		pts[i] = montecarlo.SensitivityPoint{Panel: cell.Panel, Value: cell.Value, Distance: cell.Distance, Result: r.Result}
	}
	return pts, nil
}
