package dem

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// Structure + Reweight must reproduce a fresh Build bit for bit — same
// mechanisms, same footprints, same probabilities — across noise scales,
// even though only the first build runs fault propagation.
func TestStructureReweightMatchesFreshBuild(t *testing.T) {
	for _, scheme := range []extract.Scheme{extract.Baseline, extract.CompactInterleaved} {
		cfg := extract.Config{Scheme: scheme, Distance: 3, Basis: extract.BasisZ, Params: hardware.Default()}
		base, err := extract.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := BuildStructure(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, phys := range []float64{1e-3, 2e-3, 5e-3, 1.3e-2} {
			params := hardware.Default().ScaledGatesTo(phys)

			fresh := cfg
			fresh.Params = params
			exp2, err := extract.Build(fresh)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Build(exp2)
			if err != nil {
				t.Fatal(err)
			}

			probs, err := base.NoiseProbs(params, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Reweight(probs)
			if err != nil {
				t.Fatal(err)
			}

			if got.NumDets != want.NumDets {
				t.Fatalf("%v p=%g: NumDets %d vs %d", scheme, phys, got.NumDets, want.NumDets)
			}
			if got.Stats != want.Stats {
				t.Errorf("%v p=%g: stats %+v vs %+v", scheme, phys, got.Stats, want.Stats)
			}
			if len(got.Mechs) != len(want.Mechs) {
				t.Fatalf("%v p=%g: %d mechanisms vs %d", scheme, phys, len(got.Mechs), len(want.Mechs))
			}
			for i := range got.Mechs {
				g, w := &got.Mechs[i], &want.Mechs[i]
				if g.Obs != w.Obs || g.P != w.P || !reflect.DeepEqual(g.Dets, w.Dets) {
					t.Fatalf("%v p=%g: mechanism %d differs: %+v vs %+v", scheme, phys, i, *g, *w)
				}
			}

			// The decoding graphs must agree bit for bit too.
			gg, err := got.DecodingGraph()
			if err != nil {
				t.Fatal(err)
			}
			wg, err := want.DecodingGraph()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gg.Edges, wg.Edges) {
				t.Fatalf("%v p=%g: decoding graphs differ", scheme, phys)
			}
		}
	}
}

// The hoisted graph topology must be invisible in results: a Structure's
// build-once GraphStructure weighted at any noise scale must reproduce a
// fresh Model.DecodingGraph() (its own fault propagation, its own topology
// derivation) bit for bit — edges, weights, adjacency, and stats — across
// schemes, distances, and noise scales.
func TestHoistedGraphMatchesFreshBuild(t *testing.T) {
	cases := []struct {
		scheme extract.Scheme
		d      int
		rates  []float64
	}{
		{extract.Baseline, 3, []float64{8e-4, 2e-3, 5e-3, 1.3e-2}},
		{extract.NaturalAllAtOnce, 3, []float64{2e-3, 8e-3}},
		{extract.CompactInterleaved, 3, []float64{8e-4, 2e-3, 5e-3, 1.3e-2}},
		{extract.CompactInterleaved, 5, []float64{2e-3, 8e-3}},
	}
	for _, tc := range cases {
		cfg := extract.Config{Scheme: tc.scheme, Distance: tc.d, Basis: extract.BasisZ, Params: hardware.Default()}
		base, err := extract.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := BuildStructure(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, phys := range tc.rates {
			params := hardware.Default().ScaledGatesTo(phys)

			fresh := cfg
			fresh.Params = params
			exp2, err := extract.Build(fresh)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Build(exp2)
			if err != nil {
				t.Fatal(err)
			}
			wantG, err := want.DecodingGraph()
			if err != nil {
				t.Fatal(err)
			}

			probs, err := base.NoiseProbs(params, nil)
			if err != nil {
				t.Fatal(err)
			}
			m, err := s.Reweight(probs)
			if err != nil {
				t.Fatal(err)
			}
			gotG, err := m.DecodingGraph()
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(gotG.Edges, wantG.Edges) {
				t.Fatalf("%v d=%d p=%g: hoisted edges differ from fresh build", tc.scheme, tc.d, phys)
			}
			if !reflect.DeepEqual(gotG.Adj, wantG.Adj) {
				t.Fatalf("%v d=%d p=%g: adjacency differs", tc.scheme, tc.d, phys)
			}
			if gotG.Stats != wantG.Stats {
				t.Errorf("%v d=%d p=%g: stats %+v vs %+v", tc.scheme, tc.d, phys, gotG.Stats, wantG.Stats)
			}
		}
	}
}

// The topology must be derived exactly once per Structure: every reweighted
// model shares the same GraphStructure instance, so the per-scale hot path
// pays only the linear weighting pass.
func TestGraphTopologyBuiltOncePerStructure(t *testing.T) {
	cfg := extract.Config{Scheme: extract.CompactInterleaved, Distance: 3, Basis: extract.BasisZ, Params: hardware.Default()}
	e, err := extract.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildStructure(e)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if gs.NumEdges() == 0 {
		t.Fatal("empty hoisted topology")
	}
	for _, phys := range []float64{1e-3, 9e-3} {
		probs, err := e.NoiseProbs(hardware.Default().ScaledGatesTo(phys), nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Reweight(probs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.GraphStructure()
		if err != nil {
			t.Fatal(err)
		}
		if got != gs {
			t.Fatalf("p=%g: model does not share the structure's topology instance", phys)
		}
	}
}

// A hand-assembled Model (no backing Structure) must derive an equivalent
// topology on demand: same decoding graph as the structure-backed path.
func TestHandBuiltModelGraphMatchesStructurePath(t *testing.T) {
	_, m := buildModel(t, extract.Baseline, 3)
	want, err := m.DecodingGraph()
	if err != nil {
		t.Fatal(err)
	}
	loose := &Model{NumDets: m.NumDets, Mechs: m.Mechs, Stats: m.Stats}
	got, err := loose.DecodingGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) || !reflect.DeepEqual(got.Adj, want.Adj) {
		t.Error("hand-built model's graph differs from the structure-backed graph")
	}
}

// Weight must reject a model that does not match the topology's shape.
func TestGraphWeightShapeCheck(t *testing.T) {
	_, m := buildModel(t, extract.Baseline, 3)
	gs, err := m.GraphStructure()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Weight(&Model{NumDets: m.NumDets, Mechs: m.Mechs[:3]}); err == nil {
		t.Error("mismatched mechanism count must be rejected")
	}
}

// Reweight must reject a probability vector of the wrong length.
func TestReweightLengthCheck(t *testing.T) {
	cfg := extract.Config{Scheme: extract.Baseline, Distance: 3, Basis: extract.BasisZ, Params: hardware.Default()}
	e, err := extract.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildStructure(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reweight(make([]float64, 3)); err == nil {
		t.Error("short probability vector must be rejected")
	}
}

// With batch width 1 the BatchSampler consumes the RNG exactly like the
// scalar Sampler (one Float64 per mechanism, firing iff the draw is below
// the mechanism probability), so identically-seeded streams must produce
// identical shots — and therefore identical failure counts under any
// decoder.
func TestBatchWidthOneMatchesScalarSampler(t *testing.T) {
	_, m := buildModel(t, extract.CompactInterleaved, 3)

	scalar := m.NewSampler()
	batch := m.NewBatchSampler()
	rngA := rand.New(rand.NewChaCha8([32]byte{1}))
	rngB := rand.New(rand.NewChaCha8([32]byte{1}))

	const shots = 3000
	for n := 0; n < shots; n++ {
		evA, obsA := scalar.Sample(rngA)
		batch.SampleN(rngB, 1)
		evB, obsB := batch.Shot(0)
		if obsA != obsB {
			t.Fatalf("shot %d: observable %v vs %v", n, obsA, obsB)
		}
		if !reflect.DeepEqual(append([]int{}, evA...), append([]int{}, evB...)) {
			t.Fatalf("shot %d: events %v vs %v", n, evA, evB)
		}
	}
}

// The word-packed 64-shot pass must agree with a straightforward scalar
// replay of the same skip-sampling protocol on an identical RNG stream:
// this pins down the packing, masking, and shot-extraction logic.
func TestBatchSamplerMatchesProtocolReplay(t *testing.T) {
	_, m := buildModel(t, extract.CompactInterleaved, 3)
	bs := m.NewBatchSampler()
	rngA := rand.New(rand.NewChaCha8([32]byte{7}))
	rngB := rand.New(rand.NewChaCha8([32]byte{7}))

	parity := make([]bool, m.NumDets)
	const batches = 200
	for bi := 0; bi < batches; bi++ {
		bs.Sample(rngA)

		// Scalar replay: same protocol, one shot at a time in a plain
		// bool-array representation.
		fired := make([][]int32, BatchShots) // per shot: mechanism indices
		for k, mi := range bs.mech {
			u := rngB.Float64()
			if u >= bs.pAny64[k] {
				continue
			}
			ff := math.Log1p(-u) * bs.inv[k]
			if ff >= BatchShots {
				continue
			}
			pos := int(ff)
			for {
				fired[pos] = append(fired[pos], mi)
				if pos+1 >= BatchShots {
					break
				}
				u2 := rngB.Float64()
				if u2 <= 0 {
					break
				}
				gap := math.Log(u2) * bs.inv[k]
				if gap >= BatchShots {
					break
				}
				pos += 1 + int(gap)
				if pos >= BatchShots {
					break
				}
			}
		}
		for s := 0; s < BatchShots; s++ {
			for i := range parity {
				parity[i] = false
			}
			obs := false
			for _, mi := range fired[s] {
				mech := &m.Mechs[mi]
				for _, d := range mech.Dets {
					parity[d] = !parity[d]
				}
				if mech.Obs {
					obs = !obs
				}
			}
			events, gotObs := bs.Shot(s)
			if gotObs != obs {
				t.Fatalf("batch %d shot %d: observable %v, replay %v", bi, s, gotObs, obs)
			}
			j := 0
			for d, v := range parity {
				if !v {
					continue
				}
				if j >= len(events) || events[j] != d {
					t.Fatalf("batch %d shot %d: events %v disagree with replay at detector %d", bi, s, events, d)
				}
				j++
			}
			if j != len(events) {
				t.Fatalf("batch %d shot %d: %d extra events", bi, s, len(events)-j)
			}
		}
	}
}

// Full-width batches must reproduce the scalar sampler's statistics: mean
// detection-event count and observable-flip rate within a few standard
// errors.
func TestBatchSamplerStatistics(t *testing.T) {
	_, m := buildModel(t, extract.NaturalInterleaved, 3)
	bs := m.NewBatchSampler()
	rng := rand.New(rand.NewChaCha8([32]byte{3}))

	const batches = 400 // 25,600 shots
	events, obsFlips := 0, 0
	for bi := 0; bi < batches; bi++ {
		bs.Sample(rng)
		for s := 0; s < BatchShots; s++ {
			ev, obs := bs.Shot(s)
			events += len(ev)
			if obs {
				obsFlips++
			}
		}
	}
	shots := float64(batches * BatchShots)
	got := float64(events) / shots
	want := m.ExpectedEventRate()
	if math.Abs(got-want) > 0.1*want+0.05 {
		t.Errorf("batch event rate %.4f vs analytic %.4f", got, want)
	}

	// Scalar reference for the raw observable-flip rate.
	scalar := m.NewSampler()
	rng2 := rand.New(rand.NewChaCha8([32]byte{4}))
	scalarFlips := 0
	const scalarShots = 25600
	for n := 0; n < scalarShots; n++ {
		if _, obs := scalar.Sample(rng2); obs {
			scalarFlips++
		}
	}
	a := float64(obsFlips) / shots
	b := float64(scalarFlips) / scalarShots
	if math.Abs(a-b) > 0.015 {
		t.Errorf("batch obs rate %.4f vs scalar %.4f", a, b)
	}
}

// Partial batches must only populate the requested shots.
func TestBatchSamplerPartialWidth(t *testing.T) {
	_, m := buildModel(t, extract.Baseline, 3)
	bs := m.NewBatchSampler()
	rng := rand.New(rand.NewChaCha8([32]byte{9}))
	bs.SampleN(rng, 5)
	if bs.Shots() != 5 {
		t.Fatalf("Shots() = %d", bs.Shots())
	}
	for _, w := range bs.parity {
		if w>>5 != 0 {
			t.Fatalf("parity bits set beyond requested width: %064b", w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Shot beyond drawn width must panic")
		}
	}()
	bs.Shot(5)
}
