package dem

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/pframe"
)

func buildModel(t *testing.T, scheme extract.Scheme, d int) (*extract.Experiment, *Model) {
	t.Helper()
	e, err := extract.Build(extract.Config{Scheme: scheme, Distance: d, Basis: extract.BasisZ, Params: hardware.Default()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	return e, m
}

func TestBuildAllSchemes(t *testing.T) {
	for _, scheme := range extract.Schemes {
		e, m := buildModel(t, scheme, 3)
		if m.NumDets != len(e.Detectors) {
			t.Errorf("%v: NumDets = %d, want %d", scheme, m.NumDets, len(e.Detectors))
		}
		if m.Stats.Mechanisms == 0 || m.Stats.Faults == 0 {
			t.Errorf("%v: empty model: %+v", scheme, m.Stats)
		}
		// Surface-code circuit noise always includes hook errors spanning
		// two detectors and single-detector boundary mechanisms.
		has1, has2 := false, false
		for i := range m.Mechs {
			switch len(m.Mechs[i].Dets) {
			case 1:
				has1 = true
			case 2:
				has2 = true
			}
			if m.Mechs[i].P <= 0 || m.Mechs[i].P >= 1 {
				t.Fatalf("%v: mechanism with probability %g", scheme, m.Mechs[i].P)
			}
		}
		if !has1 || !has2 {
			t.Errorf("%v: missing boundary or pair mechanisms", scheme)
		}
	}
}

// Merging and probabilities: sampling the model must reproduce the
// per-detector fire rates of gate-level frame sampling.
func TestModelMatchesFrameSampling(t *testing.T) {
	for _, scheme := range []extract.Scheme{extract.Baseline, extract.CompactInterleaved} {
		e, m := buildModel(t, scheme, 3)

		const trials = 30000
		// Gate-level reference.
		ref := make([]int, len(e.Detectors))
		refObs := 0
		fs := pframe.NewSampler(e.Circ)
		rng := rand.New(rand.NewPCG(31, 0))
		for n := 0; n < trials; n++ {
			flips := fs.Sample(rng)
			for di, det := range e.Detectors {
				v := false
				for _, mi := range det.Meas {
					v = v != flips[mi]
				}
				if v {
					ref[di]++
				}
			}
			o := false
			for _, mi := range e.Observable {
				o = o != flips[mi]
			}
			if o {
				refObs++
			}
		}

		// Model sampler.
		got := make([]int, m.NumDets)
		gotObs := 0
		ds := m.NewSampler()
		rng2 := rand.New(rand.NewPCG(32, 0))
		for n := 0; n < trials; n++ {
			events, o := ds.Sample(rng2)
			for _, d := range events {
				got[d]++
			}
			if o {
				gotObs++
			}
		}

		for di := range ref {
			a := float64(ref[di]) / trials
			b := float64(got[di]) / trials
			if math.Abs(a-b) > 0.015 {
				t.Errorf("%v: detector %d rate %.4f (frames) vs %.4f (model)", scheme, di, a, b)
			}
		}
		a := float64(refObs) / trials
		b := float64(gotObs) / trials
		if math.Abs(a-b) > 0.015 {
			t.Errorf("%v: raw observable-flip rate %.4f vs %.4f", scheme, a, b)
		}
	}
}

func TestDecodingGraphStructure(t *testing.T) {
	for _, scheme := range extract.Schemes {
		_, m := buildModel(t, scheme, 3)
		g, err := m.DecodingGraph()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if g.NumNodes != m.NumDets {
			t.Errorf("%v: graph nodes %d, want %d", scheme, g.NumNodes, m.NumDets)
		}
		if g.Stats.BoundaryEdges == 0 {
			t.Errorf("%v: no boundary edges", scheme)
		}
		for _, e := range g.Edges {
			if e.W < 0 {
				t.Fatalf("%v: negative weight %g (p=%g)", scheme, e.W, e.P)
			}
			if e.U == e.V {
				t.Fatalf("%v: self-loop edge", scheme)
			}
		}
		// Graph must be connected enough to decode: every node has an edge.
		for v, adj := range g.Adj {
			if len(adj) == 0 {
				t.Fatalf("%v: detector %d has no incident edges", scheme, v)
			}
		}
		// Most multi-detector mechanisms must decompose cleanly.
		if g.Stats.DecomposedDirty > g.Stats.DecomposedOK {
			t.Errorf("%v: %d dirty vs %d clean decompositions", scheme, g.Stats.DecomposedDirty, g.Stats.DecomposedOK)
		}
	}
}

// Logical masks must be consistent: flipping along any cycle of the graph
// should preserve the observable (sum of Obs around a cycle even), except
// for cycles crossing between the two boundaries... which are exactly the
// logical operators. Spot-check the invariant on the smallest graph by
// verifying that a full row of boundary-to-boundary edges flips the
// observable an odd number of times.
func TestLogicalMaskSanity(t *testing.T) {
	_, m := buildModel(t, extract.Baseline, 3)
	g, err := m.DecodingGraph()
	if err != nil {
		t.Fatal(err)
	}
	obsEdges := 0
	for _, e := range g.Edges {
		if e.Obs {
			obsEdges++
		}
	}
	if obsEdges == 0 {
		t.Fatal("no edge carries the logical mask; logical errors would be invisible")
	}
}

func TestWeightOf(t *testing.T) {
	if w := WeightOf(0.5); w < 0 || w > 1e-6 {
		t.Errorf("WeightOf(0.5) = %g, want ~0", w)
	}
	if w1, w2 := WeightOf(1e-3), WeightOf(1e-2); w1 <= w2 {
		t.Error("weights must decrease with probability")
	}
	if w := WeightOf(0); math.IsInf(w, 0) || math.IsNaN(w) {
		t.Errorf("WeightOf(0) must be finite, got %g", w)
	}
}

func TestXorProb(t *testing.T) {
	if got := xorProb(0.5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("xorProb(0.5,0.5) = %g", got)
	}
	if got := xorProb(0, 0.25); got != 0.25 {
		t.Errorf("xorProb(0,p) = %g", got)
	}
	// Commutative.
	if xorProb(0.1, 0.3) != xorProb(0.3, 0.1) {
		t.Error("xorProb must be commutative")
	}
}
