package dem

import (
	"fmt"
	"math"
)

// WeightedBatchSampler draws shots from a *proposal* error model and tracks,
// per shot, the log likelihood ratio of the *target* model against the
// proposal — the importance-sampling weight that makes tallies under the
// proposal unbiased estimates of target-model expectations:
//
//	w(shot) = P_target(shot) / P_proposal(shot)
//	        = Π_k  p_k/q_k          (entry k fired)
//	          Π_k  (1-p_k)/(1-q_k)  (entry k did not fire)
//
// which in log space is a per-shot base (every entry's no-fire contribution)
// plus one increment per firing entry:
//
//	log w = Σ_k [log1p(-p_k) - log1p(-q_k)]                      (base)
//	      + Σ_{fired k} [(log p_k - log q_k) - (log1p(-p_k) - log1p(-q_k))]
//
// The sampler piggybacks on BatchSampler's geometric-skip hot loop: weight
// bookkeeping costs one float add per *firing* entry, not per entry, so a
// weighted batch is barely more expensive than a plain one. When target and
// proposal agree (boost = 1) both terms are computed as exact 0.0, every
// weight is exactly 1.0, and RNG consumption is bit-identical to a plain
// BatchSampler over the same model — the degenerate case collapses to the
// unweighted sampler by construction, not by approximation.
//
// Not safe for concurrent use; create one per goroutine.
type WeightedBatchSampler struct {
	BatchSampler
	target *Model
	lam    []float64 // backing for BatchSampler.wlam, reused across Resets
}

// NewWeightedBatchSampler returns a sampler drawing from proposal and
// weighting against target. The models must align: same detector count, same
// mechanism list (footprints and observable flags), and per mechanism the
// proposal may change the probability only within the open interval — an
// entry the target can fire (p > 0) must remain fireable under the proposal
// (q > 0), and the always-fire classes (p >= 1 ⇔ q >= 1) must match, or the
// likelihood ratio is undefined/degenerate.
func NewWeightedBatchSampler(target, proposal *Model) (*WeightedBatchSampler, error) {
	ws := &WeightedBatchSampler{}
	if err := ws.Reset(target, proposal); err != nil {
		return nil, err
	}
	return ws, nil
}

// Reset rebinds the sampler to a new target/proposal pair, reusing buffers
// like BatchSampler.Reset. Calling the embedded BatchSampler.Reset directly
// instead drops the sampler back to plain unweighted mode.
func (ws *WeightedBatchSampler) Reset(target, proposal *Model) error {
	if err := checkWeightable(target, proposal); err != nil {
		return err
	}
	ws.BatchSampler.Reset(proposal)
	ws.target = target
	ws.lam = ws.lam[:0]
	base := 0.0
	for k, mi := range ws.mech {
		q := ws.p[k]
		p := target.Mechs[mi].P
		lq1 := ws.logq[k]     // log1p(-q), shared with the skip-sampler tables
		lp1 := math.Log1p(-p) // log1p(-p); identical computation ⇒ exact 0 diff when p == q
		base += lp1 - lq1
		ws.lam = append(ws.lam, (math.Log(p)-math.Log(q))-(lp1-lq1))
	}
	ws.wlam = ws.lam
	ws.wbase = base
	return nil
}

// Target returns the model the weights are computed against.
func (ws *WeightedBatchSampler) Target() *Model { return ws.target }

// BaseLogWeight returns the no-fire log weight every shot starts from.
func (ws *WeightedBatchSampler) BaseLogWeight() float64 { return ws.wbase }

// LogWeight returns shot s's log likelihood ratio from the last
// Sample/SampleN call.
func (ws *WeightedBatchSampler) LogWeight(s int) float64 {
	if s < 0 || s >= ws.n {
		panic(fmt.Sprintf("dem: shot %d outside drawn batch of %d", s, ws.n))
	}
	return ws.logw[s]
}

// Weight returns shot s's likelihood ratio exp(LogWeight(s)).
func (ws *WeightedBatchSampler) Weight(s int) float64 {
	return math.Exp(ws.LogWeight(s))
}

// checkWeightable validates that proposal is an importance-sampling proposal
// for target: identical topology, and probability changes confined to (0, 1).
func checkWeightable(target, proposal *Model) error {
	if target == nil || proposal == nil {
		return fmt.Errorf("dem: weighted sampler needs both target and proposal models")
	}
	if target.NumDets != proposal.NumDets {
		return fmt.Errorf("dem: weighted sampler detector mismatch: target %d, proposal %d",
			target.NumDets, proposal.NumDets)
	}
	if len(target.Mechs) != len(proposal.Mechs) {
		return fmt.Errorf("dem: weighted sampler mechanism count mismatch: target %d, proposal %d",
			len(target.Mechs), len(proposal.Mechs))
	}
	for i := range target.Mechs {
		t, q := &target.Mechs[i], &proposal.Mechs[i]
		if t.Obs != q.Obs || !sameFootprint(t.Dets, q.Dets) {
			return fmt.Errorf("dem: weighted sampler footprint mismatch at mechanism %d", i)
		}
		switch {
		case (t.P <= 0) != (q.P <= 0):
			return fmt.Errorf("dem: weighted sampler zero-support mismatch at mechanism %d: target p=%g, proposal q=%g",
				i, t.P, q.P)
		case (t.P >= 1) != (q.P >= 1):
			return fmt.Errorf("dem: weighted sampler always-fire mismatch at mechanism %d: target p=%g, proposal q=%g",
				i, t.P, q.P)
		}
	}
	return nil
}

// sameFootprint reports whether two detector lists are identical, with a
// same-backing fast path for models sharing one Structure.
func sameFootprint(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
