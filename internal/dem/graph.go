package dem

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// BoundaryNode is the virtual node id used for single-detector (boundary)
// edges in the decoding graph.
const BoundaryNode int32 = -1

// Edge is one decoding-graph edge: an error class flipping detectors U and V
// (V == BoundaryNode for boundary edges) with probability P, matching weight
// W = ln((1-P)/P), and logical mask Obs.
type Edge struct {
	U, V int32
	P    float64
	W    float64
	Obs  bool
}

// GraphStats reports diagnostics from graph extraction.
type GraphStats struct {
	Edges            int
	BoundaryEdges    int
	DecomposedOK     int // multi-detector mechanisms decomposed into known edges
	DecomposedDirty  int // fallback decompositions (footprint had no exact cover)
	AmbiguousClasses int // edges whose two logical classes both carried mass
	AmbiguousMass    float64
}

// Graph is the matchable decoding graph extracted from a Model.
type Graph struct {
	NumNodes int
	Edges    []Edge
	// Adj[v] lists edge indices incident to node v (boundary edges appear
	// only in their real endpoint's list).
	Adj   [][]int32
	Stats GraphStats
}

type edgeKey struct{ u, v int32 }

// GraphStructure is the noise-independent half of a decoding graph: the
// candidate 1- and 2-detector edge topology (including boundary assignment),
// the decomposition of multi-detector mechanisms into elementary edges, and,
// per candidate edge, the list of mechanisms feeding each logical class. It
// depends only on mechanism footprints — never on probabilities — so one
// GraphStructure serves every noise scale of a sweep; Weight materializes
// the weighted Graph for a particular Model in a single linear pass.
//
// Contract change from the pre-hoisting projection: the decomposition
// search labels elementary edges by their *structural* logical class (true
// only when every source carries the observable) rather than by whichever
// class holds more probability mass at the current scale — the old rule
// would have made the topology noise-dependent. On the rare ambiguous edge
// (both classes carry sources; counted by GraphStats.AmbiguousClasses) a
// multi-detector mechanism's mass can therefore land in the other class
// than it did pre-hoisting, shifting that edge's Obs. Materialized edge
// probabilities and weights are unchanged, and the final Edge.Obs is still
// the probability-majority class.
//
// A GraphStructure is immutable after construction and safe for concurrent
// use.
type GraphStructure struct {
	NumNodes int
	numMechs int

	// Candidate edges sorted by (u, v); v == BoundaryNode for boundary
	// edges.
	u, v []int32

	// Sources in CSR form: mechanism srcMech[k] contributes its probability
	// to logical class srcObs[k] of edge i, for k in [srcOff[i],
	// srcOff[i+1]), in mechanism processing order.
	srcMech []int32
	srcObs  []bool
	srcOff  []int32

	// adj is the candidate-edge adjacency, shared read-only by every
	// weighted Graph in which no candidate edge dropped to zero probability
	// (the normal case for engine sweeps, where candidate index == edge
	// index). Weighted graphs that do drop edges rebuild their own.
	adj [][]int32

	decomposedOK, decomposedDirty int
}

// NumEdges returns the candidate edge count (edges whose probability folds
// to zero at a given weighting are dropped from the materialized Graph).
func (gs *GraphStructure) NumEdges() int { return len(gs.u) }

// edgeAcc accumulates one candidate edge's mechanism sources during
// topology construction.
type edgeAcc struct {
	mechs    []int32
	classes  []bool
	hasTrue  bool
	hasFalse bool
}

// buildGraphStructure derives the candidate decoding-graph topology from
// mechanism footprints. Elementary mechanisms (1 or 2 detectors) define the
// edge set directly; larger footprints are decomposed over it, preferring
// exact covers whose structural logical masks XOR to the mechanism's. An
// edge's structural mask is unambiguous-class-or-false: true only when every
// source seen so far carries the observable.
func buildGraphStructure(numDets, numMechs int, footprint func(int) ([]int32, bool)) (*GraphStructure, error) {
	acc := make(map[edgeKey]*edgeAcc)
	var order []edgeKey
	add := func(u, v int32, mech int32, class bool) {
		if v != BoundaryNode && u > v {
			u, v = v, u
		}
		k := edgeKey{u, v}
		a, ok := acc[k]
		if !ok {
			a = &edgeAcc{}
			acc[k] = a
			order = append(order, k)
		}
		a.mechs = append(a.mechs, mech)
		a.classes = append(a.classes, class)
		if class {
			a.hasTrue = true
		} else {
			a.hasFalse = true
		}
	}
	label := func(u, v int32) (bool, bool) {
		if v != BoundaryNode && u > v {
			u, v = v, u
		}
		a, ok := acc[edgeKey{u, v}]
		if !ok {
			return false, false
		}
		return a.hasTrue && !a.hasFalse, true
	}

	gs := &GraphStructure{NumNodes: numDets, numMechs: numMechs}

	// Pass 1: elementary mechanisms define the edge set.
	var big []int32
	for i := 0; i < numMechs; i++ {
		dets, obs := footprint(i)
		for _, d := range dets {
			if d < 0 || int(d) >= numDets {
				return nil, fmt.Errorf("dem: mechanism %d detector %d out of range [0, %d)", i, d, numDets)
			}
		}
		switch len(dets) {
		case 0:
			gs.decomposedDirty++ // no matchable footprint; dropped
		case 1:
			add(dets[0], BoundaryNode, int32(i), obs)
		case 2:
			add(dets[0], dets[1], int32(i), obs)
		default:
			big = append(big, int32(i))
		}
	}

	// Pass 2: decompose larger footprints over the elementary edge set.
	for _, mi := range big {
		dets, obs := footprint(int(mi))
		parts, obsOK := decompose(dets, obs, label)
		if parts == nil {
			// Fallback: pair consecutive detectors; attach the observable
			// mask to the first pair.
			gs.decomposedDirty++
			for i := 0; i+1 < len(dets); i += 2 {
				add(dets[i], dets[i+1], mi, obs && i == 0)
			}
			if len(dets)%2 == 1 {
				add(dets[len(dets)-1], BoundaryNode, mi, false)
			}
			continue
		}
		if obsOK {
			gs.decomposedOK++
		} else {
			gs.decomposedDirty++
		}
		for _, part := range parts {
			cls, _ := label(part[0], part[1])
			add(part[0], part[1], mi, cls)
		}
	}

	// Flatten to CSR in sorted edge order.
	slices.SortFunc(order, func(a, b edgeKey) int {
		if a.u != b.u {
			return cmp.Compare(a.u, b.u)
		}
		return cmp.Compare(a.v, b.v)
	})
	gs.srcOff = make([]int32, 1, len(order)+1)
	for _, k := range order {
		a := acc[k]
		gs.u = append(gs.u, k.u)
		gs.v = append(gs.v, k.v)
		gs.srcMech = append(gs.srcMech, a.mechs...)
		gs.srcObs = append(gs.srcObs, a.classes...)
		gs.srcOff = append(gs.srcOff, int32(len(gs.srcMech)))
	}

	// Candidate adjacency, hoisted so Weight can share it across noise
	// scales instead of rebuilding per-node lists per scale.
	gs.adj = make([][]int32, numDets)
	for i := range gs.u {
		gs.adj[gs.u[i]] = append(gs.adj[gs.u[i]], int32(i))
		if gs.v[i] != BoundaryNode {
			gs.adj[gs.v[i]] = append(gs.adj[gs.v[i]], int32(i))
		}
	}
	return gs, nil
}

// Weight materializes the weighted Graph for model m, which must carry the
// same mechanism list the topology was derived from. Per candidate edge it
// XOR-folds the source mechanisms' probabilities into the two logical
// classes; edges whose total probability folds to zero are dropped. This is
// the only per-noise-scale graph work left once the topology is hoisted.
func (gs *GraphStructure) Weight(m *Model) (*Graph, error) {
	if m.NumDets != gs.NumNodes || len(m.Mechs) != gs.numMechs {
		return nil, fmt.Errorf("dem: model with %d detectors / %d mechanisms does not match graph structure (%d / %d)",
			m.NumDets, len(m.Mechs), gs.NumNodes, gs.numMechs)
	}
	g := &Graph{NumNodes: gs.NumNodes}
	g.Stats.DecomposedOK = gs.decomposedOK
	g.Stats.DecomposedDirty = gs.decomposedDirty
	g.Edges = make([]Edge, 0, len(gs.u))
	for i := range gs.u {
		var pFalse, pTrue float64
		for k := gs.srcOff[i]; k < gs.srcOff[i+1]; k++ {
			p := m.Mechs[gs.srcMech[k]].P
			if gs.srcObs[k] {
				pTrue = xorProb(pTrue, p)
			} else {
				pFalse = xorProb(pFalse, p)
			}
		}
		p := xorProb(pFalse, pTrue)
		if p <= 0 {
			continue
		}
		if pTrue > 0 && pFalse > 0 {
			g.Stats.AmbiguousClasses++
			g.Stats.AmbiguousMass += math.Min(pTrue, pFalse)
		}
		g.Edges = append(g.Edges, Edge{U: gs.u[i], V: gs.v[i], P: p, W: WeightOf(p), Obs: pTrue > pFalse})
		if gs.v[i] == BoundaryNode {
			g.Stats.BoundaryEdges++
		}
	}
	g.Stats.Edges = len(g.Edges)
	if len(g.Edges) == len(gs.u) {
		// No candidate dropped: candidate index == edge index, so the
		// hoisted adjacency applies verbatim. Shared read-only.
		g.Adj = gs.adj
	} else {
		g.Adj = make([][]int32, g.NumNodes)
		for ei := range g.Edges {
			e := &g.Edges[ei]
			g.Adj[e.U] = append(g.Adj[e.U], int32(ei))
			if e.V != BoundaryNode {
				g.Adj[e.V] = append(g.Adj[e.V], int32(ei))
			}
		}
	}
	return g, nil
}

// GraphStructure returns the hoisted decoding-graph topology backing this
// model: the Structure's shared, build-once instance when the model came
// from Reweight (or Build), or a freshly derived one for hand-assembled
// models.
func (m *Model) GraphStructure() (*GraphStructure, error) {
	if m.st != nil {
		return m.st.Graph()
	}
	return buildGraphStructure(m.NumDets, len(m.Mechs), func(i int) ([]int32, bool) {
		return m.Mechs[i].Dets, m.Mechs[i].Obs
	})
}

// DecodingGraph projects the model onto a graph of 1- and 2-detector error
// classes: the hoisted topology (built once per Structure) weighted with
// this model's mechanism probabilities.
func (m *Model) DecodingGraph() (*Graph, error) {
	gs, err := m.GraphStructure()
	if err != nil {
		return nil, err
	}
	return gs.Weight(m)
}

// decompose searches for a partition of dets into known elementary edges
// (pairs, or singletons matched to the boundary) whose logical masks XOR to
// obs. It returns the parts (each {u, v} with v possibly BoundaryNode) and
// whether the observable constraint was met; parts == nil means no cover by
// known edges exists at all.
func decompose(dets []int32, obs bool, known func(u, v int32) (bool, bool)) (parts [][2]int32, obsOK bool) {
	var best [][2]int32
	bestOK := false
	var cur [][2]int32

	var rec func(remaining []int32, acc bool)
	rec = func(remaining []int32, acc bool) {
		if bestOK {
			return
		}
		if len(remaining) == 0 {
			if best == nil || acc == obs {
				best = append([][2]int32(nil), cur...)
				bestOK = acc == obs
			}
			return
		}
		d0 := remaining[0]
		// Pair d0 with each later detector over a known edge.
		for j := 1; j < len(remaining); j++ {
			dj := remaining[j]
			eObs, ok := known(d0, dj)
			if !ok {
				continue
			}
			rest := make([]int32, 0, len(remaining)-2)
			rest = append(rest, remaining[1:j]...)
			rest = append(rest, remaining[j+1:]...)
			cur = append(cur, [2]int32{d0, dj})
			rec(rest, acc != eObs)
			cur = cur[:len(cur)-1]
		}
		// Or send d0 to the boundary.
		if eObs, ok := known(d0, BoundaryNode); ok {
			cur = append(cur, [2]int32{d0, BoundaryNode})
			rec(remaining[1:], acc != eObs)
			cur = cur[:len(cur)-1]
		}
	}
	rec(dets, false)
	return best, bestOK
}
