package dem

import (
	"cmp"
	"fmt"
	"slices"
)

// BoundaryNode is the virtual node id used for single-detector (boundary)
// edges in the decoding graph.
const BoundaryNode int32 = -1

// Edge is one decoding-graph edge: an error class flipping detectors U and V
// (V == BoundaryNode for boundary edges) with probability P, matching weight
// W = ln((1-P)/P), and logical mask Obs.
type Edge struct {
	U, V int32
	P    float64
	W    float64
	Obs  bool
}

// GraphStats reports diagnostics from graph extraction.
type GraphStats struct {
	Edges            int
	BoundaryEdges    int
	DecomposedOK     int // multi-detector mechanisms decomposed into known edges
	DecomposedDirty  int // fallback decompositions (footprint had no exact cover)
	AmbiguousClasses int // edges whose two logical classes both carried mass
	AmbiguousMass    float64
}

// Graph is the matchable decoding graph extracted from a Model.
type Graph struct {
	NumNodes int
	Edges    []Edge
	// Adj[v] lists edge indices incident to node v (boundary edges appear
	// only in their real endpoint's list).
	Adj   [][]int32
	Stats GraphStats
}

type edgeKey struct{ u, v int32 }

type edgeClasses struct {
	pFalse, pTrue float64 // probability mass per logical class
}

// DecodingGraph projects the model onto a graph of 1- and 2-detector error
// classes. Mechanisms with larger footprints are decomposed into elementary
// edges (preferring exact covers by already-known edges whose logical masks
// XOR to the mechanism's); each component inherits the mechanism's
// probability.
func (m *Model) DecodingGraph() (*Graph, error) {
	acc := make(map[edgeKey]*edgeClasses)
	var order []edgeKey
	bump := func(u, v int32, obs bool, p float64) {
		if v != BoundaryNode && u > v {
			u, v = v, u
		}
		k := edgeKey{u, v}
		c, ok := acc[k]
		if !ok {
			c = &edgeClasses{}
			acc[k] = c
			order = append(order, k)
		}
		if obs {
			c.pTrue = xorProb(c.pTrue, p)
		} else {
			c.pFalse = xorProb(c.pFalse, p)
		}
	}

	g := &Graph{NumNodes: m.NumDets}

	// Pass 1: elementary mechanisms.
	var big []*Mechanism
	for i := range m.Mechs {
		mech := &m.Mechs[i]
		switch len(mech.Dets) {
		case 1:
			bump(mech.Dets[0], BoundaryNode, mech.Obs, mech.P)
		case 2:
			bump(mech.Dets[0], mech.Dets[1], mech.Obs, mech.P)
		default:
			big = append(big, mech)
		}
	}

	// Pass 2: decompose larger footprints over the elementary edge set.
	known := func(u, v int32) (obs bool, ok bool) {
		if v != BoundaryNode && u > v {
			u, v = v, u
		}
		c, exists := acc[edgeKey{u, v}]
		if !exists {
			return false, false
		}
		return c.pTrue > c.pFalse, true
	}
	for _, mech := range big {
		parts, obsOK := decompose(mech.Dets, mech.Obs, known)
		if parts == nil {
			// Fallback: pair consecutive detectors; attach the observable
			// mask to the first pair.
			g.Stats.DecomposedDirty++
			for i := 0; i+1 < len(mech.Dets); i += 2 {
				bump(mech.Dets[i], mech.Dets[i+1], mech.Obs && i == 0, mech.P)
			}
			if len(mech.Dets)%2 == 1 {
				last := mech.Dets[len(mech.Dets)-1]
				bump(last, BoundaryNode, false, mech.P)
			}
			continue
		}
		if obsOK {
			g.Stats.DecomposedOK++
		} else {
			g.Stats.DecomposedDirty++
		}
		for _, part := range parts {
			obs, _ := known(part[0], part[1])
			bump(part[0], part[1], obs, mech.P)
		}
	}

	// Materialize edges.
	slices.SortFunc(order, func(a, b edgeKey) int {
		if a.u != b.u {
			return cmp.Compare(a.u, b.u)
		}
		return cmp.Compare(a.v, b.v)
	})
	for _, k := range order {
		c := acc[k]
		p := xorProb(c.pFalse, c.pTrue)
		if p <= 0 {
			continue
		}
		obs := c.pTrue > c.pFalse
		if c.pTrue > 0 && c.pFalse > 0 {
			g.Stats.AmbiguousClasses++
			if c.pTrue < c.pFalse {
				g.Stats.AmbiguousMass += c.pTrue
			} else {
				g.Stats.AmbiguousMass += c.pFalse
			}
		}
		e := Edge{U: k.u, V: k.v, P: p, W: WeightOf(p), Obs: obs}
		g.Edges = append(g.Edges, e)
		if k.v == BoundaryNode {
			g.Stats.BoundaryEdges++
		}
	}
	g.Stats.Edges = len(g.Edges)

	g.Adj = make([][]int32, g.NumNodes)
	for ei := range g.Edges {
		e := &g.Edges[ei]
		if e.U < 0 || int(e.U) >= g.NumNodes || (e.V != BoundaryNode && int(e.V) >= g.NumNodes) {
			return nil, fmt.Errorf("dem: edge %d endpoints (%d,%d) out of range", ei, e.U, e.V)
		}
		g.Adj[e.U] = append(g.Adj[e.U], int32(ei))
		if e.V != BoundaryNode {
			g.Adj[e.V] = append(g.Adj[e.V], int32(ei))
		}
	}
	return g, nil
}

// decompose searches for a partition of dets into known elementary edges
// (pairs, or singletons matched to the boundary) whose logical masks XOR to
// obs. It returns the parts (each {u, v} with v possibly BoundaryNode) and
// whether the observable constraint was met; parts == nil means no cover by
// known edges exists at all.
func decompose(dets []int32, obs bool, known func(u, v int32) (bool, bool)) (parts [][2]int32, obsOK bool) {
	var best [][2]int32
	bestOK := false
	var cur [][2]int32

	var rec func(remaining []int32, acc bool)
	rec = func(remaining []int32, acc bool) {
		if bestOK {
			return
		}
		if len(remaining) == 0 {
			if best == nil || acc == obs {
				best = append([][2]int32(nil), cur...)
				bestOK = acc == obs
			}
			return
		}
		d0 := remaining[0]
		// Pair d0 with each later detector over a known edge.
		for j := 1; j < len(remaining); j++ {
			dj := remaining[j]
			eObs, ok := known(d0, dj)
			if !ok {
				continue
			}
			rest := make([]int32, 0, len(remaining)-2)
			rest = append(rest, remaining[1:j]...)
			rest = append(rest, remaining[j+1:]...)
			cur = append(cur, [2]int32{d0, dj})
			rec(rest, acc != eObs)
			cur = cur[:len(cur)-1]
		}
		// Or send d0 to the boundary.
		if eObs, ok := known(d0, BoundaryNode); ok {
			cur = append(cur, [2]int32{d0, BoundaryNode})
			rec(remaining[1:], acc != eObs)
			cur = cur[:len(cur)-1]
		}
	}
	rec(dets, false)
	return best, bestOK
}
