package dem

import (
	"math/bits"
	"math/rand/v2"
	"slices"
	"testing"

	"repro/internal/extract"
)

// EventMask, ObsWord, and Extract must agree exactly with per-shot Shot
// extraction: same zero/nonzero classification, same observable truth,
// and byte-identical sorted detector lists for every shot in the mask.
func TestBatchWordStatsMatchPerShotExtraction(t *testing.T) {
	_, m := buildModel(t, extract.CompactInterleaved, 5)
	bs := m.NewBatchSampler()
	rng := rand.New(rand.NewPCG(41, 7))
	var ss ShotSet
	for trial := 0; trial < 20; trial++ {
		n := BatchShots
		if trial%3 == 1 {
			n = 1 + trial
		}
		bs.SampleN(rng, n)
		nz := bs.EventMask()
		obsW := bs.ObsWord()
		var wantMask uint64
		for s := 0; s < n; s++ {
			events, obs := bs.Shot(s)
			if len(events) > 0 {
				wantMask |= 1 << uint(s)
			}
			if obs != (obsW&(1<<uint(s)) != 0) {
				t.Fatalf("trial %d shot %d: ObsWord bit %v vs Shot obs %v", trial, s, !obs, obs)
			}
		}
		if nz != wantMask {
			t.Fatalf("trial %d: EventMask %#x vs per-shot mask %#x", trial, nz, wantMask)
		}
		if hi := 64 - bits.LeadingZeros64(nz); hi > n {
			t.Fatalf("trial %d: EventMask has bit %d set beyond batch of %d", trial, hi-1, n)
		}

		bs.Extract(nz, &ss)
		if ss.Len() != bits.OnesCount64(nz) {
			t.Fatalf("trial %d: Extract returned %d shots for mask of %d bits", trial, ss.Len(), bits.OnesCount64(nz))
		}
		seen := 0
		for s := 0; s < n; s++ {
			if nz&(1<<uint(s)) == 0 {
				continue
			}
			if got := ss.Index(seen); got != s {
				t.Fatalf("trial %d: entry %d has shot index %d, want %d", trial, seen, got, s)
			}
			events, _ := bs.Shot(s)
			if !slices.Equal(ss.Shot(seen), events) {
				t.Fatalf("trial %d shot %d: Extract %v vs Shot %v", trial, s, ss.Shot(seen), events)
			}
			seen++
		}
	}
}

// Extract over a sub-mask must return exactly the selected shots, and an
// empty mask an empty set (buffer-reuse hygiene).
func TestExtractSubMask(t *testing.T) {
	_, m := buildModel(t, extract.NaturalInterleaved, 3)
	bs := m.NewBatchSampler()
	rng := rand.New(rand.NewPCG(5, 5))
	bs.Sample(rng)
	nz := bs.EventMask()
	var ss ShotSet
	// Every other set bit.
	var sub uint64
	keep := true
	for w := nz; w != 0; w &= w - 1 {
		if keep {
			sub |= w & -w
		}
		keep = !keep
	}
	bs.Extract(sub, &ss)
	if ss.Len() != bits.OnesCount64(sub) {
		t.Fatalf("sub-mask extract returned %d shots, want %d", ss.Len(), bits.OnesCount64(sub))
	}
	for i := 0; i < ss.Len(); i++ {
		s := ss.Index(i)
		if sub&(1<<uint(s)) == 0 {
			t.Fatalf("entry %d has shot %d outside the sub-mask", i, s)
		}
		events, _ := bs.Shot(s)
		if !slices.Equal(ss.Shot(i), events) {
			t.Fatalf("shot %d: %v vs %v", s, ss.Shot(i), events)
		}
	}
	bs.Extract(0, &ss)
	if ss.Len() != 0 {
		t.Fatalf("empty mask extracted %d shots", ss.Len())
	}
}
