package dem

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// The analytic expected detection-event rate must match empirical sampling.
func TestExpectedEventRate(t *testing.T) {
	_, m := buildModel(t, extract.NaturalInterleaved, 3)
	want := m.ExpectedEventRate()
	s := m.NewSampler()
	rng := rand.New(rand.NewPCG(77, 0))
	const trials = 20000
	total := 0
	for i := 0; i < trials; i++ {
		ev, _ := s.Sample(rng)
		total += len(ev)
	}
	got := float64(total) / trials
	// First-order approximation: allow 10% plus absolute slack (cancellation
	// between overlapping mechanisms makes the true rate slightly lower).
	if math.Abs(got-want) > 0.1*want+0.05 {
		t.Errorf("empirical event rate %.4f vs analytic %.4f", got, want)
	}
}

// At distance 5 the circuit produces multi-detector faults (hooks spanning
// both space and time); all of them must decompose cleanly over elementary
// edges.
func TestDecompositionAtDistance5(t *testing.T) {
	e, err := extract.Build(extract.Config{
		Scheme: extract.CompactInterleaved, Distance: 5, Basis: extract.BasisZ,
		Params: hardware.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.DecodingGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.DecomposedDirty > 0 {
		t.Errorf("%d dirty decompositions at d=5 (ok=%d); footprints not covered by elementary edges",
			g.Stats.DecomposedDirty, g.Stats.DecomposedOK)
	}
	// Ambiguous logical mass (same edge carrying both classes) must be a
	// tiny fraction of total edge probability.
	totalP := 0.0
	for _, ed := range g.Edges {
		totalP += ed.P
	}
	if g.Stats.AmbiguousMass > 0.05*totalP {
		t.Errorf("ambiguous logical mass %.4g is %.1f%% of total %.4g",
			g.Stats.AmbiguousMass, 100*g.Stats.AmbiguousMass/totalP, totalP)
	}
}

// Probability bookkeeping property: xorProb is associative and stays within
// [0, 0.5] when both inputs are (physical error rates are sub-half).
func TestXorProbProperties(t *testing.T) {
	f := func(a, b, c uint16) bool {
		pa := float64(a) / (2 << 16) // [0, 0.5)
		pb := float64(b) / (2 << 16)
		pc := float64(c) / (2 << 16)
		left := xorProb(xorProb(pa, pb), pc)
		right := xorProb(pa, xorProb(pb, pc))
		if math.Abs(left-right) > 1e-12 {
			return false
		}
		v := xorProb(pa, pb)
		return v >= 0 && v <= 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Model mechanisms must be deterministic across rebuilds (map-iteration
// hygiene): same circuit, same model.
func TestBuildDeterminism(t *testing.T) {
	e, err := extract.Build(extract.Config{
		Scheme: extract.CompactAllAtOnce, Distance: 3, Basis: extract.BasisZ,
		Params: hardware.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Mechs) != len(b.Mechs) {
		t.Fatalf("mechanism counts differ: %d vs %d", len(a.Mechs), len(b.Mechs))
	}
	for i := range a.Mechs {
		ma, mb := &a.Mechs[i], &b.Mechs[i]
		if ma.Obs != mb.Obs || ma.P != mb.P || len(ma.Dets) != len(mb.Dets) {
			t.Fatalf("mechanism %d differs across rebuilds", i)
		}
		for j := range ma.Dets {
			if ma.Dets[j] != mb.Dets[j] {
				t.Fatalf("mechanism %d detector lists differ", i)
			}
		}
	}
}
