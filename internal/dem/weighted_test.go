package dem

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/extract"
)

// weightedHandPair builds a target/proposal pair of K disjoint
// single-detector mechanisms so parity plane i reveals exactly mechanism i's
// fires — the one topology where a test can reconstruct every shot's exact
// likelihood ratio from observable state alone.
func weightedHandPair(K int, boost float64) (*Model, *Model) {
	target := &Model{NumDets: K}
	prop := &Model{NumDets: K}
	for i := 0; i < K; i++ {
		p := 0.002 + 0.003*float64(i%7)
		q := p * boost
		if q > 0.5 {
			q = 0.5
		}
		dets := []int32{int32(i)}
		target.Mechs = append(target.Mechs, Mechanism{Dets: dets, Obs: i%2 == 0, P: p})
		prop.Mechs = append(prop.Mechs, Mechanism{Dets: dets, Obs: i%2 == 0, P: q})
	}
	return target, prop
}

// Every shot's log weight must equal the sum, over all mechanisms, of the
// fired/not-fired log likelihood ratio — reconstructed independently from
// the parity planes of a disjoint-footprint model.
func TestWeightedBatchSamplerExactWeights(t *testing.T) {
	for _, boost := range []float64{1, 2.5, 8, 200} {
		target, prop := weightedHandPair(37, boost)
		ws, err := NewWeightedBatchSampler(target, prop)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewChaCha8([32]byte{1, 9}))
		for trial, n := range []int{64, 1, 17, 64, 3, 1, 64} {
			ws.SampleN(rng, n)
			for s := 0; s < n; s++ {
				want := 0.0
				for i := range target.Mechs {
					p, q := target.Mechs[i].P, prop.Mechs[i].P
					if ws.parity[i]&(1<<uint(s)) != 0 {
						want += math.Log(p) - math.Log(q)
					} else {
						want += math.Log1p(-p) - math.Log1p(-q)
					}
				}
				got := ws.LogWeight(s)
				if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("boost %g trial %d shot %d (n=%d): log weight %g, want %g",
						boost, trial, s, n, got, want)
				}
				if w := ws.Weight(s); w != math.Exp(got) {
					t.Fatalf("Weight %g != exp(LogWeight) %g", w, math.Exp(got))
				}
			}
		}
	}
}

// A boost-1 proposal (target == proposal probabilities) must collapse to the
// plain sampler exactly: weights exactly 1.0, identical parity planes and
// observable word, and identical RNG consumption.
func TestWeightedBoostOneIsPlainSampler(t *testing.T) {
	_, m := buildModel(t, extract.CompactInterleaved, 3)
	prop := &Model{NumDets: m.NumDets, Stats: m.Stats, Mechs: append([]Mechanism(nil), m.Mechs...)}
	ws, err := NewWeightedBatchSampler(m, prop)
	if err != nil {
		t.Fatal(err)
	}
	if ws.BaseLogWeight() != 0 {
		t.Fatalf("boost-1 base log weight %g, want exactly 0", ws.BaseLogWeight())
	}
	plain := m.NewBatchSampler()
	seed := [32]byte{42, 3}
	rngW := rand.New(rand.NewChaCha8(seed))
	rngP := rand.New(rand.NewChaCha8(seed))
	for trial := 0; trial < 12; trial++ {
		n := BatchShots
		if trial%3 == 1 {
			n = 1 + trial
		}
		ws.SampleN(rngW, n)
		plain.SampleN(rngP, n)
		for d := range plain.parity {
			if ws.parity[d] != plain.parity[d] {
				t.Fatalf("trial %d: parity plane %d diverged", trial, d)
			}
		}
		if ws.ObsWord() != plain.ObsWord() {
			t.Fatalf("trial %d: obs word diverged", trial)
		}
		for s := 0; s < n; s++ {
			if lw := ws.LogWeight(s); lw != 0 {
				t.Fatalf("trial %d shot %d: log weight %g, want exactly 0", trial, s, lw)
			}
			if w := ws.Weight(s); w != 1 {
				t.Fatalf("trial %d shot %d: weight %g, want exactly 1", trial, s, w)
			}
		}
	}
	if rngW.Uint64() != rngP.Uint64() {
		t.Fatal("weighted and plain samplers consumed the RNG differently")
	}
}

// Importance weights must average to 1 (the proposal-expectation of the
// likelihood ratio is exactly 1): fixed-seed empirical mean within a few
// standard errors.
func TestWeightedMeanNearOne(t *testing.T) {
	target, prop := weightedHandPair(25, 6)
	ws, err := NewWeightedBatchSampler(target, prop)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewChaCha8([32]byte{7, 7}))
	var sum, sum2 float64
	n := 0
	for b := 0; b < 500; b++ {
		ws.Sample(rng)
		for s := 0; s < BatchShots; s++ {
			w := ws.Weight(s)
			if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				t.Fatalf("degenerate weight %g", w)
			}
			sum += w
			sum2 += w * w
			n++
		}
	}
	mean := sum / float64(n)
	se := math.Sqrt((sum2/float64(n) - mean*mean) / float64(n))
	if math.Abs(mean-1) > 5*se+1e-3 {
		t.Fatalf("mean weight %g ± %g over %d shots, want 1", mean, se, n)
	}
}

// Structure-derived models sharing footprint backing must pass alignment
// checks, and weights over a real circuit model must stay finite.
func TestWeightedRealModelBoost(t *testing.T) {
	e, _ := buildModel(t, extract.Baseline, 3)
	st, err := BuildStructure(e)
	if err != nil {
		t.Fatal(err)
	}
	probs := e.Circ.OpProbs(nil)
	target, err := st.Reweight(probs)
	if err != nil {
		t.Fatal(err)
	}
	boosted := make([]float64, len(probs))
	for i, p := range probs {
		q := p
		if p > 0 && p < 0.5 {
			q = math.Min(4*p, 0.5)
		}
		boosted[i] = q
	}
	prop, err := st.Reweight(boosted)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWeightedBatchSampler(target, prop)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewChaCha8([32]byte{11}))
	for b := 0; b < 20; b++ {
		ws.Sample(rng)
		for s := 0; s < BatchShots; s++ {
			if lw := ws.LogWeight(s); math.IsNaN(lw) || math.IsInf(lw, 0) {
				t.Fatalf("batch %d shot %d: degenerate log weight %g", b, s, lw)
			}
		}
	}
}

// Misaligned target/proposal pairs must be rejected with an error, not
// silently produce biased weights.
func TestWeightedValidation(t *testing.T) {
	target, prop := weightedHandPair(5, 2)
	cases := []struct {
		name string
		prop *Model
	}{
		{"nil proposal", nil},
		{"detector mismatch", &Model{NumDets: 4, Mechs: prop.Mechs}},
		{"mechanism count", &Model{NumDets: 5, Mechs: prop.Mechs[:4]}},
		{"footprint", func() *Model {
			m := &Model{NumDets: 5, Mechs: append([]Mechanism(nil), prop.Mechs...)}
			m.Mechs[2].Dets = []int32{3}
			return m
		}()},
		{"obs flag", func() *Model {
			m := &Model{NumDets: 5, Mechs: append([]Mechanism(nil), prop.Mechs...)}
			m.Mechs[1].Obs = !m.Mechs[1].Obs
			return m
		}()},
		{"zero-support", func() *Model {
			m := &Model{NumDets: 5, Mechs: append([]Mechanism(nil), prop.Mechs...)}
			m.Mechs[0].P = 0
			return m
		}()},
		{"always-fire", func() *Model {
			m := &Model{NumDets: 5, Mechs: append([]Mechanism(nil), prop.Mechs...)}
			m.Mechs[0].P = 1
			return m
		}()},
	}
	for _, tc := range cases {
		if _, err := NewWeightedBatchSampler(target, tc.prop); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
	if _, err := NewWeightedBatchSampler(nil, prop); err == nil {
		t.Error("nil target: expected error, got nil")
	}
	if _, err := NewWeightedBatchSampler(target, prop); err != nil {
		t.Errorf("aligned pair rejected: %v", err)
	}
}

// Resetting the embedded BatchSampler drops back to plain unweighted mode:
// a recycled sampler must not leak stale weight tables.
func TestWeightedResetToPlain(t *testing.T) {
	target, prop := weightedHandPair(9, 3)
	ws, err := NewWeightedBatchSampler(target, prop)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewChaCha8([32]byte{5}))
	ws.Sample(rng)
	ws.BatchSampler.Reset(target)
	if ws.wlam != nil || ws.wbase != 0 {
		t.Fatal("plain Reset left weighted hooks installed")
	}
	ws.Sample(rng) // must not touch logw
	if err := ws.Reset(target, prop); err != nil {
		t.Fatal(err)
	}
	ws.Sample(rng)
	if ws.wlam == nil {
		t.Fatal("weighted Reset did not reinstall weight tables")
	}
}
