// Package dem builds detector error models: it enumerates every elementary
// Pauli fault of an experiment's circuit, propagates each one
// deterministically through the Pauli-frame simulator, and records which
// detectors and whether the logical observable flip. Faults with identical
// footprints merge into a single mechanism with XOR-combined probability.
// This mirrors how Stim derives matchable models from circuits.
//
// The model is split into two halves, the way Stim separates fault
// structure from fault probability:
//
//   - Structure (BuildStructure) is the expensive, probability-free half:
//     merged mechanism footprints in flat CSR form, plus, per mechanism,
//     the list of elementary fault branches (global op index + branch
//     divisor) that feed it. It depends only on the circuit's gates and
//     moments, so one Structure serves every noise scale of a sweep. The
//     decoding-graph topology (detector decomposition, edge set, boundary
//     assignment, adjacency) is hoisted here too: Structure.Graph builds a
//     GraphStructure once, and GraphStructure.Weight recomputes only the
//     edge weights per noise scale.
//   - Reweight (and the allocation-reusing ReweightInto) is the cheap
//     half: given per-op error probabilities it produces a Model —
//     per-mechanism probabilities ready for sampling and decoding-graph
//     extraction — without re-running fault propagation.
//
// Build bundles both for one-shot use.
//
// Entry points:
//
//   - Build / BuildStructure + Structure.Reweight: circuit -> Model
//   - Model.NewSampler: scalar sampling, one shot per call
//   - Model.NewBatchSampler: word-packed sampling, 64 shots per pass with
//     geometric skip-sampling over rare mechanisms (BatchShots)
//   - NewWeightedBatchSampler: importance sampling — draw shots from a
//     boosted proposal Model and get per-shot log likelihood-ratio
//     weights against the target Model; with proposal == target the
//     weights are exactly 1 and the shot stream is bit-identical to the
//     plain BatchSampler's (the Monte-Carlo engine's rare-event mode
//     builds the proposal by Reweighting the shared Structure with
//     boosted per-op probabilities)
//   - Model.DecodingGraph / Structure.Graph + GraphStructure.Weight: the
//     weighted matching graph consumed by internal/decoder
//
// In the paper's pipeline this package sits between the extracted noisy
// circuits (internal/extract) and the decoders scored by the Monte-Carlo
// engine: every Fig. 11 / Fig. 12 cell samples one Model and decodes its
// shots against the corresponding Graph.
package dem
