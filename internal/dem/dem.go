// Package dem builds detector error models: it enumerates every elementary
// Pauli fault of an experiment's circuit, propagates each one
// deterministically through the Pauli-frame simulator, and records which
// detectors and whether the logical observable flip. Faults with identical
// footprints merge into a single mechanism with XOR-combined probability.
// This mirrors how Stim derives matchable models from circuits, and it gives
// two things:
//
//   - a fast Monte-Carlo sampler (flip each mechanism independently, XOR its
//     footprint), statistically identical to gate-level frame sampling; and
//   - the weighted decoding graph consumed by the union-find and
//     minimum-weight-matching decoders, including hook edges and boundary
//     edges, with per-edge logical masks.
package dem

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/extract"
	"repro/internal/pframe"
)

// Mechanism is one independent error source: with probability P it flips
// every detector in Dets and, if Obs, the logical observable.
type Mechanism struct {
	Dets []int32
	Obs  bool
	P    float64
}

// BuildStats reports diagnostics from model construction.
type BuildStats struct {
	Faults          int // elementary faults enumerated
	Harmless        int // faults with no detector or observable effect
	Mechanisms      int // merged mechanisms
	MaxFootprint    int // largest detector footprint of any fault
	UndetectableObs int // faults flipping the observable but no detector (must be 0)
	MultiDetFaults  int // faults with footprints larger than 2 (need decomposition)
}

// Model is the detector error model of one experiment.
type Model struct {
	NumDets int
	Mechs   []Mechanism
	Stats   BuildStats
}

// Build constructs the model for experiment e.
func Build(e *extract.Experiment) (*Model, error) {
	ndet := len(e.Detectors)
	// Invert detector definitions: measurement -> detectors containing it.
	measDets := make([][]int32, e.Circ.NumMeas)
	for di, det := range e.Detectors {
		for _, m := range det.Meas {
			measDets[m] = append(measDets[m], int32(di))
		}
	}
	measObs := make([]bool, e.Circ.NumMeas)
	for _, m := range e.Observable {
		measObs[m] = !measObs[m]
	}

	prop := pframe.NewPropagator(e.Circ)
	faults := pframe.AllFaults(e.Circ)

	classes := make(map[string]*Mechanism)
	var order []string // deterministic output order

	detParity := make(map[int32]bool, 8)
	model := &Model{NumDets: ndet}
	model.Stats.Faults = len(faults)

	for _, wf := range faults {
		flips := prop.Propagate(wf.Fault)
		clear(detParity)
		obs := false
		for _, m := range flips {
			for _, d := range measDets[m] {
				detParity[d] = !detParity[d]
			}
			if measObs[m] {
				obs = !obs
			}
		}
		dets := make([]int32, 0, len(detParity))
		for d, v := range detParity {
			if v {
				dets = append(dets, d)
			}
		}
		if len(dets) == 0 {
			if obs {
				model.Stats.UndetectableObs++
			} else {
				model.Stats.Harmless++
			}
			if !obs {
				continue
			}
		}
		sort.Slice(dets, func(i, j int) bool { return dets[i] < dets[j] })
		if len(dets) > model.Stats.MaxFootprint {
			model.Stats.MaxFootprint = len(dets)
		}
		if len(dets) > 2 {
			model.Stats.MultiDetFaults++
		}
		key := footprintKey(dets, obs)
		if mech, ok := classes[key]; ok {
			mech.P = xorProb(mech.P, wf.P)
		} else {
			classes[key] = &Mechanism{Dets: dets, Obs: obs, P: wf.P}
			order = append(order, key)
		}
	}
	if model.Stats.UndetectableObs > 0 {
		return nil, fmt.Errorf("dem: %d faults flip the observable without any detector", model.Stats.UndetectableObs)
	}
	for _, k := range order {
		model.Mechs = append(model.Mechs, *classes[k])
	}
	model.Stats.Mechanisms = len(model.Mechs)
	return model, nil
}

func footprintKey(dets []int32, obs bool) string {
	buf := make([]byte, 0, 4*len(dets)+1)
	for _, d := range dets {
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	if obs {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return string(buf)
}

// xorProb combines two independent flip sources into the probability that an
// odd number of them fires.
func xorProb(a, b float64) float64 { return a*(1-b) + b*(1-a) }

// Sampler draws detector-event samples directly from the model. Not safe for
// concurrent use; create one per goroutine.
type Sampler struct {
	m      *Model
	parity []bool
	events []int
}

// NewSampler returns a sampler over the model.
func (m *Model) NewSampler() *Sampler {
	return &Sampler{m: m, parity: make([]bool, m.NumDets)}
}

// Sample draws one shot: the list of fired detectors (sorted, reused buffer)
// and whether the logical observable flipped.
func (s *Sampler) Sample(rng interface{ Float64() float64 }) (events []int, obs bool) {
	for i := range s.parity {
		s.parity[i] = false
	}
	for i := range s.m.Mechs {
		mech := &s.m.Mechs[i]
		if rng.Float64() >= mech.P {
			continue
		}
		for _, d := range mech.Dets {
			s.parity[d] = !s.parity[d]
		}
		if mech.Obs {
			obs = !obs
		}
	}
	s.events = s.events[:0]
	for d, v := range s.parity {
		if v {
			s.events = append(s.events, d)
		}
	}
	return s.events, obs
}

// ExpectedEventRate returns the mean number of detection events per shot
// (sum of footprint sizes weighted by probability) — a cheap cross-check
// against empirical sampling.
func (m *Model) ExpectedEventRate() float64 {
	t := 0.0
	for i := range m.Mechs {
		// Each mechanism flips each of its detectors with probability P;
		// to first order the expected count adds P per detector touched.
		t += m.Mechs[i].P * float64(len(m.Mechs[i].Dets))
	}
	return t
}

// clampProb keeps probabilities in the open interval for weight computation.
func clampProb(p float64) float64 {
	const lo, hi = 1e-15, 0.5 - 1e-12
	return math.Min(math.Max(p, lo), hi)
}

// WeightOf converts a probability to a matching weight ln((1-p)/p).
func WeightOf(p float64) float64 {
	p = clampProb(p)
	return math.Log((1 - p) / p)
}
