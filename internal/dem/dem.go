package dem

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sync"

	"repro/internal/extract"
	"repro/internal/pframe"
)

// Mechanism is one independent error source: with probability P it flips
// every detector in Dets and, if Obs, the logical observable.
type Mechanism struct {
	Dets []int32
	Obs  bool
	P    float64
}

// BuildStats reports diagnostics from model construction.
type BuildStats struct {
	Faults          int // elementary faults enumerated
	Harmless        int // faults with no detector or observable effect
	Mechanisms      int // merged mechanisms
	MaxFootprint    int // largest detector footprint of any fault
	UndetectableObs int // faults flipping the observable but no detector (must be 0)
	MultiDetFaults  int // faults with footprints larger than 2 (need decomposition)
}

// Model is the detector error model of one experiment at one noise scale.
type Model struct {
	NumDets int
	Mechs   []Mechanism
	Stats   BuildStats

	// st links back to the Structure this model was reweighted from, so
	// DecodingGraph can reuse the hoisted, build-once graph topology. Nil
	// for hand-assembled models, which derive a topology on demand.
	st *Structure
}

// Structure is the immutable, probability-free half of a detector error
// model: the merged mechanism footprints and, per mechanism, the elementary
// fault branches feeding it. Footprints and sources are stored in flat CSR
// form. A Structure is built once per circuit structure and Reweighted for
// every noise scale; it is safe for concurrent use.
type Structure struct {
	NumDets int
	NumOps  int // ops of the source circuit (length of Reweight's input)

	// Footprints: mechanism i flips dets[detOff[i]:detOff[i+1]] and, if
	// obs[i], the logical observable.
	dets   []int32
	detOff []int32
	obs    []bool

	// Sources: mechanism i is fed by fault branches with probability
	// probs[srcOp[k]]/srcDiv[k] for k in [srcOff[i], srcOff[i+1]), in fault
	// enumeration order (so Reweight's XOR-fold reproduces a direct build
	// bit for bit).
	srcOp  []int32
	srcDiv []float64
	srcOff []int32

	Stats BuildStats

	// Hoisted decoding-graph topology (detector decomposition, edge
	// topology, boundary assignment), built on first use and shared by
	// every Model reweighted from this Structure.
	graphOnce sync.Once
	graph     *GraphStructure
	graphErr  error
}

// Graph returns the hoisted decoding-graph topology of this structure,
// building it on the first call. Every noise scale shares the returned
// instance; only edge weights are recomputed per scale (GraphStructure.
// Weight, reached through Model.DecodingGraph). Safe for concurrent use.
func (s *Structure) Graph() (*GraphStructure, error) {
	s.graphOnce.Do(func() {
		s.graph, s.graphErr = buildGraphStructure(s.NumDets, s.NumMechanisms(), s.Footprint)
	})
	return s.graph, s.graphErr
}

// NumMechanisms returns the merged mechanism count.
func (s *Structure) NumMechanisms() int { return len(s.detOff) - 1 }

// Footprint returns mechanism i's detector footprint (shared backing; do
// not modify) and observable mask.
func (s *Structure) Footprint(i int) ([]int32, bool) {
	return s.dets[s.detOff[i]:s.detOff[i+1]], s.obs[i]
}

// fnv1aFootprint hashes a sorted footprint plus observable mask.
func fnv1aFootprint(dets []int32, obs bool) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, d := range dets {
		u := uint32(d)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(u >> s & 0xff)
			h *= prime64
		}
	}
	if obs {
		h ^= 1
	}
	h *= prime64
	return h
}

// BuildStructure enumerates and propagates every elementary fault of the
// experiment's circuit (ops with a positive error probability) and merges
// identical footprints into mechanisms, recording per-mechanism fault
// sources instead of probabilities. Faults of ops annotated with zero
// probability are not represented; build experiments with every relevant
// noise class positive (hardware.Default is) if they are to be reweighted.
func BuildStructure(e *extract.Experiment) (*Structure, error) {
	ndet := len(e.Detectors)
	// Invert detector definitions: measurement -> detectors containing it.
	measDets := make([][]int32, e.Circ.NumMeas)
	for di, det := range e.Detectors {
		for _, m := range det.Meas {
			measDets[m] = append(measDets[m], int32(di))
		}
	}
	measObs := make([]bool, e.Circ.NumMeas)
	for _, m := range e.Observable {
		measObs[m] = !measObs[m]
	}

	prop := pframe.NewPropagator(e.Circ)
	s := &Structure{NumDets: ndet, NumOps: e.Circ.NumOps()}
	s.detOff = append(s.detOff, 0)

	buckets := make(map[uint64][]int32) // footprint hash -> mechanism indices
	var srcs [][]int32                  // per-mechanism source indices into srcOp/srcDiv order
	var srcOps []int32                  // source k: global op
	var srcDivs []float64               // source k: branch divisor

	detParity := make(map[int32]bool, 8)
	var dets []int32
	var faults []pframe.WeightedFault

	gid := int32(-1)
	for mi := range e.Circ.Moments {
		m := &e.Circ.Moments[mi]
		for oi := range m.Ops {
			gid++
			op := &m.Ops[oi]
			faults = pframe.FaultsOf(mi, oi, op, faults[:0])
			if len(faults) == 0 {
				continue
			}
			div := float64(pframe.BranchCount(op.Kind))
			for fi := range faults {
				s.Stats.Faults++
				flips := prop.Propagate(faults[fi].Fault)
				clear(detParity)
				obs := false
				for _, meas := range flips {
					for _, d := range measDets[meas] {
						detParity[d] = !detParity[d]
					}
					if measObs[meas] {
						obs = !obs
					}
				}
				dets = dets[:0]
				for d, v := range detParity {
					if v {
						dets = append(dets, d)
					}
				}
				if len(dets) == 0 {
					if obs {
						s.Stats.UndetectableObs++
					} else {
						s.Stats.Harmless++
						continue
					}
				}
				slices.Sort(dets)
				if len(dets) > s.Stats.MaxFootprint {
					s.Stats.MaxFootprint = len(dets)
				}
				if len(dets) > 2 {
					s.Stats.MultiDetFaults++
				}

				// Find or create the mechanism with this footprint.
				h := fnv1aFootprint(dets, obs)
				mech := int32(-1)
				for _, cand := range buckets[h] {
					if s.obs[cand] == obs && slices.Equal(s.dets[s.detOff[cand]:s.detOff[cand+1]], dets) {
						mech = cand
						break
					}
				}
				if mech < 0 {
					mech = int32(len(s.obs))
					s.dets = append(s.dets, dets...)
					s.detOff = append(s.detOff, int32(len(s.dets)))
					s.obs = append(s.obs, obs)
					srcs = append(srcs, nil)
					buckets[h] = append(buckets[h], mech)
				}
				srcs[mech] = append(srcs[mech], int32(len(srcOps)))
				srcOps = append(srcOps, gid)
				srcDivs = append(srcDivs, div)
			}
		}
	}
	if s.Stats.UndetectableObs > 0 {
		return nil, fmt.Errorf("dem: %d faults flip the observable without any detector", s.Stats.UndetectableObs)
	}

	// Flatten sources to CSR in mechanism order.
	s.srcOff = make([]int32, 1, len(srcs)+1)
	s.srcOp = make([]int32, 0, len(srcOps))
	s.srcDiv = make([]float64, 0, len(srcDivs))
	for _, list := range srcs {
		for _, k := range list {
			s.srcOp = append(s.srcOp, srcOps[k])
			s.srcDiv = append(s.srcDiv, srcDivs[k])
		}
		s.srcOff = append(s.srcOff, int32(len(s.srcOp)))
	}
	s.Stats.Mechanisms = s.NumMechanisms()
	return s, nil
}

// Reweight materializes the Model for one per-op probability assignment
// (global op order, e.g. circuit.OpProbs or extract.NoiseProbs). Mechanism
// footprints share the Structure's backing arrays; probabilities are
// XOR-folded over each mechanism's sources in fault enumeration order, so
// the result is bit-for-bit identical to a direct Build at the same
// annotation.
func (s *Structure) Reweight(probs []float64) (*Model, error) {
	return s.ReweightInto(probs, nil)
}

// ReweightInto is Reweight recycling model m (from an earlier reweight of
// any structure) instead of allocating: a sweep worker walking the noise
// scales of a row reuses one Model's backing across every cell. m may be
// nil or must be exclusively owned by the caller; the returned model is m
// when shapes allow reuse.
func (s *Structure) ReweightInto(probs []float64, m *Model) (*Model, error) {
	if len(probs) != s.NumOps {
		return nil, fmt.Errorf("dem: Reweight got %d op probabilities, want %d", len(probs), s.NumOps)
	}
	n := s.NumMechanisms()
	if m == nil {
		m = &Model{}
	}
	m.NumDets, m.Stats, m.st = s.NumDets, s.Stats, s
	if cap(m.Mechs) >= n {
		m.Mechs = m.Mechs[:n]
	} else {
		m.Mechs = make([]Mechanism, n)
	}
	for i := 0; i < n; i++ {
		p := 0.0
		for k := s.srcOff[i]; k < s.srcOff[i+1]; k++ {
			p = xorProb(p, probs[s.srcOp[k]]/s.srcDiv[k])
		}
		m.Mechs[i] = Mechanism{
			Dets: s.dets[s.detOff[i]:s.detOff[i+1]],
			Obs:  s.obs[i],
			P:    p,
		}
	}
	return m, nil
}

// Build constructs the model for experiment e at its current noise
// annotation: BuildStructure + Reweight in one step.
func Build(e *extract.Experiment) (*Model, error) {
	s, err := BuildStructure(e)
	if err != nil {
		return nil, err
	}
	return s.Reweight(e.Circ.OpProbs(make([]float64, 0, e.Circ.NumOps())))
}

// xorProb combines two independent flip sources into the probability that an
// odd number of them fires.
func xorProb(a, b float64) float64 { return a*(1-b) + b*(1-a) }

// Sampler draws detector-event samples directly from the model, one shot
// per call. Not safe for concurrent use; create one per goroutine. For bulk
// sampling prefer BatchSampler.
type Sampler struct {
	m      *Model
	parity []bool
	events []int
}

// NewSampler returns a sampler over the model.
func (m *Model) NewSampler() *Sampler {
	return &Sampler{m: m, parity: make([]bool, m.NumDets)}
}

// Sample draws one shot: the list of fired detectors (sorted, reused buffer)
// and whether the logical observable flipped.
func (s *Sampler) Sample(rng *rand.Rand) (events []int, obs bool) {
	for i := range s.parity {
		s.parity[i] = false
	}
	for i := range s.m.Mechs {
		mech := &s.m.Mechs[i]
		if rng.Float64() >= mech.P {
			continue
		}
		for _, d := range mech.Dets {
			s.parity[d] = !s.parity[d]
		}
		if mech.Obs {
			obs = !obs
		}
	}
	s.events = s.events[:0]
	for d, v := range s.parity {
		if v {
			s.events = append(s.events, d)
		}
	}
	return s.events, obs
}

// ExpectedEventRate returns the mean number of detection events per shot
// (sum of footprint sizes weighted by probability) — a cheap cross-check
// against empirical sampling.
func (m *Model) ExpectedEventRate() float64 {
	t := 0.0
	for i := range m.Mechs {
		// Each mechanism flips each of its detectors with probability P;
		// to first order the expected count adds P per detector touched.
		t += m.Mechs[i].P * float64(len(m.Mechs[i].Dets))
	}
	return t
}

// clampProb keeps probabilities in the open interval for weight computation.
func clampProb(p float64) float64 {
	const lo, hi = 1e-15, 0.5 - 1e-12
	return math.Min(math.Max(p, lo), hi)
}

// WeightOf converts a probability to a matching weight ln((1-p)/p).
func WeightOf(p float64) float64 {
	p = clampProb(p)
	return math.Log((1 - p) / p)
}
