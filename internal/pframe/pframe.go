// Package pframe executes circuits from internal/circuit under the Pauli
// error frame model. It has two modes:
//
//   - Sampler: Monte-Carlo sampling of the circuit's noise channels,
//     producing the flip bit of every measurement record relative to the
//     noiseless reference execution. This is the reference sampler used to
//     validate the much faster detector-error-model sampler in internal/dem.
//
//   - PropagateFault: deterministic propagation of one elementary fault,
//     used by the detector-error-model builder to discover each fault's
//     detector footprint.
//
// Because every gate is Clifford and every error Pauli, the simulator only
// tracks the accumulated Pauli frame (error relative to the ideal state), an
// O(1)-per-gate update. Measurement outcomes themselves are never needed:
// detectors and logical observables are XOR combinations of measurement
// records in which the noiseless contribution cancels, so the flip bits
// carry all the information (this cancellation is verified against the exact
// tableau simulator in the extract tests).
package pframe

import (
	"math/rand/v2"

	"repro/internal/circuit"
	"repro/internal/pauli"
)

// applyOp advances the frame through the ideal action of op, returning the
// measurement flip contribution for OpMeasureZ (frame X component).
func applyOp(frame []pauli.Pauli, op *circuit.Op) bool {
	switch op.Kind {
	case circuit.OpReset:
		frame[op.A] = pauli.I
	case circuit.OpH:
		p := frame[op.A]
		frame[op.A] = p>>1&1 | p&1<<1
	case circuit.OpCNOT:
		pc, pt := frame[op.A], frame[op.B]
		if pc.XBit() {
			pt ^= pauli.X
		}
		if frame[op.B].ZBit() {
			pc ^= pauli.Z
		}
		frame[op.A], frame[op.B] = pc, pt
	case circuit.OpLoad:
		// Mode B's content moves to transmon A; whatever junk was on the
		// transmon is exchanged into the mode and discarded (the transmon
		// is re-initialized as part of the transfer).
		frame[op.A] = frame[op.B]
		frame[op.B] = pauli.I
	case circuit.OpStore:
		frame[op.B] = frame[op.A]
		frame[op.A] = pauli.I
	case circuit.OpMeasureZ:
		return frame[op.A].XBit()
	case circuit.OpIdle:
		// No ideal action.
	}
	return false
}

// Sampler draws noisy executions of a fixed circuit.
type Sampler struct {
	c     *circuit.Circuit
	frame []pauli.Pauli
	flips []bool
}

// NewSampler prepares a sampler for c. The sampler reuses internal buffers;
// it is not safe for concurrent use (create one per goroutine).
func NewSampler(c *circuit.Circuit) *Sampler {
	return &Sampler{
		c:     c,
		frame: make([]pauli.Pauli, c.NumSlots),
		flips: make([]bool, c.NumMeas),
	}
}

// Sample runs one noisy execution and returns the measurement flip bits.
// The returned slice is reused by the next call.
func (s *Sampler) Sample(rng *rand.Rand) []bool {
	for i := range s.frame {
		s.frame[i] = pauli.I
	}
	for i := range s.flips {
		s.flips[i] = false
	}
	for mi := range s.c.Moments {
		m := &s.c.Moments[mi]
		for oi := range m.Ops {
			op := &m.Ops[oi]
			flip := applyOp(s.frame, op)
			if op.Kind == circuit.OpMeasureZ {
				if op.P > 0 && rng.Float64() < op.P {
					flip = !flip
				}
				s.flips[op.MeasIdx] = flip
				continue
			}
			if op.P <= 0 || rng.Float64() >= op.P {
				continue
			}
			switch op.Kind {
			case circuit.OpReset:
				frameInject(s.frame, op.A, pauli.X)
			case circuit.OpH, circuit.OpIdle:
				frameInject(s.frame, op.A, pauli.All[rng.IntN(3)])
			case circuit.OpCNOT, circuit.OpLoad, circuit.OpStore:
				r := 1 + rng.IntN(15)
				frameInject(s.frame, op.A, pauli.Pauli(r>>2))
				frameInject(s.frame, op.B, pauli.Pauli(r&3))
			}
		}
	}
	return s.flips
}

func frameInject(frame []pauli.Pauli, q int, p pauli.Pauli) {
	frame[q] ^= p
}

// Fault identifies one elementary Pauli fault: the Paulis PA and PB are
// injected right after op (Moment, Op) acts, or, for measurement ops,
// FlipMeas flips the record.
type Fault struct {
	Moment, Op int
	PA, PB     pauli.Pauli
	FlipMeas   bool
}

// Propagator propagates single faults through a fixed circuit and reports
// which measurement records flip. It reuses buffers across calls and applies
// a support-tracking optimization: after the fault is injected, only ops
// whose slots intersect the frame support do real work.
type Propagator struct {
	c     *circuit.Circuit
	frame []pauli.Pauli
	dirty []int // slots with nonzero frame
	flips []int // measurement indices that flipped
}

// NewPropagator prepares a propagator for c.
func NewPropagator(c *circuit.Circuit) *Propagator {
	return &Propagator{
		c:     c,
		frame: make([]pauli.Pauli, c.NumSlots),
	}
}

// Propagate runs the circuit noiselessly with the single fault f injected
// and returns the indices of flipped measurement records (sorted ascending;
// the slice is reused by the next call).
func (p *Propagator) Propagate(f Fault) []int {
	for _, q := range p.dirty {
		p.frame[q] = pauli.I
	}
	p.dirty = p.dirty[:0]
	p.flips = p.flips[:0]

	inject := func(q int, pl pauli.Pauli) {
		if pl == pauli.I {
			return
		}
		if p.frame[q] == pauli.I {
			p.dirty = append(p.dirty, q)
		}
		p.frame[q] ^= pl
	}

	for mi := f.Moment; mi < len(p.c.Moments); mi++ {
		m := &p.c.Moments[mi]
		oi := 0
		if mi == f.Moment {
			// Ops before the faulty one cannot be affected (the frame is
			// identity until the fault is injected).
			oi = f.Op
			op := &m.Ops[f.Op]
			if f.FlipMeas {
				if op.Kind != circuit.OpMeasureZ {
					panic("pframe: FlipMeas fault on non-measurement op")
				}
				p.flips = append(p.flips, op.MeasIdx)
			}
			inject(op.A, f.PA)
			if op.Kind.TwoQubit() {
				inject(op.B, f.PB)
			} else if f.PB != pauli.I {
				panic("pframe: PB fault on single-qubit op")
			}
			oi = f.Op + 1
		}
		if len(p.dirty) == 0 && len(p.flips) > 0 {
			// Frame returned to identity; nothing further can flip.
			break
		}
		for ; oi < len(m.Ops); oi++ {
			op := &m.Ops[oi]
			fa := p.frame[op.A]
			if op.Kind.TwoQubit() {
				if fa == pauli.I && p.frame[op.B] == pauli.I {
					continue
				}
				p.applyTracked(op)
				continue
			}
			if fa == pauli.I {
				continue
			}
			if op.Kind == circuit.OpMeasureZ {
				if fa.XBit() {
					p.flips = append(p.flips, op.MeasIdx)
				}
				continue
			}
			p.applyTracked(op)
		}
	}
	return p.flips
}

// applyTracked applies op's ideal action keeping the dirty list in sync.
func (p *Propagator) applyTracked(op *circuit.Op) {
	beforeA := p.frame[op.A]
	var beforeB pauli.Pauli
	if op.Kind.TwoQubit() {
		beforeB = p.frame[op.B]
	}
	applyOp(p.frame, op)
	if beforeA == pauli.I && p.frame[op.A] != pauli.I {
		p.dirty = append(p.dirty, op.A)
	}
	if op.Kind.TwoQubit() && beforeB == pauli.I && p.frame[op.B] != pauli.I {
		p.dirty = append(p.dirty, op.B)
	}
	// Slots that became identity stay on the dirty list; that is harmless
	// (they are re-cleared at the start of the next Propagate call).
}

// BranchCount returns the number of equally-likely elementary fault
// branches of an op's error channel: 1 for reset (X flip) and measurement
// (record flip), 3 for one-qubit depolarizing, 15 for two-qubit. Each
// branch of FaultsOf carries probability op.P / BranchCount(op.Kind); any
// consumer re-deriving branch probabilities (dem.Structure.Reweight) must
// use this same constant.
func BranchCount(k circuit.OpKind) int {
	switch k {
	case circuit.OpReset, circuit.OpMeasureZ:
		return 1
	case circuit.OpCNOT, circuit.OpLoad, circuit.OpStore:
		return 15
	default: // OpH, OpIdle
		return 3
	}
}

// FaultsOf enumerates the elementary faults of op at position (mi, oi),
// appending to dst. Each fault's probability is op.P / BranchCount(op.Kind);
// reset errors are a single X flip and measurement errors a single record
// flip, each with probability op.P.
func FaultsOf(mi, oi int, op *circuit.Op, dst []WeightedFault) []WeightedFault {
	if op.P <= 0 {
		return dst
	}
	p := op.P / float64(BranchCount(op.Kind))
	switch op.Kind {
	case circuit.OpReset:
		dst = append(dst, WeightedFault{Fault{mi, oi, pauli.X, pauli.I, false}, p})
	case circuit.OpMeasureZ:
		dst = append(dst, WeightedFault{Fault{mi, oi, pauli.I, pauli.I, true}, p})
	case circuit.OpH, circuit.OpIdle:
		for _, pl := range pauli.All {
			dst = append(dst, WeightedFault{Fault{mi, oi, pl, pauli.I, false}, p})
		}
	case circuit.OpCNOT, circuit.OpLoad, circuit.OpStore:
		for r := 1; r < 16; r++ {
			dst = append(dst, WeightedFault{
				Fault{mi, oi, pauli.Pauli(r >> 2), pauli.Pauli(r & 3), false},
				p,
			})
		}
	}
	return dst
}

// WeightedFault pairs an elementary fault with its probability.
type WeightedFault struct {
	Fault Fault
	P     float64
}

// AllFaults enumerates every elementary fault of the circuit.
func AllFaults(c *circuit.Circuit) []WeightedFault {
	var out []WeightedFault
	for mi := range c.Moments {
		for oi := range c.Moments[mi].Ops {
			out = FaultsOf(mi, oi, &c.Moments[mi].Ops[oi], out)
		}
	}
	return out
}
