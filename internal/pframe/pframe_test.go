package pframe

import (
	"math"
	mrand "math/rand"
	"math/rand/v2"
	"testing"

	"repro/internal/circuit"
	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/pauli"
	"repro/internal/stab"
)

// quietParams returns hardware parameters with all error sources disabled
// (T1 so large that idle error underflows to exactly zero).
func quietParams() hardware.Params {
	p := hardware.Default()
	p.PGate1, p.PGate2, p.PGateTM, p.PLoadStore, p.PMeasure, p.PReset = 0, 0, 0, 0, 0, 0
	p.T1Transmon, p.T1Cavity = 1e18, 1e18
	return p
}

func buildExp(t *testing.T, scheme extract.Scheme, d int, params hardware.Params) *extract.Experiment {
	t.Helper()
	e, err := extract.Build(extract.Config{Scheme: scheme, Distance: d, Basis: extract.BasisZ, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNoiselessSampleAllZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 0))
	for _, scheme := range extract.Schemes {
		e := buildExp(t, scheme, 3, quietParams())
		s := NewSampler(e.Circ)
		flips := s.Sample(rng)
		for i, f := range flips {
			if f {
				t.Fatalf("%v: measurement %d flipped in noiseless run", scheme, i)
			}
		}
	}
}

// tableauRunWithFault replays the circuit on the exact simulator, injecting
// the given fault, and returns the outcomes. rng must be seeded identically
// across runs so that random-outcome draws align; injected Pauli errors
// never change which outcomes are random, only their signs.
func tableauRunWithFault(e *extract.Experiment, f *Fault, seed int64) []byte {
	rng := mrand.New(mrand.NewSource(seed)) // stab's measurement draws use math/rand

	tab := stab.New(e.Circ.NumSlots)
	out := make([]byte, e.Circ.NumMeas)
	for mi := range e.Circ.Moments {
		for oi := range e.Circ.Moments[mi].Ops {
			op := &e.Circ.Moments[mi].Ops[oi]
			flipThis := false
			switch op.Kind {
			case circuit.OpReset:
				tab.Reset(op.A, rng)
			case circuit.OpH:
				tab.H(op.A)
			case circuit.OpCNOT:
				tab.CNOT(op.A, op.B)
			case circuit.OpLoad:
				tab.Reset(op.A, rng)
				tab.SWAP(op.A, op.B)
			case circuit.OpStore:
				tab.Reset(op.B, rng)
				tab.SWAP(op.A, op.B)
			case circuit.OpMeasureZ:
				o, _ := tab.MeasureZ(op.A, rng)
				if f != nil && f.Moment == mi && f.Op == oi && f.FlipMeas {
					flipThis = true
				}
				if flipThis {
					o ^= 1
				}
				out[op.MeasIdx] = o
			}
			if f != nil && f.Moment == mi && f.Op == oi && !f.FlipMeas {
				tab.ApplyPauli(op.A, f.PA)
				if op.Kind.TwoQubit() {
					tab.ApplyPauli(op.B, f.PB)
				}
			}
		}
	}
	return out
}

// Single-fault propagation must agree with the exact simulator for every
// kind of fault in the most intricate schedule (Compact, with loads, stores
// and transmon-mode gates).
//
// Individual measurement flips are not well-defined observables when an
// outcome is intrinsically random (the error only re-labels equally likely
// branches), so the comparison is made on the quantities the decoder
// actually consumes: detector parities and the logical observable, both of
// which are deterministic in any single-fault run. Quiescence guarantees
// their clean values are 0, so the dirty run's parities must equal the
// propagator's predicted flips exactly.
func TestPropagateMatchesTableau(t *testing.T) {
	e := buildExp(t, extract.CompactAllAtOnce, 3, hardware.Default())
	faults := AllFaults(e.Circ)
	if len(faults) == 0 {
		t.Fatal("no faults enumerated")
	}
	prop := NewPropagator(e.Circ)
	rng := rand.New(rand.NewPCG(21, 0))

	parity := func(meas []int, flipped map[int]bool) bool {
		v := false
		for _, m := range meas {
			if flipped[m] {
				v = !v
			}
		}
		return v
	}

	for trial := 0; trial < 250; trial++ {
		wf := faults[rng.IntN(len(faults))]
		out := tableauRunWithFault(e, &wf.Fault, int64(1000+trial))
		outSet := map[int]bool{}
		for m, v := range out {
			if v == 1 {
				outSet[m] = true
			}
		}
		got := prop.Propagate(wf.Fault)
		gotSet := map[int]bool{}
		for _, m := range got {
			gotSet[m] = true
		}
		for di, det := range e.Detectors {
			// Dirty detector value (clean value is 0 by quiescence).
			want := parity(det.Meas, outSet)
			if gotPar := parity(det.Meas, gotSet); gotPar != want {
				t.Fatalf("fault %+v: detector %d predicted %v, tableau says %v", wf.Fault, di, gotPar, want)
			}
		}
		if gotObs, wantObs := parity(e.Observable, gotSet), parity(e.Observable, outSet); gotObs != wantObs {
			t.Fatalf("fault %+v: observable predicted %v, tableau says %v", wf.Fault, gotObs, wantObs)
		}
	}
}

// With only measurement noise, detector fire rates have closed forms:
// a 1-record detector fires with probability p, a 2-record detector with
// 2p(1-p). The perfect final readout keeps closure detectors at p.
func TestSamplerMeasurementErrorStatistics(t *testing.T) {
	p := quietParams()
	p.PMeasure = 0.25
	e := buildExp(t, extract.Baseline, 3, p)
	s := NewSampler(e.Circ)
	rng := rand.New(rand.NewPCG(99, 0))

	const trials = 20000
	fires := make([]int, len(e.Detectors))
	for n := 0; n < trials; n++ {
		flips := s.Sample(rng)
		for di, det := range e.Detectors {
			v := false
			for _, m := range det.Meas {
				v = v != flips[m]
			}
			if v {
				fires[di]++
			}
		}
	}
	for di, det := range e.Detectors {
		rate := float64(fires[di]) / trials
		var want float64
		records := 0
		for range det.Meas {
			records++
		}
		// Closure detectors include perfect (P=0) data readouts, so only
		// the single syndrome record can flip.
		switch {
		case det.Round == 1 || det.Round == e.Config.Distance+1:
			want = p.PMeasure
		default:
			want = 2 * p.PMeasure * (1 - p.PMeasure)
		}
		if math.Abs(rate-want) > 0.02 {
			t.Errorf("detector %d (round %d, %d records): rate %.3f, want %.3f", di, det.Round, records, rate, want)
		}
	}
}

// Sampler and AllFaults agree on the set of noisy operations: a circuit
// sampled with every probability forced to 1 must flip something on every
// sample (smoke check for channels being wired).
func TestAllFaultsEnumerationShape(t *testing.T) {
	e := buildExp(t, extract.NaturalInterleaved, 3, hardware.Default())
	faults := AllFaults(e.Circ)
	kinds := map[circuit.OpKind]int{}
	for mi := range e.Circ.Moments {
		for _, op := range e.Circ.Moments[mi].Ops {
			if op.P > 0 {
				kinds[op.Kind]++
			}
		}
	}
	want := kinds[circuit.OpReset] + kinds[circuit.OpMeasureZ] +
		3*(kinds[circuit.OpH]+kinds[circuit.OpIdle]) +
		15*(kinds[circuit.OpCNOT]+kinds[circuit.OpLoad]+kinds[circuit.OpStore])
	if len(faults) != want {
		t.Errorf("%d faults enumerated, want %d", len(faults), want)
	}
	for _, wf := range faults {
		if wf.P <= 0 || wf.P > 1 {
			t.Fatalf("fault with probability %g", wf.P)
		}
	}
}

// Propagating the same fault twice must be idempotent (buffer reuse safety).
func TestPropagatorBufferReuse(t *testing.T) {
	e := buildExp(t, extract.Baseline, 3, hardware.Default())
	prop := NewPropagator(e.Circ)
	faults := AllFaults(e.Circ)
	f := faults[len(faults)/2].Fault
	first := append([]int(nil), prop.Propagate(f)...)
	// Interleave with a different fault.
	prop.Propagate(faults[0].Fault)
	second := append([]int(nil), prop.Propagate(f)...)
	if len(first) != len(second) {
		t.Fatalf("flip count changed across calls: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("flips changed across calls: %v vs %v", first, second)
		}
	}
}

// Frame-level gate identities hold inside the sampler's applyOp as well.
func TestApplyOpLoadStoreSemantics(t *testing.T) {
	frame := []pauli.Pauli{pauli.I, pauli.Y}
	load := circuit.Op{Kind: circuit.OpLoad, A: 0, B: 1}
	applyOp(frame, &load)
	if frame[0] != pauli.Y || frame[1] != pauli.I {
		t.Errorf("load: frame = %v", frame)
	}
	store := circuit.Op{Kind: circuit.OpStore, A: 0, B: 1}
	applyOp(frame, &store)
	if frame[0] != pauli.I || frame[1] != pauli.Y {
		t.Errorf("store: frame = %v", frame)
	}
}
