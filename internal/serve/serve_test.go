package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// rowBody is a small but real Fig. 11 row: the baseline scheme at d=3
// across three physical rates. Fixed seed, so repeat submissions must
// return bit-identical cells.
const rowBody = `{"scheme":"baseline","distances":[3],"rates":[0.004,0.008,0.016],"trials":300,"seed":7}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSweep(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream consumes one NDJSON response: the cell lines and the trailing
// JobStatus line.
func readStream(t *testing.T, resp *http.Response) ([]CellRecord, JobStatus) {
	t.Helper()
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	var status JobStatus
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &status); err != nil {
		t.Fatalf("trailing status line %q: %v", lines[len(lines)-1], err)
	}
	var cells []CellRecord
	for _, ln := range lines[:len(lines)-1] {
		var rec CellRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("cell line %q: %v", ln, err)
		}
		cells = append(cells, rec)
	}
	return cells, status
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func waitForState(t *testing.T, ts *httptest.Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, code := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State == want {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("job %s settled on %q, want %q", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, want)
	return JobStatus{}
}

// stripSource clears the provenance column: the scientific payload must be
// bit-identical whether a cell ran on the engine or came from the ledger
// or a coalesced run, and Source is the one field allowed to differ.
func stripSource(rec CellRecord) CellRecord {
	rec.Source = ""
	return rec
}

// The acceptance path: a Fig. 11 row streams per-cell NDJSON records and
// ends done; an identical second submission is served entirely from the
// result ledger — no engine work at all, not even cache hits — and a
// third no_cache submission bypasses the ledger, re-running on the engine
// via its structure cache. All three return bit-identical cells.
func TestSubmitStreamCompleteAndRepeatHitsCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	first, status := readStream(t, postSweep(t, ts, "/v1/sweeps", rowBody))
	if status.State != StateDone {
		t.Fatalf("first sweep state %q, want %q (error %q)", status.State, StateDone, status.Error)
	}
	if len(first) != 3 || status.Cells != 3 || status.Completed != 3 {
		t.Fatalf("first sweep: %d cells streamed, status %+v", len(first), status)
	}
	for _, rec := range first {
		if rec.Scheme != "baseline" || rec.Distance != 3 || rec.Trials != 300 || rec.Error != "" {
			t.Errorf("bad cell record %+v", rec)
		}
		if rec.Source != "" {
			t.Errorf("cold cell %d has source %q, want engine (empty)", rec.Index, rec.Source)
		}
	}
	if st, code := getStatus(t, ts, status.ID); code != http.StatusOK || st.State != StateDone {
		t.Errorf("GET status: HTTP %d, %+v", code, st)
	}

	before := getStats(t, ts)
	if before.Engine.Builds == 0 {
		t.Fatalf("first sweep reported no structure builds: %+v", before.Engine)
	}
	if before.Ledger.Entries != 3 || before.Ledger.Appends != 3 {
		t.Fatalf("first sweep left ledger %+v, want 3 entries / 3 appends", before.Ledger)
	}

	second, status2 := readStream(t, postSweep(t, ts, "/v1/sweeps", rowBody))
	if status2.State != StateDone {
		t.Fatalf("second sweep state %q (error %q)", status2.State, status2.Error)
	}
	after := getStats(t, ts)
	// Ledger-served: the engine was not consulted at all.
	if after.Engine.Builds != before.Engine.Builds || after.Engine.Hits != before.Engine.Hits {
		t.Errorf("second identical sweep touched the engine: builds %d -> %d, hits %d -> %d",
			before.Engine.Builds, after.Engine.Builds, before.Engine.Hits, after.Engine.Hits)
	}
	if got := after.Ledger.Hits - before.Ledger.Hits; got < int64(len(second)) {
		t.Errorf("second sweep recorded %d ledger hits, want >= %d", got, len(second))
	}
	for i := range first {
		if second[i].Source != "ledger" {
			t.Errorf("repeat cell %d has source %q, want %q", i, second[i].Source, "ledger")
		}
		if first[i] != stripSource(second[i]) {
			t.Errorf("cell %d differs between identical submissions:\n  %+v\n  %+v",
				i, first[i], second[i])
		}
	}

	// no_cache opts out of the ledger: the engine runs again (structure
	// cache hits, no rebuilds) and the bytes still match.
	third, status3 := readStream(t, postSweep(t, ts, "/v1/sweeps",
		`{"no_cache":true,"scheme":"baseline","distances":[3],"rates":[0.004,0.008,0.016],"trials":300,"seed":7}`))
	if status3.State != StateDone {
		t.Fatalf("no_cache sweep state %q (error %q)", status3.State, status3.Error)
	}
	final := getStats(t, ts)
	if final.Engine.Builds != after.Engine.Builds {
		t.Errorf("no_cache sweep rebuilt structures: %d -> %d builds",
			after.Engine.Builds, final.Engine.Builds)
	}
	if got := final.Engine.Hits - after.Engine.Hits; got < int64(len(third)) {
		t.Errorf("no_cache sweep recorded %d engine cache hits, want >= %d", got, len(third))
	}
	for i := range first {
		if third[i].Source != "" {
			t.Errorf("no_cache cell %d has source %q, want engine (empty)", i, third[i].Source)
		}
		if first[i] != third[i] {
			t.Errorf("cell %d differs between engine runs:\n  %+v\n  %+v", i, first[i], third[i])
		}
	}
}

// Concurrent submissions of the same experiment run each cell exactly once
// between them: the first job to plan a cell leads it through the engine's
// once-guarded structure cache and everyone else is fed by the ledger or
// the coalescer — observable as one build and exactly one sweep's worth of
// decoded shots, with all four streams bit-identical.
func TestConcurrentSubmitsShareCachedStructures(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrentJobs: 4})
	var mu sync.Mutex
	streams := make([][]CellRecord, 0, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells, status := readStream(t, postSweep(t, ts, "/v1/sweeps", rowBody))
			if status.State != StateDone {
				t.Errorf("sweep state %q (error %q)", status.State, status.Error)
			}
			mu.Lock()
			streams = append(streams, cells)
			mu.Unlock()
		}()
	}
	wg.Wait()
	st := getStats(t, ts)
	if st.Engine.Builds != 1 {
		t.Errorf("4 concurrent identical sweeps built %d structures, want 1", st.Engine.Builds)
	}
	// Exactly one engine execution per distinct cell: 3 cells x 300 trials.
	if got := srv.decShots.Load(); got != 900 {
		t.Errorf("decoded %d shots across 4 identical sweeps, want 900 (each cell ran once)", got)
	}
	if dedup := st.Ledger.Hits + st.Ledger.CoalesceHits; dedup != 9 {
		t.Errorf("ledger hits (%d) + coalesce hits (%d) = %d, want 9 (12 cells, 3 engine runs)",
			st.Ledger.Hits, st.Ledger.CoalesceHits, dedup)
	}
	for k := 1; k < len(streams); k++ {
		for i := range streams[0] {
			if stripSource(streams[0][i]) != stripSource(streams[k][i]) {
				t.Errorf("stream %d cell %d diverged:\n  %+v\n  %+v",
					k, i, streams[0][i], streams[k][i])
			}
		}
	}
}

// A synchronous submitter owns its job: disconnecting mid-stream cancels
// it. The beforeRun gate holds the job in "running" so the disconnect
// deterministically precedes any cell work.
func TestClientDisconnectCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	release := make(chan struct{})
	defer close(release)
	s.beforeRun = func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	resp := postSweep(t, ts, "/v1/sweeps", rowBody)
	id := resp.Header.Get("X-Sweep-Job")
	if id == "" {
		t.Fatal("no X-Sweep-Job header on streaming response")
	}
	waitForState(t, ts, id, StateRunning)
	resp.Body.Close() // disconnect mid-stream

	st := waitForState(t, ts, id, StateCancelled)
	if st.Completed != 0 {
		t.Errorf("cancelled job completed %d cells, want 0", st.Completed)
	}
}

// Async submission detaches from the request: 202 immediately, status
// polls to done, and /results replays the full stream afterwards. DELETE
// cancels a held job.
func TestAsyncSubmitResultsReplayAndCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp := postSweep(t, ts, "/v1/sweeps?async=1", rowBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: HTTP %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForState(t, ts, st.ID, StateDone)

	rresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	cells, final := readStream(t, rresp)
	if len(cells) != 3 || final.State != StateDone {
		t.Fatalf("replay: %d cells, state %q", len(cells), final.State)
	}

	// DELETE cancels a job held before any cell runs.
	release := make(chan struct{})
	defer close(release)
	s.beforeRun = func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	resp = postSweep(t, ts, "/v1/sweeps?async=1", rowBody)
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForState(t, ts, st.ID, StateRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitForState(t, ts, st.ID, StateCancelled)
}

// hugeShardedBody expands to two cells (d=3 and d=5) whose trial budgets
// are each far more work than any test allows time for; shard_shots
// splits both so cancellation mid-cell exercises the in-flight shard
// abort path, and no cell can complete before the cancel lands (which is
// what makes the Completed == 0 assertions safe).
const hugeShardedBody = `{"scheme":"baseline","distances":[3,5],"rates":[0.008],"trials":5000000,"shard_shots":1024,"jobs":2,"seed":3}`

// DELETE on a job whose sharded cell is in flight aborts the remaining
// shards: the job settles on cancelled well before the cells' full trial
// budget could run, and the skipped cells emit no partial CellRecords.
func TestDeleteAbortsInFlightShardedCell(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postSweep(t, ts, "/v1/sweeps?async=1", hugeShardedBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: HTTP %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForState(t, ts, st.ID, StateRunning)
	time.Sleep(50 * time.Millisecond) // let shards get in flight

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	final := waitForState(t, ts, st.ID, StateCancelled)
	if final.Completed != 0 {
		t.Errorf("cancelled sharded job streamed %d cell records, want 0 (no partial merges)", final.Completed)
	}

	// Replay must end with the cancelled status and no cell lines.
	rresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	cells, replay := readStream(t, rresp)
	if len(cells) != 0 || replay.State != StateCancelled {
		t.Errorf("replay after cancel: %d cells, state %q", len(cells), replay.State)
	}
}

// A synchronous submitter's disconnect does the same through the request
// context: in-flight shards abort and the job records no partial cells.
func TestClientDisconnectAbortsInFlightShardedCell(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := postSweep(t, ts, "/v1/sweeps", hugeShardedBody)
	id := resp.Header.Get("X-Sweep-Job")
	if id == "" {
		t.Fatal("no X-Sweep-Job header on streaming response")
	}
	waitForState(t, ts, id, StateRunning)
	time.Sleep(50 * time.Millisecond) // let shards get in flight
	resp.Body.Close()                 // disconnect mid-stream

	final := waitForState(t, ts, id, StateCancelled)
	if final.Completed != 0 {
		t.Errorf("disconnected sharded job streamed %d cell records, want 0 (no partial merges)", final.Completed)
	}
}

// Admission control: with one run slot and a queue of one, the third
// simultaneous job is rejected with 429 instead of queueing unboundedly.
func TestBackpressureRejectsBeyondQueueDepth(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentJobs: 1, QueueDepth: 1})
	release := make(chan struct{})
	s.beforeRun = func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	var ids []string
	for i := 0; i < 2; i++ {
		resp := postSweep(t, ts, "/v1/sweeps?async=1", rowBody)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, st.ID)
	}
	waitForState(t, ts, ids[0], StateRunning) // slot taken, ids[1] queued

	resp := postSweep(t, ts, "/v1/sweeps?async=1", rowBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: HTTP %d, want 429", resp.StatusCode)
	}

	close(release)
	for _, id := range ids {
		waitForState(t, ts, id, StateDone)
	}
}

// Admission is bounded by running+queued, not by the two counts
// separately: a burst landing before any job's goroutine reaches the
// running state must still be capped at MaxConcurrentJobs + QueueDepth.
func TestBackpressureBoundsSimultaneousBurst(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentJobs: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	s.beforeRun = func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	accepted := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postSweep(t, ts, "/v1/sweeps?async=1", rowBody)
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				mu.Lock()
				accepted++
				mu.Unlock()
			case http.StatusTooManyRequests:
			default:
				t.Errorf("burst submit: HTTP %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if accepted > 2 {
		t.Errorf("burst admitted %d jobs, want <= 2 (1 running + 1 queued)", accepted)
	}
	if accepted == 0 {
		t.Error("burst admitted no jobs")
	}
}

// Every malformed submission is a 4xx with a JSON error body, and unknown
// job ids are 404s.
func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"trials":`},
		{"unknown field", `{"trails":100}`},
		{"unknown type", `{"type":"tomography"}`},
		{"unknown scheme", `{"scheme":"qldpc"}`},
		{"unknown decoder", `{"decoder":"bp-osd"}`},
		{"negative trials", `{"trials":-5}`},
		{"negative target", `{"target_failures":-1}`},
		{"even distance", `{"distances":[4]}`},
		{"negative shard_shots", `{"shard_shots":-1}`},
		{"rate out of range", `{"rates":[1.5]}`},
		{"sensitivity without panel", `{"type":"sensitivity"}`},
		{"unknown panel", `{"type":"sensitivity","panel":"gate-fidelity"}`},
		{"panel on threshold", `{"panel":"cavity-t1"}`},
		{"values on threshold", `{"values":[0.001]}`},
		{"rates on sensitivity", `{"type":"sensitivity","panel":"cavity-t1","rates":[0.008]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSweep(t, ts, "/v1/sweeps", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", resp.StatusCode)
			}
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON: %v (%q)", err, e.Error)
			}
		})
	}

	if _, code := getStatus(t, ts, "sw-999999"); code != http.StatusNotFound {
		t.Errorf("unknown id status: HTTP %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/sw-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id delete: HTTP %d, want 404", resp.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweeps: HTTP %d, want 405", gresp.StatusCode)
	}
}

// A sensitivity sweep goes through the same pipeline with panel/value
// coordinates on its records, and SSE framing works end to end.
func TestSensitivitySweepAndSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"type":"sensitivity","panel":"cavity-t1","distances":[3],"values":[0.0001,0.01],"trials":200}`

	cells, status := readStream(t, postSweep(t, ts, "/v1/sweeps", body))
	if status.State != StateDone || len(cells) != 2 {
		t.Fatalf("sensitivity sweep: state %q, %d cells", status.State, len(cells))
	}
	for _, rec := range cells {
		if rec.Panel != "cavity-t1" || rec.Distance != 3 || rec.Value == 0 {
			t.Errorf("bad sensitivity record %+v", rec)
		}
	}

	resp := postSweep(t, ts, "/v1/sweeps?stream=sse", body)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := raw.String()
	if got := strings.Count(text, "event: cell"); got != 2 {
		t.Errorf("SSE stream has %d cell events, want 2:\n%s", got, text)
	}
	if !strings.Contains(text, "event: done") {
		t.Errorf("SSE stream missing done event:\n%s", text)
	}
}

// The registry retains only the configured number of finished jobs.
func TestFinishedJobEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{RetainJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		// Distinct seeds keep the jobs distinct; structures still share.
		body := fmt.Sprintf(`{"scheme":"baseline","distances":[3],"rates":[0.008],"trials":100,"seed":%d}`, i)
		_, status := readStream(t, postSweep(t, ts, "/v1/sweeps", body))
		if status.State != StateDone {
			t.Fatalf("sweep %d state %q", i, status.State)
		}
		ids = append(ids, status.ID)
	}
	st := getStats(t, ts)
	if st.Jobs.Retained > 2 {
		t.Errorf("registry retains %d jobs, want <= 2", st.Jobs.Retained)
	}
	if st.Jobs.Submitted != 4 {
		t.Errorf("submitted = %d, want 4", st.Jobs.Submitted)
	}
	if _, code := getStatus(t, ts, ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest job still queryable: HTTP %d, want 404", code)
	}
	if _, code := getStatus(t, ts, ids[3]); code != http.StatusOK {
		t.Errorf("newest job evicted: HTTP %d, want 200", code)
	}
}

// Liveness endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
}

// The decode pipeline is on by default: cells report their skip/dedup hit
// counts, /v1/stats aggregates them process-wide, and a request disabling
// the pipeline gets bit-identical rates with zeroed counters.
func TestDecodePipelineCountersAndToggle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	on, status := readStream(t, postSweep(t, ts, "/v1/sweeps", rowBody))
	if status.State != StateDone {
		t.Fatalf("pipeline-on sweep state %q (error %q)", status.State, status.Error)
	}
	var shots, skipped, dedup int
	for _, rec := range on {
		shots += rec.Trials
		skipped += rec.Skipped
		dedup += rec.DedupHits
	}
	if skipped == 0 {
		t.Errorf("no zero-defect shots skipped across %d shots; counters not surfaced", shots)
	}
	st := getStats(t, ts)
	if st.Decode.Shots != int64(shots) || st.Decode.Skipped != int64(skipped) || st.Decode.DedupHits != int64(dedup) {
		t.Errorf("/v1/stats decode %+v, want %d/%d/%d shots/skipped/dedup",
			st.Decode, shots, skipped, dedup)
	}

	offBody := strings.TrimSuffix(rowBody, "}") + `,"decode_pipeline":false}`
	off, status2 := readStream(t, postSweep(t, ts, "/v1/sweeps", offBody))
	if status2.State != StateDone {
		t.Fatalf("pipeline-off sweep state %q (error %q)", status2.State, status2.Error)
	}
	if len(off) != len(on) {
		t.Fatalf("pipeline-off sweep streamed %d cells, on %d", len(off), len(on))
	}
	for i := range off {
		if off[i].Skipped != 0 || off[i].DedupHits != 0 {
			t.Errorf("cell %d: disabled pipeline reported counters %d/%d",
				i, off[i].Skipped, off[i].DedupHits)
		}
		if off[i].Failures != on[i].Failures || off[i].Trials != on[i].Trials {
			t.Errorf("cell %d: pipeline off %d/%d failures/trials, on %d/%d — predictions must be bit-identical",
				i, off[i].Failures, off[i].Trials, on[i].Failures, on[i].Trials)
		}
	}
}
