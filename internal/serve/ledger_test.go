package serve

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// The restart round trip the file ledger exists for: a sweep served by one
// process is replayed by the next from the JSONL file alone — a fresh
// engine does zero builds, every cell arrives marked "ledger", and the
// payload is bit-identical.
func TestFileLedgerReplaysAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ledger")

	led1, err := OpenFileLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewServer(Config{Ledger: led1})
	ts1 := httptest.NewServer(s1)
	first, status := readStream(t, postSweep(t, ts1, "/v1/sweeps", rowBody))
	ts1.Close()
	s1.Close()
	if err := led1.Close(); err != nil {
		t.Fatal(err)
	}
	if status.State != StateDone {
		t.Fatalf("cold sweep ended %q (error %q)", status.State, status.Error)
	}

	led2, err := OpenFileLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led2.Close() })
	if st := led2.Stats(); st.Entries != len(first) || st.Backend != path {
		t.Fatalf("replayed ledger stats %+v, want %d entries from %s", st, len(first), path)
	}
	_, ts2 := newTestServer(t, Config{Ledger: led2})
	second, status2 := readStream(t, postSweep(t, ts2, "/v1/sweeps", rowBody))
	if status2.State != StateDone {
		t.Fatalf("replayed sweep ended %q (error %q)", status2.State, status2.Error)
	}
	st := getStats(t, ts2)
	if st.Engine.Builds != 0 {
		t.Errorf("replayed sweep built %d structures on a fresh engine, want 0", st.Engine.Builds)
	}
	if st.Ledger.Hits < int64(len(second)) {
		t.Errorf("ledger hits = %d, want >= %d", st.Ledger.Hits, len(second))
	}
	for i := range first {
		if second[i].Source != "ledger" {
			t.Errorf("replayed cell %d has source %q, want %q", i, second[i].Source, "ledger")
		}
		if first[i] != stripSource(second[i]) {
			t.Errorf("cell %d changed across restart:\n  %+v\n  %+v", i, first[i], second[i])
		}
	}
}

// A torn trailing line — the shape a crash mid-append leaves behind — must
// not poison replay of the intact prefix.
func TestFileLedgerSkipsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.ledger")
	led, err := OpenFileLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	led.Put("cell-a", CellRecord{Distance: 3, LogicalRate: 0.5, Trials: 10})
	led.Put("cell-b", CellRecord{Distance: 5, LogicalRate: 0.25, Trials: 10})
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"cell-c","cell":{"dist`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := OpenFileLedger(path)
	if err != nil {
		t.Fatalf("torn tail made the ledger unopenable: %v", err)
	}
	defer reopened.Close()
	if st := reopened.Stats(); st.Entries != 2 {
		t.Errorf("replayed %d entries past a torn tail, want 2", st.Entries)
	}
	if rec, ok := reopened.Get("cell-b"); !ok || rec.Distance != 5 {
		t.Errorf("intact entry lost: %+v, %v", rec, ok)
	}
	if _, ok := reopened.Get("cell-c"); ok {
		t.Error("torn entry resurrected")
	}
}

// Duplicate Puts keep the first record and append once — the property that
// makes concurrent leaders and no_cache re-derivations harmless.
func TestLedgerDuplicatePutsAreIdempotent(t *testing.T) {
	led := NewMemLedger()
	led.Put("k", CellRecord{Trials: 1})
	led.Put("k", CellRecord{Trials: 2})
	if st := led.Stats(); st.Entries != 1 || st.Appends != 1 {
		t.Errorf("stats %+v, want 1 entry / 1 append", st)
	}
	if rec, _ := led.Get("k"); rec.Trials != 1 {
		t.Errorf("second Put overwrote the first: %+v", rec)
	}
}

// canonicalRecord strips exactly the job-local fields.
func TestCanonicalRecordStripsJobLocalFields(t *testing.T) {
	rec := CellRecord{Index: 7, Source: sourceCoalesced, Distance: 3, Trials: 100, Failures: 4}
	got := canonicalRecord(rec)
	want := CellRecord{Distance: 3, Trials: 100, Failures: 4}
	if got != want {
		t.Errorf("canonicalRecord(%+v) = %+v, want %+v", rec, got, want)
	}
}

// A single job holding the same cell twice coalesces it with itself: the
// leader entry created for the first copy feeds the second, so the cell
// decodes once. Deterministic — no cross-job race needed — because both
// copies are planned in the same pass.
func TestIntraJobDuplicateCellsCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"scheme":"baseline","distances":[3],"rates":[0.008,0.008],"trials":300,"seed":7}`
	cells, status := readStream(t, postSweep(t, ts, "/v1/sweeps", body))
	if status.State != StateDone {
		t.Fatalf("sweep ended %q (error %q)", status.State, status.Error)
	}
	if len(cells) != 2 {
		t.Fatalf("streamed %d cells, want 2", len(cells))
	}
	if got := s.decShots.Load(); got != 300 {
		t.Errorf("decoded %d shots for twin cells, want 300 (one execution)", got)
	}
	st := getStats(t, ts)
	if st.Ledger.CoalesceHits != 1 {
		t.Errorf("coalesce hits = %d, want 1", st.Ledger.CoalesceHits)
	}
	bySource := map[string]int{}
	for _, c := range cells {
		bySource[c.Source]++
	}
	if bySource[""] != 1 || bySource[sourceCoalesced] != 1 {
		t.Errorf("sources %v, want one engine cell and one coalesced", bySource)
	}
	a, b := cells[0], cells[1]
	a.Index, b.Index = 0, 0
	if stripSource(a) != stripSource(b) {
		t.Errorf("twin cells diverged:\n  %+v\n  %+v", cells[0], cells[1])
	}
}

// Coalescer protocol unit test: ledger-first probing, single leadership,
// follower hand-off on resolve, and re-planning after abort.
func TestCoalescerPlanResolveAbort(t *testing.T) {
	led := NewMemLedger()
	c := newCoalescer()

	plan, _, e1 := c.planCell(led, "k")
	if plan != planLead || e1 == nil {
		t.Fatalf("first plan = %v, want lead", plan)
	}
	plan, _, e2 := c.planCell(led, "k")
	if plan != planFollow || e2 != e1 {
		t.Fatalf("second plan = %v (entry %p vs %p), want follow of the leader's entry", plan, e2, e1)
	}
	if c.pendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", c.pendingCount())
	}

	// Leader aborts: the follower's entry closes without a result and the
	// next plan claims fresh leadership.
	c.abort("k", e1)
	<-e1.done
	if e1.ok {
		t.Error("aborted entry reports ok")
	}
	plan, _, e3 := c.planCell(led, "k")
	if plan != planLead || e3 == e1 {
		t.Fatalf("post-abort plan = %v, want a fresh leadership", plan)
	}

	// Resolve with the ledger write first: later plans are ledger-served.
	rec := CellRecord{Distance: 3, Trials: 42}
	led.Put("k", rec)
	c.resolve("k", e3, rec)
	<-e3.done
	if !e3.ok || e3.rec != rec {
		t.Errorf("resolved entry = ok %v rec %+v, want the record", e3.ok, e3.rec)
	}
	plan, got, _ := c.planCell(led, "k")
	if plan != planLedger || got != rec {
		t.Errorf("post-resolve plan = %v / %+v, want ledger-served record", plan, got)
	}
	if c.pendingCount() != 0 {
		t.Errorf("pending = %d after resolve, want 0", c.pendingCount())
	}
}
