package serve

// Regression tests for the serve-layer hardening sweep: the job-context
// leak, streaming onto dead connections, oversized-body status mapping,
// and eviction under churn.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// A finished job must release its context. Before the fix, newJob derived
// a cancellable context from the server's base context but nothing ever
// called cancel on completion, so every finished job stayed registered on
// the parent for as long as it was retained — this test fails on that
// code (ctx.Err() stays nil after done).
func TestFinishedJobReleasesContext(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, status := readStream(t, postSweep(t, ts, "/v1/sweeps", rowBody))
	if status.State != StateDone {
		t.Fatalf("sweep ended %q (error %q)", status.State, status.Error)
	}
	jb := s.lookup(status.ID)
	if jb == nil {
		t.Fatalf("job %s not retained", status.ID)
	}
	if jb.ctx.Err() == nil {
		t.Error("finished job's context is still live; finish must cancel it")
	}
}

// failWriter is a ResponseWriter standing in for a dead connection: every
// Write after the first failAfter calls returns an error, the way a
// closed TCP peer eventually surfaces through the http stack.
type failWriter struct {
	h         http.Header
	writes    int
	failAfter int
}

func (f *failWriter) Header() http.Header { return f.h }
func (f *failWriter) WriteHeader(int)     {}
func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.failAfter {
		return 0, errors.New("write tcp: connection reset by peer")
	}
	return len(p), nil
}

// A stream whose writes fail must end instead of encoding into the void.
// Before the fix, streamJob ignored every write error: with a job that
// keeps producing (or just never finishes), the handler goroutine stayed
// parked on the update channel forever and an owned job never got
// cancelled. This test fails on that code by timeout.
func TestStreamStopsOnWriteError(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	jb := newJob("sw-test", "threshold", "local", nil, 0, 0, context.Background())
	jb.setRunning()
	jb.appendCell(CellRecord{Index: 0, Distance: 3}) // the write that fails
	// The job deliberately never finishes: only the write error can end the
	// stream.

	done := make(chan struct{})
	go func() {
		defer close(done)
		w := &failWriter{h: make(http.Header)}
		r := httptest.NewRequest("POST", "/v1/sweeps", nil)
		s.streamJob(w, r, jb, true)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("streamJob still running 5s after its connection died")
	}
	if jb.ctx.Err() == nil {
		t.Error("owned job not cancelled after its stream's connection died")
	}
}

// An observer's dead connection must not cancel the job it was watching.
func TestObserverWriteErrorLeavesJobAlive(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	jb := newJob("sw-test", "threshold", "local", nil, 0, 0, context.Background())
	jb.setRunning()
	jb.appendCell(CellRecord{Index: 0, Distance: 3})

	done := make(chan struct{})
	go func() {
		defer close(done)
		w := &failWriter{h: make(http.Header)}
		r := httptest.NewRequest("GET", "/v1/sweeps/sw-test/results", nil)
		s.streamJob(w, r, jb, false)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("observer stream still running 5s after its connection died")
	}
	if jb.ctx.Err() != nil {
		t.Error("observer disconnect cancelled the job; only owners may")
	}
}

// Submission-body failures map to distinct statuses: malformed JSON and
// unknown fields are 400s, but a body over the 1 MiB cap is 413 naming
// the limit (it was a generic 400 before the fix).
func TestSubmitBodyErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	huge := `{"scheme":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantMsg  string
	}{
		{"oversized body", huge, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d-byte limit", maxBodyBytes)},
		{"malformed json", `{"scheme":`, http.StatusBadRequest, "invalid request body"},
		{"unknown field", `{"schemme":"baseline"}`, http.StatusBadRequest, "invalid request body"},
		{"bad value", `{"trials":-5}`, http.StatusBadRequest, "trials must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSweep(t, ts, "/v1/sweeps", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Errorf("HTTP %d, want %d", resp.StatusCode, tc.wantCode)
			}
			b, _ := io.ReadAll(resp.Body)
			if !strings.Contains(string(b), tc.wantMsg) {
				t.Errorf("body %q does not mention %q", b, tc.wantMsg)
			}
		})
	}
}

// Eviction under churn: many short jobs against a small retention cap must
// keep the registry bounded with jobs and order in lockstep, evict oldest
// first, and cancel what it evicts. (The pre-fix implementation also spent
// O(n²) splicing the order slice — behaviourally covered here by the
// invariants, structurally by the rewrite.)
func TestEvictionUnderChurn(t *testing.T) {
	const retain, total = 3, 12
	s, ts := newTestServer(t, Config{RetainJobs: retain})
	var last JobStatus
	for i := 0; i < total; i++ {
		// Distinct seeds so each job does real (if tiny) work; ledger and
		// coalescing do not collapse the churn.
		body := fmt.Sprintf(`{"scheme":"baseline","distances":[3],"rates":[0.008],"trials":20,"seed":%d}`, i)
		_, last = readStream(t, postSweep(t, ts, "/v1/sweeps", body))
		if last.State != StateDone {
			t.Fatalf("job %d ended %q (error %q)", i, last.State, last.Error)
		}
	}

	// The final job's evict pass runs just after its stream closes; poll
	// briefly for the registry to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		jobs, order := len(s.jobs), len(s.order)
		s.mu.Unlock()
		if jobs <= retain && jobs == order {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("registry never settled: %d jobs, %d in order, want <= %d and equal",
				jobs, order, retain)
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for i, jb := range s.order {
		if s.jobs[jb.id] != jb {
			t.Errorf("order[%d] (%s) missing from the jobs map", i, jb.id)
		}
		if i > 0 && jb.id <= s.order[i-1].id {
			t.Errorf("order not oldest-first: %s after %s", jb.id, s.order[i-1].id)
		}
	}
	// The newest job must have survived; the earliest must be gone.
	if _, ok := s.jobs[last.ID]; !ok {
		t.Errorf("newest job %s was evicted", last.ID)
	}
	if _, ok := s.jobs["sw-000001"]; ok {
		t.Error("oldest job sw-000001 survived eviction")
	}
}
