package serve

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/fabric"
)

// TestFabricModeMatchesLocal submits the same pinned-seed row twice — once
// in local mode, once in fabric mode against a 3-worker in-process cluster
// — and requires identical cell records, plus fabric counters in /v1/stats.
func TestFabricModeMatchesLocal(t *testing.T) {
	hub := fabric.NewHub(fabric.Options{})
	t.Cleanup(hub.Close)
	cluster := fabric.StartCluster(3, func(int) fabric.Transport { return fabric.Local{Hub: hub} },
		func(int) fabric.WorkerOptions {
			return fabric.WorkerOptions{PollInterval: 2 * time.Millisecond}
		})
	t.Cleanup(func() {
		for _, err := range cluster.Stop() {
			t.Errorf("worker error: %v", err)
		}
	})
	_, ts := newTestServer(t, Config{Fabric: hub})

	resp := postSweep(t, ts, "/v1/sweeps", rowBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local submit: HTTP %d", resp.StatusCode)
	}
	localCells, localStatus := readStream(t, resp)
	if localStatus.State != StateDone {
		t.Fatalf("local job ended %q: %s", localStatus.State, localStatus.Error)
	}

	// no_cache keeps the fabric leg off the ledger (the local leg just
	// stored these exact cells); the point here is that the fabric
	// *executor* reproduces the local bytes, not that the ledger can
	// replay them.
	fabricBody := `{"mode":"fabric","no_cache":true,"scheme":"baseline","distances":[3],"rates":[0.004,0.008,0.016],"trials":300,"seed":7}`
	resp = postSweep(t, ts, "/v1/sweeps", fabricBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fabric submit: HTTP %d", resp.StatusCode)
	}
	fabricCells, fabricStatus := readStream(t, resp)
	if fabricStatus.State != StateDone {
		t.Fatalf("fabric job ended %q: %s", fabricStatus.State, fabricStatus.Error)
	}
	if fabricStatus.Mode != "fabric" || localStatus.Mode != "local" {
		t.Errorf("status modes %q/%q, want fabric/local", fabricStatus.Mode, localStatus.Mode)
	}

	if len(fabricCells) != len(localCells) {
		t.Fatalf("fabric streamed %d cells, local %d", len(fabricCells), len(localCells))
	}
	// Completion order differs; compare by index.
	byIndex := make(map[int]CellRecord, len(localCells))
	for _, c := range localCells {
		byIndex[c.Index] = c
	}
	for _, c := range fabricCells {
		if c != byIndex[c.Index] {
			t.Errorf("cell %d diverged:\n fabric %+v\n local  %+v", c.Index, c, byIndex[c.Index])
		}
	}

	st := getStats(t, ts)
	if st.Fabric == nil {
		t.Fatal("/v1/stats has no fabric section despite a configured hub")
	}
	if st.Fabric.RunsCompleted != 1 || st.Fabric.ResultsAccepted == 0 || st.Fabric.Workers != 3 {
		t.Errorf("fabric stats %+v, want 1 completed run, >0 accepted results, 3 workers", st.Fabric)
	}
}

// TestFabricModeRejectedWithoutHub pins the 400 for fabric mode on a
// server started without a coordinator, and for unknown modes generally.
func TestFabricModeRejectedWithoutHub(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postSweep(t, ts, "/v1/sweeps", `{"mode":"fabric","trials":100}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fabric mode without hub: HTTP %d, want 400", resp.StatusCode)
	}
	resp = postSweep(t, ts, "/v1/sweeps", `{"mode":"warp","trials":100}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mode: HTTP %d, want 400", resp.StatusCode)
	}
	if st := getStats(t, ts); st.Fabric != nil {
		t.Error("/v1/stats grew a fabric section without a hub")
	}
}
