package serve

// Request coalescing: identical in-flight cells across concurrent jobs
// share one execution. The first job to plan a cell key becomes its
// leader and runs it through the engine (or fabric); every other job
// holding the same key subscribes to the leader's pendingCell and feeds
// its own stream from the shared result — singleflight, per cell rather
// than per request, so two overlapping sweeps coalesce exactly the cells
// they share.
//
// A leader that aborts (cancelled job, failed run) resolves its entries
// with ok=false; subscribers then loop back through planning, where one
// of them claims leadership and the cell still runs exactly once at a
// time. Successful resolutions are written to the ledger *before* the
// pending entry is removed (both under plan's lock ordering), so a job
// planning the key at any moment finds it in exactly one place: the
// ledger, the pending map, or — neither — claims it.

import (
	"sync"
	"sync/atomic"
)

// pendingCell is one in-flight cell execution. done closes exactly once,
// after rec/ok are set.
type pendingCell struct {
	done chan struct{}
	rec  CellRecord // canonical (Index/Source cleared); valid when ok
	ok   bool       // false: leader aborted without a result, re-plan
}

// coalescer is the singleflight pending map.
type coalescer struct {
	mu      sync.Mutex
	pending map[string]*pendingCell
	hits    atomic.Int64 // cells served from another job's in-flight run
}

func newCoalescer() *coalescer {
	return &coalescer{pending: make(map[string]*pendingCell)}
}

// cellPlan is planCell's verdict for one cell.
type cellPlan int

const (
	planLedger cellPlan = iota // rec was served from the ledger
	planLead                   // caller owns the execution
	planFollow                 // subscribe to entry.done
)

// planCell decides how a job obtains one cell: from the ledger, by
// leading a fresh execution, or by following an in-flight one. The
// ledger probe happens under the coalescer lock so a concurrent leader's
// Put-then-remove can never slip between a miss here and the pending
// lookup.
func (c *coalescer) planCell(ledger Ledger, key string) (plan cellPlan, rec CellRecord, entry *pendingCell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec, ok := ledger.Get(key); ok {
		return planLedger, rec, nil
	}
	if e, ok := c.pending[key]; ok {
		return planFollow, CellRecord{}, e
	}
	e := &pendingCell{done: make(chan struct{})}
	c.pending[key] = e
	return planLead, CellRecord{}, e
}

// resolve publishes a leader's canonical record to every follower and
// retires the entry. Callers must Put the record into the ledger first.
func (c *coalescer) resolve(key string, e *pendingCell, rec CellRecord) {
	c.mu.Lock()
	if c.pending[key] == e {
		delete(c.pending, key)
	}
	c.mu.Unlock()
	e.rec, e.ok = rec, true
	close(e.done)
}

// abort retires a leader's entry without a result; followers re-plan.
func (c *coalescer) abort(key string, e *pendingCell) {
	c.mu.Lock()
	if c.pending[key] == e {
		delete(c.pending, key)
	}
	c.mu.Unlock()
	close(e.done)
}

// pendingCount reports the in-flight map population (stats).
func (c *coalescer) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}
