package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/sched"
)

// Job lifecycle states, as reported in JobStatus.State. A job moves
// queued -> running -> one of the three terminal states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// job is one submitted sweep: its cells, its cancellation context, and the
// results accumulated so far. The records slice is append-only, which is
// what makes late subscribers cheap: a reader holds a cursor into the
// slice and replays everything it has not yet seen, then waits on the
// updated channel (closed and replaced on every change) for more.
type job struct {
	id         string
	typ        string
	mode       string // "local" or "fabric"
	cells      []sched.Job
	poolWidth  int
	shardShots int
	noCache    bool // bypass ledger + coalescing (set before publication)
	ctx        context.Context
	cancel     context.CancelFunc

	mu       sync.Mutex
	state    string
	records  []CellRecord
	errMsg   string
	updated  chan struct{}
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id, typ, mode string, cells []sched.Job, poolWidth, shardShots int, parent context.Context) *job {
	ctx, cancel := context.WithCancel(parent)
	return &job{
		id: id, typ: typ, mode: mode, cells: cells, poolWidth: poolWidth, shardShots: shardShots,
		ctx: ctx, cancel: cancel,
		state: StateQueued, updated: make(chan struct{}), created: time.Now(),
	}
}

// notifyLocked wakes every waiting subscriber. Callers hold j.mu.
func (j *job) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
	j.notifyLocked()
}

// finish moves the job to a terminal state exactly once; later calls (for
// example a cancel racing completion) are ignored. It also releases the
// job's context: the context derives from the server's base context, and a
// derived context stays registered on its parent until cancelled — without
// this, every finished job would leak its context (and the goroutine
// propagating the parent's cancellation) for as long as it stayed in the
// retention window.
func (j *job) finish(state string, err error) {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = state
	if err != nil && state == StateFailed {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.notifyLocked()
	j.mu.Unlock()
	j.cancel()
}

func (j *job) appendCell(rec CellRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, rec)
	j.notifyLocked()
}

func (j *job) stateNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// next returns the records at and beyond the cursor, the current state,
// and a channel that closes on the next change — the subscription
// primitive behind NDJSON/SSE streaming.
func (j *job) next(from int) ([]CellRecord, string, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var recs []CellRecord
	if from < len(j.records) {
		recs = j.records[from:len(j.records):len(j.records)]
	}
	return recs, j.state, j.updated
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Type:      j.typ,
		Mode:      j.mode,
		Cells:     len(j.cells),
		Completed: len(j.records),
		Error:     j.errMsg,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}
