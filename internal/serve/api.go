package serve

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/decoder"
	"repro/internal/extract"
	"repro/internal/fabric"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

// maxCells bounds one submission; a request expanding to a larger grid is
// rejected with 400 rather than silently truncated or allowed to occupy a
// worker pool for hours.
const maxCells = 4096

// SweepRequest is the body of POST /v1/sweeps: one threshold (Fig. 11) or
// sensitivity (Fig. 12) sweep job. Zero fields take the documented
// defaults, so the smallest useful threshold submission is `{}` and the
// smallest sensitivity submission is `{"type":"sensitivity","panel":
// "cavity-t1"}`.
type SweepRequest struct {
	// Type selects the experiment: "threshold" (default) or "sensitivity".
	Type string `json:"type,omitempty"`
	// Mode selects the executor: "local" (default) runs the sweep on this
	// process's scheduler pool; "fabric" leases its cells to the workers
	// of the server's fabric coordinator (400 when the server was started
	// without one, e.g. vlqserve without -fabric-listen). Either way the
	// results are bit-identical — the executor is invisible in the bytes.
	Mode string `json:"mode,omitempty"`
	// Scheme names the extraction setup for threshold sweeps (default
	// "compact-interleaved"; see extract.Schemes for the five names).
	Scheme string `json:"scheme,omitempty"`
	// Panel names the Fig. 12 study for sensitivity sweeps (required for
	// them; see montecarlo.Panels for the seven names).
	Panel string `json:"panel,omitempty"`
	// Distances are the code distances (default 3,5,7 for threshold,
	// 3,5 for sensitivity).
	Distances []int `json:"distances,omitempty"`
	// Rates are the physical error rates of a threshold grid (default: a
	// 6-point log grid bracketing the paper's thresholds).
	Rates []float64 `json:"rates,omitempty"`
	// Values are the swept parameter values of a sensitivity panel
	// (default: the paper's range for the panel, 5 points).
	Values []float64 `json:"values,omitempty"`
	// Trials is the Monte-Carlo shot count per cell (default 2000; a cap
	// when TargetFailures is set).
	Trials int `json:"trials,omitempty"`
	// TargetFailures, when positive, ends each cell early once this many
	// logical failures accumulate.
	TargetFailures int `json:"target_failures,omitempty"`
	// RareEvent switches every cell to importance-sampled estimation: shots
	// draw from a proposal with fault probabilities inflated by Boost and
	// each cell's logical_rate/stderr come from the likelihood-ratio-weighted
	// tally (rel_err and ess columns report its quality). The mode of choice
	// for deep-subthreshold cells where trials-bounded brute force reports 0.
	RareEvent bool `json:"rare_event,omitempty"`
	// Boost is the rare-event proposal inflation factor (>= 1; 0 selects
	// montecarlo.DefaultBoost). Only valid with rare_event.
	Boost float64 `json:"boost,omitempty"`
	// TargetRelErr, when positive, ends each rare-event cell early once its
	// weighted estimate reaches this relative standard error — the weighted
	// replacement for target_failures, which rare_event rejects.
	TargetRelErr float64 `json:"target_rel_err,omitempty"`
	// Seed fixes the sweep's randomness; equal requests return
	// bit-identical cells.
	Seed int64 `json:"seed,omitempty"`
	// Decoder selects the per-shot decoder for either sweep type: "uf"
	// (default), "blossom" (exact minimum-weight matching at union-find-
	// like cost), "mwpm", or "exact" (the older exact matchers, union-find
	// fallback past their size ceilings).
	Decoder string `json:"decoder,omitempty"`
	// Jobs is this sweep's scheduler pool width (0 = the server default).
	Jobs int `json:"jobs,omitempty"`
	// ShardShots, when positive, splits cells into shard units of ~this
	// many trials that idle pool workers steal; cells below twice the size
	// stay whole, and values below montecarlo.MinShardShots are raised to
	// that floor (see sched.Options).
	// A sharded cell still streams as one CellRecord, merged
	// deterministically from its fixed shard plan; cancelling the job
	// aborts its in-flight shards.
	ShardShots int `json:"shard_shots,omitempty"`
	// DecodePipeline toggles the batch decode pipeline (zero-defect skip +
	// per-batch syndrome dedup). Omitted or true keeps it on — the default,
	// and bit-identical to the unpruned path; false decodes every shot
	// through the matcher (A/B benchmarking).
	DecodePipeline *bool `json:"decode_pipeline,omitempty"`
	// NoCache bypasses the result ledger and request coalescing for this
	// job: every cell runs on the engine (or fabric) even if an identical
	// cell is stored or in flight, and nothing this job computes is
	// written back. The engine's structure cache still applies — it is
	// invisible in the result bytes. For A/B measurement (cmd/vlqload's
	// cold legs) and cache-suspicious debugging; results are bit-identical
	// either way, which is the whole point of the ledger.
	NoCache bool `json:"no_cache,omitempty"`
}

// CellRecord is one finished sweep cell as streamed to clients (NDJSON
// line or SSE "cell" event). Threshold cells carry scheme/phys_rate,
// sensitivity cells panel/value; both carry the distance and statistics.
type CellRecord struct {
	Index       int     `json:"index"`
	Decoder     string  `json:"decoder,omitempty"`
	Scheme      string  `json:"scheme,omitempty"`
	Panel       string  `json:"panel,omitempty"`
	Distance    int     `json:"distance"`
	PhysRate    float64 `json:"phys_rate,omitempty"`
	Value       float64 `json:"value,omitempty"`
	LogicalRate float64 `json:"logical_rate"`
	StdErr      float64 `json:"stderr"`
	// RelErr and ESS are the rare-event error-bar columns: stderr/logical_rate
	// and the Kish effective sample size of the weighted tally. Omitted for
	// unweighted cells (whose stderr is already the full story). A RelErr of
	// -1 encodes "no failures observed yet" (the true relative error is
	// unbounded, and JSON cannot carry +Inf).
	RelErr   *float64 `json:"rel_err,omitempty"`
	ESS      *float64 `json:"ess,omitempty"`
	Trials   int      `json:"trials"`
	Failures int      `json:"failures"`
	// Skipped and DedupHits surface the decode pipeline's hit rates for
	// this cell: shots answered by the zero-defect fast path, and shots
	// replayed from a duplicate syndrome in the same batch. Zero when the
	// request disabled the pipeline.
	Skipped   int `json:"skipped,omitempty"`
	DedupHits int `json:"dedup_hits,omitempty"`
	// DecoderStats carries the cell's matcher-internal stage counters;
	// omitzero drops the block for cells that did no matcher work, and the
	// value keeps CellRecord comparable.
	DecoderStats decoder.DecoderStats `json:"decoder_stats,omitzero"`
	// Source reports how this job obtained the cell: "" (the engine ran
	// it), "ledger" (served from the durable result store), or
	// "coalesced" (fed from an identical cell in flight on another job).
	// The scientific payload is bit-identical across all three — Source is
	// provenance, not identity, and is excluded from the ledger's stored
	// bytes.
	Source string `json:"source,omitempty"`
	Error  string `json:"error,omitempty"`
}

// JobStatus is the wire form of one sweep job: GET /v1/sweeps/{id}, the
// trailing line of an NDJSON stream, and the SSE "done" event.
type JobStatus struct {
	ID         string     `json:"id"`
	State      string     `json:"state"`
	Type       string     `json:"type"`
	Mode       string     `json:"mode,omitempty"`
	Cells      int        `json:"cells"`
	Completed  int        `json:"completed"`
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// StatsResponse is GET /v1/stats: the shared engine's structure-cache
// counters, the decode pipeline's process-wide hit counters, and the job
// registry's population.
type StatsResponse struct {
	Engine montecarlo.CacheStats `json:"engine"`
	Decode DecodeStats           `json:"decode"`
	Jobs   JobCounts             `json:"jobs"`
	// Ledger reports the durable result store and request-coalescing
	// counters: entries stored, lookup hits/misses, appends, and how many
	// cells were fed from an identical in-flight execution.
	Ledger LedgerSection `json:"ledger"`
	// Fabric carries the fabric coordinator's worker/lease/merge counters;
	// absent when the server runs without one.
	Fabric *fabric.Stats `json:"fabric,omitempty"`
}

// LedgerSection is the "ledger" block of GET /v1/stats: the store's own
// counters plus the coalescer's, which shares the section because the two
// answer the same question — how many cells never touched the engine.
type LedgerSection struct {
	LedgerStats
	// CoalesceHits counts cells served from another job's in-flight
	// execution of the same canonical cell.
	CoalesceHits int64 `json:"coalesce_hits"`
	// CoalescePending is the current in-flight pending-map population.
	CoalescePending int `json:"coalesce_pending"`
}

// DecodeStats aggregates the decode pipeline's counters over every cell
// the server has completed since startup, making the skip and dedup hit
// rates observable in production sweeps: Skipped/Shots is the zero-defect
// fraction (the shots that never touched a matcher), DedupHits/Shots the
// duplicate-syndrome fraction replayed from a batch-local cache.
type DecodeStats struct {
	Shots     int64 `json:"shots"`
	Skipped   int64 `json:"skipped"`
	DedupHits int64 `json:"dedup_hits"`
	// Decoder sums the matcher-internal stage counters (union-find growth
	// rounds, blossom escalation rounds, alternating-tree phases, ...) over
	// every completed cell — the profile-shaped view of where decode time
	// goes in production sweeps.
	Decoder decoder.DecoderStats `json:"decoder"`
}

// JobCounts summarizes the registry.
type JobCounts struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Retained  int   `json:"retained"`  // jobs currently in the registry
	Submitted int64 `json:"submitted"` // total accepted since startup
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

func schemeByName(name string) (extract.Scheme, error) {
	for _, s := range extract.Schemes {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

// buildCells validates the request, fills defaults, and expands it to
// scheduler jobs. All failures here are client errors (HTTP 400).
func buildCells(req SweepRequest) (typ string, cells []sched.Job, err error) {
	if req.Trials == 0 {
		req.Trials = 2000
	}
	if req.Trials < 0 {
		return "", nil, fmt.Errorf("trials must be positive, got %d", req.Trials)
	}
	if req.TargetFailures < 0 {
		return "", nil, fmt.Errorf("target_failures must be non-negative, got %d", req.TargetFailures)
	}
	if !req.RareEvent {
		if req.Boost != 0 {
			return "", nil, fmt.Errorf("boost requires rare_event mode")
		}
		if req.TargetRelErr != 0 {
			return "", nil, fmt.Errorf("target_rel_err requires rare_event mode")
		}
	} else {
		if req.Boost < 0 || req.Boost != 0 && req.Boost < 1 {
			return "", nil, fmt.Errorf("boost must be >= 1 (or 0 for the default), got %g", req.Boost)
		}
		if req.TargetRelErr < 0 {
			return "", nil, fmt.Errorf("target_rel_err must be non-negative, got %g", req.TargetRelErr)
		}
		if req.TargetFailures > 0 {
			return "", nil, fmt.Errorf("target_failures is undefined for rare_event sweeps; use target_rel_err")
		}
	}
	if req.Jobs < 0 {
		return "", nil, fmt.Errorf("jobs must be non-negative, got %d", req.Jobs)
	}
	if req.ShardShots < 0 {
		return "", nil, fmt.Errorf("shard_shots must be non-negative, got %d", req.ShardShots)
	}
	for _, d := range req.Distances {
		if d < 3 || d%2 == 0 {
			return "", nil, fmt.Errorf("distance %d invalid: want an odd distance >= 3", d)
		}
	}
	opts := montecarlo.SweepOptions{
		TargetFailures:  req.TargetFailures,
		DisablePipeline: req.DecodePipeline != nil && !*req.DecodePipeline,
		RareEvent:       req.RareEvent,
		Boost:           req.Boost,
		TargetRelErr:    req.TargetRelErr,
	}
	dec := montecarlo.UF
	if req.Decoder != "" {
		k, err := decoder.ParseKind(req.Decoder)
		if err != nil {
			return "", nil, err
		}
		dec = k
	}

	switch req.Type {
	case "", "threshold":
		typ = "threshold"
		if req.Panel != "" {
			return "", nil, fmt.Errorf("panel is a sensitivity-sweep field; set type to %q", "sensitivity")
		}
		if len(req.Values) != 0 {
			return "", nil, fmt.Errorf("values is a sensitivity-sweep field; threshold sweeps take rates")
		}
		if req.Scheme == "" {
			req.Scheme = extract.CompactInterleaved.String()
		}
		scheme, err := schemeByName(req.Scheme)
		if err != nil {
			return "", nil, err
		}
		if len(req.Distances) == 0 {
			req.Distances = []int{3, 5, 7}
		}
		if len(req.Rates) == 0 {
			req.Rates = montecarlo.DefaultPhysRates(6)
		}
		for _, p := range req.Rates {
			if p <= 0 || p >= 1 {
				return "", nil, fmt.Errorf("physical rate %g out of range (0, 1)", p)
			}
		}
		cells = sched.ThresholdJobs(scheme, req.Distances, req.Rates, hardware.Default(),
			req.Trials, req.Seed, dec, opts)

	case "sensitivity":
		typ = "sensitivity"
		if req.Scheme != "" {
			return "", nil, fmt.Errorf("scheme is fixed to compact-interleaved for sensitivity sweeps")
		}
		if len(req.Rates) != 0 {
			return "", nil, fmt.Errorf("rates is a threshold-sweep field; sensitivity sweeps take values")
		}
		panel := montecarlo.Panel(req.Panel)
		if !slices.Contains(montecarlo.Panels, panel) {
			return "", nil, fmt.Errorf("unknown panel %q (want one of %v)", req.Panel, montecarlo.Panels)
		}
		if len(req.Distances) == 0 {
			req.Distances = []int{3, 5}
		}
		if len(req.Values) == 0 {
			req.Values = panel.DefaultValues(5)
		}
		cells, err = sched.SensitivityJobs(panel, req.Values, req.Distances, req.Trials, req.Seed, dec, opts)
		if err != nil {
			return "", nil, err
		}

	default:
		return "", nil, fmt.Errorf("unknown sweep type %q (want %q or %q)", req.Type, "threshold", "sensitivity")
	}

	if len(cells) == 0 {
		return "", nil, fmt.Errorf("request expands to an empty grid")
	}
	if len(cells) > maxCells {
		return "", nil, fmt.Errorf("request expands to %d cells; the per-job limit is %d", len(cells), maxCells)
	}
	return typ, cells, nil
}

// BuildCells expands a validated SweepRequest into scheduler jobs — the
// same expansion POST /v1/sweeps performs, exported for coordinator
// binaries (cmd/vlqfabric) that reuse the request schema without the full
// server.
func BuildCells(req SweepRequest) ([]sched.Job, error) {
	_, cells, err := buildCells(req)
	return cells, err
}

// ToCellRecord converts one scheduler result to its wire form.
func ToCellRecord(r sched.CellResult) CellRecord { return cellRecord(r) }

// cellKey is the canonical identity of one scheduler job: the
// montecarlo-level key (every Config field that moves the result bytes)
// prefixed by the cell's sweep-grid coordinates. The prefix matters
// because CellRecord carries the coordinates from the Tag, not the
// Config: a threshold cell and a sensitivity cell that happened to expand
// to the same Config would still stream different Scheme/Panel/PhysRate/
// Value columns, so they must not share a ledger entry.
func cellKey(j sched.Job) string {
	switch tag := j.Tag.(type) {
	case sched.ThresholdCell:
		return fmt.Sprintf("t|%s|%d|%x|%s", tag.Scheme, tag.Distance, tag.Phys, j.Cfg.CellKey())
	case sched.SensitivityCell:
		return fmt.Sprintf("s|%s|%d|%x|%s", tag.Panel, tag.Distance, tag.Value, j.Cfg.CellKey())
	default:
		return "u|" + j.Cfg.CellKey()
	}
}

// cellRecord converts one scheduler result to its wire form.
func cellRecord(r sched.CellResult) CellRecord {
	rec := CellRecord{
		Index:       r.Index,
		Decoder:     string(r.Job.Cfg.Decoder),
		LogicalRate: r.Result.Rate(),
		StdErr:      r.Result.StdErr(),
		Trials:      r.Result.Trials,
		Failures:    r.Result.Failures,
		Skipped:     r.Result.Skipped,
		DedupHits:   r.Result.DedupHits,
	}
	rec.DecoderStats = r.Result.Stats
	if r.Job.Cfg.RareEvent {
		re := r.Result.RelErr()
		if math.IsInf(re, 1) {
			re = -1 // no failures observed: unbounded relative error
		}
		ess := r.Result.ESS()
		rec.RelErr, rec.ESS = &re, &ess
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
	}
	switch tag := r.Job.Tag.(type) {
	case sched.ThresholdCell:
		rec.Scheme = tag.Scheme.String()
		rec.Distance = tag.Distance
		rec.PhysRate = tag.Phys
	case sched.SensitivityCell:
		rec.Panel = string(tag.Panel)
		rec.Value = tag.Value
		rec.Distance = tag.Distance
	}
	return rec
}
