// Package serve is the sweep-serving front end: an HTTP/JSON interface
// that turns the library's scheduler into a long-running service for the
// paper's threshold (Fig. 11) and sensitivity (Fig. 12) experiments.
//
// One process-wide montecarlo.Engine backs every request, so the
// structure/noise split pays off across clients: the first sweep of a
// (scheme, distance, rounds) experiment builds its circuit, fault
// Structure, and decoding-graph topology; every later sweep touching the
// same experiment — from any client — reweights cached structures and
// skips the builds entirely. GET /v1/stats exposes the cache counters
// that make this observable.
//
// The API:
//
//	POST   /v1/sweeps              submit a sweep (SweepRequest JSON);
//	                               streams CellRecord NDJSON lines (or SSE
//	                               with ?stream=sse) as cells finish and
//	                               ends with the JobStatus; with ?async=1
//	                               returns 202 + JobStatus immediately
//	GET    /v1/sweeps/{id}         JobStatus snapshot
//	GET    /v1/sweeps/{id}/results replay finished cells and follow live
//	DELETE /v1/sweeps/{id}         cancel (observed at the next cell boundary)
//	GET    /v1/stats               engine cache, decode pipeline, and job
//	                               registry counters
//	GET    /healthz                liveness
//
// A synchronous POST ties the job to the request: if the client
// disconnects mid-stream, the job's context is cancelled and the pool
// stops at the next cell boundary. Async jobs detach from their request
// and are cancelled only by DELETE or server shutdown; observers on
// /results can come and go freely. A request's shard_shots field turns on
// intra-cell sharding (sched work stealing); cancellation aborts the
// in-flight shards of a sharded cell, which never emits a partial record.
//
// Backpressure is explicit: at most Config.MaxConcurrentJobs sweeps run at
// once, at most Config.QueueDepth wait behind them, and submissions beyond
// that are rejected with 429 rather than queued unboundedly. Finished jobs
// are retained (bounded by Config.RetainJobs) for status and replay, then
// evicted oldest-first.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/decoder"
	"repro/internal/fabric"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

// Config tunes a Server. The zero value serves with a fresh default
// engine, 2 concurrent sweeps, a queue of 8, and 64 retained jobs.
type Config struct {
	// Engine is the process-wide Monte-Carlo engine shared by every
	// request (a fresh montecarlo.NewEngine if nil). Sharing it is the
	// point of the server: its structure cache is what lets repeated
	// sweeps skip circuit and decoding-graph builds.
	Engine *montecarlo.Engine
	// MaxConcurrentJobs bounds sweeps running at once (default 2). Each
	// job gets its own scheduler pool, so this times DefaultPoolWidth is
	// the worst-case decode parallelism.
	MaxConcurrentJobs int
	// QueueDepth bounds jobs waiting for a run slot; once
	// running+queued reaches MaxConcurrentJobs+QueueDepth, POST
	// /v1/sweeps returns 429. Zero means the default of 8; a negative
	// value disables queueing entirely (submissions are rejected
	// whenever every run slot is busy).
	QueueDepth int
	// DefaultPoolWidth is the scheduler pool width for requests that do
	// not set Jobs (0 = GOMAXPROCS).
	DefaultPoolWidth int
	// RetainJobs bounds finished jobs kept for status/replay (default 64);
	// older finished jobs are evicted as new ones finish.
	RetainJobs int
	// Fabric, when set, enables "mode":"fabric" submissions: such sweeps
	// are leased to the coordinator's registered workers instead of the
	// local pool, and GET /v1/stats grows a fabric section. The hub's
	// lifecycle belongs to the caller (vlqserve closes it on shutdown).
	Fabric *fabric.Hub
}

func (c Config) withDefaults() Config {
	if c.Engine == nil {
		c.Engine = montecarlo.NewEngine()
	}
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 64
	}
	return c
}

// Server is the HTTP front end. It implements http.Handler; mount it on
// any mux or serve it directly. Create with NewServer and Close it when
// done to cancel outstanding jobs.
type Server struct {
	cfg     Config
	en      *montecarlo.Engine
	mux     *http.ServeMux
	baseCtx context.Context
	stop    context.CancelFunc
	slots   chan struct{}

	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // submission order, for oldest-first eviction
	submitted int64
	nextID    int

	// Process-wide decode pipeline counters, accumulated per finished cell
	// across every job and surfaced by GET /v1/stats.
	decShots   atomic.Int64
	decSkipped atomic.Int64
	decDedup   atomic.Int64
	// Decoder-internal stage counters (growth rounds, tree phases, ...),
	// summed over every finished cell; a struct, so guarded by its own lock
	// rather than per-field atomics.
	decStatsMu sync.Mutex
	decStats   decoder.DecoderStats

	// beforeRun, when non-nil, gates each job between acquiring its run
	// slot and executing cells — a test hook for holding jobs in the
	// running state deterministically. It must return promptly once the
	// context is done.
	beforeRun func(context.Context) error
}

// NewServer builds a Server from cfg (zero value is usable).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		en:      cfg.Engine,
		mux:     http.NewServeMux(),
		baseCtx: ctx,
		stop:    cancel,
		slots:   make(chan struct{}, cfg.MaxConcurrentJobs),
		jobs:    make(map[string]*job),
	}
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine returns the server's shared Monte-Carlo engine.
func (s *Server) Engine() *montecarlo.Engine { return s.en }

// Close cancels every outstanding job and makes further submissions fail
// with 503. In-flight streams end after their current cell.
func (s *Server) Close() { s.stop() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// counts tallies the registry by state. Callers hold s.mu.
func (s *Server) countsLocked() JobCounts {
	c := JobCounts{Retained: len(s.jobs), Submitted: s.submitted}
	for _, j := range s.jobs {
		switch j.stateNow() {
		case StateQueued:
			c.Queued++
		case StateRunning:
			c.Running++
		}
	}
	return c
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// evictFinished drops the oldest finished jobs beyond the retention cap.
// Queued and running jobs are never evicted.
func (s *Server) evictFinished() {
	s.mu.Lock()
	defer s.mu.Unlock()
	finished := 0
	for _, j := range s.order {
		if terminal(j.stateNow()) {
			finished++
		}
	}
	for i := 0; finished > s.cfg.RetainJobs && i < len(s.order); {
		j := s.order[i]
		if !terminal(j.stateNow()) {
			i++
			continue
		}
		delete(s.jobs, j.id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		finished--
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.baseCtx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	typ, cells, err := buildCells(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode := req.Mode
	switch mode {
	case "":
		mode = "local"
	case "local":
	case "fabric":
		if s.cfg.Fabric == nil {
			writeError(w, http.StatusBadRequest,
				"fabric mode requested but this server has no fabric coordinator (start with -fabric-listen)")
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want %q or %q)", mode, "local", "fabric")
		return
	}
	width := req.Jobs
	if width == 0 {
		width = s.cfg.DefaultPoolWidth
	}

	// Admission control: reject rather than queue unboundedly. The sum is
	// what bounds the system — comparing running and queued separately
	// would admit a whole burst that lands before any job's execute
	// goroutine has moved it to running.
	s.mu.Lock()
	c := s.countsLocked()
	if c.Running+c.Queued >= s.cfg.MaxConcurrentJobs+s.cfg.QueueDepth {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d running, %d queued)", c.Running, c.Queued)
		return
	}
	s.nextID++
	s.submitted++
	jb := newJob(fmt.Sprintf("sw-%06d", s.nextID), typ, mode, cells, width, req.ShardShots, s.baseCtx)
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb)
	s.mu.Unlock()

	go s.execute(jb)

	if q := r.URL.Query(); q.Get("async") == "1" || q.Get("async") == "true" {
		w.Header().Set("X-Sweep-Job", jb.id)
		writeJSON(w, http.StatusAccepted, jb.status())
		return
	}
	// Synchronous submission: the stream owns the job — a client that
	// disconnects mid-stream cancels it.
	s.streamJob(w, r, jb, true)
}

// execute drives one job through its lifecycle on a background goroutine:
// wait for a run slot, run the sweep through a scheduler sharing the
// server engine, and record the terminal state.
func (s *Server) execute(jb *job) {
	select {
	case s.slots <- struct{}{}:
	case <-jb.ctx.Done():
		jb.finish(StateCancelled, jb.ctx.Err())
		s.evictFinished()
		return
	}
	defer func() { <-s.slots }()
	jb.setRunning()
	if s.beforeRun != nil {
		if err := s.beforeRun(jb.ctx); err != nil {
			jb.finish(StateCancelled, err)
			s.evictFinished()
			return
		}
	}
	onResult := func(r sched.CellResult) {
		s.decShots.Add(int64(r.Result.Trials))
		s.decSkipped.Add(int64(r.Result.Skipped))
		s.decDedup.Add(int64(r.Result.DedupHits))
		s.decStatsMu.Lock()
		s.decStats.Add(r.Result.Stats)
		s.decStatsMu.Unlock()
		jb.appendCell(cellRecord(r))
	}
	var err error
	if jb.mode == "fabric" {
		// Fabric mode leases the same unit queue to the coordinator's
		// workers; the merged cells stream back through the identical
		// callback, bit-identical to the local path.
		var run *fabric.Run
		run, err = s.cfg.Fabric.Submit(jb.cells, fabric.RunOptions{
			ShardShots: jb.shardShots,
			OnResult:   onResult,
		})
		if err == nil {
			_, err = run.Wait(jb.ctx)
		}
	} else {
		scheduler := sched.New(s.en, sched.Options{
			Jobs:       jb.poolWidth,
			ShardShots: jb.shardShots,
			OnResult:   onResult,
		})
		// Cancellation granularity: sched observes jb.ctx at unit boundaries —
		// a DELETE or an owning client's disconnect skips unstarted cells and
		// aborts the in-flight shards of a sharded cell, which is then dropped
		// without a partial CellRecord.
		_, err = scheduler.RunContext(jb.ctx, jb.cells)
	}
	switch {
	case jb.ctx.Err() != nil:
		jb.finish(StateCancelled, jb.ctx.Err())
	case err != nil:
		jb.finish(StateFailed, err)
	default:
		jb.finish(StateDone, nil)
	}
	s.evictFinished()
}

// streamJob writes the job's cells to the client as they finish — NDJSON
// by default, SSE with ?stream=sse — replaying anything already recorded,
// and ends with the terminal JobStatus. When own is true the client's
// disconnect cancels the job (synchronous POST); observers pass false.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, jb *job, own bool) {
	sse := r.URL.Query().Get("stream") == "sse"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Sweep-Job", jb.id)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush() // deliver headers (and the job id) before the first cell lands

	enc := json.NewEncoder(w)
	writeEvent := func(event string, v any) {
		if !sse {
			enc.Encode(v)
			return
		}
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	}

	cursor := 0
	for {
		recs, state, updated := jb.next(cursor)
		for _, rec := range recs {
			writeEvent("cell", rec)
		}
		cursor += len(recs)
		if len(recs) > 0 {
			flush()
		}
		if terminal(state) {
			writeEvent("done", jb.status())
			flush()
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			if own {
				jb.cancel()
			}
			return
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such sweep job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such sweep job %q", r.PathValue("id"))
		return
	}
	jb.cancel()
	// The pool observes cancellation at the next cell boundary, so the
	// status returned here may still read "running"; poll GET until it
	// settles on "cancelled" (or "done" if completion won the race).
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such sweep job %q", r.PathValue("id"))
		return
	}
	s.streamJob(w, r, jb, false)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := s.countsLocked()
	s.mu.Unlock()
	s.decStatsMu.Lock()
	decStats := s.decStats
	s.decStatsMu.Unlock()
	resp := StatsResponse{
		Engine: s.en.CacheStats(),
		Decode: DecodeStats{
			Shots:     s.decShots.Load(),
			Skipped:   s.decSkipped.Load(),
			DedupHits: s.decDedup.Load(),
			Decoder:   decStats,
		},
		Jobs: counts,
	}
	if s.cfg.Fabric != nil {
		fs := s.cfg.Fabric.Stats()
		resp.Fabric = &fs
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
