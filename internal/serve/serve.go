// Package serve is the sweep-serving front end: an HTTP/JSON interface
// that turns the library's scheduler into a long-running service for the
// paper's threshold (Fig. 11) and sensitivity (Fig. 12) experiments.
//
// One process-wide montecarlo.Engine backs every request, so the
// structure/noise split pays off across clients: the first sweep of a
// (scheme, distance, rounds) experiment builds its circuit, fault
// Structure, and decoding-graph topology; every later sweep touching the
// same experiment — from any client — reweights cached structures and
// skips the builds entirely. Above the engine sit two more layers of
// dedup, both keyed by the canonical cell spec (montecarlo.CellKey plus
// the sweep-grid coordinates): a durable result ledger that answers
// previously finished cells without any engine work (file-backed ledgers
// replay across restarts), and request coalescing, which shares one
// execution between identical cells in flight on concurrent jobs. All
// three layers are bit-invisible: a cell served from the ledger or a
// coalesced run is byte-identical to running it cold, which is exactly
// why results are safe to memoize. GET /v1/stats exposes the engine,
// ledger, and coalescing counters; GET /metrics serves the same (and
// more) in Prometheus text format.
//
// The API:
//
//	POST   /v1/sweeps              submit a sweep (SweepRequest JSON);
//	                               streams CellRecord NDJSON lines (or SSE
//	                               with ?stream=sse) as cells finish and
//	                               ends with the JobStatus; with ?async=1
//	                               returns 202 + JobStatus immediately
//	GET    /v1/sweeps/{id}         JobStatus snapshot
//	GET    /v1/sweeps/{id}/results replay finished cells and follow live
//	DELETE /v1/sweeps/{id}         cancel (observed at the next cell boundary)
//	GET    /v1/stats               engine cache, decode pipeline, ledger,
//	                               and job registry counters
//	GET    /metrics                Prometheus text exposition
//	GET    /healthz                liveness
//
// A synchronous POST ties the job to the request: if the client
// disconnects mid-stream, the job's context is cancelled and the pool
// stops at the next cell boundary. Async jobs detach from their request
// and are cancelled only by DELETE or server shutdown; observers on
// /results can come and go freely. A request's shard_shots field turns on
// intra-cell sharding (sched work stealing); cancellation aborts the
// in-flight shards of a sharded cell, which never emits a partial record.
//
// Backpressure is explicit: at most Config.MaxConcurrentJobs sweeps run at
// once, at most Config.QueueDepth wait behind them, and submissions beyond
// that are rejected with 429 rather than queued unboundedly. Finished jobs
// are retained (bounded by Config.RetainJobs) for status and replay, then
// evicted oldest-first.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/decoder"
	"repro/internal/fabric"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

// maxBodyBytes bounds a submission body; larger bodies are rejected with
// 413 naming the limit.
const maxBodyBytes = 1 << 20

// Config tunes a Server. The zero value serves with a fresh default
// engine, an in-memory result ledger, 2 concurrent sweeps, a queue of 8,
// and 64 retained jobs.
type Config struct {
	// Engine is the process-wide Monte-Carlo engine shared by every
	// request (a fresh montecarlo.NewEngine if nil). Sharing it is the
	// point of the server: its structure cache is what lets repeated
	// sweeps skip circuit and decoding-graph builds.
	Engine *montecarlo.Engine
	// Ledger is the durable result store consulted before any cell runs
	// and appended to as cells finish (nil: a fresh in-memory ledger, so
	// repeat cells are always deduplicated for the life of the process).
	// Pass OpenFileLedger's result for persistence across restarts. The
	// ledger's lifecycle belongs to the caller — Server.Close does not
	// close it (vlqserve closes its file ledger on shutdown).
	Ledger Ledger
	// MaxConcurrentJobs bounds sweeps running at once (default 2). Each
	// job gets its own scheduler pool, so this times DefaultPoolWidth is
	// the worst-case decode parallelism.
	MaxConcurrentJobs int
	// QueueDepth bounds jobs waiting for a run slot; once
	// running+queued reaches MaxConcurrentJobs+QueueDepth, POST
	// /v1/sweeps returns 429. Zero means the default of 8; a negative
	// value disables queueing entirely (submissions are rejected
	// whenever every run slot is busy).
	QueueDepth int
	// DefaultPoolWidth is the scheduler pool width for requests that do
	// not set Jobs (0 = GOMAXPROCS).
	DefaultPoolWidth int
	// RetainJobs bounds finished jobs kept for status/replay (default 64);
	// older finished jobs are evicted as new ones finish.
	RetainJobs int
	// Fabric, when set, enables "mode":"fabric" submissions: such sweeps
	// are leased to the coordinator's registered workers instead of the
	// local pool, and GET /v1/stats grows a fabric section. The hub's
	// lifecycle belongs to the caller (vlqserve closes it on shutdown).
	Fabric *fabric.Hub
}

func (c Config) withDefaults() Config {
	if c.Engine == nil {
		c.Engine = montecarlo.NewEngine()
	}
	if c.Ledger == nil {
		c.Ledger = NewMemLedger()
	}
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 64
	}
	return c
}

// Server is the HTTP front end. It implements http.Handler; mount it on
// any mux or serve it directly. Create with NewServer and Close it when
// done to cancel outstanding jobs.
type Server struct {
	cfg     Config
	en      *montecarlo.Engine
	ledger  Ledger
	coal    *coalescer
	met     *serverMetrics
	mux     *http.ServeMux
	baseCtx context.Context
	stop    context.CancelFunc
	slots   chan struct{}

	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job // submission order, for oldest-first eviction
	submitted int64
	nextID    int

	// Process-wide decode pipeline counters, accumulated per engine-run
	// cell across every job and surfaced by GET /v1/stats. Ledger-served
	// and coalesced cells do not add here — they did no decode work.
	decShots   atomic.Int64
	decSkipped atomic.Int64
	decDedup   atomic.Int64
	// Decoder-internal stage counters (growth rounds, tree phases, ...),
	// summed over every engine-run cell; a struct, so guarded by its own
	// lock rather than per-field atomics.
	decStatsMu sync.Mutex
	decStats   decoder.DecoderStats

	// beforeRun, when non-nil, gates each job between acquiring its run
	// slot and executing cells — a test hook for holding jobs in the
	// running state deterministically. It must return promptly once the
	// context is done.
	beforeRun func(context.Context) error
}

// NewServer builds a Server from cfg (zero value is usable).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		en:      cfg.Engine,
		ledger:  cfg.Ledger,
		coal:    newCoalescer(),
		mux:     http.NewServeMux(),
		baseCtx: ctx,
		stop:    cancel,
		slots:   make(chan struct{}, cfg.MaxConcurrentJobs),
		jobs:    make(map[string]*job),
	}
	s.met = newServerMetrics(s)
	s.mux.HandleFunc("POST /v1/sweeps", s.timed("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.timed("status", s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.timed("cancel", s.handleCancel))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.timed("results", s.handleResults))
	s.mux.HandleFunc("GET /v1/stats", s.timed("stats", s.handleStats))
	s.mux.Handle("GET /metrics", s.met.reg)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Engine returns the server's shared Monte-Carlo engine.
func (s *Server) Engine() *montecarlo.Engine { return s.en }

// Metrics returns the server's metric registry, for callers embedding the
// server that want to register their own families on the same /metrics
// exposition.
func (s *Server) Metrics() *Registry { return s.met.reg }

// Close cancels every outstanding job and makes further submissions fail
// with 503. In-flight streams end after their current cell. The engine
// and ledger are left open — their lifecycles belong to the caller.
func (s *Server) Close() { s.stop() }

// timed wraps a handler with the per-request latency histogram. For a
// synchronous submit the observation covers the whole stream — the
// latency a client actually experiences — which is what cmd/vlqload
// measures from the other side.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.met.requests.Observe(time.Since(start).Seconds(), endpoint)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// counts tallies the registry by state. Callers hold s.mu.
func (s *Server) countsLocked() JobCounts {
	c := JobCounts{Retained: len(s.jobs), Submitted: s.submitted}
	for _, j := range s.jobs {
		switch j.stateNow() {
		case StateQueued:
			c.Queued++
		case StateRunning:
			c.Running++
		}
	}
	return c
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// evictFinished drops the oldest finished jobs beyond the retention cap in
// one compaction pass over the order slice (the scan-and-splice it
// replaces was O(n²) under churn). Queued and running jobs are never
// evicted; evicted jobs get a belt-and-braces cancel so no evicted job
// can leave a context registered on baseCtx.
func (s *Server) evictFinished() {
	s.mu.Lock()
	defer s.mu.Unlock()
	finished := 0
	for _, j := range s.order {
		if terminal(j.stateNow()) {
			finished++
		}
	}
	excess := finished - s.cfg.RetainJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, j := range s.order {
		if excess > 0 && terminal(j.stateNow()) {
			delete(s.jobs, j.id)
			j.cancel()
			excess--
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(s.order); i++ {
		s.order[i] = nil // release the tail for GC
	}
	s.order = kept
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.baseCtx.Err() != nil {
		s.met.submissions.Inc("unknown", "unknown", "shutdown")
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.submissions.Inc("unknown", "unknown", "too_large")
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", tooBig.Limit)
			return
		}
		s.met.submissions.Inc("unknown", "unknown", "invalid")
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	typ, cells, err := buildCells(req)
	if err != nil {
		s.met.submissions.Inc("unknown", "unknown", "invalid")
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode := req.Mode
	switch mode {
	case "":
		mode = "local"
	case "local":
	case "fabric":
		if s.cfg.Fabric == nil {
			s.met.submissions.Inc(typ, mode, "invalid")
			writeError(w, http.StatusBadRequest,
				"fabric mode requested but this server has no fabric coordinator (start with -fabric-listen)")
			return
		}
	default:
		s.met.submissions.Inc(typ, "unknown", "invalid")
		writeError(w, http.StatusBadRequest, "unknown mode %q (want %q or %q)", mode, "local", "fabric")
		return
	}
	width := req.Jobs
	if width == 0 {
		width = s.cfg.DefaultPoolWidth
	}

	// Admission control: reject rather than queue unboundedly. The sum is
	// what bounds the system — comparing running and queued separately
	// would admit a whole burst that lands before any job's execute
	// goroutine has moved it to running.
	s.mu.Lock()
	c := s.countsLocked()
	if c.Running+c.Queued >= s.cfg.MaxConcurrentJobs+s.cfg.QueueDepth {
		s.mu.Unlock()
		s.met.submissions.Inc(typ, mode, "overloaded")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"job queue full (%d running, %d queued)", c.Running, c.Queued)
		return
	}
	s.nextID++
	s.submitted++
	jb := newJob(fmt.Sprintf("sw-%06d", s.nextID), typ, mode, cells, width, req.ShardShots, s.baseCtx)
	jb.noCache = req.NoCache
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb)
	s.mu.Unlock()
	s.met.submissions.Inc(typ, mode, "accepted")

	go s.execute(jb)

	if q := r.URL.Query(); q.Get("async") == "1" || q.Get("async") == "true" {
		w.Header().Set("X-Sweep-Job", jb.id)
		writeJSON(w, http.StatusAccepted, jb.status())
		return
	}
	// Synchronous submission: the stream owns the job — a client that
	// disconnects mid-stream cancels it.
	s.streamJob(w, r, jb, true)
}

// execute drives one job through its lifecycle on a background goroutine:
// wait for a run slot, resolve its cells (ledger, coalesced, or engine),
// and record the terminal state.
func (s *Server) execute(jb *job) {
	select {
	case s.slots <- struct{}{}:
	case <-jb.ctx.Done():
		jb.finish(StateCancelled, jb.ctx.Err())
		s.met.jobs.Observe(time.Since(jb.created).Seconds(), StateCancelled)
		s.evictFinished()
		return
	}
	defer func() { <-s.slots }()
	jb.setRunning()
	var err error
	if s.beforeRun != nil {
		err = s.beforeRun(jb.ctx)
	}
	if err == nil {
		err = s.runCells(jb)
	}
	var outcome string
	switch {
	case jb.ctx.Err() != nil:
		jb.finish(StateCancelled, jb.ctx.Err())
		outcome = StateCancelled
	case err != nil:
		jb.finish(StateFailed, err)
		outcome = StateFailed
	default:
		jb.finish(StateDone, nil)
		outcome = StateDone
	}
	s.met.jobs.Observe(time.Since(jb.created).Seconds(), outcome)
	s.evictFinished()
}

// Cell provenance labels (CellRecord.Source and the metrics source label;
// the engine's wire form is "" so pre-ledger clients see unchanged bytes).
const (
	sourceEngine    = "engine"
	sourceLedger    = "ledger"
	sourceCoalesced = "coalesced"
)

// runCells resolves every cell of a job, cheapest layer first: the
// ledger answers finished cells instantly, the coalescer subscribes to
// identical cells already in flight on other jobs, and only the
// remainder — cells this job leads — touch the engine (or fabric). The
// loop re-plans cells whose leader aborted, so every cell is eventually
// served or the job's context ends; a cell key never runs on two
// executors at once.
func (s *Server) runCells(jb *job) error {
	n := len(jb.cells)
	keys := make([]string, n)
	for i := range jb.cells {
		keys[i] = cellKey(jb.cells[i])
	}
	resolved := make([]bool, n)

	// emit stamps the job-local index and provenance on a canonical
	// record and streams it.
	emit := func(i int, rec CellRecord, source string) {
		rec.Index = i
		if source == sourceEngine {
			rec.Source = "" // wire default: engine-run cells are unmarked
		} else {
			rec.Source = source
		}
		resolved[i] = true
		jb.appendCell(rec)
		s.met.cells.Inc(source)
		s.met.cellWait.Observe(time.Since(jb.created).Seconds(), source)
	}

	for {
		if err := jb.ctx.Err(); err != nil {
			return err
		}
		// Plan every unresolved cell. entries[i] is the pending-map entry a
		// leading or following cell holds.
		var owned, waits []int
		entries := make(map[int]*pendingCell)
		for i := range n {
			if resolved[i] {
				continue
			}
			if jb.noCache {
				owned = append(owned, i)
				continue
			}
			switch plan, rec, e := s.coal.planCell(s.ledger, keys[i]); plan {
			case planLedger:
				emit(i, rec, sourceLedger)
			case planLead:
				owned = append(owned, i)
				entries[i] = e
			case planFollow:
				waits = append(waits, i)
				entries[i] = e
			}
		}
		if len(owned) == 0 && len(waits) == 0 {
			return nil
		}

		var runErr error
		if len(owned) > 0 {
			sub := make([]sched.Job, len(owned))
			for k, i := range owned {
				sub[k] = jb.cells[i]
			}
			completed := make([]bool, len(owned))
			onResult := func(r sched.CellResult) {
				i := owned[r.Index]
				completed[r.Index] = true
				s.decShots.Add(int64(r.Result.Trials))
				s.decSkipped.Add(int64(r.Result.Skipped))
				s.decDedup.Add(int64(r.Result.DedupHits))
				s.decStatsMu.Lock()
				s.decStats.Add(r.Result.Stats)
				s.decStatsMu.Unlock()
				rec := canonicalRecord(cellRecord(r))
				if e := entries[i]; e != nil {
					// Ledger first, then retire the pending entry: a planner
					// probing between the two still finds the record.
					if rec.Error == "" {
						s.ledger.Put(keys[i], rec)
					}
					s.coal.resolve(keys[i], e, rec)
				}
				emit(i, rec, sourceEngine)
			}
			if jb.mode == "fabric" {
				// Fabric mode leases the same unit queue to the coordinator's
				// workers; the merged cells stream back through the identical
				// callback, bit-identical to the local path.
				var run *fabric.Run
				run, runErr = s.cfg.Fabric.Submit(sub, fabric.RunOptions{
					ShardShots: jb.shardShots,
					OnResult:   onResult,
				})
				if runErr == nil {
					_, runErr = run.Wait(jb.ctx)
				}
			} else {
				scheduler := sched.New(s.en, sched.Options{
					Jobs:       jb.poolWidth,
					ShardShots: jb.shardShots,
					OnResult:   onResult,
				})
				// Cancellation granularity: sched observes jb.ctx at unit
				// boundaries — a DELETE or an owning client's disconnect skips
				// unstarted cells and aborts the in-flight shards of a sharded
				// cell, which is then dropped without a partial CellRecord.
				_, runErr = scheduler.RunContext(jb.ctx, sub)
			}
			// Cells this job led but never finished (cancel, failure) must
			// release their pending entries so a follower can take over.
			for k, i := range owned {
				if !completed[k] {
					if e := entries[i]; e != nil {
						s.coal.abort(keys[i], e)
					}
				}
			}
		}

		for _, i := range waits {
			e := entries[i]
			select {
			case <-e.done:
				if e.ok {
					s.coal.hits.Add(1)
					emit(i, e.rec, sourceCoalesced)
				}
				// Leader aborted: leave the cell unresolved; the next pass
				// re-plans it (and may claim leadership).
			case <-jb.ctx.Done():
				return jb.ctx.Err()
			}
		}
		if runErr != nil {
			return runErr
		}
	}
}

// streamJob writes the job's cells to the client as they finish — NDJSON
// by default, SSE with ?stream=sse — replaying anything already recorded,
// and ends with the terminal JobStatus. When own is true the client's
// disconnect cancels the job (synchronous POST); observers pass false.
// Write failures end the stream immediately (cancelling the job only when
// own): a dead connection must not keep the encoder goroutine alive until
// the job ends, and a mid-write failure must not be followed by more
// writes onto a torn line.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, jb *job, own bool) {
	sse := r.URL.Query().Get("stream") == "sse"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Sweep-Job", jb.id)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush() // deliver headers (and the job id) before the first cell lands

	enc := json.NewEncoder(w)
	writeEvent := func(event string, v any) error {
		if !sse {
			return enc.Encode(v)
		}
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		return err
	}
	fail := func() {
		if own {
			jb.cancel()
		}
	}

	cursor := 0
	for {
		recs, state, updated := jb.next(cursor)
		for _, rec := range recs {
			if err := writeEvent("cell", rec); err != nil {
				fail()
				return
			}
		}
		cursor += len(recs)
		if len(recs) > 0 {
			flush()
		}
		if terminal(state) {
			if err := writeEvent("done", jb.status()); err != nil {
				fail()
				return
			}
			flush()
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			fail()
			return
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such sweep job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such sweep job %q", r.PathValue("id"))
		return
	}
	jb.cancel()
	// The pool observes cancellation at the next cell boundary, so the
	// status returned here may still read "running"; poll GET until it
	// settles on "cancelled" (or "done" if completion won the race).
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "no such sweep job %q", r.PathValue("id"))
		return
	}
	s.streamJob(w, r, jb, false)
}

// ledgerSection assembles the /v1/stats ledger block.
func (s *Server) ledgerSection() LedgerSection {
	return LedgerSection{
		LedgerStats:     s.ledger.Stats(),
		CoalesceHits:    s.coal.hits.Load(),
		CoalescePending: s.coal.pendingCount(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := s.countsLocked()
	s.mu.Unlock()
	s.decStatsMu.Lock()
	decStats := s.decStats
	s.decStatsMu.Unlock()
	resp := StatsResponse{
		Engine: s.en.CacheStats(),
		Decode: DecodeStats{
			Shots:     s.decShots.Load(),
			Skipped:   s.decSkipped.Load(),
			DedupHits: s.decDedup.Load(),
			Decoder:   decStats,
		},
		Jobs:   counts,
		Ledger: s.ledgerSection(),
	}
	if s.cfg.Fabric != nil {
		fs := s.cfg.Fabric.Stats()
		resp.Fabric = &fs
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
