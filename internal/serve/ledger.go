package serve

// The durable result ledger: a content-addressed store of finished sweep
// cells keyed by their canonical spec (see cellKey / montecarlo.CellKey).
// Results are deterministic by construction — equal keys mean bit-equal
// cells at any pool width, shard plan, or fabric worker count — so the
// ledger can answer a resubmitted cell without touching the engine, and a
// file-backed ledger replays every finished cell across process restarts.
//
// Records are stored canonicalized (Index and Source cleared; cells that
// errored are never stored), and the server re-stamps the job-local index
// and "ledger" source on the way out. The JSONL backend is append-only:
// one {"key":...,"cell":...} object per line, the whole file replayed
// into memory on open with last-entry-wins semantics, torn or corrupt
// trailing lines skipped (a crash mid-append must not poison the store).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// LedgerStats is the observable state of a Ledger, surfaced in the
// "ledger" section of GET /v1/stats and re-exported on /metrics.
type LedgerStats struct {
	// Backend names the implementation: "memory" or the backing file path.
	Backend string `json:"backend"`
	// Entries is the current number of distinct cell keys stored.
	Entries int `json:"entries"`
	// Hits and Misses count Get lookups since the process started (replayed
	// entries served after a restart count as hits like any other).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Appends counts records accepted by Put; Errors counts backend write
	// failures (the in-memory copy stays authoritative when the disk write
	// fails, so serving continues degraded rather than failing requests).
	Appends int64 `json:"appends"`
	Errors  int64 `json:"errors"`
}

// Ledger is the durable result store behind the serving layer. Get and
// Put must be safe for concurrent use. Implementations must treat stored
// records as immutable.
type Ledger interface {
	// Get returns the stored record for a canonical cell key.
	Get(key string) (CellRecord, bool)
	// Put stores a canonicalized record. Backend failures are absorbed
	// (counted in Stats().Errors); the in-memory view always updates.
	Put(key string, rec CellRecord)
	// Stats returns a point-in-time snapshot of the counters.
	Stats() LedgerStats
	// Close releases backend resources (a no-op for the memory ledger).
	Close() error
}

// memLedger is the in-memory ledger every Server runs by default, and the
// core the file backend builds on.
type memLedger struct {
	backend string
	mu      sync.Mutex
	cells   map[string]CellRecord
	hits    atomic.Int64
	misses  atomic.Int64
	appends atomic.Int64
	errors  atomic.Int64
	// persist, when non-nil, is called under mu with each new record —
	// the file backend's append hook. A false return counts an error.
	persist func(key string, rec CellRecord) error
}

// NewMemLedger returns an empty in-memory ledger: coalescing-adjacent
// memoization for the life of the process, no persistence.
func NewMemLedger() Ledger {
	return &memLedger{backend: "memory", cells: make(map[string]CellRecord)}
}

func (l *memLedger) Get(key string) (CellRecord, bool) {
	l.mu.Lock()
	rec, ok := l.cells[key]
	l.mu.Unlock()
	if ok {
		l.hits.Add(1)
	} else {
		l.misses.Add(1)
	}
	return rec, ok
}

func (l *memLedger) Put(key string, rec CellRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.cells[key]; dup {
		// Deterministic results make duplicate Puts byte-equal re-derivations
		// (a no_cache run, a coalescing race); the first write stands.
		return
	}
	l.cells[key] = rec
	l.appends.Add(1)
	if l.persist != nil {
		if err := l.persist(key, rec); err != nil {
			l.errors.Add(1)
		}
	}
}

func (l *memLedger) Stats() LedgerStats {
	l.mu.Lock()
	entries := len(l.cells)
	l.mu.Unlock()
	return LedgerStats{
		Backend: l.backend,
		Entries: entries,
		Hits:    l.hits.Load(),
		Misses:  l.misses.Load(),
		Appends: l.appends.Load(),
		Errors:  l.errors.Load(),
	}
}

func (l *memLedger) Close() error { return nil }

// ledgerEntry is one JSONL line of the file backend.
type ledgerEntry struct {
	Key  string     `json:"key"`
	Cell CellRecord `json:"cell"`
}

// fileLedger is the JSONL-backed ledger: memLedger semantics plus an
// append-only log replayed on open.
type fileLedger struct {
	memLedger
	f *os.File
}

// OpenFileLedger opens (creating if absent) the append-only JSONL ledger
// at path and replays its entries: submitting a cell the file already
// holds is served from it without engine work, across restarts. Corrupt
// or torn lines are skipped, not fatal.
func OpenFileLedger(path string) (Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := &fileLedger{
		memLedger: memLedger{backend: path, cells: make(map[string]CellRecord)},
		f:         f,
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var e ledgerEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			continue // torn tail from a crash mid-append, or hand-edited junk
		}
		l.cells[e.Key] = e.Cell
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: replaying %s: %w", path, err)
	}
	l.persist = l.appendLine
	return l, nil
}

// appendLine writes one entry; called under memLedger.mu, so lines never
// interleave.
func (l *fileLedger) appendLine(key string, rec CellRecord) error {
	buf, err := json.Marshal(ledgerEntry{Key: key, Cell: rec})
	if err != nil {
		return err
	}
	_, err = l.f.Write(append(buf, '\n'))
	return err
}

func (l *fileLedger) Close() error { return l.f.Close() }

// canonicalRecord strips the job-local fields from a cell record before
// it enters the ledger or a coalescing handoff: Index is the submitting
// job's cell position and Source describes how *that* job obtained the
// bytes; neither is part of the cell's identity.
func canonicalRecord(rec CellRecord) CellRecord {
	rec.Index = 0
	rec.Source = ""
	return rec
}
