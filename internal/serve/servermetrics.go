package serve

// serverMetrics is the Server's /metrics family set: request-path counters
// and histograms fed inline by the handlers, plus scrape-time re-exports
// of the counters that already live elsewhere (engine cache, decode
// atomics, ledger, coalescer, job registry) so one scrape shows the whole
// serving stack without double bookkeeping.

import "sync/atomic"

type serverMetrics struct {
	reg *Registry

	// submissions counts POST /v1/sweeps outcomes: accepted, invalid,
	// too_large (413), overloaded (429), shutdown (503). Type and mode are
	// "unknown" when rejection happens before they parse.
	submissions *Counter
	// cells counts completed cells by provenance: engine, ledger, coalesced.
	cells *Counter
	// cellWait observes submission-to-cell-completion latency by
	// provenance; ledger hits land in the sub-millisecond buckets, which is
	// the dashboard view of what the ledger buys.
	cellWait *Histogram
	// requests observes wall time per endpoint (a synchronous submit's
	// observation spans its whole stream).
	requests *Histogram
	// jobs observes job lifetime (created -> terminal) by outcome.
	jobs *Histogram
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := NewRegistry()
	m := &serverMetrics{
		reg: reg,
		submissions: reg.NewCounter("vlq_serve_submissions_total",
			"Sweep submissions by experiment type, executor mode, and admission outcome.",
			"type", "mode", "outcome"),
		cells: reg.NewCounter("vlq_serve_cells_total",
			"Completed sweep cells by provenance (engine, ledger, coalesced).",
			"source"),
		cellWait: reg.NewHistogram("vlq_serve_cell_wait_seconds",
			"Latency from job submission to cell completion, by provenance.",
			DefaultLatencyBuckets, "source"),
		requests: reg.NewHistogram("vlq_serve_request_seconds",
			"HTTP request wall time by endpoint (submit spans the full stream).",
			DefaultLatencyBuckets, "endpoint"),
		jobs: reg.NewHistogram("vlq_serve_job_seconds",
			"Job lifetime from submission to terminal state, by outcome.",
			DefaultLatencyBuckets, "outcome"),
	}

	// Job registry and run-slot occupancy, read under s.mu at scrape time.
	countGauge := func(pick func(JobCounts) float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return pick(s.countsLocked())
		}
	}
	reg.NewGaugeFunc("vlq_serve_jobs_queued",
		"Jobs waiting for a run slot.",
		countGauge(func(c JobCounts) float64 { return float64(c.Queued) }))
	reg.NewGaugeFunc("vlq_serve_jobs_running",
		"Jobs currently holding a run slot.",
		countGauge(func(c JobCounts) float64 { return float64(c.Running) }))
	reg.NewGaugeFunc("vlq_serve_jobs_retained",
		"Jobs in the registry (queued, running, and retained finished).",
		countGauge(func(c JobCounts) float64 { return float64(c.Retained) }))
	reg.NewCounterFunc("vlq_serve_jobs_submitted_total",
		"Sweep jobs accepted since startup.",
		countGauge(func(c JobCounts) float64 { return float64(c.Submitted) }))
	reg.NewGaugeFunc("vlq_serve_run_slots_busy",
		"Run slots currently occupied.",
		func() float64 { return float64(len(s.slots)) })
	reg.NewGaugeFunc("vlq_serve_run_slots_total",
		"Run slot capacity (Config.MaxConcurrentJobs).",
		func() float64 { return float64(cap(s.slots)) })

	// Engine structure cache.
	reg.NewCounterFunc("vlq_engine_cache_builds_total",
		"Experiment structure constructions (engine cache misses).",
		func() float64 { return float64(s.en.CacheStats().Builds) })
	reg.NewCounterFunc("vlq_engine_cache_hits_total",
		"Engine cache lookups served from an existing entry.",
		func() float64 { return float64(s.en.CacheStats().Hits) })
	reg.NewCounterFunc("vlq_engine_cache_evictions_total",
		"Engine cache entries dropped by LRU eviction.",
		func() float64 { return float64(s.en.CacheStats().Evictions) })
	reg.NewGaugeFunc("vlq_engine_cache_entries",
		"Current engine cache population.",
		func() float64 { return float64(s.en.CacheStats().Entries) })

	// Decode pipeline (engine-run cells only; ledger and coalesced cells
	// did no decode work).
	atomicCounter := func(a *atomic.Int64) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	reg.NewCounterFunc("vlq_decode_shots_total",
		"Monte-Carlo shots decoded by engine-run cells.", atomicCounter(&s.decShots))
	reg.NewCounterFunc("vlq_decode_skipped_total",
		"Shots answered by the zero-defect fast path.", atomicCounter(&s.decSkipped))
	reg.NewCounterFunc("vlq_decode_dedup_hits_total",
		"Shots replayed from a duplicate syndrome in the same batch.", atomicCounter(&s.decDedup))

	// Result ledger and coalescer.
	reg.NewGaugeFunc("vlq_ledger_entries",
		"Distinct cell keys in the result ledger.",
		func() float64 { return float64(s.ledger.Stats().Entries) })
	reg.NewCounterFunc("vlq_ledger_hits_total",
		"Ledger lookups that found a stored cell.",
		func() float64 { return float64(s.ledger.Stats().Hits) })
	reg.NewCounterFunc("vlq_ledger_misses_total",
		"Ledger lookups that found nothing.",
		func() float64 { return float64(s.ledger.Stats().Misses) })
	reg.NewCounterFunc("vlq_ledger_appends_total",
		"Records accepted into the ledger.",
		func() float64 { return float64(s.ledger.Stats().Appends) })
	reg.NewCounterFunc("vlq_ledger_errors_total",
		"Ledger backend write failures (serving continues from memory).",
		func() float64 { return float64(s.ledger.Stats().Errors) })
	reg.NewCounterFunc("vlq_coalesce_hits_total",
		"Cells served from an identical in-flight execution on another job.",
		func() float64 { return float64(s.coal.hits.Load()) })
	reg.NewGaugeFunc("vlq_coalesce_pending",
		"Cell executions currently in flight in the coalescer.",
		func() float64 { return float64(s.coal.pendingCount()) })

	return m
}
