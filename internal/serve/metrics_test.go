package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Registry unit: exposition format, family ordering, series sorting,
// label escaping, histogram cumulation.
func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_ops_total", "Operations.", "kind")
	c.Add(3, "read")
	c.Inc("write")
	c.Inc(`we"ird\label`)
	reg.NewGaugeFunc("test_depth", "Depth.", func() float64 { return 4 })
	h := reg.NewHistogram("test_wait_seconds", "Wait.", []float64{0.1, 1}, "op")
	h.Observe(0.05, "get")
	h.Observe(0.5, "get")
	h.Observe(30, "get")

	var b strings.Builder
	reg.Expose(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\n",
		`test_ops_total{kind="read"} 3`,
		`test_ops_total{kind="write"} 1`,
		`test_ops_total{kind="we\"ird\\label"} 1`,
		"# TYPE test_depth gauge\ntest_depth 4",
		`test_wait_seconds_bucket{op="get",le="0.1"} 1`,
		`test_wait_seconds_bucket{op="get",le="1"} 2`,
		`test_wait_seconds_bucket{op="get",le="+Inf"} 3`,
		`test_wait_seconds_sum{op="get"} 30.55`,
		`test_wait_seconds_count{op="get"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families appear in registration order.
	if strings.Index(out, "test_ops_total") > strings.Index(out, "test_depth") {
		t.Error("families not in registration order")
	}
	if c.Value("read") != 3 || h.Count("get") != 3 {
		t.Errorf("convenience readers: counter %v, histogram %d", c.Value("read"), h.Count("get"))
	}
}

func TestRegistryRejectsDuplicatesAndBadBuckets(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup_total", "")
	for name, fn := range map[string]func(){
		"duplicate family": func() { reg.NewCounter("dup_total", "") },
		"bad buckets":      func() { reg.NewHistogram("h", "", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// End to end: after a cold sweep, a ledger-served repeat, and a rejected
// body, one /metrics scrape shows the whole story.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	readStream(t, postSweep(t, ts, "/v1/sweeps", rowBody)) // cold: engine cells
	readStream(t, postSweep(t, ts, "/v1/sweeps", rowBody)) // repeat: ledger cells
	resp := postSweep(t, ts, "/v1/sweeps", `{"bad`)        // invalid submission
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	out := string(b)

	for _, want := range []string{
		`vlq_serve_submissions_total{type="threshold",mode="local",outcome="accepted"} 2`,
		`vlq_serve_submissions_total{type="unknown",mode="unknown",outcome="invalid"} 1`,
		`vlq_serve_cells_total{source="engine"} 3`,
		`vlq_serve_cells_total{source="ledger"} 3`,
		"# TYPE vlq_serve_cell_wait_seconds histogram",
		`vlq_serve_cell_wait_seconds_count{source="ledger"} 3`,
		"# TYPE vlq_engine_cache_builds_total counter",
		"vlq_ledger_entries 3",
		"vlq_ledger_hits_total 3",
		"vlq_ledger_appends_total 3",
		"vlq_serve_jobs_submitted_total 2",
		"vlq_serve_run_slots_total 2",
		"vlq_decode_shots_total 900",
		`vlq_serve_request_seconds_count{endpoint="submit"} 3`,
		`vlq_serve_job_seconds_count{outcome="done"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", out)
	}
}

// The registry is reachable for embedding callers.
func TestServerMetricsAccessor(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	s.Metrics().NewGaugeFunc("embedder_extra", "", func() float64 { return 1 })
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "embedder_extra 1") {
		t.Error("embedded family missing from /metrics")
	}
}
