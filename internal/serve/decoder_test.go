package serve

import (
	"fmt"
	"net/http"
	"testing"
)

// The decoder request field must round-trip into every streamed CellRecord
// for both sweep types and all four kinds.
func TestDecoderSelectionRoundTrips(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want string
	}{
		{`{"scheme":"baseline","distances":[3],"rates":[0.008],"trials":200,"seed":3}`, "uf"},
		{`{"scheme":"baseline","distances":[3],"rates":[0.008],"trials":200,"seed":3,"decoder":"blossom"}`, "blossom"},
		{`{"scheme":"baseline","distances":[3],"rates":[0.008],"trials":200,"seed":3,"decoder":"mwpm"}`, "mwpm"},
		{`{"scheme":"baseline","distances":[3],"rates":[0.008],"trials":200,"seed":3,"decoder":"exact"}`, "exact"},
		{`{"type":"sensitivity","panel":"cavity-t1","distances":[3],"values":[0.001],"trials":200,"decoder":"blossom"}`, "blossom"},
	}
	for _, tc := range cases {
		resp := postSweep(t, ts, "/v1/sweeps", tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %s: HTTP %d", tc.body, resp.StatusCode)
		}
		cells, status := readStream(t, resp)
		if status.State != StateDone {
			t.Fatalf("decoder %q: job ended %q", tc.want, status.State)
		}
		if len(cells) == 0 {
			t.Fatalf("decoder %q: no cells streamed", tc.want)
		}
		for _, c := range cells {
			if c.Decoder != tc.want {
				t.Errorf("decoder %q: cell %d reports decoder %q", tc.want, c.Index, c.Decoder)
			}
			if c.Error != "" {
				t.Errorf("decoder %q: cell %d errored: %s", tc.want, c.Index, c.Error)
			}
		}
	}
}

// An unknown decoder kind is a client error for both sweep types.
func TestUnknownDecoderRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bodies := []string{
		`{"scheme":"baseline","distances":[3],"decoder":"union-find"}`,
		`{"scheme":"baseline","distances":[3],"decoder":"sparse"}`,
		`{"type":"sensitivity","panel":"cavity-t1","decoder":"nope"}`,
	}
	for _, body := range bodies {
		resp := postSweep(t, ts, "/v1/sweeps", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// Decoder choice is a noise-model-independent concern: sweeping the same
// grid under different decoder kinds shares one cached structure, so
// /v1/stats must show hits growing and builds flat after the first kind.
func TestStatsCacheHitsAcrossDecoderKinds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var afterFirst int64
	for i, dec := range []string{"uf", "blossom", "mwpm"} {
		body := fmt.Sprintf(`{"scheme":"baseline","distances":[3],"rates":[0.004,0.008],"trials":200,"seed":9,"decoder":%q}`, dec)
		resp := postSweep(t, ts, "/v1/sweeps", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %s: HTTP %d", dec, resp.StatusCode)
		}
		if _, status := readStream(t, resp); status.State != StateDone {
			t.Fatalf("%s sweep ended %q", dec, status.State)
		}
		st := getStats(t, ts)
		if i == 0 {
			afterFirst = st.Engine.Builds
			if afterFirst == 0 {
				t.Fatal("first sweep performed no structure builds")
			}
			continue
		}
		if st.Engine.Builds != afterFirst {
			t.Errorf("after %s sweep: builds %d, want the first sweep's %d (decoder kinds share structures)",
				dec, st.Engine.Builds, afterFirst)
		}
		if st.Engine.Hits == 0 {
			t.Errorf("after %s sweep: no cache hits reported", dec)
		}
	}
}
