package serve

// A dependency-free Prometheus-text-format metrics registry. The serving
// layer (and any CLI that wants the same exposition — cmd/vlqload scrapes
// it end to end) registers counters, gauges, and histograms here and
// mounts the Registry on GET /metrics. Only the subset of the exposition
// format the repo needs is implemented: counter/gauge/histogram families
// with fixed label names, HELP/TYPE comments, and deterministic output
// ordering (families in registration order, series sorted by label
// values) so scrapes diff cleanly in tests.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds an ordered set of metric families and writes them in
// Prometheus text exposition format. It implements http.Handler. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]bool
}

type family interface {
	write(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(name string, f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate family %q", name))
	}
	r.names[name] = true
	r.families = append(r.families, f)
}

// Expose writes every registered family in text exposition format.
func (r *Registry) Expose(w io.Writer) {
	r.mu.Lock()
	fams := make([]family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// ServeHTTP implements the /metrics scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.Expose(w)
}

// Counter is a monotonically increasing metric family with fixed label
// names; each distinct label-value tuple is one series.
type Counter struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	series     map[string]float64
}

// NewCounter registers a counter family.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	c := &Counter{name: name, help: help, labels: labels, series: make(map[string]float64)}
	r.add(name, c)
	return c
}

// Add increments the series identified by labelValues (one per declared
// label name, in order) by delta.
func (c *Counter) Add(delta float64, labelValues ...string) {
	key := seriesKey(c.name, c.labels, labelValues)
	c.mu.Lock()
	c.series[key] += delta
	c.mu.Unlock()
}

// Inc is Add(1, ...).
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Value returns the current value of one series (0 if never written) —
// a test and harness convenience, not part of the exposition.
func (c *Counter) Value(labelValues ...string) float64 {
	key := seriesKey(c.name, c.labels, labelValues)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.series[key]
}

func (c *Counter) write(w io.Writer) {
	c.mu.Lock()
	keys := sortedKeys(c.series)
	vals := make([]float64, len(keys))
	for i, k := range keys {
		vals[i] = c.series[k]
	}
	c.mu.Unlock()
	header(w, c.name, c.help, "counter")
	for i, k := range keys {
		fmt.Fprintf(w, "%s %s\n", k, formatValue(vals[i]))
	}
}

// funcMetric is a counter or gauge whose value is read at scrape time —
// the re-export path for counters that already live elsewhere (engine
// cache stats, decode atomics, ledger counters).
type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

// NewGaugeFunc registers a label-less gauge evaluated at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.add(name, &funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// NewCounterFunc registers a label-less counter evaluated at scrape time.
// The function must be monotonic for the exposition to be honest.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.add(name, &funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

func (m *funcMetric) write(w io.Writer) {
	header(w, m.name, m.help, m.typ)
	fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.fn()))
}

// Histogram is a cumulative-bucket histogram family with fixed label
// names. Buckets are upper bounds in increasing order; a +Inf bucket is
// implicit.
type Histogram struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	series     map[string]*histSeries
}

type histSeries struct {
	counts []uint64 // one per bucket, non-cumulative
	inf    uint64
	sum    float64
}

// NewHistogram registers a histogram family with the given bucket upper
// bounds (must be strictly increasing).
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not increasing", name))
		}
	}
	h := &Histogram{name: name, help: help, labels: labels,
		buckets: append([]float64(nil), buckets...), series: make(map[string]*histSeries)}
	r.add(name, h)
	return h
}

// Observe records one value in the series identified by labelValues.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	key := labelPairs(h.labels, labelValues)
	h.mu.Lock()
	s := h.series[key]
	if s == nil {
		s = &histSeries{counts: make([]uint64, len(h.buckets))}
		h.series[key] = s
	}
	placed := false
	for i, ub := range h.buckets {
		if v <= ub {
			s.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		s.inf++
	}
	s.sum += v
	h.mu.Unlock()
}

// Count returns the total observation count of one series — a test and
// harness convenience.
func (h *Histogram) Count(labelValues ...string) uint64 {
	key := labelPairs(h.labels, labelValues)
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.series[key]
	if s == nil {
		return 0
	}
	n := s.inf
	for _, c := range s.counts {
		n += c
	}
	return n
}

func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	keys := make([]string, 0, len(h.series))
	for k := range h.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type snap struct {
		key    string
		counts []uint64
		inf    uint64
		sum    float64
	}
	snaps := make([]snap, 0, len(keys))
	for _, k := range keys {
		s := h.series[k]
		snaps = append(snaps, snap{k, append([]uint64(nil), s.counts...), s.inf, s.sum})
	}
	h.mu.Unlock()

	header(w, h.name, h.help, "histogram")
	for _, s := range snaps {
		cum := uint64(0)
		for i, ub := range h.buckets {
			cum += s.counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, mergeLabels(s.key, "le", formatValue(ub)), cum)
		}
		cum += s.inf
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, mergeLabels(s.key, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.name, wrapLabels(s.key), formatValue(s.sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, wrapLabels(s.key), cum)
	}
}

// DefaultLatencyBuckets spans sub-millisecond ledger hits through
// multi-minute engine sweeps (seconds).
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func header(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// labelPairs renders `l1="v1",l2="v2"` (no braces; empty for no labels).
func labelPairs(labels, values []string) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels", len(values), len(labels)))
	}
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// seriesKey renders the full `name{pairs}` series line prefix.
func seriesKey(name string, labels, values []string) string {
	pairs := labelPairs(labels, values)
	if pairs == "" {
		return name
	}
	return name + "{" + pairs + "}"
}

// wrapLabels braces a rendered pair list ("" stays "").
func wrapLabels(pairs string) string {
	if pairs == "" {
		return ""
	}
	return "{" + pairs + "}"
}

// mergeLabels appends one extra pair (the histogram "le" bound) to a
// rendered pair list and braces the result.
func mergeLabels(pairs, name, value string) string {
	extra := name + `="` + escapeLabel(value) + `"`
	if pairs == "" {
		return "{" + extra + "}"
	}
	return "{" + pairs + "," + extra + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
