package tomo

import (
	"testing"

	"repro/internal/pauli"
	"repro/internal/stab"
)

func TestVerifyTransversalCNOT(t *testing.T) {
	for _, d := range []int{3, 5} {
		rep, err := VerifyTransversalCNOT(d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !rep.AllOK {
			for _, c := range rep.Checks {
				if !c.OK {
					t.Errorf("d=%d: tomography check failed: %s", d, c.Name)
				}
			}
			if !rep.StabilizersOK {
				t.Errorf("d=%d: code stabilizers not preserved", d)
			}
		}
		if len(rep.Checks) < 5 {
			t.Errorf("d=%d: only %d checks ran", d, len(rep.Checks))
		}
	}
}

// Negative control: a deliberately wrong circuit (CNOT direction reversed)
// must fail tomography — guards against vacuous passes.
func TestTomographyCatchesWrongCircuit(t *testing.T) {
	ps, err := newPatchSpace(3)
	if err != nil {
		t.Fatal(err)
	}
	tab := stab.New(ps.nslots)
	for i := range ps.code.Plaquettes {
		for _, target := range []bool{false, true} {
			if err := tab.MeasurePauliForced(ps.stabilizer(&ps.code.Plaquettes[i], target), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Prepare |+0>: Xc = +1, Zt = +1.
	for _, name := range []string{"Xc", "Zt"} {
		op, err := ps.logical(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.MeasurePauliForced(op, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Reversed circuit: target patch loaded as control.
	for q := 0; q < ps.code.NumData(); q++ {
		tab.SWAP(ps.transmon[q], ps.modeT[q])
		tab.CNOT(ps.transmon[q], ps.modeC[q])
		tab.SWAP(ps.transmon[q], ps.modeT[q])
	}
	// A correct CNOT(c->t) on |+0> yields Xc*Xt stabilized; the reversed
	// circuit must not.
	op, err := ps.product([]string{"Xc", "Xt"})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Expectation(op) == stab.ExpPlus {
		t.Fatal("reversed circuit passed the Xc*Xt check; tomography is vacuous")
	}
}

func TestMeasurePauliHelpers(t *testing.T) {
	// GHZ via forced measurements: force XXX = +1 on |000>, then ZZI and
	// IZZ remain +1 and XXX is +1.
	tab := stab.New(3)
	xxx, _ := pauli.ParseStr("XXX")
	if err := tab.MeasurePauliForced(xxx, 0); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"ZZI", "IZZ", "XXX"} {
		op, _ := pauli.ParseStr(s)
		if got := tab.Expectation(op); got != stab.ExpPlus {
			t.Errorf("<%s> = %v after forcing XXX", s, got)
		}
	}
	// Forcing a contradictory deterministic outcome must fail.
	zzi, _ := pauli.ParseStr("ZZI")
	if err := tab.MeasurePauliForced(zzi, 1); err == nil {
		t.Error("contradictory forced outcome must fail")
	}
	// Measuring the identity is rejected.
	id := pauli.NewStr(3)
	if _, _, err := tab.MeasurePauli(id, nil); err == nil {
		t.Error("identity measurement must fail")
	}
	// Y-basis round trip: prepare |+i> by forcing Y, check expectation.
	tab2 := stab.New(1)
	y, _ := pauli.ParseStr("Y")
	if err := tab2.MeasurePauliForced(y, 0); err != nil {
		t.Fatal(err)
	}
	if tab2.Expectation(y) != stab.ExpPlus {
		t.Error("forced Y eigenstate not stabilized by Y")
	}
}
