// Package tomo verifies the transversal CNOT of the 2.5D architecture by
// process tomography on full logical patches (§III-B: "we verified via
// process tomography [that it applies] the expected CNOT unitary").
//
// Two distance-d surface-code patches are stacked in the same set of
// cavities (control in mode 0, target in mode 1 under each data transmon of
// the Natural embedding). The physical circuit of Fig. 6 — load the control
// patch into the transmons, apply one transmon-mode CNOT per data qubit,
// store back — is applied to exact stabilizer states, and the logical
// Clifford channel is read off generator by generator: for each preparation
// of logical Pauli eigenstates, the post-circuit state must be stabilized by
// the CNOT-conjugated operators, with the correct signs, while every code
// stabilizer of both patches is preserved.
package tomo

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/pauli"
	"repro/internal/stab"
)

// Check is one tomography assertion: starting from eigenstates of the
// Inputs, the circuit must leave the state stabilized by the Outputs.
type Check struct {
	Name    string
	Inputs  []string // logical operators forced to +1 before the circuit
	Outputs []string // logical operators expected at +1 after
	OK      bool
}

// Report is the result of the tomography run.
type Report struct {
	Distance       int
	Checks         []Check
	StabilizersOK  bool
	AllOK          bool
	PhysicalQubits int
}

// logicalOp builds a two-patch logical operator: which ∈ {"Xc","Zc","Xt",
// "Zt"} and products joined by '*' such as "Xc*Xt".
type patchSpace struct {
	code     *layout.Code
	nslots   int
	transmon []int // data id -> transmon slot
	modeC    []int // data id -> control-patch mode slot
	modeT    []int // data id -> target-patch mode slot
}

func newPatchSpace(d int) (*patchSpace, error) {
	code, err := layout.NewRotated(d)
	if err != nil {
		return nil, err
	}
	nd := code.NumData()
	ps := &patchSpace{
		code:     code,
		transmon: make([]int, nd),
		modeC:    make([]int, nd),
		modeT:    make([]int, nd),
	}
	slot := 0
	for q := 0; q < nd; q++ {
		ps.transmon[q] = slot
		ps.modeC[q] = slot + 1
		ps.modeT[q] = slot + 2
		slot += 3
	}
	ps.nslots = slot
	return ps, nil
}

// operator renders a named logical or stabilizer operator over the slot
// space. patch is 'c' or 't'.
func (ps *patchSpace) logical(name string) (pauli.Str, error) {
	op := pauli.NewStr(ps.nslots)
	if len(name) != 2 {
		return nil, fmt.Errorf("tomo: bad operator %q", name)
	}
	var base pauli.Pauli
	var support []int
	switch name[0] {
	case 'X':
		base = pauli.X
		support = ps.code.LogicalX
	case 'Z':
		base = pauli.Z
		support = ps.code.LogicalZ
	default:
		return nil, fmt.Errorf("tomo: bad operator %q", name)
	}
	modeOf := ps.modeC
	if name[1] == 't' {
		modeOf = ps.modeT
	}
	for _, q := range support {
		op[modeOf[q]] = base
	}
	return op, nil
}

func (ps *patchSpace) stabilizer(p *layout.Plaquette, target bool) pauli.Str {
	op := pauli.NewStr(ps.nslots)
	base := pauli.Z
	if p.Type == layout.PlaqX {
		base = pauli.X
	}
	modeOf := ps.modeC
	if target {
		modeOf = ps.modeT
	}
	for _, q := range p.DataIdx {
		if q >= 0 {
			op[modeOf[q]] = base
		}
	}
	return op
}

// product multiplies named logical operators separated by '*'.
func (ps *patchSpace) product(names []string) (pauli.Str, error) {
	out := pauli.NewStr(ps.nslots)
	for _, n := range names {
		op, err := ps.logical(n)
		if err != nil {
			return nil, err
		}
		out.MulInto(op)
	}
	return out, nil
}

// applyTransversalCNOT performs the Fig. 6 circuit exactly: per data qubit,
// load the control patch's qubit into the transmon, transmon-mediated CNOT
// onto the target patch's mode, store back.
func (ps *patchSpace) applyTransversalCNOT(tab *stab.Tableau) {
	for q := 0; q < ps.code.NumData(); q++ {
		tab.SWAP(ps.transmon[q], ps.modeC[q])
		tab.CNOT(ps.transmon[q], ps.modeT[q])
		tab.SWAP(ps.transmon[q], ps.modeC[q])
	}
}

// splitNames splits "Xc*Xt" into components.
func splitNames(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '*' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

// VerifyTransversalCNOT runs the tomography suite at distance d.
func VerifyTransversalCNOT(d int) (*Report, error) {
	ps, err := newPatchSpace(d)
	if err != nil {
		return nil, err
	}
	// The CNOT conjugation table on the logical algebra, exercised across
	// every generator and the Y-type products: control patch c, target t.
	cases := []Check{
		{Name: "|00>: Zc, Zt -> Zc, Zc*Zt", Inputs: []string{"Zc", "Zt"}, Outputs: []string{"Zc", "Zc*Zt"}},
		{Name: "|++>: Xc, Xt -> Xc*Xt, Xt", Inputs: []string{"Xc", "Xt"}, Outputs: []string{"Xc*Xt", "Xt"}},
		{Name: "|0+>: Zc, Xt -> Zc, Xt", Inputs: []string{"Zc", "Xt"}, Outputs: []string{"Zc", "Xt"}},
		{Name: "|+0>: Xc, Zt -> Xc*Xt, Zc*Zt", Inputs: []string{"Xc", "Zt"}, Outputs: []string{"Xc*Xt", "Zc*Zt"}},
		{Name: "Bell: Xc*Xt, Zc*Zt -> Xc, Zt", Inputs: []string{"Xc*Xt", "Zc*Zt"}, Outputs: []string{"Xc", "Zt"}},
	}
	rep := &Report{Distance: d, StabilizersOK: true, AllOK: true, PhysicalQubits: ps.nslots}
	for _, c := range cases {
		tab := stab.New(ps.nslots)
		// Project both patches into the code space with +1 stabilizers.
		for i := range ps.code.Plaquettes {
			for _, target := range []bool{false, true} {
				if err := tab.MeasurePauliForced(ps.stabilizer(&ps.code.Plaquettes[i], target), 0); err != nil {
					return nil, fmt.Errorf("tomo: stabilizer preparation: %w", err)
				}
			}
		}
		// Fix the logical eigenstate.
		for _, in := range c.Inputs {
			op, err := ps.product(splitNames(in))
			if err != nil {
				return nil, err
			}
			if err := tab.MeasurePauliForced(op, 0); err != nil {
				return nil, fmt.Errorf("tomo: logical preparation %q: %w", in, err)
			}
		}

		ps.applyTransversalCNOT(tab)

		c.OK = true
		for _, out := range c.Outputs {
			op, err := ps.product(splitNames(out))
			if err != nil {
				return nil, err
			}
			if tab.Expectation(op) != stab.ExpPlus {
				c.OK = false
			}
		}
		// Code preservation: all stabilizers of both patches still +1.
		for i := range ps.code.Plaquettes {
			for _, target := range []bool{false, true} {
				if tab.Expectation(ps.stabilizer(&ps.code.Plaquettes[i], target)) != stab.ExpPlus {
					rep.StabilizersOK = false
				}
			}
		}
		if !c.OK {
			rep.AllOK = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	if !rep.StabilizersOK {
		rep.AllOK = false
	}
	return rep, nil
}
