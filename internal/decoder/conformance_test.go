package decoder

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dem"
	"repro/internal/extract"
	"repro/internal/hardware"
)

// weightTol is the conformance tolerance for matching-weight parity between
// Blossom and Exact: Blossom optimizes integer weights (blossomScale
// rounding), so on near-ties it may pick a float-equivalent matching whose
// reported weight differs by the accumulated rounding, bounded well below
// this. Any real matcher bug is off by at least one edge weight (~1).
func weightTol(w float64) float64 { return 1e-4 * (1 + math.Abs(w)) }

// cyclicGraph builds a small decoding graph with odd cycles and varied
// weights — the shape that forces blossom formation, which line graphs and
// trees never do. Nodes 0..n-1 in a ring of pair edges, chords every third
// node, boundary edges on nodes 0 and n/2, logical mask on one chord and
// one boundary edge.
func cyclicGraph(n int, seed uint64) *dem.Graph {
	rng := rand.New(rand.NewPCG(seed, 0))
	m := &dem.Model{NumDets: n}
	add := func(dets []int32, obs bool, p float64) {
		m.Mechs = append(m.Mechs, dem.Mechanism{Dets: dets, Obs: obs, P: p})
	}
	p := func() float64 { return 1e-4 * math.Exp(rng.Float64()*5) }
	for i := 0; i < n; i++ {
		add([]int32{int32(i), int32((i + 1) % n)}, false, p())
	}
	for i := 0; i+3 < n; i += 3 {
		add([]int32{int32(i), int32(i + 3)}, i == 3, p())
	}
	add([]int32{0}, false, p())
	add([]int32{int32(n / 2)}, true, p())
	g, err := m.DecodingGraph()
	if err != nil {
		panic(err)
	}
	return g
}

// TestBlossomMatchesExactOnCyclicGraphs drives Blossom and Exact over every
// event subset of a small cyclic graph (and random subsets of a bigger
// one), asserting exact-weight parity. Exhaustive subsets of the small
// graph cover blossom formation, shattering, and boundary exits.
func TestBlossomMatchesExactOnCyclicGraphs(t *testing.T) {
	small := cyclicGraph(9, 1)
	ex := NewExact(small)
	blos := NewBlossom(small)
	var events []int
	for mask := 0; mask < 1<<9; mask++ {
		events = events[:0]
		for i := 0; i < 9; i++ {
			if mask&(1<<i) != 0 {
				events = append(events, i)
			}
		}
		wantObs, wantW, wantErr := ex.DecodeWithWeight(events)
		gotObs, gotW, gotErr := blos.DecodeWithWeight(events)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("mask %b: exact err %v vs blossom err %v", mask, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if math.Abs(wantW-gotW) > weightTol(wantW) {
			t.Fatalf("mask %b (events %v): exact weight %g vs blossom %g", mask, events, wantW, gotW)
		}
		// Predictions must agree except on exact weight ties, where either
		// optimal matching is a legitimate answer.
		if gotObs != wantObs {
			if oppW := minWeightWithObs(t, small, events, !wantObs); math.Abs(oppW-wantW) > weightTol(wantW) {
				t.Fatalf("mask %b (events %v): blossom obs %v vs exact %v with no weight tie (%g vs %g)",
					mask, events, gotObs, wantObs, oppW, wantW)
			}
		}
	}

	big := cyclicGraph(16, 7)
	ex = NewExact(big)
	blos = NewBlossom(big)
	rng := rand.New(rand.NewPCG(2, 0))
	for trial := 0; trial < 3000; trial++ {
		events = events[:0]
		for i := 0; i < 16; i++ {
			if rng.IntN(3) == 0 {
				events = append(events, i)
			}
		}
		wantObs, wantW, wantErr := ex.DecodeWithWeight(events)
		_, gotW, gotErr := blos.DecodeWithWeight(events)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d (events %v): exact err %v vs blossom err %v", trial, events, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if math.Abs(wantW-gotW) > weightTol(wantW) {
			t.Fatalf("trial %d (events %v): exact weight %g vs blossom %g", trial, events, wantW, gotW)
		}
		_ = wantObs
	}
}

// minWeightWithObs returns the minimum matching weight among matchings
// predicting the given observable — the tie check for prediction
// disagreements. Brute force over pairings, so only for tiny event sets.
func minWeightWithObs(t *testing.T, g *dem.Graph, events []int, obs bool) float64 {
	t.Helper()
	n := g.NumNodes
	ex := NewExact(g)
	dist := make([]float64, n+1)
	mask := make([]bool, n+1)
	k := len(events)
	pd := make([][]float64, k)
	pm := make([][]bool, k)
	bd := make([]float64, k)
	bm := make([]bool, k)
	for i, ev := range events {
		dijkstra(g, ev, dist, mask, &ex.heap)
		pd[i] = make([]float64, k)
		pm[i] = make([]bool, k)
		for j, ev2 := range events {
			pd[i][j] = dist[ev2]
			pm[i][j] = mask[ev2]
		}
		bd[i] = dist[n]
		bm[i] = mask[n]
	}
	best := math.Inf(1)
	var rec func(used int, acc bool, w float64)
	rec = func(used int, acc bool, w float64) {
		i := 0
		for i < k && used&(1<<i) != 0 {
			i++
		}
		if i == k {
			if acc == obs && w < best {
				best = w
			}
			return
		}
		rec(used|1<<i, acc != bm[i], w+bd[i])
		for j := i + 1; j < k; j++ {
			if used&(1<<j) == 0 {
				rec(used|1<<i|1<<j, acc != pm[i][j], w+pd[i][j])
			}
		}
	}
	rec(0, false, 0)
	return best
}

// conformanceCase is one (scheme, distance, noise scale) cell of the
// cross-decoder suite.
type conformanceCase struct {
	scheme extract.Scheme
	d      int
	phys   float64
	shots  int
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{extract.Baseline, 3, 2e-3, 1200},
		{extract.Baseline, 3, 8e-3, 800},
		{extract.Baseline, 5, 4e-3, 500},
		{extract.Baseline, 7, 4e-3, 300},
		{extract.CompactInterleaved, 3, 2e-3, 1200},
		{extract.CompactInterleaved, 3, 8e-3, 800},
		{extract.CompactInterleaved, 5, 4e-3, 500},
		{extract.CompactInterleaved, 7, 4e-3, 300},
		{extract.NaturalInterleaved, 5, 4e-3, 500},
	}
}

// TestCrossDecoderConformance decodes the same sampled syndrome batches
// with every decoder kind on circuit-level graphs for scheme x distance x
// noise scale. It pins (a) exact-weight parity between Blossom and Exact on
// every shot Exact can handle, and (b) logical-error-rate agreement of all
// decoders within binomial error at fixed seeds — the accuracy contract
// that makes the decoder swap safe.
func TestCrossDecoderConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		shots := tc.shots
		if testing.Short() {
			shots = min(shots, 200)
		}
		m, g := circuitGraph(t, tc.scheme, tc.d, tc.phys)
		uf := NewUnionFind(g)
		mw := NewMWPMFallback(g)
		ex := NewExact(g)
		blos := NewBlossom(g)

		// Sample one packed batch set per case; every decoder sees the same
		// shots via the shared Batch container.
		s := m.NewSampler()
		rng := rand.New(rand.NewPCG(uint64(tc.d)*1000+uint64(tc.phys*1e6), 9))
		var batch Batch
		batch.Reset()
		truth := make([]bool, 0, shots)
		for len(truth) < shots {
			events, obs := s.Sample(rng)
			batch.Add(events)
			truth = append(truth, obs)
		}

		decode := func(d BatchDecoder) []bool {
			out := make([]bool, batch.Len())
			if err := d.DecodeBatch(&batch, out); err != nil {
				t.Fatalf("%v d=%d p=%g: %s: %v", tc.scheme, tc.d, tc.phys, d.Name(), err)
			}
			return out
		}
		ufOut := decode(uf)
		mwOut := decode(mw)
		blOut := decode(blos)

		// Weight parity vs the ground-truth DP wherever it is tractable.
		checked := 0
		for i := 0; i < batch.Len(); i++ {
			ev := batch.Shot(i)
			if len(ev) == 0 {
				checked++ // empty syndrome: weight 0 on both, trivially
				continue
			}
			if len(ev) > ex.MaxEvents {
				continue
			}
			_, wantW, err := ex.DecodeWithWeight(ev)
			if err != nil {
				continue
			}
			_, gotW, err := blos.DecodeWithWeight(ev)
			if err != nil {
				t.Fatalf("%v d=%d p=%g shot %d: blossom: %v", tc.scheme, tc.d, tc.phys, i, err)
			}
			if math.Abs(wantW-gotW) > weightTol(wantW) {
				t.Errorf("%v d=%d p=%g shot %d (events %v): exact weight %g vs blossom %g",
					tc.scheme, tc.d, tc.phys, i, ev, wantW, gotW)
			}
			checked++
		}
		if checked < shots/2 {
			t.Fatalf("%v d=%d p=%g: only %d/%d shots weight-checked", tc.scheme, tc.d, tc.phys, checked, shots)
		}

		// Logical error rates agree within binomial error across decoders.
		rate := func(out []bool) (float64, float64) {
			fails := 0
			for i, pred := range out {
				if pred != truth[i] {
					fails++
				}
			}
			p := float64(fails) / float64(len(out))
			return p, math.Sqrt(p*(1-p)/float64(len(out))) + 1e-9
		}
		blRate, blSE := rate(blOut)
		for name, out := range map[string][]bool{"union-find": ufOut, "mwpm+uf": mwOut} {
			r, se := rate(out)
			if diff := math.Abs(r - blRate); diff > 4*(se+blSE) {
				t.Errorf("%v d=%d p=%g: %s rate %.4f vs blossom %.4f beyond 4 sigma",
					tc.scheme, tc.d, tc.phys, name, r, blRate)
			}
		}

		// Blossom and exact matching agree shot-for-shot up to weight ties;
		// against the fallback matcher the disagreement rate must be tiny.
		diff := 0
		for i := range blOut {
			if blOut[i] != mwOut[i] {
				diff++
			}
		}
		if float64(diff)/float64(len(blOut)) > 0.01 {
			t.Errorf("%v d=%d p=%g: blossom disagrees with mwpm+uf on %d/%d shots",
				tc.scheme, tc.d, tc.phys, diff, len(blOut))
		}
	}
}

// TestBlossomDeterminismAndRebind pins buffer-reuse correctness: repeated
// decodes of the same shots are identical, and a decoder rebound to a
// reweighted graph of the same topology matches a freshly built one.
func TestBlossomDeterminismAndRebind(t *testing.T) {
	m, g := circuitGraph(t, extract.CompactInterleaved, 3, 4e-3)
	blos := NewBlossom(g)
	s := m.NewSampler()
	rng := rand.New(rand.NewPCG(71, 0))
	shots := make([][]int, 200)
	first := make([]bool, len(shots))
	for i := range shots {
		ev, _ := s.Sample(rng)
		shots[i] = append([]int(nil), ev...)
		obs, err := blos.Decode(shots[i])
		if err != nil {
			t.Fatal(err)
		}
		first[i] = obs
	}
	for i := range shots {
		obs, err := blos.Decode(shots[i])
		if err != nil {
			t.Fatal(err)
		}
		if obs != first[i] {
			t.Fatalf("shot %d: nondeterministic decode", i)
		}
	}

	// Rebind to the same experiment at a different noise scale.
	e, err := extract.Build(extract.Config{
		Scheme: extract.CompactInterleaved, Distance: 3, Basis: extract.BasisZ,
		Params: hardware.Default().ScaledTo(8e-3),
	})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := dem.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m2.DecodingGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes != g.NumNodes || len(g2.Edges) != len(g.Edges) {
		t.Skip("reweighted graph changed shape; rebind not applicable")
	}
	if !blos.Rebind(g2) {
		t.Fatal("rebind refused a same-shape graph")
	}
	fresh := NewBlossom(g2)
	s2 := m2.NewSampler()
	for trial := 0; trial < 200; trial++ {
		ev, _ := s2.Sample(rng)
		a, _, err1 := blos.DecodeWithWeight(ev)
		b, _, err2 := fresh.DecodeWithWeight(ev)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if a != b {
			t.Fatalf("trial %d: rebound decoder diverged from fresh build", trial)
		}
	}
}
