package decoder

import (
	"fmt"
	"math"

	"repro/internal/dem"
)

// Blossom is the sparse-blossom-style exact minimum-weight matching decoder:
// the production matcher that replaces the MWPM-with-fallback pair on the
// hot path. It produces strictly-minimum-weight corrections (the same
// matching weight as Exact) at a per-shot cost governed by the grown
// regions, not the graph:
//
//  1. Boundary distances are hoisted: one multi-source Dijkstra from the
//     virtual boundary per graph (paid at construction or Rebind, amortized
//     over every shot) gives each node its cheapest boundary exit and that
//     path's logical mask.
//  2. Per shot, a region grows from each detection event along the hoisted
//     adjacency out to a small adaptive pop radius. Grown regions leave
//     epoch-stamped distance labels behind; when a later region pops a node
//     another region labeled, the label sum is a pairing candidate. A
//     candidate no longer than the two regions' summed radii is provably
//     the exact geodesic distance (one region's pop radius covers its side
//     of the geodesic, the other region's frontier relaxations label the
//     crossing node), and a pair farther than the sum of its two boundary
//     distances can be replaced in any matching by the two boundary exits
//     at no extra cost — so the regions only ever need to grow to their own
//     boundary distance, and usually stop far earlier.
//  3. Exact pairs carry positive savings s(a,b) = bdist(a) + bdist(b) -
//     d(a,b) and split the events into independent components (events
//     interact only through the boundary otherwise). Components of one or
//     two events have closed-form optima; larger ones are matched exactly
//     by a primal-dual alternating-tree matcher with blossom formation and
//     shattering, run directly on the component's events with the savings
//     as edge weights — a maximum-weight (not necessarily perfect)
//     matching, whose unmatched events take their boundary exits.
//  4. The matcher's LP duals certify the radii: a pair whose exact distance
//     is still unknown provably cannot improve the matching when the duals
//     of its two events cover the pair's best-case savings, upper-bounded
//     through the grown radii and hoisted landmark distances (d(a,b) >=
//     max over landmarks of |D(l,a) - D(l,b)|). Events on pairs failing
//     the certificate double their radii and the shot re-solves; radii are
//     capped at each event's boundary distance, where every useful pair is
//     exact and the certificate passes unconditionally — so the loop always
//     lands on a strictly-minimum-weight matching, while below threshold
//     regions stay a couple of edges wide.
//
// All weights are integers (float matching weights scaled once per graph),
// so dual updates and slack comparisons are exact. All per-shot state is
// epoch-stamped arena storage: a node's Dijkstra entry or label list is
// implicitly absent unless its stamp matches the current search or shot, so
// DecodeBatch performs zero per-shot heap allocations in steady state.
type Blossom struct {
	g *dem.Graph
	n int // real nodes; the boundary is virtual

	// Hoisted per-graph state (rebuilt by Rebind).
	wInt []int64   // integer edge weights
	wF   []float64 // float edge weights (reporting only)
	// Flat edge endpoints and observable flags for the region-growth inner
	// loop (boundary edges get eV = -1), avoiding the wide dem.Edge records.
	eU, eV []int32
	eObs   []bool
	bdist  []int64   // per-node integer distance to the boundary (capped)
	bdistF []float64 // float boundary distance; +Inf when no exit exists
	bmask  []bool    // logical mask of the cheapest boundary path
	bCap   int64     // "no boundary exit" stand-in: longer than any simple path
	r0     int64     // initial pop radius for region growth
	lmk    []int64   // landmark distance tables, numLandmarks x n flattened

	// warmStart seeds initial radii from the landmark nearest-event
	// estimates instead of r0 alone. Off by default: the bench counters
	// showed the k² landmark queries (3–14x the baseline query count at
	// p=1e-3) cost more than the handful of escalation rounds they save
	// on every measured leg. The mechanism and its toggle stay because the
	// warm/cold property test pins the schedule-independence the radius
	// certificate promises — corrections are byte-identical either way.
	warmStart bool

	// Epoch-stamped per-search Dijkstra arena.
	epoch     uint64
	distEpoch []uint64
	dist      []int64
	distF     []float64
	mask      []bool
	touched   []int32
	heap      bHeap

	// Per-shot cross-region labels: labHead[v] chains this shot's region
	// labels on node v through the labels arena.
	shotEpoch uint64
	labEpoch  []uint64
	labHead   []int32
	labels    []bLabel

	// Per-shot pair candidates, keyed i*k+j (i < j) into epoch-stamped
	// k x k cells; candKeys lists the touched cells.
	candEpoch []uint64
	candD     []int64
	candF     []float64
	candM     []bool
	candKeys  []int32

	// Per-shot matching rounds: adaptive radii, the per-round exact edge
	// list, event duals, and escalation flags.
	rad   []int64
	edgeI []int32
	edgeJ []int32
	edgeS []int64
	evY   []int64
	esc   []bool
	dirty []bool    // events whose region grew since the last match round
	evObs []bool    // per-event matching contribution: observable flip ...
	evW   []float64 // ... and float weight (pairs credited to the lower event)

	// Per-shot component bucketing over events.
	evPar   []int32 // union-find over events
	evCid   []int32 // event -> component id
	members []int32 // events grouped by component
	mOff    []int32
	pairIdx []int32 // edge indices grouped by component
	pOff    []int32
	counts  []int32
	local   []int32 // event index -> matcher-local index within its component

	wm wmatch

	stats DecoderStats
}

// numLandmarks is the number of hoisted landmark distance tables; a few
// well-spread landmarks give useful lower bounds on far pair distances.
const numLandmarks = 8

// warmStartMaxEvents bounds the shots whose initial radii are seeded from
// the landmark nearest-event estimates; the estimate is quadratic in the
// event count, and larger shots are dense enough that r0 already fits.
const warmStartMaxEvents = 16

// bLabel is one region's distance label on a node: the best-known walk from
// event reg, with the float weight and logical mask of that walk.
type bLabel struct {
	d    int64
	dF   float64
	reg  int32
	next int32 // arena index of the next label on the same node, -1 ends
	mask bool
}

// blossomScale converts float matching weights to integers; 2^26 keeps about
// eight significant digits so integer-optimal matchings are float-optimal
// within reporting tolerance.
const blossomScale = 1 << 26

// NewBlossom builds the sparse-blossom decoder over g.
func NewBlossom(g *dem.Graph) *Blossom {
	n := g.NumNodes
	bl := &Blossom{g: g, n: n}
	bl.wInt = make([]int64, len(g.Edges))
	bl.wF = make([]float64, len(g.Edges))
	bl.eU = make([]int32, len(g.Edges))
	bl.eV = make([]int32, len(g.Edges))
	bl.eObs = make([]bool, len(g.Edges))
	bl.bdist = make([]int64, n)
	bl.bdistF = make([]float64, n)
	bl.bmask = make([]bool, n)
	bl.distEpoch = make([]uint64, n)
	bl.dist = make([]int64, n)
	bl.distF = make([]float64, n)
	bl.mask = make([]bool, n)
	bl.labEpoch = make([]uint64, n)
	bl.labHead = make([]int32, n)
	bl.loadGraph(g)
	return bl
}

// Rebind points the decoder at a new graph, reusing every buffer when the
// shape matches (same node and edge counts — e.g. the same hoisted topology
// at a different noise scale). It reports whether the rebind happened; on
// false the decoder is unchanged and the caller should build a fresh one.
func (bl *Blossom) Rebind(g *dem.Graph) bool {
	if g.NumNodes != bl.n || len(g.Edges) != len(bl.wInt) {
		return false
	}
	bl.g = g
	bl.loadGraph(g)
	return true
}

// loadGraph recomputes the integer weights and the boundary-distance table.
func (bl *Blossom) loadGraph(g *dem.Graph) {
	minW := math.Inf(1)
	for i := range g.Edges {
		if w := g.Edges[i].W; w > 0 && w < minW {
			minW = w
		}
	}
	if math.IsInf(minW, 1) {
		minW = 1
	}
	// Cap each integer weight so the all-edge sum stays below 2^59: bCap,
	// pair sums, and the doubled certificate arithmetic then all fit in
	// int64 even for degenerate weight ratios (an edge saturating near
	// p = 0.5 alongside a rare-mechanism edge), where the float-to-int
	// conversion would otherwise overflow and silently reorder weights.
	capC := (int64(1) << 59) / int64(max(len(g.Edges), 1))
	sum := int64(0)
	for i := range g.Edges {
		w := g.Edges[i].W
		bl.wF[i] = w
		r := w / minW * blossomScale
		c := capC
		if r < float64(capC) {
			c = int64(math.Round(r))
		}
		if c < 1 {
			c = 1
		}
		bl.wInt[i] = c
		sum += c
		bl.eU[i] = g.Edges[i].U
		bl.eObs[i] = g.Edges[i].Obs
		if v := g.Edges[i].V; v == dem.BoundaryNode {
			bl.eV[i] = -1
		} else {
			bl.eV[i] = v
		}
	}
	// Longer than any simple path, so a node with no boundary exit loses
	// every comparison yet sums stay far from overflow.
	bl.bCap = sum + 1

	// Multi-source Dijkstra from the boundary: seed every node with its
	// cheapest boundary edge, then relax inward over the bulk edges. Done
	// once per graph, this is what bounds per-shot region growth.
	for v := 0; v < bl.n; v++ {
		bl.bdist[v] = bl.bCap
		bl.bdistF[v] = math.Inf(1)
		bl.bmask[v] = false
	}
	bl.heap = bl.heap[:0]
	for i := range g.Edges {
		if g.Edges[i].V != dem.BoundaryNode {
			continue
		}
		u := g.Edges[i].U
		if bl.wInt[i] < bl.bdist[u] {
			bl.bdist[u] = bl.wInt[i]
			bl.bdistF[u] = bl.wF[i]
			bl.bmask[u] = g.Edges[i].Obs
			bl.heap.push(bItem{bl.wInt[i], u})
		}
	}
	for len(bl.heap) > 0 {
		it := bl.heap.pop()
		v := it.node
		if it.d > bl.bdist[v] {
			continue
		}
		for _, ei := range g.Adj[v] {
			e := &g.Edges[ei]
			if e.V == dem.BoundaryNode {
				continue
			}
			w := e.U
			if w == v {
				w = e.V
			}
			nd := it.d + bl.wInt[ei]
			if nd < bl.bdist[w] {
				bl.bdist[w] = nd
				bl.bdistF[w] = bl.bdistF[v] + bl.wF[ei]
				bl.bmask[w] = bl.bmask[v] != e.Obs
				bl.heap.push(bItem{nd, w})
			}
		}
	}

	// Initial pop radius: half a typical edge, so two grown regions span
	// one edge. Below threshold an event's matching partner is usually
	// adjacent; the escalation loop covers everything farther, and a small
	// start keeps first-round components (and the matcher) tiny.
	if len(g.Edges) > 0 {
		bl.r0 = sum / int64(len(g.Edges)) * 3 / 4
	}
	if bl.r0 < 1 {
		bl.r0 = 1
	}

	// Landmark distance tables for pair lower bounds, spread by
	// farthest-point sampling seeded at the deepest-interior node.
	nl := numLandmarks
	if nl > bl.n {
		nl = bl.n
	}
	bl.lmk = grown(bl.lmk, nl*bl.n)
	minD := bl.dist // scratch outside any shot; epochs invalidate it anyway
	for v := 0; v < bl.n; v++ {
		minD[v] = math.MaxInt64
	}
	cur := 0
	for v := 1; v < bl.n; v++ {
		if bl.bdist[v] > bl.bdist[cur] {
			cur = v
		}
	}
	for l := 0; l < nl; l++ {
		row := bl.lmk[l*bl.n : (l+1)*bl.n]
		bl.landmarkDijkstra(cur, row)
		for v := 0; v < bl.n; v++ {
			if row[v] < minD[v] {
				minD[v] = row[v]
			}
		}
		for v := 0; v < bl.n; v++ {
			if minD[v] > minD[cur] {
				cur = v
			}
		}
	}
}

// landmarkDijkstra fills row with bulk-edge distances from src (bCap where
// unreachable) — the same metric region growth uses, so |row[a] - row[b]|
// lower-bounds every pair distance.
func (bl *Blossom) landmarkDijkstra(src int, row []int64) {
	for v := range row {
		row[v] = bl.bCap
	}
	row[src] = 0
	bl.heap = bl.heap[:0]
	bl.heap.push(bItem{0, int32(src)})
	for len(bl.heap) > 0 {
		it := bl.heap.pop()
		if it.d > row[it.node] {
			continue
		}
		for _, ei := range bl.g.Adj[it.node] {
			e := &bl.g.Edges[ei]
			if e.V == dem.BoundaryNode {
				continue
			}
			w := e.U
			if w == it.node {
				w = e.V
			}
			nd := it.d + bl.wInt[ei]
			if nd < row[w] {
				row[w] = nd
				bl.heap.push(bItem{nd, w})
			}
		}
	}
}

// landmarkLB lower-bounds the bulk distance between nodes a and b.
func (bl *Blossom) landmarkLB(a, b int) int64 {
	bl.stats.BlossomLandmarkQs++
	best := int64(0)
	for off := 0; off < len(bl.lmk); off += bl.n {
		d := bl.lmk[off+a] - bl.lmk[off+b]
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}

// Name implements Decoder.
func (bl *Blossom) Name() string { return "blossom" }

// DecoderStats implements StatsSource, folding in the counters of the
// embedded primal-dual matcher.
func (bl *Blossom) DecoderStats() DecoderStats {
	s := bl.stats
	s.WmatchTreeIters = bl.wm.treeIters
	s.WmatchDualAdjusts = bl.wm.dualAdjusts
	return s
}

// Decode implements Decoder.
func (bl *Blossom) Decode(events []int) (bool, error) {
	obs, _, err := bl.DecodeWithWeight(events)
	return obs, err
}

// DecodeBatch implements BatchDecoder. Zero per-shot heap allocations in
// steady state.
func (bl *Blossom) DecodeBatch(b *Batch, out []bool) error {
	return decodeSerial(bl, b, out)
}

// labAdd records region reg's best-known walk to node v, keeping the
// minimum per (node, region).
func (bl *Blossom) labAdd(v int32, reg int32, d int64, dF float64, mask bool) {
	if bl.labEpoch[v] != bl.shotEpoch {
		bl.labEpoch[v] = bl.shotEpoch
		bl.labHead[v] = -1
	}
	for li := bl.labHead[v]; li >= 0; li = bl.labels[li].next {
		if bl.labels[li].reg == reg {
			if d < bl.labels[li].d {
				bl.labels[li].d = d
				bl.labels[li].dF = dF
				bl.labels[li].mask = mask
			}
			return
		}
	}
	bl.labels = append(bl.labels, bLabel{d: d, dF: dF, reg: reg, next: bl.labHead[v], mask: mask})
	bl.labHead[v] = int32(len(bl.labels) - 1)
}

// candAdd records a pairing candidate between events i and j at total
// integer distance d, keeping the minimum per pair.
func (bl *Blossom) candAdd(i, j int32, k int, d int64, dF float64, mask bool) {
	if j < i {
		i, j = j, i
	}
	key := int(i)*k + int(j)
	if bl.candEpoch[key] != bl.shotEpoch {
		bl.candEpoch[key] = bl.shotEpoch
		bl.candD[key] = d
		bl.candF[key] = dF
		bl.candM[key] = mask
		bl.candKeys = append(bl.candKeys, int32(key))
		return
	}
	if d < bl.candD[key] {
		bl.candD[key] = d
		bl.candF[key] = dF
		bl.candM[key] = mask
	}
}

// grow runs the bounded Dijkstra from event i: nodes pop while their
// distance is within the event's current radius, and relaxations from
// popped nodes — including past the pop radius — are tracked so the region
// leaves one label per touched node for later regions to meet. Popping a
// node carrying other regions' labels records the pair candidates.
func (bl *Blossom) grow(i int, events []int, k int) {
	src := int32(events[i])
	rad := bl.rad[i]
	bl.epoch++
	bl.distEpoch[src] = bl.epoch
	bl.dist[src] = 0
	bl.distF[src] = 0
	bl.mask[src] = false
	bl.touched = bl.touched[:0]
	bl.touched = append(bl.touched, src)
	bl.heap = bl.heap[:0]
	bl.heap.push(bItem{0, src})
	for len(bl.heap) > 0 {
		it := bl.heap.pop()
		v := it.node
		if it.d > bl.dist[v] {
			continue
		}
		// Meet the labels earlier regions left here.
		if bl.labEpoch[v] == bl.shotEpoch {
			for li := bl.labHead[v]; li >= 0; li = bl.labels[li].next {
				lb := &bl.labels[li]
				if lb.reg != int32(i) {
					bl.candAdd(int32(i), lb.reg, k, it.d+lb.d, bl.distF[v]+lb.dF, bl.mask[v] != lb.mask)
				}
			}
		}
		for _, ei := range bl.g.Adj[v] {
			w := bl.eV[ei]
			if w < 0 {
				continue // boundary edge
			}
			if w == v {
				w = bl.eU[ei]
			}
			nd := it.d + bl.wInt[ei]
			if bl.distEpoch[w] != bl.epoch {
				bl.distEpoch[w] = bl.epoch
				bl.touched = append(bl.touched, w)
			} else if nd >= bl.dist[w] {
				continue
			}
			bl.dist[w] = nd
			bl.distF[w] = bl.distF[v] + bl.wF[ei]
			bl.mask[w] = bl.mask[v] != bl.eObs[ei]
			if nd <= rad {
				bl.heap.push(bItem{nd, w})
			}
		}
	}
	// One label per touched node: popped nodes carry their exact distance,
	// frontier nodes the best relaxation seen — both are walk lengths, and
	// the crossing node of any discoverable pair's geodesic is exact.
	for _, v := range bl.touched {
		bl.labAdd(v, int32(i), bl.dist[v], bl.distF[v], bl.mask[v])
	}
}

func (bl *Blossom) evFind(x int32) int32 {
	for bl.evPar[x] != x {
		bl.evPar[x] = bl.evPar[bl.evPar[x]]
		x = bl.evPar[x]
	}
	return x
}

// DecodeWithWeight additionally returns the total weight of the minimum
// matching (the float sum of the chosen pair paths and boundary exits;
// equivalence tests compare it against Exact, where observable predictions
// may legitimately differ on exact weight ties).
func (bl *Blossom) DecodeWithWeight(events []int) (bool, float64, error) {
	k := len(events)
	if k == 0 {
		return false, 0, nil
	}
	bl.shotEpoch++
	bl.labels = bl.labels[:0]
	bl.candKeys = bl.candKeys[:0]
	bl.candEpoch = grown(bl.candEpoch, k*k)
	bl.candD = grown(bl.candD, k*k)
	bl.candF = grown(bl.candF, k*k)
	bl.candM = grown(bl.candM, k*k)
	// Seed each event's node with its own zero label so direct pops of a
	// partner's node meet immediately.
	for i, ev := range events {
		if ev < 0 || ev >= bl.n {
			return false, 0, fmt.Errorf("blossom: event %d out of range [0, %d)", ev, bl.n)
		}
		bl.labAdd(int32(ev), int32(i), 0, 0, false)
	}
	bl.rad = grown(bl.rad, k)
	bl.esc = grown(bl.esc, k)
	bl.evY = grown(bl.evY, k)
	bl.dirty = grown(bl.dirty, k)
	bl.evObs = grown(bl.evObs, k)
	bl.evW = grown(bl.evW, k)
	bl.local = grown(bl.local, k)
	bl.evPar = grown(bl.evPar, k)
	bl.evCid = grown(bl.evCid, k)
	// Warm-start the radii from the landmark tables: an event whose nearest
	// partner is provably farther than 2*r0 starts at half that lower bound
	// (capped at two doublings), skipping the escalation rounds the
	// certificate would otherwise force one by one. Gated to small shots —
	// the estimate costs k^2 landmark queries — and off by default: see the
	// warmStart field for why the queries measured as a net loss.
	warm := bl.warmStart && k >= 2 && k <= warmStartMaxEvents
	for i, ev := range events {
		r := bl.r0
		if warm {
			nn := int64(math.MaxInt64)
			for j, ev2 := range events {
				if j == i {
					continue
				}
				if lb := bl.landmarkLB(ev, ev2); lb < nn {
					nn = lb
				}
			}
			if h := min(nn/2, 4*bl.r0); h > r {
				r = h
			}
		}
		bl.rad[i] = min(r, bl.bdist[ev])
		bl.dirty[i] = true
	}
	for i := range events {
		bl.grow(i, events, k)
	}

	for {
		if err := bl.matchRound(events, k); err != nil {
			return false, 0, err
		}
		// Certify the radii through the matching duals: an undiscovered
		// pair (i, j) could only enter an optimal matching if its best-case
		// savings exceeded what the duals already account for. Pairs of two
		// clean events re-certify for free: nothing they depend on moved.
		failed := false
		for i := 0; i < k; i++ {
			bi := bl.bdist[events[i]]
			for j := i + 1; j < k; j++ {
				if !bl.dirty[i] && !bl.dirty[j] {
					continue
				}
				radSum := bl.rad[i] + bl.rad[j]
				key := int32(i*k + j)
				if bl.candEpoch[key] == bl.shotEpoch && bl.candD[key] <= radSum {
					continue // exact pair: dual-feasible by construction
				}
				ySum := bl.evY[i] + bl.evY[j]
				bsum := bi + bl.bdist[events[j]]
				if 2*(bsum-radSum) <= ySum {
					continue
				}
				if lm := bl.landmarkLB(events[i], events[j]); 2*(bsum-lm) <= ySum {
					continue
				}
				failed = true
				bl.esc[i] = true
				bl.esc[j] = true
			}
		}
		if !failed {
			obs := false
			total := 0.0
			for i := 0; i < k; i++ {
				obs = obs != bl.evObs[i]
				total += bl.evW[i]
			}
			return obs, total, nil
		}
		bl.stats.BlossomRounds++
		for i := range events {
			bl.dirty[i] = false
		}
		for i, ev := range events {
			if !bl.esc[i] {
				continue
			}
			bl.esc[i] = false
			if nr := min(2*bl.rad[i], bl.bdist[ev]); nr > bl.rad[i] {
				bl.rad[i] = nr
				bl.dirty[i] = true
				bl.grow(i, events, k)
			}
		}
	}
}

// matchRound matches the events once at the current radii: exact
// positive-savings pairs split the events into components, each matched
// independently, filling bl.evY with the doubled matching duals the radius
// certificate reads.
func (bl *Blossom) matchRound(events []int, k int) error {
	// Collect exact useful pairs: candidates within the summed radii carry
	// true geodesic distances; positive savings make them matchable.
	bl.edgeI = bl.edgeI[:0]
	bl.edgeJ = bl.edgeJ[:0]
	bl.edgeS = bl.edgeS[:0]
	for i := range bl.evPar[:k] {
		bl.evPar[i] = int32(i)
		bl.esc[i] = false
	}
	for _, key := range bl.candKeys {
		i, j := int(key)/k, int(key)%k
		if bl.candD[key] > bl.rad[i]+bl.rad[j] {
			continue
		}
		s := bl.bdist[events[i]] + bl.bdist[events[j]] - bl.candD[key]
		if s <= 0 {
			continue
		}
		bl.edgeI = append(bl.edgeI, int32(i))
		bl.edgeJ = append(bl.edgeJ, int32(j))
		bl.edgeS = append(bl.edgeS, s)
		ra, rb := bl.evFind(int32(i)), bl.evFind(int32(j))
		if ra != rb {
			bl.evPar[ra] = rb
		}
	}
	// Assign dense component ids in event order, then bucket members and
	// edges by component with counting sorts (no per-shot maps).
	ncomp := int32(0)
	for i := 0; i < k; i++ {
		r := bl.evFind(int32(i))
		if int(r) == i {
			bl.evCid[i] = ncomp
			ncomp++
		}
	}
	for i := 0; i < k; i++ {
		bl.evCid[i] = bl.evCid[bl.evFind(int32(i))]
	}
	bl.counts = grown(bl.counts, int(ncomp))
	for i := range bl.counts[:ncomp] {
		bl.counts[i] = 0
	}
	for i := 0; i < k; i++ {
		bl.counts[bl.evCid[i]]++
	}
	bl.mOff = grown(bl.mOff, int(ncomp)+1)
	bl.mOff[0] = 0
	for c := int32(0); c < ncomp; c++ {
		bl.mOff[c+1] = bl.mOff[c] + bl.counts[c]
		bl.counts[c] = bl.mOff[c]
	}
	bl.members = grown(bl.members, k)
	for i := 0; i < k; i++ {
		c := bl.evCid[i]
		bl.members[bl.counts[c]] = int32(i)
		bl.counts[c]++
	}
	for i := range bl.counts[:ncomp] {
		bl.counts[i] = 0
	}
	for _, ei := range bl.edgeI {
		bl.counts[bl.evCid[ei]]++
	}
	bl.pOff = grown(bl.pOff, int(ncomp)+1)
	bl.pOff[0] = 0
	for c := int32(0); c < ncomp; c++ {
		bl.pOff[c+1] = bl.pOff[c] + bl.counts[c]
		bl.counts[c] = bl.pOff[c]
	}
	bl.pairIdx = grown(bl.pairIdx, len(bl.edgeI))
	for e := range bl.edgeI {
		c := bl.evCid[bl.edgeI[e]]
		bl.pairIdx[bl.counts[c]] = int32(e)
		bl.counts[c]++
	}

	// Re-match only components a grown region touched; a clean component's
	// matching, duals, and per-event contributions all stand. Members of a
	// re-solved component count as dirty afterwards — their duals may have
	// moved, so the certificate must look at their pairs again.
	for c := int32(0); c < ncomp; c++ {
		members := bl.members[bl.mOff[c]:bl.mOff[c+1]]
		solve := false
		for _, ev := range members {
			if bl.dirty[ev] {
				solve = true
				break
			}
		}
		if !solve {
			continue
		}
		for _, ev := range members {
			bl.dirty[ev] = true
		}
		bl.stats.BlossomRematchedCmp++
		if err := bl.matchComponent(events, k, members,
			bl.pairIdx[bl.pOff[c]:bl.pOff[c+1]]); err != nil {
			return err
		}
	}
	return nil
}

// boundaryExit records event i's boundary exit as its contribution,
// failing when none exists.
func (bl *Blossom) boundaryExit(events []int, i int32) error {
	ev := events[i]
	if math.IsInf(bl.bdistF[ev], 1) {
		return fmt.Errorf("blossom: no feasible matching (event %d has no boundary exit)", ev)
	}
	bl.evObs[i] = bl.bmask[ev]
	bl.evW[i] = bl.bdistF[ev]
	return nil
}

// matchComponent matches one component of events exactly, recording each
// member's doubled dual in bl.evY and its share of the matching (pairs
// credited to the lower event) in bl.evObs/bl.evW. Components of one or two
// events have closed forms; larger ones go through the blossom matcher on
// the component's events with the pairing savings as weights — its
// maximum-weight matching leaves exactly the events whose boundary exits
// beat any pairing unmatched.
func (bl *Blossom) matchComponent(events []int, k int, members []int32, edges []int32) error {
	m := len(members)
	for _, ev := range members {
		bl.evY[ev] = 0
		bl.evObs[ev] = false
		bl.evW[ev] = 0
	}
	if m == 1 {
		return bl.boundaryExit(events, members[0])
	}
	if m == 2 {
		// The component exists because pairing beats the boundary exits;
		// splitting the savings evenly is a tight feasible dual.
		e := edges[0]
		i, j := bl.edgeI[e], bl.edgeJ[e]
		bl.evY[i] = bl.edgeS[e]
		bl.evY[j] = bl.edgeS[e]
		key := int(i)*k + int(j)
		bl.evObs[i] = bl.candM[key]
		bl.evW[i] = bl.candF[key]
		return nil
	}

	// NOTE: dominant-pair elimination (strip edges whose savings strictly
	// beat both endpoints' best alternatives before the matcher) was tried
	// here a second time with sum-preserving balanced duals
	// 2y = s ± (B_i - B_j), after PR 4's revert of the naive version. The
	// pair constraints all hold, but the stage counters showed
	// blossom_rounds roughly DOUBLING on every bench leg: the radius
	// certificate reads the duals against *undiscovered* far pairs, and any
	// local per-pair split leaves one endpoint with a smaller dual than the
	// global wmatch solution would assign it, failing certificates the full
	// solve passes. The escalation re-grows cost far more than the matcher
	// rows saved. Conclusion recorded so round three starts from the duals,
	// not the elimination: only a post-pass that re-solves the duals
	// globally (or certificate-aware splitting) can make this win.
	for li, ev := range members {
		bl.local[ev] = int32(li)
	}
	bl.wm.reset(m)
	for _, e := range edges {
		bl.wm.setEdge(int(bl.local[bl.edgeI[e]])+1, int(bl.local[bl.edgeJ[e]])+1, bl.edgeS[e])
	}
	bl.wm.solve()

	for li := 0; li < m; li++ {
		bl.evY[members[li]] = bl.wm.lab[li+1]
		mt := int(bl.wm.match[li+1])
		if mt == 0 {
			if err := bl.boundaryExit(events, members[li]); err != nil {
				return err
			}
			continue
		}
		if mt-1 < li {
			continue // counted from the lower side
		}
		gi, gj := int(members[li]), int(members[mt-1])
		if gj < gi {
			gi, gj = gj, gi
		}
		key := gi*k + gj
		bl.evObs[members[li]] = bl.candM[key]
		bl.evW[members[li]] = bl.candF[key]
	}
	return nil
}

// bItem / bHeap: the integer-weight binary heap behind both the hoisted
// boundary table and per-shot region growth.
type bItem struct {
	d    int64
	node int32
}

type bHeap []bItem

func (h *bHeap) push(it bItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *bHeap) pop() bItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		m := l
		if r < last && old[r].d < old[l].d {
			m = r
		}
		if old[i].d <= old[m].d {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}
