package decoder

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dem"
	"repro/internal/extract"
)

// Property: decoder output is invariant under permutation of the event list
// (events are a set, not a sequence).
func TestEventOrderInvariance(t *testing.T) {
	_, g := circuitGraph(t, extract.Baseline, 3, 5e-3)
	uf := NewUnionFind(g)
	mw := NewMWPM(g)
	rng := rand.New(rand.NewPCG(97, 0))

	f := func(seed int64) bool {
		r := rand.New(rand.NewPCG(uint64(seed), 0))
		n := 2 + r.IntN(6)
		events := map[int]bool{}
		for len(events) < n {
			events[r.IntN(g.NumNodes)] = true
		}
		var sorted []int
		for e := range events {
			sorted = append(sorted, e)
		}
		// Two random permutations.
		a := append([]int(nil), sorted...)
		b := append([]int(nil), sorted...)
		rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		ra, err1 := uf.Decode(a)
		rb, err2 := uf.Decode(b)
		if err1 != nil || err2 != nil || ra != rb {
			return false
		}
		ma, err3 := mw.Decode(a)
		mb, err4 := mw.Decode(b)
		return err3 == nil && err4 == nil && ma == mb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Parity property: the UF decoder must succeed for any even-sized event set
// and for odd-sized sets when boundary edges exist.
func TestUFAlwaysTerminates(t *testing.T) {
	g := lineGraph(12, 1e-2)
	uf := NewUnionFind(g)
	rng := rand.New(rand.NewPCG(3, 0))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(8)
		seen := map[int]bool{}
		var events []int
		for len(events) < n {
			e := rng.IntN(12)
			if !seen[e] {
				seen[e] = true
				events = append(events, e)
			}
		}
		if _, err := uf.Decode(events); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, events, err)
		}
	}
}

// Property: the blossom radius certificate makes corrections independent of
// the growth schedule — a decoder whose initial radii are warm-started from
// the landmark nearest-event estimates must produce byte-identical
// predictions (and matching weights) to one pinned at the cold r0 schedule,
// across scheme x distance x noise scale on circuit-level graphs.
func TestBlossomWarmStartMatchesColdStart(t *testing.T) {
	cases := []struct {
		scheme extract.Scheme
		d      int
		phys   float64
		shots  int
	}{
		{extract.Baseline, 3, 2e-3, 400},
		{extract.Baseline, 5, 4e-3, 300},
		{extract.Baseline, 7, 4e-3, 200},
		{extract.CompactInterleaved, 3, 8e-3, 400},
		{extract.CompactInterleaved, 5, 2e-3, 300},
		{extract.CompactInterleaved, 7, 4e-3, 200},
	}
	for _, tc := range cases {
		m, g := circuitGraph(t, tc.scheme, tc.d, tc.phys)
		warm := NewBlossom(g)
		warm.warmStart = true
		cold := NewBlossom(g) // default: the cold r0 schedule
		s := m.NewSampler()
		rng := rand.New(rand.NewPCG(uint64(tc.d)*131+uint64(tc.phys*1e7), 41))
		for shot := 0; shot < tc.shots; shot++ {
			ev, _ := s.Sample(rng)
			wObs, wW, err1 := warm.DecodeWithWeight(ev)
			cObs, cW, err2 := cold.DecodeWithWeight(ev)
			if err1 != nil || err2 != nil {
				t.Fatalf("%v d=%d p=%g shot %d: warm err %v, cold err %v",
					tc.scheme, tc.d, tc.phys, shot, err1, err2)
			}
			if wObs != cObs {
				t.Fatalf("%v d=%d p=%g shot %d (events %v): warm predicts %v, cold %v",
					tc.scheme, tc.d, tc.phys, shot, ev, wObs, cObs)
			}
			if math.Abs(wW-cW) > weightTol(cW) {
				t.Fatalf("%v d=%d p=%g shot %d (events %v): warm weight %g vs cold %g",
					tc.scheme, tc.d, tc.phys, shot, ev, wW, cW)
			}
		}
	}
}

// Larger clustered syndromes: MWPM component decomposition must handle event
// sets well past the plain DP ceiling when they form separated clusters.
func TestMWPMLargeSeparatedClusters(t *testing.T) {
	g := lineGraph(60, 1e-3)
	mw := NewMWPM(g)
	// Three well-separated adjacent pairs plus a far singleton: 7 events,
	// each cluster tiny.
	events := []int{5, 6, 25, 26, 45, 46, 58}
	obs, err := mw.Decode(events)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs match internally (no flips); the singleton at 58 exits through
	// the right boundary, which carries the logical mask.
	if !obs {
		t.Error("expected the right-boundary match to flip the observable")
	}
	// A version with the singleton near the left boundary must not flip.
	obs, err = mw.Decode([]int{1, 25, 26, 45, 46, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if obs {
		t.Error("left-boundary singleton must not flip the observable")
	}
}

// Weighted-edge behavior: shrinking one edge's probability reroutes the
// matching around it.
func TestWeightSensitivity(t *testing.T) {
	// Path of 4 detectors; make the middle edge very unlikely so two
	// middle events prefer boundary exits... build two graphs and compare.
	cheap := func(midP float64) *dem.Graph {
		m := &dem.Model{NumDets: 4}
		add := func(dets []int32, obs bool, p float64) {
			m.Mechs = append(m.Mechs, dem.Mechanism{Dets: dets, Obs: obs, P: p})
		}
		add([]int32{0}, false, 0.1)
		add([]int32{0, 1}, false, 0.1)
		add([]int32{1, 2}, false, midP)
		add([]int32{2, 3}, false, 0.1)
		add([]int32{3}, true, 0.1)
		g, err := m.DecodingGraph()
		if err != nil {
			panic(err)
		}
		return g
	}
	// Likely middle edge: events {1,2} match directly, no flip.
	mw := NewMWPM(cheap(0.3))
	obs, err := mw.Decode([]int{1, 2})
	if err != nil || obs {
		t.Fatalf("likely middle edge: got (%v,%v)", obs, err)
	}
	// Very unlikely middle edge: cheaper to exit both boundaries; the right
	// exit carries the logical mask.
	mw = NewMWPM(cheap(1e-9))
	obs, err = mw.Decode([]int{1, 2})
	if err != nil || !obs {
		t.Fatalf("unlikely middle edge: got (%v,%v), want boundary rerouting with flip", obs, err)
	}
}
