package decoder

import (
	"math/rand/v2"
	"testing"

	"repro/internal/dem"
	"repro/internal/extract"
	"repro/internal/hardware"
)

func batchFixture(t testing.TB, phys float64) (*dem.Model, *dem.Graph) {
	t.Helper()
	e, err := extract.Build(extract.Config{
		Scheme: extract.CompactInterleaved, Distance: 3, Basis: extract.BasisZ,
		Params: hardware.Default().ScaledGatesTo(phys),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dem.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.DecodingGraph()
	if err != nil {
		t.Fatal(err)
	}
	return m, g
}

func fillBatch(t testing.TB, m *dem.Model, b *Batch, seed byte) {
	t.Helper()
	bs := m.NewBatchSampler()
	rng := rand.New(rand.NewChaCha8([32]byte{seed}))
	bs.Sample(rng)
	b.Reset()
	for s := 0; s < dem.BatchShots; s++ {
		ev, _ := bs.Shot(s)
		b.Add(ev)
	}
}

// DecodeBatch must agree shot for shot with Decode.
func TestDecodeBatchMatchesScalarDecode(t *testing.T) {
	m, g := batchFixture(t, 6e-3)
	for _, dec := range []BatchDecoder{NewUnionFind(g), NewMWPMFallback(g), NewBlossom(g), NewExactFallback(g)} {
		var b Batch
		out := make([]bool, dem.BatchShots)
		for trial := byte(0); trial < 20; trial++ {
			fillBatch(t, m, &b, trial)
			if err := dec.DecodeBatch(&b, out); err != nil {
				t.Fatalf("%s: %v", dec.Name(), err)
			}
			for i := 0; i < b.Len(); i++ {
				want, err := dec.Decode(b.Shot(i))
				if err != nil {
					t.Fatal(err)
				}
				if out[i] != want {
					t.Fatalf("%s: shot %d batch says %v, scalar says %v", dec.Name(), i, out[i], want)
				}
			}
		}
	}
}

// The batch path must be allocation-free in steady state — the acceptance
// bar for the Monte-Carlo hot loop.
func TestDecodeBatchZeroAllocs(t *testing.T) {
	m, g := batchFixture(t, 6e-3)
	for _, dec := range []BatchDecoder{NewUnionFind(g), NewMWPMFallback(g), NewBlossom(g)} {
		var b Batch
		out := make([]bool, dem.BatchShots)
		// Warm up buffers on a spread of batches.
		for trial := byte(0); trial < 10; trial++ {
			fillBatch(t, m, &b, trial)
			if err := dec.DecodeBatch(&b, out); err != nil {
				t.Fatal(err)
			}
		}
		fillBatch(t, m, &b, 42)
		allocs := testing.AllocsPerRun(50, func() {
			if err := dec.DecodeBatch(&b, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: DecodeBatch allocates %.1f times per batch in steady state", dec.Name(), allocs)
		}
	}
}

// The fallback wrapper must produce MWPM answers when matching succeeds and
// count union-find fallbacks when it does not.
func TestMWPMFallbackCounts(t *testing.T) {
	_, g := batchFixture(t, 6e-3)
	mw := NewMWPM(g)
	mw.MaxComponent = 0 // force every nonempty shot to fall back
	f := NewFallback(mw, g)
	pred, err := f.Decode([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	uf := NewUnionFind(g)
	want, err := uf.Decode([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred != want {
		t.Error("forced fallback must match union-find")
	}
	if f.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", f.Fallbacks)
	}
}
