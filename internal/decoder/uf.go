package decoder

import (
	"fmt"
	"math"

	"repro/internal/dem"
)

// UnionFind is the weighted-growth union-find decoder. Odd clusters of
// detection events grow along the decoding graph's edges at equal weight
// rate; clusters merge when an edge saturates, and stop being active when
// their defect parity is even or they touch the boundary. A peeling pass
// over the grown support then selects the correction edges, whose logical
// masks XOR into the observable prediction.
type UnionFind struct {
	g   *dem.Graph
	n   int     // real nodes; node n is the virtual boundary
	cap []int64 // integer edge capacities from matching weights

	// Reusable per-decode state.
	grown    []int64
	parent   []int32
	rank     []int8
	parity   []bool // defect parity per root
	boundary []bool // root touches the virtual boundary
	defect   []bool
	seeded   []bool    // node's adjacency already added to its cluster
	edgeList [][]int32 // per-root candidate growth edges
	sat      []bool    // edge saturated (in the support)
	visited  []bool
	bfsOrder []int32
	bfsEdge  []int32 // edge used to reach node in the forest
	bfsPar   []int32
}

// capUnit converts float weights to integer capacities; chosen so relative
// weights keep about six significant digits.
const capScale = 1 << 20

// NewUnionFind builds a union-find decoder over g.
func NewUnionFind(g *dem.Graph) *UnionFind {
	n := g.NumNodes
	u := &UnionFind{g: g, n: n}
	minW := math.Inf(1)
	for i := range g.Edges {
		if w := g.Edges[i].W; w > 0 && w < minW {
			minW = w
		}
	}
	if math.IsInf(minW, 1) {
		minW = 1
	}
	u.cap = make([]int64, len(g.Edges))
	for i := range g.Edges {
		c := int64(math.Round(g.Edges[i].W / minW * capScale))
		if c < 1 {
			c = 1
		}
		u.cap[i] = c
	}
	u.grown = make([]int64, len(g.Edges))
	u.parent = make([]int32, n+1)
	u.rank = make([]int8, n+1)
	u.parity = make([]bool, n+1)
	u.boundary = make([]bool, n+1)
	u.defect = make([]bool, n+1)
	u.seeded = make([]bool, n+1)
	u.edgeList = make([][]int32, n+1)
	u.sat = make([]bool, len(g.Edges))
	u.visited = make([]bool, n+1)
	u.bfsEdge = make([]int32, n+1)
	u.bfsPar = make([]int32, n+1)
	return u
}

// Name implements Decoder.
func (u *UnionFind) Name() string { return "union-find" }

func (u *UnionFind) find(v int32) int32 {
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

// endpoint returns the decoding-graph endpoints of edge ei with the boundary
// mapped to virtual node n.
func (u *UnionFind) endpoints(ei int32) (int32, int32) {
	e := &u.g.Edges[ei]
	v := e.V
	if v == dem.BoundaryNode {
		v = int32(u.n)
	}
	return e.U, v
}

// Decode implements Decoder.
func (u *UnionFind) Decode(events []int) (bool, error) {
	if len(events) == 0 {
		return false, nil
	}
	if len(events)%2 == 1 && u.g.Stats.BoundaryEdges == 0 {
		return false, fmt.Errorf("union-find: odd event count with no boundary")
	}
	n := u.n
	// Reset state (full reset keeps the code simple; decode cost is
	// dominated by growth anyway).
	for i := range u.grown {
		u.grown[i] = 0
		u.sat[i] = false
	}
	for v := 0; v <= n; v++ {
		u.parent[v] = int32(v)
		u.rank[v] = 0
		u.parity[v] = false
		u.boundary[v] = false
		u.defect[v] = false
		u.edgeList[v] = u.edgeList[v][:0]
		u.visited[v] = false
		u.seeded[v] = false
	}
	u.boundary[n] = true
	u.seeded[n] = true // the virtual boundary has no adjacency list
	for _, d := range events {
		u.defect[d] = true
		u.parity[d] = true
	}
	// Seed candidate edge lists from defect clusters.
	for _, d := range events {
		u.edgeList[d] = append(u.edgeList[d], u.g.Adj[d]...)
		u.seeded[d] = true
	}

	active := make([]int32, 0, len(events))
	refreshActive := func() {
		active = active[:0]
		for _, d := range events {
			r := u.find(int32(d))
			if u.parity[r] && !u.boundary[r] {
				// Deduplicate roots.
				dup := false
				for _, a := range active {
					if a == r {
						dup = true
						break
					}
				}
				if !dup {
					active = append(active, r)
				}
			}
		}
	}

	union := func(a, b int32) int32 {
		// A node joining a growing cluster contributes its own adjacency
		// to the cluster's candidate growth edges exactly once.
		for _, v := range [2]int32{a, b} {
			if !u.seeded[v] {
				u.seeded[v] = true
				rv := u.find(v)
				u.edgeList[rv] = append(u.edgeList[rv], u.g.Adj[v]...)
			}
		}
		ra, rb := u.find(a), u.find(b)
		if ra == rb {
			return ra
		}
		if u.rank[ra] < u.rank[rb] {
			ra, rb = rb, ra
		}
		if u.rank[ra] == u.rank[rb] {
			u.rank[ra]++
		}
		u.parent[rb] = ra
		u.parity[ra] = u.parity[ra] != u.parity[rb]
		u.boundary[ra] = u.boundary[ra] || u.boundary[rb]
		if len(u.edgeList[rb]) > len(u.edgeList[ra]) {
			u.edgeList[ra], u.edgeList[rb] = u.edgeList[rb], u.edgeList[ra]
		}
		u.edgeList[ra] = append(u.edgeList[ra], u.edgeList[rb]...)
		u.edgeList[rb] = nil
		return ra
	}

	for iter := 0; ; iter++ {
		if iter > 4*len(u.g.Edges)+16 {
			return false, fmt.Errorf("union-find: growth failed to converge")
		}
		refreshActive()
		if len(active) == 0 {
			break
		}
		// Minimum slack per growth unit across all candidate edges.
		var minDelta int64 = math.MaxInt64
		for _, r := range active {
			kept := u.edgeList[r][:0]
			for _, ei := range u.edgeList[r] {
				if u.sat[ei] {
					continue
				}
				a, b := u.endpoints(ei)
				ra, rb := u.find(a), u.find(b)
				if ra == rb {
					continue // internal edge
				}
				kept = append(kept, ei)
				ends := int64(1)
				other := rb
				if ra != r {
					other = ra
				}
				if u.parity[other] && !u.boundary[other] {
					ends = 2 // both sides grow
				}
				slack := (u.cap[ei] - u.grown[ei] + ends - 1) / ends
				if slack < minDelta {
					minDelta = slack
				}
			}
			u.edgeList[r] = kept
		}
		if minDelta == math.MaxInt64 {
			return false, fmt.Errorf("union-find: active cluster with no growable edges")
		}
		// Grow and merge.
		for _, r := range active {
			if u.find(r) != r {
				continue // merged earlier this round
			}
			for _, ei := range u.edgeList[r] {
				if u.sat[ei] {
					continue
				}
				a, b := u.endpoints(ei)
				if u.find(a) == u.find(b) {
					continue
				}
				u.grown[ei] += minDelta
				if u.grown[ei] >= u.cap[ei] {
					u.grown[ei] = u.cap[ei]
					u.sat[ei] = true
					union(a, b)
				}
			}
		}
	}
	return u.peel()
}

// peel extracts a correction from the grown support and returns its logical
// mask.
func (u *UnionFind) peel() (bool, error) {
	n := u.n
	// Support adjacency: saturated edges only.
	// BFS forest rooted at the boundary first, then any unvisited node.
	u.bfsOrder = u.bfsOrder[:0]
	var queue []int32

	push := func(v, parent, viaEdge int32) {
		u.visited[v] = true
		u.bfsPar[v] = parent
		u.bfsEdge[v] = viaEdge
		queue = append(queue, v)
		u.bfsOrder = append(u.bfsOrder, v)
	}

	expand := func(v int32) {
		var adj []int32
		if v == int32(n) {
			// The boundary's incident saturated edges: scan all saturated
			// boundary edges (cheap: boundary edges only).
			for ei := range u.g.Edges {
				if u.sat[ei] && u.g.Edges[ei].V == dem.BoundaryNode {
					w := u.g.Edges[ei].U
					if !u.visited[w] {
						push(w, v, int32(ei))
					}
				}
			}
			return
		}
		adj = u.g.Adj[v]
		for _, ei := range adj {
			if !u.sat[ei] {
				continue
			}
			a, b := u.endpoints(ei)
			w := a
			if w == v {
				w = b
			}
			if !u.visited[w] {
				push(w, v, int32(ei))
			}
		}
	}

	// Root at boundary.
	push(int32(n), -1, -1)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		expand(v)
	}
	// Remaining components (clusters not touching the boundary).
	for v := 0; v < n; v++ {
		if u.visited[v] || !u.defect[v] {
			continue
		}
		// BFS this component from v.
		push(int32(v), -1, -1)
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			expand(w)
		}
	}

	// Peel in reverse BFS order.
	obs := false
	for i := len(u.bfsOrder) - 1; i >= 0; i-- {
		v := u.bfsOrder[i]
		if v == int32(n) || u.bfsPar[v] == -1 {
			if v != int32(n) && u.defect[v] {
				return false, fmt.Errorf("union-find: unresolved defect at root %d", v)
			}
			continue
		}
		if u.defect[v] {
			ei := u.bfsEdge[v]
			if u.g.Edges[ei].Obs {
				obs = !obs
			}
			p := u.bfsPar[v]
			if p != int32(n) {
				u.defect[p] = !u.defect[p]
			}
			u.defect[v] = false
		}
	}
	return obs, nil
}
