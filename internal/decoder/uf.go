package decoder

import (
	"fmt"
	"math"

	"repro/internal/dem"
)

// UnionFind is the weighted-growth union-find decoder. Odd clusters of
// detection events grow along the decoding graph's edges at equal weight
// rate; clusters merge when an edge saturates, and stop being active when
// their defect parity is even or they touch the boundary. A peeling pass
// over the grown support then selects the correction edges, whose logical
// masks XOR into the observable prediction.
//
// All per-decode state is epoch-stamped: a node or edge is implicitly in
// its default state unless its stamp matches the current decode, so a shot
// costs time proportional to the grown region, not the graph size, and the
// steady state allocates nothing.
type UnionFind struct {
	g *dem.Graph
	n int // real nodes; node n is the virtual boundary
	// All per-edge state — capacity, endpoints, growth, stamps, cached
	// roots — lives in one flat record array so the growth loops touch one
	// cache line per edge instead of one per field (see ufEdge).
	ue []ufEdge

	// Reusable per-decode state, valid only where the epoch matches.
	epoch uint64
	ep32  uint32 // uint32(epoch); node and edge stamps compare against this
	// All per-node state the growth loops touch lives in one flat record
	// array (see ufNode); only the per-root slice lists stay separate.
	un        []ufNode
	edgeList  [][]int32 // per-root candidate growth edges
	activeGen uint32
	bfsOrder  []int32
	bfsEdge   []int32 // edge used to reach node in the forest
	bfsPar    []int32
	active    []int32
	queue     []int32
	satBound  []int32 // saturated boundary edges of this decode
	events    []int   // current shot (caller-owned)
	// Per-root growable-edge cache: seg[r] is root r's growable edge ids as
	// of r's last slack scan, minUnit[r] the minimum per-unit slack found
	// then, baseCum[r] the growth clock at that scan, and scanEpoch/staleR
	// its validity. A clean root (scanned this decode, untouched by any
	// merge in its neighborhood since) need not rescan: every growable
	// edge's per-unit slack has fallen by exactly the summed growth since
	// the scan, so the cached minimum just shifts — the skip that replaces
	// the per-round growEdges rebuild. The ids are enough: a clean root's
	// edges have unchanged ends (an end merge would have stale-marked it),
	// so the edge records' ra/rb still hold each edge's scan-time roots —
	// storing bare int32 ids keeps the per-scan write traffic to four bytes
	// per edge instead of a padded record.
	seg      [][]int32
	cumDelta int64 // summed minDelta growth this decode

	stats DecoderStats
}

// ufNode packs every per-node field the growth loops and find touch into
// one 72-byte record, laid out hot-first: the fields a neighbor scan reads
// about the edge's other side (appliedCum, parent, ordAt, appliedEpoch,
// activeAt, parity, boundary) sit in the first 26 bytes, so the "what is
// the other cluster doing" lookup — formerly five parallel-array misses —
// is one cache line.
//
// Deferred growth application: a round's grow pass walks only the
// clusters that can saturate an edge this round (effective slack ==
// minDelta) plus any cluster a union touched. Every other active
// cluster's per-edge contribution is uniform (minDelta per round per
// seg edge), so it is reconstructed from the growth clock and applied
// when the cluster next walks or rescans: appliedCum is the clock
// through which the edges' grown includes this root's side, effR the
// round's effective slack, ordAt the position in this round's active
// order (skipped clusters' contributions are credited virtually by order
// in saturation checks, so the eager schedule's saturation order — and
// the golden-pinned predictions — are reproduced exactly), and
// forcedAt/walkedAt mark union-touched and already-walked roots.
//
// epoch/scanEpoch/appliedEpoch are the low 32 bits of the decoder epoch
// (bumpEpoch clears them on wrap); activeAt/forcedAt/walkedAt compare
// against activeGen, which Decode rewinds long before it can wrap.
type ufNode struct {
	appliedCum   int64
	parent       int32
	ordAt        int32
	appliedEpoch uint32
	activeAt     uint32 // last activeGen this root was collected in
	parity       bool   // defect parity per root
	boundary     bool   // root touches the virtual boundary
	staleR       bool
	defect       bool
	seeded       bool // node's adjacency already added to its cluster
	visited      bool
	rank         int8
	epoch        uint32 // lazy-reset stamp for the whole record
	scanEpoch    uint32
	forcedAt     uint32
	walkedAt     uint32
	minUnit      int64
	baseCum      int64
	effR         int64
}

// ufEdge packs every per-edge field the growth loops touch into one
// 40-byte record, so a scan or walk costs one cache line per edge where
// the parallel-array layout cost up to seven. The record holds:
//
//   - grown/cap: growth progress and the integer capacity. Saturation is
//     grown == cap — the deferred-growth invariant (a cluster whose
//     effective slack exceeds minDelta cannot saturate an edge that
//     round) keeps every non-saturating write strictly below cap, so no
//     separate flag is needed.
//   - ra/rb + rootEpoch: the cross-round root cache — valid while both
//     cached nodes are still cluster roots (a merged root stops being
//     its own parent), turning per-round re-resolution into two loads.
//   - u/v: the endpoints, with the boundary mapped to virtual node n.
//   - epoch: the lazy-reset stamp for grown.
//
// The stamps are the low 32 bits of the decoder epoch; bumpEpoch clears
// them on wrap, so a stale stamp can never alias a live one.
type ufEdge struct {
	grown     int64
	cap       int64
	ra, rb    int32
	u, v      int32
	rootEpoch uint32
	epoch     uint32
}

// capUnit converts float weights to integer capacities; chosen so relative
// weights keep about six significant digits.
const capScale = 1 << 20

// NewUnionFind builds a union-find decoder over g.
func NewUnionFind(g *dem.Graph) *UnionFind {
	n := g.NumNodes
	u := &UnionFind{g: g, n: n}
	u.ue = make([]ufEdge, len(g.Edges))
	u.loadEdges(g)
	u.un = make([]ufNode, n+1)
	u.edgeList = make([][]int32, n+1)
	u.seg = make([][]int32, n+1)
	u.bfsEdge = make([]int32, n+1)
	u.bfsPar = make([]int32, n+1)
	return u
}

// loadEdges recomputes the integer capacities and flat endpoints from g.
func (u *UnionFind) loadEdges(g *dem.Graph) {
	minW := math.Inf(1)
	for i := range g.Edges {
		if w := g.Edges[i].W; w > 0 && w < minW {
			minW = w
		}
	}
	if math.IsInf(minW, 1) {
		minW = 1
	}
	for i := range g.Edges {
		c := int64(math.Round(g.Edges[i].W / minW * capScale))
		if c < 1 {
			c = 1
		}
		u.ue[i].cap = c
		u.ue[i].u = g.Edges[i].U
		v := g.Edges[i].V
		if v == dem.BoundaryNode {
			v = int32(u.n)
		}
		u.ue[i].v = v
	}
}

// bumpEpoch starts a new decode (or rebind) generation. Edge stamps hold
// only the low 32 bits of the epoch; on wrap they are cleared and the
// zero value skipped, so a stamp from 2^32 generations ago can never read
// as current.
func (u *UnionFind) bumpEpoch() {
	u.epoch++
	if uint32(u.epoch) == 0 {
		for i := range u.ue {
			u.ue[i].epoch = 0
			u.ue[i].rootEpoch = 0
		}
		for i := range u.un {
			u.un[i].epoch = 0
			u.un[i].scanEpoch = 0
			u.un[i].appliedEpoch = 0
		}
		u.epoch++
	}
	u.ep32 = uint32(u.epoch)
	// activeGen stamps (activeAt/forcedAt/walkedAt) are compared within a
	// decode only; rewind the generation counter between decodes long
	// before it can wrap. A single decode advances it by at most a few per
	// round, bounded by the convergence guard — nowhere near 2^30.
	if u.activeGen >= 1<<30 {
		for i := range u.un {
			u.un[i].activeAt = 0
			u.un[i].forcedAt = 0
			u.un[i].walkedAt = 0
		}
		u.activeGen = 0
	}
}

// Rebind points the decoder at a new graph, reusing every per-node and
// per-edge buffer when the shape matches (same node and edge counts — e.g.
// the same hoisted topology at a different noise scale). The epoch-stamped
// scratch needs no reset: stale stamps read as default state. It reports
// whether the rebind happened; on false the decoder is unchanged and the
// caller should build a fresh one.
func (u *UnionFind) Rebind(g *dem.Graph) bool {
	if g.NumNodes != u.n || len(g.Edges) != len(u.ue) {
		return false
	}
	u.g = g
	u.loadEdges(g)
	// Invalidate the cross-decode edge-root cache: the stamps reference the
	// previous graph's decodes, and epoch monotonicity is all that guards
	// them.
	u.bumpEpoch()
	return true
}

// Name implements Decoder.
func (u *UnionFind) Name() string { return "union-find" }

// DecoderStats implements StatsSource.
func (u *UnionFind) DecoderStats() DecoderStats { return u.stats }

// DecodeBatch implements BatchDecoder. Zero per-shot heap allocations in
// steady state.
func (u *UnionFind) DecodeBatch(b *Batch, out []bool) error {
	return decodeSerial(u, b, out)
}

// ensureNode lazily resets node v to its default state for this decode.
func (u *UnionFind) ensureNode(v int32) {
	if u.un[v].epoch == u.ep32 {
		return
	}
	u.un[v].epoch = u.ep32
	u.un[v].parent = v
	u.un[v].rank = 0
	u.un[v].parity = false
	u.un[v].boundary = v == int32(u.n)
	u.un[v].defect = false
	u.un[v].seeded = v == int32(u.n) // the virtual boundary has no adjacency
	u.edgeList[v] = u.edgeList[v][:0]
	u.un[v].visited = false
}

// ensureEdge lazily resets edge ei's growth state for this decode.
func (u *UnionFind) ensureEdge(ei int32) {
	e := &u.ue[ei]
	if e.epoch == u.ep32 {
		return
	}
	e.epoch = u.ep32
	e.grown = 0
}

func (u *UnionFind) find(v int32) int32 {
	u.ensureNode(v)
	for u.un[v].parent != v {
		u.un[v].parent = u.un[u.un[v].parent].parent
		v = u.un[v].parent
	}
	return v
}

// endpoints returns the decoding-graph endpoints of edge ei with the
// boundary mapped to virtual node n.
func (u *UnionFind) endpoints(ei int32) (int32, int32) {
	return u.ue[ei].u, u.ue[ei].v
}

// seedAdjacency adds node v's incident edges to root r's candidate list,
// resetting each edge's growth state on first sight this decode.
func (u *UnionFind) seedAdjacency(r, v int32) {
	for _, ei := range u.g.Adj[v] {
		u.ensureEdge(ei)
		u.edgeList[r] = append(u.edgeList[r], ei)
	}
}

// Decode implements Decoder.
func (u *UnionFind) Decode(events []int) (bool, error) {
	if len(events) == 0 {
		return false, nil
	}
	if len(events)%2 == 1 && u.g.Stats.BoundaryEdges == 0 {
		return false, fmt.Errorf("union-find: odd event count with no boundary")
	}
	n := u.n
	u.bumpEpoch()
	u.events = events
	u.satBound = u.satBound[:0]
	u.ensureNode(int32(n))
	for _, d := range events {
		u.ensureNode(int32(d))
		u.un[d].defect = true
		u.un[d].parity = true
	}
	// Seed candidate edge lists from defect clusters.
	for _, d := range events {
		u.seedAdjacency(int32(d), int32(d))
		u.un[d].seeded = true
	}

	u.active = u.active[:0]
	refreshActive := func() {
		u.activeGen++
		u.active = u.active[:0]
		for _, d := range events {
			// Inline root walk: every event node was ensured at decode
			// start, so find's lazy-reset check is dead weight here.
			r := int32(d)
			for u.un[r].parent != r {
				u.un[r].parent = u.un[u.un[r].parent].parent
				r = u.un[r].parent
			}
			nd := &u.un[r]
			if nd.parity && !nd.boundary && nd.activeAt != u.activeGen {
				// A cluster entering the active set after a round away (or
				// for the first time) was not growing, so no deferred share
				// is owed: sync its growth clock, or the idle gap would read
				// as pending growth.
				if nd.activeAt != u.activeGen-1 || nd.appliedEpoch != u.ep32 {
					nd.appliedCum = u.cumDelta
					nd.appliedEpoch = u.ep32
				}
				nd.activeAt = u.activeGen
				nd.ordAt = int32(len(u.active))
				u.active = append(u.active, r)
			}
		}
	}

	union := func(a, b int32) int32 {
		// The caller passes the edge's cached scan-time roots: mark both
		// for a forced walk so their segments' deferred growth (plus this
		// round's share) is applied before the round closes — exactly what
		// the eager schedule's unconditional walk did for them.
		u.un[a].forcedAt = u.activeGen
		u.un[b].forcedAt = u.activeGen
		// A node joining a growing cluster contributes its own adjacency
		// to the cluster's candidate growth edges exactly once.
		for _, v := range [2]int32{a, b} {
			u.ensureNode(v)
			if !u.un[v].seeded {
				u.un[v].seeded = true
				r := u.find(v)
				u.seedAdjacency(r, v)
				u.un[r].staleR = true // new growth candidates invalidate the cached minimum
			}
		}
		ra, rb := u.find(a), u.find(b)
		if ra == rb {
			return ra
		}
		if u.un[ra].rank < u.un[rb].rank {
			ra, rb = rb, ra
		}
		if u.un[ra].rank == u.un[rb].rank {
			u.un[ra].rank++
		}
		u.un[rb].parent = ra
		u.un[ra].parity = u.un[ra].parity != u.un[rb].parity
		u.un[ra].boundary = u.un[ra].boundary || u.un[rb].boundary
		if len(u.edgeList[rb]) > len(u.edgeList[ra]) {
			u.edgeList[ra], u.edgeList[rb] = u.edgeList[rb], u.edgeList[ra]
		}
		u.edgeList[ra] = append(u.edgeList[ra], u.edgeList[rb]...)
		// Keep rb's capacity for later decodes; rb is no longer a root, so
		// its list is dead until its next epoch reset.
		u.edgeList[rb] = u.edgeList[rb][:0]
		// Every cached slack minimum whose cluster can see this merge is now
		// stale: the merged cluster itself (parity, boundary, and membership
		// changed) and any neighbor — a shared edge's ends may have changed
		// or the edge may have become internal. Neighbors further out are
		// untouched: this cluster's own status is what their ends read, and
		// it only changes at its own merges.
		u.un[ra].staleR = true
		for _, ei := range u.edgeList[ra] {
			if e := &u.ue[ei]; e.rootEpoch == u.ep32 {
				// Marking the cached ids is sufficient: a cached root that
				// has since merged was stale-marked by that earlier union,
				// and its successor cannot have rescanned since or the cache
				// would hold the successor. Edges never scanned this decode
				// back no cached minimum at all.
				u.un[e.ra].staleR = true
				u.un[e.rb].staleR = true
			}
		}
		return ra
	}

	var rounds, scans int64
	u.cumDelta = 0
	for iter := 0; ; iter++ {
		if iter > 4*len(u.g.Edges)+16 {
			return false, fmt.Errorf("union-find: growth failed to converge")
		}
		refreshActive()
		if len(u.active) == 0 {
			break
		}
		rounds++
		// Minimum slack per growth unit across all candidate edges. A clean
		// root — scanned this decode, no merge in its neighborhood since —
		// reuses its cached segment: every growable edge of such a root grew
		// in each round since the scan (ends unchanged, so per-unit slack
		// fell by exactly that round's minDelta), and the cached minimum
		// shifted by the summed growth. Only stale roots rescan.
		var minDelta int64 = math.MaxInt64
		for _, r := range u.active {
			nd := &u.un[r]
			if nd.scanEpoch == u.ep32 && !nd.staleR {
				eff := nd.minUnit
				if eff != math.MaxInt64 {
					eff -= u.cumDelta - nd.baseCum
				}
				nd.effR = eff
				if eff < minDelta {
					minDelta = eff
				}
				continue
			}
			// Apply this root's deferred growth to its old segment before
			// rebuilding it: the rounds it skipped owed each unsaturated
			// edge a uniform amount from this side. (A stale root's old
			// edges are never internal — becoming internal requires this
			// cluster itself to have merged, and merge sides are
			// force-walked, resetting the deficit that round.)
			if nd.appliedEpoch == u.ep32 {
				if pend := u.cumDelta - nd.appliedCum; pend > 0 {
					for _, ei := range u.seg[r] {
						if e := &u.ue[ei]; e.grown != e.cap {
							e.grown += pend
						}
					}
				}
			}
			scans += int64(len(u.edgeList[r]))
			kept := u.edgeList[r][:0]
			seg := u.seg[r][:0]
			// Track the ends=1 and ends=2 minima separately so the ceiling
			// division happens once per scan, not once per edge.
			var min1, min2 int64 = math.MaxInt64, math.MaxInt64
			for _, ei := range u.edgeList[r] {
				e := &u.ue[ei]
				c := e.cap
				if e.grown == c {
					continue // saturated
				}
				ra, rb := e.ra, e.rb
				if e.rootEpoch != u.ep32 || u.un[ra].parent != ra || u.un[rb].parent != rb {
					ra, rb = u.find(e.u), u.find(e.v)
					e.ra, e.rb, e.rootEpoch = ra, rb, u.ep32
				}
				if ra == rb {
					continue // internal edge
				}
				kept = append(kept, ei)
				seg = append(seg, ei)
				other := rb
				if ra != r {
					other = ra
				}
				remain := c - e.grown
				// The other side's contribution may still be deferred;
				// credit it from the growth clock so remain reflects the
				// fully-applied value.
				o := &u.un[other]
				if o.activeAt == u.activeGen && o.appliedEpoch == u.ep32 {
					remain -= u.cumDelta - o.appliedCum
				}
				if o.parity && !o.boundary {
					if remain < min2 {
						min2 = remain // both sides grow
					}
				} else if remain < min1 {
					min1 = remain
				}
			}
			u.edgeList[r] = kept
			u.seg[r] = seg
			mu := min1
			if min2 != math.MaxInt64 {
				if h := (min2 + 1) / 2; h < mu {
					mu = h
				}
			}
			nd.minUnit = mu
			nd.baseCum = u.cumDelta
			nd.appliedCum = u.cumDelta
			nd.appliedEpoch = u.ep32
			nd.scanEpoch = u.ep32
			nd.staleR = false
			nd.effR = mu
			if mu < minDelta {
				minDelta = mu
			}
		}
		if minDelta == math.MaxInt64 {
			return false, fmt.Errorf("union-find: active cluster with no growable edges")
		}
		// Grow and merge. Only clusters whose effective slack equals
		// minDelta can saturate an edge this round; every other cluster's
		// walk in the eager schedule was pure bookkeeping (grown += delta
		// on each seg edge), so it is deferred via appliedCum and the walk
		// skipped. Walks that do happen run at the cluster's position in
		// active order and credit skipped earlier clusters' contributions
		// virtually (the miss term), so each saturation check sees exactly
		// the value the eager schedule saw at the same position — the
		// saturation and union order, and with them the golden-pinned
		// predictions, are reproduced bit for bit. Union-touched clusters
		// are force-walked (at their position, or after the loop) so the
		// round closes with their edges fully applied.
		merged := false
		walkSeg := func(r, myOrd int32) {
			nd := &u.un[r]
			nd.walkedAt = u.activeGen
			add := u.cumDelta + minDelta - nd.appliedCum
			nd.appliedCum = u.cumDelta + minDelta
			for _, ei := range u.seg[r] {
				e := &u.ue[ei]
				if e.grown == e.cap {
					continue // saturated
				}
				ra, rb := e.ra, e.rb
				if merged && (u.un[ra].parent != ra || u.un[rb].parent != rb) {
					// Only a segment whose cached root died can have become
					// internal; two live distinct roots still are the
					// endpoints' roots.
					if u.find(e.u) == u.find(e.v) {
						continue
					}
				}
				g := e.grown + add
				// The other side's share not yet in grown: its deferred
				// rounds, plus this round's delta if its position already
				// passed (walked or not — the eager schedule had grown the
				// edge from that side by now either way; if it walked, the
				// negative deficit cancels the credit).
				var miss int64
				other := rb
				if ra != r {
					other = ra
				}
				if o := &u.un[other]; o.activeAt == u.activeGen {
					if o.appliedEpoch == u.ep32 {
						miss = u.cumDelta - o.appliedCum
					}
					if o.ordAt < myOrd {
						miss += minDelta
					}
				}
				if c := e.cap; g+miss >= c {
					e.grown = c // grown == cap is the saturation mark
					if e.v == int32(n) {
						u.satBound = append(u.satBound, ei)
					}
					union(ra, rb)
					merged = true
				} else {
					e.grown = g
				}
			}
		}
		for ai, r := range u.active {
			if u.un[r].effR == minDelta || u.un[r].forcedAt == u.activeGen {
				walkSeg(r, int32(ai))
			}
		}
		if merged {
			// Clusters a union touched after their position was passed:
			// apply their deferred share now. Their effective slack exceeds
			// minDelta, so these walks never saturate anything.
			for ai, r := range u.active {
				if u.un[r].forcedAt == u.activeGen && u.un[r].walkedAt != u.activeGen {
					walkSeg(r, int32(ai))
				}
			}
		}
		u.cumDelta += minDelta
	}
	u.stats.UFGrowthRounds += rounds
	u.stats.UFEdgeScans += scans
	return u.peel()
}

// peel extracts a correction from the grown support and returns its logical
// mask. Every node it can reach was touched by growth (saturated edges only
// connect ensured nodes), so the epoch-stamped state is always valid here.
func (u *UnionFind) peel() (bool, error) {
	n := u.n
	// Support adjacency: saturated edges only.
	// BFS forest rooted at the boundary first, then any unvisited node.
	u.bfsOrder = u.bfsOrder[:0]
	u.queue = u.queue[:0]
	head := 0

	push := func(v, parent, viaEdge int32) {
		u.un[v].visited = true
		u.bfsPar[v] = parent
		u.bfsEdge[v] = viaEdge
		u.queue = append(u.queue, v)
		u.bfsOrder = append(u.bfsOrder, v)
	}

	expand := func(v int32) {
		if v == int32(n) {
			// The boundary's incident saturated edges, recorded during
			// growth.
			for _, ei := range u.satBound {
				w := u.g.Edges[ei].U
				if !u.un[w].visited {
					push(w, v, ei)
				}
			}
			return
		}
		for _, ei := range u.g.Adj[v] {
			e := &u.ue[ei]
			if e.epoch != u.ep32 || e.grown != e.cap {
				continue
			}
			w := e.u
			if w == v {
				w = e.v
			}
			if !u.un[w].visited {
				push(w, v, int32(ei))
			}
		}
	}

	// Root at boundary.
	push(int32(n), -1, -1)
	for head < len(u.queue) {
		v := u.queue[head]
		head++
		expand(v)
	}
	// Remaining components (clusters not touching the boundary): every
	// defect is an event, so scanning the shot finds all of them.
	for _, d := range u.events {
		v := int32(d)
		if u.un[v].visited || !u.un[v].defect {
			continue
		}
		// BFS this component from v.
		push(v, -1, -1)
		for head < len(u.queue) {
			w := u.queue[head]
			head++
			expand(w)
		}
	}

	u.stats.UFPeelNodes += int64(len(u.bfsOrder))

	// Peel in reverse BFS order.
	obs := false
	for i := len(u.bfsOrder) - 1; i >= 0; i-- {
		v := u.bfsOrder[i]
		if v == int32(n) || u.bfsPar[v] == -1 {
			if v != int32(n) && u.un[v].defect {
				return false, fmt.Errorf("union-find: unresolved defect at root %d", v)
			}
			continue
		}
		if u.un[v].defect {
			ei := u.bfsEdge[v]
			if u.g.Edges[ei].Obs {
				obs = !obs
			}
			p := u.bfsPar[v]
			if p != int32(n) {
				u.un[p].defect = !u.un[p].defect
			}
			u.un[v].defect = false
		}
	}
	return obs, nil
}
