package decoder

import (
	"fmt"
	"math"

	"repro/internal/dem"
)

// UnionFind is the weighted-growth union-find decoder. Odd clusters of
// detection events grow along the decoding graph's edges at equal weight
// rate; clusters merge when an edge saturates, and stop being active when
// their defect parity is even or they touch the boundary. A peeling pass
// over the grown support then selects the correction edges, whose logical
// masks XOR into the observable prediction.
//
// All per-decode state is epoch-stamped: a node or edge is implicitly in
// its default state unless its stamp matches the current decode, so a shot
// costs time proportional to the grown region, not the graph size, and the
// steady state allocates nothing.
type UnionFind struct {
	g   *dem.Graph
	n   int     // real nodes; node n is the virtual boundary
	cap []int64 // integer edge capacities from matching weights
	// Flat edge endpoints (boundary mapped to node n) for cache-friendly
	// access in the growth loop.
	edgeU, edgeV []int32

	// Reusable per-decode state, valid only where the epoch matches.
	epoch     uint64
	nodeEpoch []uint64
	edgeEpoch []uint64
	grown     []int64
	parent    []int32
	rank      []int8
	parity    []bool // defect parity per root
	boundary  []bool // root touches the virtual boundary
	defect    []bool
	seeded    []bool    // node's adjacency already added to its cluster
	edgeList  [][]int32 // per-root candidate growth edges
	sat       []bool    // edge saturated (in the support)
	visited   []bool
	activeGen uint64
	activeAt  []uint64 // last activeGen a root was collected in
	bfsOrder  []int32
	bfsEdge   []int32 // edge used to reach node in the forest
	bfsPar    []int32
	active    []int32
	queue     []int32
	satBound  []int32 // saturated boundary edges of this decode
	events    []int   // current shot (caller-owned)
	// Per-round growable-edge scratch: edge id plus the endpoint roots
	// computed in the slack pass (valid in the grow pass until a merge).
	growEdges []growEdge
	// Cross-round per-edge root cache: valid while both cached nodes are
	// still cluster roots (a merged root stops being its own parent), which
	// turns the per-round re-resolution of stable edges into two loads.
	edgeRA, edgeRB []int32
	edgeRootEpoch  []uint64
}

type growEdge struct {
	ei     int32
	ra, rb int32
}

// capUnit converts float weights to integer capacities; chosen so relative
// weights keep about six significant digits.
const capScale = 1 << 20

// NewUnionFind builds a union-find decoder over g.
func NewUnionFind(g *dem.Graph) *UnionFind {
	n := g.NumNodes
	u := &UnionFind{g: g, n: n}
	u.cap = make([]int64, len(g.Edges))
	u.edgeU = make([]int32, len(g.Edges))
	u.edgeV = make([]int32, len(g.Edges))
	u.loadEdges(g)
	u.edgeRA = make([]int32, len(g.Edges))
	u.edgeRB = make([]int32, len(g.Edges))
	u.edgeRootEpoch = make([]uint64, len(g.Edges))
	u.nodeEpoch = make([]uint64, n+1)
	u.edgeEpoch = make([]uint64, len(g.Edges))
	u.grown = make([]int64, len(g.Edges))
	u.parent = make([]int32, n+1)
	u.rank = make([]int8, n+1)
	u.parity = make([]bool, n+1)
	u.boundary = make([]bool, n+1)
	u.defect = make([]bool, n+1)
	u.seeded = make([]bool, n+1)
	u.edgeList = make([][]int32, n+1)
	u.sat = make([]bool, len(g.Edges))
	u.visited = make([]bool, n+1)
	u.activeAt = make([]uint64, n+1)
	u.bfsEdge = make([]int32, n+1)
	u.bfsPar = make([]int32, n+1)
	return u
}

// loadEdges recomputes the integer capacities and flat endpoints from g.
func (u *UnionFind) loadEdges(g *dem.Graph) {
	minW := math.Inf(1)
	for i := range g.Edges {
		if w := g.Edges[i].W; w > 0 && w < minW {
			minW = w
		}
	}
	if math.IsInf(minW, 1) {
		minW = 1
	}
	for i := range g.Edges {
		c := int64(math.Round(g.Edges[i].W / minW * capScale))
		if c < 1 {
			c = 1
		}
		u.cap[i] = c
		u.edgeU[i] = g.Edges[i].U
		v := g.Edges[i].V
		if v == dem.BoundaryNode {
			v = int32(u.n)
		}
		u.edgeV[i] = v
	}
}

// Rebind points the decoder at a new graph, reusing every per-node and
// per-edge buffer when the shape matches (same node and edge counts — e.g.
// the same hoisted topology at a different noise scale). The epoch-stamped
// scratch needs no reset: stale stamps read as default state. It reports
// whether the rebind happened; on false the decoder is unchanged and the
// caller should build a fresh one.
func (u *UnionFind) Rebind(g *dem.Graph) bool {
	if g.NumNodes != u.n || len(g.Edges) != len(u.cap) {
		return false
	}
	u.g = g
	u.loadEdges(g)
	// Invalidate the cross-decode edge-root cache: the stamps reference the
	// previous graph's decodes, and epoch monotonicity is all that guards
	// them.
	u.epoch++
	return true
}

// Name implements Decoder.
func (u *UnionFind) Name() string { return "union-find" }

// DecodeBatch implements BatchDecoder. Zero per-shot heap allocations in
// steady state.
func (u *UnionFind) DecodeBatch(b *Batch, out []bool) error {
	return decodeSerial(u, b, out)
}

// ensureNode lazily resets node v to its default state for this decode.
func (u *UnionFind) ensureNode(v int32) {
	if u.nodeEpoch[v] == u.epoch {
		return
	}
	u.nodeEpoch[v] = u.epoch
	u.parent[v] = v
	u.rank[v] = 0
	u.parity[v] = false
	u.boundary[v] = v == int32(u.n)
	u.defect[v] = false
	u.seeded[v] = v == int32(u.n) // the virtual boundary has no adjacency
	u.edgeList[v] = u.edgeList[v][:0]
	u.visited[v] = false
}

// ensureEdge lazily resets edge ei's growth state for this decode.
func (u *UnionFind) ensureEdge(ei int32) {
	if u.edgeEpoch[ei] == u.epoch {
		return
	}
	u.edgeEpoch[ei] = u.epoch
	u.grown[ei] = 0
	u.sat[ei] = false
}

func (u *UnionFind) find(v int32) int32 {
	u.ensureNode(v)
	for u.parent[v] != v {
		u.parent[v] = u.parent[u.parent[v]]
		v = u.parent[v]
	}
	return v
}

// endpoints returns the decoding-graph endpoints of edge ei with the
// boundary mapped to virtual node n.
func (u *UnionFind) endpoints(ei int32) (int32, int32) {
	return u.edgeU[ei], u.edgeV[ei]
}

// seedAdjacency adds node v's incident edges to root r's candidate list,
// resetting each edge's growth state on first sight this decode.
func (u *UnionFind) seedAdjacency(r, v int32) {
	for _, ei := range u.g.Adj[v] {
		u.ensureEdge(ei)
		u.edgeList[r] = append(u.edgeList[r], ei)
	}
}

// Decode implements Decoder.
func (u *UnionFind) Decode(events []int) (bool, error) {
	if len(events) == 0 {
		return false, nil
	}
	if len(events)%2 == 1 && u.g.Stats.BoundaryEdges == 0 {
		return false, fmt.Errorf("union-find: odd event count with no boundary")
	}
	n := u.n
	u.epoch++
	u.events = events
	u.satBound = u.satBound[:0]
	u.ensureNode(int32(n))
	for _, d := range events {
		u.ensureNode(int32(d))
		u.defect[d] = true
		u.parity[d] = true
	}
	// Seed candidate edge lists from defect clusters.
	for _, d := range events {
		u.seedAdjacency(int32(d), int32(d))
		u.seeded[d] = true
	}

	u.active = u.active[:0]
	refreshActive := func() {
		u.activeGen++
		u.active = u.active[:0]
		for _, d := range events {
			r := u.find(int32(d))
			if u.parity[r] && !u.boundary[r] && u.activeAt[r] != u.activeGen {
				u.activeAt[r] = u.activeGen
				u.active = append(u.active, r)
			}
		}
	}

	union := func(a, b int32) int32 {
		// A node joining a growing cluster contributes its own adjacency
		// to the cluster's candidate growth edges exactly once.
		for _, v := range [2]int32{a, b} {
			u.ensureNode(v)
			if !u.seeded[v] {
				u.seeded[v] = true
				u.seedAdjacency(u.find(v), v)
			}
		}
		ra, rb := u.find(a), u.find(b)
		if ra == rb {
			return ra
		}
		if u.rank[ra] < u.rank[rb] {
			ra, rb = rb, ra
		}
		if u.rank[ra] == u.rank[rb] {
			u.rank[ra]++
		}
		u.parent[rb] = ra
		u.parity[ra] = u.parity[ra] != u.parity[rb]
		u.boundary[ra] = u.boundary[ra] || u.boundary[rb]
		if len(u.edgeList[rb]) > len(u.edgeList[ra]) {
			u.edgeList[ra], u.edgeList[rb] = u.edgeList[rb], u.edgeList[ra]
		}
		u.edgeList[ra] = append(u.edgeList[ra], u.edgeList[rb]...)
		// Keep rb's capacity for later decodes; rb is no longer a root, so
		// its list is dead until its next epoch reset.
		u.edgeList[rb] = u.edgeList[rb][:0]
		return ra
	}

	for iter := 0; ; iter++ {
		if iter > 4*len(u.g.Edges)+16 {
			return false, fmt.Errorf("union-find: growth failed to converge")
		}
		refreshActive()
		if len(u.active) == 0 {
			break
		}
		// Minimum slack per growth unit across all candidate edges. The
		// growable edges (with their roots) are collected for the grow pass.
		var minDelta int64 = math.MaxInt64
		u.growEdges = u.growEdges[:0]
		for _, r := range u.active {
			kept := u.edgeList[r][:0]
			for _, ei := range u.edgeList[r] {
				if u.sat[ei] {
					continue
				}
				ra, rb := u.edgeRA[ei], u.edgeRB[ei]
				if u.edgeRootEpoch[ei] != u.epoch || u.parent[ra] != ra || u.parent[rb] != rb {
					a, b := u.endpoints(ei)
					ra, rb = u.find(a), u.find(b)
					u.edgeRA[ei], u.edgeRB[ei], u.edgeRootEpoch[ei] = ra, rb, u.epoch
				}
				if ra == rb {
					continue // internal edge
				}
				kept = append(kept, ei)
				u.growEdges = append(u.growEdges, growEdge{ei, ra, rb})
				ends := int64(1)
				other := rb
				if ra != r {
					other = ra
				}
				if u.parity[other] && !u.boundary[other] {
					ends = 2 // both sides grow
				}
				slack := (u.cap[ei] - u.grown[ei] + ends - 1) / ends
				if slack < minDelta {
					minDelta = slack
				}
			}
			u.edgeList[r] = kept
		}
		if minDelta == math.MaxInt64 {
			return false, fmt.Errorf("union-find: active cluster with no growable edges")
		}
		// Grow and merge. Cluster state is untouched between the passes, so
		// the cached roots stay valid until the first merge; after that,
		// re-resolve per edge. An edge shared by two active clusters appears
		// twice in growEdges, so it grows by 2*minDelta per round, matching
		// its halved slack above.
		merged := false
		for _, ge := range u.growEdges {
			ei := ge.ei
			if u.sat[ei] {
				continue
			}
			if merged {
				a, b := u.endpoints(ei)
				if u.find(a) == u.find(b) {
					continue
				}
			}
			u.grown[ei] += minDelta
			if u.grown[ei] >= u.cap[ei] {
				u.grown[ei] = u.cap[ei]
				u.sat[ei] = true
				if u.g.Edges[ei].V == dem.BoundaryNode {
					u.satBound = append(u.satBound, ei)
				}
				union(ge.ra, ge.rb)
				merged = true
			}
		}
	}
	return u.peel()
}

// peel extracts a correction from the grown support and returns its logical
// mask. Every node it can reach was touched by growth (saturated edges only
// connect ensured nodes), so the epoch-stamped state is always valid here.
func (u *UnionFind) peel() (bool, error) {
	n := u.n
	// Support adjacency: saturated edges only.
	// BFS forest rooted at the boundary first, then any unvisited node.
	u.bfsOrder = u.bfsOrder[:0]
	u.queue = u.queue[:0]
	head := 0

	push := func(v, parent, viaEdge int32) {
		u.visited[v] = true
		u.bfsPar[v] = parent
		u.bfsEdge[v] = viaEdge
		u.queue = append(u.queue, v)
		u.bfsOrder = append(u.bfsOrder, v)
	}

	expand := func(v int32) {
		if v == int32(n) {
			// The boundary's incident saturated edges, recorded during
			// growth.
			for _, ei := range u.satBound {
				w := u.g.Edges[ei].U
				if !u.visited[w] {
					push(w, v, ei)
				}
			}
			return
		}
		for _, ei := range u.g.Adj[v] {
			if u.edgeEpoch[ei] != u.epoch || !u.sat[ei] {
				continue
			}
			a, b := u.endpoints(ei)
			w := a
			if w == v {
				w = b
			}
			if !u.visited[w] {
				push(w, v, int32(ei))
			}
		}
	}

	// Root at boundary.
	push(int32(n), -1, -1)
	for head < len(u.queue) {
		v := u.queue[head]
		head++
		expand(v)
	}
	// Remaining components (clusters not touching the boundary): every
	// defect is an event, so scanning the shot finds all of them.
	for _, d := range u.events {
		v := int32(d)
		if u.visited[v] || !u.defect[v] {
			continue
		}
		// BFS this component from v.
		push(v, -1, -1)
		for head < len(u.queue) {
			w := u.queue[head]
			head++
			expand(w)
		}
	}

	// Peel in reverse BFS order.
	obs := false
	for i := len(u.bfsOrder) - 1; i >= 0; i-- {
		v := u.bfsOrder[i]
		if v == int32(n) || u.bfsPar[v] == -1 {
			if v != int32(n) && u.defect[v] {
				return false, fmt.Errorf("union-find: unresolved defect at root %d", v)
			}
			continue
		}
		if u.defect[v] {
			ei := u.bfsEdge[v]
			if u.g.Edges[ei].Obs {
				obs = !obs
			}
			p := u.bfsPar[v]
			if p != int32(n) {
				u.defect[p] = !u.defect[p]
			}
			u.defect[v] = false
		}
	}
	return obs, nil
}
