package decoder

import (
	"math"
	"testing"
)

// fuzzGraph is the small fixed graph behind FuzzDecodeSyndrome: 12 nodes
// with ring, chord, and boundary edges (cyclicGraph), so arbitrary syndrome
// words exercise blossom formation and shattering, boundary exits, and
// multi-component splits. Built once; the decoders under test reuse their
// arenas across fuzz executions exactly like the engine's hot loop does.
var fuzzGraph = cyclicGraph(12, 5)

// FuzzDecodeSyndrome feeds arbitrary 12-bit syndrome words through Blossom
// and Exact on the fixed graph: both must agree on feasibility and on the
// minimum matching weight, and Blossom must be deterministic across a
// repeated decode (the arena-reuse contract). The seeded corpus lives under
// testdata/fuzz/FuzzDecodeSyndrome; CI runs a short -fuzztime smoke leg.
func FuzzDecodeSyndrome(f *testing.F) {
	for _, seed := range []uint64{0, 1, 0b101, 0b111000111, 0xfff, 0b010101010101, 0x8a1, 0x7fe} {
		f.Add(seed)
	}
	ex := NewExact(fuzzGraph)
	blos := NewBlossom(fuzzGraph)
	f.Fuzz(func(t *testing.T, word uint64) {
		var events []int
		for i := 0; i < fuzzGraph.NumNodes; i++ {
			if word&(1<<i) != 0 {
				events = append(events, i)
			}
		}
		wantObs, wantW, wantErr := ex.DecodeWithWeight(events)
		gotObs, gotW, gotErr := blos.DecodeWithWeight(events)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("word %#x: exact err %v vs blossom err %v", word, wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if math.Abs(wantW-gotW) > weightTol(wantW) {
			t.Fatalf("word %#x (events %v): exact weight %g vs blossom %g", word, events, wantW, gotW)
		}
		obs2, w2, err2 := blos.DecodeWithWeight(events)
		if err2 != nil || obs2 != gotObs || w2 != gotW {
			t.Fatalf("word %#x: blossom not deterministic: (%v, %g, %v) then (%v, %g, %v)",
				word, gotObs, gotW, gotErr, obs2, w2, err2)
		}
		_ = wantObs
	})
}

// FuzzPipelineBatch feeds whole batches — four 12-bit syndrome words, with
// the first replicated rep extra times — through Pipeline(blossom) and a bare
// blossom: every shot's prediction must be bit-identical, and the counters
// must partition the batch. The seeded corpus covers the all-zero batch and
// duplicate-heavy batches the below-threshold regime produces.
func FuzzPipelineBatch(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint8(8))              // all-zero batch
	f.Add(uint64(0b101), uint64(0b101), uint64(0b101), uint64(0), uint8(12)) // duplicate-heavy
	f.Add(uint64(0xfff), uint64(1), uint64(0x8a1), uint64(0b111000111), uint8(0))
	f.Add(uint64(0x7fe), uint64(0x7fe), uint64(0), uint64(2), uint8(3))
	direct := NewBlossom(fuzzGraph)
	pipe := NewPipeline(NewBlossom(fuzzGraph))
	f.Fuzz(func(t *testing.T, w1, w2, w3, w4 uint64, rep uint8) {
		shot := func(word uint64) []int {
			var ev []int
			for i := 0; i < fuzzGraph.NumNodes; i++ {
				if word&(1<<i) != 0 {
					ev = append(ev, i)
				}
			}
			return ev
		}
		var b Batch
		for _, w := range []uint64{w1, w2, w3, w4} {
			b.Add(shot(w))
		}
		for i := 0; i < int(rep%16); i++ {
			b.Add(shot(w1))
		}
		n := b.Len()
		want := make([]bool, n)
		got := make([]bool, n)
		errDirect := direct.DecodeBatch(&b, want)
		before := pipe.Stats()
		errPipe := pipe.DecodeBatch(&b, got)
		if (errDirect == nil) != (errPipe == nil) {
			t.Fatalf("direct err %v vs pipeline err %v", errDirect, errPipe)
		}
		if errDirect != nil {
			return
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("shot %d (events %v): pipeline %v vs direct %v", i, b.Shot(i), got[i], want[i])
			}
		}
		d := pipe.Stats()
		d.Shots -= before.Shots
		d.Skipped -= before.Skipped
		d.DedupHits -= before.DedupHits
		d.Decoded -= before.Decoded
		if d.Shots != int64(n) || d.Shots != d.Skipped+d.DedupHits+d.Decoded {
			t.Fatalf("counters don't partition batch of %d: %+v", n, d)
		}
	})
}
