package decoder

import (
	"math"
	"testing"
)

// fuzzGraph is the small fixed graph behind FuzzDecodeSyndrome: 12 nodes
// with ring, chord, and boundary edges (cyclicGraph), so arbitrary syndrome
// words exercise blossom formation and shattering, boundary exits, and
// multi-component splits. Built once; the decoders under test reuse their
// arenas across fuzz executions exactly like the engine's hot loop does.
var fuzzGraph = cyclicGraph(12, 5)

// FuzzDecodeSyndrome feeds arbitrary 12-bit syndrome words through Blossom
// and Exact on the fixed graph: both must agree on feasibility and on the
// minimum matching weight, and Blossom must be deterministic across a
// repeated decode (the arena-reuse contract). The seeded corpus lives under
// testdata/fuzz/FuzzDecodeSyndrome; CI runs a short -fuzztime smoke leg.
func FuzzDecodeSyndrome(f *testing.F) {
	for _, seed := range []uint64{0, 1, 0b101, 0b111000111, 0xfff, 0b010101010101, 0x8a1, 0x7fe} {
		f.Add(seed)
	}
	ex := NewExact(fuzzGraph)
	blos := NewBlossom(fuzzGraph)
	f.Fuzz(func(t *testing.T, word uint64) {
		var events []int
		for i := 0; i < fuzzGraph.NumNodes; i++ {
			if word&(1<<i) != 0 {
				events = append(events, i)
			}
		}
		wantObs, wantW, wantErr := ex.DecodeWithWeight(events)
		gotObs, gotW, gotErr := blos.DecodeWithWeight(events)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("word %#x: exact err %v vs blossom err %v", word, wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if math.Abs(wantW-gotW) > weightTol(wantW) {
			t.Fatalf("word %#x (events %v): exact weight %g vs blossom %g", word, events, wantW, gotW)
		}
		obs2, w2, err2 := blos.DecodeWithWeight(events)
		if err2 != nil || obs2 != gotObs || w2 != gotW {
			t.Fatalf("word %#x: blossom not deterministic: (%v, %g, %v) then (%v, %g, %v)",
				word, gotObs, gotW, gotErr, obs2, w2, err2)
		}
		_ = wantObs
	})
}
