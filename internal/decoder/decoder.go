package decoder

import "fmt"

// Decoder predicts whether the logical observable flipped, given the fired
// detector ids (sorted ascending). Implementations reuse internal buffers
// and are not safe for concurrent use; create one per goroutine.
type Decoder interface {
	Decode(events []int) (obsFlip bool, err error)
	Name() string
}

// Batch is a reusable flat (CSR) container of shots for batch decoding:
// shot i's fired detectors are events[off[i]:off[i+1]]. Reset + Add reuse
// the backing arrays, so a steady-state Monte-Carlo loop allocates nothing.
type Batch struct {
	events []int
	off    []int
}

// Reset empties the batch, keeping capacity.
func (b *Batch) Reset() {
	b.events = b.events[:0]
	if len(b.off) == 0 {
		b.off = append(b.off, 0)
	}
	b.off = b.off[:1]
}

// Add appends one shot's fired detectors (copied into the batch).
func (b *Batch) Add(events []int) {
	if len(b.off) == 0 {
		b.off = append(b.off, 0)
	}
	b.events = append(b.events, events...)
	b.off = append(b.off, len(b.events))
}

// Len returns the number of shots in the batch.
func (b *Batch) Len() int {
	if len(b.off) == 0 {
		return 0
	}
	return len(b.off) - 1
}

// Shot returns shot i's fired detectors (shared backing; do not modify).
func (b *Batch) Shot(i int) []int { return b.events[b.off[i]:b.off[i+1]] }

// BatchDecoder decodes many shots per call with reusable buffers —
// the hot path of the Monte-Carlo engine. DecodeBatch fills out[i] with the
// observable prediction for batch shot i; out must have at least Len
// elements. Implementations perform zero per-shot heap allocations in
// steady state.
type BatchDecoder interface {
	Decoder
	DecodeBatch(b *Batch, out []bool) error
}

// decodeSerial implements DecodeBatch as a shot loop over d.Decode — the
// shared body of every BatchDecoder whose batching win is buffer reuse
// rather than cross-shot work.
func decodeSerial(d Decoder, b *Batch, out []bool) error {
	n := b.Len()
	if len(out) < n {
		return fmt.Errorf("%s: out buffer %d too small for batch of %d", d.Name(), len(out), n)
	}
	for i := 0; i < n; i++ {
		pred, err := d.Decode(b.Shot(i))
		if err != nil {
			return err
		}
		out[i] = pred
	}
	return nil
}
