// Package decoder implements syndrome decoders over the weighted decoding
// graphs produced by internal/dem:
//
//   - UnionFind: the weighted-growth union-find decoder
//     (Delfosse–Nickerson, arXiv:1709.06218) with peeling. Near-linear time
//     and within a small constant of matching accuracy; the workhorse for
//     Monte-Carlo threshold estimation.
//
//   - Exact: exact minimum-weight perfect matching over the detection
//     events (Dijkstra pairwise distances + bitmask dynamic programming).
//     Exponential in the event count, so it is gated to small instances;
//     used as ground truth in tests and for small-distance runs.
//
//   - Blossom: exact minimum-weight perfect matching via the blossom
//     algorithm, polynomial time; the paper's decoder class ("maximum
//     likelihood perfect matching").
//
// All decoders answer one question per shot: given the set of fired
// detectors, did the error most likely flip the logical observable?
package decoder

// Decoder predicts whether the logical observable flipped, given the fired
// detector ids (sorted ascending). Implementations reuse internal buffers
// and are not safe for concurrent use; create one per goroutine.
type Decoder interface {
	Decode(events []int) (obsFlip bool, err error)
	Name() string
}
