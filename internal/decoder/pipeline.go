package decoder

import (
	"fmt"
	"slices"
)

// PipelineStats counts what the batch decode pipeline did with the shots it
// saw. Counters are cumulative for the Pipeline's lifetime (across Rebind);
// callers wanting per-interval numbers bracket the work with two Stats
// snapshots.
type PipelineStats struct {
	// Shots is every shot presented to DecodeBatch or Decode.
	Shots int64
	// Skipped counts zero-defect shots answered by the fast path: an empty
	// syndrome's minimum-weight correction is empty under every decoder, so
	// the predicted observable flip is false without touching the matcher.
	Skipped int64
	// DedupHits counts shots whose full syndrome matched an earlier shot of
	// the same batch; their prediction replays the representative's.
	DedupHits int64
	// Decoded counts the distinct non-empty syndromes actually handed to
	// the inner decoder. Shots == Skipped + DedupHits + Decoded.
	Decoded int64
}

// Pipeline is the batch-level decode front end that sits between the
// sampler and any BatchDecoder. Per batch it (1) answers zero-defect shots
// immediately (empty syndrome => empty correction => no observable flip),
// (2) deduplicates the remaining shots by full syndrome — FNV-1a hash into
// an epoch-stamped open-addressed table, always verified against the actual
// detector list, so a hash collision can never alias two different
// syndromes — decoding each distinct syndrome once and replaying the cached
// prediction for its duplicates, and (3) feeds the inner decoder the
// surviving distinct syndromes sorted by defect count, cheapest first.
//
// Determinism contract: decoders are deterministic per syndrome (pinned by
// the fuzz suite), shots are decoded independently, and dedup verifies full
// syndrome equality, so DecodeBatch fills out with exactly the predictions
// the inner decoder would produce shot by shot — pipeline on or off is
// bit-identical per shot. Zero per-shot heap allocations in steady state.
// Not safe for concurrent use; create one per goroutine.
type Pipeline struct {
	inner BatchDecoder
	stats PipelineStats
	name  string

	// Epoch-stamped dedup table: a slot is live only when its stamp matches
	// the current batch epoch, so clearing between batches is one counter
	// increment. tabShot holds the representative's index within the batch.
	epoch    uint64
	tabEpoch []uint64
	tabHash  []uint64
	tabShot  []int32

	distinct []int32    // representative shot indices, later sorted by defect count
	dups     [][2]int32 // (duplicate shot, representative shot)
	sub      Batch      // distinct syndromes, in sorted decode order
	subOut   []bool
}

// NewPipeline wraps inner with the batch skip/dedup front end.
func NewPipeline(inner BatchDecoder) *Pipeline {
	p := &Pipeline{}
	p.Rebind(inner)
	return p
}

// Rebind swaps the inner decoder, keeping the dedup table and batch
// buffers — the per-worker reuse hook that carries one Pipeline across the
// cells (and noise scales) a sweep worker executes. Stats keep
// accumulating across rebinds.
func (p *Pipeline) Rebind(inner BatchDecoder) {
	p.inner = inner
	p.name = "pipeline(" + inner.Name() + ")"
}

// Inner returns the wrapped decoder.
func (p *Pipeline) Inner() BatchDecoder { return p.inner }

// Name implements Decoder.
func (p *Pipeline) Name() string { return p.name }

// Stats returns a snapshot of the cumulative counters.
func (p *Pipeline) Stats() PipelineStats { return p.stats }

// DecoderStats implements StatsSource by forwarding to the inner decoder,
// so callers holding the pipeline see the matcher's stage counters.
func (p *Pipeline) DecoderStats() DecoderStats {
	if src, ok := p.inner.(StatsSource); ok {
		return src.DecoderStats()
	}
	return DecoderStats{}
}

// Decode implements Decoder: the scalar path gets the zero-defect skip but
// no cross-shot dedup (there is no batch to share syndromes with).
func (p *Pipeline) Decode(events []int) (bool, error) {
	p.stats.Shots++
	if len(events) == 0 {
		p.stats.Skipped++
		return false, nil
	}
	p.stats.Decoded++
	return p.inner.Decode(events)
}

// fnv1aEvents hashes one shot's sorted detector ids (64-bit FNV-1a over
// the little-endian bytes of each id, the footprint-hashing scheme of
// internal/dem).
func fnv1aEvents(events []int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, d := range events {
		for b := 0; b < 4; b++ {
			h ^= uint64(byte(d >> (8 * b)))
			h *= prime
		}
	}
	return h
}

// grow resizes the dedup table to hold at least n live entries at < 1/2
// load. Growing starts a fresh epoch, so stale slots need no migration.
func (p *Pipeline) grow(n int) {
	size := 64
	for size < 2*n {
		size *= 2
	}
	if size <= len(p.tabEpoch) {
		return
	}
	p.tabEpoch = make([]uint64, size)
	p.tabHash = make([]uint64, size)
	p.tabShot = make([]int32, size)
	p.epoch = 0
}

// DecodeBatch implements BatchDecoder: classify, dedup, sort, decode the
// distinct survivors through the inner decoder, then scatter and replay.
func (p *Pipeline) DecodeBatch(b *Batch, out []bool) error {
	n := b.Len()
	if len(out) < n {
		return fmt.Errorf("%s: out buffer %d too small for batch of %d", p.name, len(out), n)
	}
	p.stats.Shots += int64(n)
	p.grow(n)
	p.epoch++
	mask := uint64(len(p.tabEpoch) - 1)
	p.distinct = p.distinct[:0]
	p.dups = p.dups[:0]

	for i := 0; i < n; i++ {
		ev := b.Shot(i)
		if len(ev) == 0 {
			out[i] = false
			p.stats.Skipped++
			continue
		}
		h := fnv1aEvents(ev)
		slot := h & mask
		for {
			if p.tabEpoch[slot] != p.epoch {
				p.tabEpoch[slot] = p.epoch
				p.tabHash[slot] = h
				p.tabShot[slot] = int32(i)
				p.distinct = append(p.distinct, int32(i))
				break
			}
			if rep := p.tabShot[slot]; p.tabHash[slot] == h && slices.Equal(b.Shot(int(rep)), ev) {
				p.dups = append(p.dups, [2]int32{int32(i), rep})
				p.stats.DedupHits++
				break
			}
			slot = (slot + 1) & mask
		}
	}
	p.stats.Decoded += int64(len(p.distinct))

	// Cheapest syndromes first; ties broken by batch position so the order
	// — like everything here — is a pure function of the batch contents.
	slices.SortFunc(p.distinct, func(a, c int32) int {
		if d := len(b.Shot(int(a))) - len(b.Shot(int(c))); d != 0 {
			return d
		}
		return int(a - c)
	})

	p.sub.Reset()
	for _, i := range p.distinct {
		p.sub.Add(b.Shot(int(i)))
	}
	if cap(p.subOut) < len(p.distinct) {
		p.subOut = make([]bool, len(p.distinct))
	}
	p.subOut = p.subOut[:len(p.distinct)]
	if err := p.inner.DecodeBatch(&p.sub, p.subOut); err != nil {
		return err
	}
	for k, i := range p.distinct {
		out[i] = p.subOut[k]
	}
	for _, d := range p.dups {
		out[d[0]] = out[d[1]]
	}
	return nil
}

// tableSize reports the dedup table's current capacity (test hook).
func (p *Pipeline) tableSize() int { return len(p.tabEpoch) }

var _ BatchDecoder = (*Pipeline)(nil)
