// Package decoder implements syndrome decoders over the weighted decoding
// graphs produced by internal/dem:
//
//   - UnionFind: the weighted-growth union-find decoder
//     (Delfosse–Nickerson, arXiv:1709.06218) with peeling. Near-linear time
//     and within a small constant of matching accuracy; the workhorse for
//     Monte-Carlo threshold estimation.
//
//   - Exact: exact minimum-weight perfect matching over the detection
//     events (Dijkstra pairwise distances + bitmask dynamic programming).
//     Exponential in the event count, so it is gated to small instances;
//     used as ground truth in tests and for small-distance runs.
//
//   - Blossom (NewMWPM): exact minimum-weight perfect matching via the
//     blossom algorithm, polynomial time; the paper's decoder class
//     ("maximum likelihood perfect matching"). NewMWPMFallback wraps it
//     with a transparent union-find fallback on oversized event clusters.
//
// All decoders answer one question per shot: given the set of fired
// detectors, did the error most likely flip the logical observable?
//
// Entry points:
//
//   - Decoder: the scalar interface — Decode(events) (obsFlip, err)
//   - BatchDecoder + Batch: the allocation-free bulk path; Batch is a
//     reusable flat container of many shots' events and DecodeBatch
//     decodes them with zero per-shot allocations
//   - UnionFind.Rebind: rebinds existing union-find state to a new graph
//     of the same shape, so a sweep reuses all decoder arrays across
//     noise scales instead of reallocating per cell
//
// Decoders reuse internal buffers and are not safe for concurrent use;
// create one per goroutine (the Monte-Carlo engine threads one per worker
// through montecarlo.WorkerState).
package decoder
