// Package decoder implements syndrome decoders over the weighted decoding
// graphs produced by internal/dem. The selectable strategies share one
// vocabulary, decoder.Kind ("uf" | "blossom" | "mwpm" | "exact"), threaded
// through the Monte-Carlo engine, the sweep scheduler, the serving front
// end, and the sweep CLIs; decoder.New builds the production BatchDecoder
// for a kind:
//
//   - UnionFind (KindUF): the weighted-growth union-find decoder
//     (Delfosse–Nickerson, arXiv:1709.06218) with peeling. Near-linear time
//     and within a small constant of matching accuracy; the conservative
//     workhorse and the fallback target.
//
//   - Blossom (KindBlossom): sparse-blossom-style exact minimum-weight
//     matching — the production matcher. Regions grow from detection
//     events to small adaptive radii over hoisted boundary/landmark
//     distance tables, meeting regions prove exact pair distances, a
//     primal-dual alternating-tree matcher (with blossom formation and
//     shattering) matches each component on the pairs' savings, and the
//     matcher's LP duals certify the radii or escalate them — so every
//     shot ends in a strictly-minimum-weight correction, at less than
//     union-find cost on warm engines (BENCH_decoder.json).
//
//   - MWPM (KindMWPM): component-decomposed exact matching over full
//     per-event Dijkstra distances. NewMWPMFallback wraps it with a
//     transparent union-find fallback on oversized event clusters.
//     Retained as an exact implementation independent of Blossom; slower.
//
//   - Exact (KindExact): exact minimum-weight perfect matching over the
//     detection events (Dijkstra pairwise distances + bitmask dynamic
//     programming). Exponential in the event count, so NewExactFallback
//     gates it to small instances; ground truth for the conformance and
//     fuzz suites.
//
// All decoders answer one question per shot: given the set of fired
// detectors, did the error most likely flip the logical observable?
//
// In front of the decoders sits Pipeline, the batch-level decode front
// end: it answers zero-defect shots immediately (an empty syndrome's
// minimum-weight correction is empty, so the prediction is "no flip"
// under every Kind), hashes each remaining shot's syndrome and decodes
// every distinct syndrome in the batch exactly once — densest first —
// through the wrapped inner BatchDecoder, then replays the cached
// prediction into each duplicate slot. Because each Kind is
// deterministic per syndrome and stateless across shots, the pipeline is
// bit-identical to the unpruned path shot for shot; hash matches are
// always verified against the full event list, so a collision can never
// alias two syndromes. Its skip/dedup counters (PipelineStats) surface
// through montecarlo.Result and the serving front end's /v1/stats.
//
// The matchers themselves are instrumented: DecoderStats counts the
// stage-level work behind the hot-path profiles — union-find growth
// rounds, candidate-edge scans, and peel visits; blossom
// radius-escalation rounds, landmark queries, and re-matched components;
// wmatch alternating-tree phases and dual adjustments. Decoders exposing
// counters implement StatsSource (Pipeline forwards to its inner
// decoder); every counter is a plain sum, so worker and shard stats
// merge by addition, bit-identically at any pool width. The numbers ride
// montecarlo.Result/ShardResult into /v1/stats, the CLIs' -json rows,
// and BENCH_decoder.json — the evidence chain the hot-path work in
// ARCHITECTURE.md ("The decoder hot path") is driven by.
//
// Entry points:
//
//   - Decoder: the scalar interface — Decode(events) (obsFlip, err)
//   - BatchDecoder + Batch: the allocation-free bulk path; Batch is a
//     reusable flat container of many shots' events and DecodeBatch
//     decodes them with zero per-shot allocations
//   - Pipeline / NewPipeline: the zero-defect-skip + syndrome-dedup
//     batch front end over any BatchDecoder (see ARCHITECTURE.md,
//     "The batch decode pipeline")
//   - ParseKind / New: flag- and request-level selection of a strategy
//   - DecoderStats / StatsSource: the stage-counter surface; Add/Sub
//     bracket intervals and merge shards
//   - UnionFind.Rebind / Blossom.Rebind / Pipeline.Rebind: rebind
//     existing decoder state to a new graph of the same shape, so a
//     sweep reuses all decoder arrays (and the pipeline's hash table)
//     across noise scales instead of reallocating per cell
//
// Decoders reuse internal buffers and are not safe for concurrent use;
// create one per goroutine (the Monte-Carlo engine threads one per worker
// through montecarlo.WorkerState).
package decoder
