// Package decoder implements syndrome decoders over the weighted decoding
// graphs produced by internal/dem. The selectable strategies share one
// vocabulary, decoder.Kind ("uf" | "blossom" | "mwpm" | "exact"), threaded
// through the Monte-Carlo engine, the sweep scheduler, the serving front
// end, and the sweep CLIs; decoder.New builds the production BatchDecoder
// for a kind:
//
//   - UnionFind (KindUF): the weighted-growth union-find decoder
//     (Delfosse–Nickerson, arXiv:1709.06218) with peeling. Near-linear time
//     and within a small constant of matching accuracy; the conservative
//     workhorse and the fallback target.
//
//   - Blossom (KindBlossom): sparse-blossom-style exact minimum-weight
//     matching — the production matcher. Regions grow from detection
//     events to small adaptive radii over hoisted boundary/landmark
//     distance tables, meeting regions prove exact pair distances, a
//     primal-dual alternating-tree matcher (with blossom formation and
//     shattering) matches each component on the pairs' savings, and the
//     matcher's LP duals certify the radii or escalate them — so every
//     shot ends in a strictly-minimum-weight correction, at less than
//     union-find cost on warm engines (BENCH_decoder.json).
//
//   - MWPM (KindMWPM): component-decomposed exact matching over full
//     per-event Dijkstra distances. NewMWPMFallback wraps it with a
//     transparent union-find fallback on oversized event clusters.
//     Retained as an exact implementation independent of Blossom; slower.
//
//   - Exact (KindExact): exact minimum-weight perfect matching over the
//     detection events (Dijkstra pairwise distances + bitmask dynamic
//     programming). Exponential in the event count, so NewExactFallback
//     gates it to small instances; ground truth for the conformance and
//     fuzz suites.
//
// All decoders answer one question per shot: given the set of fired
// detectors, did the error most likely flip the logical observable?
//
// Entry points:
//
//   - Decoder: the scalar interface — Decode(events) (obsFlip, err)
//   - BatchDecoder + Batch: the allocation-free bulk path; Batch is a
//     reusable flat container of many shots' events and DecodeBatch
//     decodes them with zero per-shot allocations
//   - ParseKind / New: flag- and request-level selection of a strategy
//   - UnionFind.Rebind / Blossom.Rebind: rebind existing decoder state to
//     a new graph of the same shape, so a sweep reuses all decoder arrays
//     across noise scales instead of reallocating per cell
//
// Decoders reuse internal buffers and are not safe for concurrent use;
// create one per goroutine (the Monte-Carlo engine threads one per worker
// through montecarlo.WorkerState).
package decoder
