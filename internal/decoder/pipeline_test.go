package decoder

import (
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/extract"
)

// pipelineBatches builds a duplicate- and zero-heavy batch sequence from the
// model's sampler: each batch mixes fresh sampled shots, explicit empty
// shots, and replays of earlier shots in the same batch.
func pipelineBatch(b *Batch, sample func() []int, rng *rand.Rand, n int) {
	b.Reset()
	for i := 0; i < n; i++ {
		switch {
		case i%7 == 3:
			b.Add(nil) // forced zero-defect shot
		case i > 0 && i%5 == 4:
			b.Add(b.Shot(rng.IntN(i))) // forced duplicate of an earlier shot
		default:
			b.Add(sample())
		}
	}
}

// The tentpole contract: pipeline on vs off is bit-identical per shot, for
// every decoder kind, on both a sampled circuit-level batch stream and the
// synthetic cyclic graph.
func TestPipelineMatchesInnerPerShot(t *testing.T) {
	m, g := circuitGraph(t, extract.CompactInterleaved, 3, 4e-3)
	s := m.NewSampler()
	rng := rand.New(rand.NewPCG(11, 23))
	sample := func() []int {
		ev, _ := s.Sample(rng)
		return ev
	}
	for _, kind := range Kinds {
		direct, err := New(kind, g)
		if err != nil {
			t.Fatal(err)
		}
		inner, err := New(kind, g)
		if err != nil {
			t.Fatal(err)
		}
		pipe := NewPipeline(inner)
		var b Batch
		want := make([]bool, 64)
		got := make([]bool, 64)
		for trial := 0; trial < 8; trial++ {
			pipelineBatch(&b, sample, rng, 64)
			if err := direct.DecodeBatch(&b, want); err != nil {
				t.Fatalf("%s direct: %v", kind, err)
			}
			if err := pipe.DecodeBatch(&b, got); err != nil {
				t.Fatalf("%s pipeline: %v", kind, err)
			}
			for i := 0; i < b.Len(); i++ {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d shot %d (events %v): pipeline %v vs direct %v",
						kind, trial, i, b.Shot(i), got[i], want[i])
				}
			}
		}
		st := pipe.Stats()
		if st.Shots != st.Skipped+st.DedupHits+st.Decoded {
			t.Fatalf("%s: counters don't partition: %+v", kind, st)
		}
		if st.Skipped == 0 || st.DedupHits == 0 {
			t.Fatalf("%s: forced zero/duplicate shots not counted: %+v", kind, st)
		}
	}
}

// Same contract on the cyclic fuzz graph with dense random syndromes, where
// blossom formation and multi-component splits are exercised.
func TestPipelineMatchesInnerCyclic(t *testing.T) {
	g := cyclicGraph(12, 5)
	rng := rand.New(rand.NewPCG(3, 9))
	sample := func() []int {
		word := rng.Uint64() & 0xfff
		var ev []int
		for i := 0; i < 12; i++ {
			if word&(1<<i) != 0 {
				ev = append(ev, i)
			}
		}
		return ev
	}
	direct := NewBlossom(g)
	pipe := NewPipeline(NewBlossom(g))
	var b Batch
	want := make([]bool, 64)
	got := make([]bool, 64)
	for trial := 0; trial < 6; trial++ {
		pipelineBatch(&b, sample, rng, 64)
		if err := direct.DecodeBatch(&b, want); err != nil {
			t.Fatal(err)
		}
		if err := pipe.DecodeBatch(&b, got); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len(); i++ {
			if got[i] != want[i] {
				t.Fatalf("trial %d shot %d (events %v): pipeline %v vs direct %v",
					trial, i, b.Shot(i), got[i], want[i])
			}
		}
	}
}

// A crafted batch pins the counter semantics exactly: empty shots are
// skipped, first occurrences decoded, repeats replayed.
func TestPipelineCounters(t *testing.T) {
	g := lineGraph(7, 1e-3)
	pipe := NewPipeline(NewUnionFind(g))
	var b Batch
	b.Add(nil)         // skip
	b.Add([]int{6})    // decode (flips: nearest boundary is the logical one)
	b.Add([]int{6})    // dedup
	b.Add(nil)         // skip
	b.Add([]int{3, 4}) // decode
	b.Add([]int{6})    // dedup
	out := make([]bool, b.Len())
	if err := pipe.DecodeBatch(&b, out); err != nil {
		t.Fatal(err)
	}
	st := pipe.Stats()
	if st.Shots != 6 || st.Skipped != 2 || st.DedupHits != 2 || st.Decoded != 2 {
		t.Fatalf("counters %+v, want 6/2/2/2", st)
	}
	if out[0] || out[3] {
		t.Fatal("zero-defect shots must predict no flip")
	}
	if !out[1] || !out[2] || !out[5] {
		t.Fatal("event at 6 must flip, and its duplicates must replay the same prediction")
	}
	if out[4] {
		t.Fatal("adjacent pair must not flip")
	}

	// Scalar path: skip counts, no dedup.
	if obs, err := pipe.Decode(nil); err != nil || obs {
		t.Fatalf("scalar empty decode gave (%v, %v)", obs, err)
	}
	if obs, err := pipe.Decode([]int{6}); err != nil || !obs {
		t.Fatalf("scalar decode gave (%v, %v)", obs, err)
	}
	st = pipe.Stats()
	if st.Shots != 8 || st.Skipped != 3 || st.Decoded != 3 {
		t.Fatalf("scalar counters %+v", st)
	}
}

// Batches larger than the initial table must trigger growth, and the
// epoch-stamped table must stay correct across many batches without any
// explicit clearing.
func TestPipelineTableGrowthAndEpochReuse(t *testing.T) {
	g := cyclicGraph(12, 5)
	direct := NewBlossom(g)
	pipe := NewPipeline(NewBlossom(g))
	rng := rand.New(rand.NewPCG(77, 1))
	var b Batch
	for trial := 0; trial < 40; trial++ {
		b.Reset()
		n := 40 + rng.IntN(60) // often > 64-entry initial table at 1/2 load
		for i := 0; i < n; i++ {
			word := rng.Uint64() & 0xfff
			var ev []int
			for j := 0; j < 12; j++ {
				if word&(1<<j) != 0 {
					ev = append(ev, j)
				}
			}
			b.Add(ev)
		}
		want := make([]bool, n)
		got := make([]bool, n)
		if err := direct.DecodeBatch(&b, want); err != nil {
			t.Fatal(err)
		}
		if err := pipe.DecodeBatch(&b, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d shot %d: pipeline %v vs direct %v", trial, i, got[i], want[i])
			}
		}
	}
	if ts := pipe.tableSize(); ts < 128 || ts&(ts-1) != 0 {
		t.Fatalf("table size %d: want power of two >= 128 after 100-shot batches", ts)
	}
}

// Rebind swaps the inner decoder (the per-worker cross-cell reuse hook)
// while stats keep accumulating and the name tracks the new inner.
func TestPipelineRebind(t *testing.T) {
	g1 := lineGraph(5, 1e-3)
	g2 := cyclicGraph(12, 5)
	pipe := NewPipeline(NewUnionFind(g1))
	if _, err := pipe.Decode([]int{2}); err != nil {
		t.Fatal(err)
	}
	before := pipe.Stats()
	pipe.Rebind(NewBlossom(g2))
	if !strings.Contains(pipe.Name(), NewBlossom(g2).Name()) {
		t.Fatalf("name %q does not track rebound inner", pipe.Name())
	}
	if pipe.Inner().Name() != NewBlossom(g2).Name() {
		t.Fatalf("Inner() is %q after rebind", pipe.Inner().Name())
	}
	if _, err := pipe.Decode([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	after := pipe.Stats()
	if after.Shots != before.Shots+1 || after.Decoded != before.Decoded+1 {
		t.Fatalf("stats reset across rebind: %+v then %+v", before, after)
	}
}

func TestPipelineOutTooSmall(t *testing.T) {
	pipe := NewPipeline(NewUnionFind(lineGraph(5, 1e-3)))
	var b Batch
	b.Add([]int{1})
	b.Add([]int{2})
	if err := pipe.DecodeBatch(&b, make([]bool, 1)); err == nil {
		t.Fatal("undersized out buffer must error")
	}
}
