package decoder

import (
	"fmt"
	"math"

	"repro/internal/dem"
)

// MWPM is an exact minimum-weight perfect-matching decoder that scales past
// the plain bitmask DP by a provably-safe decomposition:
//
//  1. Dijkstra gives every event's distance to every other event and to the
//     boundary (with path logical masks).
//  2. Any event pair (i,j) with dist(i,j) >= bdist(i)+bdist(j) can be
//     replaced in any matching by the two boundary matches at no extra
//     cost, so such edges are pruned without affecting the optimal value.
//  3. Connected components of the pruned event graph interact with each
//     other only through the boundary, so each component is matched
//     independently and exactly with the bitmask DP.
//
// Below threshold, detection events form small local clusters, so component
// sizes stay far below the DP ceiling; Decode returns an error for the rare
// oversized component (callers fall back to union-find).
type MWPM struct {
	g *dem.Graph
	// MaxComponent bounds the per-component DP size (default 18).
	MaxComponent int

	dist []float64
	mask []bool
	heap distHeap
}

// NewMWPM builds an exact matching decoder over g.
func NewMWPM(g *dem.Graph) *MWPM {
	n := g.NumNodes + 1
	return &MWPM{
		g:            g,
		MaxComponent: 18,
		dist:         make([]float64, n),
		mask:         make([]bool, n),
	}
}

// Name implements Decoder.
func (x *MWPM) Name() string { return "mwpm" }

// Decode implements Decoder.
func (x *MWPM) Decode(events []int) (bool, error) {
	obs, _, err := x.DecodeWithWeight(events)
	return obs, err
}

// DecodeWithWeight additionally returns the total weight of the optimal
// matching (used by equivalence tests, where observable predictions may
// legitimately differ on exact weight ties).
func (x *MWPM) DecodeWithWeight(events []int) (bool, float64, error) {
	k := len(events)
	if k == 0 {
		return false, 0, nil
	}
	n := x.g.NumNodes
	pd := make([][]float64, k)
	pm := make([][]bool, k)
	bd := make([]float64, k)
	bm := make([]bool, k)
	for i, ev := range events {
		dijkstra(x.g, ev, x.dist, x.mask, &x.heap)
		pd[i] = make([]float64, k)
		pm[i] = make([]bool, k)
		for j, ev2 := range events {
			pd[i][j] = x.dist[ev2]
			pm[i][j] = x.mask[ev2]
		}
		bd[i] = x.dist[n]
		bm[i] = x.mask[n]
	}

	// Prune dominated pairs and find connected components.
	comp := make([]int, k)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	ncomp := 0
	useful := func(i, j int) bool { return pd[i][j] < bd[i]+bd[j] }
	for i := 0; i < k; i++ {
		if comp[i] >= 0 {
			continue
		}
		comp[i] = ncomp
		stack = append(stack[:0], i)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for j := 0; j < k; j++ {
				if comp[j] < 0 && useful(v, j) {
					comp[j] = ncomp
					stack = append(stack, j)
				}
			}
		}
		ncomp++
	}

	obs := false
	total := 0.0
	for c := 0; c < ncomp; c++ {
		var members []int
		for i := 0; i < k; i++ {
			if comp[i] == c {
				members = append(members, i)
			}
		}
		if len(members) > x.MaxComponent {
			return false, 0, fmt.Errorf("mwpm: component of %d events exceeds MaxComponent=%d", len(members), x.MaxComponent)
		}
		o, w := matchComponent(members, pd, pm, bd, bm)
		if math.IsInf(w, 1) {
			return false, 0, fmt.Errorf("mwpm: infeasible component")
		}
		obs = obs != o
		total += w
	}
	return obs, total, nil
}

// matchComponent runs the bitmask DP on one component.
func matchComponent(members []int, pd [][]float64, pm [][]bool, bd []float64, bm []bool) (bool, float64) {
	k := len(members)
	size := 1 << k
	cost := make([]float64, size)
	choice := make([]int8, size)
	for s := 1; s < size; s++ {
		cost[s] = math.Inf(1)
		i := lowestBit(s)
		rest := s &^ (1 << i)
		mi := members[i]
		if c := bd[mi] + cost[rest]; c < cost[s] {
			cost[s] = c
			choice[s] = -1
		}
		for j := i + 1; j < k; j++ {
			if rest&(1<<j) == 0 {
				continue
			}
			c := pd[mi][members[j]] + cost[rest&^(1<<j)]
			if c < cost[s] {
				cost[s] = c
				choice[s] = int8(j)
			}
		}
	}
	obs := false
	s := size - 1
	for s != 0 {
		i := lowestBit(s)
		mi := members[i]
		if choice[s] == -1 {
			if bm[mi] {
				obs = !obs
			}
			s &^= 1 << i
			continue
		}
		j := int(choice[s])
		if pm[mi][members[j]] {
			obs = !obs
		}
		s &^= (1 << i) | (1 << j)
	}
	return obs, cost[size-1]
}

// dijkstra fills dist and mask with shortest weighted distances from src;
// node g.NumNodes is the boundary.
func dijkstra(g *dem.Graph, src int, dist []float64, mask []bool, h *distHeap) {
	n := g.NumNodes
	for i := range dist {
		dist[i] = math.Inf(1)
		mask[i] = false
	}
	dist[src] = 0
	*h = (*h)[:0]
	h.push(heapItem{0, int32(src)})
	for len(*h) > 0 {
		it := h.pop()
		v := it.node
		if it.d > dist[v] {
			continue
		}
		if v == int32(n) {
			continue
		}
		for _, ei := range g.Adj[v] {
			e := &g.Edges[ei]
			w := e.V
			if w == dem.BoundaryNode {
				w = int32(n)
			}
			if w == v {
				w = e.U
			}
			nd := it.d + e.W
			if nd < dist[w] {
				dist[w] = nd
				mask[w] = mask[v] != e.Obs
				h.push(heapItem{nd, w})
			}
		}
	}
}
