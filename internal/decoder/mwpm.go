package decoder

import (
	"fmt"
	"math"

	"repro/internal/dem"
)

// MWPM is an exact minimum-weight perfect-matching decoder that scales past
// the plain bitmask DP by a provably-safe decomposition:
//
//  1. Dijkstra gives every event's distance to every other event and to the
//     boundary (with path logical masks).
//  2. Any event pair (i,j) with dist(i,j) >= bdist(i)+bdist(j) can be
//     replaced in any matching by the two boundary matches at no extra
//     cost, so such edges are pruned without affecting the optimal value.
//  3. Connected components of the pruned event graph interact with each
//     other only through the boundary, so each component is matched
//     independently and exactly with the bitmask DP.
//
// Below threshold, detection events form small local clusters, so component
// sizes stay far below the DP ceiling; Decode returns an error for the rare
// oversized component (callers fall back to union-find).
type MWPM struct {
	g *dem.Graph
	// MaxComponent bounds the per-component DP size (default 18).
	MaxComponent int

	dist []float64
	mask []bool
	heap distHeap

	// Reusable per-decode buffers (grown to the largest event count seen):
	// pairwise distances/masks are flat with stride k.
	pd      []float64
	pm      []bool
	bd      []float64
	bm      []bool
	comp    []int
	stack   []int
	members []int
	cost    []float64
	choice  []int8
}

// NewMWPM builds an exact matching decoder over g.
func NewMWPM(g *dem.Graph) *MWPM {
	n := g.NumNodes + 1
	return &MWPM{
		g:            g,
		MaxComponent: 18,
		dist:         make([]float64, n),
		mask:         make([]bool, n),
	}
}

// Name implements Decoder.
func (x *MWPM) Name() string { return "mwpm" }

// Decode implements Decoder.
func (x *MWPM) Decode(events []int) (bool, error) {
	obs, _, err := x.DecodeWithWeight(events)
	return obs, err
}

// grown returns s resized to n elements, reusing its backing array when the
// capacity allows (contents are overwritten by the caller).
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// DecodeWithWeight additionally returns the total weight of the optimal
// matching (used by equivalence tests, where observable predictions may
// legitimately differ on exact weight ties). All working storage is reused
// across calls: zero per-shot heap allocations in steady state.
func (x *MWPM) DecodeWithWeight(events []int) (bool, float64, error) {
	k := len(events)
	if k == 0 {
		return false, 0, nil
	}
	n := x.g.NumNodes
	x.pd = grown(x.pd, k*k)
	x.pm = grown(x.pm, k*k)
	x.bd = grown(x.bd, k)
	x.bm = grown(x.bm, k)
	for i, ev := range events {
		dijkstra(x.g, ev, x.dist, x.mask, &x.heap)
		for j, ev2 := range events {
			x.pd[i*k+j] = x.dist[ev2]
			x.pm[i*k+j] = x.mask[ev2]
		}
		x.bd[i] = x.dist[n]
		x.bm[i] = x.mask[n]
	}

	// Prune dominated pairs and find connected components.
	x.comp = grown(x.comp, k)
	for i := range x.comp {
		x.comp[i] = -1
	}
	ncomp := 0
	useful := func(i, j int) bool { return x.pd[i*k+j] < x.bd[i]+x.bd[j] }
	for i := 0; i < k; i++ {
		if x.comp[i] >= 0 {
			continue
		}
		x.comp[i] = ncomp
		x.stack = append(x.stack[:0], i)
		for len(x.stack) > 0 {
			v := x.stack[len(x.stack)-1]
			x.stack = x.stack[:len(x.stack)-1]
			for j := 0; j < k; j++ {
				if x.comp[j] < 0 && useful(v, j) {
					x.comp[j] = ncomp
					x.stack = append(x.stack, j)
				}
			}
		}
		ncomp++
	}

	obs := false
	total := 0.0
	for c := 0; c < ncomp; c++ {
		x.members = x.members[:0]
		for i := 0; i < k; i++ {
			if x.comp[i] == c {
				x.members = append(x.members, i)
			}
		}
		if len(x.members) > x.MaxComponent {
			return false, 0, fmt.Errorf("mwpm: component of %d events exceeds MaxComponent=%d", len(x.members), x.MaxComponent)
		}
		o, w := x.matchComponent(k)
		if math.IsInf(w, 1) {
			return false, 0, fmt.Errorf("mwpm: infeasible component")
		}
		obs = obs != o
		total += w
	}
	return obs, total, nil
}

// matchComponent runs the bitmask DP on the current x.members component;
// stride is the event count of the enclosing decode (row length of x.pd).
func (x *MWPM) matchComponent(stride int) (bool, float64) {
	members := x.members
	k := len(members)
	size := 1 << k
	x.cost = grown(x.cost, size)
	x.choice = grown(x.choice, size)
	cost, choice := x.cost, x.choice
	cost[0] = 0 // reused buffer: the DP base case must be reset
	for s := 1; s < size; s++ {
		cost[s] = math.Inf(1)
		i := lowestBit(s)
		rest := s &^ (1 << i)
		mi := members[i]
		if c := x.bd[mi] + cost[rest]; c < cost[s] {
			cost[s] = c
			choice[s] = -1
		}
		for j := i + 1; j < k; j++ {
			if rest&(1<<j) == 0 {
				continue
			}
			c := x.pd[mi*stride+members[j]] + cost[rest&^(1<<j)]
			if c < cost[s] {
				cost[s] = c
				choice[s] = int8(j)
			}
		}
	}
	obs := false
	s := size - 1
	for s != 0 {
		i := lowestBit(s)
		mi := members[i]
		if choice[s] == -1 {
			if x.bm[mi] {
				obs = !obs
			}
			s &^= 1 << i
			continue
		}
		j := int(choice[s])
		if x.pm[mi*stride+members[j]] {
			obs = !obs
		}
		s &^= (1 << i) | (1 << j)
	}
	return obs, cost[size-1]
}

// dijkstra fills dist and mask with shortest weighted distances from src;
// node g.NumNodes is the boundary.
func dijkstra(g *dem.Graph, src int, dist []float64, mask []bool, h *distHeap) {
	n := g.NumNodes
	for i := range dist {
		dist[i] = math.Inf(1)
		mask[i] = false
	}
	dist[src] = 0
	*h = (*h)[:0]
	h.push(heapItem{0, int32(src)})
	for len(*h) > 0 {
		it := h.pop()
		v := it.node
		if it.d > dist[v] {
			continue
		}
		if v == int32(n) {
			continue
		}
		for _, ei := range g.Adj[v] {
			e := &g.Edges[ei]
			w := e.V
			if w == dem.BoundaryNode {
				w = int32(n)
			}
			if w == v {
				w = e.U
			}
			nd := it.d + e.W
			if nd < dist[w] {
				dist[w] = nd
				mask[w] = mask[v] != e.Obs
				h.push(heapItem{nd, w})
			}
		}
	}
}
