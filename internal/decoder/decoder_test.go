package decoder

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dem"
	"repro/internal/extract"
	"repro/internal/hardware"
)

// lineGraph builds a synthetic path decoding graph:
// boundary - 0 - 1 - ... - (n-1) - boundary, with a logical mask on the
// last boundary edge (like a distance-n repetition code).
func lineGraph(n int, p float64) *dem.Graph {
	m := &dem.Model{NumDets: n}
	add := func(dets []int32, obs bool) {
		m.Mechs = append(m.Mechs, dem.Mechanism{Dets: dets, Obs: obs, P: p})
	}
	add([]int32{0}, false)
	for i := 0; i < n-1; i++ {
		add([]int32{int32(i), int32(i + 1)}, false)
	}
	add([]int32{int32(n - 1)}, true)
	g, err := m.DecodingGraph()
	if err != nil {
		panic(err)
	}
	return g
}

func decoders(g *dem.Graph) []Decoder {
	return []Decoder{NewUnionFind(g), NewExact(g), NewMWPM(g)}
}

func TestEmptyEvents(t *testing.T) {
	g := lineGraph(5, 1e-3)
	for _, d := range decoders(g) {
		obs, err := d.Decode(nil)
		if err != nil || obs {
			t.Errorf("%s: empty decode gave (%v, %v)", d.Name(), obs, err)
		}
	}
}

// On the line graph, a single event at position i should match to the
// nearest boundary: obs flips exactly when the right end is closer.
func TestLineGraphSingleEvent(t *testing.T) {
	n := 7
	g := lineGraph(n, 1e-3)
	for _, d := range decoders(g) {
		for i := 0; i < n; i++ {
			obs, err := d.Decode([]int{i})
			if err != nil {
				t.Fatalf("%s: %v", d.Name(), err)
			}
			want := i > n/2 // closer to the right (logical) boundary
			if obs != want {
				t.Errorf("%s: event at %d decoded obs=%v, want %v", d.Name(), i, obs, want)
			}
		}
	}
}

// A pair of adjacent events should match to each other (no logical flip);
// events at the two extreme ends should match out through the boundaries
// (one logical flip).
func TestLineGraphPairs(t *testing.T) {
	n := 9
	g := lineGraph(n, 1e-3)
	for _, d := range decoders(g) {
		obs, err := d.Decode([]int{3, 4})
		if err != nil || obs {
			t.Errorf("%s: adjacent pair gave (%v,%v), want (false,nil)", d.Name(), obs, err)
		}
		obs, err = d.Decode([]int{0, n - 1})
		if err != nil || !obs {
			t.Errorf("%s: extreme pair gave (%v,%v), want (true,nil)", d.Name(), obs, err)
		}
	}
}

func circuitGraph(t *testing.T, scheme extract.Scheme, d int, phys float64) (*dem.Model, *dem.Graph) {
	t.Helper()
	e, err := extract.Build(extract.Config{
		Scheme: scheme, Distance: d, Basis: extract.BasisZ,
		Params: hardware.Default().ScaledTo(phys),
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dem.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.DecodingGraph()
	if err != nil {
		t.Fatal(err)
	}
	return m, g
}

// ambiguousFootprints returns footprint keys carrying both logical classes;
// no decoder can get those right for both classes simultaneously.
func ambiguousFootprints(m *dem.Model) map[string]bool {
	seen := map[string]bool{}
	amb := map[string]bool{}
	for i := range m.Mechs {
		key := ""
		for _, d := range m.Mechs[i].Dets {
			key += fmt.Sprintf("%d,", d)
		}
		if seen[key] {
			amb[key] = true
		}
		seen[key] = true
	}
	return amb
}

// Nearly every unambiguous single mechanism must decode back to its own
// logical class. A handful of legitimate exceptions exist at d=3: for an
// extremely improbable mechanism (weight ~ -ln p very large), the
// maximum-likelihood explanation of its syndrome can genuinely be a cheaper
// multi-edge path in the opposite logical class. Exact and component
// matching must agree with each other everywhere.
func TestSingleMechanismRoundTrip(t *testing.T) {
	for _, scheme := range []extract.Scheme{extract.Baseline, extract.CompactInterleaved} {
		m, g := circuitGraph(t, scheme, 3, 1e-3)
		amb := ambiguousFootprints(m)
		for _, dec := range decoders(g) {
			failures, total := 0, 0
			for i := range m.Mechs {
				mech := &m.Mechs[i]
				key := ""
				for _, d := range mech.Dets {
					key += fmt.Sprintf("%d,", d)
				}
				if amb[key] || len(mech.Dets) == 0 {
					continue
				}
				events := make([]int, len(mech.Dets))
				for j, d := range mech.Dets {
					events[j] = int(d)
				}
				obs, err := dec.Decode(events)
				if err != nil {
					t.Fatalf("%s/%v: mechanism %d: %v", dec.Name(), scheme, i, err)
				}
				total++
				if obs != mech.Obs {
					failures++
				}
			}
			limit := 0
			if scheme != extract.Baseline {
				limit = total/20 + 1
			}
			if failures > limit {
				t.Errorf("%s/%v: %d/%d single mechanisms misdecoded (limit %d)", dec.Name(), scheme, failures, total, limit)
			}
		}
	}
}

// Two simultaneous mechanisms are still guaranteed-correctable at d=5 for an
// exact matcher; union-find is allowed a small slack.
func TestDoubleMechanismRoundTrip(t *testing.T) {
	m, g := circuitGraph(t, extract.Baseline, 5, 1e-3)
	rng := rand.New(rand.NewPCG(41, 0))
	uf := NewUnionFind(g)
	ex := NewExact(g)
	bl := NewMWPM(g)

	parity := make([]bool, m.NumDets)
	ufFail, exFail, blFail, total := 0, 0, 0, 0
	for trial := 0; trial < 400; trial++ {
		a := &m.Mechs[rng.IntN(len(m.Mechs))]
		b := &m.Mechs[rng.IntN(len(m.Mechs))]
		for i := range parity {
			parity[i] = false
		}
		for _, d := range a.Dets {
			parity[d] = !parity[d]
		}
		for _, d := range b.Dets {
			parity[d] = !parity[d]
		}
		var events []int
		for i, v := range parity {
			if v {
				events = append(events, i)
			}
		}
		want := a.Obs != b.Obs
		total++
		if obs, err := ex.Decode(events); err != nil {
			t.Fatal(err)
		} else if obs != want {
			exFail++
		}
		if obs, err := bl.Decode(events); err != nil {
			t.Fatal(err)
		} else if obs != want {
			blFail++
		}
		if obs, err := uf.Decode(events); err != nil {
			t.Fatal(err)
		} else if obs != want {
			ufFail++
		}
	}
	// A small number of weighted degeneracies is expected (see the single-
	// mechanism test comment); both exact matchers must stay within it and
	// agree closely, union-find gets modest extra slack.
	if float64(exFail)/float64(total) > 0.025 {
		t.Errorf("exact decoder misdecoded %d/%d double faults at d=5", exFail, total)
	}
	if float64(blFail)/float64(total) > 0.025 {
		t.Errorf("mwpm decoder misdecoded %d/%d double faults at d=5", blFail, total)
	}
	if float64(ufFail)/float64(total) > 0.06 {
		t.Errorf("union-find misdecoded %d/%d double faults at d=5", ufFail, total)
	}
}

// The component-decomposed MWPM must find exactly the same optimal matching
// weight as the whole-problem DP (observable predictions may differ only on
// exact weight ties, so the weight is the tie-safe comparison).
func TestMWPMAgreesWithExact(t *testing.T) {
	m, g := circuitGraph(t, extract.Baseline, 3, 5e-3)
	ex := NewExact(g)
	mw := NewMWPM(g)
	s := m.NewSampler()
	rng := rand.New(rand.NewPCG(53, 0))
	checked := 0
	for trial := 0; trial < 2000; trial++ {
		events, _ := s.Sample(rng)
		if len(events) == 0 || len(events) > 12 {
			continue
		}
		ev := append([]int(nil), events...)
		_, wa, err := ex.DecodeWithWeight(ev)
		if err != nil {
			t.Fatal(err)
		}
		_, wb, err := mw.DecodeWithWeight(ev)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wa-wb) > 1e-9*(1+math.Abs(wa)) {
			t.Errorf("trial %d (events %v): exact weight %g vs mwpm weight %g", trial, ev, wa, wb)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d syndromes checked", checked)
	}
}

// Decoders must be deterministic across repeated calls (buffer reuse).
func TestDecodeDeterminism(t *testing.T) {
	m, g := circuitGraph(t, extract.NaturalInterleaved, 3, 5e-3)
	s := m.NewSampler()
	rng := rand.New(rand.NewPCG(7, 0))
	for _, d := range decoders(g) {
		for trial := 0; trial < 50; trial++ {
			events, _ := s.Sample(rng)
			ev := append([]int(nil), events...)
			if len(ev) > 12 {
				continue
			}
			first, err1 := d.Decode(ev)
			second, err2 := d.Decode(ev)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: %v / %v", d.Name(), err1, err2)
			}
			if first != second {
				t.Fatalf("%s: nondeterministic decode", d.Name())
			}
		}
	}
}

func TestExactRejectsTooManyEvents(t *testing.T) {
	g := lineGraph(30, 1e-3)
	x := NewExact(g)
	x.MaxEvents = 4
	events := []int{0, 1, 2, 3, 4, 5}
	if _, err := x.Decode(events); err == nil {
		t.Error("exceeding MaxEvents must fail")
	}
}
