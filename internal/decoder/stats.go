package decoder

// DecoderStats counts the internal work a matcher did: the stage-level
// counters behind the hot-path profiles (growth rounds, edge scans,
// alternating-tree phases, ...). Counters are cumulative for the decoder's
// lifetime (across Rebind), mirroring PipelineStats; callers wanting
// per-interval numbers bracket the work with two snapshots and Sub.
//
// Every field is a plain sum, so stats from independent workers or shards
// merge by addition — bit-identically at any pool width.
type DecoderStats struct {
	// Union-find: growth rounds of the outer loop, candidate edges examined
	// in the per-round slack scans, and nodes visited by the peeling pass.
	UFGrowthRounds int64 `json:"uf_growth_rounds,omitempty"`
	UFEdgeScans    int64 `json:"uf_edge_scans,omitempty"`
	UFPeelNodes    int64 `json:"uf_peel_nodes,omitempty"`

	// Blossom: radius-escalation rounds (certificate failures that forced a
	// re-grow + re-solve), landmark lower-bound queries issued by the
	// certificate, and components re-matched across all rounds.
	BlossomRounds       int64 `json:"blossom_rounds,omitempty"`
	BlossomLandmarkQs   int64 `json:"blossom_landmark_queries,omitempty"`
	BlossomRematchedCmp int64 `json:"blossom_rematched_components,omitempty"`

	// wmatch (the primal-dual core inside Blossom): alternating-tree phases
	// run and dual-adjustment steps taken.
	WmatchTreeIters   int64 `json:"wmatch_tree_iters,omitempty"`
	WmatchDualAdjusts int64 `json:"wmatch_dual_adjusts,omitempty"`
}

// Add accumulates o into s.
func (s *DecoderStats) Add(o DecoderStats) {
	s.UFGrowthRounds += o.UFGrowthRounds
	s.UFEdgeScans += o.UFEdgeScans
	s.UFPeelNodes += o.UFPeelNodes
	s.BlossomRounds += o.BlossomRounds
	s.BlossomLandmarkQs += o.BlossomLandmarkQs
	s.BlossomRematchedCmp += o.BlossomRematchedCmp
	s.WmatchTreeIters += o.WmatchTreeIters
	s.WmatchDualAdjusts += o.WmatchDualAdjusts
}

// Sub returns s - o: the work done between two snapshots of the same
// decoder.
func (s DecoderStats) Sub(o DecoderStats) DecoderStats {
	return DecoderStats{
		UFGrowthRounds:      s.UFGrowthRounds - o.UFGrowthRounds,
		UFEdgeScans:         s.UFEdgeScans - o.UFEdgeScans,
		UFPeelNodes:         s.UFPeelNodes - o.UFPeelNodes,
		BlossomRounds:       s.BlossomRounds - o.BlossomRounds,
		BlossomLandmarkQs:   s.BlossomLandmarkQs - o.BlossomLandmarkQs,
		BlossomRematchedCmp: s.BlossomRematchedCmp - o.BlossomRematchedCmp,
		WmatchTreeIters:     s.WmatchTreeIters - o.WmatchTreeIters,
		WmatchDualAdjusts:   s.WmatchDualAdjusts - o.WmatchDualAdjusts,
	}
}

// IsZero reports whether every counter is zero.
func (s DecoderStats) IsZero() bool { return s == DecoderStats{} }

// StatsSource is implemented by decoders that expose stage counters.
// Pipeline forwards to its inner decoder, so callers holding either see the
// same numbers.
type StatsSource interface {
	DecoderStats() DecoderStats
}
