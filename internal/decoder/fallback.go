package decoder

import "repro/internal/dem"

// Fallback pairs a matching decoder with union-find: shots the primary
// cannot handle (oversized event clusters past its DP ceiling, or any other
// failure) decode through union-find instead, and are counted. It
// implements both Decoder and BatchDecoder, replacing the ad-hoc fallback
// loop the Monte-Carlo engine used to carry.
type Fallback struct {
	primary Decoder
	uf      *UnionFind
	name    string

	// Fallbacks counts shots decoded by union-find instead of the primary.
	Fallbacks int64
}

// NewFallback wraps primary with a union-find fallback over g.
func NewFallback(primary Decoder, g *dem.Graph) *Fallback {
	return &Fallback{primary: primary, uf: NewUnionFind(g), name: primary.Name() + "+uf"}
}

// NewMWPMFallback builds the paper-faithful matching decoder: component-
// decomposed exact MWPM falling back to union-find on oversized clusters.
func NewMWPMFallback(g *dem.Graph) *Fallback { return NewFallback(NewMWPM(g), g) }

// NewExactFallback builds the whole-problem DP with a union-find fallback
// past its event ceiling — exact matching for engine runs that want the
// independently-coded ground-truth matcher.
func NewExactFallback(g *dem.Graph) *Fallback { return NewFallback(NewExact(g), g) }

// Name implements Decoder.
func (f *Fallback) Name() string { return f.name }

// Decode implements Decoder.
func (f *Fallback) Decode(events []int) (bool, error) {
	pred, err := f.primary.Decode(events)
	if err == nil {
		return pred, nil
	}
	f.Fallbacks++
	return f.uf.Decode(events)
}

// DecodeBatch implements BatchDecoder. Zero per-shot heap allocations in
// steady state.
func (f *Fallback) DecodeBatch(b *Batch, out []bool) error {
	return decodeSerial(f, b, out)
}
