package decoder

import "repro/internal/dem"

// MWPMFallback is the paper-faithful production decoder: exact
// minimum-weight perfect matching, transparently falling back to union-find
// on the rare oversized event cluster (or any other MWPM failure). It
// implements both Decoder and BatchDecoder and counts fallbacks, replacing
// the ad-hoc fallback loop the Monte-Carlo engine used to carry.
type MWPMFallback struct {
	mw *MWPM
	uf *UnionFind

	// Fallbacks counts shots decoded by union-find instead of matching.
	Fallbacks int64
}

// NewMWPMFallback builds the combined decoder over g.
func NewMWPMFallback(g *dem.Graph) *MWPMFallback {
	return &MWPMFallback{mw: NewMWPM(g), uf: NewUnionFind(g)}
}

// Name implements Decoder.
func (f *MWPMFallback) Name() string { return "mwpm+uf" }

// Decode implements Decoder.
func (f *MWPMFallback) Decode(events []int) (bool, error) {
	pred, err := f.mw.Decode(events)
	if err == nil {
		return pred, nil
	}
	f.Fallbacks++
	return f.uf.Decode(events)
}

// DecodeBatch implements BatchDecoder. Zero per-shot heap allocations in
// steady state.
func (f *MWPMFallback) DecodeBatch(b *Batch, out []bool) error {
	return decodeSerial(f, b, out)
}
