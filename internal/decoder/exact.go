package decoder

import (
	"fmt"
	"math"

	"repro/internal/dem"
)

// Exact is the plain exact minimum-weight perfect matching decoder: Dijkstra
// pairwise distances plus one bitmask dynamic program over the whole event
// set. Cost is O(2^k) in the event count k, so Decode fails for
// k > MaxEvents. MWPM lifts this ceiling via safe decomposition; Exact
// remains as the independently-coded ground truth for tests.
type Exact struct {
	g *dem.Graph
	// MaxEvents bounds the DP size (default 16).
	MaxEvents int

	dist []float64
	mask []bool
	heap distHeap
}

// NewExact builds an exact matching decoder over g.
func NewExact(g *dem.Graph) *Exact {
	n := g.NumNodes + 1
	return &Exact{
		g:         g,
		MaxEvents: 16,
		dist:      make([]float64, n),
		mask:      make([]bool, n),
	}
}

// Name implements Decoder.
func (x *Exact) Name() string { return "exact-mwpm" }

// Decode implements Decoder.
func (x *Exact) Decode(events []int) (bool, error) {
	obs, _, err := x.DecodeWithWeight(events)
	return obs, err
}

// DecodeWithWeight additionally returns the optimal matching weight.
func (x *Exact) DecodeWithWeight(events []int) (bool, float64, error) {
	k := len(events)
	if k == 0 {
		return false, 0, nil
	}
	if k > x.MaxEvents {
		return false, 0, fmt.Errorf("exact: %d events exceeds MaxEvents=%d", k, x.MaxEvents)
	}
	n := x.g.NumNodes
	pd := make([][]float64, k)
	pm := make([][]bool, k)
	bd := make([]float64, k)
	bm := make([]bool, k)
	for i, ev := range events {
		dijkstra(x.g, ev, x.dist, x.mask, &x.heap)
		pd[i] = make([]float64, k)
		pm[i] = make([]bool, k)
		for j, ev2 := range events {
			pd[i][j] = x.dist[ev2]
			pm[i][j] = x.mask[ev2]
		}
		bd[i] = x.dist[n]
		bm[i] = x.mask[n]
	}
	obs, w := matchAll(k, pd, pm, bd, bm)
	if math.IsInf(w, 1) {
		return false, 0, fmt.Errorf("exact: no feasible matching")
	}
	return obs, w, nil
}

// matchAll runs the bitmask DP over all k events. Deliberately independent
// of MWPM's component matcher so the two implementations cross-check each
// other in tests.
func matchAll(k int, pd [][]float64, pm [][]bool, bd []float64, bm []bool) (bool, float64) {
	size := 1 << k
	cost := make([]float64, size)
	choice := make([]int8, size)
	for s := 1; s < size; s++ {
		cost[s] = math.Inf(1)
		i := lowestBit(s)
		rest := s &^ (1 << i)
		if c := bd[i] + cost[rest]; c < cost[s] {
			cost[s] = c
			choice[s] = -1
		}
		for j := i + 1; j < k; j++ {
			if rest&(1<<j) == 0 {
				continue
			}
			c := pd[i][j] + cost[rest&^(1<<j)]
			if c < cost[s] {
				cost[s] = c
				choice[s] = int8(j)
			}
		}
	}
	obs := false
	s := size - 1
	for s != 0 {
		i := lowestBit(s)
		if choice[s] == -1 {
			if bm[i] {
				obs = !obs
			}
			s &^= 1 << i
			continue
		}
		j := int(choice[s])
		if pm[i][j] {
			obs = !obs
		}
		s &^= (1 << i) | (1 << j)
	}
	return obs, cost[size-1]
}

func lowestBit(s int) int {
	i := 0
	for s&1 == 0 {
		s >>= 1
		i++
	}
	return i
}

type heapItem struct {
	d    float64
	node int32
}

type distHeap []heapItem

func (h *distHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *distHeap) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		m := l
		if r < last && old[r].d < old[l].d {
			m = r
		}
		if old[i].d <= old[m].d {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}
