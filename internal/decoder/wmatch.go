package decoder

import (
	"math"
	"slices"
)

// wmatch is the primal-dual weighted-matching core of the Blossom decoder:
// the classic O(n^3) alternating-tree algorithm for maximum-weight matching
// in general graphs (Galil's exposition of Edmonds' blossom algorithm).
// Each phase grows alternating trees from the free vertices, contracting
// odd cycles into blossom pseudo-vertices as they form and shattering
// (expanding) blossoms whose dual reaches zero, with dual adjustments
// between growth steps; a phase ends when an augmenting path connects two
// trees. All weights and duals are integers, so slack comparisons are
// exact and the matching found is exactly optimal.
//
// Vertices are 1-indexed; ids above n are blossoms. Matrix state is stored
// flat with a stride fixed by reset. The matching need not be perfect:
// vertices whose dual reaches zero stay unmatched (Blossom leaves them to
// their boundary exits). After solve, match[u] is u's partner (0 =
// unmatched) and lab[u] is twice u's dual — a valid optimality certificate:
// lab[a] + lab[b] >= 2*w(a,b) over every recorded edge, with equality on
// matched pairs, and lab[u] = 0 on unmatched vertices.
//
// The matcher is reused across decodes: reset re-initializes in place and
// buffers grow to the largest component seen, so steady state allocates
// nothing.
type wmatch struct {
	n, nx  int32 // real vertices; current id high-water incl. blossoms
	stride int32

	// w[u][v] is the (copied-down) best edge between groups u and v:
	// weight 0 means no edge; eu/ev are its real endpoints.
	w      []int64
	eu, ev []int32

	lab        []int64 // duals (vertex duals implicitly doubled; blossom duals stored doubled)
	match      []int32
	slack      []int32 // best real vertex with minimum slack to reach group x
	st         []int32 // group (blossom root) of each id
	pa         []int32 // parent real-vertex in the alternating tree
	s          []int8  // group label: 0 = outer (S), 1 = inner (T), -1 = free
	vis        []int32
	visT       int32
	flowerFrom []int32 // (group, real vertex) -> direct child containing it
	ffStride   int32
	flower     [][]int32 // blossom cycle, base first
	q          []int32
	qh         int

	// Lifetime work counters, surfaced through Blossom.DecoderStats.
	treeIters   int64 // alternating-tree phases run
	dualAdjusts int64 // dual-adjustment steps taken
}

const wmInf = int64(math.MaxInt64) / 4

func (wm *wmatch) idx(u, v int32) int   { return int(u)*int(wm.stride) + int(v) }
func (wm *wmatch) ffIdx(u, x int32) int { return int(u)*int(wm.ffStride) + int(x) }

// reset prepares the matcher for n real vertices with no edges.
func (wm *wmatch) reset(n int) {
	tot := int32(2*n + 1) // blossom ids never exceed n + n/2
	wm.n = int32(n)
	wm.nx = int32(n)
	wm.stride = tot + 1
	wm.ffStride = int32(n) + 1
	size := int(tot+1) * int(tot+1)
	wm.w = grown(wm.w, size)
	wm.eu = grown(wm.eu, size)
	wm.ev = grown(wm.ev, size)
	for u := int32(0); u <= tot; u++ {
		base := int(u) * int(wm.stride)
		for v := int32(0); v <= tot; v++ {
			wm.w[base+int(v)] = 0
			wm.eu[base+int(v)] = u
			wm.ev[base+int(v)] = v
		}
	}
	wm.lab = grown(wm.lab, int(tot)+1)
	wm.match = grown(wm.match, int(tot)+1)
	wm.slack = grown(wm.slack, int(tot)+1)
	wm.st = grown(wm.st, int(tot)+1)
	wm.pa = grown(wm.pa, int(tot)+1)
	wm.s = grown(wm.s, int(tot)+1)
	wm.vis = grown(wm.vis, int(tot)+1)
	ffSize := (int(tot) + 1) * int(wm.ffStride)
	wm.flowerFrom = grown(wm.flowerFrom, ffSize)
	for i := range wm.flowerFrom[:ffSize] {
		wm.flowerFrom[i] = 0
	}
	if cap(wm.flower) < int(tot)+1 {
		wm.flower = append(wm.flower, make([][]int32, int(tot)+1-len(wm.flower))...)
	}
	wm.flower = wm.flower[:int(tot)+1]
	for i := int32(0); i <= tot; i++ {
		wm.lab[i] = 0
		wm.match[i] = 0
		wm.slack[i] = 0
		wm.pa[i] = 0
		wm.s[i] = -1
		wm.vis[i] = 0
		if i <= wm.n {
			wm.st[i] = i
		} else {
			wm.st[i] = 0
		}
		wm.flower[i] = wm.flower[i][:0]
	}
	for u := int32(1); u <= wm.n; u++ {
		wm.flowerFrom[wm.ffIdx(u, u)] = u
	}
	wm.visT = 0
}

// setEdge records an undirected edge (1-indexed); w must be positive.
func (wm *wmatch) setEdge(u, v int, weight int64) {
	wm.w[wm.idx(int32(u), int32(v))] = weight
	wm.w[wm.idx(int32(v), int32(u))] = weight
}

// eDelta is the slack of the best edge recorded between u and v: zero means
// tight (usable by the alternating tree).
func (wm *wmatch) eDelta(u, v int32) int64 {
	i := wm.idx(u, v)
	a, b := wm.eu[i], wm.ev[i]
	return wm.lab[a] + wm.lab[b] - 2*wm.w[wm.idx(a, b)]
}

func (wm *wmatch) updateSlack(u, x int32) {
	if wm.slack[x] == 0 || wm.eDelta(u, x) < wm.eDelta(wm.slack[x], x) {
		wm.slack[x] = u
	}
}

func (wm *wmatch) setSlack(x int32) {
	wm.slack[x] = 0
	for u := int32(1); u <= wm.n; u++ {
		if wm.w[wm.idx(u, x)] > 0 && wm.st[u] != x && wm.s[wm.st[u]] == 0 {
			wm.updateSlack(u, x)
		}
	}
}

// qPush enqueues the real vertices of group x for edge scanning.
func (wm *wmatch) qPush(x int32) {
	if x <= wm.n {
		wm.q = append(wm.q, x)
		return
	}
	for _, v := range wm.flower[x] {
		wm.qPush(v)
	}
}

func (wm *wmatch) setSt(x, b int32) {
	wm.st[x] = b
	if x > wm.n {
		for _, v := range wm.flower[x] {
			wm.setSt(v, b)
		}
	}
}

// getPr locates child xr on blossom b's cycle, re-orienting the cycle if xr
// sits at an odd position so the even-length side is traversed.
func (wm *wmatch) getPr(b, xr int32) int32 {
	fl := wm.flower[b]
	pr := int32(0)
	for i, v := range fl {
		if v == xr {
			pr = int32(i)
			break
		}
	}
	if pr%2 == 1 {
		slices.Reverse(fl[1:])
		return int32(len(fl)) - pr
	}
	return pr
}

// setMatch matches group u to group v through the recorded (u, v) edge,
// recursively rematching blossom interiors along their cycles.
func (wm *wmatch) setMatch(u, v int32) {
	i := wm.idx(u, v)
	wm.match[u] = wm.ev[i]
	if u <= wm.n {
		return
	}
	xr := wm.flowerFrom[wm.ffIdx(u, wm.eu[i])]
	pr := wm.getPr(u, xr)
	fl := wm.flower[u]
	for k := int32(0); k < pr; k++ {
		wm.setMatch(fl[k], fl[k^1])
	}
	wm.setMatch(xr, v)
	// Rotate the cycle in place so the newly exposed base leads.
	slices.Reverse(fl[:pr])
	slices.Reverse(fl[pr:])
	slices.Reverse(fl)
}

// augment flips the alternating path from group u back to its tree root,
// starting with the tight edge (u, v).
func (wm *wmatch) augment(u, v int32) {
	for {
		xnv := wm.st[wm.match[u]]
		wm.setMatch(u, v)
		if xnv == 0 {
			return
		}
		wm.setMatch(xnv, wm.st[wm.pa[xnv]])
		u, v = wm.st[wm.pa[xnv]], xnv
	}
}

func (wm *wmatch) getLca(u, v int32) int32 {
	wm.visT++
	for u != 0 || v != 0 {
		if u != 0 {
			if wm.vis[u] == wm.visT {
				return u
			}
			wm.vis[u] = wm.visT
			u = wm.st[wm.match[u]]
			if u != 0 {
				u = wm.st[wm.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

// addBlossom contracts the odd cycle through groups u, lca, v into a new
// pseudo-vertex, copying each member's best edges onto it.
func (wm *wmatch) addBlossom(u, lca, v int32) {
	b := wm.n + 1
	for b <= wm.nx && wm.st[b] != 0 {
		b++
	}
	if b > wm.nx {
		wm.nx = b
	}
	wm.lab[b] = 0
	wm.s[b] = 0
	wm.match[b] = wm.match[lca]
	fl := wm.flower[b][:0]
	fl = append(fl, lca)
	for x := u; x != lca; {
		fl = append(fl, x)
		y := wm.st[wm.match[x]]
		fl = append(fl, y)
		wm.qPush(y)
		x = wm.st[wm.pa[y]]
	}
	slices.Reverse(fl[1:])
	for x := v; x != lca; {
		fl = append(fl, x)
		y := wm.st[wm.match[x]]
		fl = append(fl, y)
		wm.qPush(y)
		x = wm.st[wm.pa[y]]
	}
	wm.flower[b] = fl
	wm.setSt(b, b)
	for x := int32(1); x <= wm.nx; x++ {
		wm.w[wm.idx(b, x)] = 0
		wm.w[wm.idx(x, b)] = 0
	}
	for x := int32(1); x <= wm.n; x++ {
		wm.flowerFrom[wm.ffIdx(b, x)] = 0
	}
	for _, xs := range wm.flower[b] {
		for x := int32(1); x <= wm.nx; x++ {
			if wm.w[wm.idx(b, x)] == 0 || wm.eDelta(xs, x) < wm.eDelta(b, x) {
				wm.copyEdge(b, x, xs, x)
				wm.copyEdge(x, b, x, xs)
			}
		}
		for x := int32(1); x <= wm.n; x++ {
			if wm.flowerFrom[wm.ffIdx(xs, x)] != 0 {
				wm.flowerFrom[wm.ffIdx(b, x)] = xs
			}
		}
	}
	wm.setSlack(b)
}

func (wm *wmatch) copyEdge(du, dv, su, sv int32) {
	d, s := wm.idx(du, dv), wm.idx(su, sv)
	wm.w[d] = wm.w[s]
	wm.eu[d] = wm.eu[s]
	wm.ev[d] = wm.ev[s]
}

// expandBlossom shatters blossom b (its dual has reached zero while inner):
// the even side of its cycle rejoins the tree, the rest becomes free.
func (wm *wmatch) expandBlossom(b int32) {
	for _, x := range wm.flower[b] {
		wm.setSt(x, x)
	}
	xr := wm.flowerFrom[wm.ffIdx(b, wm.eu[wm.idx(b, wm.pa[b])])]
	pr := wm.getPr(b, xr)
	fl := wm.flower[b]
	for i := int32(0); i < pr; i += 2 {
		xs, xns := fl[i], fl[i+1]
		wm.pa[xs] = wm.eu[wm.idx(xns, xs)]
		wm.s[xs] = 1
		wm.s[xns] = 0
		wm.slack[xs] = 0
		wm.setSlack(xns)
		wm.qPush(xns)
	}
	wm.s[xr] = 1
	wm.pa[xr] = wm.pa[b]
	for i := pr + 1; i < int32(len(fl)); i++ {
		wm.s[fl[i]] = -1
		wm.setSlack(fl[i])
	}
	wm.st[b] = 0
}

// onFoundEdge processes a tight edge from the scan queue: grow the tree,
// contract a blossom, or augment (ending the phase).
func (wm *wmatch) onFoundEdge(u0, v0 int32) bool {
	u, v := wm.st[u0], wm.st[v0]
	if wm.s[v] == -1 {
		wm.pa[v] = u0
		wm.s[v] = 1
		nu := wm.st[wm.match[v]]
		wm.slack[v] = 0
		wm.slack[nu] = 0
		wm.s[nu] = 0
		wm.qPush(nu)
	} else if wm.s[v] == 0 {
		lca := wm.getLca(u, v)
		if lca == 0 {
			wm.augment(u, v)
			wm.augment(v, u)
			return true
		}
		wm.addBlossom(u, lca, v)
	}
	return false
}

// matching runs one phase: grow alternating trees from every free group
// until an augmenting path is found (true) or the duals prove none exists
// (false).
func (wm *wmatch) matching() bool {
	wm.treeIters++
	for i := int32(0); i <= wm.nx; i++ {
		wm.s[i] = -1
		wm.slack[i] = 0
	}
	wm.q = wm.q[:0]
	wm.qh = 0
	for x := int32(1); x <= wm.nx; x++ {
		if wm.st[x] == x && wm.match[x] == 0 {
			wm.pa[x] = 0
			wm.s[x] = 0
			wm.qPush(x)
		}
	}
	if len(wm.q) == 0 {
		return false
	}
	for {
		for wm.qh < len(wm.q) {
			u := wm.q[wm.qh]
			wm.qh++
			if wm.s[wm.st[u]] == 1 {
				continue
			}
			for v := int32(1); v <= wm.n; v++ {
				if wm.w[wm.idx(u, v)] > 0 && wm.st[u] != wm.st[v] {
					if wm.eDelta(u, v) == 0 {
						if wm.onFoundEdge(u, v) {
							return true
						}
					} else {
						wm.updateSlack(u, wm.st[v])
					}
				}
			}
		}
		// Dual adjustment: the largest step keeping every constraint tight.
		wm.dualAdjusts++
		d := wmInf
		for b := wm.n + 1; b <= wm.nx; b++ {
			if wm.st[b] == b && wm.s[b] == 1 {
				if half := wm.lab[b] / 2; half < d {
					d = half
				}
			}
		}
		for x := int32(1); x <= wm.nx; x++ {
			if wm.st[x] == x && wm.slack[x] != 0 {
				delta := wm.eDelta(wm.slack[x], x)
				if wm.s[x] == 0 {
					delta /= 2
				}
				if wm.s[x] == -1 || wm.s[x] == 0 {
					if delta < d {
						d = delta
					}
				}
			}
		}
		// Vertex duals must stay nonnegative: cap the step at the smallest
		// outer dual, and stop once one reaches zero. The final adjustment
		// is applied consistently (not aborted mid-loop) so the duals are a
		// valid optimality certificate after solve: free vertices decrease
		// in every adjustment of every phase, so they carry the minimum
		// dual and end exactly at zero.
		done := false
		for u := int32(1); u <= wm.n; u++ {
			if wm.s[wm.st[u]] == 0 && wm.lab[u] < d {
				d = wm.lab[u]
			}
		}
		for u := int32(1); u <= wm.n; u++ {
			switch wm.s[wm.st[u]] {
			case 0:
				wm.lab[u] -= d
				if wm.lab[u] == 0 {
					done = true
				}
			case 1:
				wm.lab[u] += d
			}
		}
		for b := wm.n + 1; b <= wm.nx; b++ {
			if wm.st[b] == b {
				switch wm.s[b] {
				case 0:
					wm.lab[b] += 2 * d
				case 1:
					wm.lab[b] -= 2 * d
				}
			}
		}
		if done {
			return false // a free vertex's dual hit zero: no augmenting path
		}
		wm.q = wm.q[:0]
		wm.qh = 0
		for x := int32(1); x <= wm.nx; x++ {
			if wm.st[x] == x && wm.slack[x] != 0 && wm.st[wm.slack[x]] != x && wm.eDelta(wm.slack[x], x) == 0 {
				i := wm.idx(wm.slack[x], x)
				if wm.onFoundEdge(wm.eu[i], wm.ev[i]) {
					return true
				}
			}
		}
		for b := wm.n + 1; b <= wm.nx; b++ {
			if wm.st[b] == b && wm.s[b] == 1 && wm.lab[b] == 0 {
				wm.expandBlossom(b)
			}
		}
	}
}

// solve computes the maximum-weight matching over the recorded edges. The
// caller reads partners from match[1..n] afterwards (0 = unmatched).
func (wm *wmatch) solve() {
	wMax := int64(0)
	for u := int32(1); u <= wm.n; u++ {
		base := int(u) * int(wm.stride)
		for v := int32(1); v <= wm.n; v++ {
			if w := wm.w[base+int(v)]; w > wMax {
				wMax = w
			}
		}
	}
	for u := int32(1); u <= wm.n; u++ {
		wm.lab[u] = wMax
	}
	for wm.matching() {
	}
}
