package decoder

import (
	"fmt"

	"repro/internal/dem"
)

// Kind names a selectable decoding strategy — the single vocabulary shared
// by the Monte-Carlo engine, the sweep scheduler, the serving front end,
// and the sweep CLIs. Rough guidance on when each wins:
//
//   - KindUF: weighted-growth union-find — near-linear per shot, slightly
//     sub-optimal corrections. The conservative workhorse.
//   - KindBlossom: sparse-blossom exact matching — strictly minimum-weight
//     corrections at union-find-like cost (faster on warm engines at
//     d >= 7). The production matcher.
//   - KindMWPM: component-decomposed exact matching with a union-find
//     fallback on oversized event clusters. Retained as an independent
//     exact implementation; slower than blossom (full Dijkstra per event).
//   - KindExact: the whole-problem O(2^k) dynamic program with a
//     union-find fallback past its event ceiling. Ground truth for tests;
//     not meant for production sweeps.
type Kind string

// The selectable decoder kinds.
const (
	KindUF      Kind = "uf"
	KindBlossom Kind = "blossom"
	KindMWPM    Kind = "mwpm"
	KindExact   Kind = "exact"
)

// Kinds lists every selectable kind.
var Kinds = []Kind{KindUF, KindBlossom, KindMWPM, KindExact}

// ParseKind validates a decoder name from a flag or request field.
func ParseKind(s string) (Kind, error) {
	k := Kind(s)
	for _, known := range Kinds {
		if k == known {
			return k, nil
		}
	}
	return "", fmt.Errorf("decoder: unknown kind %q (want one of %v)", s, Kinds)
}

// New builds the kind's production BatchDecoder over g: union-find and
// blossom stand alone, the matching kinds are wrapped with the union-find
// fallback that covers their size ceilings.
func New(k Kind, g *dem.Graph) (BatchDecoder, error) {
	switch k {
	case KindUF:
		return NewUnionFind(g), nil
	case KindBlossom:
		return NewBlossom(g), nil
	case KindMWPM:
		return NewMWPMFallback(g), nil
	case KindExact:
		return NewExactFallback(g), nil
	}
	return nil, fmt.Errorf("decoder: unknown kind %q (want one of %v)", k, Kinds)
}
