// Package hardware models the physical device parameters and addressing
// scheme of the paper's 2.5D transmon+cavity architecture.
//
// Params carries the Table I starting-point coherence times and gate
// durations plus the per-operation Pauli error probabilities used by the
// noise model (§IV-A). The paper's threshold experiments derive every error
// rate from a single probability p ("given as the probability of an SC-SC
// two-qubit gate error"); Params.ScaledTo implements that common scaling,
// anchored so that p = PRef reproduces the Table I coherence times.
package hardware

import (
	"fmt"
	"math"
)

// PRef is the paper's "typical operating point" physical error rate used in
// the §VI sensitivity studies (2e-3) and the anchor for coherence-time
// scaling in ScaledTo.
const PRef = 2e-3

// DefaultCavityDepth is the cavity mode count the paper assumes throughout
// its evaluation ("we conservatively assume k = 10").
const DefaultCavityDepth = 10

// Params is a full hardware model. Durations are in seconds; probabilities
// are per-operation Pauli error probabilities.
type Params struct {
	// Table I values.
	T1Transmon    float64 // transmon coherence time (100 us)
	T1Cavity      float64 // cavity-mode coherence time (1 ms)
	Gate2Time     float64 // SC-SC two-qubit gate time (200 ns)
	Gate1Time     float64 // single-qubit gate time (50 ns)
	GateTMTime    float64 // transmon-mode two-qubit gate time (200 ns)
	LoadStoreTime float64 // load/store (iSWAP) time (150 ns)

	// Not specified in Table I; documented assumptions (see DESIGN.md).
	MeasureTime float64 // transmon dispersive readout (300 ns)
	ResetTime   float64 // active transmon reset (200 ns)

	// Per-operation Pauli error probabilities.
	PGate2     float64 // SC-SC two-qubit depolarizing probability
	PGate1     float64 // single-qubit depolarizing probability
	PGateTM    float64 // transmon-mode two-qubit depolarizing probability
	PLoadStore float64 // load/store two-qubit depolarizing probability
	PMeasure   float64 // classical readout flip probability
	PReset     float64 // bit-flip probability right after reset

	// CavityDepth is k, the number of resonant modes per cavity.
	CavityDepth int
}

// Default returns the Table I hardware model at the reference operating
// point (all gate error rates PRef, single-qubit gates 10x better).
func Default() Params {
	return Params{
		T1Transmon:    100e-6,
		T1Cavity:      1e-3,
		Gate2Time:     200e-9,
		Gate1Time:     50e-9,
		GateTMTime:    200e-9,
		LoadStoreTime: 150e-9,
		MeasureTime:   300e-9,
		ResetTime:     200e-9,
		PGate2:        PRef,
		PGate1:        PRef / 10,
		PGateTM:       PRef,
		PLoadStore:    PRef,
		PMeasure:      PRef,
		PReset:        PRef,
		CavityDepth:   DefaultCavityDepth,
	}
}

// ScaledTo returns a copy of p with every error source rescaled from a
// single physical error probability phys (interpreted, as in the paper, as
// the SC-SC two-qubit gate error). Gate-type ratios are preserved from the
// receiver, and coherence times scale inversely with phys so that
// phys = PRef reproduces the receiver's coherence times.
func (p Params) ScaledTo(phys float64) Params {
	if phys <= 0 {
		panic(fmt.Sprintf("hardware: physical error rate must be positive, got %g", phys))
	}
	ratio := phys / p.PGate2
	out := p
	out.PGate2 = phys
	out.PGate1 = p.PGate1 * ratio
	out.PGateTM = p.PGateTM * ratio
	out.PLoadStore = p.PLoadStore * ratio
	out.PMeasure = p.PMeasure * ratio
	out.PReset = p.PReset * ratio
	out.T1Transmon = p.T1Transmon / ratio
	out.T1Cavity = p.T1Cavity / ratio
	return out
}

// ScaledGatesTo returns a copy of p with every *gate* error source rescaled
// from the physical error probability phys, keeping coherence times at their
// current (Table I) values. This is the normalization used for the Fig. 11
// threshold sweeps: with cavity-depth serialization, the storage error per
// round is a fixed floor set by T1 and the round duration, while the swept
// variable is the gate fidelity. (Scaling T1 inversely with p — ScaledTo —
// would make the k-1-round cavity gaps dominate at exactly the threshold
// region and push all memory-scheme thresholds far below the baseline,
// contradicting the paper's Fig. 11; see DESIGN.md.)
func (p Params) ScaledGatesTo(phys float64) Params {
	t1t, t1c := p.T1Transmon, p.T1Cavity
	out := p.ScaledTo(phys)
	out.T1Transmon, out.T1Cavity = t1t, t1c
	return out
}

// LambdaTransmon is the probability of a storage (idle) Pauli error on a
// transmon over duration dt: 1 - exp(-dt/T1).
func (p Params) LambdaTransmon(dt float64) float64 {
	return lambda(dt, p.T1Transmon)
}

// LambdaCavity is the idle Pauli error probability for a cavity mode over
// duration dt.
func (p Params) LambdaCavity(dt float64) float64 {
	return lambda(dt, p.T1Cavity)
}

func lambda(dt, t1 float64) float64 {
	if dt <= 0 {
		return 0
	}
	if t1 <= 0 {
		return 1
	}
	return 1 - math.Exp(-dt/t1)
}

// Validate reports a configuration error, if any.
func (p Params) Validate() error {
	type check struct {
		name string
		v    float64
		prob bool
	}
	checks := []check{
		{"T1Transmon", p.T1Transmon, false},
		{"T1Cavity", p.T1Cavity, false},
		{"Gate2Time", p.Gate2Time, false},
		{"Gate1Time", p.Gate1Time, false},
		{"GateTMTime", p.GateTMTime, false},
		{"LoadStoreTime", p.LoadStoreTime, false},
		{"MeasureTime", p.MeasureTime, false},
		{"ResetTime", p.ResetTime, false},
		{"PGate2", p.PGate2, true},
		{"PGate1", p.PGate1, true},
		{"PGateTM", p.PGateTM, true},
		{"PLoadStore", p.PLoadStore, true},
		{"PMeasure", p.PMeasure, true},
		{"PReset", p.PReset, true},
	}
	for _, c := range checks {
		if c.v < 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("hardware: %s = %g is invalid", c.name, c.v)
		}
		if c.prob && c.v > 1 {
			return fmt.Errorf("hardware: %s = %g exceeds 1", c.name, c.v)
		}
	}
	if p.CavityDepth < 0 {
		return fmt.Errorf("hardware: CavityDepth = %d is invalid", p.CavityDepth)
	}
	return nil
}

// PhysicalAddr identifies a stack: the 2D patch of transmons (and their
// attached cavities) a logical qubit is loaded into for computation
// (§III-A: "transmon patch is the physical memory address").
type PhysicalAddr struct {
	Row, Col int
}

func (a PhysicalAddr) String() string { return fmt.Sprintf("stack(%d,%d)", a.Row, a.Col) }

// VirtualAddr identifies a logical qubit at rest: a stack plus the cavity
// mode index its patch is stored in ("a virtual memory address of a logical
// qubit refers to exactly the pair (transmon patch, index)").
type VirtualAddr struct {
	Stack PhysicalAddr
	Mode  int
}

func (a VirtualAddr) String() string {
	return fmt.Sprintf("%v/mode%d", a.Stack, a.Mode)
}
