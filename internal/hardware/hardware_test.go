package hardware

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTableI(t *testing.T) {
	p := Default()
	if p.T1Transmon != 100e-6 {
		t.Errorf("T1,t = %g, want 100us", p.T1Transmon)
	}
	if p.T1Cavity != 1e-3 {
		t.Errorf("T1,c = %g, want 1ms", p.T1Cavity)
	}
	if p.Gate2Time != 200e-9 {
		t.Errorf("dt-t = %g, want 200ns", p.Gate2Time)
	}
	if p.Gate1Time != 50e-9 {
		t.Errorf("dt = %g, want 50ns", p.Gate1Time)
	}
	if p.GateTMTime != 200e-9 {
		t.Errorf("dt-m = %g, want 200ns", p.GateTMTime)
	}
	if p.LoadStoreTime != 150e-9 {
		t.Errorf("dl/s = %g, want 150ns", p.LoadStoreTime)
	}
	if p.CavityDepth != 10 {
		t.Errorf("k = %d, want 10", p.CavityDepth)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestScaledTo(t *testing.T) {
	p := Default().ScaledTo(PRef)
	if p.PGate2 != PRef || math.Abs(p.T1Transmon-100e-6) > 1e-12 {
		t.Errorf("scaling to PRef must be the identity: %+v", p)
	}

	q := Default().ScaledTo(2 * PRef)
	if q.PGate2 != 2*PRef {
		t.Errorf("PGate2 = %g, want %g", q.PGate2, 2*PRef)
	}
	if math.Abs(q.PGate1-2*PRef/10) > 1e-15 {
		t.Errorf("PGate1 = %g, want %g", q.PGate1, 2*PRef/10)
	}
	if math.Abs(q.T1Transmon-50e-6) > 1e-12 {
		t.Errorf("T1 transmon = %g, want 50us (inverse scaling)", q.T1Transmon)
	}
	if math.Abs(q.T1Cavity-0.5e-3) > 1e-12 {
		t.Errorf("T1 cavity = %g, want 0.5ms", q.T1Cavity)
	}
	// Durations never change under error-rate scaling ("gate times are
	// fixed while we vary the physical error rate").
	if q.Gate2Time != p.Gate2Time || q.LoadStoreTime != p.LoadStoreTime {
		t.Error("gate durations must not scale")
	}
}

func TestScaledToPreservesRatios(t *testing.T) {
	f := func(scale float64) bool {
		phys := math.Mod(math.Abs(scale), 0.05) + 1e-5
		p := Default().ScaledTo(phys)
		return math.Abs(p.PGate1/p.PGate2-0.1) < 1e-9 &&
			math.Abs(p.PLoadStore/p.PGate2-1.0) < 1e-9 &&
			math.Abs(p.T1Transmon*p.PGate2-100e-6*PRef) < 1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLambda(t *testing.T) {
	p := Default()
	if got := p.LambdaTransmon(0); got != 0 {
		t.Errorf("lambda(0) = %g, want 0", got)
	}
	// Small-time expansion: lambda(dt) ~ dt/T1.
	dt := 1e-9
	if got, want := p.LambdaTransmon(dt), dt/p.T1Transmon; math.Abs(got-want)/want > 1e-3 {
		t.Errorf("lambda small-dt = %g, want ~%g", got, want)
	}
	// Cavity is 10x more coherent than the transmon: 10x fewer idle errors.
	ratio := p.LambdaTransmon(1e-6) / p.LambdaCavity(1e-6)
	if math.Abs(ratio-10) > 0.1 {
		t.Errorf("transmon/cavity idle-error ratio = %g, want ~10", ratio)
	}
	// Monotone and saturating.
	if p.LambdaCavity(10) <= p.LambdaCavity(1e-3) || p.LambdaCavity(100) > 1 {
		t.Error("lambda must be monotone in dt and bounded by 1")
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	p := Default()
	p.PGate2 = 1.5
	if err := p.Validate(); err == nil {
		t.Error("PGate2 > 1 must fail validation")
	}
	p = Default()
	p.T1Cavity = -1
	if err := p.Validate(); err == nil {
		t.Error("negative T1 must fail validation")
	}
	p = Default()
	p.CavityDepth = -2
	if err := p.Validate(); err == nil {
		t.Error("negative cavity depth must fail validation")
	}
}

func TestAddressStrings(t *testing.T) {
	v := VirtualAddr{Stack: PhysicalAddr{Row: 1, Col: 2}, Mode: 7}
	if got := v.String(); got != "stack(1,2)/mode7" {
		t.Errorf("VirtualAddr string = %q", got)
	}
}
