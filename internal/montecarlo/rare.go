package montecarlo

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"repro/internal/decoder"
	"repro/internal/dem"
	"repro/internal/extract"
)

// DefaultBoost is the proposal inflation factor used when Config.RareEvent
// is set without an explicit Boost. Deep below threshold a logical failure
// needs ~(d+1)/2 coincident mechanism fires, so boosting every fault source
// by b multiplies the failure-observation rate by roughly b^((d+1)/2) while
// the likelihood-ratio weight spread grows only as exp(λ(b-1)²/b) in the
// expected fire count λ; b = 2 sits on the profitable side of that tradeoff
// for the whole d ≥ 7, p ≤ 2e-3 band this mode exists for. Cells with small
// λ (low d, low p) tolerate — and benefit from — larger boosts; tune per
// cell via Config.Boost.
const DefaultBoost = 2.0

// WeightedResult is the importance-sampling tally of one rare-event point:
// running sums of the likelihood-ratio weights over all shots and over
// failing shots, from which the unbiased estimate, its sampling error, and
// the effective sample size all derive. The sums are plain in-order
// accumulations — worker w adds its 64-shot batches in shot order, and
// merges fold parts in shard-index order — so a merged WeightedResult is
// bit-identical at any pool width or worker count, the same contract the
// integer tallies have always had.
type WeightedResult struct {
	// Shots is the number of weighted shots accumulated.
	Shots int
	// SumW and SumW2 sum w and w² over every shot (failing or not); their
	// ratio gives the Kish effective sample size.
	SumW  float64
	SumW2 float64
	// SumWFail and SumW2Fail sum w and w² over failing shots only — the
	// estimator numerator and its variance mass.
	SumWFail  float64
	SumW2Fail float64
	// MaxW is the largest single-shot weight seen: a diagnostic for proposal
	// quality (one weight dominating the sum means the error bar is not yet
	// trustworthy).
	MaxW float64
}

// addShot folds one shot's weight into the tally.
func (wr *WeightedResult) addShot(w float64, fail bool) {
	wr.Shots++
	wr.SumW += w
	wr.SumW2 += w * w
	if fail {
		wr.SumWFail += w
		wr.SumW2Fail += w * w
	}
	if w > wr.MaxW {
		wr.MaxW = w
	}
}

// Add folds another tally into wr. Addition order matters bit-wise: callers
// merge in worker/shard index order (Run, MergeShards) so identical parts
// always fold to identical sums.
func (wr *WeightedResult) Add(o WeightedResult) {
	wr.Shots += o.Shots
	wr.SumW += o.SumW
	wr.SumW2 += o.SumW2
	wr.SumWFail += o.SumWFail
	wr.SumW2Fail += o.SumW2Fail
	if o.MaxW > wr.MaxW {
		wr.MaxW = o.MaxW
	}
}

// Estimate returns the importance-sampling estimate of the logical error
// rate: the mean of w·1[fail] over all shots, which is unbiased for the
// target-model failure probability for any proposal that can reach every
// failing configuration.
func (wr WeightedResult) Estimate() float64 {
	if wr.Shots == 0 {
		return 0
	}
	return wr.SumWFail / float64(wr.Shots)
}

// Variance returns the estimated variance of Estimate (the sample variance
// of w·1[fail] divided by the shot count).
func (wr WeightedResult) Variance() float64 {
	if wr.Shots < 2 {
		return 0
	}
	n := float64(wr.Shots)
	mu := wr.SumWFail / n
	s2 := (wr.SumW2Fail - n*mu*mu) / (n - 1)
	if s2 < 0 {
		s2 = 0 // float cancellation guard
	}
	return s2 / n
}

// StdErr returns the standard error of Estimate.
func (wr WeightedResult) StdErr() float64 { return math.Sqrt(wr.Variance()) }

// RelErr returns StdErr/Estimate — the quantity TargetRelErr stops on. With
// no failures observed yet the relative error is +Inf (the estimate is 0
// with no evidence); with no shots at all it is 0 (an empty tally).
func (wr WeightedResult) RelErr() float64 {
	mu := wr.Estimate()
	if mu <= 0 {
		if wr.Shots > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return wr.StdErr() / mu
}

// ESS returns the Kish effective sample size (ΣW)²/ΣW²: how many unweighted
// shots the weighted sample is statistically worth. Equal weights give
// ESS == Shots; a degenerate proposal collapses it toward 1.
func (wr WeightedResult) ESS() float64 {
	if wr.SumW2 <= 0 {
		return 0
	}
	return wr.SumW * wr.SumW / wr.SumW2
}

// FailESS returns the effective number of independent failure observations
// (ΣW_fail)²/ΣW²_fail — the number that actually bounds the error bar.
// Below ~10 the reported RelErr should not be trusted.
func (wr WeightedResult) FailESS() float64 {
	if wr.SumW2Fail <= 0 {
		return 0
	}
	return wr.SumWFail * wr.SumWFail / wr.SumW2Fail
}

// RelErrMet reports whether the tally has a positive estimate whose relative
// error is at or below target (target <= 0 never stops).
func (wr WeightedResult) RelErrMet(target float64) bool {
	return target > 0 && wr.Estimate() > 0 && wr.RelErr() <= target
}

// boostProbs maps per-op target probabilities to the inflated proposal:
// probabilities in (0, 0.5) scale by boost and clamp at 0.5 (a mechanism
// boosted past even odds stops being "rare" and only degrades the weights);
// zeros stay zero and anything at or above 0.5 is left alone, so the
// always-fire and zero-support classes match the target exactly.
func boostProbs(boost float64, probs, dst []float64) []float64 {
	for _, p := range probs {
		q := p
		if p > 0 && p < 0.5 {
			q = math.Min(boost*p, 0.5)
		}
		dst = append(dst, q)
	}
	return dst
}

// alignProposal patches the folded proposal model so its zero-support and
// always-fire mechanism classes match the target's exactly — the weighted
// sampler's validity precondition. XOR-folding boosted sources preserves
// the classes in every realistic model (the fold of positives is positive),
// but extreme parameter corners can collapse a fold to the boundary; pinning
// those mechanisms to the target probability keeps the likelihood ratio
// defined at the cost of not inflating them.
func alignProposal(target, prop *dem.Model) {
	for i := range target.Mechs {
		p, q := target.Mechs[i].P, prop.Mechs[i].P
		if (p <= 0) != (q <= 0) || (p >= 1) != (q >= 1) {
			prop.Mechs[i].P = p
		}
	}
}

// prepareRare resolves a rare-event point to its target model, boosted
// proposal model, and decoding graph. Both models reweight through the same
// cached Structure (shared footprints, two probability columns); the graph
// comes from the target, so corrections are minimum-weight under the true
// noise while shots are drawn from the proposal. st, when non-nil, donates
// its probability and model buffers exactly like Engine.prepare.
func (en *Engine) prepareRare(cfg Config, st *WorkerState) (target, prop *dem.Model, graph *dem.Graph, err error) {
	entry, err := en.structure(cfg.extractConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	var probs, wprobs []float64
	var recycleT, recycleP *dem.Model
	if st != nil {
		probs, wprobs = st.probs, st.wprobs
		recycleT, recycleP = st.model, st.wmodel
	}
	if p2, perr := entry.exp.NoiseProbs(cfg.Params, probs[:0]); perr == nil {
		probs = p2
		target, err = entry.st.ReweightInto(probs, recycleT)
		if err != nil {
			return nil, nil, nil, err
		}
		wprobs = boostProbs(cfg.Boost, probs, wprobs[:0])
		prop, err = entry.st.ReweightInto(wprobs, recycleP)
		if err != nil {
			return nil, nil, nil, err
		}
		if st != nil {
			st.probs, st.wprobs = probs, wprobs
			st.model, st.wmodel = target, prop
		}
	} else {
		// Uncached parameter-mismatch fallback, mirroring Engine.prepare: a
		// dedicated build whose structure serves both probability columns.
		exp, berr := extract.Build(cfg.extractConfig())
		if berr != nil {
			return nil, nil, nil, berr
		}
		en.builds.Add(1)
		s, serr := dem.BuildStructure(exp)
		if serr != nil {
			return nil, nil, nil, serr
		}
		ps := exp.Circ.OpProbs(make([]float64, 0, exp.Circ.NumOps()))
		target, err = s.Reweight(ps)
		if err != nil {
			return nil, nil, nil, err
		}
		prop, err = s.Reweight(boostProbs(cfg.Boost, ps, nil))
		if err != nil {
			return nil, nil, nil, err
		}
	}
	alignProposal(target, prop)
	graph, err = target.DecodingGraph()
	if err != nil {
		return nil, nil, nil, err
	}
	return target, prop, graph, nil
}

// prepareModels is the mode dispatcher the point executors share: plain
// points get (model, nil, graph), rare-event points (target, proposal,
// graph). A non-nil proposal is the signal runAnyWorker switches on.
func (en *Engine) prepareModels(cfg Config, st *WorkerState) (model, prop *dem.Model, graph *dem.Graph, err error) {
	if cfg.RareEvent {
		return en.prepareRare(cfg, st)
	}
	model, graph, err = en.prepare(cfg, st)
	return model, nil, graph, err
}

// runAnyWorker executes worker w's share of a point in whichever mode the
// prepared models imply.
func runAnyWorker(model, prop *dem.Model, graph *dem.Graph, cfg Config, w, trials int, budget *ShardBudget, st *WorkerState) (tally, error) {
	if prop != nil {
		return runWeightedWorker(model, prop, graph, cfg, w, trials, budget, st)
	}
	return runWorker(model, graph, cfg, w, trials, budget, st)
}

// weightedSampler returns the worker's weighted batch sampler rebound over
// the (target, proposal) pair, creating it on first use — the weighted
// sibling of WorkerState.sampler.
func (st *WorkerState) weightedSampler(target, prop *dem.Model) (*dem.WeightedBatchSampler, error) {
	if st.wsamp == nil {
		ws, err := dem.NewWeightedBatchSampler(target, prop)
		if err != nil {
			return nil, err
		}
		st.wsamp = ws
		return ws, nil
	}
	if err := st.wsamp.Reset(target, prop); err != nil {
		return nil, err
	}
	return st.wsamp, nil
}

// runWeightedWorker is runWorker's importance-sampling twin: shots come from
// the proposal model through the worker's ChaCha8 stream (same seed
// derivation, so boost = 1 consumes the stream identically to the plain
// path), decode through the unchanged pipeline/decoder against the target
// graph, and every shot's likelihood-ratio weight folds into the tally in
// ascending shot order — the pipeline and bare paths share one accumulation
// loop over a failure bitmask, so the weighted sums are bit-identical with
// the pipeline on or off. Early stop is on budget-pooled relative error
// (cfg.TargetRelErr), checked at batch boundaries like TargetFailures.
func runWeightedWorker(target, prop *dem.Model, graph *dem.Graph, cfg Config, w, trials int, budget *ShardBudget, st *WorkerState) (tally, error) {
	var t tally
	relTarget := cfg.TargetRelErr
	rng := rand.New(rand.NewChaCha8(workerSeed(cfg.Seed, w)))
	ws, err := st.weightedSampler(target, prop)
	if err != nil {
		return t, err
	}
	dec, fb := st.decoderFor(cfg.Decoder, graph)
	statsSrc, _ := dec.(decoder.StatsSource)
	var statsBase decoder.DecoderStats
	if statsSrc != nil {
		statsBase = statsSrc.DecoderStats()
	}
	var pipe *decoder.Pipeline
	if !cfg.DisablePipeline {
		pipe = st.pipeline(dec)
	}
	var out, truth [dem.BatchShots]bool
	for t.trials < trials {
		if budget.aborted.Load() {
			break
		}
		if relTarget > 0 && budget.WeightedRelErrMet(relTarget) {
			break
		}
		n := min(dem.BatchShots, trials-t.trials)
		ws.SampleN(rng, n)
		var failw uint64
		if pipe != nil {
			full := ^uint64(0)
			if n < dem.BatchShots {
				full = 1<<uint(n) - 1
			}
			mask := ws.EventMask()
			obsW := ws.ObsWord()
			zero := full &^ mask
			t.skipped += bits.OnesCount64(zero)
			failw |= obsW & zero
			ws.Extract(mask, &st.shots)
			st.batch.Reset()
			for i := 0; i < st.shots.Len(); i++ {
				st.batch.Add(st.shots.Shot(i))
			}
			before := pipe.Stats().DedupHits
			if err := pipe.DecodeBatch(&st.batch, out[:st.shots.Len()]); err != nil {
				return t, err
			}
			t.dedupHits += int(pipe.Stats().DedupHits - before)
			for i := 0; i < st.shots.Len(); i++ {
				s := st.shots.Index(i)
				if out[i] != (obsW&(1<<uint(s)) != 0) {
					failw |= 1 << uint(s)
				}
			}
		} else {
			st.batch.Reset()
			for s := 0; s < n; s++ {
				events, obs := ws.Shot(s)
				st.batch.Add(events)
				truth[s] = obs
			}
			if err := dec.DecodeBatch(&st.batch, out[:n]); err != nil {
				return t, err
			}
			for s := 0; s < n; s++ {
				if out[s] != truth[s] {
					failw |= 1 << uint(s)
				}
			}
		}
		// One ordered accumulation loop for both decode paths: weights fold
		// shot-by-shot into a per-batch delta, deltas fold batch-by-batch
		// into the tally — a fixed association, so the sums cannot depend on
		// the pipeline switch, pool width, or sibling-shard timing.
		var delta WeightedResult
		for s := 0; s < n; s++ {
			delta.addShot(ws.Weight(s), failw&(1<<uint(s)) != 0)
		}
		t.trials += n
		t.failures += bits.OnesCount64(failw)
		t.weighted.Add(delta)
		if relTarget > 0 {
			budget.AddWeighted(delta)
		}
	}
	if fb != nil {
		t.fallbacks = int(fb.Fallbacks)
	}
	if statsSrc != nil {
		t.stats = statsSrc.DecoderStats().Sub(statsBase)
	}
	return t, nil
}

// normalizeRare validates the rare-event half of a Config, filling the
// default boost. Split out of normalize for readability.
func (cfg *Config) normalizeRare() error {
	if !cfg.RareEvent {
		if cfg.Boost != 0 {
			return fmt.Errorf("montecarlo: Boost requires RareEvent mode")
		}
		if cfg.TargetRelErr != 0 {
			return fmt.Errorf("montecarlo: TargetRelErr requires RareEvent mode")
		}
		return nil
	}
	if cfg.Boost == 0 {
		cfg.Boost = DefaultBoost
	}
	if math.IsNaN(cfg.Boost) || math.IsInf(cfg.Boost, 0) || cfg.Boost < 1 {
		return fmt.Errorf("montecarlo: boost must be a finite factor >= 1, got %g", cfg.Boost)
	}
	if cfg.TargetFailures > 0 {
		return fmt.Errorf("montecarlo: TargetFailures is undefined for weighted estimates; use TargetRelErr")
	}
	if math.IsNaN(cfg.TargetRelErr) || cfg.TargetRelErr < 0 {
		return fmt.Errorf("montecarlo: target relative error must be >= 0, got %g", cfg.TargetRelErr)
	}
	return nil
}
