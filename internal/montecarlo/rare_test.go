package montecarlo

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

func rareTestConfig(d int, phys float64, trials int) Config {
	return Config{
		Scheme: extract.Baseline, Distance: d, Basis: extract.BasisZ,
		Params: hardware.Default().ScaledGatesTo(phys), Trials: trials, Seed: 4242,
		RareEvent: true, Boost: 2,
	}
}

// Boost = 1 makes the proposal equal the target: the weighted run must
// consume the identical RNG stream, observe the identical failing shots,
// carry weight exactly 1 on every shot, and report an estimate exactly
// equal to the unweighted failure fraction.
func TestRareBoostOneMatchesUnweighted(t *testing.T) {
	en := NewEngine()
	cfg := rareTestConfig(3, 6e-3, 8192)
	cfg.Boost = 1
	cfg.Workers = 2
	weighted, err := en.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := cfg
	plain.RareEvent, plain.Boost = false, 0
	unweighted, err := en.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Failures != unweighted.Failures || weighted.Trials != unweighted.Trials {
		t.Fatalf("boost-1 counts diverged: weighted %d/%d, unweighted %d/%d",
			weighted.Failures, weighted.Trials, unweighted.Failures, unweighted.Trials)
	}
	if weighted.Skipped != unweighted.Skipped || weighted.DedupHits != unweighted.DedupHits {
		t.Fatalf("boost-1 pipeline counters diverged: %d/%d vs %d/%d",
			weighted.Skipped, weighted.DedupHits, unweighted.Skipped, unweighted.DedupHits)
	}
	wr := weighted.Weighted
	if wr.Shots != cfg.Trials || wr.SumW != float64(cfg.Trials) || wr.SumW2 != float64(cfg.Trials) {
		t.Fatalf("boost-1 weights not exactly 1: %+v", wr)
	}
	if wr.SumWFail != float64(unweighted.Failures) || wr.MaxW != 1 {
		t.Fatalf("boost-1 failure weights not exactly 1: %+v", wr)
	}
	if got, want := weighted.Rate(), unweighted.Rate(); got != want {
		t.Fatalf("boost-1 estimate %g != unweighted rate %g", got, want)
	}
	if ess := weighted.ESS(); ess != float64(cfg.Trials) {
		t.Fatalf("boost-1 ESS %g, want exactly %v", ess, cfg.Trials)
	}
}

// The weighted estimator must agree with brute force where both converge:
// d∈{3,5} overlap cells at several boosts, each estimate within 3σ of the
// combined error bars of the weighted run and a RunReference baseline.
func TestRareCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweeps are slow")
	}
	en := NewEngine()
	cells := []struct {
		d      int
		phys   float64
		trials int
	}{
		{3, 2e-3, 60000},
		{3, 4e-3, 30000},
		{5, 2e-3, 60000},
		{5, 4e-3, 30000},
	}
	for _, cell := range cells {
		ref := Config{
			Scheme: extract.Baseline, Distance: cell.d, Basis: extract.BasisZ,
			Params: hardware.Default().ScaledGatesTo(cell.phys),
			Trials: cell.trials, Seed: 7001, Workers: 2,
		}
		brute, err := RunReference(ref)
		if err != nil {
			t.Fatal(err)
		}
		if brute.Failures == 0 {
			t.Fatalf("d=%d p=%g: reference cell saw no failures; not an overlap cell", cell.d, cell.phys)
		}
		for _, boost := range []float64{1, 2, 4} {
			cfg := ref
			cfg.Seed = 7002 // independent stream from the reference
			cfg.RareEvent, cfg.Boost = true, boost
			res, err := en.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			est, se := res.Rate(), res.StdErr()
			bEst, bSE := brute.Rate(), brute.StdErr()
			sigma := math.Sqrt(se*se + bSE*bSE)
			if z := math.Abs(est-bEst) / sigma; z > 3 {
				t.Errorf("d=%d p=%g boost=%g: weighted %.4g±%.2g vs brute %.4g±%.2g (z=%.2f)",
					cell.d, cell.phys, boost, est, se, bEst, bSE, z)
			}
			if boost == 1 && res.Weighted.ESS() != float64(res.Trials) {
				t.Errorf("d=%d p=%g: boost-1 ESS %g != trials %d", cell.d, cell.phys, res.Weighted.ESS(), res.Trials)
			}
		}
	}
}

// Weighted results must be bit-identical across Run worker counts matched to
// shard plans, merged shards must equal the multi-worker Run exactly, and
// RunOn must equal the single-worker Run — the Result/ShardResult contract
// extended to the float sums.
func TestRareShardWidthDeterminism(t *testing.T) {
	en := NewEngine()
	cfg := rareTestConfig(3, 4e-3, 8192)
	single, err := en.Run(withWorkers(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	on, err := en.RunOn(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if on.Weighted != single.Weighted || on.Failures != single.Failures {
		t.Fatalf("RunOn diverged from Run(Workers=1):\n%+v\n%+v", on.Weighted, single.Weighted)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		ref, err := en.Run(withWorkers(cfg, shards))
		if err != nil {
			t.Fatal(err)
		}
		plan := ShardPlan{Shards: shards, Trials: cfg.Trials}
		var budget ShardBudget
		var st WorkerState
		parts := make([]ShardResult, shards)
		// Execute shards in reverse on one reused WorkerState: arrival order
		// and state reuse must not leak into the merged sums.
		for s := shards - 1; s >= 0; s-- {
			parts[s], err = en.RunShardOn(cfg, plan, s, &budget, &st)
			if err != nil {
				t.Fatal(err)
			}
		}
		merged, err := MergeShards(cfg, parts)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Weighted != ref.Weighted {
			t.Fatalf("shards=%d: merged weighted tally diverged from Run:\n%+v\n%+v",
				shards, merged.Weighted, ref.Weighted)
		}
		if merged.Failures != ref.Failures || merged.Trials != ref.Trials {
			t.Fatalf("shards=%d: merged counts %d/%d vs Run %d/%d",
				shards, merged.Failures, merged.Trials, ref.Failures, ref.Trials)
		}
		// Arrival-order invariance: merging a rotated slice folds the same.
		rotated := append(append([]ShardResult(nil), parts[1:]...), parts[0])
		remerged, err := MergeShards(cfg, rotated)
		if err != nil {
			t.Fatal(err)
		}
		if remerged.Weighted != merged.Weighted {
			t.Fatalf("shards=%d: merge depends on part order", shards)
		}
	}
}

// Pipeline on/off must not change the weighted sums — the shared ordered
// accumulation loop's contract.
func TestRarePipelineBitIdentity(t *testing.T) {
	en := NewEngine()
	cfg := rareTestConfig(5, 2e-3, 8192)
	cfg.Workers = 2
	onRes, err := en.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePipeline = true
	offRes, err := en.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if onRes.Weighted != offRes.Weighted || onRes.Failures != offRes.Failures {
		t.Fatalf("pipeline switch changed weighted tally:\non:  %+v\noff: %+v", onRes.Weighted, offRes.Weighted)
	}
}

// TargetRelErr must stop a convergent point early with the target actually
// met, and leave Trials reporting the shots taken.
func TestRareTargetRelErrEarlyStop(t *testing.T) {
	en := NewEngine()
	cfg := rareTestConfig(3, 8e-3, 2_000_000)
	cfg.TargetRelErr = 0.25
	res, err := en.RunOn(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials >= cfg.Trials {
		t.Fatalf("early stop never engaged: took all %d trials", res.Trials)
	}
	if re := res.RelErr(); !(re <= cfg.TargetRelErr) {
		t.Fatalf("stopped at relative error %g, target %g", re, cfg.TargetRelErr)
	}
	if res.Weighted.Estimate() <= 0 {
		t.Fatal("early-stopped point has no estimate")
	}
}

// ESS partition invariants: the weighted sums partition exactly across a
// shard plan (each component of the merged tally is the ordered sum of the
// parts), and the effective sample sizes obey their bounds.
func TestRareESSPartitionInvariants(t *testing.T) {
	en := NewEngine()
	cfg := rareTestConfig(3, 4e-3, 8192)
	plan := ShardPlan{Shards: 4, Trials: cfg.Trials}
	var budget ShardBudget
	parts := make([]ShardResult, plan.Shards)
	var err error
	for s := range parts {
		parts[s], err = en.RunShardOn(cfg, plan, s, &budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		wr := parts[s].Weighted
		if wr.Shots != plan.ShardTrials(s) {
			t.Fatalf("shard %d: %d weighted shots, want %d", s, wr.Shots, plan.ShardTrials(s))
		}
		if ess := wr.ESS(); ess <= 0 || ess > float64(wr.Shots)*(1+1e-12) {
			t.Fatalf("shard %d: ESS %g outside (0, shots=%d]", s, ess, wr.Shots)
		}
	}
	var manual WeightedResult
	for _, p := range parts {
		manual.Add(p.Weighted)
	}
	merged, err := MergeShards(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Weighted != manual {
		t.Fatalf("merge does not partition: %+v vs %+v", merged.Weighted, manual)
	}
	if merged.Weighted.Shots != cfg.Trials {
		t.Fatalf("merged shots %d, want %d", merged.Weighted.Shots, cfg.Trials)
	}
	if fess := merged.Weighted.FailESS(); fess > float64(merged.Failures)*(1+1e-12) {
		t.Fatalf("FailESS %g exceeds failure count %d", fess, merged.Failures)
	}
}

// Empirical coverage of the reported error bar: over repeat-seed runs of
// one cell, ~95% of the 2σ intervals must cover the pooled mean. The seeds
// are pinned, so this is a deterministic regression gate on the variance
// estimator, not a flaky tolerance.
func TestRareCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage batch is slow")
	}
	en := NewEngine()
	const repeats = 40
	ests := make([]float64, repeats)
	ses := make([]float64, repeats)
	for i := 0; i < repeats; i++ {
		cfg := rareTestConfig(3, 4e-3, 16384)
		cfg.Seed = int64(100 + i*31)
		res, err := en.RunOn(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		ests[i], ses[i] = res.Rate(), res.StdErr()
		if ses[i] <= 0 {
			t.Fatalf("repeat %d: zero error bar", i)
		}
	}
	pooled := 0.0
	for _, e := range ests {
		pooled += e
	}
	pooled /= repeats
	covered := 0
	for i := range ests {
		if math.Abs(ests[i]-pooled) <= 2*ses[i] {
			covered++
		}
	}
	// Binomial(40, 0.954) rarely dips below 33; the pinned seeds hold it.
	if covered < 33 {
		t.Fatalf("2σ coverage %d/%d, want >= 33", covered, repeats)
	}
}

// Boosting must buy relative error at fixed shots in the rare regime: the
// boosted runs observe failures a brute-force run of the same length cannot,
// and more boost (within the profitable band) means a tighter error bar.
func TestRareBoostImprovesRelErr(t *testing.T) {
	if testing.Short() {
		t.Skip("boost sweep is slow")
	}
	en := NewEngine()
	relErrs := map[float64]float64{}
	for _, boost := range []float64{1, 1.5, 2} {
		cfg := rareTestConfig(5, 1e-3, 65536)
		cfg.Boost = boost
		res, err := en.RunOn(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		relErrs[boost] = res.RelErr()
	}
	if !(relErrs[2] < relErrs[1.5]) || !(relErrs[1.5] < relErrs[1]) {
		t.Fatalf("relative error not improved by boost: %v", relErrs)
	}
}

// Configuration validation: the rare-event knobs must be rejected outside
// their domain and outside rare mode.
func TestRareConfigValidation(t *testing.T) {
	base := rareTestConfig(3, 4e-3, 1024)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"boost without rare", func(c *Config) { c.RareEvent = false; c.TargetRelErr = 0 }},
		{"target-rel-err without rare", func(c *Config) { c.RareEvent = false; c.Boost = 0; c.TargetRelErr = 0.1 }},
		{"boost below one", func(c *Config) { c.Boost = 0.5 }},
		{"negative boost", func(c *Config) { c.Boost = -2 }},
		{"NaN boost", func(c *Config) { c.Boost = math.NaN() }},
		{"infinite boost", func(c *Config) { c.Boost = math.Inf(1) }},
		{"target failures in rare mode", func(c *Config) { c.TargetFailures = 10 }},
		{"negative target rel err", func(c *Config) { c.TargetRelErr = -0.1 }},
	}
	en := NewEngine()
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := en.Run(cfg); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
	// Default boost fills in.
	cfg := base
	cfg.Boost = 0
	res, err := en.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Boost != DefaultBoost {
		t.Errorf("default boost not applied: %g", res.Config.Boost)
	}
	// RunReference refuses rare mode.
	if _, err := RunReference(base); err == nil {
		t.Error("RunReference accepted rare-event mode")
	}
}

// WeightedResult's accessors must handle the degenerate tallies the
// executors can produce.
func TestWeightedResultEdgeCases(t *testing.T) {
	var empty WeightedResult
	if empty.Estimate() != 0 || empty.StdErr() != 0 || empty.RelErr() != 0 || empty.ESS() != 0 || empty.FailESS() != 0 {
		t.Fatalf("empty tally not all-zero: %+v", empty)
	}
	if empty.RelErrMet(0.1) {
		t.Fatal("empty tally met a relative-error target")
	}
	var noFail WeightedResult
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 100; i++ {
		noFail.addShot(0.5+rng.Float64(), false)
	}
	if noFail.Estimate() != 0 || !math.IsInf(noFail.RelErr(), 1) {
		t.Fatalf("failure-free tally: estimate %g relerr %g", noFail.Estimate(), noFail.RelErr())
	}
	if noFail.RelErrMet(0.5) {
		t.Fatal("failure-free tally met a relative-error target")
	}
	var one WeightedResult
	one.addShot(2, true)
	if one.Variance() != 0 {
		t.Fatalf("single-shot variance %g, want 0", one.Variance())
	}
	if !one.RelErrMet(0) {
		// target <= 0 never stops, even with an estimate standing
		_ = one
	} else {
		t.Fatal("zero target stopped the run")
	}
}

func withWorkers(cfg Config, w int) Config {
	cfg.Workers = w
	return cfg
}
