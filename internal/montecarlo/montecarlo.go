package montecarlo

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/decoder"
	"repro/internal/dem"
	"repro/internal/extract"
	"repro/internal/hardware"
)

// DecoderKind selects the decoder used for trials — an alias of
// decoder.Kind so the same vocabulary flows from CLI flags and serve
// requests through job specs to the per-worker decode loop.
type DecoderKind = decoder.Kind

// Available decoders. UF is the conservative workhorse; Blossom is the
// sparse-blossom exact matcher (minimum-weight corrections at
// union-find-like cost); MWPM and Exact are the older exact matchers, each
// with a transparent fallback to union-find past their size ceilings.
const (
	UF      = decoder.KindUF
	Blossom = decoder.KindBlossom
	MWPM    = decoder.KindMWPM
	Exact   = decoder.KindExact
)

// Config describes one Monte-Carlo point.
type Config struct {
	Scheme   extract.Scheme
	Distance int
	Rounds   int // 0 => Distance
	Basis    extract.Basis
	Params   hardware.Params
	Trials   int
	Seed     int64
	Workers  int // 0 => GOMAXPROCS
	Decoder  DecoderKind
	// ChargeGapIdle forwards to extract.Config: include the cavity
	// serialization gaps as storage noise (Fig. 12 mode).
	ChargeGapIdle bool
	// TargetFailures, when positive, ends the point early once this many
	// logical failures have accumulated across workers; Trials then acts as
	// a cap and Result.Trials reports the shots actually taken. Early
	// stopping trades the fixed-trial-count determinism for bounded
	// relative error per point (the standard sequential-sampling mode for
	// threshold sweeps).
	TargetFailures int
	// RareEvent switches the point to importance-sampled estimation: shots
	// are drawn from a proposal model whose fault-source probabilities are
	// inflated by Boost, each shot carries its likelihood-ratio weight, and
	// the logical rate comes from Result.Weighted instead of raw failure
	// counts. The mode exists for deep-subthreshold cells (d >= 9 at
	// p ~ 1e-3) where brute force observes zero failures at any affordable
	// trial count. See rare.go and the ARCHITECTURE.md section.
	RareEvent bool
	// Boost is the proposal inflation factor for RareEvent mode: per-op
	// probabilities below 1/2 scale by Boost (clamped at 1/2). Zero selects
	// DefaultBoost; values must be >= 1. Boost = 1 makes the proposal equal
	// the target, reproducing the unweighted sampler bit for bit with all
	// weights exactly 1.
	Boost float64
	// TargetRelErr, when positive in RareEvent mode, ends the point early
	// once the pooled weighted estimate's relative standard error reaches
	// this value — the weighted analog of TargetFailures (which is undefined
	// for weighted tallies and rejected). Trials then acts as a cap.
	TargetRelErr float64
	// DisablePipeline turns off the batch decode pipeline (zero-defect skip
	// + syndrome dedup) and decodes every shot through the unpruned path.
	// The zero value — pipeline on — is the production configuration;
	// predictions are bit-identical either way (the pipeline's contract,
	// pinned by the conformance tests), so the switch exists for A/B
	// benchmarking and as the conformance baseline, not correctness.
	DisablePipeline bool
}

func (cfg Config) extractConfig() extract.Config {
	return extract.Config{
		Scheme: cfg.Scheme, Distance: cfg.Distance, Rounds: cfg.Rounds,
		Basis: cfg.Basis, Params: cfg.Params,
		ChargeGapIdle: cfg.ChargeGapIdle,
	}
}

// Result is the outcome of one Monte-Carlo point.
type Result struct {
	Config    Config
	Trials    int // shots actually taken (< Config.Trials under early stop)
	Failures  int
	Fallbacks int // mwpm/exact trials that fell back to union-find
	// Skipped counts zero-defect shots answered by the pipeline's word-level
	// fast path without touching the decoder; DedupHits counts shots whose
	// syndrome duplicated an earlier shot of the same batch and replayed its
	// prediction. Both are zero when the pipeline is disabled.
	Skipped   int
	DedupHits int
	// Stats sums the decoder-internal stage counters (growth rounds,
	// alternating-tree phases, ...) over every shot of the point. Pure sums,
	// so worker and shard merges are bit-identical at any pool width.
	Stats decoder.DecoderStats
	// Mechanisms and DetectorCount describe the underlying model.
	Mechanisms    int
	DetectorCount int
	// Weighted is the importance-sampling tally, populated only in RareEvent
	// mode (Failures then counts raw failing proposal shots; the estimate
	// and error bar live here).
	Weighted WeightedResult
}

// Rate returns the logical error rate: the weighted estimate in RareEvent
// mode, the raw failure fraction otherwise.
func (r Result) Rate() float64 {
	if r.Config.RareEvent {
		return r.Weighted.Estimate()
	}
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Trials)
}

// StdErr returns the standard error of Rate: the weighted sampling error in
// RareEvent mode, the binomial error otherwise.
func (r Result) StdErr() float64 {
	if r.Config.RareEvent {
		return r.Weighted.StdErr()
	}
	if r.Trials == 0 {
		return 0
	}
	p := r.Rate()
	return math.Sqrt(p * (1 - p) / float64(r.Trials))
}

// RelErr returns StdErr/Rate for either mode (+Inf when the rate is zero
// over a nonzero sample, 0 on an empty result).
func (r Result) RelErr() float64 {
	if r.Config.RareEvent {
		return r.Weighted.RelErr()
	}
	rate := r.Rate()
	if rate <= 0 {
		if r.Trials > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return r.StdErr() / rate
}

// ESS returns the effective sample size: the Kish ESS of the weighted tally
// in RareEvent mode, the raw trial count otherwise.
func (r Result) ESS() float64 {
	if r.Config.RareEvent {
		return r.Weighted.ESS()
	}
	return float64(r.Trials)
}

// DefaultCacheEntries is NewEngine's structure-cache bound. Each entry is
// one (scheme, distance, rounds, basis, durations) experiment plus its
// fault Structure and hoisted graph topology; 64 comfortably covers every
// figure of the paper while keeping a long-lived serving engine bounded.
const DefaultCacheEntries = 64

// Engine runs Monte-Carlo points over a bounded LRU cache of circuit
// structures and detector-error-model Structures. One Engine serves whole
// sweeps; it is safe for concurrent use. The zero value is not usable —
// call NewEngine or NewEngineWithCache.
type Engine struct {
	mu    sync.Mutex
	max   int                                   // cache entry cap; <= 0 means unbounded
	cache map[extract.StructuralKey]*cacheEntry // guarded by mu
	order *list.List                            // of *cacheEntry, most recent at front; guarded by mu

	builds    atomic.Int64
	hits      atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key  extract.StructuralKey
	elem *list.Element
	once sync.Once
	exp  *extract.Experiment
	st   *dem.Structure
	err  error
}

// NewEngine returns an empty engine with the default cache bound.
func NewEngine() *Engine { return NewEngineWithCache(DefaultCacheEntries) }

// NewEngineWithCache returns an empty engine whose structure cache holds at
// most maxEntries entries, evicting least-recently-used structures beyond
// that; maxEntries <= 0 disables eviction.
func NewEngineWithCache(maxEntries int) *Engine {
	return &Engine{
		max:   maxEntries,
		cache: make(map[extract.StructuralKey]*cacheEntry),
		order: list.New(),
	}
}

// defaultEngine backs the package-level Run and sweep functions, so
// repeated calls share structures exactly like an explicit Engine.
var defaultEngine = NewEngine()

// StructureBuilds reports how many experiment+Structure builds the engine
// has performed — the hook that lets tests verify one build serves a whole
// sweep row.
func (en *Engine) StructureBuilds() int64 { return en.builds.Load() }

// Evictions reports how many cache entries LRU eviction has dropped.
func (en *Engine) Evictions() int64 { return en.evictions.Load() }

// CachedStructures reports the current cache population (<= the cap).
func (en *Engine) CachedStructures() int {
	en.mu.Lock()
	defer en.mu.Unlock()
	return len(en.cache)
}

// CacheStats is a point-in-time snapshot of the engine's structure cache,
// the observable contract of the structure/noise split: a sweep (or a
// serving front end fielding repeated sweeps) should see Builds grow only
// when a genuinely new (scheme, distance, rounds, basis, durations)
// experiment arrives, and Hits grow on every point after that.
type CacheStats struct {
	// Builds counts experiment+Structure constructions — cache misses plus
	// the rare uncached parameter-mismatch rebuilds (see Engine.prepare).
	Builds int64 `json:"builds"`
	// Hits counts cache lookups that found an existing entry (including
	// entries still being built by another goroutine, which the caller
	// then shares).
	Hits int64 `json:"hits"`
	// Evictions counts entries dropped by LRU eviction.
	Evictions int64 `json:"evictions"`
	// Entries is the current cache population (<= the configured cap).
	Entries int `json:"entries"`
}

// CacheStats returns a consistent snapshot of the cache counters. The
// counters are monotonic for the engine's lifetime, so two snapshots
// bracket the work in between: equal Builds means every point in the
// interval reused a cached structure.
func (en *Engine) CacheStats() CacheStats {
	en.mu.Lock()
	entries := len(en.cache)
	en.mu.Unlock()
	return CacheStats{
		Builds:    en.builds.Load(),
		Hits:      en.hits.Load(),
		Evictions: en.evictions.Load(),
		Entries:   entries,
	}
}

// structure returns the cached (or freshly built) structural halves for
// the configuration, promoting the entry to most-recently-used and evicting
// beyond the cap. An in-flight entry that gets evicted finishes building
// for the goroutines already holding it; it is simply no longer shared.
func (en *Engine) structure(cfg extract.Config) (*cacheEntry, error) {
	key := cfg.StructuralKey()
	en.mu.Lock()
	e, ok := en.cache[key]
	if ok {
		en.hits.Add(1)
		en.order.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{key: key}
		e.elem = en.order.PushFront(e)
		en.cache[key] = e
		for en.max > 0 && len(en.cache) > en.max {
			back := en.order.Back()
			old := back.Value.(*cacheEntry)
			en.order.Remove(back)
			delete(en.cache, old.key)
			en.evictions.Add(1)
		}
	}
	en.mu.Unlock()
	e.once.Do(func() {
		en.builds.Add(1)
		e.exp, e.err = extract.Build(cfg)
		if e.err == nil {
			e.st, e.err = dem.BuildStructure(e.exp)
		}
	})
	return e, e.err
}

// workerSeed derives a 32-byte ChaCha8 seed for one worker stream. Hashing
// (seed, worker) keeps streams independent for every worker count, unlike
// the additive seed+w*constant scheme it replaces, which made streams of
// nearby seeds collide across points.
func workerSeed(seed int64, w int) [32]byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(w))
	return sha256.Sum256(buf[:])
}

// normalize validates the point configuration and fills decoder defaults.
func (cfg *Config) normalize() error {
	if cfg.Trials <= 0 {
		return fmt.Errorf("montecarlo: trials must be positive")
	}
	if cfg.Decoder == "" {
		cfg.Decoder = UF
	}
	if _, err := decoder.ParseKind(string(cfg.Decoder)); err != nil {
		return fmt.Errorf("montecarlo: %w", err)
	}
	return cfg.normalizeRare()
}

// prepare resolves one point to its reweighted model and weighted decoding
// graph, going through the structure cache. st, when non-nil, donates its
// reusable noise-probability buffer and Model backing (RunOn's per-worker
// reuse); the results are stored back on st.
func (en *Engine) prepare(cfg Config, st *WorkerState) (*dem.Model, *dem.Graph, error) {
	entry, err := en.structure(cfg.extractConfig())
	if err != nil {
		return nil, nil, err
	}
	var probs []float64
	var recycle *dem.Model
	if st != nil {
		probs = st.probs
		recycle = st.model
	}
	var model *dem.Model
	if p2, perr := entry.exp.NoiseProbs(cfg.Params, probs[:0]); perr == nil {
		probs = p2
		if st != nil {
			st.probs = probs
		}
		model, err = entry.st.ReweightInto(probs, recycle)
		if err != nil {
			return nil, nil, err
		}
		if st != nil {
			st.model = model
		}
	} else {
		// The cached structure cannot serve these parameters — typically a
		// noise class that was zero when the entry was built (absent from
		// its fault set in a way the structural key cannot always see, e.g.
		// idle error underflowing to zero under extreme coherence times).
		// Build a dedicated, uncached model so the run still succeeds;
		// repeated runs in this regime pay a rebuild each time.
		exp, berr := extract.Build(cfg.extractConfig())
		if berr != nil {
			return nil, nil, berr
		}
		en.builds.Add(1)
		model, err = dem.Build(exp)
		if err != nil {
			return nil, nil, err
		}
	}
	graph, err := model.DecodingGraph()
	if err != nil {
		return nil, nil, err
	}
	return model, graph, nil
}

// WorkerState is reusable per-worker scratch for point execution: the
// noise-probability buffer, the batch decode buffers, and rebindable
// sampler/decoder state. A sweep scheduler threads one WorkerState through
// the consecutive cells a pool worker executes, so cells sharing a
// structure reuse the sampler tables and union-find arrays instead of
// reallocating them per noise scale. The zero value is ready to use; a
// WorkerState must not be shared between concurrent calls.
type WorkerState struct {
	probs []float64
	model *dem.Model
	batch decoder.Batch
	bs    *dem.BatchSampler
	uf    *decoder.UnionFind
	bl    *decoder.Blossom
	pipe  *decoder.Pipeline
	shots dem.ShotSet
	// Rare-event siblings of probs/model/bs: the boosted proposal column,
	// its folded model, and the weighted sampler over the pair.
	wprobs []float64
	wmodel *dem.Model
	wsamp  *dem.WeightedBatchSampler
}

// sampler returns a batch sampler over model, reusing the worker's buffers.
func (st *WorkerState) sampler(model *dem.Model) *dem.BatchSampler {
	if st.bs == nil {
		st.bs = model.NewBatchSampler()
	} else {
		st.bs.Reset(model)
	}
	return st.bs
}

// decoderFor returns the shot decoder for one cell, reusing the worker's
// union-find or blossom state when the graph shape allows (the same hoisted
// topology at a different noise scale rebinds in place). The fallback
// pointer is non-nil only for the fallback-wrapped matching kinds, for
// reading the fallback count afterwards.
func (st *WorkerState) decoderFor(kind DecoderKind, graph *dem.Graph) (decoder.BatchDecoder, *decoder.Fallback) {
	switch kind {
	case MWPM:
		fb := decoder.NewMWPMFallback(graph)
		return fb, fb
	case Exact:
		fb := decoder.NewExactFallback(graph)
		return fb, fb
	case Blossom:
		if st.bl == nil || !st.bl.Rebind(graph) {
			st.bl = decoder.NewBlossom(graph)
		}
		return st.bl, nil
	}
	if st.uf == nil || !st.uf.Rebind(graph) {
		st.uf = decoder.NewUnionFind(graph)
	}
	return st.uf, nil
}

// pipeline returns the worker's dedup pipeline rebound over inner, creating
// it on first use. The epoch-stamped dedup table and batch buffers survive
// across cells exactly like the sampler tables do.
func (st *WorkerState) pipeline(inner decoder.BatchDecoder) *decoder.Pipeline {
	if st.pipe == nil {
		st.pipe = decoder.NewPipeline(inner)
	} else {
		st.pipe.Rebind(inner)
	}
	return st.pipe
}

type tally struct {
	trials, failures, fallbacks int
	skipped, dedupHits          int
	stats                       decoder.DecoderStats
	weighted                    WeightedResult
}

// runWorker executes worker w's share of one point: sample 64-shot batches
// from the worker's ChaCha8 stream, decode them, and tally failures. budget
// coordinates early stopping across the point's workers (or shards) when
// cfg.TargetFailures > 0, and its abort flag stops the loop at the next
// batch boundary.
//
// With the pipeline enabled (the default), each batch is pruned before the
// matcher sees it: the word-level EventMask classifies zero-defect shots —
// their minimum-weight correction is empty, so bit s of ObsWord alone
// decides failure, at popcount cost — and the surviving shots are extracted
// in one CSR pass and deduplicated by full syndrome, decoding each distinct
// syndrome once. The per-shot predictions are bit-identical to the unpruned
// path, so trial and failure counts cannot depend on the switch.
func runWorker(model *dem.Model, graph *dem.Graph, cfg Config, w, trials int, budget *ShardBudget, st *WorkerState) (tally, error) {
	var t tally
	target := int64(cfg.TargetFailures)
	rng := rand.New(rand.NewChaCha8(workerSeed(cfg.Seed, w)))
	bs := st.sampler(model)
	dec, fb := st.decoderFor(cfg.Decoder, graph)
	// Decoder stage counters are cumulative for the decoder's lifetime
	// (WorkerState reuses matchers across cells), so bracket this run with
	// two snapshots — the same pattern the dedup counter uses below.
	statsSrc, _ := dec.(decoder.StatsSource)
	var statsBase decoder.DecoderStats
	if statsSrc != nil {
		statsBase = statsSrc.DecoderStats()
	}
	var pipe *decoder.Pipeline
	if !cfg.DisablePipeline {
		pipe = st.pipeline(dec)
	}
	var out, truth [dem.BatchShots]bool
	for t.trials < trials {
		if budget.aborted.Load() {
			break
		}
		if target > 0 && budget.failures.Load() >= target {
			break
		}
		n := min(dem.BatchShots, trials-t.trials)
		bs.SampleN(rng, n)
		fails := 0
		if pipe != nil {
			full := ^uint64(0)
			if n < dem.BatchShots {
				full = 1<<uint(n) - 1
			}
			mask := bs.EventMask()
			obsW := bs.ObsWord()
			// Zero-defect fast path: empty syndrome => empty correction =>
			// prediction false; the shot fails iff the error flipped the
			// observable anyway.
			zero := full &^ mask
			t.skipped += bits.OnesCount64(zero)
			fails += bits.OnesCount64(obsW & zero)
			bs.Extract(mask, &st.shots)
			st.batch.Reset()
			for i := 0; i < st.shots.Len(); i++ {
				st.batch.Add(st.shots.Shot(i))
			}
			before := pipe.Stats().DedupHits
			if err := pipe.DecodeBatch(&st.batch, out[:st.shots.Len()]); err != nil {
				return t, err
			}
			t.dedupHits += int(pipe.Stats().DedupHits - before)
			for i := 0; i < st.shots.Len(); i++ {
				if out[i] != (obsW&(1<<uint(st.shots.Index(i))) != 0) {
					fails++
				}
			}
		} else {
			st.batch.Reset()
			for s := 0; s < n; s++ {
				events, obs := bs.Shot(s)
				st.batch.Add(events)
				truth[s] = obs
			}
			if err := dec.DecodeBatch(&st.batch, out[:n]); err != nil {
				return t, err
			}
			for s := 0; s < n; s++ {
				if out[s] != truth[s] {
					fails++
				}
			}
		}
		t.trials += n
		t.failures += fails
		if target > 0 && fails > 0 {
			budget.failures.Add(int64(fails))
		}
	}
	if fb != nil {
		t.fallbacks = int(fb.Fallbacks)
	}
	if statsSrc != nil {
		t.stats = statsSrc.DecoderStats().Sub(statsBase)
	}
	return t, nil
}

// Run executes one Monte-Carlo point on the engine, splitting the trials
// over cfg.Workers goroutines with independent ChaCha8 streams.
func (en *Engine) Run(cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	model, prop, graph, err := en.prepareModels(cfg, nil)
	if err != nil {
		return Result{}, err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	tallies := make([]tally, workers)
	errs := make([]error, workers)
	var budget ShardBudget // early-stop coordination only

	var wg sync.WaitGroup
	// The worker split IS the shard split: sharing ShardTrials is what
	// makes a fully merged shard plan bit-identical to Run with
	// Workers == Shards (worker w and shard w take the same allotment
	// from the same stream).
	plan := ShardPlan{Shards: workers, Trials: cfg.Trials}
	for w := 0; w < workers; w++ {
		trials := plan.ShardTrials(w)
		wg.Add(1)
		go func(w, trials int) {
			defer wg.Done()
			var st WorkerState
			tallies[w], errs[w] = runAnyWorker(model, prop, graph, cfg, w, trials, &budget, &st)
		}(w, trials)
	}
	wg.Wait()

	res := Result{
		Config:        cfg,
		Mechanisms:    model.Stats.Mechanisms,
		DetectorCount: model.NumDets,
	}
	for w, t := range tallies {
		if errs[w] != nil {
			return Result{}, errs[w]
		}
		res.Trials += t.trials
		res.Failures += t.failures
		res.Fallbacks += t.fallbacks
		res.Skipped += t.skipped
		res.DedupHits += t.dedupHits
		res.Stats.Add(t.stats)
		res.Weighted.Add(t.weighted)
	}
	return res, nil
}

// RunOn executes one Monte-Carlo point single-threaded on the calling
// goroutine as worker 0, reusing st's buffers across calls — the per-worker
// entry point of the sweep scheduler. cfg.Workers is ignored, so the result
// is bit-identical to Run with Workers == 1 and independent of any pool
// width the caller schedules cells under. st may be nil for one-shot use.
func (en *Engine) RunOn(cfg Config, st *WorkerState) (Result, error) {
	if st == nil {
		st = &WorkerState{}
	}
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	model, prop, graph, err := en.prepareModels(cfg, st)
	if err != nil {
		return Result{}, err
	}
	var budget ShardBudget
	t, err := runAnyWorker(model, prop, graph, cfg, 0, cfg.Trials, &budget, st)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Config:        cfg,
		Trials:        t.trials,
		Failures:      t.failures,
		Fallbacks:     t.fallbacks,
		Skipped:       t.skipped,
		DedupHits:     t.dedupHits,
		Stats:         t.stats,
		Mechanisms:    model.Stats.Mechanisms,
		DetectorCount: model.NumDets,
		Weighted:      t.weighted,
	}, nil
}

// Run executes one Monte-Carlo point on the shared default engine.
func Run(cfg Config) (Result, error) { return defaultEngine.Run(cfg) }

// RunReference executes one Monte-Carlo point on the pre-batching scalar
// engine: a fresh experiment and detector-model build per call, one RNG
// draw per mechanism per shot, and per-shot decoding with the ad-hoc MWPM
// fallback loop. Retained as the benchmark baseline (BenchmarkSweepRow) and
// as the statistical reference for engine-equivalence tests.
func RunReference(cfg Config) (Result, error) {
	if cfg.Trials <= 0 {
		return Result{}, fmt.Errorf("montecarlo: trials must be positive")
	}
	if cfg.RareEvent {
		return Result{}, fmt.Errorf("montecarlo: RunReference is the brute-force baseline; rare-event mode is not supported")
	}
	if cfg.Decoder == "" {
		cfg.Decoder = UF
	}
	if _, err := decoder.ParseKind(string(cfg.Decoder)); err != nil {
		return Result{}, fmt.Errorf("montecarlo: %w", err)
	}
	exp, err := extract.Build(cfg.extractConfig())
	if err != nil {
		return Result{}, err
	}
	model, err := dem.Build(exp)
	if err != nil {
		return Result{}, err
	}
	graph, err := model.DecodingGraph()
	if err != nil {
		return Result{}, err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	type tally struct {
		failures, fallbacks int
		err                 error
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	per := cfg.Trials / workers
	extra := cfg.Trials % workers
	for w := 0; w < workers; w++ {
		trials := per
		if w < extra {
			trials++
		}
		wg.Add(1)
		go func(w, trials int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(w)*1_000_003))
			sampler := model.NewSampler()
			// Decoder selection goes through the same helper as the batched
			// engine — one switch, so a new Kind cannot diverge between the
			// two paths. The fallback wrapper reproduces the old ad-hoc
			// primary-error -> union-find loop, count included.
			var st WorkerState
			dec, fb := st.decoderFor(cfg.Decoder, graph)
			for n := 0; n < trials; n++ {
				events, truth := sampler.Sample(rng)
				pred, derr := dec.Decode(events)
				if derr != nil {
					tallies[w].err = derr
					return
				}
				if pred != truth {
					tallies[w].failures++
				}
			}
			if fb != nil {
				tallies[w].fallbacks = int(fb.Fallbacks)
			}
		}(w, trials)
	}
	wg.Wait()

	res := Result{
		Config:        cfg,
		Trials:        cfg.Trials,
		Mechanisms:    model.Stats.Mechanisms,
		DetectorCount: model.NumDets,
	}
	for _, t := range tallies {
		if t.err != nil {
			return Result{}, t.err
		}
		res.Failures += t.failures
		res.Fallbacks += t.fallbacks
	}
	return res, nil
}

// SweepPoint is one (distance, physical rate) cell of a threshold sweep.
type SweepPoint struct {
	Distance int
	Phys     float64
	Result   Result
}

// SweepOptions tunes a threshold sweep beyond the required grid.
type SweepOptions struct {
	// TargetFailures enables early stopping per cell (see Config).
	TargetFailures int
	// DisablePipeline turns off the batch decode pipeline per cell (see
	// Config); the zero value keeps it on.
	DisablePipeline bool
	// RareEvent switches every cell to importance-sampled estimation with
	// proposal inflation Boost and optional TargetRelErr early stop (see
	// Config).
	RareEvent    bool
	Boost        float64
	TargetRelErr float64
}

// ThresholdCellConfig is the canonical configuration of one Fig. 11 grid
// cell — the single definition shared by the sequential ThresholdSweep and
// the scheduler's job builder, so the two paths cannot drift apart. The
// physical rate parameterizes all gate error sources through
// Params.ScaledGatesTo; coherence times stay at their Table I values.
func ThresholdCellConfig(scheme extract.Scheme, d int, phys float64, base hardware.Params, trials int, seed int64, dec DecoderKind, opts SweepOptions) Config {
	return Config{
		Scheme:          scheme,
		Distance:        d,
		Basis:           extract.BasisZ,
		Params:          base.ScaledGatesTo(phys),
		Trials:          trials,
		Seed:            seed + int64(d)*7919 + int64(phys*1e9),
		Decoder:         dec,
		TargetFailures:  opts.TargetFailures,
		DisablePipeline: opts.DisablePipeline,
		RareEvent:       opts.RareEvent,
		Boost:           opts.Boost,
		TargetRelErr:    opts.TargetRelErr,
	}
}

// ThresholdSweep runs the Fig. 11 experiment for one scheme: logical error
// rate over a grid of physical error rates and code distances, cell by
// cell (see internal/sched for the pooled path). Each distance's
// experiment and model structure are built once and reused across the
// whole physical-rate row.
func (en *Engine) ThresholdSweep(scheme extract.Scheme, distances []int, physRates []float64, base hardware.Params, trials int, seed int64, dec DecoderKind, opts SweepOptions) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, d := range distances {
		for _, p := range physRates {
			res, err := en.Run(ThresholdCellConfig(scheme, d, p, base, trials, seed, dec, opts))
			if err != nil {
				return nil, fmt.Errorf("sweep %v d=%d p=%g: %w", scheme, d, p, err)
			}
			out = append(out, SweepPoint{Distance: d, Phys: p, Result: res})
		}
	}
	return out, nil
}

// ThresholdSweep runs a Fig. 11 grid on the shared default engine.
func ThresholdSweep(scheme extract.Scheme, distances []int, physRates []float64, base hardware.Params, trials int, seed int64, dec DecoderKind) ([]SweepPoint, error) {
	return defaultEngine.ThresholdSweep(scheme, distances, physRates, base, trials, seed, dec, SweepOptions{})
}

// EstimateThreshold finds the crossing point of the logical-error curves for
// consecutive distances: below threshold larger d gives lower logical error,
// above it gives higher. It interpolates each sign change of
// rate(d2)-rate(d1) in log-p and averages the crossings. Returns 0 if no
// crossing is bracketed by the sweep.
func EstimateThreshold(points []SweepPoint) float64 {
	byDist := map[int]map[float64]float64{}
	var dists []int
	var rates []float64
	seenD := map[int]bool{}
	seenP := map[float64]bool{}
	for _, pt := range points {
		if byDist[pt.Distance] == nil {
			byDist[pt.Distance] = map[float64]float64{}
		}
		byDist[pt.Distance][pt.Phys] = pt.Result.Rate()
		if !seenD[pt.Distance] {
			seenD[pt.Distance] = true
			dists = append(dists, pt.Distance)
		}
		if !seenP[pt.Phys] {
			seenP[pt.Phys] = true
			rates = append(rates, pt.Phys)
		}
	}
	slices.Sort(dists)
	slices.Sort(rates)

	var crossings []float64
	for di := 0; di+1 < len(dists); di++ {
		d1, d2 := dists[di], dists[di+1]
		for pi := 0; pi+1 < len(rates); pi++ {
			pa, pb := rates[pi], rates[pi+1]
			ga := byDist[d2][pa] - byDist[d1][pa]
			gb := byDist[d2][pb] - byDist[d1][pb]
			if ga == 0 && gb == 0 {
				continue
			}
			if ga <= 0 && gb > 0 {
				// Linear interpolation of the gap in log p.
				f := 0.5
				if gb != ga {
					f = -ga / (gb - ga)
				}
				crossings = append(crossings, math.Exp(math.Log(pa)+f*(math.Log(pb)-math.Log(pa))))
			}
		}
	}
	if len(crossings) == 0 {
		return 0
	}
	s := 0.0
	for _, c := range crossings {
		s += c
	}
	return s / float64(len(crossings))
}

// DefaultPhysRates returns a log-spaced grid of physical error rates
// bracketing the paper's thresholds (~0.008-0.009).
func DefaultPhysRates(n int) []float64 {
	if n < 2 {
		n = 2
	}
	lo, hi := math.Log(2e-3), math.Log(2e-2)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(lo + (hi-lo)*float64(i)/float64(n-1))
	}
	return out
}
