// Package montecarlo estimates logical error rates by sampling detector
// error models and decoding each shot, reproducing the paper's §V threshold
// experiments (Fig. 11) and §VI sensitivity studies (Fig. 12).
//
// Each trial is one round of the experiment defined by internal/extract:
// sample the detector error model, decode the fired detectors, and compare
// the decoder's observable prediction with the sampled truth. The logical
// error rate is failures/trials, with a binomial standard error.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/decoder"
	"repro/internal/dem"
	"repro/internal/extract"
	"repro/internal/hardware"
)

// DecoderKind selects the decoder used for trials.
type DecoderKind string

// Available decoders. UF is the workhorse; MWPM is exact matching with a
// transparent fallback to union-find on oversized event clusters.
const (
	UF   DecoderKind = "uf"
	MWPM DecoderKind = "mwpm"
)

// Config describes one Monte-Carlo point.
type Config struct {
	Scheme   extract.Scheme
	Distance int
	Rounds   int // 0 => Distance
	Basis    extract.Basis
	Params   hardware.Params
	Trials   int
	Seed     int64
	Workers  int // 0 => GOMAXPROCS
	Decoder  DecoderKind
	// ChargeGapIdle forwards to extract.Config: include the cavity
	// serialization gaps as storage noise (Fig. 12 mode).
	ChargeGapIdle bool
}

// Result is the outcome of one Monte-Carlo point.
type Result struct {
	Config    Config
	Trials    int
	Failures  int
	Fallbacks int // MWPM trials that fell back to union-find
	// Mechanisms and DetectorCount describe the underlying model.
	Mechanisms    int
	DetectorCount int
}

// Rate returns the logical error rate.
func (r Result) Rate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Trials)
}

// StdErr returns the binomial standard error of the rate.
func (r Result) StdErr() float64 {
	if r.Trials == 0 {
		return 0
	}
	p := r.Rate()
	return math.Sqrt(p * (1 - p) / float64(r.Trials))
}

// Run executes one Monte-Carlo point.
func Run(cfg Config) (Result, error) {
	if cfg.Trials <= 0 {
		return Result{}, fmt.Errorf("montecarlo: trials must be positive")
	}
	if cfg.Decoder == "" {
		cfg.Decoder = UF
	}
	exp, err := extract.Build(extract.Config{
		Scheme: cfg.Scheme, Distance: cfg.Distance, Rounds: cfg.Rounds,
		Basis: cfg.Basis, Params: cfg.Params,
		ChargeGapIdle: cfg.ChargeGapIdle,
	})
	if err != nil {
		return Result{}, err
	}
	model, err := dem.Build(exp)
	if err != nil {
		return Result{}, err
	}
	graph, err := model.DecodingGraph()
	if err != nil {
		return Result{}, err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	type tally struct {
		failures, fallbacks int
		err                 error
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	per := cfg.Trials / workers
	extra := cfg.Trials % workers
	for w := 0; w < workers; w++ {
		trials := per
		if w < extra {
			trials++
		}
		wg.Add(1)
		go func(w, trials int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*1_000_003))
			sampler := model.NewSampler()
			uf := decoder.NewUnionFind(graph)
			var mw *decoder.MWPM
			if cfg.Decoder == MWPM {
				mw = decoder.NewMWPM(graph)
			}
			for n := 0; n < trials; n++ {
				events, truth := sampler.Sample(rng)
				var pred bool
				var derr error
				if mw != nil {
					pred, derr = mw.Decode(events)
					if derr != nil {
						tallies[w].fallbacks++
						pred, derr = uf.Decode(events)
					}
				} else {
					pred, derr = uf.Decode(events)
				}
				if derr != nil {
					tallies[w].err = derr
					return
				}
				if pred != truth {
					tallies[w].failures++
				}
			}
		}(w, trials)
	}
	wg.Wait()

	res := Result{
		Config:        cfg,
		Trials:        cfg.Trials,
		Mechanisms:    model.Stats.Mechanisms,
		DetectorCount: model.NumDets,
	}
	for _, t := range tallies {
		if t.err != nil {
			return Result{}, t.err
		}
		res.Failures += t.failures
		res.Fallbacks += t.fallbacks
	}
	return res, nil
}

// SweepPoint is one (distance, physical rate) cell of a threshold sweep.
type SweepPoint struct {
	Distance int
	Phys     float64
	Result   Result
}

// ThresholdSweep runs the Fig. 11 experiment for one scheme: logical error
// rate over a grid of physical error rates and code distances. The physical
// rate parameterizes all gate error sources through Params.ScaledGatesTo;
// coherence times stay at their Table I values (see that method's comment).
func ThresholdSweep(scheme extract.Scheme, distances []int, physRates []float64, base hardware.Params, trials int, seed int64, dec DecoderKind) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, d := range distances {
		for _, p := range physRates {
			res, err := Run(Config{
				Scheme:   scheme,
				Distance: d,
				Basis:    extract.BasisZ,
				Params:   base.ScaledGatesTo(p),
				Trials:   trials,
				Seed:     seed + int64(d)*7919 + int64(p*1e9),
				Decoder:  dec,
			})
			if err != nil {
				return nil, fmt.Errorf("sweep %v d=%d p=%g: %w", scheme, d, p, err)
			}
			out = append(out, SweepPoint{Distance: d, Phys: p, Result: res})
		}
	}
	return out, nil
}

// EstimateThreshold finds the crossing point of the logical-error curves for
// consecutive distances: below threshold larger d gives lower logical error,
// above it gives higher. It interpolates each sign change of
// rate(d2)-rate(d1) in log-p and averages the crossings. Returns 0 if no
// crossing is bracketed by the sweep.
func EstimateThreshold(points []SweepPoint) float64 {
	byDist := map[int]map[float64]float64{}
	var dists []int
	var rates []float64
	seenD := map[int]bool{}
	seenP := map[float64]bool{}
	for _, pt := range points {
		if byDist[pt.Distance] == nil {
			byDist[pt.Distance] = map[float64]float64{}
		}
		byDist[pt.Distance][pt.Phys] = pt.Result.Rate()
		if !seenD[pt.Distance] {
			seenD[pt.Distance] = true
			dists = append(dists, pt.Distance)
		}
		if !seenP[pt.Phys] {
			seenP[pt.Phys] = true
			rates = append(rates, pt.Phys)
		}
	}
	sortInts(dists)
	sortFloats(rates)

	var crossings []float64
	for di := 0; di+1 < len(dists); di++ {
		d1, d2 := dists[di], dists[di+1]
		for pi := 0; pi+1 < len(rates); pi++ {
			pa, pb := rates[pi], rates[pi+1]
			ga := byDist[d2][pa] - byDist[d1][pa]
			gb := byDist[d2][pb] - byDist[d1][pb]
			if ga == 0 && gb == 0 {
				continue
			}
			if ga <= 0 && gb > 0 {
				// Linear interpolation of the gap in log p.
				f := 0.5
				if gb != ga {
					f = -ga / (gb - ga)
				}
				crossings = append(crossings, math.Exp(math.Log(pa)+f*(math.Log(pb)-math.Log(pa))))
			}
		}
	}
	if len(crossings) == 0 {
		return 0
	}
	s := 0.0
	for _, c := range crossings {
		s += c
	}
	return s / float64(len(crossings))
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// DefaultPhysRates returns a log-spaced grid of physical error rates
// bracketing the paper's thresholds (~0.008-0.009).
func DefaultPhysRates(n int) []float64 {
	if n < 2 {
		n = 2
	}
	lo, hi := math.Log(2e-3), math.Log(2e-2)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(lo + (hi-lo)*float64(i)/float64(n-1))
	}
	return out
}
