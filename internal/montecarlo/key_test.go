package montecarlo

import (
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

func keyBaseConfig() Config {
	return ThresholdCellConfig(extract.Baseline, 3, 0.008, hardware.Default(),
		300, 7, UF, SweepOptions{})
}

// Equal configs share a key; the pool width never enters it (results are
// bit-identical at any width, the invariant the ledger relies on).
func TestCellKeyIdentity(t *testing.T) {
	a, b := keyBaseConfig(), keyBaseConfig()
	if a.CellKey() != b.CellKey() {
		t.Fatalf("identical configs produced distinct keys:\n%s\n%s", a.CellKey(), b.CellKey())
	}
	b.Workers = 8
	if a.CellKey() != b.CellKey() {
		t.Errorf("Workers changed the key; it must not (results are width-invariant)")
	}
}

// Every result-affecting field must move the key.
func TestCellKeyDiscriminates(t *testing.T) {
	base := keyBaseConfig()
	mutations := map[string]func(*Config){
		"scheme":          func(c *Config) { c.Scheme = extract.CompactInterleaved },
		"distance":        func(c *Config) { c.Distance = 5 },
		"rounds":          func(c *Config) { c.Rounds = 7 },
		"basis":           func(c *Config) { c.Basis = extract.BasisX },
		"trials":          func(c *Config) { c.Trials = 301 },
		"seed":            func(c *Config) { c.Seed = 8 },
		"decoder":         func(c *Config) { c.Decoder = Blossom },
		"chargegap":       func(c *Config) { c.ChargeGapIdle = true },
		"target_failures": func(c *Config) { c.TargetFailures = 50 },
		"rare":            func(c *Config) { c.RareEvent = true },
		"pipeline":        func(c *Config) { c.DisablePipeline = true },
		"hw_pgate2":       func(c *Config) { c.Params.PGate2 *= 1.0000001 },
		"hw_t1cavity":     func(c *Config) { c.Params.T1Cavity *= 2 },
		"hw_cavity_depth": func(c *Config) { c.Params.CavityDepth = 12 },
	}
	seen := map[string]string{base.CellKey(): "base"}
	for name, mutate := range mutations {
		cfg := keyBaseConfig()
		mutate(&cfg)
		k := cfg.CellKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q produced the same key as %q", name, prev)
		}
		seen[k] = name
	}
}

// Spelled-out defaults normalize to the omitted form: Rounds 0 means
// Distance, and a rare-event Boost of 0 means DefaultBoost.
func TestCellKeyNormalizesDefaults(t *testing.T) {
	a := keyBaseConfig()
	b := keyBaseConfig()
	b.Rounds = b.Distance
	if a.CellKey() != b.CellKey() {
		t.Errorf("Rounds=0 and Rounds=Distance produced distinct keys")
	}

	ra, rb := keyBaseConfig(), keyBaseConfig()
	ra.RareEvent, rb.RareEvent = true, true
	ra.Boost, rb.Boost = 0, DefaultBoost
	if ra.CellKey() != rb.CellKey() {
		t.Errorf("Boost=0 and Boost=DefaultBoost produced distinct rare-event keys")
	}
	// Outside rare-event mode Boost is inert and must not split keys.
	na, nb := keyBaseConfig(), keyBaseConfig()
	nb.Boost = 0 // both zero; the field only exists under RareEvent
	if na.CellKey() != nb.CellKey() {
		t.Errorf("non-rare configs with zero boost diverged")
	}
}
