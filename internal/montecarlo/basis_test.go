package montecarlo

import (
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// The memory-X experiment is the mirror image of memory-Z; both must produce
// plausible, comparable logical error rates for every scheme.
func TestBothBasesRun(t *testing.T) {
	for _, scheme := range extract.Schemes {
		var rates [2]float64
		for i, basis := range []extract.Basis{extract.BasisZ, extract.BasisX} {
			res, err := Run(Config{
				Scheme:   scheme,
				Distance: 3,
				Basis:    basis,
				Params:   hardware.Default().ScaledGatesTo(4e-3),
				Trials:   2000,
				Seed:     31,
			})
			if err != nil {
				t.Fatalf("%v basis %v: %v", scheme, basis, err)
			}
			rates[i] = res.Rate()
			if res.Rate() <= 0 || res.Rate() > 0.45 {
				t.Errorf("%v basis %v: implausible rate %.4f", scheme, basis, res.Rate())
			}
		}
		// The two bases see different hook orientations but the same error
		// budget: rates must be within a small factor of each other.
		lo, hi := rates[0], rates[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 4*lo+0.02 {
			t.Errorf("%v: basis asymmetry too large: Z=%.4f X=%.4f", scheme, rates[0], rates[1])
		}
	}
}

// MWPM trials on small distances should outperform (or at least match)
// union-find — the decoder-quality direction must be right.
func TestMWPMBeatsUFOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	cfg := Config{
		Scheme:   extract.Baseline,
		Distance: 3,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledGatesTo(5e-3),
		Trials:   20000,
		Seed:     71,
	}
	cfg.Decoder = UF
	uf, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Decoder = MWPM
	mw, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Allow statistical slack, but MWPM must not be significantly worse.
	if mw.Rate() > uf.Rate()*1.1+0.01 {
		t.Errorf("MWPM rate %.4f worse than UF %.4f", mw.Rate(), uf.Rate())
	}
	t.Logf("UF %.4f vs MWPM %.4f (fallbacks %d)", uf.Rate(), mw.Rate(), mw.Fallbacks)
}

// Gap charging must hurt: the same configuration with cavity-residency idle
// charged can only have a higher (or equal) logical error rate.
func TestGapChargingMonotone(t *testing.T) {
	base := Config{
		Scheme:   extract.NaturalInterleaved,
		Distance: 3,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledGatesTo(2e-3),
		Trials:   8000,
		Seed:     41,
	}
	off, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.ChargeGapIdle = true
	on, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if on.Rate()+0.01 < off.Rate() {
		t.Errorf("charging gap idle lowered the rate: %.4f -> %.4f", off.Rate(), on.Rate())
	}
}
