package montecarlo

import (
	"math"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// One structure build must serve every physical rate of a sweep row; only a
// new distance (or other structural change) may add builds.
func TestSweepReusesStructures(t *testing.T) {
	en := NewEngine()
	rates := []float64{2e-3, 4e-3, 8e-3, 1.6e-2}
	if _, err := en.ThresholdSweep(extract.Baseline, []int{3}, rates, hardware.Default(), 200, 1, UF, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := en.StructureBuilds(); got != 1 {
		t.Errorf("one distance x %d rates built %d structures, want 1", len(rates), got)
	}
	if _, err := en.ThresholdSweep(extract.Baseline, []int{3, 5}, rates, hardware.Default(), 200, 1, UF, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := en.StructureBuilds(); got != 2 {
		t.Errorf("adding distance 5 should add exactly one build, have %d total", got)
	}
}

// Sensitivity panels that only move probabilities or coherence times share
// one structure per distance; duration-moving panels rebuild per value.
func TestSensitivityStructureReuse(t *testing.T) {
	en := NewEngine()
	if _, err := en.SensitivitySweep(PanelCavityT1, []float64{1e-4, 1e-3, 1e-2}, []int{3}, 100, 1, UF, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := en.StructureBuilds(); got != 1 {
		t.Errorf("cavity-T1 panel built %d structures, want 1", got)
	}
	en2 := NewEngine()
	if _, err := en2.SensitivitySweep(PanelLoadStoreDuration, []float64{1e-7, 1e-6}, []int{3}, 100, 1, UF, SweepOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := en2.StructureBuilds(); got != 2 {
		t.Errorf("load-store-duration panel built %d structures, want 2 (one per value)", got)
	}
}

// The batched engine and the scalar reference engine must agree on the
// logical error rate within combined statistical error.
func TestEngineMatchesReferenceStatistically(t *testing.T) {
	cfg := Config{
		Scheme:   extract.Baseline,
		Distance: 3,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledGatesTo(6e-3),
		Trials:   8000,
		Seed:     23,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trials != b.Trials {
		t.Fatalf("trial counts differ: %d vs %d", a.Trials, b.Trials)
	}
	diff := math.Abs(a.Rate() - b.Rate())
	sigma := a.StdErr() + b.StdErr()
	if diff > 3*sigma {
		t.Errorf("engine rate %.4f vs reference %.4f differ by more than 3 sigma (%.4f)", a.Rate(), b.Rate(), 3*sigma)
	}
	if a.Failures == 0 || b.Failures == 0 {
		t.Error("expected failures at p=6e-3, d=3")
	}
}

// Early stopping must cut the point short once the target failure count is
// reached, and never exceed the trial cap.
func TestEarlyStop(t *testing.T) {
	cfg := Config{
		Scheme:         extract.Baseline,
		Distance:       3,
		Basis:          extract.BasisZ,
		Params:         hardware.Default().ScaledGatesTo(1.8e-2), // well above threshold
		Trials:         200000,
		Seed:           3,
		TargetFailures: 20,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures < cfg.TargetFailures {
		t.Errorf("stopped with %d failures, target %d", res.Failures, cfg.TargetFailures)
	}
	if res.Trials >= cfg.Trials {
		t.Errorf("early stop did not trigger: %d trials", res.Trials)
	}
	if res.Rate() < 0.05 {
		t.Errorf("rate %.4f implausibly low above threshold", res.Rate())
	}
}

// Same config, same seed, fixed worker count: identical results.
func TestEngineDeterministic(t *testing.T) {
	cfg := Config{
		Scheme:   extract.CompactInterleaved,
		Distance: 3,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledGatesTo(5e-3),
		Trials:   2000,
		Seed:     17,
		Workers:  2,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh engine must agree too: the cache must not change results.
	b, err := NewEngine().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != b.Failures || a.Trials != b.Trials {
		t.Errorf("results differ across engines: %d/%d vs %d/%d failures/trials",
			a.Failures, a.Trials, b.Failures, b.Trials)
	}
}

// A run with a noise class zeroed must not poison the shared structure
// cache for later runs that raise it: the zero pattern is part of the
// structural key, so each pattern gets its own cache entry.
func TestZeroClassRunsDoNotPoisonCache(t *testing.T) {
	en := NewEngine()
	quiet := hardware.Default()
	quiet.PGate2 = 0
	base := Config{
		Scheme:   extract.Baseline,
		Distance: 3,
		Basis:    extract.BasisZ,
		Trials:   300,
		Seed:     9,
	}
	cfg := base
	cfg.Params = quiet
	if _, err := en.Run(cfg); err != nil {
		t.Fatalf("zero-PGate2 run: %v", err)
	}
	cfg = base
	cfg.Params = hardware.Default()
	if _, err := en.Run(cfg); err != nil {
		t.Fatalf("default run after zero-PGate2 run on the same engine: %v", err)
	}
	if got := en.StructureBuilds(); got != 2 {
		t.Errorf("distinct zero patterns should build distinct structures, built %d", got)
	}
}

// A cache entry whose idle noise underflowed to zero (extreme coherence
// times, same structural key as normal parameters) must not wedge the
// engine: later runs with normal parameters fall back to a dedicated build
// and still succeed.
func TestUnderflowedIdleRunsDoNotWedgeEngine(t *testing.T) {
	en := NewEngine()
	frozen := hardware.Default()
	frozen.T1Transmon, frozen.T1Cavity = 1e12, 1e12
	base := Config{
		Scheme:   extract.Baseline,
		Distance: 3,
		Basis:    extract.BasisZ,
		Trials:   300,
		Seed:     4,
	}
	cfg := base
	cfg.Params = frozen
	if _, err := en.Run(cfg); err != nil {
		t.Fatalf("frozen-idle run: %v", err)
	}
	cfg = base
	cfg.Params = hardware.Default()
	res, err := en.Run(cfg)
	if err != nil {
		t.Fatalf("normal run after frozen-idle run on the same engine: %v", err)
	}
	if res.Trials != 300 {
		t.Errorf("fallback run did %d trials", res.Trials)
	}
}

// Reusing one engine across both decoders and bases must keep working (the
// structure cache is keyed by basis and scheme, not by decoder).
func TestEngineMixedConfigs(t *testing.T) {
	en := NewEngine()
	for _, dec := range []DecoderKind{UF, Blossom, MWPM, Exact} {
		for _, basis := range []extract.Basis{extract.BasisZ, extract.BasisX} {
			res, err := en.Run(Config{
				Scheme:   extract.Baseline,
				Distance: 3,
				Basis:    basis,
				Params:   hardware.Default().ScaledGatesTo(5e-3),
				Trials:   400,
				Seed:     5,
				Decoder:  dec,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", dec, basis, err)
			}
			if res.Rate() > 0.4 {
				t.Errorf("%v/%v: implausible rate %.3f", dec, basis, res.Rate())
			}
		}
	}
	if got := en.StructureBuilds(); got != 2 {
		t.Errorf("two bases should need two structures, built %d", got)
	}
}
