package montecarlo

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// goldenCell is one pinned-seed sweep cell of the committed regression
// fixture testdata/golden_rates.json.
type goldenCell struct {
	Scheme   string  `json:"scheme"`
	Distance int     `json:"distance"`
	PhysRate float64 `json:"phys_rate"`
	Decoder  string  `json:"decoder"`
	Trials   int     `json:"trials"`
	Failures int     `json:"failures"`
}

const goldenPath = "testdata/golden_rates.json"

// goldenRow recomputes the fixture's Fig. 11 row: Compact-Interleaved,
// d in {3, 5, 7} over the default 6-point rate grid, decoded with both the
// union-find and blossom kinds, every cell via the single-threaded RunOn
// path (bit-identical at any pool width or GOMAXPROCS).
func goldenRow(t *testing.T) []goldenCell {
	t.Helper()
	const (
		trials = 250
		seed   = 17
	)
	en := NewEngine()
	var out []goldenCell
	for _, dec := range []DecoderKind{UF, Blossom} {
		var st WorkerState
		for _, d := range []int{3, 5, 7} {
			for _, p := range DefaultPhysRates(6) {
				cfg := ThresholdCellConfig(extract.CompactInterleaved, d, p, hardware.Default(), trials, seed, dec, SweepOptions{})
				res, err := en.RunOn(cfg, &st)
				if err != nil {
					t.Fatalf("golden cell d=%d p=%g dec=%s: %v", d, p, dec, err)
				}
				out = append(out, goldenCell{
					Scheme:   extract.CompactInterleaved.String(),
					Distance: d, PhysRate: p, Decoder: string(dec),
					Trials: res.Trials, Failures: res.Failures,
				})
			}
		}
	}
	return out
}

// TestGoldenRates recomputes the committed logical-error-rate fixture and
// diffs it cell by cell, so a decoder or decoding-graph change that shifts
// any pinned-seed result — however slightly — fails tier 1 instead of
// silently moving the paper's Fig. 11 numbers. The fixture is pinned on
// linux/amd64 (float sampling is deterministic per platform); regenerate
// with VLQ_UPDATE_GOLDEN=1 go test ./internal/montecarlo -run TestGoldenRates
// after an intentional change and review the diff.
func TestGoldenRates(t *testing.T) {
	got := goldenRow(t)
	if os.Getenv("VLQ_UPDATE_GOLDEN") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells to %s", len(got), goldenPath)
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with VLQ_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden fixture has %d cells, recomputation produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Scheme != g.Scheme || w.Distance != g.Distance || w.Decoder != g.Decoder ||
			math.Abs(w.PhysRate-g.PhysRate) > 1e-12*(1+w.PhysRate) {
			t.Fatalf("cell %d identity drifted: fixture %+v vs recomputed %+v", i, w, g)
		}
		if w.Trials != g.Trials || w.Failures != g.Failures {
			t.Errorf("cell %d (%s d=%d p=%.4g %s): fixture %d/%d failures/trials, recomputed %d/%d",
				i, w.Scheme, w.Distance, w.PhysRate, w.Decoder, w.Failures, w.Trials, g.Failures, g.Trials)
		}
	}
}
