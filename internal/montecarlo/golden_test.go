package montecarlo

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// goldenCell is one pinned-seed sweep cell of the committed regression
// fixture testdata/golden_rates.json.
type goldenCell struct {
	Scheme   string  `json:"scheme"`
	Distance int     `json:"distance"`
	PhysRate float64 `json:"phys_rate"`
	Decoder  string  `json:"decoder"`
	Trials   int     `json:"trials"`
	Failures int     `json:"failures"`
}

const goldenPath = "testdata/golden_rates.json"

// goldenTrials is the fixture's per-cell shot count. It sits below
// MinShardShots by design: sharding must never engage on the pinned cells,
// whatever threshold a caller passes.
const goldenTrials = 250

func loadGolden(t *testing.T) []goldenCell {
	t.Helper()
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with VLQ_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	return want
}

// goldenRow recomputes the fixture's Fig. 11 row: Compact-Interleaved,
// d in {3, 5, 7} over the default 6-point rate grid, decoded with both the
// union-find and blossom kinds, every cell via the single-threaded RunOn
// path (bit-identical at any pool width or GOMAXPROCS).
func goldenRow(t *testing.T) []goldenCell {
	t.Helper()
	const (
		trials = goldenTrials
		seed   = 17
	)
	en := NewEngine()
	var out []goldenCell
	for _, dec := range []DecoderKind{UF, Blossom} {
		var st WorkerState
		for _, d := range []int{3, 5, 7} {
			for _, p := range DefaultPhysRates(6) {
				cfg := ThresholdCellConfig(extract.CompactInterleaved, d, p, hardware.Default(), trials, seed, dec, SweepOptions{})
				res, err := en.RunOn(cfg, &st)
				if err != nil {
					t.Fatalf("golden cell d=%d p=%g dec=%s: %v", d, p, dec, err)
				}
				out = append(out, goldenCell{
					Scheme:   extract.CompactInterleaved.String(),
					Distance: d, PhysRate: p, Decoder: string(dec),
					Trials: res.Trials, Failures: res.Failures,
				})
			}
		}
	}
	return out
}

// TestGoldenRates recomputes the committed logical-error-rate fixture and
// diffs it cell by cell, so a decoder or decoding-graph change that shifts
// any pinned-seed result — however slightly — fails tier 1 instead of
// silently moving the paper's Fig. 11 numbers. The fixture is pinned on
// linux/amd64 (float sampling is deterministic per platform); regenerate
// with VLQ_UPDATE_GOLDEN=1 go test ./internal/montecarlo -run TestGoldenRates
// after an intentional change and review the diff.
func TestGoldenRates(t *testing.T) {
	got := goldenRow(t)
	if os.Getenv("VLQ_UPDATE_GOLDEN") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells to %s", len(got), goldenPath)
		return
	}
	want := loadGolden(t)
	if len(want) != len(got) {
		t.Fatalf("golden fixture has %d cells, recomputation produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Scheme != g.Scheme || w.Distance != g.Distance || w.Decoder != g.Decoder ||
			math.Abs(w.PhysRate-g.PhysRate) > 1e-12*(1+w.PhysRate) {
			t.Fatalf("cell %d identity drifted: fixture %+v vs recomputed %+v", i, w, g)
		}
		if w.Trials != g.Trials || w.Failures != g.Failures {
			t.Errorf("cell %d (%s d=%d p=%.4g %s): fixture %d/%d failures/trials, recomputed %d/%d",
				i, w.Scheme, w.Distance, w.PhysRate, w.Decoder, w.Failures, w.Trials, g.Failures, g.Trials)
		}
	}
}

// TestGoldenRatesSharded is the sharded leg of the golden harness: the row
// recomputed through the partial-run API (PlanShards + RunShardOn +
// MergeShards) with the most aggressive threshold a caller can request
// must pass the committed fixture unchanged. The cells run 250 trials,
// below the MinShardShots floor, so every plan must collapse to a single
// shard — if the floor ever drops below the fixture's shot count, or
// PlanShards stops honoring it, the pinned counts shift and this leg fails
// tier 1 instead of silently moving Fig. 11.
func TestGoldenRatesSharded(t *testing.T) {
	if goldenTrials >= MinShardShots {
		t.Fatalf("golden fixture runs %d-trial cells but MinShardShots is %d; the floor no longer protects the pinned rates",
			goldenTrials, MinShardShots)
	}
	want := loadGolden(t)
	const seed = 17
	en := NewEngine()
	i := 0
	for _, dec := range []DecoderKind{UF, Blossom} {
		var st WorkerState
		for _, d := range []int{3, 5, 7} {
			for _, p := range DefaultPhysRates(6) {
				cfg := ThresholdCellConfig(extract.CompactInterleaved, d, p, hardware.Default(), goldenTrials, seed, dec, SweepOptions{})
				plan := PlanShards(cfg.Trials, 1) // most aggressive request, clamped to the floor
				if plan.Shards != 1 {
					t.Fatalf("plan for %d trials split into %d shards below the floor", cfg.Trials, plan.Shards)
				}
				var budget ShardBudget
				sr, err := en.RunShardOn(cfg, plan, 0, &budget, &st)
				if err != nil {
					t.Fatalf("sharded golden cell d=%d p=%g dec=%s: %v", d, p, dec, err)
				}
				res, err := MergeShards(cfg, []ShardResult{sr})
				if err != nil {
					t.Fatal(err)
				}
				if i >= len(want) {
					t.Fatalf("fixture has %d cells, sharded recomputation produced more", len(want))
				}
				w := want[i]
				if w.Trials != res.Trials || w.Failures != res.Failures {
					t.Errorf("cell %d (d=%d p=%.4g %s): fixture %d/%d failures/trials, sharded leg %d/%d",
						i, d, p, dec, w.Failures, w.Trials, res.Failures, res.Trials)
				}
				i++
			}
		}
	}
	if i != len(want) {
		t.Fatalf("sharded leg covered %d cells, fixture has %d", i, len(want))
	}
}
