package montecarlo

import (
	"sync"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/hardware"
)

func shardTestConfig(trials int) Config {
	return Config{
		Scheme: extract.Baseline, Distance: 3, Basis: extract.BasisZ,
		Params: hardware.Default().ScaledGatesTo(8e-3), Trials: trials, Seed: 99,
	}
}

// PlanShards must be a pure function of (trials, shardShots) with the
// documented floor: thresholds at or below MinShardShots round up to it,
// a budget below twice the (effective) shard size never splits (floor
// division), and no shard is ever smaller than the effective shard size.
func TestPlanShardsFloorAndShape(t *testing.T) {
	cases := []struct {
		trials, shardShots, wantShards int
	}{
		{250, 0, 1},                    // sharding disabled
		{250, 1, 1},                    // threshold below floor, trials below floor
		{MinShardShots, 1, 1},          // exactly at the floor: no split
		{2*MinShardShots - 1, 1, 1},    // partial second chunk folds in
		{2 * MinShardShots, 1, 2},      // two full chunks split
		{4 * MinShardShots, 1, 4},      // clamped threshold divides evenly
		{10_000, 2 * MinShardShots, 4}, // explicit threshold above the floor
		{10_000, 100_000, 1},           // threshold above the budget
		{0, MinShardShots, 1},          // degenerate budget
		{6400, MinShardShots, 6},       // the skewed-benchmark shape
	}
	for _, tc := range cases {
		p := PlanShards(tc.trials, tc.shardShots)
		if p.Shards != tc.wantShards || p.Trials != tc.trials {
			t.Errorf("PlanShards(%d, %d) = %+v, want %d shards over %d trials",
				tc.trials, tc.shardShots, p, tc.wantShards, tc.trials)
		}
		total := 0
		for i := 0; i < p.Shards; i++ {
			n := p.ShardTrials(i)
			if p.Trials > 0 && n <= 0 {
				t.Errorf("plan %+v: shard %d has %d trials", p, i, n)
			}
			if p.Shards > 1 && tc.shardShots > 0 && n < max(tc.shardShots, MinShardShots) {
				t.Errorf("plan %+v: shard %d has %d trials, below the effective shard size %d",
					p, i, n, max(tc.shardShots, MinShardShots))
			}
			total += n
		}
		if total != tc.trials {
			t.Errorf("plan %+v: shard trials sum to %d, want %d", p, total, tc.trials)
		}
	}
}

// The shard identity contract: executing every shard of a plan (in any
// order, here reversed) and merging reproduces Engine.Run with
// Workers == Shards bit for bit — shard i consumes worker stream i with the
// same per/extra trial split.
func TestMergedShardsMatchMultiWorkerRun(t *testing.T) {
	const trials = 5000
	cfg := shardTestConfig(trials)
	en := NewEngine()

	plan := PlanShards(trials, MinShardShots)
	if plan.Shards < 2 {
		t.Fatalf("plan %+v did not shard", plan)
	}
	var budget ShardBudget
	var st WorkerState
	parts := make([]ShardResult, 0, plan.Shards)
	for i := plan.Shards - 1; i >= 0; i-- { // execution order must not matter
		sr, err := en.RunShardOn(cfg, plan, i, &budget, &st)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if sr.Trials != plan.ShardTrials(i) {
			t.Errorf("shard %d took %d trials, want %d", i, sr.Trials, plan.ShardTrials(i))
		}
		parts = append(parts, sr)
	}
	merged, err := MergeShards(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}

	ref := cfg
	ref.Workers = plan.Shards
	want, err := en.Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Trials != want.Trials || merged.Failures != want.Failures || merged.Fallbacks != want.Fallbacks {
		t.Errorf("merged %d/%d/%d trials/failures/fallbacks, Run(Workers=%d) %d/%d/%d",
			merged.Trials, merged.Failures, merged.Fallbacks, plan.Shards,
			want.Trials, want.Failures, want.Fallbacks)
	}
	if merged.Mechanisms != want.Mechanisms || merged.DetectorCount != want.DetectorCount {
		t.Errorf("merged model dims %d/%d, want %d/%d",
			merged.Mechanisms, merged.DetectorCount, want.Mechanisms, want.DetectorCount)
	}
	if merged.Config.Decoder != UF {
		t.Errorf("merge did not normalize the config: decoder %q", merged.Config.Decoder)
	}
}

// DecoderStats shard-merge bit-identity: every stage counter is a plain sum
// over disjoint worker streams, so executing a point's shards out of order
// through RunShardOn and folding with MergeShards must reproduce the
// multi-worker Run's counters exactly — at every pool width, for both
// matcher kinds.
func TestDecoderStatsShardMergeBitIdentity(t *testing.T) {
	for _, dec := range []DecoderKind{UF, Blossom} {
		for _, width := range []int{1, 2, 4, 8} {
			trials := width * MinShardShots
			cfg := shardTestConfig(trials)
			cfg.Decoder = dec
			en := NewEngine()
			plan := PlanShards(trials, 1)
			if plan.Shards != width {
				t.Fatalf("%s: PlanShards(%d, 1) gave %d shards, want %d", dec, trials, plan.Shards, width)
			}
			var budget ShardBudget
			var st WorkerState
			parts := make([]ShardResult, 0, plan.Shards)
			for i := plan.Shards - 1; i >= 0; i-- { // execution order must not matter
				sr, err := en.RunShardOn(cfg, plan, i, &budget, &st)
				if err != nil {
					t.Fatalf("%s width %d shard %d: %v", dec, width, i, err)
				}
				parts = append(parts, sr)
			}
			merged, err := MergeShards(cfg, parts)
			if err != nil {
				t.Fatal(err)
			}

			ref := cfg
			ref.Workers = width
			want, err := en.Run(ref)
			if err != nil {
				t.Fatal(err)
			}
			if merged.Stats != want.Stats {
				t.Errorf("%s width %d: merged stats %+v differ from Run(Workers=%d) stats %+v",
					dec, width, merged.Stats, width, want.Stats)
			}
			if merged.Stats.IsZero() {
				t.Errorf("%s width %d: all stage counters zero — stats not threaded through the shard path", dec, width)
			}
		}
	}
}

// A single-shard plan through RunShardOn is bit-identical to RunOn: the
// scheduler may route unsharded cells through either entry point.
func TestSingleShardMatchesRunOn(t *testing.T) {
	cfg := shardTestConfig(700)
	en := NewEngine()
	plan := PlanShards(cfg.Trials, 0)
	sr, err := en.RunShardOn(cfg, plan, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := en.RunOn(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Trials != want.Trials || sr.Failures != want.Failures {
		t.Errorf("single shard %d/%d failures/trials, RunOn %d/%d",
			sr.Failures, sr.Trials, want.Failures, want.Trials)
	}
}

// A pre-aborted budget stops a shard before its first batch; an abort
// raised mid-run stops it at a batch boundary well short of its allotment.
func TestShardBudgetAbort(t *testing.T) {
	cfg := shardTestConfig(400_000)
	en := NewEngine()
	plan := PlanShards(cfg.Trials, 200_000) // 2 shards big enough to outlive the abort

	var pre ShardBudget
	pre.Abort()
	sr, err := en.RunShardOn(cfg, plan, 0, &pre, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Trials != 0 {
		t.Errorf("pre-aborted shard took %d trials, want 0", sr.Trials)
	}

	var mid ShardBudget
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		mid.Abort()
	}()
	sr, err = en.RunShardOn(cfg, plan, 0, &mid, nil)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Trials >= plan.ShardTrials(0) {
		t.Errorf("aborted shard ran its full %d-trial allotment", sr.Trials)
	}
}

// Cross-shard early stop: once the shared budget banks the target, later
// shards return without sampling. (Timing-free version: run one shard to
// completion with a tiny target, then start a sibling.)
func TestShardSharedEarlyStop(t *testing.T) {
	cfg := shardTestConfig(50_000)
	cfg.TargetFailures = 5
	en := NewEngine()
	plan := PlanShards(cfg.Trials, MinShardShots)
	if plan.Shards < 2 {
		t.Fatalf("plan %+v did not shard", plan)
	}
	var budget ShardBudget
	first, err := en.RunShardOn(cfg, plan, 0, &budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Failures < cfg.TargetFailures {
		t.Fatalf("shard 0 stopped with %d failures, target %d (rate too low for the test grid?)",
			first.Failures, cfg.TargetFailures)
	}
	if budget.Failures() < int64(cfg.TargetFailures) {
		t.Errorf("budget banked %d failures, want >= %d", budget.Failures(), cfg.TargetFailures)
	}
	second, err := en.RunShardOn(cfg, plan, 1, &budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.Trials != 0 {
		t.Errorf("sibling shard took %d trials after the target was met, want 0", second.Trials)
	}

	merged, err := MergeShards(cfg, []ShardResult{first, second})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Trials != first.Trials || merged.Failures != first.Failures {
		t.Errorf("early-stop merge %d/%d failures/trials, want %d/%d",
			merged.Failures, merged.Trials, first.Failures, first.Trials)
	}
}

// Plan/config mismatches and out-of-range shard indices are errors, not
// silent truncation.
func TestRunShardOnValidation(t *testing.T) {
	cfg := shardTestConfig(5000)
	en := NewEngine()
	plan := PlanShards(cfg.Trials, MinShardShots)
	if _, err := en.RunShardOn(cfg, plan, plan.Shards, nil, nil); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	if _, err := en.RunShardOn(cfg, plan, -1, nil, nil); err == nil {
		t.Error("negative shard index accepted")
	}
	bad := cfg
	bad.Trials = plan.Trials + 1
	if _, err := en.RunShardOn(bad, plan, 0, nil, nil); err == nil {
		t.Error("plan/config trial mismatch accepted")
	}
	if _, err := MergeShards(cfg, nil); err == nil {
		t.Error("empty merge accepted")
	}
}

// TestMergeShardsDimsProvenance is the regression pin for the merge's
// dims-provenance rule (PR 6): model dimensions come from the
// lowest-indexed shard that actually ran, so shards settled as empty by
// the scheduler's (or the fabric coordinator's) banked-target skip never
// blank the merged dimensions — in whatever order the parts arrive, which
// is exactly what lease reassignment perturbs: a re-leased unit's result
// can land after higher-indexed shards already merged their slots.
func TestMergeShardsDimsProvenance(t *testing.T) {
	cfg := shardTestConfig(4096)
	real := func(shard int) ShardResult {
		return ShardResult{
			Shard: shard, Trials: 1024, Failures: shard + 1,
			Mechanisms: 77, DetectorCount: 24,
		}
	}
	settled := func(shard int) ShardResult { return ShardResult{Shard: shard} }

	t.Run("lowest shard settled", func(t *testing.T) {
		res, err := MergeShards(cfg, []ShardResult{settled(0), settled(1), real(2), real(3)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Mechanisms != 77 || res.DetectorCount != 24 {
			t.Fatalf("dims %d/%d, want 77/24 from lowest non-empty shard", res.Mechanisms, res.DetectorCount)
		}
		if res.Trials != 2048 || res.Failures != 3+4 {
			t.Fatalf("tallies %d/%d, want 2048 trials, 7 failures", res.Trials, res.Failures)
		}
	})

	t.Run("order independent", func(t *testing.T) {
		// Every arrival order a reassignment race can produce must merge to
		// the identical Result — including orders where a settled shard with
		// a lower index arrives after the real ones.
		parts := []ShardResult{settled(1), real(0), real(3), settled(2)}
		want, err := MergeShards(cfg, parts)
		if err != nil {
			t.Fatal(err)
		}
		perms := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}}
		for _, perm := range perms {
			shuffled := make([]ShardResult, len(parts))
			for i, p := range perm {
				shuffled[i] = parts[p]
			}
			got, err := MergeShards(cfg, shuffled)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("order %v: merged %+v, want %+v", perm, got, want)
			}
		}
		if want.Mechanisms != 77 || want.DetectorCount != 24 {
			t.Fatalf("dims %d/%d, want 77/24", want.Mechanisms, want.DetectorCount)
		}
	})

	t.Run("all shards settled", func(t *testing.T) {
		// Unreachable through the scheduler (a cell's target can only be
		// banked by one of its own shards, so at least one always runs), but
		// the merge must stay well-formed if it ever happens: zero tallies,
		// zero dims, no error.
		res, err := MergeShards(cfg, []ShardResult{settled(0), settled(1)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trials != 0 || res.Failures != 0 || res.Mechanisms != 0 || res.DetectorCount != 0 {
			t.Fatalf("all-settled merge not empty: %+v", res)
		}
	})
}
