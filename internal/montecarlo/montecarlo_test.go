package montecarlo

import (
	"math"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

func TestRunBasic(t *testing.T) {
	res, err := Run(Config{
		Scheme:   extract.Baseline,
		Distance: 3,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledTo(3e-3),
		Trials:   2000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2000 {
		t.Errorf("trials = %d", res.Trials)
	}
	if res.Failures == 0 {
		t.Error("expected some logical failures at p=3e-3, d=3")
	}
	if res.Rate() > 0.3 {
		t.Errorf("rate %.3f implausibly high below threshold", res.Rate())
	}
	if res.StdErr() <= 0 {
		t.Error("standard error must be positive")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Config{
		Scheme:   extract.Baseline,
		Distance: 3,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledTo(5e-3),
		Trials:   1000,
		Seed:     7,
		Workers:  1,
	}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != b.Failures {
		t.Errorf("same config, same seed: %d vs %d failures", a.Failures, b.Failures)
	}
}

// The defining property of a code below threshold: logical error rate drops
// with distance. Above threshold it rises. This is the shape of every Fig. 11
// panel.
func TestSubAndSuperThresholdScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	base := hardware.Default()
	low3, err := Run(Config{Scheme: extract.Baseline, Distance: 3, Basis: extract.BasisZ,
		Params: base.ScaledTo(2e-3), Trials: 20000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	low5, err := Run(Config{Scheme: extract.Baseline, Distance: 5, Basis: extract.BasisZ,
		Params: base.ScaledTo(2e-3), Trials: 20000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if low5.Rate() >= low3.Rate() {
		t.Errorf("below threshold d=5 (%.4f) must beat d=3 (%.4f)", low5.Rate(), low3.Rate())
	}
	high3, err := Run(Config{Scheme: extract.Baseline, Distance: 3, Basis: extract.BasisZ,
		Params: base.ScaledTo(4e-2), Trials: 4000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	high5, err := Run(Config{Scheme: extract.Baseline, Distance: 5, Basis: extract.BasisZ,
		Params: base.ScaledTo(4e-2), Trials: 4000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if high5.Rate() <= high3.Rate() {
		t.Errorf("above threshold d=5 (%.4f) must lose to d=3 (%.4f)", high5.Rate(), high3.Rate())
	}
}

func TestEstimateThreshold(t *testing.T) {
	// Synthetic curves crossing at p = 1e-2: rate(d, p) = (p/1e-2)^(d/2).
	var pts []SweepPoint
	for _, d := range []int{3, 5} {
		for _, p := range []float64{4e-3, 8e-3, 1.2e-2, 2e-2} {
			r := math.Pow(p/1e-2, float64(d)/2)
			failures := int(r * 1e6)
			pts = append(pts, SweepPoint{Distance: d, Phys: p,
				Result: Result{Trials: 1e6, Failures: failures}})
		}
	}
	th := EstimateThreshold(pts)
	if th < 8e-3 || th > 1.3e-2 {
		t.Errorf("threshold estimate %g not near 1e-2", th)
	}
}

func TestEstimateThresholdNoCrossing(t *testing.T) {
	pts := []SweepPoint{
		{Distance: 3, Phys: 1e-3, Result: Result{Trials: 100, Failures: 10}},
		{Distance: 5, Phys: 1e-3, Result: Result{Trials: 100, Failures: 1}},
	}
	if th := EstimateThreshold(pts); th != 0 {
		t.Errorf("no crossing should give 0, got %g", th)
	}
}

func TestPanelApply(t *testing.T) {
	base := OperatingPoint()
	for _, panel := range Panels {
		vals := panel.DefaultValues(3)
		if len(vals) < 2 {
			t.Errorf("%v: too few default values", panel)
		}
		for _, v := range vals {
			p, err := panel.Apply(base, v)
			if err != nil {
				t.Errorf("%v(%g): %v", panel, v, err)
			}
			if p == base && panel != PanelCavitySize {
				t.Errorf("%v(%g): parameters unchanged", panel, v)
			}
		}
	}
	if _, err := Panel("nope").Apply(base, 1); err == nil {
		t.Error("unknown panel must fail")
	}
	if _, err := PanelCavitySize.Apply(base, 0); err == nil {
		t.Error("cavity size 0 must fail")
	}
}

func TestSensitivitySweepSmoke(t *testing.T) {
	pts, err := SensitivitySweep(PanelSCSC, []float64{1e-4, 5e-3}, []int{3}, 400, 3, UF)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// Higher SC-SC error must not give a (significantly) lower logical rate.
	if pts[1].Result.Rate()+0.02 < pts[0].Result.Rate() {
		t.Errorf("rate at p=5e-3 (%.4f) below rate at p=1e-4 (%.4f)", pts[1].Result.Rate(), pts[0].Result.Rate())
	}
}

func TestCavityCrossoverEstimate(t *testing.T) {
	params := OperatingPoint()
	roundDur := params.ResetTime + 2*params.Gate1Time + 4*params.Gate2Time + params.MeasureTime

	kGate := CavityCrossoverEstimate(params, roundDur, GateBudgetPerRound(params))
	kThresh := CavityCrossoverEstimate(params, roundDur, StorageErrorThreshold)
	if kGate < 2 || kThresh <= kGate {
		t.Errorf("crossovers must increase with budget: gate %d, threshold %d", kGate, kThresh)
	}
	// Doubling cavity T1 must push the crossover out roughly 2x.
	better := params
	better.T1Cavity *= 2
	k2 := CavityCrossoverEstimate(better, roundDur, StorageErrorThreshold)
	if k2 < kThresh*3/2 {
		t.Errorf("crossover with 2x T1 (%d) should be ~2x the base (%d)", k2, kThresh)
	}
	if CavityCrossoverEstimate(params, roundDur, 2.0) != -1 {
		t.Error("impossible budget must return -1")
	}
}

func TestMWPMDecoderPath(t *testing.T) {
	res, err := Run(Config{
		Scheme:   extract.Baseline,
		Distance: 3,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledTo(2e-3),
		Trials:   500,
		Seed:     5,
		Decoder:  MWPM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() > 0.2 {
		t.Errorf("mwpm rate %.3f implausible", res.Rate())
	}
}

func TestDefaultPhysRates(t *testing.T) {
	rates := DefaultPhysRates(7)
	if len(rates) != 7 {
		t.Fatalf("%d rates", len(rates))
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatal("rates must increase")
		}
	}
	if rates[0] > 0.009 || rates[len(rates)-1] < 0.009 {
		t.Error("grid must bracket the paper's threshold band")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Scheme: extract.Baseline, Distance: 3, Params: hardware.Default()}); err == nil {
		t.Error("zero trials must fail")
	}
}
