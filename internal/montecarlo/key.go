package montecarlo

import (
	"strconv"
	"strings"
)

// CellKey returns the canonical identity of a Monte-Carlo cell: a stable
// string covering every Config field that can change the cell's result
// bits — scheme, distance, rounds, basis, the full hardware model, trial
// budget, seed, decoder kind, charge-gap idling, early-stop targets, the
// rare-event parameters, and the decode-pipeline flag (the pipeline never
// changes predictions, but it does change the per-cell skip/dedup
// counters a result record carries). Workers is deliberately excluded:
// results are bit-identical at any pool width, so one key addresses the
// same bytes no matter how they were computed.
//
// Two configs with equal keys produce bit-identical Results; that
// equivalence is what makes the key usable as a content address for
// durable result stores and request coalescing (internal/serve's ledger).
// Zero-valued defaults are normalized before formatting (Rounds 0 means
// Distance, Boost 0 in rare-event mode means DefaultBoost), so a request
// that spells the default explicitly and one that omits it share a key.
// Floats are formatted as exact hexadecimal (%x) values: no two distinct
// float64 inputs collide, and no decimal rounding can merge or split
// identities.
//
// The key is versioned ("c1|..."): if a future change alters the result
// bytes for a fixed Config (a new noise term, say), the prefix must be
// bumped so stale ledger entries stop matching.
func (cfg Config) CellKey() string {
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = cfg.Distance
	}
	boost := 0.0
	if cfg.RareEvent {
		boost = cfg.Boost
		if boost == 0 {
			boost = DefaultBoost
		}
	}
	var b strings.Builder
	b.Grow(256)
	b.WriteString("c1|")
	b.WriteString(cfg.Scheme.String())
	field(&b, "d", strconv.Itoa(cfg.Distance))
	field(&b, "r", strconv.Itoa(rounds))
	field(&b, "b", cfg.Basis.String())
	field(&b, "n", strconv.Itoa(cfg.Trials))
	field(&b, "s", strconv.FormatInt(cfg.Seed, 10))
	field(&b, "dec", string(cfg.Decoder))
	field(&b, "cgi", boolKey(cfg.ChargeGapIdle))
	field(&b, "tf", strconv.Itoa(cfg.TargetFailures))
	field(&b, "rare", boolKey(cfg.RareEvent))
	field(&b, "boost", hexFloat(boost))
	field(&b, "tre", hexFloat(cfg.TargetRelErr))
	field(&b, "nopipe", boolKey(cfg.DisablePipeline))
	// The full hardware model: every duration, probability, and the cavity
	// depth feed the noise annotation, so all of them are identity.
	p := cfg.Params
	b.WriteString("|hw=")
	for i, f := range []float64{
		p.T1Transmon, p.T1Cavity, p.Gate2Time, p.Gate1Time, p.GateTMTime,
		p.LoadStoreTime, p.MeasureTime, p.ResetTime,
		p.PGate2, p.PGate1, p.PGateTM, p.PLoadStore, p.PMeasure, p.PReset,
	} {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(hexFloat(f))
	}
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(p.CavityDepth))
	return b.String()
}

func field(b *strings.Builder, name, val string) {
	b.WriteByte('|')
	b.WriteString(name)
	b.WriteByte('=')
	b.WriteString(val)
}

func boolKey(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// hexFloat formats f exactly: distinct float64 bit patterns (other than
// +0/-0, which compare equal anyway) never share a representation.
func hexFloat(f float64) string {
	return strconv.FormatFloat(f, 'x', -1, 64)
}
