package montecarlo

import (
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// The tentpole determinism contract at the engine level: pipeline on vs off
// produces bit-identical trial and failure counts for every decoder kind ×
// scheme × distance × noise scale. (Fallbacks are intentionally excluded:
// dedup means a pathological syndrome triggers the fallback once per batch,
// not once per duplicate.)
func TestPipelineOnOffBitIdentical(t *testing.T) {
	en := NewEngine()
	var stOn, stOff WorkerState
	schemes := []extract.Scheme{extract.Baseline, extract.NaturalInterleaved, extract.CompactInterleaved}
	for _, dec := range []DecoderKind{UF, Blossom, MWPM, Exact} {
		for _, scheme := range schemes {
			for _, d := range []int{3, 5, 7} {
				for _, phys := range []float64{2e-3, 8e-3} {
					cfg := ThresholdCellConfig(scheme, d, phys, hardware.Default(), 128, 23, dec, SweepOptions{})
					on, err := en.RunOn(cfg, &stOn)
					if err != nil {
						t.Fatalf("%s/%v d=%d p=%g on: %v", dec, scheme, d, phys, err)
					}
					cfg.DisablePipeline = true
					off, err := en.RunOn(cfg, &stOff)
					if err != nil {
						t.Fatalf("%s/%v d=%d p=%g off: %v", dec, scheme, d, phys, err)
					}
					if on.Trials != off.Trials || on.Failures != off.Failures {
						t.Errorf("%s/%v d=%d p=%g: pipeline on %d/%d failures/trials, off %d/%d",
							dec, scheme, d, phys, on.Failures, on.Trials, off.Failures, off.Trials)
					}
					if off.Skipped != 0 || off.DedupHits != 0 {
						t.Errorf("%s/%v d=%d p=%g: disabled pipeline reported counters %d/%d",
							dec, scheme, d, phys, off.Skipped, off.DedupHits)
					}
					if on.Skipped+on.DedupHits > on.Trials {
						t.Errorf("%s/%v d=%d p=%g: counters %d skipped + %d dedup exceed %d trials",
							dec, scheme, d, phys, on.Skipped, on.DedupHits, on.Trials)
					}
				}
			}
		}
	}
}

// Below threshold the fast paths must actually fire: most shots carry zero
// defects, and single-defect-pair syndromes repeat within batches.
func TestPipelineCountersBelowThreshold(t *testing.T) {
	cfg := ThresholdCellConfig(extract.CompactInterleaved, 5, 1e-3, hardware.Default(), 2048, 7, UF, SweepOptions{})
	res, err := NewEngine().RunOn(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Error("no zero-defect shots skipped at d=5 p=1e-3; the fast path is dead")
	}
	if res.DedupHits == 0 {
		t.Error("no syndrome dedup hits at d=5 p=1e-3; the dedup layer is dead")
	}
	// At this operating point (gates at 1e-3, coherence noise at its
	// Table I values) roughly 40% of d=5 shots carry zero defects.
	if got := float64(res.Skipped) / float64(res.Trials); got < 0.25 {
		t.Errorf("only %.0f%% of shots skipped at d=5 p=1e-3; the zero-defect rate collapsed", 100*got)
	}
}

// Pipeline-on determinism across pool widths {1, 2, 4, 8} and shard
// thresholds: Run at every width, and the fully merged shard plan, must be
// bit-identical in every field including the pipeline counters (the skip
// and dedup classification is a pure function of each worker stream).
func TestPipelineDeterministicAcrossWidthsAndShards(t *testing.T) {
	en := NewEngine()
	cfg := ThresholdCellConfig(extract.CompactInterleaved, 5, 3e-3, hardware.Default(), 4096, 99, Blossom, SweepOptions{})
	for _, width := range []int{1, 2, 4, 8} {
		cfg.Workers = width
		first, err := en.Run(cfg)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		second, err := en.Run(cfg)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if first != second {
			t.Fatalf("width %d not deterministic: %+v vs %+v", width, first, second)
		}

		// The shard plan with Shards == width merges to the same Result.
		plan := ShardPlan{Shards: width, Trials: cfg.Trials}
		parts := make([]ShardResult, plan.Shards)
		var st WorkerState
		for s := 0; s < plan.Shards; s++ {
			sr, err := en.RunShardOn(cfg, plan, s, nil, &st)
			if err != nil {
				t.Fatalf("width %d shard %d: %v", width, s, err)
			}
			parts[s] = sr
		}
		merged, err := MergeShards(cfg, parts)
		if err != nil {
			t.Fatal(err)
		}
		if merged != first {
			t.Fatalf("width %d: merged shards %+v vs Run %+v", width, merged, first)
		}
	}
}

// A merge where the lowest-indexed shard never ran (the scheduler's
// steal-aware skip emits an empty ShardResult) must take the model
// dimensions from the lowest shard that did run.
func TestMergeShardsSkipsEmptyDims(t *testing.T) {
	cfg := Config{Trials: 100, Decoder: UF}
	parts := []ShardResult{
		{Shard: 0}, // skipped whole: no trials, no dims
		{Shard: 2, Trials: 10, Failures: 1, Skipped: 5, DedupHits: 2, Mechanisms: 40, DetectorCount: 12},
		{Shard: 1, Trials: 20, Failures: 2, Skipped: 9, DedupHits: 3, Mechanisms: 40, DetectorCount: 12},
	}
	res, err := MergeShards(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mechanisms != 40 || res.DetectorCount != 12 {
		t.Errorf("merged dims %d/%d; empty shard 0 blanked them", res.Mechanisms, res.DetectorCount)
	}
	if res.Trials != 30 || res.Failures != 3 || res.Skipped != 14 || res.DedupHits != 5 {
		t.Errorf("merged counts wrong: %+v", res)
	}
}
