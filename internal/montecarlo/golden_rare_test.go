package montecarlo

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// goldenRareCell is one pinned-seed rare-event cell of the committed
// fixture testdata/golden_rare.json. The weighted sums are float64s pinned
// exactly: encoding/json round-trips them bit for bit, and the sampler,
// decoder, and merge order are all deterministic, so any drift — however
// small — is a real behavior change, not noise.
type goldenRareCell struct {
	Scheme   string         `json:"scheme"`
	Distance int            `json:"distance"`
	PhysRate float64        `json:"phys_rate"`
	Boost    float64        `json:"boost"`
	Trials   int            `json:"trials"`
	Failures int            `json:"failures"`
	Weighted WeightedResult `json:"weighted"`
	// Estimate and RelErr are derived from Weighted; they ride in the
	// fixture for human review of the pinned numbers.
	Estimate float64 `json:"estimate"`
	RelErr   float64 `json:"rel_err"`
}

const goldenRarePath = "testdata/golden_rare.json"

// goldenRareCells recomputes the fixture's cells: Baseline d=9 and d=11 Z
// memory at p=1e-3 — the deep sub-threshold band the rare-event mode exists
// for, where the d=11 brute-force rate (~6e-5) would need ~10^6 shots for a
// comparable error bar — each at boost 1.5, the measured optimum for this
// band, via the single-threaded RunOn path.
func goldenRareCells(t *testing.T) []goldenRareCell {
	t.Helper()
	const (
		seed  = 4242
		boost = 1.5
		phys  = 1e-3
	)
	// The d=11 failure rate is ~3x rarer than d=9's, so it gets double the
	// shots to hold the same error-bar class.
	trials := map[int]int{9: 32768, 11: 65536}
	en := NewEngine()
	var st WorkerState
	var out []goldenRareCell
	for _, d := range []int{9, 11} {
		cfg := ThresholdCellConfig(extract.Baseline, d, phys, hardware.Default(),
			trials[d], seed, UF, SweepOptions{RareEvent: true, Boost: boost})
		res, err := en.RunOn(cfg, &st)
		if err != nil {
			t.Fatalf("golden rare cell d=%d: %v", d, err)
		}
		out = append(out, goldenRareCell{
			Scheme:   extract.Baseline.String(),
			Distance: d, PhysRate: phys, Boost: boost,
			Trials: res.Trials, Failures: res.Failures,
			Weighted: res.Weighted,
			Estimate: res.Weighted.Estimate(), RelErr: res.Weighted.RelErr(),
		})
	}
	return out
}

// TestGoldenRareRates is the rare-event leg of the golden harness: two
// committed deep sub-threshold cells (d >= 9 at p=1e-3, below the smallest
// rate the Fig. 11 fixture covers) recomputed and diffed exactly, weighted
// float sums included. A sampler, weighting, decoder, or merge change that
// shifts any pinned value fails tier 1. Regenerate with
// VLQ_UPDATE_GOLDEN=1 go test ./internal/montecarlo -run TestGoldenRareRates
// after an intentional change and review the diff.
func TestGoldenRareRates(t *testing.T) {
	got := goldenRareCells(t)
	for _, g := range got {
		// The cells must stay useful, not just stable: a nonzero estimate
		// with a trustworthy error bar at the fixture's shot counts is the acceptance bar
		// for the mode itself.
		if g.Estimate <= 0 {
			t.Errorf("d=%d cell has zero estimate over %d trials", g.Distance, g.Trials)
		}
		if !(g.RelErr <= 0.30) {
			t.Errorf("d=%d cell relative error %.3f exceeds 0.30", g.Distance, g.RelErr)
		}
	}
	if os.Getenv("VLQ_UPDATE_GOLDEN") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenRarePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRarePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden rare cells to %s", len(got), goldenRarePath)
		return
	}
	buf, err := os.ReadFile(goldenRarePath)
	if err != nil {
		t.Fatalf("missing golden rare fixture (run with VLQ_UPDATE_GOLDEN=1 to create): %v", err)
	}
	var want []goldenRareCell
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden rare fixture: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d cells, recomputation produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Scheme != g.Scheme || w.Distance != g.Distance ||
			math.Abs(w.PhysRate-g.PhysRate) > 1e-12*(1+w.PhysRate) || w.Boost != g.Boost {
			t.Fatalf("cell %d identity drifted: fixture %+v vs recomputed %+v", i, w, g)
		}
		if w.Trials != g.Trials || w.Failures != g.Failures {
			t.Errorf("cell %d (d=%d): fixture %d/%d failures/trials, recomputed %d/%d",
				i, w.Distance, w.Failures, w.Trials, g.Failures, g.Trials)
		}
		if w.Weighted != g.Weighted {
			t.Errorf("cell %d (d=%d): weighted sums drifted:\n fixture    %+v\n recomputed %+v",
				i, w.Distance, w.Weighted, g.Weighted)
		}
	}
}
