package montecarlo

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/decoder"
)

// MinShardShots is the documented shot floor below which sharding never
// engages: PlanShards raises any positive shard size to this value, so a
// point at or below MinShardShots trials always plans as a single shard.
// The floor exists for two reasons. Statistically, pinned-seed fixtures
// (internal/montecarlo/testdata/golden_rates.json runs 250-trial cells)
// must never be split silently — a split changes the RNG stream layout and
// therefore the bit-exact counts. Economically, a shard smaller than ~16
// batches pays more in per-shard prepare/merge bookkeeping than the
// parallelism returns.
const MinShardShots = 1024

// ShardPlan is the fixed decomposition of one Monte-Carlo point's trials
// into shard units. A plan is derived from the cell spec alone (trials and
// the shard-size threshold) — never from pool width, worker count, or any
// runtime state — which is what makes a sharded point's merged result
// reproducible: same Config + same threshold => same plan => same per-shard
// ChaCha8 streams.
type ShardPlan struct {
	// Shards is the number of shard units (>= 1; 1 means unsharded).
	Shards int
	// Trials is the point's total trial budget, split across shards by
	// ShardTrials.
	Trials int
}

// PlanShards returns the shard plan for a point of the given trial budget
// under a shard size of shardShots. shardShots <= 0 disables sharding
// (single-shard plan); positive values below MinShardShots are raised to
// the floor, so callers cannot accidentally shard pinned small cells.
// Floor division sizes the plan — every shard carries at least shardShots
// trials (the last partial chunk folds into the others) — so no shard ever
// drops below the economic floor the threshold promises.
func PlanShards(trials, shardShots int) ShardPlan {
	p := ShardPlan{Shards: 1, Trials: trials}
	if shardShots <= 0 || trials <= 0 {
		return p
	}
	if shardShots < MinShardShots {
		shardShots = MinShardShots
	}
	p.Shards = max(trials/shardShots, 1)
	return p
}

// ShardTrials returns shard i's trial allotment: Trials/Shards each, with
// the remainder spread over the first shards. This is exactly the split
// Engine.Run uses across its workers, so a fully executed plan merges to a
// Result bit-identical to Run with Workers == Shards (shard i consumes
// worker stream i).
func (p ShardPlan) ShardTrials(i int) int {
	per := p.Trials / p.Shards
	if i < p.Trials%p.Shards {
		per++
	}
	return per
}

// ShardBudget coordinates the workers executing one sharded point: the
// shared failure count that TargetFailures early stopping reads, and an
// abort flag that stops in-flight shards at their next 64-shot batch
// boundary (the sweep scheduler raises it when the point's cell is
// cancelled, so sibling shards stop burning cycles on a result that can no
// longer be delivered). The zero value is ready to use. One ShardBudget
// must be shared by every shard of a plan and must not be reused across
// points.
type ShardBudget struct {
	failures atomic.Int64
	aborted  atomic.Bool

	// Pooled weighted tally for TargetRelErr early stopping: shards of a
	// rare-event point bank their per-batch weight deltas here and check the
	// pooled relative error at batch boundaries. Mutex-guarded (multiple
	// float sums), touched only by weighted runs.
	wmu   sync.Mutex
	wpool WeightedResult
}

// Failures returns the failures accumulated toward the early-stop target so
// far. Only shards running with TargetFailures > 0 contribute.
func (b *ShardBudget) Failures() int64 { return b.failures.Load() }

// Abort makes every shard sharing the budget stop at its next batch
// boundary. Aborting is idempotent and cannot be undone.
func (b *ShardBudget) Abort() { b.aborted.Store(true) }

// Aborted reports whether Abort has been called.
func (b *ShardBudget) Aborted() bool { return b.aborted.Load() }

// AddWeighted banks one batch's weighted tally toward TargetRelErr early
// stopping. Like the failure counter, the pooled sums see contributions in
// sibling-timing order — the stop *decision* may vary run to run, but each
// shard's own ShardResult stays an ordered, deterministic accumulation.
func (b *ShardBudget) AddWeighted(d WeightedResult) {
	b.wmu.Lock()
	b.wpool.Add(d)
	b.wmu.Unlock()
}

// WeightedRelErrMet reports whether the pooled weighted estimate has reached
// the target relative error (target <= 0 never stops).
func (b *ShardBudget) WeightedRelErrMet(target float64) bool {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	return b.wpool.RelErrMet(target)
}

// WeightedBanked returns a snapshot of the pooled weighted tally — the
// scheduler's steal-aware skip reads it to settle unstarted shards of an
// already-converged rare-event point.
func (b *ShardBudget) WeightedBanked() WeightedResult {
	b.wmu.Lock()
	defer b.wmu.Unlock()
	return b.wpool
}

// ShardResult is one shard's tally, mergeable into a Result with
// MergeShards. It carries the model dimensions so a merge does not need to
// touch the engine.
type ShardResult struct {
	Shard         int // index within the plan
	Trials        int // shots this shard actually took
	Failures      int
	Fallbacks     int
	Skipped       int // zero-defect shots answered by the pipeline fast path
	DedupHits     int // shots replayed from a duplicate syndrome's prediction
	Stats         decoder.DecoderStats
	Mechanisms    int
	DetectorCount int
	// Weighted is the shard's importance-sampling tally (RareEvent mode
	// only). Go's JSON float64 round-trip is exact, so the sums ride the
	// fabric wire bit-identically.
	Weighted WeightedResult
}

// RunShardOn executes one shard of a planned point single-threaded on the
// calling goroutine, reusing st's buffers across calls — the partial-run
// entry point of the sweep scheduler's work stealing. The shard samples
// worker stream `shard` of cfg.Seed (the same derivation Engine.Run gives
// worker `shard`), takes plan.ShardTrials(shard) shots, and coordinates
// TargetFailures early stopping and cancellation through budget, which must
// be shared by all shards of the plan. st and budget may be nil for
// one-shot use.
//
// Determinism contract: with TargetFailures == 0 and no abort, a shard's
// ShardResult depends only on (cfg, plan, shard) — never on which worker
// runs it or when — and merging every shard of the plan reproduces
// Engine.Run with Workers == plan.Shards bit for bit. With TargetFailures
// set, the shots a shard takes depend on when sibling shards bank their
// failures, exactly as Run's workers always have; the merge is still
// deterministic in the shard results it is given.
func (en *Engine) RunShardOn(cfg Config, plan ShardPlan, shard int, budget *ShardBudget, st *WorkerState) (ShardResult, error) {
	if st == nil {
		st = &WorkerState{}
	}
	if budget == nil {
		budget = &ShardBudget{}
	}
	if err := cfg.normalize(); err != nil {
		return ShardResult{}, err
	}
	if plan.Shards < 1 || shard < 0 || shard >= plan.Shards {
		return ShardResult{}, fmt.Errorf("montecarlo: shard %d outside plan of %d shards", shard, plan.Shards)
	}
	if plan.Trials != cfg.Trials {
		return ShardResult{}, fmt.Errorf("montecarlo: shard plan covers %d trials but config has %d", plan.Trials, cfg.Trials)
	}
	model, prop, graph, err := en.prepareModels(cfg, st)
	if err != nil {
		return ShardResult{}, err
	}
	t, err := runAnyWorker(model, prop, graph, cfg, shard, plan.ShardTrials(shard), budget, st)
	if err != nil {
		return ShardResult{}, err
	}
	return ShardResult{
		Shard:         shard,
		Trials:        t.trials,
		Failures:      t.failures,
		Fallbacks:     t.fallbacks,
		Skipped:       t.skipped,
		DedupHits:     t.dedupHits,
		Stats:         t.stats,
		Mechanisms:    model.Stats.Mechanisms,
		DetectorCount: model.NumDets,
		Weighted:      t.weighted,
	}, nil
}

// MergeShards folds the shards of one point into a single Result. The fold
// is deterministic in its inputs: counts are summed and the model
// dimensions taken from the lowest shard index that actually ran — a shard
// skipped whole by the scheduler's steal-aware early stop reports zero
// Mechanisms and must not blank the merged dimensions — so any execution
// order, and any pool width, produces the identical Result for identical
// shard results. Partial merges (early-stopped or aborted shards) are
// well-formed: Trials reports the shots actually taken.
func MergeShards(cfg Config, parts []ShardResult) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("montecarlo: merge of zero shards")
	}
	// Fold in ascending shard index regardless of arrival order: the integer
	// sums commute, but the weighted float sums do not, and shard-ordered
	// folding is what makes a merge independent of lease-completion order.
	ordered := parts
	if !slices.IsSortedFunc(parts, func(a, b ShardResult) int { return a.Shard - b.Shard }) {
		ordered = slices.Clone(parts)
		slices.SortStableFunc(ordered, func(a, b ShardResult) int { return a.Shard - b.Shard })
	}
	res := Result{Config: cfg}
	first := ordered[0]
	for _, p := range ordered {
		if p.Mechanisms > 0 && (first.Mechanisms == 0 || p.Shard < first.Shard) {
			first = p
		}
		res.Trials += p.Trials
		res.Failures += p.Failures
		res.Fallbacks += p.Fallbacks
		res.Skipped += p.Skipped
		res.DedupHits += p.DedupHits
		res.Stats.Add(p.Stats)
		res.Weighted.Add(p.Weighted)
	}
	res.Mechanisms = first.Mechanisms
	res.DetectorCount = first.DetectorCount
	return res, nil
}
