package montecarlo

import (
	"sync"
	"testing"

	"repro/internal/extract"
	"repro/internal/hardware"
)

func pointCfg(d int, seed int64) Config {
	return Config{
		Scheme:   extract.Baseline,
		Distance: d,
		Basis:    extract.BasisZ,
		Params:   hardware.Default().ScaledGatesTo(5e-3),
		Trials:   150,
		Seed:     seed,
	}
}

// A cap-1 cache must evict the LRU structure and rebuild on return visits,
// while never holding more than one entry.
func TestCacheLRUEviction(t *testing.T) {
	en := NewEngineWithCache(1)
	for i, d := range []int{3, 5, 3} {
		if _, err := en.Run(pointCfg(d, int64(i))); err != nil {
			t.Fatal(err)
		}
		if got := en.CachedStructures(); got != 1 {
			t.Fatalf("after run %d: %d cached structures, cap 1", i, got)
		}
	}
	if got := en.StructureBuilds(); got != 3 {
		t.Errorf("3-2-3 distance sequence under cap 1 built %d structures, want 3 (d=3 evicted and rebuilt)", got)
	}
	if got := en.Evictions(); got != 2 {
		t.Errorf("recorded %d evictions, want 2", got)
	}
}

// Touching an entry must refresh its recency: with cap 2, re-running d=3
// before introducing d=7 must evict d=5, not d=3.
func TestCacheLRUTouchRefreshesRecency(t *testing.T) {
	en := NewEngineWithCache(2)
	for i, d := range []int{3, 5, 3, 7, 3} {
		if _, err := en.Run(pointCfg(d, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Builds: d3, d5, (d3 hit), d7 evicting d5, (d3 hit) => 3.
	if got := en.StructureBuilds(); got != 3 {
		t.Errorf("built %d structures, want 3 (d=3 must survive as recently used)", got)
	}
	if got := en.Evictions(); got != 1 {
		t.Errorf("recorded %d evictions, want 1", got)
	}
}

// maxEntries <= 0 disables eviction entirely.
func TestCacheUnbounded(t *testing.T) {
	en := NewEngineWithCache(0)
	for i, d := range []int{3, 5, 7} {
		if _, err := en.Run(pointCfg(d, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := en.Evictions(); got != 0 {
		t.Errorf("unbounded cache evicted %d entries", got)
	}
	if got := en.CachedStructures(); got != 3 {
		t.Errorf("%d cached structures, want 3", got)
	}
}

// Eviction must not change results: an evicted-and-rebuilt structure yields
// the same deterministic outcome as the original.
func TestEvictionPreservesDeterminism(t *testing.T) {
	cfg := pointCfg(3, 99)
	cfg.Workers = 1
	en := NewEngineWithCache(1)
	a, err := en.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.Run(pointCfg(5, 1)); err != nil { // evicts d=3
		t.Fatal(err)
	}
	b, err := en.Run(cfg) // rebuild
	if err != nil {
		t.Fatal(err)
	}
	if a.Failures != b.Failures || a.Trials != b.Trials {
		t.Errorf("results changed across eviction: %d/%d vs %d/%d failures/trials",
			a.Failures, a.Trials, b.Failures, b.Trials)
	}
}

// The engine must tolerate concurrent Run/RunOn callers hammering a tiny
// cache — the -race CI job drives the LRU bookkeeping, the build once, and
// the hoisted graph once under contention here.
func TestEngineConcurrentUse(t *testing.T) {
	en := NewEngineWithCache(2)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := 3
			if i%2 == 1 {
				d = 5
			}
			if i%3 == 0 {
				_, errs[i] = en.RunOn(pointCfg(d, int64(i)), nil)
			} else {
				_, errs[i] = en.Run(pointCfg(d, int64(i)))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
}

// RunOn must be bit-identical to Run with Workers == 1, and reusing one
// WorkerState across different distances must not change results.
func TestRunOnMatchesSingleWorkerRun(t *testing.T) {
	en := NewEngine()
	var st WorkerState
	for _, d := range []int{3, 5, 3} {
		cfg := pointCfg(d, 7)
		cfg.Trials = 500
		got, err := en.RunOn(cfg, &st)
		if err != nil {
			t.Fatal(err)
		}
		ref := cfg
		ref.Workers = 1
		want, err := en.Run(ref)
		if err != nil {
			t.Fatal(err)
		}
		if got.Failures != want.Failures || got.Trials != want.Trials {
			t.Errorf("d=%d: RunOn %d/%d vs Run(Workers=1) %d/%d failures/trials",
				d, got.Failures, got.Trials, want.Failures, want.Trials)
		}
	}
}

// RunOn under MWPM must count fallbacks and agree with Run(Workers=1).
func TestRunOnMWPM(t *testing.T) {
	en := NewEngine()
	cfg := pointCfg(3, 3)
	cfg.Decoder = MWPM
	got, err := en.RunOn(cfg, &WorkerState{})
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.Workers = 1
	want, err := en.Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failures != want.Failures || got.Fallbacks != want.Fallbacks {
		t.Errorf("RunOn %d failures/%d fallbacks vs Run %d/%d",
			got.Failures, got.Fallbacks, want.Failures, want.Fallbacks)
	}
}
