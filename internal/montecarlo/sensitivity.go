package montecarlo

import (
	"fmt"
	"math"

	"repro/internal/extract"
	"repro/internal/hardware"
)

// Panel identifies one sensitivity study of Fig. 12. Each panel varies a
// single hardware parameter while the rest stay at the paper's typical
// operating point (all gate errors 2e-3, cavity depth 10), on
// Compact-Interleaved.
type Panel string

// The seven panels of Fig. 12.
const (
	PanelSCSC              Panel = "sc-sc-error"
	PanelLoadStoreError    Panel = "load-store-error"
	PanelSCModeError       Panel = "sc-mode-error"
	PanelCavityT1          Panel = "cavity-t1"
	PanelTransmonT1        Panel = "transmon-t1"
	PanelLoadStoreDuration Panel = "load-store-duration"
	PanelCavitySize        Panel = "cavity-size"
)

// Panels lists all Fig. 12 panels in paper order.
var Panels = []Panel{
	PanelSCSC, PanelLoadStoreError, PanelSCModeError,
	PanelCavityT1, PanelTransmonT1, PanelLoadStoreDuration, PanelCavitySize,
}

// Apply returns base with the panel's parameter set to value.
func (p Panel) Apply(base hardware.Params, value float64) (hardware.Params, error) {
	out := base
	switch p {
	case PanelSCSC:
		out.PGate2 = value
	case PanelLoadStoreError:
		out.PLoadStore = value
	case PanelSCModeError:
		out.PGateTM = value
	case PanelCavityT1:
		out.T1Cavity = value
	case PanelTransmonT1:
		out.T1Transmon = value
	case PanelLoadStoreDuration:
		out.LoadStoreTime = value
	case PanelCavitySize:
		k := int(math.Round(value))
		if k < 1 {
			return out, fmt.Errorf("montecarlo: cavity size %v invalid", value)
		}
		out.CavityDepth = k
	default:
		return out, fmt.Errorf("montecarlo: unknown panel %q", p)
	}
	return out, out.Validate()
}

// DefaultValues returns the paper's sweep range for the panel.
func (p Panel) DefaultValues(n int) []float64 {
	logRange := func(lo, hi float64) []float64 {
		if n < 2 {
			n = 2
		}
		out := make([]float64, n)
		la, lb := math.Log(lo), math.Log(hi)
		for i := range out {
			out[i] = math.Exp(la + (lb-la)*float64(i)/float64(n-1))
		}
		return out
	}
	switch p {
	case PanelSCSC, PanelLoadStoreError, PanelSCModeError:
		return logRange(1e-5, 1e-2)
	case PanelCavityT1, PanelTransmonT1:
		return logRange(1e-5, 1e-1)
	case PanelLoadStoreDuration:
		return logRange(1e-7, 1e-4)
	default: // cavity size
		var out []float64
		for k := 2; k <= 30; k += 4 {
			out = append(out, float64(k))
		}
		return out
	}
}

// OperatingPoint returns the §VI baseline: every gate error source at 2e-3
// (below all measured thresholds), Table I durations and coherence times,
// cavity depth 10.
func OperatingPoint() hardware.Params {
	return hardware.Default().ScaledTo(2e-3)
}

// SensitivityPoint is one cell of a Fig. 12 panel.
type SensitivityPoint struct {
	Panel    Panel
	Value    float64
	Distance int
	Result   Result
}

// SensitivityCellConfig is the canonical configuration of one Fig. 12
// panel cell — the single definition shared by the sequential
// SensitivitySweep and the scheduler's job builder, so the two paths
// cannot drift apart: Compact-Interleaved at the §VI operating point with
// the panel's parameter set to value, cavity serialization gaps included.
func SensitivityCellConfig(panel Panel, value float64, d int, trials int, seed int64, dec DecoderKind, opts SweepOptions) (Config, error) {
	params, err := panel.Apply(OperatingPoint(), value)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Scheme:          extract.CompactInterleaved,
		Distance:        d,
		Basis:           extract.BasisZ,
		Params:          params,
		Trials:          trials,
		Seed:            seed + int64(d)*104729 + int64(value*1e9),
		Decoder:         dec,
		ChargeGapIdle:   true,
		TargetFailures:  opts.TargetFailures,
		DisablePipeline: opts.DisablePipeline,
		RareEvent:       opts.RareEvent,
		Boost:           opts.Boost,
		TargetRelErr:    opts.TargetRelErr,
	}, nil
}

// SensitivitySweep runs one panel over the given values and distances on
// Compact-Interleaved (the paper's §VI target: "the most efficient physical
// qubit mapping and subject to a wide variety of errors"), cell by cell
// (see internal/sched for the pooled path). Panels varying only error
// probabilities or coherence times reuse one cached structure per
// distance; panels varying durations or cavity size rebuild per value
// (their circuits genuinely differ).
func (en *Engine) SensitivitySweep(panel Panel, values []float64, distances []int, trials int, seed int64, dec DecoderKind, opts SweepOptions) ([]SensitivityPoint, error) {
	var out []SensitivityPoint
	for _, d := range distances {
		for _, v := range values {
			cfg, err := SensitivityCellConfig(panel, v, d, trials, seed, dec, opts)
			if err != nil {
				return nil, err
			}
			res, err := en.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("sensitivity %v d=%d v=%g: %w", panel, d, v, err)
			}
			out = append(out, SensitivityPoint{Panel: panel, Value: v, Distance: d, Result: res})
		}
	}
	return out, nil
}

// SensitivitySweep runs one Fig. 12 panel on the shared default engine.
func SensitivitySweep(panel Panel, values []float64, distances []int, trials int, seed int64, dec DecoderKind) ([]SensitivityPoint, error) {
	return defaultEngine.SensitivitySweep(panel, values, distances, trials, seed, dec, SweepOptions{})
}

// GateBudgetPerRound is the gate-induced error charged to one data qubit per
// Compact-Interleaved extraction round: two load/stores, three CNOT-class
// gates, and a share of measurement error.
func GateBudgetPerRound(params hardware.Params) float64 {
	return 2*params.PLoadStore + 3*params.PGate2 + params.PMeasure
}

// CavityCrossoverEstimate returns the smallest cavity size k at which the
// cavity-storage error accumulated over the (k-1)-round wait between a
// patch's correction rounds exceeds the given error budget. This is the
// analysis behind the paper's §VI claim that "cavity decoherence error
// starts dominating after cavity size k ~ 150" and that beyond the
// crossover improving cavity T1 beats growing k. The budget is explicit
// because "dominating" depends on the comparison point: against the
// per-round gate budget the crossover is early; against the much higher
// effective threshold for independent storage (space-like) errors it is
// far later — see EXPERIMENTS.md for the measured-vs-paper discussion.
// roundDur is the duration of one extraction round.
func CavityCrossoverEstimate(params hardware.Params, roundDur, budget float64) int {
	for k := 2; k < 1000000; k++ {
		wait := float64(k-1) * roundDur
		if params.LambdaCavity(wait) > budget {
			return k
		}
	}
	return -1
}

// StorageErrorThreshold is the approximate threshold of the surface code
// against independent (space-like) storage errors per cycle, the relevant
// comparison point for cavity idling between correction rounds.
const StorageErrorThreshold = 0.03
