// Package montecarlo estimates logical error rates by sampling detector
// error models and decoding each shot, reproducing the paper's §V threshold
// experiments (Fig. 11) and §VI sensitivity studies (Fig. 12).
//
// Each trial is one round of the experiment defined by internal/extract:
// sample the detector error model, decode the fired detectors, and compare
// the decoder's observable prediction with the sampled truth. The logical
// error rate is failures/trials, with a binomial standard error.
//
// The Engine is the batched production path. It caches the expensive,
// noise-independent halves of a point — the structural circuit build and
// the detector-error-model Structure (with its hoisted decoding-graph
// topology) — in a bounded LRU keyed by extract.StructuralKey, so a
// threshold sweep builds each (scheme, distance) experiment once and merely
// Reweights it per physical rate. Shots are drawn 64 at a time by the
// word-packed dem.BatchSampler and decoded through decoder.BatchDecoder
// with reusable buffers; workers use independent ChaCha8 streams. An
// optional early-stop mode (Config.TargetFailures) ends a point once a
// target failure count is reached.
//
// For deep sub-threshold points, where brute force would see zero failures
// in any affordable budget, Config.RareEvent switches the engine to
// importance sampling: shots are drawn from a boosted proposal model
// (every fault mechanism fires Boost times as often, via
// dem.WeightedBatchSampler) and each shot carries a likelihood-ratio
// weight. Failures accumulate into Result.Weighted (a WeightedResult),
// whose Estimate is unbiased for the true logical rate and which carries
// its own variance, relative standard error, and Kish effective sample
// sizes. Weighted tallies merge across workers, shards, and fabric
// ShardResults in the same deterministic order as the plain counters, so
// rare-event sweeps stay bit-identical at any pool width or shard plan.
// TargetRelErr is the mode's early stop: a point ends once the weighted
// estimate's relative standard error drops below the target. Trust the
// error bar only when WeightedResult.FailESS is at least ~10 — below
// that, too few effective failure observations back the variance
// estimate.
//
// Entry points:
//
//   - Config -> Engine.Run: one point, trials split over parallel workers
//   - Engine.RunOn(cfg, *WorkerState): one point single-threaded with
//     reusable per-worker scratch — the sweep scheduler's per-cell entry;
//     bit-identical to Run with Workers == 1
//   - PlanShards / Engine.RunShardOn / MergeShards: the partial-run API —
//     a fixed decomposition of one point into shard units the scheduler's
//     idle workers steal. Shard i consumes worker stream i, a shared
//     ShardBudget coordinates TargetFailures early stop and abort across
//     shards, and a fully executed plan merges bit-identically to Run
//     with Workers == Shards. PlanShards never splits below the
//     MinShardShots floor, protecting pinned small cells
//   - Engine.ThresholdSweep / Engine.SensitivitySweep: sequential grid
//     runners; ThresholdCellConfig / SensitivityCellConfig are the
//     canonical per-cell configurations shared with internal/sched's job
//     builders, so the pooled and sequential paths cannot drift apart
//   - Engine.CacheStats: structure-cache counters (builds, hits,
//     evictions, entries) — the observability hook behind the serving
//     front end's /v1/stats
//   - RunReference: the retained pre-batching scalar engine, the
//     benchmark baseline and statistical cross-check
//   - EstimateThreshold: interpolates the Fig. 11 crossing point
//
// One Engine is safe for concurrent use and is meant to be long-lived:
// the scheduler (internal/sched) and the HTTP front end (internal/serve)
// both share a single engine across whole workloads.
package montecarlo
