package circuit

import "testing"

func locs(transmons, modes int) []Loc {
	out := make([]Loc, 0, transmons+modes)
	for i := 0; i < transmons; i++ {
		out = append(out, SlotTransmon)
	}
	for i := 0; i < modes; i++ {
		out = append(out, SlotCavityMode)
	}
	return out
}

func TestBuilderBasicFlow(t *testing.T) {
	b := NewBuilder(3, locs(2, 1))
	b.SetOccupied(2) // data resting in the mode

	b.Begin(150e-9)
	b.Load(0, 2, 1e-3)
	b.End(nil)

	b.Begin(200e-9)
	b.Reset(1, 1e-3)
	b.End(nil)

	b.Begin(200e-9)
	b.CNOT(0, 1, 1e-3)
	b.End(nil)

	b.Begin(300e-9)
	idx := b.MeasureZ(1, 1e-3)
	b.End(nil)

	b.Begin(150e-9)
	b.Store(0, 2, 1e-3)
	b.End(nil)

	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 || c.NumMeas != 1 {
		t.Errorf("measurement bookkeeping: idx=%d NumMeas=%d", idx, c.NumMeas)
	}
	if got := c.NumOps(); got != 5 {
		t.Errorf("NumOps = %d, want 5", got)
	}
	if got, want := c.Duration(), 150e-9+200e-9+200e-9+300e-9+150e-9; got != want {
		t.Errorf("Duration = %g, want %g", got, want)
	}
	if c.CountKind(OpLoad) != 1 || c.CountKind(OpStore) != 1 {
		t.Error("load/store counts wrong")
	}
}

func TestBuilderIdleAnnotation(t *testing.T) {
	b := NewBuilder(4, locs(2, 2))
	b.SetOccupied(2)
	b.SetOccupied(3)

	b.Begin(150e-9)
	b.Load(0, 2, 1e-3)
	b.End(func(slot int, loc Loc, dur float64) float64 {
		if loc != SlotCavityMode {
			t.Errorf("only the resting mode should idle, got slot %d (%v)", slot, loc)
		}
		return 1e-4
	})
	c, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Slot 3 (occupied mode, untouched) idles; slots 0 and 2 were touched by
	// the load; slot 1 is empty.
	idles := 0
	for _, op := range c.Moments[0].Ops {
		if op.Kind == OpIdle {
			idles++
			if op.A != 3 {
				t.Errorf("idle landed on slot %d, want 3", op.A)
			}
		}
	}
	if idles != 1 {
		t.Errorf("%d idle ops, want 1", idles)
	}
}

func TestBuilderRejectsDoubleUse(t *testing.T) {
	b := NewBuilder(2, locs(2, 0))
	b.Begin(1)
	b.Reset(0, 0)
	b.Reset(0, 0)
	b.End(nil)
	if _, err := b.Finish(); err == nil {
		t.Error("double use of a slot in one moment must fail")
	}
}

func TestBuilderRejectsBadLoads(t *testing.T) {
	// Load from an empty mode.
	b := NewBuilder(2, locs(1, 1))
	b.Begin(1)
	b.Load(0, 1, 0)
	b.End(nil)
	if _, err := b.Finish(); err == nil {
		t.Error("load from empty mode must fail")
	}

	// Load into an occupied transmon.
	b = NewBuilder(2, locs(1, 1))
	b.SetOccupied(0)
	b.SetOccupied(1)
	b.Begin(1)
	b.Load(0, 1, 0)
	b.End(nil)
	if _, err := b.Finish(); err == nil {
		t.Error("load into occupied transmon must fail")
	}

	// Load with swapped slot kinds.
	b = NewBuilder(2, locs(1, 1))
	b.SetOccupied(0)
	b.Begin(1)
	b.Load(1, 0, 0)
	b.End(nil)
	if _, err := b.Finish(); err == nil {
		t.Error("load with (mode, transmon) arguments must fail")
	}
}

func TestBuilderRejectsOpsOutsideMoments(t *testing.T) {
	b := NewBuilder(1, locs(1, 0))
	b.Reset(0, 0)
	if _, err := b.Finish(); err == nil {
		t.Error("op outside a moment must fail")
	}
}

func TestBuilderRejectsUnfinishedMoment(t *testing.T) {
	b := NewBuilder(1, locs(1, 0))
	b.Begin(1)
	if _, err := b.Finish(); err == nil {
		t.Error("Finish inside an open moment must fail")
	}
}

func TestBuilderRejectsGateOnEmptySlot(t *testing.T) {
	b := NewBuilder(2, locs(2, 0))
	b.Begin(1)
	b.H(0, 0)
	b.End(nil)
	if _, err := b.Finish(); err == nil {
		t.Error("H on unoccupied slot must fail")
	}
}

func TestBuilderCNOTSelfLoop(t *testing.T) {
	b := NewBuilder(2, locs(2, 0))
	b.Begin(1)
	b.Reset(0, 0)
	b.End(nil)
	b.Begin(1)
	b.CNOT(0, 0, 0)
	b.End(nil)
	if _, err := b.Finish(); err == nil {
		t.Error("CNOT with control == target must fail")
	}
}
