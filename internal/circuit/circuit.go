// Package circuit provides the gate-level intermediate representation shared
// by the syndrome-extraction generators (internal/extract), the Pauli-frame
// sampler (internal/pframe), and the detector-error-model builder
// (internal/dem).
//
// A Circuit is a sequence of Moments. Each Moment has a wall-clock duration
// and a set of operations on disjoint qubit slots. Slots are fixed physical
// sites — transmons or cavity modes — and carry a location tag so idle
// (storage) noise can use the right coherence time. Noise is explicit: every
// op carries its own Pauli error probability, and idle channels are
// materialized as OpIdle operations when a moment is sealed, based on which
// occupied slots the moment left untouched. This makes the circuit the
// single source of truth for both Monte-Carlo sampling and fault
// enumeration.
package circuit

import "fmt"

// Loc tags what kind of physical site a slot is.
type Loc uint8

// Slot locations.
const (
	SlotTransmon Loc = iota
	SlotCavityMode
)

func (l Loc) String() string {
	if l == SlotTransmon {
		return "transmon"
	}
	return "cavity-mode"
}

// OpKind enumerates the operations of the syndrome-extraction instruction
// set.
type OpKind uint8

// Operation kinds. Load and Store are the iSWAP-mediated transfers between
// a transmon and one mode of its attached cavity (§II-C); their noise is a
// two-qubit depolarizing channel on the (transmon, mode) pair.
const (
	OpReset    OpKind = iota // A: reset transmon to |0> (X error with prob P after)
	OpH                      // A: Hadamard (1q depolarizing P)
	OpCNOT                   // A=control, B=target (2q depolarizing P)
	OpLoad                   // A=transmon, B=cavity mode; mode -> transmon
	OpStore                  // A=transmon, B=cavity mode; transmon -> mode
	OpMeasureZ               // A: Z-basis measurement, record flip prob P
	OpIdle                   // A: storage error (1q uniform-Pauli channel, prob P)
)

func (k OpKind) String() string {
	switch k {
	case OpReset:
		return "R"
	case OpH:
		return "H"
	case OpCNOT:
		return "CNOT"
	case OpLoad:
		return "L"
	case OpStore:
		return "S"
	case OpMeasureZ:
		return "M"
	default:
		return "I"
	}
}

// TwoQubit reports whether the op kind acts on two slots.
func (k OpKind) TwoQubit() bool {
	return k == OpCNOT || k == OpLoad || k == OpStore
}

// Op is one operation. MeasIdx is the measurement record index for
// OpMeasureZ ops and -1 otherwise.
type Op struct {
	Kind    OpKind
	A, B    int
	P       float64
	MeasIdx int
}

// Moment is one parallel layer of operations with a common duration.
type Moment struct {
	Duration float64
	Ops      []Op
}

// Circuit is a finished schedule plus slot metadata.
type Circuit struct {
	NumSlots int
	SlotLoc  []Loc
	Moments  []Moment
	NumMeas  int
}

// Duration returns the total wall-clock time of the circuit.
func (c *Circuit) Duration() float64 {
	t := 0.0
	for i := range c.Moments {
		t += c.Moments[i].Duration
	}
	return t
}

// CountKind returns the number of ops of kind k.
func (c *Circuit) CountKind(k OpKind) int {
	n := 0
	for i := range c.Moments {
		for _, op := range c.Moments[i].Ops {
			if op.Kind == k {
				n++
			}
		}
	}
	return n
}

// NumOps returns the total operation count.
func (c *Circuit) NumOps() int {
	n := 0
	for i := range c.Moments {
		n += len(c.Moments[i].Ops)
	}
	return n
}

// OpProbs gathers every op's error probability in global op order (moments
// in sequence, ops within each moment), appending to dst. The global op
// index is the shared coordinate system between a circuit's noise
// annotation and the structural fault model built from it (internal/dem).
func (c *Circuit) OpProbs(dst []float64) []float64 {
	for i := range c.Moments {
		for j := range c.Moments[i].Ops {
			dst = append(dst, c.Moments[i].Ops[j].P)
		}
	}
	return dst
}

// SetOpProbs overwrites every op's error probability from ps, indexed in
// global op order. len(ps) must equal NumOps.
func (c *Circuit) SetOpProbs(ps []float64) error {
	if len(ps) != c.NumOps() {
		return fmt.Errorf("circuit: SetOpProbs got %d probabilities for %d ops", len(ps), c.NumOps())
	}
	k := 0
	for i := range c.Moments {
		for j := range c.Moments[i].Ops {
			c.Moments[i].Ops[j].P = ps[k]
			k++
		}
	}
	return nil
}

// Builder assembles a Circuit moment by moment, tracking slot occupancy so
// idle noise lands only on slots that actually hold a qubit, and validating
// that no slot is used twice within a moment.
type Builder struct {
	c        Circuit
	occupied []bool
	inMoment bool
	touched  map[int]bool
	err      error
}

// NewBuilder returns a builder over n slots with the given locations.
// All slots start unoccupied; occupy slots with Reset, Load, or SetOccupied.
func NewBuilder(n int, locs []Loc) *Builder {
	if len(locs) != n {
		panic("circuit: slot location list length mismatch")
	}
	return &Builder{
		c: Circuit{
			NumSlots: n,
			SlotLoc:  append([]Loc(nil), locs...),
		},
		occupied: make([]bool, n),
		touched:  make(map[int]bool),
	}
}

// SetOccupied marks slot q as holding a qubit without emitting an op (used
// for perfectly-prepared initial states).
func (b *Builder) SetOccupied(q int) { b.occupied[q] = true }

// Occupied reports whether slot q currently holds a qubit.
func (b *Builder) Occupied(q int) bool { return b.occupied[q] }

func (b *Builder) setErr(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("circuit: "+format, args...)
	}
}

// Begin opens a new moment with the given duration. Moments must be closed
// with End before the next Begin.
func (b *Builder) Begin(duration float64) {
	if b.inMoment {
		b.setErr("Begin called inside an open moment")
		return
	}
	b.inMoment = true
	b.c.Moments = append(b.c.Moments, Moment{Duration: duration})
	clear(b.touched)
}

func (b *Builder) add(op Op) {
	if !b.inMoment {
		b.setErr("op %v outside a moment", op.Kind)
		return
	}
	for _, q := range []int{op.A, op.B} {
		if q < 0 || q >= b.c.NumSlots {
			b.setErr("slot %d out of range", q)
			return
		}
		if b.touched[q] {
			b.setErr("slot %d used twice in one moment", q)
			return
		}
	}
	b.touched[op.A] = true
	if op.Kind.TwoQubit() {
		b.touched[op.B] = true
	}
	m := &b.c.Moments[len(b.c.Moments)-1]
	m.Ops = append(m.Ops, op)
}

// Reset emits a transmon reset on q with post-reset bit-flip probability p.
func (b *Builder) Reset(q int, p float64) {
	b.add(Op{Kind: OpReset, A: q, B: q, P: p, MeasIdx: -1})
	b.occupied[q] = true
}

// H emits a Hadamard on q.
func (b *Builder) H(q int, p float64) {
	if !b.occupied[q] {
		b.setErr("H on unoccupied slot %d", q)
	}
	b.add(Op{Kind: OpH, A: q, B: q, P: p, MeasIdx: -1})
}

// CNOT emits a controlled-NOT (control c, target t).
func (b *Builder) CNOT(c, t int, p float64) {
	if c == t {
		b.setErr("CNOT control equals target (%d)", c)
		return
	}
	if !b.occupied[c] || !b.occupied[t] {
		b.setErr("CNOT on unoccupied slot (%d,%d)", c, t)
	}
	b.add(Op{Kind: OpCNOT, A: c, B: t, P: p, MeasIdx: -1})
}

// Load moves the qubit stored in cavity mode m into transmon t.
func (b *Builder) Load(t, m int, p float64) {
	if b.c.SlotLoc[t] != SlotTransmon || b.c.SlotLoc[m] != SlotCavityMode {
		b.setErr("Load wants (transmon, mode), got (%v, %v)", b.c.SlotLoc[t], b.c.SlotLoc[m])
		return
	}
	if !b.occupied[m] {
		b.setErr("Load from empty mode %d", m)
	}
	if b.occupied[t] {
		b.setErr("Load into occupied transmon %d", t)
	}
	b.add(Op{Kind: OpLoad, A: t, B: m, P: p, MeasIdx: -1})
	b.occupied[t], b.occupied[m] = true, false
}

// Store moves the qubit in transmon t back into cavity mode m.
func (b *Builder) Store(t, m int, p float64) {
	if b.c.SlotLoc[t] != SlotTransmon || b.c.SlotLoc[m] != SlotCavityMode {
		b.setErr("Store wants (transmon, mode), got (%v, %v)", b.c.SlotLoc[t], b.c.SlotLoc[m])
		return
	}
	if !b.occupied[t] {
		b.setErr("Store from empty transmon %d", t)
	}
	if b.occupied[m] {
		b.setErr("Store into occupied mode %d", m)
	}
	b.add(Op{Kind: OpStore, A: t, B: m, P: p, MeasIdx: -1})
	b.occupied[t], b.occupied[m] = false, true
}

// MeasureZ emits a Z-basis measurement of q with record-flip probability p
// and returns the measurement index.
func (b *Builder) MeasureZ(q int, p float64) int {
	if !b.occupied[q] {
		b.setErr("measurement of unoccupied slot %d", q)
	}
	idx := b.c.NumMeas
	b.add(Op{Kind: OpMeasureZ, A: q, B: q, P: p, MeasIdx: idx})
	b.c.NumMeas++
	return idx
}

// Discard marks slot q as no longer holding a qubit, without emitting an op.
// Used after ancilla measurements: the outcome is recorded classically and
// the transmon's post-measurement state is abandoned (it will be reset, or
// re-initialized by the next load, before reuse). Discarded slots stop
// accruing idle noise.
func (b *Builder) Discard(q int) {
	if q < 0 || q >= b.c.NumSlots {
		b.setErr("Discard of slot %d out of range", q)
		return
	}
	b.occupied[q] = false
}

// End seals the current moment. idleProb, if non-nil, is consulted for every
// occupied slot the moment did not touch; any positive-duration moment emits
// an OpIdle with the returned probability (even a zero one, so the circuit's
// op structure depends only on durations, never on how small a coherence
// time makes the idle error — zero-probability ops are inert everywhere).
func (b *Builder) End(idleProb func(slot int, loc Loc, dur float64) float64) {
	if !b.inMoment {
		b.setErr("End without Begin")
		return
	}
	m := &b.c.Moments[len(b.c.Moments)-1]
	if idleProb != nil {
		for q := 0; q < b.c.NumSlots; q++ {
			if !b.occupied[q] || b.touched[q] {
				continue
			}
			if p := idleProb(q, b.c.SlotLoc[q], m.Duration); p > 0 || m.Duration > 0 {
				m.Ops = append(m.Ops, Op{Kind: OpIdle, A: q, B: q, P: p, MeasIdx: -1})
			}
		}
	}
	b.inMoment = false
}

// Finish returns the built circuit or the first construction error.
func (b *Builder) Finish() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.inMoment {
		return nil, fmt.Errorf("circuit: Finish with an open moment")
	}
	c := b.c
	return &c, nil
}
