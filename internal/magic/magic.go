// Package magic models T-state distillation throughput and footprint for
// the three protocols compared in §VII: Fast Lattice (Litinski 2019,
// "Magic state distillation: not as costly as you think"), Small Lattice
// (Litinski, "A game of surface codes"), and the paper's VQubits protocol,
// which runs the 15-to-1 Bravyi–Haah circuit on a single patch of transmons
// with six logical qubits virtualized in the attached cavities, using
// transversal CNOTs.
//
// It reproduces Fig. 13 (generation rate with 100 patches; patches needed
// for one T state per timestep) and Table II (transmon/cavity/total qubit
// costs at d=5, k=10), and includes a mechanism-level scheduler that runs
// the 15-to-1 dataflow on the core VLQ machine as a cross-check.
package magic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/layout"
)

// Protocol describes one distillation protocol's steady-state pipeline: one
// block of PatchesPerBlock surface-code patches produces TsPerBatch T states
// every StepsPerBatch timesteps.
type Protocol struct {
	Name            string
	PatchesPerBlock int
	StepsPerBatch   int
	TsPerBatch      int
	// Embedding is the hardware the block runs on: Baseline2D for the
	// lattice protocols, Natural or Compact for VQubits.
	Embedding layout.EmbeddingKind
}

// The paper's §VII protocol constants.
var (
	// FastLattice produces a T state every 6 timesteps from 30 patches.
	FastLattice = Protocol{Name: "Fast [21]", PatchesPerBlock: 30, StepsPerBatch: 6, TsPerBatch: 1, Embedding: layout.Baseline2D}
	// SmallLattice produces a T state every 11 timesteps from 11 patches.
	SmallLattice = Protocol{Name: "Small [12]", PatchesPerBlock: 11, StepsPerBatch: 11, TsPerBatch: 1, Embedding: layout.Baseline2D}
	// VQubitsSolo runs one 15-to-1 circuit on a single patch of transmons
	// with 6 logical qubits in its cavities: 110 timesteps per T state.
	VQubitsSolo = Protocol{Name: "VQubits (solo)", PatchesPerBlock: 1, StepsPerBatch: 110, TsPerBatch: 1, Embedding: layout.Natural}
	// VQubits runs pairs of circuits in lock-step: 99 timesteps per 2 T
	// states on 2 patches.
	VQubits = Protocol{Name: "VQubits", PatchesPerBlock: 2, StepsPerBatch: 99, TsPerBatch: 2, Embedding: layout.Natural}
)

// Protocols lists the Fig. 13 contenders.
var Protocols = []Protocol{FastLattice, SmallLattice, VQubits}

// RatePerPatch is the steady-state T states per timestep per patch.
func (p Protocol) RatePerPatch() float64 {
	return float64(p.TsPerBatch) / float64(p.StepsPerBatch) / float64(p.PatchesPerBlock)
}

// RateWithPatches is the Fig. 13a quantity: T states per timestep when
// budget patches are filled with copies of the protocol (fractional blocks
// count proportionally, as in the paper's normalization).
func (p Protocol) RateWithPatches(budget int) float64 {
	return float64(budget) * p.RatePerPatch()
}

// PatchesForOneTPerStep is the Fig. 13b quantity: the space, in patches,
// needed to produce one T state per timestep.
func (p Protocol) PatchesForOneTPerStep() float64 {
	return 1 / p.RatePerPatch()
}

// Resources returns the hardware cost of one block at distance d with
// cavity depth k — the Table II rows. Lattice protocols occupy a contiguous
// 2D region (2*n*d^2 - 1 transmons); VQubits occupies one patch of the
// memory embedding per block member.
func (p Protocol) Resources(d, k int) layout.Resources {
	if p.Embedding == layout.Baseline2D {
		return layout.Baseline2DPatchesResources(p.PatchesPerBlock, d)
	}
	per := layout.EmbeddingResources(p.Embedding, d, k)
	return layout.Resources{
		Transmons:     per.Transmons * p.PatchesPerBlock,
		Cavities:      per.Cavities * p.PatchesPerBlock,
		CavityDepth:   k,
		LogicalQubits: per.LogicalQubits * p.PatchesPerBlock,
	}
}

// WithEmbedding returns a copy of p running on a different memory
// embedding (used for the VQubits natural-vs-compact rows of Table II).
func (p Protocol) WithEmbedding(kind layout.EmbeddingKind, name string) Protocol {
	p.Embedding = kind
	p.Name = name
	return p
}

// SpeedupOver returns the rate ratio of p over q at equal patch budgets.
func (p Protocol) SpeedupOver(q Protocol) float64 {
	return p.RatePerPatch() / q.RatePerPatch()
}

// Distill15to1Counts is the §VII operation inventory of one 15-to-1 circuit.
type Distill15to1Counts struct {
	Initializations int // 16
	CNOTs           int // 35
	Measurements    int // 15
}

// Circuit15to1Counts returns the paper's stated operation counts.
func Circuit15to1Counts() Distill15to1Counts {
	return Distill15to1Counts{Initializations: 16, CNOTs: 35, Measurements: 15}
}

// ScheduleEstimate is the result of running the 15-to-1 dataflow on the VLQ
// machine.
type ScheduleEstimate struct {
	Timesteps int
	Stats     core.Stats
}

// EstimateVQubitsSchedule executes the 15-to-1 dataflow on a single-stack
// VLQ machine (6 virtualized logical qubits: one accumulating output plus
// five work qubits time-multiplexing the 15 magic-state injections), using
// transversal CNOTs throughout. It demonstrates the mechanism behind the
// VQubitsSolo constant; the paper's 110-step figure additionally charges
// per-step surgery details of the authors' schedule, so the estimate here
// is a lower-bound-flavored cross-check, not a replacement for the
// published constant (see EXPERIMENTS.md).
func EstimateVQubitsSchedule(params hardware.Params, d int) (ScheduleEstimate, error) {
	m, err := core.New(core.Config{
		Rows: 1, Cols: 1, Distance: d,
		Embedding: layout.Natural,
		Params:    params,
	})
	if err != nil {
		return ScheduleEstimate{}, err
	}
	counts := Circuit15to1Counts()
	// 16 initializations: the accumulating output plus 15 noisy T states.
	// Each work-qubit allocation below *is* one noisy-T preparation — the
	// five cavity slots are time-multiplexed across three rounds of five.
	out, err := m.Alloc("out")
	if err != nil {
		return ScheduleEstimate{}, err
	}
	tPreps := 0
	work := make([]core.QubitID, 5)
	for i := range work {
		if work[i], err = m.Alloc(fmt.Sprintf("t%d", tPreps)); err != nil {
			return ScheduleEstimate{}, err
		}
		tPreps++
	}
	cnots := 0
	meas := 0
	for round := 0; round < counts.Measurements/len(work); round++ {
		for i := range work {
			// Fold the noisy T into the accumulator (2-3 CNOTs in the real
			// circuit; scheduled here until the budget of 35 is spent).
			for c := 0; c < 3 && cnots < counts.CNOTs; c++ {
				if err := m.CNOTTransversal(work[i], out); err != nil {
					return ScheduleEstimate{}, err
				}
				cnots++
			}
			if err := m.MeasureZ(work[i]); err != nil {
				return ScheduleEstimate{}, err
			}
			meas++
			if tPreps < counts.Measurements {
				if work[i], err = m.Alloc(fmt.Sprintf("t%d", tPreps)); err != nil {
					return ScheduleEstimate{}, err
				}
				tPreps++
			}
		}
	}
	if cnots != counts.CNOTs || meas != counts.Measurements {
		return ScheduleEstimate{}, fmt.Errorf("magic: schedule ran %d CNOTs and %d measurements, want %d and %d",
			cnots, meas, counts.CNOTs, counts.Measurements)
	}
	if got := 1 + tPreps; got != counts.Initializations {
		return ScheduleEstimate{}, fmt.Errorf("magic: scheduler used %d inits, circuit has %d", got, counts.Initializations)
	}
	return ScheduleEstimate{Timesteps: m.Clock(), Stats: m.Stats()}, nil
}
