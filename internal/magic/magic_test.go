package magic

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/layout"
)

// Fig. 13a: with 100 patches, Fast produces ~0.56, Small ~0.83, and VQubits
// ~1.01 T states per timestep — 1.82x and 1.22x in VQubits' favor.
func TestFigure13aRates(t *testing.T) {
	fast := FastLattice.RateWithPatches(100)
	small := SmallLattice.RateWithPatches(100)
	vq := VQubits.RateWithPatches(100)

	if math.Abs(fast-100.0/30.0/6.0) > 1e-12 {
		t.Errorf("fast rate = %v", fast)
	}
	if math.Abs(small-100.0/11.0/11.0) > 1e-12 {
		t.Errorf("small rate = %v", small)
	}
	if math.Abs(vq-100.0/99.0) > 1e-12 {
		t.Errorf("vqubits rate = %v", vq)
	}

	if r := vq / fast; math.Abs(r-1.82) > 0.01 {
		t.Errorf("VQubits/Fast = %.3f, paper says 1.82x", r)
	}
	if r := vq / small; math.Abs(r-1.22) > 0.01 {
		t.Errorf("VQubits/Small = %.3f, paper says 1.22x", r)
	}
}

// Fig. 13b: space to get one T state per timestep.
func TestFigure13bSpace(t *testing.T) {
	if got := FastLattice.PatchesForOneTPerStep(); math.Abs(got-180) > 1e-9 {
		t.Errorf("fast space = %v, want 180", got)
	}
	if got := SmallLattice.PatchesForOneTPerStep(); math.Abs(got-121) > 1e-9 {
		t.Errorf("small space = %v, want 121", got)
	}
	if got := VQubits.PatchesForOneTPerStep(); math.Abs(got-99) > 1e-9 {
		t.Errorf("vqubits space = %v, want 99", got)
	}
}

// Table II at d=5, k=10.
func TestTableII(t *testing.T) {
	d, k := 5, 10

	fast := FastLattice.Resources(d, k)
	if fast.Transmons != 1499 || fast.TotalQubits() != 1499 {
		t.Errorf("Fast Lattice: %+v", fast)
	}
	small := SmallLattice.Resources(d, k)
	if small.Transmons != 549 {
		t.Errorf("Small Lattice: %+v", small)
	}

	// Table II lists the single-patch VQubits footprint.
	natural := VQubitsSolo.Resources(d, k)
	if natural.Transmons != 49 || natural.Cavities != 25 || natural.TotalQubits() != 299 {
		t.Errorf("VQubits natural: transmons=%d cavities=%d total=%d, want 49/25/299",
			natural.Transmons, natural.Cavities, natural.TotalQubits())
	}
	compact := VQubitsSolo.WithEmbedding(layout.Compact, "VQubits (compact)").Resources(d, k)
	if compact.Transmons != 29 || compact.Cavities != 25 || compact.TotalQubits() != 279 {
		t.Errorf("VQubits compact: transmons=%d cavities=%d total=%d, want 29/25/279",
			compact.Transmons, compact.Cavities, compact.TotalQubits())
	}
}

func TestSoloVsPairConsistency(t *testing.T) {
	// Lock-step pairs beat two independent solo circuits.
	if 2*VQubits.RatePerPatch() <= 2*VQubitsSolo.RatePerPatch() {
		t.Error("pairs must outperform solo circuits")
	}
	if VQubits.SpeedupOver(VQubitsSolo) <= 1 {
		t.Error("speedup accounting inverted")
	}
}

func TestCircuitCounts(t *testing.T) {
	c := Circuit15to1Counts()
	if c.Initializations != 16 || c.CNOTs != 35 || c.Measurements != 15 {
		t.Errorf("15-to-1 counts %+v do not match §VII", c)
	}
}

// The mechanism-level schedule on the VLQ machine must complete the full
// operation inventory in an order-of-magnitude-compatible number of
// timesteps (the paper reports 110 for its hand-scheduled version).
func TestEstimateVQubitsSchedule(t *testing.T) {
	est, err := EstimateVQubitsSchedule(hardware.Default(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.Stats.TransversalCNOTs != 35 {
		t.Errorf("schedule ran %d transversal CNOTs, want 35", est.Stats.TransversalCNOTs)
	}
	if est.Stats.Measurements != 15 {
		t.Errorf("schedule ran %d measurements, want 15", est.Stats.Measurements)
	}
	if est.Stats.Preparations != 16 {
		t.Errorf("schedule ran %d initializations, want 16", est.Stats.Preparations)
	}
	if est.Timesteps < 35 || est.Timesteps > 220 {
		t.Errorf("schedule took %d timesteps; implausible vs the paper's 110", est.Timesteps)
	}
	if est.Stats.MaxStalenessSeen > hardware.Default().CavityDepth+6 {
		t.Errorf("refresh deadline violated during distillation: %d", est.Stats.MaxStalenessSeen)
	}
}
