package stab

import (
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

func expectOp(t *testing.T, tab *Tableau, op string, want ExpectationSign) {
	t.Helper()
	s, ok := pauli.ParseStr(op)
	if !ok {
		t.Fatalf("bad op %q", op)
	}
	if got := tab.Expectation(s); got != want {
		t.Errorf("<%s> = %v, want %v", op, got, want)
	}
}

func TestInitialState(t *testing.T) {
	tab := New(3)
	expectOp(t, tab, "ZII", ExpPlus)
	expectOp(t, tab, "IZI", ExpPlus)
	expectOp(t, tab, "ZZZ", ExpPlus)
	expectOp(t, tab, "XII", ExpZero)
	out, random := tab.MeasureZ(0, nil)
	if out != 0 || random {
		t.Errorf("measuring |0>: got (%d,%v)", out, random)
	}
}

func TestBellPair(t *testing.T) {
	tab := New(2)
	tab.H(0)
	tab.CNOT(0, 1)
	expectOp(t, tab, "XX", ExpPlus)
	expectOp(t, tab, "ZZ", ExpPlus)
	expectOp(t, tab, "YY", ExpMinus)
	expectOp(t, tab, "ZI", ExpZero)

	// Measuring both qubits must give correlated outcomes.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		b := New(2)
		b.H(0)
		b.CNOT(0, 1)
		o1, r1 := b.MeasureZ(0, rng)
		o2, r2 := b.MeasureZ(1, rng)
		if !r1 || r2 {
			t.Fatalf("expected first outcome random, second deterministic; got %v %v", r1, r2)
		}
		if o1 != o2 {
			t.Fatalf("Bell pair outcomes disagree: %d vs %d", o1, o2)
		}
	}
}

func TestPauliGatesFlipSigns(t *testing.T) {
	tab := New(1)
	tab.X(0)
	expectOp(t, tab, "Z", ExpMinus)
	tab.X(0)
	expectOp(t, tab, "Z", ExpPlus)

	tab.H(0) // |+>
	expectOp(t, tab, "X", ExpPlus)
	tab.Z(0) // |->
	expectOp(t, tab, "X", ExpMinus)
	tab.Y(0) // Y|-> ~ |+>
	expectOp(t, tab, "X", ExpPlus)
}

func TestSGate(t *testing.T) {
	tab := New(1)
	tab.H(0) // |+>
	tab.S(0) // |+i>
	expectOp(t, tab, "Y", ExpPlus)
	tab.S(0) // S^2 = Z: back to |->
	expectOp(t, tab, "X", ExpMinus)
}

func TestSWAP(t *testing.T) {
	tab := New(2)
	tab.X(0) // |10>
	tab.SWAP(0, 1)
	expectOp(t, tab, "ZI", ExpPlus)
	expectOp(t, tab, "IZ", ExpMinus)
}

func TestGHZ(t *testing.T) {
	n := 5
	tab := New(n)
	tab.H(0)
	for i := 1; i < n; i++ {
		tab.CNOT(0, i)
	}
	expectOp(t, tab, "XXXXX", ExpPlus)
	expectOp(t, tab, "ZZIII", ExpPlus)
	expectOp(t, tab, "ZIIIZ", ExpPlus)
	expectOp(t, tab, "ZIIII", ExpZero)
	// All Z outcomes of a GHZ state must be equal (00000 or 11111).
	rng := rand.New(rand.NewSource(3))
	sawOne := false
	for rep := 0; rep < 30; rep++ {
		g := New(n)
		g.H(0)
		for i := 1; i < n; i++ {
			g.CNOT(0, i)
		}
		first, random := g.MeasureZ(0, rng)
		if !random {
			t.Fatal("first GHZ measurement must be random")
		}
		for q := 1; q < n; q++ {
			o, r := g.MeasureZ(q, rng)
			if r {
				t.Fatal("subsequent GHZ measurements must be deterministic")
			}
			if o != first {
				t.Fatalf("GHZ outcomes differ: qubit %d gave %d, first gave %d", q, o, first)
			}
		}
		if first == 1 {
			sawOne = true
		}
	}
	if !sawOne {
		t.Error("GHZ never collapsed to |1...1> in 30 tries; rng plumbing suspect")
	}
}

func TestMeasureZForced(t *testing.T) {
	tab := New(1)
	tab.H(0)
	if err := tab.MeasureZForced(0, 1); err != nil {
		t.Fatalf("forcing random outcome: %v", err)
	}
	expectOp(t, tab, "Z", ExpMinus)
	// Now deterministic: forcing the wrong value must error.
	if err := tab.MeasureZForced(0, 0); err == nil {
		t.Fatal("forcing contradictory deterministic outcome must fail")
	}
	if err := tab.MeasureZForced(0, 1); err != nil {
		t.Fatalf("forcing the actual deterministic outcome: %v", err)
	}
}

func TestReset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := New(2)
	tab.H(0)
	tab.CNOT(0, 1)
	tab.Reset(0, rng)
	expectOp(t, tab, "ZI", ExpPlus)
}

// Repetition-code style check: measuring the same commuting parity twice must
// agree (quiescence at the tableau level).
func TestParityMeasurementRepeatability(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for rep := 0; rep < 25; rep++ {
		// 3 data + 1 ancilla; random data state via random Cliffords.
		tab := New(4)
		for g := 0; g < 30; g++ {
			switch rng.Intn(3) {
			case 0:
				tab.H(rng.Intn(3))
			case 1:
				tab.S(rng.Intn(3))
			case 2:
				a, b := rng.Intn(3), rng.Intn(3)
				if a != b {
					tab.CNOT(a, b)
				}
			}
		}
		measure := func() byte {
			tab.Reset(3, rng)
			tab.CNOT(0, 3)
			tab.CNOT(1, 3)
			out, _ := tab.MeasureZ(3, rng)
			return out
		}
		first := measure()
		for i := 0; i < 3; i++ {
			if got := measure(); got != first {
				t.Fatalf("rep %d: parity changed from %d to %d", rep, first, got)
			}
		}
	}
}

// Frame-vs-tableau consistency: injecting a Pauli error before a measurement
// flips the tableau outcome exactly when the frame predicts it.
func TestFramePredictionMatchesTableau(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for rep := 0; rep < 50; rep++ {
		n := 4
		// Build a random Clifford circuit as a gate list.
		type gate struct{ kind, a, b int }
		var gates []gate
		for g := 0; g < 15; g++ {
			switch rng.Intn(3) {
			case 0:
				gates = append(gates, gate{0, rng.Intn(n), 0})
			case 1:
				gates = append(gates, gate{1, rng.Intn(n), 0})
			case 2:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					gates = append(gates, gate{2, a, b})
				}
			}
		}
		errQ, errP := rng.Intn(n), pauli.All[rng.Intn(3)]

		run := func(inject bool) byte {
			tab := New(n)
			// Fixed preparation so outcomes are deterministic: |0..0>.
			if inject {
				tab.ApplyPauli(errQ, errP)
			}
			for _, g := range gates {
				switch g.kind {
				case 0:
					tab.H(g.a)
				case 1:
					tab.S(g.a)
				case 2:
					tab.CNOT(g.a, g.b)
				}
			}
			out, random := tab.MeasureZ(0, rand.New(rand.NewSource(99)))
			if random {
				return 2 // marker: skip random cases
			}
			return out
		}
		clean := run(false)
		dirty := run(true)
		if clean == 2 || dirty == 2 {
			continue
		}
		// Frame prediction.
		f := pauli.NewFrame(n)
		f.Inject(errQ, errP)
		for _, g := range gates {
			switch g.kind {
			case 0:
				f.H(g.a)
			case 1:
				f.S(g.a)
			case 2:
				f.CNOT(g.a, g.b)
			}
		}
		wantFlip := f.XBit(0)
		if (clean != dirty) != wantFlip {
			t.Fatalf("rep %d: frame predicts flip=%v, tableau says %d->%d", rep, wantFlip, clean, dirty)
		}
	}
}

func TestStabilizerRow(t *testing.T) {
	tab := New(2)
	tab.H(0)
	tab.CNOT(0, 1)
	// The stabilizer group of a Bell pair is generated by XX and ZZ; check
	// the rows generate it (each row must commute with both and be nontrivial).
	xx, _ := pauli.ParseStr("XX")
	zz, _ := pauli.ParseStr("ZZ")
	for i := 0; i < 2; i++ {
		row, _ := tab.StabilizerRow(i)
		if row.IsIdentity() {
			t.Fatal("stabilizer row is identity")
		}
		if !row.Commutes(xx) || !row.Commutes(zz) {
			t.Fatalf("stabilizer row %v does not commute with group", row)
		}
	}
}
