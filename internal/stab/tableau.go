// Package stab implements an exact stabilizer-state simulator using the
// Aaronson–Gottesman tableau representation (arXiv:quant-ph/0406196).
//
// The simulator tracks n-qubit stabilizer states through Clifford gates and
// Pauli measurements with full sign bookkeeping. It is the repository's
// ground-truth oracle: syndrome-extraction circuits are checked against it
// for quiescence (repeated extraction yields repeated outcomes), and the
// transversal CNOT of the 2.5D architecture is verified against the ideal
// logical CNOT by process tomography (internal/tomo).
package stab

import (
	"fmt"
	"math/rand"

	"repro/internal/pauli"
)

// Tableau is a stabilizer state on n qubits. Rows 0..n-1 are destabilizer
// generators, rows n..2n-1 are stabilizer generators. The initial state is
// |0...0>: destabilizers X_i, stabilizers Z_i.
type Tableau struct {
	n  int
	nw int // words per row half (x or z block)
	// Row i occupies x[i*nw:(i+1)*nw] and z[i*nw:(i+1)*nw]. There is one
	// extra scratch row at index 2n used by measurement and expectation.
	x, z []uint64
	r    []uint8 // sign bit per row (0 => +1, 1 => -1)
}

// New returns the tableau for |0>^n.
func New(n int) *Tableau {
	if n <= 0 {
		panic("stab: qubit count must be positive")
	}
	nw := (n + 63) / 64
	t := &Tableau{
		n:  n,
		nw: nw,
		x:  make([]uint64, (2*n+1)*nw),
		z:  make([]uint64, (2*n+1)*nw),
		r:  make([]uint8, 2*n+1),
	}
	for i := 0; i < n; i++ {
		t.setX(i, i, true)   // destabilizer i = X_i
		t.setZ(n+i, i, true) // stabilizer i = Z_i
	}
	return t
}

// N returns the number of qubits.
func (t *Tableau) N() int { return t.n }

func (t *Tableau) xbit(row, q int) bool { return t.x[row*t.nw+q/64]>>(uint(q)%64)&1 != 0 }
func (t *Tableau) zbit(row, q int) bool { return t.z[row*t.nw+q/64]>>(uint(q)%64)&1 != 0 }

func (t *Tableau) setX(row, q int, v bool) {
	idx, m := row*t.nw+q/64, uint64(1)<<(uint(q)%64)
	if v {
		t.x[idx] |= m
	} else {
		t.x[idx] &^= m
	}
}

func (t *Tableau) setZ(row, q int, v bool) {
	idx, m := row*t.nw+q/64, uint64(1)<<(uint(q)%64)
	if v {
		t.z[idx] |= m
	} else {
		t.z[idx] &^= m
	}
}

// H applies a Hadamard to qubit q.
func (t *Tableau) H(q int) {
	for row := 0; row < 2*t.n; row++ {
		xb, zb := t.xbit(row, q), t.zbit(row, q)
		if xb && zb {
			t.r[row] ^= 1
		}
		t.setX(row, q, zb)
		t.setZ(row, q, xb)
	}
}

// S applies the phase gate (sqrt Z) to qubit q.
func (t *Tableau) S(q int) {
	for row := 0; row < 2*t.n; row++ {
		xb, zb := t.xbit(row, q), t.zbit(row, q)
		if xb && zb {
			t.r[row] ^= 1
		}
		t.setZ(row, q, zb != xb)
	}
}

// CNOT applies a controlled-NOT with control c and target tq.
func (t *Tableau) CNOT(c, tq int) {
	if c == tq {
		panic("stab: CNOT control equals target")
	}
	for row := 0; row < 2*t.n; row++ {
		xc, zc := t.xbit(row, c), t.zbit(row, c)
		xt, zt := t.xbit(row, tq), t.zbit(row, tq)
		if xc && zt && (xt == zc) {
			t.r[row] ^= 1
		}
		t.setX(row, tq, xt != xc)
		t.setZ(row, c, zc != zt)
	}
}

// X applies a Pauli X to qubit q.
func (t *Tableau) X(q int) {
	for row := 0; row < 2*t.n; row++ {
		if t.zbit(row, q) {
			t.r[row] ^= 1
		}
	}
}

// Z applies a Pauli Z to qubit q.
func (t *Tableau) Z(q int) {
	for row := 0; row < 2*t.n; row++ {
		if t.xbit(row, q) {
			t.r[row] ^= 1
		}
	}
}

// Y applies a Pauli Y to qubit q.
func (t *Tableau) Y(q int) {
	for row := 0; row < 2*t.n; row++ {
		if t.xbit(row, q) != t.zbit(row, q) {
			t.r[row] ^= 1
		}
	}
}

// SWAP exchanges qubits a and b.
func (t *Tableau) SWAP(a, b int) {
	if a == b {
		return
	}
	for row := 0; row < 2*t.n; row++ {
		xa, za := t.xbit(row, a), t.zbit(row, a)
		xb, zb := t.xbit(row, b), t.zbit(row, b)
		t.setX(row, a, xb)
		t.setZ(row, a, zb)
		t.setX(row, b, xa)
		t.setZ(row, b, za)
	}
}

// ApplyPauli applies the Pauli p to qubit q as a gate.
func (t *Tableau) ApplyPauli(q int, p pauli.Pauli) {
	switch p {
	case pauli.X:
		t.X(q)
	case pauli.Y:
		t.Y(q)
	case pauli.Z:
		t.Z(q)
	}
}

// g returns the exponent of i contributed by multiplying single-qubit Pauli
// (x1,z1) by (x2,z2), per Aaronson–Gottesman.
func g(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1:
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		return b2i(z2) * (2*b2i(x2) - 1)
	default: // Z
		return b2i(x2) * (1 - 2*b2i(z2))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// rowsum sets row h to row h * row i, with correct sign tracking.
func (t *Tableau) rowsum(h, i int) {
	sum := 2*int(t.r[h]) + 2*int(t.r[i])
	for q := 0; q < t.n; q++ {
		sum += g(t.xbit(i, q), t.zbit(i, q), t.xbit(h, q), t.zbit(h, q))
	}
	hOff, iOff := h*t.nw, i*t.nw
	for w := 0; w < t.nw; w++ {
		t.x[hOff+w] ^= t.x[iOff+w]
		t.z[hOff+w] ^= t.z[iOff+w]
	}
	sum = ((sum % 4) + 4) % 4
	if sum == 2 {
		t.r[h] = 1
	} else {
		t.r[h] = 0
	}
}

func (t *Tableau) zeroRow(row int) {
	off := row * t.nw
	for w := 0; w < t.nw; w++ {
		t.x[off+w] = 0
		t.z[off+w] = 0
	}
	t.r[row] = 0
}

// MeasureZ measures qubit q in the Z basis. If the outcome is not determined
// by the state, rng supplies the coin flip (rng may be nil only if the
// outcome is deterministic). It returns the outcome bit and whether the
// outcome was random.
func (t *Tableau) MeasureZ(q int, rng *rand.Rand) (outcome byte, random bool) {
	n := t.n
	p := -1
	for row := n; row < 2*n; row++ {
		if t.xbit(row, q) {
			p = row
			break
		}
	}
	if p >= 0 {
		// Random outcome.
		for row := 0; row < 2*n; row++ {
			if row != p && t.xbit(row, q) {
				t.rowsum(row, p)
			}
		}
		// Destabilizer p-n := old stabilizer p.
		copy(t.x[(p-n)*t.nw:(p-n+1)*t.nw], t.x[p*t.nw:(p+1)*t.nw])
		copy(t.z[(p-n)*t.nw:(p-n+1)*t.nw], t.z[p*t.nw:(p+1)*t.nw])
		t.r[p-n] = t.r[p]
		t.zeroRow(p)
		t.setZ(p, q, true)
		if rng == nil {
			panic("stab: random measurement outcome requires rng")
		}
		out := byte(rng.Intn(2))
		t.r[p] = out
		return out, true
	}
	// Deterministic outcome: accumulate into the scratch row.
	scratch := 2 * n
	t.zeroRow(scratch)
	for i := 0; i < n; i++ {
		if t.xbit(i, q) {
			t.rowsum(scratch, i+n)
		}
	}
	return t.r[scratch], false
}

// MeasureZForced measures qubit q in the Z basis and, if the outcome is
// random, collapses it to want. It returns an error if the outcome was
// deterministic and differs from want. Used to prepare code states with
// chosen syndrome signs.
func (t *Tableau) MeasureZForced(q int, want byte) error {
	n := t.n
	p := -1
	for row := n; row < 2*n; row++ {
		if t.xbit(row, q) {
			p = row
			break
		}
	}
	if p >= 0 {
		for row := 0; row < 2*n; row++ {
			if row != p && t.xbit(row, q) {
				t.rowsum(row, p)
			}
		}
		copy(t.x[(p-n)*t.nw:(p-n+1)*t.nw], t.x[p*t.nw:(p+1)*t.nw])
		copy(t.z[(p-n)*t.nw:(p-n+1)*t.nw], t.z[p*t.nw:(p+1)*t.nw])
		t.r[p-n] = t.r[p]
		t.zeroRow(p)
		t.setZ(p, q, true)
		t.r[p] = want
		return nil
	}
	scratch := 2 * n
	t.zeroRow(scratch)
	for i := 0; i < n; i++ {
		if t.xbit(i, q) {
			t.rowsum(scratch, i+n)
		}
	}
	if t.r[scratch] != want {
		return fmt.Errorf("stab: deterministic outcome %d on qubit %d, cannot force %d", t.r[scratch], q, want)
	}
	return nil
}

// Reset projects qubit q to |0>: it measures Z_q and applies X if needed.
func (t *Tableau) Reset(q int, rng *rand.Rand) {
	out, _ := t.MeasureZ(q, rng)
	if out == 1 {
		t.X(q)
	}
}

// ExpectationSign describes the expectation value of a Pauli operator on a
// stabilizer state: +1, -1, or 0 (unbiased / random).
type ExpectationSign int

// Expectation values of a Pauli operator on a stabilizer state.
const (
	ExpZero  ExpectationSign = 0  // operator anticommutes with a stabilizer
	ExpPlus  ExpectationSign = 1  // +operator is in the stabilizer group
	ExpMinus ExpectationSign = -1 // -operator is in the stabilizer group
)

// Expectation returns the expectation value of the Pauli string op (with
// implicit + sign) in the current state.
func (t *Tableau) Expectation(op pauli.Str) ExpectationSign {
	if len(op) != t.n {
		panic("stab: operator length mismatch")
	}
	n := t.n
	// If op anticommutes with any stabilizer generator the expectation is 0.
	for row := n; row < 2*n; row++ {
		if !t.rowCommutes(row, op) {
			return ExpZero
		}
	}
	// Otherwise op (up to sign) is a product of stabilizer generators. The
	// combination is read off the destabilizers: generator i participates
	// iff op anticommutes with destabilizer i.
	scratch := 2 * n
	t.zeroRow(scratch)
	for i := 0; i < n; i++ {
		if !t.rowCommutes(i, op) {
			t.rowsum(scratch, i+n)
		}
	}
	// scratch must now equal op site-wise; otherwise op is not in the group
	// (impossible for a pure stabilizer state if it commutes with all
	// generators, so treat as an internal error).
	for q := 0; q < n; q++ {
		wantX, wantZ := op[q].XBit(), op[q].ZBit()
		if t.xbit(scratch, q) != wantX || t.zbit(scratch, q) != wantZ {
			panic("stab: commuting operator not reconstructed from stabilizers")
		}
	}
	if t.r[scratch] == 0 {
		return ExpPlus
	}
	return ExpMinus
}

// rowCommutes reports whether tableau row `row` commutes with op.
func (t *Tableau) rowCommutes(row int, op pauli.Str) bool {
	anti := false
	for q, p := range op {
		if p == pauli.I {
			continue
		}
		rx, rz := t.xbit(row, q), t.zbit(row, q)
		px, pz := p.XBit(), p.ZBit()
		if (rx && pz) != (rz && px) {
			anti = !anti
		}
	}
	return !anti
}

// StabilizerRow returns stabilizer generator i (0 <= i < n) as a Pauli
// string plus its sign bit.
func (t *Tableau) StabilizerRow(i int) (pauli.Str, byte) {
	row := t.n + i
	s := pauli.NewStr(t.n)
	for q := 0; q < t.n; q++ {
		var p pauli.Pauli
		if t.xbit(row, q) {
			p |= pauli.X
		}
		if t.zbit(row, q) {
			p |= pauli.Z
		}
		s[q] = p
	}
	return s, t.r[row]
}
