package stab

import (
	"fmt"
	"math/rand"

	"repro/internal/pauli"
)

// basisToZ conjugates qubit q so that the given single-qubit Pauli becomes
// Z, returning the inverse conjugation as a closure.
func (t *Tableau) basisToZ(q int, p pauli.Pauli) func() {
	switch p {
	case pauli.X:
		t.H(q)
		return func() { t.H(q) }
	case pauli.Y:
		// S† then H maps Y -> X -> Z.
		t.S(q)
		t.S(q)
		t.S(q)
		t.H(q)
		return func() {
			t.H(q)
			t.S(q)
		}
	default:
		return func() {}
	}
}

// measurePauliVia conjugates op to a single-qubit Z measurement: each site
// is rotated into the Z basis and the parities folded onto the first site
// with CNOTs. run performs the actual measurement of that site; the
// conjugation is undone before returning.
func (t *Tableau) measurePauliVia(op pauli.Str, run func(q int) error) error {
	if len(op) != t.n {
		return fmt.Errorf("stab: operator length %d != %d qubits", len(op), t.n)
	}
	var sites []int
	for q, p := range op {
		if p != pauli.I {
			sites = append(sites, q)
		}
	}
	if len(sites) == 0 {
		return fmt.Errorf("stab: cannot measure the identity")
	}
	var undo []func()
	for _, q := range sites {
		undo = append(undo, t.basisToZ(q, op[q]))
	}
	head := sites[0]
	for _, q := range sites[1:] {
		t.CNOT(q, head)
	}
	err := run(head)
	for i := len(sites) - 1; i >= 1; i-- {
		t.CNOT(sites[i], head)
	}
	for i := len(undo) - 1; i >= 0; i-- {
		undo[i]()
	}
	return err
}

// MeasurePauli measures the multi-qubit Pauli operator op projectively,
// returning the outcome (0 for +1, 1 for -1) and whether it was random.
func (t *Tableau) MeasurePauli(op pauli.Str, rng *rand.Rand) (outcome byte, random bool, err error) {
	err = t.measurePauliVia(op, func(q int) error {
		outcome, random = t.MeasureZ(q, rng)
		return nil
	})
	return outcome, random, err
}

// MeasurePauliForced measures op and collapses a random outcome to want; it
// fails if the outcome is deterministic and contradicts want. Used to
// prepare code states with chosen stabilizer and logical eigenvalues.
func (t *Tableau) MeasurePauliForced(op pauli.Str, want byte) error {
	return t.measurePauliVia(op, func(q int) error {
		return t.MeasureZForced(q, want)
	})
}
