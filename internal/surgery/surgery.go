// Package surgery models logical operations on surface-code patches at the
// timestep level: lattice-surgery merges/splits (Figs. 4 and 9), patch moves
// (§III-D), and the transversal CNOT unique to the 2.5D architecture
// (§III-B, Fig. 6). A timestep is one round of d error-correction cycles,
// the paper's unit of logical time.
//
// The package also verifies the measurement-based CNOT protocol of Fig. 4 at
// the logical level using the exact stabilizer simulator, including the
// outcome-dependent Pauli fixups.
package surgery

import (
	"fmt"
	"math/rand"

	"repro/internal/stab"
)

// Timestep costs of the logical operations (in rounds of d EC cycles each).
const (
	// CostCNOTSurgery is the lattice-surgery CNOT of Fig. 4/Fig. 9:
	// create ancilla, merge (X basis), split, merge (Z basis), split and
	// measure — six timesteps in total.
	CostCNOTSurgery = 6
	// CostCNOTTransversal is the transversal CNOT between two logical
	// qubits co-located in one stack (Fig. 6): one timestep.
	CostCNOTTransversal = 1
	// CostMove is a patch move of any distance along a clear channel:
	// grow along the path and shrink from the far end, one timestep.
	CostMove = 1
	// CostTransversalWithMove is a transversal CNOT between different
	// stacks: one move plus the transversal gate (plus one more to move
	// back, not counted here) — "this process takes 2 timesteps or 3 if
	// including the second move".
	CostTransversalWithMove = CostMove + CostCNOTTransversal
	// CostMeasure is a destructive logical measurement.
	CostMeasure = 1
	// CostPrepare is logical |0>/|+> preparation.
	CostPrepare = 1
)

// SpeedupTransversalVsSurgery is the paper's headline 6x latency advantage.
func SpeedupTransversalVsSurgery() float64 {
	return float64(CostCNOTSurgery) / float64(CostCNOTTransversal)
}

// MergeBasis selects which joint parity a merge measures.
type MergeBasis uint8

// Merge bases: an X-basis merge of two patches measures the joint X⊗X
// operator; a Z-basis merge measures Z⊗Z.
const (
	MergeX MergeBasis = iota
	MergeZ
)

// CNOTByMeasurement executes the Fig. 4 protocol on an exact 3-qubit
// stabilizer state: ancilla A prepared in |0>, joint X(A)X(T) measurement,
// joint Z(A)Z(C) measurement, final X(A) measurement, then the
// outcome-dependent Pauli fixups. The net effect on (C, T) must be exactly a
// CNOT with control C and target T. Qubit indices in the tableau: the
// caller provides c, t, a.
//
// Fixups (standard lattice-surgery bookkeeping): let m1 = X(A)X(T) outcome,
// m2 = Z(A)Z(C) outcome, m3 = X(A) outcome. Apply X on T if m2 = 1, and
// Z on C if m1 XOR m3 = 1.
func CNOTByMeasurement(tab *stab.Tableau, c, t, a int, rng *rand.Rand) error {
	if c == t || c == a || t == a {
		return fmt.Errorf("surgery: qubits must be distinct")
	}
	tab.Reset(a, rng)

	m1 := measureJoint(tab, a, t, MergeX, rng)
	m2 := measureJoint(tab, a, c, MergeZ, rng)
	// Final X-basis measurement of the ancilla.
	tab.H(a)
	m3, _ := tab.MeasureZ(a, rng)
	tab.H(a)

	if m2 == 1 {
		tab.X(t)
	}
	if m1^m3 == 1 {
		tab.Z(c)
	}
	return nil
}

// measureJoint measures the two-qubit joint parity (X⊗X or Z⊗Z) on (a, b)
// non-destructively, using a scratch CNOT trick onto qubit a... it uses an
// ancilla-free construction: for Z⊗Z, CNOT a->b maps Z(a)Z(b) to Z(b)...
//
// Implementation: ZZ on (a,b): CNOT(a,b) turns ZZ into IZ... measuring Z(b)
// after CNOT(a,b) measures Z(a)Z(b) of the original state; undo the CNOT
// afterwards. XX is the Hadamard conjugate.
func measureJoint(tab *stab.Tableau, a, b int, basis MergeBasis, rng *rand.Rand) byte {
	if basis == MergeX {
		tab.H(a)
		tab.H(b)
		defer func() {
			tab.H(a)
			tab.H(b)
		}()
	}
	tab.CNOT(a, b)
	out, _ := tab.MeasureZ(b, rng)
	tab.CNOT(a, b)
	return out
}

// Op is one scheduled logical operation with its timestep cost, produced by
// the planners in internal/core.
type Op struct {
	Kind  OpKind
	Cost  int
	Notes string
}

// OpKind enumerates logical operation kinds for schedule accounting.
type OpKind uint8

// Logical operation kinds.
const (
	OpPrepare OpKind = iota
	OpMeasure
	OpCNOTSurgery
	OpCNOTTransversal
	OpMove
	OpRefresh
	OpInjectT
)

func (k OpKind) String() string {
	return [...]string{"prepare", "measure", "cnot-surgery", "cnot-transversal", "move", "refresh", "inject-t"}[k]
}
