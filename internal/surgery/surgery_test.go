package surgery

import (
	"math/rand"
	"testing"

	"repro/internal/pauli"
	"repro/internal/stab"
)

func TestTimestepCosts(t *testing.T) {
	if CostCNOTSurgery != 6 || CostCNOTTransversal != 1 {
		t.Fatal("paper costs: surgery CNOT 6 timesteps, transversal 1")
	}
	if SpeedupTransversalVsSurgery() != 6 {
		t.Fatalf("speedup = %v, want 6x", SpeedupTransversalVsSurgery())
	}
	if CostTransversalWithMove != 2 {
		t.Fatal("transversal CNOT with one move costs 2 timesteps (§III-B)")
	}
}

// The measurement-based CNOT must act exactly like a CNOT on all stabilizer
// inputs. Verify Heisenberg action on the generators by preparing eigenstates
// and checking the mapped operator's expectation: CNOT(c→t) maps
// X(c) -> X(c)X(t), Z(t) -> Z(c)Z(t), X(t) -> X(t), Z(c) -> Z(c).
func TestCNOTByMeasurementHeisenberg(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		prep  func(tab *stab.Tableau) // prepare +1 eigenstate of input op
		check string                  // expected stabilizer after CNOT, qubits (c,t,a)
	}{
		{func(tab *stab.Tableau) { tab.H(0) }, "XXI"}, // X(c) -> X(c)X(t)
		{func(tab *stab.Tableau) {}, "ZII"},           // Z(c) fixed (prep |0>_c)
		{func(tab *stab.Tableau) { tab.H(1) }, "IXI"}, // X(t) fixed
		{func(tab *stab.Tableau) {}, "ZZI"},           // Z(t) -> Z(c)Z(t): prep |00>, check joint
	}
	for i, tc := range cases {
		for rep := 0; rep < 20; rep++ {
			tab := stab.New(3)
			tc.prep(tab)
			if err := CNOTByMeasurement(tab, 0, 1, 2, rng); err != nil {
				t.Fatal(err)
			}
			op, _ := pauli.ParseStr(tc.check)
			if got := tab.Expectation(op); got != stab.ExpPlus {
				t.Fatalf("case %d rep %d: <%s> = %v, want +1", i, rep, tc.check, got)
			}
		}
	}
}

// Functional check on computational basis states: CNOT flips the target iff
// the control is |1>.
func TestCNOTByMeasurementTruthTable(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, c := range []byte{0, 1} {
		for _, tt := range []byte{0, 1} {
			for rep := 0; rep < 10; rep++ {
				tab := stab.New(3)
				if c == 1 {
					tab.X(0)
				}
				if tt == 1 {
					tab.X(1)
				}
				if err := CNOTByMeasurement(tab, 0, 1, 2, rng); err != nil {
					t.Fatal(err)
				}
				oc, _ := tab.MeasureZ(0, rng)
				ot, _ := tab.MeasureZ(1, rng)
				if oc != c || ot != c^tt {
					t.Fatalf("input |%d%d>: got |%d%d>, want |%d%d>", c, tt, oc, ot, c, c^tt)
				}
			}
		}
	}
}

// Entangling check: CNOT on |+0> must yield a Bell pair.
func TestCNOTByMeasurementCreatesBell(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for rep := 0; rep < 10; rep++ {
		tab := stab.New(3)
		tab.H(0)
		if err := CNOTByMeasurement(tab, 0, 1, 2, rng); err != nil {
			t.Fatal(err)
		}
		xx, _ := pauli.ParseStr("XXI")
		zz, _ := pauli.ParseStr("ZZI")
		if tab.Expectation(xx) != stab.ExpPlus || tab.Expectation(zz) != stab.ExpPlus {
			t.Fatal("output is not the Bell pair")
		}
	}
}

func TestCNOTByMeasurementValidation(t *testing.T) {
	tab := stab.New(3)
	if err := CNOTByMeasurement(tab, 0, 0, 1, nil); err == nil {
		t.Error("coincident qubits must fail")
	}
}

func TestOpKindString(t *testing.T) {
	if OpCNOTTransversal.String() != "cnot-transversal" {
		t.Error("op kind names wired wrong")
	}
}
