// Package pauli implements the single- and multi-qubit Pauli algebra used
// throughout the simulator: the four Pauli operators in the compact
// (x-bit, z-bit) representation, commutation tests, products, and the
// Heisenberg-picture conjugation rules for the Clifford gates that appear in
// surface-code syndrome extraction circuits.
//
// Signs are deliberately not tracked at this level. Error-frame simulation
// and matching-based decoding only ever need the *support* of a Pauli
// operator (which qubits carry an X component, which carry a Z component);
// global phases and operator signs never influence syndrome bits. The exact
// tableau simulator in internal/stab tracks signs where they matter.
package pauli

import "strings"

// Pauli is a single-qubit Pauli operator encoded in two bits: bit 0 is the
// X component and bit 1 is the Z component. The zero value is the identity,
// so fresh error frames are all-identity without initialization.
type Pauli uint8

// The four single-qubit Pauli operators. Y carries both an X and a Z
// component (Y = iXZ), which is exactly how the surface code treats it: a Y
// error trips both the Z-check and X-check graphs.
const (
	I Pauli = 0b00
	X Pauli = 0b01
	Z Pauli = 0b10
	Y Pauli = 0b11
)

// All lists the non-identity Paulis, in the order used when enumerating
// uniform one-qubit depolarizing channels.
var All = [3]Pauli{X, Y, Z}

// XBit reports whether p has an X component (p is X or Y).
func (p Pauli) XBit() bool { return p&X != 0 }

// ZBit reports whether p has a Z component (p is Z or Y).
func (p Pauli) ZBit() bool { return p&Z != 0 }

// Mul returns the product of two Paulis up to phase: the component-wise XOR.
func (p Pauli) Mul(q Pauli) Pauli { return p ^ q }

// Commutes reports whether p and q commute. Two single-qubit Paulis
// anticommute exactly when both are non-identity and different.
func (p Pauli) Commutes(q Pauli) bool {
	x1, z1 := p&X != 0, p&Z != 0
	x2, z2 := q&X != 0, q&Z != 0
	// Symplectic product: <p,q> = x1*z2 + z1*x2 (mod 2).
	a := x1 && z2
	b := z1 && x2
	return a == b
}

// String returns "I", "X", "Y" or "Z".
func (p Pauli) String() string {
	switch p {
	case I:
		return "I"
	case X:
		return "X"
	case Y:
		return "Y"
	default:
		return "Z"
	}
}

// Parse converts a letter to a Pauli. It accepts upper or lower case and
// reports ok=false for any other input.
func Parse(c byte) (p Pauli, ok bool) {
	switch c {
	case 'I', 'i':
		return I, true
	case 'X', 'x':
		return X, true
	case 'Y', 'y':
		return Y, true
	case 'Z', 'z':
		return Z, true
	}
	return I, false
}

// Str is a multi-qubit Pauli string (one Pauli per qubit), sign ignored.
// The zero-length Str is the scalar identity.
type Str []Pauli

// NewStr returns the identity Pauli string on n qubits.
func NewStr(n int) Str { return make(Str, n) }

// ParseStr parses a textual Pauli string such as "XIZZY".
func ParseStr(s string) (Str, bool) {
	out := make(Str, len(s))
	for i := 0; i < len(s); i++ {
		p, ok := Parse(s[i])
		if !ok {
			return nil, false
		}
		out[i] = p
	}
	return out, true
}

// Clone returns an independent copy of s.
func (s Str) Clone() Str {
	out := make(Str, len(s))
	copy(out, s)
	return out
}

// IsIdentity reports whether every site of s is I.
func (s Str) IsIdentity() bool {
	for _, p := range s {
		if p != I {
			return false
		}
	}
	return true
}

// Weight returns the number of non-identity sites.
func (s Str) Weight() int {
	w := 0
	for _, p := range s {
		if p != I {
			w++
		}
	}
	return w
}

// MulInto multiplies s by t in place (component-wise XOR, phase ignored).
// The strings must have equal length.
func (s Str) MulInto(t Str) {
	for i, p := range t {
		s[i] ^= p
	}
}

// Commutes reports whether s and t commute as operators.
func (s Str) Commutes(t Str) bool {
	anti := false
	for i, p := range s {
		if !p.Commutes(t[i]) {
			anti = !anti
		}
	}
	return !anti
}

// String renders s as a letter string, e.g. "XIZZY".
func (s Str) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, p := range s {
		b.WriteString(p.String())
	}
	return b.String()
}
