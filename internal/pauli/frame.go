package pauli

// Frame is a Pauli error frame over a register of qubits: the accumulated
// Pauli error relative to the ideal (noiseless) state. Clifford gates
// conjugate the frame; measurements consult it to decide whether the recorded
// outcome is flipped. This is the core of circuit-level stabilizer noise
// simulation: because all gates in syndrome extraction are Clifford and all
// injected errors are Pauli, the full quantum state never needs simulating.
type Frame struct {
	ps Str
}

// NewFrame returns an all-identity frame over n qubits.
func NewFrame(n int) *Frame { return &Frame{ps: NewStr(n)} }

// Len returns the number of qubits tracked by the frame.
func (f *Frame) Len() int { return len(f.ps) }

// Reset clears the frame back to the identity without reallocating.
func (f *Frame) Reset() {
	for i := range f.ps {
		f.ps[i] = I
	}
}

// Get returns the current Pauli on qubit q.
func (f *Frame) Get(q int) Pauli { return f.ps[q] }

// Inject multiplies Pauli p into the frame at qubit q (a new error occurring
// at this point in the circuit).
func (f *Frame) Inject(q int, p Pauli) { f.ps[q] ^= p }

// Clear zeroes the frame on qubit q. Used by reset operations: a qubit that
// is re-prepared in |0> discards any accumulated error except for the bit
// flip the reset itself may suffer (injected separately by the noise model).
func (f *Frame) Clear(q int) { f.ps[q] = I }

// XBit reports whether the frame on q has an X component; this is the bit
// that flips a Z-basis measurement of q.
func (f *Frame) XBit(q int) bool { return f.ps[q].XBit() }

// ZBit reports whether the frame on q has a Z component; this is the bit
// that flips an X-basis measurement of q.
func (f *Frame) ZBit(q int) bool { return f.ps[q].ZBit() }

// H propagates the frame through a Hadamard on q: X <-> Z (Y maps to Y).
func (f *Frame) H(q int) {
	p := f.ps[q]
	f.ps[q] = p>>1&1 | p&1<<1 // swap the two bits
}

// S propagates the frame through a phase gate on q: X -> Y, Y -> X, Z -> Z.
func (f *Frame) S(q int) {
	p := f.ps[q]
	if p.XBit() {
		f.ps[q] = p ^ Z
	}
}

// CNOT propagates the frame through a CNOT with control c and target t:
// X on the control copies onto the target; Z on the target copies onto the
// control.
func (f *Frame) CNOT(c, t int) {
	pc, pt := f.ps[c], f.ps[t]
	if pc.XBit() {
		pt ^= X
	}
	if f.ps[t].ZBit() {
		pc ^= Z
	}
	f.ps[c], f.ps[t] = pc, pt
}

// CZ propagates the frame through a controlled-Z between a and b:
// X on either qubit deposits a Z on the other.
func (f *Frame) CZ(a, b int) {
	pa, pb := f.ps[a], f.ps[b]
	if f.ps[a].XBit() {
		pb ^= Z
	}
	if f.ps[b].XBit() {
		pa ^= Z
	}
	f.ps[a], f.ps[b] = pa, pb
}

// SWAP exchanges the frame entries of a and b. Load/store operations between
// a transmon and a cavity mode are iSWAP-like transfers; at the frame level
// they exchange the accumulated errors of the two slots (the iSWAP's extra
// single-qubit phases are absorbed into the error channel attached to the
// operation).
func (f *Frame) SWAP(a, b int) {
	f.ps[a], f.ps[b] = f.ps[b], f.ps[a]
}

// Snapshot copies the frame contents into dst (which must have length
// f.Len()), for recording or debugging.
func (f *Frame) Snapshot(dst Str) {
	copy(dst, f.ps)
}
