package pauli

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPauliBits(t *testing.T) {
	cases := []struct {
		p    Pauli
		x, z bool
	}{
		{I, false, false},
		{X, true, false},
		{Z, false, true},
		{Y, true, true},
	}
	for _, c := range cases {
		if c.p.XBit() != c.x || c.p.ZBit() != c.z {
			t.Errorf("%v: got bits (%v,%v), want (%v,%v)", c.p, c.p.XBit(), c.p.ZBit(), c.x, c.z)
		}
	}
}

func TestPauliMulTable(t *testing.T) {
	// Products up to phase.
	want := map[[2]Pauli]Pauli{
		{X, X}: I, {Y, Y}: I, {Z, Z}: I,
		{X, Y}: Z, {Y, X}: Z,
		{X, Z}: Y, {Z, X}: Y,
		{Y, Z}: X, {Z, Y}: X,
	}
	for ab, w := range want {
		if got := ab[0].Mul(ab[1]); got != w {
			t.Errorf("%v*%v = %v, want %v", ab[0], ab[1], got, w)
		}
	}
	for _, p := range []Pauli{I, X, Y, Z} {
		if p.Mul(I) != p || I.Mul(p) != p {
			t.Errorf("identity law failed for %v", p)
		}
	}
}

func TestPauliCommutes(t *testing.T) {
	for _, p := range []Pauli{I, X, Y, Z} {
		for _, q := range []Pauli{I, X, Y, Z} {
			want := p == I || q == I || p == q
			if got := p.Commutes(q); got != want {
				t.Errorf("Commutes(%v,%v) = %v, want %v", p, q, got, want)
			}
		}
	}
}

func TestParseAndString(t *testing.T) {
	for _, p := range []Pauli{I, X, Y, Z} {
		got, ok := Parse(p.String()[0])
		if !ok || got != p {
			t.Errorf("round-trip failed for %v", p)
		}
	}
	if _, ok := Parse('Q'); ok {
		t.Error("Parse('Q') should fail")
	}
	s, ok := ParseStr("XIZZY")
	if !ok || s.String() != "XIZZY" {
		t.Errorf("ParseStr round-trip: got %q ok=%v", s.String(), ok)
	}
	if _, ok := ParseStr("XQ"); ok {
		t.Error("ParseStr with invalid letter should fail")
	}
}

func TestStrWeightAndIdentity(t *testing.T) {
	s, _ := ParseStr("IXIYZ")
	if s.Weight() != 3 {
		t.Errorf("weight = %d, want 3", s.Weight())
	}
	if s.IsIdentity() {
		t.Error("IXIYZ is not identity")
	}
	if !NewStr(4).IsIdentity() {
		t.Error("NewStr should be identity")
	}
}

func TestStrCommutes(t *testing.T) {
	// XX and ZZ commute (two anticommuting sites); XI and ZI anticommute.
	xx, _ := ParseStr("XX")
	zz, _ := ParseStr("ZZ")
	xi, _ := ParseStr("XI")
	zi, _ := ParseStr("ZI")
	if !xx.Commutes(zz) {
		t.Error("XX and ZZ must commute")
	}
	if xi.Commutes(zi) {
		t.Error("XI and ZI must anticommute")
	}
}

// Property: Str multiplication is associative and self-inverse, and the
// symplectic form is bilinear: Commutes(a*b, c) == Commutes(a,c) XOR-combined
// with Commutes(b,c).
func TestStrProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) Str {
		s := NewStr(n)
		for i := range s {
			s[i] = Pauli(rng.Intn(4))
		}
		return s
	}
	f := func(seed int64) bool {
		n := 1 + int(seed&7)
		a, b, c := gen(n), gen(n), gen(n)
		ab := a.Clone()
		ab.MulInto(b)
		// self inverse
		aa := a.Clone()
		aa.MulInto(a)
		if !aa.IsIdentity() {
			return false
		}
		// bilinearity of commutation
		want := a.Commutes(c) == b.Commutes(c)
		return ab.Commutes(c) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrameGatePropagation(t *testing.T) {
	// Conjugation rules spot-checked against textbook identities.
	f := NewFrame(2)

	// H: X <-> Z
	f.Inject(0, X)
	f.H(0)
	if f.Get(0) != Z {
		t.Errorf("HXH = %v, want Z", f.Get(0))
	}
	f.H(0)
	if f.Get(0) != X {
		t.Errorf("HZH = %v, want X", f.Get(0))
	}
	f.Clear(0)

	// H fixes Y (up to sign).
	f.Inject(0, Y)
	f.H(0)
	if f.Get(0) != Y {
		t.Errorf("HYH = %v, want Y", f.Get(0))
	}
	f.Clear(0)

	// S: X -> Y -> X, Z fixed.
	f.Inject(0, X)
	f.S(0)
	if f.Get(0) != Y {
		t.Errorf("SXS' = %v, want Y", f.Get(0))
	}
	f.S(0)
	if f.Get(0) != X {
		t.Errorf("SYS' = %v, want X", f.Get(0))
	}
	f.Clear(0)

	// CNOT: Xc -> XcXt, Zt -> ZcZt, Xt and Zc fixed.
	f.Inject(0, X)
	f.CNOT(0, 1)
	if f.Get(0) != X || f.Get(1) != X {
		t.Errorf("CNOT X(c) -> %v%v, want XX", f.Get(0), f.Get(1))
	}
	f.Reset()
	f.Inject(1, Z)
	f.CNOT(0, 1)
	if f.Get(0) != Z || f.Get(1) != Z {
		t.Errorf("CNOT Z(t) -> %v%v, want ZZ", f.Get(0), f.Get(1))
	}
	f.Reset()
	f.Inject(1, X)
	f.CNOT(0, 1)
	if f.Get(0) != I || f.Get(1) != X {
		t.Errorf("CNOT X(t) -> %v%v, want IX", f.Get(0), f.Get(1))
	}
	f.Reset()
	f.Inject(0, Z)
	f.CNOT(0, 1)
	if f.Get(0) != Z || f.Get(1) != I {
		t.Errorf("CNOT Z(c) -> %v%v, want ZI", f.Get(0), f.Get(1))
	}
	f.Reset()

	// CZ: X(a) -> X(a)Z(b).
	f.Inject(0, X)
	f.CZ(0, 1)
	if f.Get(0) != X || f.Get(1) != Z {
		t.Errorf("CZ X(a) -> %v%v, want XZ", f.Get(0), f.Get(1))
	}
	f.Reset()

	// SWAP.
	f.Inject(0, Y)
	f.SWAP(0, 1)
	if f.Get(0) != I || f.Get(1) != Y {
		t.Errorf("SWAP -> %v%v, want IY", f.Get(0), f.Get(1))
	}
}

// Property: CNOT propagation agrees with explicit symplectic conjugation for
// all 16 two-qubit Paulis, and applying the same gate twice is the identity
// map on frames (CNOT, CZ, SWAP, H are involutions).
func TestFrameInvolutions(t *testing.T) {
	for p := 0; p < 16; p++ {
		f := NewFrame(2)
		f.Inject(0, Pauli(p&3))
		f.Inject(1, Pauli(p>>2))
		orig0, orig1 := f.Get(0), f.Get(1)

		f.CNOT(0, 1)
		f.CNOT(0, 1)
		if f.Get(0) != orig0 || f.Get(1) != orig1 {
			t.Errorf("CNOT^2 not identity for %v%v", orig0, orig1)
		}
		f.CZ(0, 1)
		f.CZ(0, 1)
		if f.Get(0) != orig0 || f.Get(1) != orig1 {
			t.Errorf("CZ^2 not identity for %v%v", orig0, orig1)
		}
		f.H(0)
		f.H(0)
		if f.Get(0) != orig0 {
			t.Errorf("H^2 not identity for %v", orig0)
		}
	}
}

// Commutation preservation: Clifford conjugation preserves the symplectic
// form, so propagating two frames through the same gate sequence preserves
// whether they commute.
func TestFrameSymplecticInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		n := 4
		a, b := NewStr(n), NewStr(n)
		for i := 0; i < n; i++ {
			a[i] = Pauli(rng.Intn(4))
			b[i] = Pauli(rng.Intn(4))
		}
		fa, fb := NewFrame(n), NewFrame(n)
		for i := 0; i < n; i++ {
			fa.Inject(i, a[i])
			fb.Inject(i, b[i])
		}
		before := a.Commutes(b)
		for g := 0; g < 20; g++ {
			switch rng.Intn(4) {
			case 0:
				q := rng.Intn(n)
				fa.H(q)
				fb.H(q)
			case 1:
				q := rng.Intn(n)
				fa.S(q)
				fb.S(q)
			case 2:
				c, t := rng.Intn(n), rng.Intn(n)
				if c != t {
					fa.CNOT(c, t)
					fb.CNOT(c, t)
				}
			case 3:
				x, y := rng.Intn(n), rng.Intn(n)
				if x != y {
					fa.CZ(x, y)
					fb.CZ(x, y)
				}
			}
		}
		sa, sb := NewStr(n), NewStr(n)
		fa.Snapshot(sa)
		fb.Snapshot(sb)
		if sa.Commutes(sb) != before {
			t.Fatalf("symplectic form not preserved (iter %d)", iter)
		}
	}
}
