package core

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/surgery"
)

// SingleQubit applies a transversal single-qubit logical gate (X, Z, H, S)
// to q: one timestep on its stack, during which the patch is loaded, gated,
// cycled, and stored.
func (m *Machine) SingleQubit(q QubitID) error {
	if err := m.check(q); err != nil {
		return err
	}
	s := m.stackIndex(m.qubits[q].addr.Stack)
	if err := m.runOp([]int{s}, 1, &m.stats.SingleQubitGates); err != nil {
		return err
	}
	m.stats.Loads++
	m.stats.Stores++
	m.touch(q)
	return nil
}

// InjectT consumes a distilled T state to apply a logical T gate to q (one
// timestep plus the surgery with the magic-state patch, folded into the
// paper's accounting as a single-stack op).
func (m *Machine) InjectT(q QubitID) error {
	if err := m.check(q); err != nil {
		return err
	}
	s := m.stackIndex(m.qubits[q].addr.Stack)
	if err := m.runOp([]int{s}, 1, &m.stats.TInjections); err != nil {
		return err
	}
	m.touch(q)
	return nil
}

// MeasureZ destructively measures q, freeing its virtual address.
func (m *Machine) MeasureZ(q QubitID) error {
	if err := m.check(q); err != nil {
		return err
	}
	addr := m.qubits[q].addr
	s := m.stackIndex(addr.Stack)
	if err := m.runOp([]int{s}, surgery.CostMeasure, &m.stats.Measurements); err != nil {
		return err
	}
	m.modes[s][addr.Mode] = -1
	m.qubits[q].alive = false
	return nil
}

// route returns the stacks along an L-shaped Manhattan path from a to b,
// inclusive of both endpoints.
func (m *Machine) route(a, b hardware.PhysicalAddr) []int {
	var out []int
	r, c := a.Row, a.Col
	out = append(out, m.stackIndex(hardware.PhysicalAddr{Row: r, Col: c}))
	for r != b.Row {
		if r < b.Row {
			r++
		} else {
			r--
		}
		out = append(out, m.stackIndex(hardware.PhysicalAddr{Row: r, Col: c}))
	}
	for c != b.Col {
		if c < b.Col {
			c++
		} else {
			c--
		}
		out = append(out, m.stackIndex(hardware.PhysicalAddr{Row: r, Col: c}))
	}
	return out
}

// Move relocates q to a free mode of the destination stack: one timestep
// occupying the whole route, whose reserved free modes carry the moving
// patch (§III-D).
func (m *Machine) Move(q QubitID, dst hardware.PhysicalAddr) error {
	if err := m.check(q); err != nil {
		return err
	}
	if dst.Row < 0 || dst.Row >= m.cfg.Rows || dst.Col < 0 || dst.Col >= m.cfg.Cols {
		return fmt.Errorf("core: destination %v outside grid", dst)
	}
	src := m.qubits[q].addr
	if src.Stack == dst {
		return nil
	}
	ds := m.stackIndex(dst)
	slot := -1
	for z := 0; z < m.k-1; z++ {
		if m.modes[ds][z] == -1 {
			slot = z
			break
		}
	}
	if slot == -1 {
		return fmt.Errorf("core: stack %v has no free mode for an incoming qubit", dst)
	}
	path := m.route(src.Stack, dst)
	if err := m.runOp(path, surgery.CostMove, &m.stats.Moves); err != nil {
		return err
	}
	ss := m.stackIndex(src.Stack)
	m.modes[ss][src.Mode] = -1
	m.modes[ds][slot] = q
	m.qubits[q].addr = hardware.VirtualAddr{Stack: dst, Mode: slot}
	m.stats.Loads++
	m.stats.Stores++
	m.touch(q)
	return nil
}

// CNOTTransversal performs the architecture's fast CNOT. Same stack: one
// timestep (Fig. 6). Different stacks: the control is moved to the target's
// stack through the reserved modes, gated transversally, and moved back —
// the paper's 3-timestep variant (§III-B).
func (m *Machine) CNOTTransversal(ctrl, tgt QubitID) error {
	if err := m.check(ctrl); err != nil {
		return err
	}
	if err := m.check(tgt); err != nil {
		return err
	}
	if ctrl == tgt {
		return fmt.Errorf("core: CNOT control equals target")
	}
	ca, ta := m.qubits[ctrl].addr, m.qubits[tgt].addr
	if ca.Stack == ta.Stack {
		s := m.stackIndex(ca.Stack)
		if err := m.runOp([]int{s}, surgery.CostCNOTTransversal, &m.stats.TransversalCNOTs); err != nil {
			return err
		}
		m.stats.Loads++
		m.stats.Stores++
		m.touch(ctrl, tgt)
		return nil
	}
	home := ca.Stack
	if err := m.Move(ctrl, ta.Stack); err != nil {
		return fmt.Errorf("core: transversal CNOT move: %w", err)
	}
	s := m.stackIndex(ta.Stack)
	if err := m.runOp([]int{s}, surgery.CostCNOTTransversal, &m.stats.TransversalCNOTs); err != nil {
		return err
	}
	m.stats.Loads++
	m.stats.Stores++
	m.touch(ctrl, tgt)
	if err := m.Move(ctrl, home); err != nil {
		return fmt.Errorf("core: transversal CNOT move back: %w", err)
	}
	return nil
}

// CNOTSurgery performs the conventional lattice-surgery CNOT (Fig. 4):
// six timesteps occupying both endpoint stacks and the routed ancilla
// region between them (whose reserved modes hold the logical ancilla).
func (m *Machine) CNOTSurgery(ctrl, tgt QubitID) error {
	if err := m.check(ctrl); err != nil {
		return err
	}
	if err := m.check(tgt); err != nil {
		return err
	}
	if ctrl == tgt {
		return fmt.Errorf("core: CNOT control equals target")
	}
	ca, ta := m.qubits[ctrl].addr, m.qubits[tgt].addr
	path := m.route(ca.Stack, ta.Stack)
	if err := m.runOp(path, surgery.CostCNOTSurgery, &m.stats.SurgeryCNOTs); err != nil {
		return err
	}
	m.stats.Loads += 2
	m.stats.Stores += 2
	m.touch(ctrl, tgt)
	return nil
}

// CNOT picks the architecture's preferred implementation: transversal when
// the qubits share a stack, transversal-with-move when a free mode is
// available at the target, and lattice surgery otherwise.
func (m *Machine) CNOT(ctrl, tgt QubitID) error {
	if err := m.check(ctrl); err != nil {
		return err
	}
	if err := m.check(tgt); err != nil {
		return err
	}
	ca, ta := m.qubits[ctrl].addr, m.qubits[tgt].addr
	if ca.Stack == ta.Stack {
		return m.CNOTTransversal(ctrl, tgt)
	}
	ds := m.stackIndex(ta.Stack)
	for z := 0; z < m.k-1; z++ {
		if m.modes[ds][z] == -1 {
			return m.CNOTTransversal(ctrl, tgt)
		}
	}
	return m.CNOTSurgery(ctrl, tgt)
}

// Idle advances the machine n timesteps with no operations (refresh only).
func (m *Machine) Idle(n int) {
	for i := 0; i < n; i++ {
		m.advance()
	}
}

// Staleness returns how many timesteps ago q last completed a correction
// round.
func (m *Machine) Staleness(q QubitID) (int, error) {
	if err := m.check(q); err != nil {
		return 0, err
	}
	return m.clock - m.qubits[q].lastEC, nil
}

// Audit verifies machine invariants: reserved modes are free, mode table
// and qubit table agree, and no live qubit is past its refresh deadline.
func (m *Machine) Audit() error {
	for s := range m.modes {
		if m.modes[s][m.k-1] != -1 {
			return fmt.Errorf("core: reserved mode of stack %d occupied by qubit %d", s, m.modes[s][m.k-1])
		}
		for z, q := range m.modes[s] {
			if q < 0 {
				continue
			}
			info := m.qubits[q]
			if !info.alive {
				return fmt.Errorf("core: dead qubit %d still mapped at stack %d mode %d", q, s, z)
			}
			if m.stackIndex(info.addr.Stack) != s || info.addr.Mode != z {
				return fmt.Errorf("core: address table mismatch for qubit %d", q)
			}
		}
	}
	for i := range m.qubits {
		if !m.qubits[i].alive {
			continue
		}
		if stale := m.clock - m.qubits[i].lastEC; stale > m.cfg.MaxStale {
			return fmt.Errorf("core: qubit %d staleness %d exceeds deadline %d", i, stale, m.cfg.MaxStale)
		}
	}
	return nil
}
