package core

import (
	"math/rand"
	"testing"

	"repro/internal/hardware"
	"repro/internal/layout"
	"repro/internal/surgery"
)

func newMachine(t *testing.T, rows, cols int) *Machine {
	t.Helper()
	m, err := New(Config{
		Rows: rows, Cols: cols, Distance: 5,
		Embedding: layout.Compact,
		Params:    hardware.Default(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Rows: 0, Cols: 1, Embedding: layout.Compact, Params: hardware.Default()}); err == nil {
		t.Error("zero rows must fail")
	}
	p := hardware.Default()
	p.CavityDepth = 1
	if _, err := New(Config{Rows: 1, Cols: 1, Embedding: layout.Compact, Params: p}); err == nil {
		t.Error("cavity depth 1 must fail (no usable mode)")
	}
	if _, err := New(Config{Rows: 1, Cols: 1, Embedding: layout.Baseline2D, Params: hardware.Default()}); err == nil {
		t.Error("baseline embedding must fail (no memory)")
	}
}

func TestCapacityAndAddressing(t *testing.T) {
	m := newMachine(t, 2, 3)
	if m.NumStacks() != 6 {
		t.Fatalf("stacks = %d", m.NumStacks())
	}
	if m.Capacity() != 6*9 {
		t.Fatalf("capacity = %d, want 54 (k-1 per stack)", m.Capacity())
	}
	q, err := m.Alloc("a")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := m.Address(q)
	if err != nil {
		t.Fatal(err)
	}
	if addr.Mode >= m.k-1 {
		t.Errorf("allocated into reserved mode: %v", addr)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFillsAndRejects(t *testing.T) {
	m := newMachine(t, 1, 1)
	for i := 0; i < m.Capacity(); i++ {
		if _, err := m.Alloc("q"); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := m.Alloc("overflow"); err == nil {
		t.Error("overflow alloc must fail")
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestTransversalCNOTSameStackCost(t *testing.T) {
	m := newMachine(t, 1, 1)
	a, _ := m.Alloc("a")
	b, _ := m.Alloc("b")
	start := m.Clock()
	if err := m.CNOTTransversal(a, b); err != nil {
		t.Fatal(err)
	}
	cost := m.Clock() - start
	if cost != surgery.CostCNOTTransversal {
		t.Errorf("same-stack transversal CNOT took %d timesteps, want %d", cost, surgery.CostCNOTTransversal)
	}
}

func TestTransversalCNOTCrossStack(t *testing.T) {
	m := newMachine(t, 1, 2)
	// Fill stack 0 so "b" lands in stack 1.
	a, _ := m.Alloc("a")
	for i := 0; i < m.k-2; i++ {
		if _, err := m.Alloc("filler"); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := m.Alloc("b")
	aAddr, _ := m.Address(a)
	bAddr, _ := m.Address(b)
	if aAddr.Stack == bAddr.Stack {
		t.Fatal("test setup: qubits should start in different stacks")
	}
	start := m.Clock()
	if err := m.CNOTTransversal(a, b); err != nil {
		t.Fatal(err)
	}
	cost := m.Clock() - start
	// Move + gate + move back = 3 timesteps minimum; refresh-deadline
	// delays may add more on a busy machine.
	if cost < 3 {
		t.Errorf("cross-stack transversal CNOT took %d timesteps, want >= 3", cost)
	}
	// The control must be back home.
	after, _ := m.Address(a)
	if after.Stack != aAddr.Stack {
		t.Errorf("control ended at %v, want %v", after.Stack, aAddr.Stack)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Moves != 2 {
		t.Errorf("moves = %d, want 2", m.Stats().Moves)
	}
}

func TestSurgeryCNOTCost(t *testing.T) {
	m := newMachine(t, 1, 3)
	a, _ := m.Alloc("a")
	// Fill stacks 0 and 1 completely so the auto-CNOT has no free mode and
	// must use surgery.
	for i := 0; i < 2*(m.k-1)-1; i++ {
		if _, err := m.Alloc("filler"); err != nil {
			t.Fatal(err)
		}
	}
	b, _ := m.Alloc("b") // lands in stack 2... stack 1 is full, so b is in stack 2
	aAddr, _ := m.Address(a)
	bAddr, _ := m.Address(b)
	if aAddr.Stack == bAddr.Stack {
		t.Fatal("setup: expected distinct stacks")
	}
	start := m.Clock()
	if err := m.CNOTSurgery(a, b); err != nil {
		t.Fatal(err)
	}
	if cost := m.Clock() - start; cost < surgery.CostCNOTSurgery {
		t.Errorf("surgery CNOT took %d timesteps, want >= %d", cost, surgery.CostCNOTSurgery)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

// The headline speed claim: on co-located qubits, the transversal CNOT is
// 6x faster than lattice surgery.
func TestTransversalSpeedup(t *testing.T) {
	m := newMachine(t, 1, 1)
	a, _ := m.Alloc("a")
	b, _ := m.Alloc("b")

	t0 := m.Clock()
	if err := m.CNOTTransversal(a, b); err != nil {
		t.Fatal(err)
	}
	fast := m.Clock() - t0

	t1 := m.Clock()
	if err := m.CNOTSurgery(a, b); err != nil {
		t.Fatal(err)
	}
	slow := m.Clock() - t1
	if slow < 6*fast {
		t.Errorf("surgery/transversal latency ratio %d/%d, want >= 6x", slow, fast)
	}
}

// Refresh guarantee: while idle, no stored qubit's staleness ever exceeds
// the number of co-located qubits (and therefore never the deadline).
func TestRefreshSteadyState(t *testing.T) {
	m := newMachine(t, 1, 2)
	var qs []QubitID
	for i := 0; i < 2*(m.k-1); i++ {
		q, err := m.Alloc("q")
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	m.Idle(100)
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		s, err := m.Staleness(q)
		if err != nil {
			t.Fatal(err)
		}
		if s > m.k-1 {
			t.Errorf("qubit %d staleness %d exceeds k-1 = %d at steady state", q, s, m.k-1)
		}
	}
	if m.Stats().MaxStalenessSeen > m.cfg.MaxStale {
		t.Errorf("max staleness %d exceeded deadline %d", m.Stats().MaxStalenessSeen, m.cfg.MaxStale)
	}
}

// Property test: random programs keep all invariants and never blow the
// refresh deadline — including at full machine occupancy, where the
// post-operation refresh drain (one qubit per stack per timestep) is the
// binding constraint.
func TestRandomProgramInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		m := newMachine(t, 2, 2)
		nq := 12
		if trial%2 == 1 {
			nq = m.Capacity() // fully loaded machine
		}
		var live []QubitID
		for i := 0; i < nq; i++ {
			q, err := m.Alloc("q")
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, q)
		}
		for op := 0; op < 60; op++ {
			switch rng.Intn(5) {
			case 0:
				q := live[rng.Intn(len(live))]
				if err := m.SingleQubit(q); err != nil {
					t.Fatal(err)
				}
			case 1:
				a := live[rng.Intn(len(live))]
				b := live[rng.Intn(len(live))]
				if a != b {
					if err := m.CNOT(a, b); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				q := live[rng.Intn(len(live))]
				dst := hardware.PhysicalAddr{Row: rng.Intn(2), Col: rng.Intn(2)}
				err := m.Move(q, dst)
				if err != nil && m.modesFree(dst) > 0 {
					t.Fatalf("move to non-full stack failed: %v", err)
				}
			case 3:
				q := live[rng.Intn(len(live))]
				if err := m.InjectT(q); err != nil {
					t.Fatal(err)
				}
			case 4:
				m.Idle(rng.Intn(5))
			}
			if err := m.Audit(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
		st := m.Stats()
		if st.MaxStalenessSeen > m.cfg.MaxStale {
			t.Fatalf("trial %d: staleness %d exceeded deadline %d", trial, st.MaxStalenessSeen, m.cfg.MaxStale)
		}
		if st.Loads != st.Stores {
			t.Fatalf("trial %d: loads %d != stores %d", trial, st.Loads, st.Stores)
		}
	}
}

// modesFree is a test helper counting free allocatable modes at dst.
func (m *Machine) modesFree(dst hardware.PhysicalAddr) int {
	s := m.stackIndex(dst)
	n := 0
	for z := 0; z < m.k-1; z++ {
		if m.modes[s][z] == -1 {
			n++
		}
	}
	return n
}

func TestMeasureFreesAddress(t *testing.T) {
	m := newMachine(t, 1, 1)
	a, _ := m.Alloc("a")
	addr, _ := m.Address(a)
	if err := m.MeasureZ(a); err != nil {
		t.Fatal(err)
	}
	if err := m.MeasureZ(a); err == nil {
		t.Error("double measure must fail")
	}
	if _, err := m.Address(a); err == nil {
		t.Error("address of dead qubit must fail")
	}
	b, _ := m.Alloc("b")
	baddr, _ := m.Address(b)
	if baddr != addr {
		t.Errorf("freed address %v not reused (got %v)", addr, baddr)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestHardwareResources(t *testing.T) {
	m := newMachine(t, 2, 2)
	r := m.HardwareResources()
	per := layout.EmbeddingResources(layout.Compact, 5, 10)
	if r.Transmons != 4*per.Transmons || r.Cavities != 4*per.Cavities {
		t.Errorf("resources %+v not 4x per-stack %+v", r, per)
	}
	if r.LogicalQubits != m.Capacity() {
		t.Errorf("logical qubits %d != capacity %d", r.LogicalQubits, m.Capacity())
	}
}

func TestMoveValidation(t *testing.T) {
	m := newMachine(t, 1, 2)
	a, _ := m.Alloc("a")
	if err := m.Move(a, hardware.PhysicalAddr{Row: 5, Col: 0}); err == nil {
		t.Error("move outside grid must fail")
	}
	// Fill destination stack.
	for i := 0; i < m.k-1; i++ {
		if _, err := m.Alloc("filler"); err != nil {
			t.Fatal(err)
		}
	}
	dst := hardware.PhysicalAddr{Row: 0, Col: 1}
	// Stack 0 holds a + k-2 fillers, stack 1 has one filler... fill stack 1
	// completely first.
	for m.modesFree(dst) > 0 {
		if _, err := m.Alloc("filler2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Move(a, dst); err == nil {
		t.Error("move into full stack must fail")
	}
}
