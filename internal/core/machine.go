// Package core implements the paper's primary contribution as an executable
// model: a machine of virtualized logical qubits. Logical qubits live at
// virtual addresses (stack, cavity mode), are paged into a stack's transmons
// for operations, and are refreshed — loaded, error-corrected, stored — on a
// DRAM-like schedule that guarantees every stored qubit a correction round
// at least every k timesteps (§III, §III-D).
//
// The machine models the architectural constraints the paper discusses:
//
//   - serialization: qubits sharing a stack cannot be operated on in
//     parallel; an operation occupies its stacks for its whole duration and
//     suspends their refresh;
//   - the reserved free mode per stack used for qubit movement and for
//     routed lattice-surgery ancillas;
//   - operation latencies in timesteps (1 round of d EC cycles each):
//     transversal CNOT 1, move 1, lattice-surgery CNOT 6;
//   - refresh-deadline scheduling: operations are delayed when a co-located
//     stored qubit would otherwise miss its correction deadline.
//
// The physical error behaviour of each mechanism is measured by the
// Monte-Carlo stack (internal/montecarlo); this package models time, space,
// and contention.
package core

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/layout"
	"repro/internal/surgery"
)

// QubitID names an allocated logical qubit.
type QubitID int

// Config describes a machine.
type Config struct {
	Rows, Cols int // stack grid dimensions
	Distance   int
	Embedding  layout.EmbeddingKind // Natural or Compact
	Params     hardware.Params
	// MaxStale is the refresh deadline in timesteps. 0 means the default
	// CavityDepth + CostCNOTSurgery: at steady state every stored qubit is
	// corrected at least every k timesteps ("roughly guaranteed to get a
	// round of correction every k time steps"), and the paper notes the
	// rate "may be reduced slightly" while logical operations occupy a
	// stack — the surgery latency is exactly that slack.
	MaxStale int
}

// Stats accumulates schedule accounting for a machine run.
type Stats struct {
	Timesteps        int
	Refreshes        int
	Loads, Stores    int
	TransversalCNOTs int
	SurgeryCNOTs     int
	Moves            int
	SingleQubitGates int
	Preparations     int
	Measurements     int
	TInjections      int
	DelayedTimesteps int // timesteps inserted to satisfy refresh deadlines
	RouteConflicts   int // timesteps spent waiting for busy route stacks
	MaxStalenessSeen int
}

type qubit struct {
	id     QubitID
	name   string
	addr   hardware.VirtualAddr
	lastEC int
	alive  bool
}

// Machine is a VLQ machine instance.
type Machine struct {
	cfg      Config
	k        int
	modes    [][]QubitID // [stack][mode], -1 free; mode k-1 is reserved
	busyTill []int       // stack busy until this timestep (exclusive)
	qubits   []qubit
	clock    int
	stats    Stats
}

// New builds a machine with the given configuration. Every stack reserves
// one cavity mode for movement and surgery ancillas, so capacity is
// (CavityDepth-1) logical qubits per stack.
func New(cfg Config) (*Machine, error) {
	if cfg.Rows < 1 || cfg.Cols < 1 {
		return nil, fmt.Errorf("core: grid %dx%d invalid", cfg.Rows, cfg.Cols)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	k := cfg.Params.CavityDepth
	if k < 2 {
		return nil, fmt.Errorf("core: cavity depth %d leaves no usable modes after the reserved one", k)
	}
	if cfg.Embedding != layout.Natural && cfg.Embedding != layout.Compact {
		return nil, fmt.Errorf("core: embedding must be Natural or Compact, got %v", cfg.Embedding)
	}
	if cfg.MaxStale == 0 {
		cfg.MaxStale = k + surgery.CostCNOTSurgery
	}
	if cfg.MaxStale < 2 {
		return nil, fmt.Errorf("core: MaxStale %d too small to schedule anything", cfg.MaxStale)
	}
	m := &Machine{
		cfg:      cfg,
		k:        k,
		modes:    make([][]QubitID, cfg.Rows*cfg.Cols),
		busyTill: make([]int, cfg.Rows*cfg.Cols),
	}
	for s := range m.modes {
		m.modes[s] = make([]QubitID, k)
		for z := range m.modes[s] {
			m.modes[s][z] = -1
		}
	}
	return m, nil
}

// Stats returns a copy of the accumulated schedule statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Clock returns the current timestep.
func (m *Machine) Clock() int { return m.clock }

// NumStacks returns the number of stacks.
func (m *Machine) NumStacks() int { return len(m.modes) }

// Capacity returns the number of logical qubits the machine can hold.
func (m *Machine) Capacity() int { return m.NumStacks() * (m.k - 1) }

// HardwareResources returns the physical footprint of the whole machine.
func (m *Machine) HardwareResources() layout.Resources {
	per := layout.EmbeddingResources(m.cfg.Embedding, m.cfg.Distance, m.k)
	return layout.Resources{
		Transmons:     per.Transmons * m.NumStacks(),
		Cavities:      per.Cavities * m.NumStacks(),
		CavityDepth:   m.k,
		LogicalQubits: m.Capacity(),
	}
}

func (m *Machine) stackIndex(a hardware.PhysicalAddr) int {
	return a.Row*m.cfg.Cols + a.Col
}

func (m *Machine) stackAddr(s int) hardware.PhysicalAddr {
	return hardware.PhysicalAddr{Row: s / m.cfg.Cols, Col: s % m.cfg.Cols}
}

// Address returns the current virtual address of q.
func (m *Machine) Address(q QubitID) (hardware.VirtualAddr, error) {
	if err := m.check(q); err != nil {
		return hardware.VirtualAddr{}, err
	}
	return m.qubits[q].addr, nil
}

func (m *Machine) check(q QubitID) error {
	if q < 0 || int(q) >= len(m.qubits) {
		return fmt.Errorf("core: unknown qubit %d", q)
	}
	if !m.qubits[q].alive {
		return fmt.Errorf("core: qubit %d (%s) was measured", q, m.qubits[q].name)
	}
	return nil
}

// Alloc places a new logical qubit (prepared in |0>) at the first virtual
// address with capacity, costing one preparation timestep on its stack.
func (m *Machine) Alloc(name string) (QubitID, error) {
	for s := range m.modes {
		for z := 0; z < m.k-1; z++ { // mode k-1 stays reserved
			if m.modes[s][z] != -1 {
				continue
			}
			id := QubitID(len(m.qubits))
			m.qubits = append(m.qubits, qubit{
				id: id, name: name,
				addr:   hardware.VirtualAddr{Stack: m.stackAddr(s), Mode: z},
				lastEC: m.clock,
				alive:  true,
			})
			m.modes[s][z] = id
			if err := m.runOp([]int{s}, surgery.CostPrepare, &m.stats.Preparations); err != nil {
				return -1, err
			}
			return id, nil
		}
	}
	return -1, fmt.Errorf("core: machine full (%d qubits)", m.Capacity())
}

// advance moves the clock forward one timestep: every stack that is not
// busy refreshes its stalest stored qubit (one load + one store + one round
// of error correction, the Interleaved schedule).
func (m *Machine) advance() {
	for s := range m.modes {
		if m.busyTill[s] > m.clock {
			continue
		}
		stalest := QubitID(-1)
		worst := -1
		for _, q := range m.modes[s] {
			if q < 0 {
				continue
			}
			stale := m.clock - m.qubits[q].lastEC
			if stale > worst {
				worst = stale
				stalest = q
			}
		}
		if stalest >= 0 {
			m.qubits[stalest].lastEC = m.clock
			m.stats.Refreshes++
			m.stats.Loads++
			m.stats.Stores++
		}
	}
	m.clock++
	m.stats.Timesteps++
	for i := range m.qubits {
		if !m.qubits[i].alive {
			continue
		}
		if stale := m.clock - m.qubits[i].lastEC; stale > m.stats.MaxStalenessSeen {
			m.stats.MaxStalenessSeen = stale
		}
	}
}

// delayForDeadlines advances the clock (running refreshes) until occupying
// the given stacks for dur timesteps cannot push any of their stored qubits
// past the refresh deadline — including the drain after the operation: a
// stack refreshes one qubit per timestep, so the qubit that is i-th in the
// staleness backlog is only reached i timesteps after the stack frees up.
// It fails if the deadline is unsatisfiable (an over-tight MaxStale for the
// stack occupancy).
func (m *Machine) delayForDeadlines(stacks []int, dur int) error {
	var stales []int
	for guard := 0; ; guard++ {
		if guard > 10*(m.cfg.MaxStale+m.k)+100 {
			return fmt.Errorf("core: refresh deadline %d unsatisfiable for a %d-timestep operation", m.cfg.MaxStale, dur)
		}
		ok := true
		for _, s := range stacks {
			stales = stales[:0]
			for _, q := range m.modes[s] {
				if q < 0 {
					continue
				}
				stales = append(stales, m.clock-m.qubits[q].lastEC)
			}
			// Descending staleness = drain order after the op.
			for i := 1; i < len(stales); i++ {
				for j := i; j > 0 && stales[j] > stales[j-1]; j-- {
					stales[j], stales[j-1] = stales[j-1], stales[j]
				}
			}
			for rank, st := range stales {
				if st+dur+rank+1 > m.cfg.MaxStale {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return nil
		}
		m.advance()
		m.stats.DelayedTimesteps++
	}
}

// waitUntilFree advances the clock until every listed stack is idle,
// counting contention.
func (m *Machine) waitUntilFree(stacks []int) {
	for {
		busy := false
		for _, s := range stacks {
			if m.busyTill[s] > m.clock {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		m.advance()
		m.stats.RouteConflicts++
	}
}

// runOp schedules an operation occupying the given stacks for dur
// timesteps: it waits for the stacks, satisfies refresh deadlines, marks the
// stacks busy, and advances the clock through the operation. Qubits stored
// in the busy stacks receive no refresh during the operation; the operation
// itself error-corrects the stacks' loaded patches, which is accounted by
// refreshing every qubit of the listed stacks at completion... only the
// qubits actually loaded participate, so instead the operation refreshes
// nothing implicitly and relies on the deadline check.
func (m *Machine) runOp(stacks []int, dur int, counter *int) error {
	m.waitUntilFree(stacks)
	if err := m.delayForDeadlines(stacks, dur); err != nil {
		return err
	}
	for _, s := range stacks {
		m.busyTill[s] = m.clock + dur
	}
	for i := 0; i < dur; i++ {
		m.advance()
	}
	if counter != nil {
		*counter++
	}
	return nil
}

// touch marks q as error-corrected now (it was loaded and cycled as part of
// an operation).
func (m *Machine) touch(qs ...QubitID) {
	for _, q := range qs {
		m.qubits[q].lastEC = m.clock
	}
}
