package faulttest

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/fabric"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

const ttl = 250 * time.Millisecond

// schedules is the fault matrix: every entry must leave the merged results
// bit-identical to a fault-free local run. Worker 2 is never killed, so
// the cluster always retains capacity to finish.
func schedules() []*Schedule {
	return []*Schedule{
		{Name: "fault-free", TTL: ttl},
		{Name: "kill-mid-lease", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpSubmit, Call: 1, Fault: Kill},
		}},
		{Name: "kill-both-early", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpSubmit, Call: 1, Fault: Kill},
			{Worker: 1, Op: OpSubmit, Call: 2, Fault: Kill},
		}},
		{Name: "drop-result-response", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpSubmit, Call: 1, Fault: DropResponse},
			{Worker: 1, Op: OpSubmit, Call: 1, Fault: DropResponse},
		}},
		{Name: "drop-lease-response", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpLease, Call: 1, Fault: DropResponse},
		}},
		{Name: "stall-heartbeat-past-deadline", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpHeartbeat, Call: 1, Fault: StallHeartbeat},
		}},
		{Name: "duplicate-late-delivery", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpSubmit, Call: 1, Fault: DuplicateDeliver},
			{Worker: 1, Op: OpSubmit, Call: 2, Fault: DuplicateDeliver},
		}},
		{Name: "expiry-race-held-submit", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpSubmit, Call: 1, Fault: HoldSubmit},
		}},
		{Name: "chaos", TTL: ttl, Rules: []Rule{
			{Worker: 0, Op: OpSubmit, Call: 1, Fault: DropResponse},
			{Worker: 0, Op: OpSubmit, Call: 3, Fault: HoldSubmit},
			{Worker: 1, Op: OpHeartbeat, Call: 1, Fault: StallHeartbeat},
			{Worker: 1, Op: OpSubmit, Call: 2, Fault: DuplicateDeliver},
			{Worker: 0, Op: OpSubmit, Call: 5, Fault: Kill},
		}},
	}
}

// runFaulted executes the jobs over a hub with the schedule's faults
// injected into each worker's transport.
func runFaulted(t *testing.T, jobs []sched.Job, shardShots, workers int, sch *Schedule) ([]sched.CellResult, fabric.Stats) {
	t.Helper()
	h := fabric.NewHub(fabric.Options{LeaseTTL: sch.TTL})
	defer h.Close()
	r, err := h.Submit(jobs, fabric.RunOptions{ShardShots: shardShots})
	if err != nil {
		t.Fatal(err)
	}
	c := fabric.StartCluster(workers,
		func(i int) fabric.Transport { return New(fabric.Local{Hub: h}, sch, i) },
		func(int) fabric.WorkerOptions {
			return fabric.WorkerOptions{PollInterval: 2 * time.Millisecond}
		})
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := r.Wait(ctx)
	if err != nil {
		t.Fatalf("%s: %v", sch.Name, err)
	}
	return results, h.Stats()
}

// TestFaultSchedulesBitIdentical is the fault half of the cluster⊟local
// contract: a threshold grid executed under every fault schedule merges to
// exactly the local scheduler's bytes — no partial merges, no double
// merges, no lost units, whatever the lease churn.
func TestFaultSchedulesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fault schedule matrix")
	}
	const trials = 2*montecarlo.MinShardShots + 137
	jobs := sched.ThresholdJobs(extract.Baseline, []int{3, 5}, montecarlo.DefaultPhysRates(6)[2:5],
		hardware.Default(), trials, 41, montecarlo.UF, montecarlo.SweepOptions{})
	s := sched.New(nil, sched.Options{Jobs: 4, ShardShots: montecarlo.MinShardShots})
	want, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	for _, sch := range schedules() {
		t.Run(sch.Name, func(t *testing.T) {
			got, stats := runFaulted(t, jobs, montecarlo.MinShardShots, 3, sch)
			for i := range want {
				if got[i].Result != want[i].Result {
					t.Errorf("cell %d diverged under %s:\n fabric %+v\n local  %+v",
						i, sch.Name, got[i].Result, want[i].Result)
				}
			}
			if stats.ResultsAccepted != int64(len(collectUnits(jobs))) {
				t.Errorf("accepted %d results, want exactly one per unit (%d)",
					stats.ResultsAccepted, len(collectUnits(jobs)))
			}
		})
	}
}

func collectUnits(jobs []sched.Job) []sched.Unit {
	return sched.BuildUnitQueue(jobs, montecarlo.MinShardShots, sched.OrderCost).Units
}

// TestFaultScheduleSensitivityGrid runs one representative fault schedule
// over a sensitivity-panel grid.
func TestFaultScheduleSensitivityGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("fault schedule matrix")
	}
	jobs, err := sched.SensitivityJobs(montecarlo.PanelCavityT1, []float64{1e-4, 1e-2}, []int{3},
		2*montecarlo.MinShardShots, 53, montecarlo.UF, montecarlo.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(nil, sched.Options{Jobs: 4, ShardShots: montecarlo.MinShardShots})
	want, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	sch := &Schedule{Name: "kill+duplicate", TTL: ttl, Rules: []Rule{
		{Worker: 0, Op: OpSubmit, Call: 1, Fault: Kill},
		{Worker: 1, Op: OpSubmit, Call: 1, Fault: DuplicateDeliver},
	}}
	got, _ := runFaulted(t, jobs, montecarlo.MinShardShots, 3, sch)
	for i := range want {
		if got[i].Result != want[i].Result {
			t.Errorf("cell %d diverged:\n fabric %+v\n local  %+v", i, got[i].Result, want[i].Result)
		}
	}
}

// TestFaultScheduleRareGrid is the importance-sampled leg of the fault
// contract: weighted cells carry likelihood-ratio float sums, so a retried
// or duplicated shard that slipped into the merge twice would shift the
// sums even when integer failure counts happen to agree. Every schedule in
// the matrix must leave the weighted tallies bit-identical to the fault-free
// local run.
func TestFaultScheduleRareGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("fault schedule matrix")
	}
	const trials = 2*montecarlo.MinShardShots + 137
	jobs := sched.ThresholdJobs(extract.Baseline, []int{3, 5}, []float64{2e-3, 4e-3},
		hardware.Default(), trials, 41, montecarlo.UF,
		montecarlo.SweepOptions{RareEvent: true, Boost: 2})
	s := sched.New(nil, sched.Options{Jobs: 4, ShardShots: montecarlo.MinShardShots})
	want, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if w := want[i].Result.Weighted; w.Shots != trials || w.SumW <= 0 {
			t.Fatalf("local reference cell %d carries no weighted tally: %+v", i, w)
		}
	}
	for _, sch := range schedules() {
		t.Run(sch.Name, func(t *testing.T) {
			got, _ := runFaulted(t, jobs, montecarlo.MinShardShots, 3, sch)
			for i := range want {
				if got[i].Result != want[i].Result {
					t.Errorf("cell %d diverged under %s:\n fabric %+v\n local  %+v",
						i, sch.Name, got[i].Result, want[i].Result)
				}
			}
		})
	}
}

// TestDuplicateAndDropCountersObserved pins that the schedules actually
// exercised the paths they claim: a dropped result response forces a retry
// that the exactly-once merge must flag as duplicate.
func TestDuplicateAndDropCountersObserved(t *testing.T) {
	jobs := sched.ThresholdJobs(extract.Baseline, []int{3}, montecarlo.DefaultPhysRates(6)[3:4],
		hardware.Default(), 2*montecarlo.MinShardShots, 41, montecarlo.UF, montecarlo.SweepOptions{})
	sch := &Schedule{Name: "drop", TTL: ttl, Rules: []Rule{
		{Worker: 0, Op: OpSubmit, Call: 1, Fault: DropResponse},
	}}
	_, stats := runFaulted(t, jobs, montecarlo.MinShardShots, 1, sch)
	if stats.ResultsDuplicate == 0 {
		t.Errorf("dropped response produced no duplicate retry (stats %+v)", stats)
	}
}

// goldenCell mirrors the montecarlo package's committed fixture rows.
type goldenCell struct {
	Scheme   string  `json:"scheme"`
	Distance int     `json:"distance"`
	PhysRate float64 `json:"phys_rate"`
	Decoder  string  `json:"decoder"`
	Trials   int     `json:"trials"`
	Failures int     `json:"failures"`
}

// TestGoldenRatesThroughFaultedFabric is the distributed leg of the golden
// harness: the committed Fig. 11 row recomputed through a 3-worker
// in-process fabric — with one worker killed mid-run — must reproduce the
// pinned trials/failures of every cell. A scheduling or merge change that
// leaks timing into results moves pinned numbers and fails tier 1.
func TestGoldenRatesThroughFaultedFabric(t *testing.T) {
	buf, err := os.ReadFile("../../montecarlo/testdata/golden_rates.json")
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}

	const seed = 17
	var jobs []sched.Job
	type ident struct {
		d   int
		p   float64
		dec string
	}
	var ids []ident
	for _, dec := range []montecarlo.DecoderKind{montecarlo.UF, montecarlo.Blossom} {
		for _, d := range []int{3, 5, 7} {
			for _, p := range montecarlo.DefaultPhysRates(6) {
				cfg := montecarlo.ThresholdCellConfig(extract.CompactInterleaved, d, p,
					hardware.Default(), 250, seed, dec, montecarlo.SweepOptions{})
				jobs = append(jobs, sched.Job{Cfg: cfg})
				ids = append(ids, ident{d: d, p: p, dec: string(dec)})
			}
		}
	}
	if len(jobs) != len(want) {
		t.Fatalf("built %d cells, fixture has %d", len(jobs), len(want))
	}

	sch := &Schedule{Name: "golden-kill", TTL: ttl, Rules: []Rule{
		{Worker: 1, Op: OpSubmit, Call: 3, Fault: Kill},
	}}
	// ShardShots 1 is the most aggressive split a caller can request; the
	// 250-trial cells sit below the MinShardShots floor, so each cell must
	// still lease as exactly one unit.
	got, stats := runFaulted(t, jobs, 1, 3, sch)
	if stats.LeasesExpired == 0 {
		t.Errorf("killed worker's lease never expired (stats %+v); the kill did not land mid-lease", stats)
	}
	for i, w := range want {
		g := got[i]
		if ids[i].d != w.Distance || ids[i].dec != w.Decoder ||
			math.Abs(ids[i].p-w.PhysRate) > 1e-12*(1+w.PhysRate) {
			t.Fatalf("cell %d identity drifted: fixture %+v vs grid %+v", i, w, ids[i])
		}
		if g.Result.Trials != w.Trials || g.Result.Failures != w.Failures {
			t.Errorf("cell %d (d=%d p=%.4g %s): fabric %d/%d failures/trials, fixture %d/%d",
				i, w.Distance, w.PhysRate, w.Decoder,
				g.Result.Failures, g.Result.Trials, w.Failures, w.Trials)
		}
	}
}
