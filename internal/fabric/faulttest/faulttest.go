// Package faulttest injects worker and transport faults into a fabric
// cluster on deterministic schedules, to prove the coordinator's
// exactly-once merge holds the cluster⊟local contract under loss: every
// schedule — worker kills mid-lease, dropped result responses, stalled
// heartbeats past the lease deadline, duplicate late deliveries, expiry
// races — must merge bit-identically to a fault-free local run.
//
// Faults are keyed by (worker index, protocol op, call ordinal), so a
// schedule is a pure description: replaying it against the same sweep
// produces the same injection points. Results stay bit-identical anyway —
// the contract under test is that timing never reaches the merged bytes.
package faulttest

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
)

// Protocol ops a Rule can target.
const (
	OpRegister  = "register"
	OpLease     = "lease"
	OpHeartbeat = "heartbeat"
	OpSubmit    = "submit"
)

// Fault kinds.
const (
	// Kill severs the worker's transport at the matched call (the op is
	// not forwarded) and every call after it, wrapping fabric.ErrHalt —
	// the worker dies mid-lease and its units expire and are re-run.
	Kill = "kill"
	// DropResponse forwards the op but drops the response, returning a
	// transport error; the worker retries, exercising idempotency (a
	// retried submit must come back StatusDuplicate, never double-merge).
	DropResponse = "drop-response"
	// DuplicateDeliver forwards a submit twice back to back; the second
	// delivery must be discarded as a duplicate.
	DuplicateDeliver = "duplicate"
	// StallHeartbeat blocks the matched heartbeat past the lease TTL
	// before forwarding it, so the lease expires mid-flight and the late
	// heartbeat is answered with ReasonExpired — the worker must abort
	// without submitting while the unit is re-run elsewhere.
	StallHeartbeat = "stall-heartbeat"
	// HoldSubmit blocks the matched submit past the lease TTL before
	// forwarding, racing coordinator-side expiry: the held full tally and
	// the reassigned run's tally arrive in either order, and exactly one
	// may merge.
	HoldSubmit = "hold-submit"
)

// Rule matches one protocol call: the Call-th (1-based) invocation of Op
// on worker Worker gets Fault.
type Rule struct {
	Worker int
	Op     string
	Call   int
	Fault  string
}

// Schedule is a deterministic fault plan for one cluster run.
type Schedule struct {
	Name string
	// TTL is the lease TTL the hub must be configured with; stall and
	// hold faults sleep just past it.
	TTL   time.Duration
	Rules []Rule
}

// Transport wraps a worker's transport, applying the schedule's rules for
// that worker index.
type Transport struct {
	inner  fabric.Transport
	worker int
	sch    *Schedule

	mu     sync.Mutex
	counts map[string]int
	killed bool
}

// New wraps inner with the schedule's faults for worker index w.
func New(inner fabric.Transport, sch *Schedule, w int) *Transport {
	return &Transport{inner: inner, worker: w, sch: sch, counts: make(map[string]int)}
}

// fault consumes one call of op and returns the fault to apply, if any.
func (t *Transport) fault(op string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.killed {
		return "", fmt.Errorf("faulttest: worker %d killed: %w", t.worker, fabric.ErrHalt)
	}
	t.counts[op]++
	n := t.counts[op]
	for _, r := range t.sch.Rules {
		if r.Worker == t.worker && r.Op == op && r.Call == n {
			if r.Fault == Kill {
				t.killed = true
				return "", fmt.Errorf("faulttest: worker %d killed at %s#%d: %w", t.worker, op, n, fabric.ErrHalt)
			}
			return r.Fault, nil
		}
	}
	return "", nil
}

func (t *Transport) stall() {
	time.Sleep(t.sch.TTL + t.sch.TTL/2)
}

// Register implements fabric.Transport.
func (t *Transport) Register(ctx context.Context, req fabric.RegisterRequest) (fabric.RegisterResponse, error) {
	f, err := t.fault(OpRegister)
	if err != nil {
		return fabric.RegisterResponse{}, err
	}
	resp, err := t.inner.Register(ctx, req)
	if f == DropResponse && err == nil {
		return fabric.RegisterResponse{}, fmt.Errorf("faulttest: register response dropped")
	}
	return resp, err
}

// Lease implements fabric.Transport.
func (t *Transport) Lease(ctx context.Context, req fabric.LeaseRequest) (fabric.LeaseResponse, error) {
	f, err := t.fault(OpLease)
	if err != nil {
		return fabric.LeaseResponse{}, err
	}
	resp, err := t.inner.Lease(ctx, req)
	if f == DropResponse && err == nil {
		// The granted lease (if any) is lost in flight; it expires and is
		// reassigned — the harshest form of lease loss.
		return fabric.LeaseResponse{}, fmt.Errorf("faulttest: lease response dropped")
	}
	return resp, err
}

// Heartbeat implements fabric.Transport.
func (t *Transport) Heartbeat(ctx context.Context, req fabric.HeartbeatRequest) (fabric.HeartbeatResponse, error) {
	f, err := t.fault(OpHeartbeat)
	if err != nil {
		return fabric.HeartbeatResponse{}, err
	}
	if f == StallHeartbeat {
		t.stall()
	}
	resp, err := t.inner.Heartbeat(ctx, req)
	if f == DropResponse && err == nil {
		return fabric.HeartbeatResponse{}, fmt.Errorf("faulttest: heartbeat response dropped")
	}
	return resp, err
}

// Submit implements fabric.Transport.
func (t *Transport) Submit(ctx context.Context, req fabric.ResultRequest) (fabric.ResultResponse, error) {
	f, err := t.fault(OpSubmit)
	if err != nil {
		return fabric.ResultResponse{}, err
	}
	if f == HoldSubmit {
		t.stall()
	}
	resp, err := t.inner.Submit(ctx, req)
	if f == DuplicateDeliver && err == nil {
		if _, derr := t.inner.Submit(ctx, req); derr != nil {
			return resp, nil // the duplicate leg failing is itself a fault case
		}
	}
	if f == DropResponse && err == nil {
		return fabric.ResultResponse{}, fmt.Errorf("faulttest: result response dropped")
	}
	return resp, err
}
