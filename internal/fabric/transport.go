package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Transport is the worker's view of a coordinator: the four protocol
// exchanges. Local binds directly to an in-process Hub; HTTPTransport
// speaks the JSON protocol to a remote one; the fault-injection harness
// wraps either to inject worker loss, dropped responses, stalled
// heartbeats, and duplicate deliveries.
type Transport interface {
	Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error)
	Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error)
	Submit(ctx context.Context, req ResultRequest) (ResultResponse, error)
}

// Local is the in-process transport: direct method calls on a Hub. The
// multi-worker test harness and single-process "fabric mode" use it.
type Local struct {
	Hub *Hub
}

// Register implements Transport.
func (t Local) Register(_ context.Context, req RegisterRequest) (RegisterResponse, error) {
	return t.Hub.Register(req)
}

// Lease implements Transport.
func (t Local) Lease(_ context.Context, req LeaseRequest) (LeaseResponse, error) {
	return t.Hub.Lease(req)
}

// Heartbeat implements Transport.
func (t Local) Heartbeat(_ context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return t.Hub.Heartbeat(req)
}

// Submit implements Transport.
func (t Local) Submit(_ context.Context, req ResultRequest) (ResultResponse, error) {
	return t.Hub.Result(req)
}

// HTTPTransport speaks the fabric JSON protocol to a remote coordinator.
type HTTPTransport struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:8791".
	Base string
	// Client overrides http.DefaultClient when set.
	Client *http.Client
}

func (t *HTTPTransport) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fabric: encode %s: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(t.Base, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	hresp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return fmt.Errorf("fabric: %s: %s: %s", path, hresp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(hresp.Body).Decode(resp)
}

// Register implements Transport.
func (t *HTTPTransport) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := t.post(ctx, "/fabric/v1/register", req, &resp)
	return resp, err
}

// Lease implements Transport.
func (t *HTTPTransport) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := t.post(ctx, "/fabric/v1/lease", req, &resp)
	return resp, err
}

// Heartbeat implements Transport.
func (t *HTTPTransport) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := t.post(ctx, "/fabric/v1/heartbeat", req, &resp)
	return resp, err
}

// Submit implements Transport.
func (t *HTTPTransport) Submit(ctx context.Context, req ResultRequest) (ResultResponse, error) {
	var resp ResultResponse
	err := t.post(ctx, "/fabric/v1/result", req, &resp)
	return resp, err
}

// Handler returns the coordinator's HTTP surface: the four protocol POSTs
// plus GET /fabric/v1/stats. Mount it on any mux (vlqserve mounts it on
// the -fabric-listen address; vlqfabric serves it alone).
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/register", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req RegisterRequest) (RegisterResponse, error) { return h.Register(req) })
	})
	mux.HandleFunc("POST /fabric/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req LeaseRequest) (LeaseResponse, error) { return h.Lease(req) })
	})
	mux.HandleFunc("POST /fabric/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req HeartbeatRequest) (HeartbeatResponse, error) { return h.Heartbeat(req) })
	})
	mux.HandleFunc("POST /fabric/v1/result", func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req ResultRequest) (ResultResponse, error) { return h.Result(req) })
	})
	mux.HandleFunc("GET /fabric/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h.Stats())
	})
	return mux
}

func serveJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(Req) (Resp, error)) {
	var req Req
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := fn(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
