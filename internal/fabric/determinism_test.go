package fabric

import (
	"context"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

// runLocal executes the jobs on the local work-stealing scheduler — the
// reference side of the cluster⊟local contract.
func runLocal(t *testing.T, jobs []sched.Job, shardShots int) []sched.CellResult {
	t.Helper()
	s := sched.New(nil, sched.Options{Jobs: 4, ShardShots: shardShots})
	results, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// runFabric executes the jobs over an in-process fabric: one hub, n
// workers on their own goroutines with their own engines, Local transport.
func runFabric(t *testing.T, jobs []sched.Job, shardShots, workers int) []sched.CellResult {
	t.Helper()
	h := NewHub(Options{})
	defer h.Close()
	r, err := h.Submit(jobs, RunOptions{ShardShots: shardShots})
	if err != nil {
		t.Fatal(err)
	}
	c := StartCluster(workers, func(int) Transport { return Local{Hub: h} },
		func(int) WorkerOptions { return WorkerOptions{PollInterval: 2 * time.Millisecond} })
	defer func() {
		for _, err := range c.Stop() {
			t.Errorf("worker error: %v", err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// diffResults asserts two result sets are bit-identical, cell by cell.
func diffResults(t *testing.T, label string, got, want []sched.CellResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cells, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index {
			t.Fatalf("%s: cell %d has index %d", label, i, got[i].Index)
		}
		if got[i].Result != want[i].Result {
			t.Errorf("%s: cell %d diverged:\n fabric %+v\n local  %+v",
				label, i, got[i].Result, want[i].Result)
		}
	}
}

// TestClusterMatchesLocalThresholdGrid is the headline contract: a
// threshold sweep executed over the fabric merges bit-identically to the
// local scheduler's run of the same jobs — at every worker count, at every
// lease granularity, including cells that parallelize internally
// (Workers > 1) and therefore lease as a single unit.
func TestClusterMatchesLocalThresholdGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep matrix")
	}
	const trials = 2*montecarlo.MinShardShots + 137 // uneven extra split
	rates := montecarlo.DefaultPhysRates(6)[2:5]
	jobs := sched.ThresholdJobs(extract.Baseline, []int{3, 5}, rates,
		hardware.Default(), trials, 41, montecarlo.UF, montecarlo.SweepOptions{})
	wide := montecarlo.ThresholdCellConfig(extract.Baseline, 3, rates[0],
		hardware.Default(), trials, 41, montecarlo.UF, montecarlo.SweepOptions{})
	wide.Workers = 2
	jobs = append(jobs, sched.Job{Cfg: wide, Tag: "wide"})

	for _, shardShots := range []int{0, montecarlo.MinShardShots} {
		want := runLocal(t, jobs, shardShots)
		for _, workers := range []int{1, 2, 4, 8} {
			got := runFabric(t, jobs, shardShots, workers)
			diffResults(t, labelWS(workers, shardShots), got, want)
		}
	}
}

func labelWS(workers, shardShots int) string {
	return "workers=" + itoa(workers) + " shardShots=" + itoa(shardShots)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestClusterMatchesLocalSensitivityGrid runs the same contract over a
// sensitivity-panel grid, whose cells differ only in hardware parameters —
// the sweep family Fig. 12 is built from.
func TestClusterMatchesLocalSensitivityGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep matrix")
	}
	const trials = 2 * montecarlo.MinShardShots
	jobs, err := sched.SensitivityJobs(montecarlo.PanelCavityT1, []float64{1e-4, 1e-2}, []int{3},
		trials, 53, montecarlo.UF, montecarlo.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := runLocal(t, jobs, montecarlo.MinShardShots)
	for _, workers := range []int{2, 4} {
		got := runFabric(t, jobs, montecarlo.MinShardShots, workers)
		diffResults(t, labelWS(workers, montecarlo.MinShardShots), got, want)
	}
}

// TestClusterMatchesLocalRareGrid extends the contract to importance-sampled
// cells: the weighted tallies are likelihood-ratio float sums, so this leg
// pins that the fabric's shard-index merge order reproduces the local
// scheduler's floating-point association byte for byte, at every worker
// count and lease granularity.
func TestClusterMatchesLocalRareGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep matrix")
	}
	const trials = 2*montecarlo.MinShardShots + 137
	jobs := sched.ThresholdJobs(extract.Baseline, []int{3, 5}, []float64{2e-3, 4e-3},
		hardware.Default(), trials, 41, montecarlo.UF,
		montecarlo.SweepOptions{RareEvent: true, Boost: 2})
	for _, shardShots := range []int{0, montecarlo.MinShardShots} {
		want := runLocal(t, jobs, shardShots)
		for i := range want {
			if w := want[i].Result.Weighted; w.Shots != trials || w.SumW <= 0 {
				t.Fatalf("local reference cell %d carries no weighted tally: %+v", i, w)
			}
		}
		for _, workers := range []int{1, 2, 4} {
			got := runFabric(t, jobs, shardShots, workers)
			diffResults(t, "rare "+labelWS(workers, shardShots), got, want)
		}
	}
}

// TestClusterRareRelErrEarlyStop: TargetRelErr cells are timing-dependent
// by design (locally too), so the contract is semantic: the run completes,
// the pooled estimate meets the target, trials stop early, and model
// dimensions survive the merge.
func TestClusterRareRelErrEarlyStop(t *testing.T) {
	const trials = 8 * montecarlo.MinShardShots
	cfg := montecarlo.ThresholdCellConfig(extract.Baseline, 3, 1.6e-2, hardware.Default(),
		trials, 21, montecarlo.UF,
		montecarlo.SweepOptions{RareEvent: true, Boost: 1.5, TargetRelErr: 0.3})
	results := runFabric(t, []sched.Job{{Cfg: cfg}}, montecarlo.MinShardShots, 4)
	res := results[0].Result
	if res.Weighted.Estimate() <= 0 {
		t.Fatalf("no weighted estimate at d=3 p=1.6e-2 over %d trials", res.Trials)
	}
	if re := res.RelErr(); !(re <= 0.3) {
		t.Errorf("converged cell reports relative error %g, target 0.3", re)
	}
	if res.Trials <= 0 || res.Trials >= trials {
		t.Errorf("rel-err early stop did not engage: %d of %d trials taken", res.Trials, trials)
	}
	if res.Mechanisms == 0 || res.DetectorCount == 0 {
		t.Errorf("merged cell lost model dimensions: %d/%d", res.Mechanisms, res.DetectorCount)
	}
}

// TestClusterEarlyStopSemantics: TargetFailures cells are timing-dependent
// by design (locally too), so the contract is semantic: the run completes,
// the target is banked, trials stop early, and model dimensions survive
// the merge.
func TestClusterEarlyStopSemantics(t *testing.T) {
	const trials = 8 * montecarlo.MinShardShots
	cfg := montecarlo.ThresholdCellConfig(extract.Baseline, 3, 1.6e-2, hardware.Default(),
		trials, 21, montecarlo.UF, montecarlo.SweepOptions{TargetFailures: 3})
	results := runFabric(t, []sched.Job{{Cfg: cfg}}, montecarlo.MinShardShots, 4)
	res := results[0].Result
	if res.Failures < 3 {
		t.Fatalf("early-stop run banked %d failures, want >= 3", res.Failures)
	}
	if res.Trials <= 0 || res.Trials >= trials {
		t.Errorf("early stop did not engage: %d of %d trials taken", res.Trials, trials)
	}
	if res.Mechanisms == 0 || res.DetectorCount == 0 {
		t.Errorf("merged cell lost model dimensions: %d/%d", res.Mechanisms, res.DetectorCount)
	}
}

// TestHTTPTransportRoundTrip runs a small sweep through the real HTTP
// handler and transport on a loopback listener — the same wire path
// cmd/vlqworker uses — and pins it to the local result.
func TestHTTPTransportRoundTrip(t *testing.T) {
	h := NewHub(Options{})
	defer h.Close()
	srv := newLoopbackServer(t, h.Handler())

	jobs := sched.ThresholdJobs(extract.Baseline, []int{3}, montecarlo.DefaultPhysRates(6)[3:5],
		hardware.Default(), 2*montecarlo.MinShardShots, 61, montecarlo.UF, montecarlo.SweepOptions{})
	want := runLocal(t, jobs, montecarlo.MinShardShots)

	r, err := h.Submit(jobs, RunOptions{ShardShots: montecarlo.MinShardShots})
	if err != nil {
		t.Fatal(err)
	}
	c := StartCluster(2, func(int) Transport { return &HTTPTransport{Base: srv} },
		func(int) WorkerOptions { return WorkerOptions{PollInterval: 2 * time.Millisecond} })
	defer func() {
		for _, err := range c.Stop() {
			t.Errorf("worker error: %v", err)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "http workers=2", got, want)
}
