// Package fabric distributes sweep execution across worker processes
// without giving up the repo's determinism contract: a cluster run merges
// to bit-identical CellResults with a local run of the same sweep, at any
// worker count, under any fault schedule.
//
// The design splits the local scheduler at its natural seam. Planning —
// sched.BuildUnitQueue over the job specs — is a pure function, so the
// coordinator (Hub) and a local pool produce the identical ordered set of
// (cell, shard) units with identical shard plans. Execution is leased:
// workers pull units, run them through montecarlo.Engine.RunShardOn (shard
// index = ChaCha8 stream index, so the bytes never depend on which worker
// runs the shard), and submit ShardResults. Merging is exactly-once: each
// unit's slot in its cell accumulator is written at most once, keyed by
// unit identity rather than delivery, so retries, expired-lease races, and
// resurrected workers cannot double-merge. montecarlo.MergeShards is
// order-independent, which closes the loop: any assignment of units to
// workers, in any completion order, with any amount of lease churn, merges
// to the same bytes.
//
// Fault tolerance is lease-based: a granted lease carries a TTL, workers
// heartbeat to extend it, and the Hub's janitor (plus lazy expiry in
// Lease) requeues units whose leases lapse. Heartbeats also carry
// cancellations: ReasonExpired (abort, never submit — a partial tally must
// not race the reassigned run), ReasonSettled (the cell's TargetFailures
// budget was banked by siblings; abort and submit the partial, as a local
// early-stopped shard would), and ReasonCancelled (run cancelled; abort).
// A coordinator-side guard additionally rejects short tallies for
// fixed-trials units, so even a worker that misses its cancellation cannot
// corrupt a merge.
//
// Transports: Local for in-process workers (fabric-mode serving, tests),
// HTTPTransport + Hub.Handler for real clusters (cmd/vlqfabric,
// cmd/vlqworker). The faulttest subpackage wraps any Transport to inject
// worker kills, dropped responses, stalled heartbeats, and duplicate
// deliveries on deterministic schedules.
package fabric
