package fabric_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/montecarlo"
	"repro/internal/sched"
	"repro/internal/serve"
)

// TestE2EClusterOverTCP is the real-process smoke test: build vlqfabric
// and vlqworker, boot a coordinator plus two worker processes over TCP
// loopback, run a pinned-seed sweep through the cluster, require the
// streamed cells bit-identical to an in-process local run, and shut
// everything down with SIGTERM expecting clean zero exits.
func TestE2EClusterOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots real processes")
	}
	dir := t.TempDir()
	coordBin := filepath.Join(dir, "vlqfabric")
	workerBin := filepath.Join(dir, "vlqworker")
	for bin, pkg := range map[string]string{coordBin: "repro/cmd/vlqfabric", workerBin: "repro/cmd/vlqworker"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Coordinator on an ephemeral port; its stderr announces the address.
	coord := exec.Command(coordBin, "-addr", "127.0.0.1:0", "-ttl", "2s")
	coordErr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()
	base := "http://" + awaitAddr(t, coordErr, regexp.MustCompile(`coordinating on (\S+)`))

	awaitHealthy(t, base+"/healthz")

	var workers []*exec.Cmd
	for i := 0; i < 2; i++ {
		w := exec.Command(workerBin, "-coordinator", base, "-poll", "5ms", "-name", "smoke")
		w.Stderr = nil
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		defer w.Process.Kill()
		workers = append(workers, w)
	}

	// The sweep: a pinned-seed baseline row, sharded at the floor so the
	// cells actually fan out across both workers.
	req := serve.SweepRequest{
		Scheme: "baseline", Distances: []int{3, 5},
		Rates:  []float64{0.004, 0.008, 0.016},
		Trials: 2 * montecarlo.MinShardShots, Seed: 11, ShardShots: 1,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/fabric/sweeps", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep: HTTP %d: %s", resp.StatusCode, msg)
	}
	var got []serve.CellRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec serve.CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("cell line %q: %v", line, err)
		}
		got = append(got, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// The reference: the identical request run locally.
	cells, err := serve.BuildCells(req)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(nil, sched.Options{ShardShots: req.ShardShots})
	local, err := s.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(local) {
		t.Fatalf("cluster streamed %d cells, local run has %d", len(got), len(local))
	}
	want := make(map[int]serve.CellRecord, len(local))
	for _, r := range local {
		want[r.Index] = serve.ToCellRecord(r)
	}
	for _, rec := range got {
		if rec != want[rec.Index] {
			t.Errorf("cell %d diverged over TCP:\n cluster %+v\n local   %+v", rec.Index, rec, want[rec.Index])
		}
	}

	// Clean shutdown: SIGTERM each worker, then the coordinator; all must
	// exit zero.
	for i, w := range workers {
		if err := w.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("worker %d signal: %v", i, err)
		}
	}
	for i, w := range workers {
		if err := awaitExit(w); err != nil {
			t.Errorf("worker %d did not exit cleanly on SIGTERM: %v", i, err)
		}
	}
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := awaitExit(coord); err != nil {
		t.Errorf("coordinator did not exit cleanly on SIGTERM: %v", err)
	}
}

// awaitAddr scans a process's stderr for the pattern's first capture.
func awaitAddr(t *testing.T, r io.Reader, re *regexp.Regexp) string {
	t.Helper()
	ch := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				ch <- m[1]
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case addr := <-ch:
		return addr
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never announced its address")
		return ""
	}
}

func awaitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}

// awaitExit waits up to 10s for the process to exit with status 0.
func awaitExit(cmd *exec.Cmd) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return <-done
	}
}
