package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/montecarlo"
	"repro/internal/sched"
)

// DefaultLeaseTTL is the lease time-to-live when Options.LeaseTTL is zero:
// long enough that a worker heartbeating at TTL/3 survives scheduling
// hiccups, short enough that a lost worker's units are reassigned quickly.
const DefaultLeaseTTL = 10 * time.Second

// Options tunes a Hub.
type Options struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before it expires and its unit is reassigned (default
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// NoJanitor disables the background expiry goroutine; expiry then
	// happens only lazily, inside Lease and Expire calls. Tests that want
	// full control over when leases expire set this.
	NoJanitor bool
}

// RunOptions tunes one submitted sweep run.
type RunOptions struct {
	// ShardShots splits cells into leaseable shard units exactly like
	// sched.Options.ShardShots; the unit queue is
	// sched.BuildUnitQueue(jobs, ShardShots, Queue), so a fabric run and
	// a local work-stealing run execute the identical unit set.
	ShardShots int
	// Queue orders the lease queue (default cost-descending).
	Queue sched.QueueOrder
	// OnResult, when set, is called once per cell as its last shard
	// merges, in completion order; calls are serialized per run. Error
	// cells are delivered too; cells of a cancelled run are never
	// delivered partially merged.
	OnResult func(sched.CellResult)
}

// Unit states in run.ustate.
const (
	unitPending = iota
	unitLeased
	unitDone
)

// lease is one live grant.
type lease struct {
	id       string
	worker   string
	run      *Run
	unit     int // index into run.q.Units
	deadline time.Time
	// cancelReason, when non-empty, is delivered on the worker's next
	// heartbeat (ReasonSettled, ReasonCancelled).
	cancelReason string
}

// cellAcc accumulates one cell's shards — the coordinator-side twin of the
// local scheduler's cellRun, with the exactly-once guarantee added: a
// unit's slot is written at most once, so a late duplicate from an expired
// lease or a resurrected worker cannot double-merge.
type cellAcc struct {
	plan      montecarlo.ShardPlan
	remaining int
	parts     []montecarlo.ShardResult  // by shard index
	errs      []string                  // by shard index
	banked    int64                     // failures toward TargetFailures
	wbank     montecarlo.WeightedResult // pooled weighted tallies toward TargetRelErr
	settled   bool                      // target banked; outstanding work is cancelled
	completed bool                      // final merge done; guards nested settles
}

// Run is one sweep executing over the fabric.
type Run struct {
	id   string
	hub  *Hub
	jobs []sched.Job
	q    sched.UnitQueue
	opts RunOptions

	// Guarded by hub.mu.
	pending   []int    // unit indices awaiting a lease, front first
	ustate    []uint8  // per unit index
	ulease    []string // current lease id per unit (while leased)
	unitIndex map[sched.Unit]int
	cells     []*cellAcc
	completed int
	cancelled bool
	finished  bool
	results   []sched.CellResult

	emitMu sync.Mutex // serializes OnResult
	done   chan struct{}
}

// Hub is the fabric coordinator: it leases sweep shard units to registered
// workers, expires leases whose heartbeats stall, reassigns their units,
// and merges the returned ShardResults exactly once per unit — so the
// merged CellResults are bit-identical to a local run of the same unit
// queue at any worker count, under any fault schedule. One Hub serves many
// runs over its lifetime (the serving front end submits each fabric-mode
// sweep to the process's hub); leases are drawn from runs in submission
// order, units within a run in cost order.
type Hub struct {
	opts Options
	ttl  time.Duration
	now  func() time.Time

	mu        sync.Mutex
	closed    bool
	runs      map[string]*Run
	active    []*Run // submission order; finished/cancelled runs removed
	leases    map[string]*lease
	nextRun   int
	nextLease int
	nextWkr   int
	stats     Stats

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewHub returns a coordinator ready to accept runs and workers.
func NewHub(opts Options) *Hub {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	h := &Hub{
		opts:   opts,
		ttl:    opts.LeaseTTL,
		now:    now,
		runs:   make(map[string]*Run),
		leases: make(map[string]*lease),
	}
	if !opts.NoJanitor {
		h.janitorStop = make(chan struct{})
		h.janitorDone = make(chan struct{})
		go h.janitor()
	}
	return h
}

// janitor expires overdue leases in the background, so units held by dead
// workers are reassigned even when no live worker is polling for leases.
func (h *Hub) janitor() {
	defer close(h.janitorDone)
	period := h.ttl / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-h.janitorStop:
			return
		case <-t.C:
			h.Expire()
		}
	}
}

// Close shuts the hub down: workers polling for leases are told to exit,
// outstanding runs are cancelled, and the janitor stops.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	active := append([]*Run(nil), h.active...)
	h.mu.Unlock()
	for _, r := range active {
		r.Cancel()
	}
	if h.janitorStop != nil {
		close(h.janitorStop)
		<-h.janitorDone
	}
}

// LeaseTTL returns the hub's lease time-to-live.
func (h *Hub) LeaseTTL() time.Duration { return h.ttl }

// Stats returns a snapshot of the coordinator's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.stats
	s.LeasesOutstanding = len(h.leases)
	return s
}

// Submit plans the jobs into a unit queue and opens the run for leasing.
// The plan is the same pure function of (jobs, ShardShots, Queue) the
// local scheduler executes, which is the root of the cluster⊟local
// determinism contract.
func (h *Hub) Submit(jobs []sched.Job, opts RunOptions) (*Run, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fabric: empty job list")
	}
	q := sched.BuildUnitQueue(jobs, opts.ShardShots, opts.Queue)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("fabric: hub closed")
	}
	h.nextRun++
	r := &Run{
		id:        fmt.Sprintf("run-%06d", h.nextRun),
		hub:       h,
		jobs:      jobs,
		q:         q,
		opts:      opts,
		ustate:    make([]uint8, len(q.Units)),
		ulease:    make([]string, len(q.Units)),
		unitIndex: make(map[sched.Unit]int, len(q.Units)),
		cells:     make([]*cellAcc, len(jobs)),
		results:   make([]sched.CellResult, len(jobs)),
		done:      make(chan struct{}),
	}
	for i, job := range jobs {
		plan := q.Plans[i]
		r.cells[i] = &cellAcc{
			plan:      plan,
			remaining: plan.Shards,
			parts:     make([]montecarlo.ShardResult, plan.Shards),
			errs:      make([]string, plan.Shards),
		}
		r.results[i] = sched.CellResult{Index: i, Job: job}
	}
	r.pending = make([]int, len(q.Units))
	for k, u := range q.Units {
		r.pending[k] = k
		r.unitIndex[u] = k
	}
	h.runs[r.id] = r
	h.active = append(h.active, r)
	h.stats.RunsSubmitted++
	return r, nil
}

// Register assigns a worker id.
func (h *Hub) Register(req RegisterRequest) (RegisterResponse, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return RegisterResponse{}, fmt.Errorf("fabric: hub closed")
	}
	h.nextWkr++
	h.stats.Workers++
	return RegisterResponse{
		Worker:         fmt.Sprintf("w-%04d", h.nextWkr),
		LeaseTTLMillis: h.ttl.Milliseconds(),
	}, nil
}

// Expire retires every lease whose deadline has passed, returning its unit
// to the front of its run's queue for reassignment. Called by the janitor
// and lazily by Lease; exported so tests driving a manual clock can force
// an expiry sweep.
func (h *Hub) Expire() {
	h.mu.Lock()
	h.expireLocked(h.now())
	h.mu.Unlock()
}

func (h *Hub) expireLocked(now time.Time) {
	for id, l := range h.leases {
		if !l.deadline.Before(now) {
			continue
		}
		delete(h.leases, id)
		h.stats.LeasesExpired++
		r := l.run
		if r.finished || r.cancelled {
			continue
		}
		k := l.unit
		if r.ustate[k] == unitLeased && r.ulease[k] == id {
			// Requeue at the front: a reassigned unit is the run's oldest
			// outstanding work, so it outranks never-leased units.
			r.ustate[k] = unitPending
			r.ulease[k] = ""
			r.pending = append([]int{k}, r.pending...)
		}
	}
}

// Lease grants the next available unit to the worker, settling
// banked-target units as empty along the way exactly like the local
// scheduler's steal-aware skip.
func (h *Hub) Lease(req LeaseRequest) (LeaseResponse, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return LeaseResponse{Status: StatusShutdown}, nil
	}
	now := h.now()
	h.expireLocked(now)
	var emits []emission
	var granted *Lease
	for _, r := range h.active {
		if r.cancelled || r.finished {
			continue
		}
		for len(r.pending) > 0 {
			k := r.pending[0]
			r.pending = r.pending[1:]
			if r.ustate[k] != unitPending {
				continue
			}
			u := r.q.Units[k]
			cell := r.cells[u.Cell]
			cfg := r.jobs[u.Cell].Cfg
			if tf := cfg.TargetFailures; tf > 0 && cell.banked >= int64(tf) {
				// Sibling shards already banked the cell's failure target;
				// settle this unit as an empty shard without leasing it.
				h.stats.UnitsSettled++
				emits = append(emits, h.recordUnitLocked(r, k, montecarlo.ShardResult{Shard: u.Shard}, "")...)
				continue
			}
			if re := cfg.TargetRelErr; re > 0 && cell.wbank.RelErrMet(re) {
				// The pooled weighted estimate already meets the cell's
				// relative-error target — the rel-err sibling of the
				// banked-failures settle above.
				h.stats.UnitsSettled++
				emits = append(emits, h.recordUnitLocked(r, k, montecarlo.ShardResult{Shard: u.Shard}, "")...)
				continue
			}
			h.nextLease++
			id := fmt.Sprintf("L-%08d", h.nextLease)
			l := &lease{id: id, worker: req.Worker, run: r, unit: k, deadline: now.Add(h.ttl)}
			h.leases[id] = l
			r.ustate[k] = unitLeased
			r.ulease[k] = id
			h.stats.LeasesGranted++
			granted = &Lease{
				ID:             id,
				Run:            r.id,
				Cell:           u.Cell,
				Shard:          u.Shard,
				Shards:         cell.plan.Shards,
				Trials:         cell.plan.Trials,
				Cfg:            cfg,
				DeadlineMillis: l.deadline.UnixMilli(),
			}
			break
		}
		if granted != nil {
			break
		}
	}
	h.mu.Unlock()
	emitAll(emits)
	if granted == nil {
		return LeaseResponse{Status: StatusWait}, nil
	}
	return LeaseResponse{Status: StatusLease, Lease: granted}, nil
}

// Heartbeat extends the worker's live leases and delivers cancellations:
// leases the hub no longer recognizes report ReasonExpired (abort, do not
// submit), leases whose cell or run was stopped report their recorded
// reason.
func (h *Hub) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.Heartbeats++
	now := h.now()
	var resp HeartbeatResponse
	for _, id := range req.Leases {
		l := h.leases[id]
		switch {
		case l == nil || l.worker != req.Worker:
			resp.Cancel = append(resp.Cancel, CancelNotice{Lease: id, Reason: ReasonExpired})
		case l.cancelReason != "":
			resp.Cancel = append(resp.Cancel, CancelNotice{Lease: id, Reason: l.cancelReason})
		default:
			l.deadline = now.Add(h.ttl)
		}
	}
	return resp, nil
}

// Result merges one submitted shard tally, exactly once per unit: the
// first complete submission for a unit wins, later ones are discarded as
// duplicates — whether they come from a retried delivery, an expired lease
// racing its replacement, or a resurrected worker.
func (h *Hub) Result(req ResultRequest) (ResultResponse, error) {
	h.mu.Lock()
	r := h.runs[req.Run]
	if r == nil || r.cancelled {
		h.stats.ResultsDiscarded++
		h.mu.Unlock()
		return ResultResponse{Status: StatusDiscarded}, nil
	}
	k, ok := r.unitIndex[sched.Unit{Cell: req.Cell, Shard: req.Shard}]
	if !ok {
		h.stats.ResultsDiscarded++
		h.mu.Unlock()
		return ResultResponse{Status: StatusDiscarded}, nil
	}
	if r.ustate[k] == unitDone {
		h.stats.ResultsDuplicate++
		if l := h.leases[req.Lease]; l != nil && l.run == r && l.unit == k {
			delete(h.leases, req.Lease)
		}
		h.mu.Unlock()
		return ResultResponse{Status: StatusDuplicate}, nil
	}
	// Partial-tally guard: a fixed-trials shard must account for its full
	// allotment. A short tally can only come from an abort the worker was
	// told not to submit (expired or cancelled lease); merging it would
	// break bit-identity, so reject it and let the unit be re-run.
	cell := r.cells[req.Cell]
	cfg := r.jobs[req.Cell].Cfg
	if req.Err == "" && cfg.TargetFailures == 0 && cfg.TargetRelErr == 0 && req.Result.Trials != cell.plan.ShardTrials(req.Shard) {
		h.stats.ResultsDiscarded++
		h.requeueUnitLocked(r, k, req.Lease)
		h.mu.Unlock()
		return ResultResponse{Status: StatusDiscarded}, nil
	}
	if l := h.leases[req.Lease]; l != nil && l.run == r && l.unit == k {
		delete(h.leases, req.Lease)
	}
	if cur := r.ulease[k]; cur != "" && cur != req.Lease {
		// A different (reassigned) lease is still running this unit; tell
		// that worker to abort and not submit — its late duplicate would be
		// discarded anyway.
		if l := h.leases[cur]; l != nil {
			l.cancelReason = ReasonExpired
		}
	}
	h.stats.ResultsAccepted++
	emits := h.recordUnitLocked(r, k, req.Result, req.Err)
	h.mu.Unlock()
	emitAll(emits)
	return ResultResponse{Status: StatusAccepted}, nil
}

// requeueUnitLocked returns a leased unit to the front of the queue after
// its submission was rejected, dropping the rejected lease.
func (h *Hub) requeueUnitLocked(r *Run, k int, leaseID string) {
	if l := h.leases[leaseID]; l != nil && l.run == r && l.unit == k {
		delete(h.leases, leaseID)
	}
	if r.ustate[k] == unitLeased && r.ulease[k] == leaseID {
		r.ustate[k] = unitPending
		r.ulease[k] = ""
		r.pending = append([]int{k}, r.pending...)
	}
}

// emission is one completed cell to deliver to a run's OnResult after the
// hub lock is released.
type emission struct {
	run *Run
	res sched.CellResult
}

func emitAll(emits []emission) {
	for _, e := range emits {
		if e.run.opts.OnResult != nil {
			e.run.emitMu.Lock()
			e.run.opts.OnResult(e.res)
			e.run.emitMu.Unlock()
		}
	}
}

// recordUnitLocked writes one unit's outcome — exactly once — and drives
// the downstream consequences: banking failures toward the cell's
// early-stop target (settling sibling units when it is reached), merging
// the cell when its last unit lands, failing the whole cell on a shard
// error, and finishing the run when its last cell completes. Returns the
// cells completed by this record, for emission outside the lock.
func (h *Hub) recordUnitLocked(r *Run, k int, sr montecarlo.ShardResult, errMsg string) []emission {
	u := r.q.Units[k]
	cell := r.cells[u.Cell]
	if r.ustate[k] == unitDone {
		return nil
	}
	r.ustate[k] = unitDone
	r.ulease[k] = ""
	cell.parts[u.Shard] = sr
	cell.errs[u.Shard] = errMsg
	cell.remaining--

	var emits []emission
	cfg := r.jobs[u.Cell].Cfg
	if tf := cfg.TargetFailures; tf > 0 && errMsg == "" {
		cell.banked += int64(sr.Failures)
		if cell.banked >= int64(tf) && !cell.settled {
			cell.settled = true
			emits = append(emits, h.cancelCellLocked(r, u.Cell, ReasonSettled, false)...)
		}
	}
	if re := cfg.TargetRelErr; re > 0 && errMsg == "" {
		cell.wbank.Add(sr.Weighted)
		if cell.wbank.RelErrMet(re) && !cell.settled {
			cell.settled = true
			emits = append(emits, h.cancelCellLocked(r, u.Cell, ReasonSettled, false)...)
		}
	}
	if errMsg != "" && cell.remaining > 0 {
		// A failed shard dooms the cell: settle its remaining units as
		// empty so the cell (and run) still completes, carrying the error.
		emits = append(emits, h.cancelCellLocked(r, u.Cell, ReasonCancelled, true)...)
	}
	if cell.remaining == 0 && !cell.completed {
		cell.completed = true
		res := sched.CellResult{Index: u.Cell, Job: r.jobs[u.Cell]}
		for _, e := range cell.errs { // deterministic: first error by shard index
			if e != "" {
				res.Err = fmt.Errorf("fabric: shard failed: %s", e)
				break
			}
		}
		if res.Err == nil {
			res.Result, res.Err = montecarlo.MergeShards(cfg, cell.parts)
		}
		r.results[u.Cell] = res
		r.completed++
		emits = append(emits, emission{run: r, res: res})
		if r.completed == len(r.jobs) {
			r.finished = true
			h.stats.RunsCompleted++
			h.detachRunLocked(r)
			close(r.done)
		}
	}
	return emits
}

// cancelCellLocked stops a cell's outstanding work: live leases get the
// cancel reason for their next heartbeat, and — when settleAll is set, or
// always for pending (unleased) units — units are settled as empty shards
// immediately. With settleAll false (the banked-target path), leased units
// stay outstanding: their workers abort at the next batch boundary and
// submit partial tallies, exactly like a local shard observing the shared
// budget.
func (h *Hub) cancelCellLocked(r *Run, cellIdx int, reason string, settleAll bool) []emission {
	var emits []emission
	for k, u := range r.q.Units {
		if u.Cell != cellIdx {
			continue
		}
		switch r.ustate[k] {
		case unitPending:
			h.stats.UnitsSettled++
			emits = append(emits, h.recordUnitLocked(r, k, montecarlo.ShardResult{Shard: u.Shard}, "")...)
		case unitLeased:
			if l := h.leases[r.ulease[k]]; l != nil && l.cancelReason == "" {
				l.cancelReason = reason
			}
			if settleAll {
				emits = append(emits, h.recordUnitLocked(r, k, montecarlo.ShardResult{Shard: u.Shard}, "")...)
			}
		}
	}
	return emits
}

// detachRunLocked removes a run from the active lease rotation (it stays
// in the runs map for duplicate detection until Wait reaps it).
func (h *Hub) detachRunLocked(r *Run) {
	for i, a := range h.active {
		if a == r {
			h.active = append(h.active[:i], h.active[i+1:]...)
			return
		}
	}
}

// ID returns the run's identifier.
func (r *Run) ID() string { return r.id }

// Cancel stops the run: pending units are dropped, outstanding leases are
// told to abort without submitting, and Wait returns an error. Cells not
// fully merged are never delivered — no partial merges.
func (r *Run) Cancel() {
	h := r.hub
	h.mu.Lock()
	if r.finished || r.cancelled {
		h.mu.Unlock()
		return
	}
	r.cancelled = true
	r.pending = nil
	for _, l := range h.leases {
		if l.run == r {
			l.cancelReason = ReasonCancelled
		}
	}
	h.stats.RunsCancelled++
	h.detachRunLocked(r)
	close(r.done)
	h.mu.Unlock()
}

// Wait blocks until every cell has merged (or the run is cancelled, or ctx
// is done — which cancels the run), then returns the per-cell results in
// submission order and reaps the run from the hub. Completed cells carry
// exactly the Result a local run of the same unit queue produces.
func (r *Run) Wait(ctx context.Context) ([]sched.CellResult, error) {
	select {
	case <-r.done:
	case <-ctx.Done():
		r.Cancel()
		<-r.done
	}
	h := r.hub
	h.mu.Lock()
	delete(h.runs, r.id)
	results := append([]sched.CellResult(nil), r.results...)
	cancelled := r.cancelled
	h.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	if cancelled {
		return results, fmt.Errorf("fabric: run %s cancelled", r.id)
	}
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("fabric: cell %d: %w", i, results[i].Err)
		}
	}
	return results, nil
}

// Done returns a channel closed when the run finishes or is cancelled.
func (r *Run) Done() <-chan struct{} { return r.done }

// Completed reports how many cells have merged so far.
func (r *Run) Completed() int {
	r.hub.mu.Lock()
	defer r.hub.mu.Unlock()
	return r.completed
}
