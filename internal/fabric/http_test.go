package fabric

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func newLoopbackServer(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}
