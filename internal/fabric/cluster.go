package fabric

import (
	"context"
	"errors"
	"sync"
)

// Cluster is a set of in-process workers draining one coordinator — the
// harness behind fabric-mode serving and the determinism and fault tests.
// Each worker runs on its own goroutine with its own Engine and
// WorkerState, exactly as separate processes would.
type Cluster struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	errs []error
}

// StartCluster launches n workers. transport supplies each worker's
// Transport (the fault harness hands each a different shim); options, when
// non-nil, supplies per-worker WorkerOptions.
func StartCluster(n int, transport func(i int) Transport, options func(i int) WorkerOptions) *Cluster {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{cancel: cancel}
	for i := 0; i < n; i++ {
		var opts WorkerOptions
		if options != nil {
			opts = options(i)
		}
		w := NewWorker(transport(i), opts)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			err := w.Run(ctx)
			if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrHalt) {
				c.mu.Lock()
				c.errs = append(c.errs, err)
				c.mu.Unlock()
			}
		}()
	}
	return c
}

// Stop cancels the workers, waits for them to exit, and returns any
// unexpected worker errors (context cancellation and harness kills are
// expected and filtered out).
func (c *Cluster) Stop() []error {
	c.cancel()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errs
}
