package fabric

import (
	"repro/internal/montecarlo"
)

// The fabric wire protocol: four JSON POST exchanges between a worker and
// the coordinator. Every request carries the worker id handed out by
// Register; every mutation is idempotent on the coordinator side (the
// exactly-once merge is keyed by unit, not by delivery), so workers retry
// freely on transport errors.

// RegisterRequest announces a worker to the coordinator.
// POST /fabric/v1/register.
type RegisterRequest struct {
	// Name is an optional operator-facing label (hostname, pod name);
	// the coordinator always assigns its own unique worker id.
	Name string `json:"name,omitempty"`
}

// RegisterResponse assigns the worker its id and the lease-keeping cadence.
type RegisterResponse struct {
	// Worker is the coordinator-assigned worker id, required on every
	// later request.
	Worker string `json:"worker"`
	// LeaseTTLMillis is the coordinator's lease time-to-live. A worker
	// holding a lease must heartbeat well within this interval (TTL/3 is
	// the default cadence) or the lease expires and is reassigned.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// LeaseRequest asks for the next unit of work. POST /fabric/v1/lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease states returned by LeaseResponse.Status.
const (
	// StatusLease: a lease was granted; run it and submit the result.
	StatusLease = "lease"
	// StatusWait: no work is available right now; poll again.
	StatusWait = "wait"
	// StatusShutdown: the coordinator is closing; the worker should exit.
	StatusShutdown = "shutdown"
)

// LeaseResponse grants a lease, asks the worker to wait, or tells it to
// shut down.
type LeaseResponse struct {
	Status string `json:"status"`
	Lease  *Lease `json:"lease,omitempty"`
}

// Lease is one leased unit: a shard of one sweep cell, with everything a
// worker needs to execute it bit-identically to a local run — the cell
// spec, the fixed shard plan, and the shard (= ChaCha8 worker stream)
// index. The lease id is unique per grant, so a re-leased unit gets a
// fresh id and late traffic for the old one is recognizable.
type Lease struct {
	// ID identifies this grant in heartbeats and result submission.
	ID string `json:"id"`
	// Run identifies the sweep the unit belongs to.
	Run string `json:"run"`
	// Cell is the unit's cell index within the run's job slice.
	Cell int `json:"cell"`
	// Shard is the unit's shard index within the cell's plan — also the
	// seed stream index RunShardOn consumes.
	Shard int `json:"shard"`
	// Shards and Trials reconstruct the cell's montecarlo.ShardPlan, a
	// pure function of the cell spec replicated here so the worker never
	// needs the planning inputs.
	Shards int `json:"shards"`
	Trials int `json:"trials"`
	// Cfg is the full cell spec. Workers run it through
	// montecarlo.Engine.RunShardOn exactly as a local pool worker would.
	Cfg montecarlo.Config `json:"cfg"`
	// DeadlineMillis is the lease deadline on the coordinator's clock
	// (Unix milliseconds), advisory for the worker's own pacing; the
	// heartbeat exchange is what actually extends it.
	DeadlineMillis int64 `json:"deadline_millis"`
}

// HeartbeatRequest keeps the worker's outstanding leases alive.
// POST /fabric/v1/heartbeat.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	// Leases are the lease ids the worker is still executing.
	Leases []string `json:"leases,omitempty"`
}

// Cancellation reasons carried by CancelNotice.Reason.
const (
	// ReasonExpired: the lease deadline passed and the unit was (or will
	// be) reassigned. The worker must abort and MUST NOT submit a result
	// for this lease — a partial tally from an aborted run would race the
	// reassigned full run.
	ReasonExpired = "expired"
	// ReasonSettled: the cell's early-stop target (TargetFailures banked,
	// or the pooled weighted estimate meeting TargetRelErr) was reached by
	// sibling shards. The worker should abort at the next batch boundary
	// and submit its partial tally, which still contributes trials
	// exactly as a local early-stopped shard does.
	ReasonSettled = "settled"
	// ReasonCancelled: the run was cancelled. Abort, do not submit.
	ReasonCancelled = "cancelled"
)

// CancelNotice tells a worker to stop one of its leases.
type CancelNotice struct {
	Lease  string `json:"lease"`
	Reason string `json:"reason"`
}

// HeartbeatResponse extends the listed leases and carries cancellations.
type HeartbeatResponse struct {
	Cancel []CancelNotice `json:"cancel,omitempty"`
}

// ResultRequest submits one executed lease's shard tally.
// POST /fabric/v1/result.
type ResultRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Run    string `json:"run"`
	Cell   int    `json:"cell"`
	Shard  int    `json:"shard"`
	// Result is the shard tally; zero-valued when Err is set.
	Result montecarlo.ShardResult `json:"result"`
	// Err carries a worker-side execution error (the engine rejected the
	// cell, a decode failed); the cell then completes with this error.
	Err string `json:"err,omitempty"`
}

// Submission outcomes returned by ResultResponse.Status.
const (
	// StatusAccepted: the result was merged into the cell.
	StatusAccepted = "accepted"
	// StatusDuplicate: the unit already has a result (a late duplicate
	// from an expired lease or a resurrected worker); discarded.
	StatusDuplicate = "duplicate"
	// StatusDiscarded: the run is cancelled or gone; discarded.
	StatusDiscarded = "discarded"
)

// ResultResponse acknowledges a submission.
type ResultResponse struct {
	Status string `json:"status"`
}

// Stats is a point-in-time snapshot of the coordinator's counters,
// surfaced by GET /fabric/v1/stats and the serving front end's /v1/stats.
type Stats struct {
	// Workers counts registrations since startup.
	Workers int64 `json:"workers"`
	// RunsSubmitted/RunsCompleted/RunsCancelled count sweep runs.
	RunsSubmitted int64 `json:"runs_submitted"`
	RunsCompleted int64 `json:"runs_completed"`
	RunsCancelled int64 `json:"runs_cancelled"`
	// LeasesGranted counts grants, including re-grants of expired units.
	LeasesGranted int64 `json:"leases_granted"`
	// LeasesExpired counts leases whose deadline passed without a result;
	// their units went back to the front of the queue.
	LeasesExpired int64 `json:"leases_expired"`
	// LeasesOutstanding is the current live-lease gauge.
	LeasesOutstanding int `json:"leases_outstanding"`
	// Heartbeats counts heartbeat exchanges.
	Heartbeats int64 `json:"heartbeats"`
	// ResultsAccepted counts merged shard results; ResultsDuplicate
	// counts late duplicates discarded by the exactly-once merge;
	// ResultsDiscarded counts submissions for cancelled or unknown runs.
	ResultsAccepted  int64 `json:"results_accepted"`
	ResultsDuplicate int64 `json:"results_duplicate"`
	ResultsDiscarded int64 `json:"results_discarded"`
	// UnitsSettled counts shard units settled as empty because their
	// cell's early-stop target (TargetFailures or TargetRelErr) was
	// already met.
	UnitsSettled int64 `json:"units_settled"`
}
