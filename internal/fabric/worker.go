package fabric

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/montecarlo"
)

// ErrHalt is the sentinel a Transport returns (wrapped) when the worker
// must stop immediately — the coordinator told it to shut down, or a test
// harness killed its transport. Worker.Run propagates it without retrying.
var ErrHalt = errors.New("fabric: transport halted")

// WorkerOptions tunes a Worker.
type WorkerOptions struct {
	// Name is an optional operator-facing label sent at registration.
	Name string
	// Engine executes leases (a fresh default engine if nil). All leases
	// run on the calling goroutine through Engine.RunShardOn, reusing one
	// WorkerState across leases, so consecutive leases of the same
	// experiment skip structure and graph builds exactly like a local
	// pool worker walking a sweep row.
	Engine *montecarlo.Engine
	// PollInterval is the idle wait between lease requests when the
	// coordinator has no work (default 50ms).
	PollInterval time.Duration
	// HeartbeatInterval is the keep-alive cadence while executing a lease
	// (default: a third of the coordinator's lease TTL).
	HeartbeatInterval time.Duration
	// SubmitRetries bounds result-submission attempts (default 8); past
	// it the result is dropped and the lease left to expire and be re-run.
	SubmitRetries int
	// RetryInterval is the wait between submission retries and failed
	// registration attempts (default 100ms).
	RetryInterval time.Duration
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Engine == nil {
		o.Engine = montecarlo.NewEngine()
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.SubmitRetries <= 0 {
		o.SubmitRetries = 8
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 100 * time.Millisecond
	}
	return o
}

// Worker is the fabric's execution side: it registers with a coordinator,
// pulls leases, runs them through montecarlo.Engine.RunShardOn on one
// long-lived WorkerState (structure cache and decode buffers survive
// across leases), and streams ShardResults back. cmd/vlqworker wraps one
// Worker per process; the in-process test harness runs several over a
// direct transport.
type Worker struct {
	tr   Transport
	opts WorkerOptions

	id  string
	ttl time.Duration
	st  montecarlo.WorkerState
}

// NewWorker returns a worker over the transport.
func NewWorker(tr Transport, opts WorkerOptions) *Worker {
	return &Worker{tr: tr, opts: opts.withDefaults()}
}

// sleep waits d or until ctx is done, reporting whether the wait completed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Run is the worker loop: register, then pull and execute leases until the
// coordinator says shutdown or ctx is done. A ctx cancellation mid-lease
// aborts the shard at its next batch boundary without submitting the
// partial tally (the lease expires and is re-run elsewhere), so SIGTERM is
// always clean. Returns nil on shutdown, ctx.Err() on cancellation, or a
// transport error wrapping ErrHalt.
func (w *Worker) Run(ctx context.Context) error {
	for {
		resp, err := w.tr.Register(ctx, RegisterRequest{Name: w.opts.Name})
		if err == nil {
			w.id = resp.Worker
			w.ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			break
		}
		if errors.Is(err, ErrHalt) {
			return err
		}
		if !sleep(ctx, w.opts.RetryInterval) {
			return ctx.Err()
		}
	}
	hb := w.opts.HeartbeatInterval
	if hb <= 0 {
		hb = w.ttl / 3
	}
	if hb <= 0 {
		hb = time.Second
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.tr.Lease(ctx, LeaseRequest{Worker: w.id})
		if err != nil {
			if errors.Is(err, ErrHalt) {
				return err
			}
			if !sleep(ctx, w.opts.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		switch resp.Status {
		case StatusShutdown:
			return nil
		case StatusLease:
			if err := w.execute(ctx, resp.Lease, hb); err != nil {
				return err
			}
		default: // StatusWait
			if !sleep(ctx, w.opts.PollInterval) {
				return ctx.Err()
			}
		}
	}
}

// execute runs one lease and submits its result. Heartbeats run on a side
// goroutine for the duration; a cancellation notice aborts the shard's
// budget, and the recorded reason decides whether the partial tally is
// submitted (settled: yes, it contributes trials like any early-stopped
// shard) or dropped (expired/cancelled: the coordinator no longer wants
// it, and a partial from an expired lease must never race the re-run).
func (w *Worker) execute(ctx context.Context, l *Lease, hbInterval time.Duration) error {
	var budget montecarlo.ShardBudget
	var mu sync.Mutex
	cancelReason := ""

	hbCtx, stopHB := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(hbInterval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
			}
			resp, err := w.tr.Heartbeat(hbCtx, HeartbeatRequest{Worker: w.id, Leases: []string{l.ID}})
			if err != nil {
				continue // transient; the next tick retries
			}
			for _, c := range resp.Cancel {
				if c.Lease == l.ID {
					mu.Lock()
					if cancelReason == "" {
						cancelReason = c.Reason
					}
					mu.Unlock()
					budget.Abort()
					return
				}
			}
		}
	}()

	// A ctx cancellation (SIGTERM) must abort the in-flight shard promptly.
	ctxAborted := false
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-hbCtx.Done()
		if ctx.Err() != nil {
			budget.Abort()
		}
	}()

	plan := montecarlo.ShardPlan{Shards: l.Shards, Trials: l.Trials}
	var sr montecarlo.ShardResult
	var runErr error
	if l.Shards == 1 && l.Cfg.Workers > 1 {
		// A cell that parallelizes internally is a single unit; running it
		// through Engine.Run preserves the local scheduler's semantics for
		// Workers > 1 cells bit for bit.
		var res montecarlo.Result
		res, runErr = w.opts.Engine.Run(l.Cfg)
		sr = montecarlo.ShardResult{
			Shard: 0, Trials: res.Trials, Failures: res.Failures,
			Fallbacks: res.Fallbacks, Skipped: res.Skipped, DedupHits: res.DedupHits,
			Stats: res.Stats, Mechanisms: res.Mechanisms, DetectorCount: res.DetectorCount,
			Weighted: res.Weighted,
		}
	} else {
		sr, runErr = w.opts.Engine.RunShardOn(l.Cfg, plan, l.Shard, &budget, &w.st)
	}
	stopHB()
	wg.Wait()
	if ctx.Err() != nil && budget.Aborted() {
		ctxAborted = true
	}

	mu.Lock()
	reason := cancelReason
	mu.Unlock()
	if ctxAborted || reason == ReasonExpired || reason == ReasonCancelled {
		// Do not submit: the tally may be short, and the coordinator has
		// already (or will) reassign the unit.
		return ctx.Err()
	}

	req := ResultRequest{
		Worker: w.id, Lease: l.ID, Run: l.Run, Cell: l.Cell, Shard: l.Shard,
		Result: sr,
	}
	if runErr != nil {
		req.Result = montecarlo.ShardResult{Shard: l.Shard}
		req.Err = runErr.Error()
	}
	for attempt := 0; attempt < w.opts.SubmitRetries; attempt++ {
		_, err := w.tr.Submit(ctx, req)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrHalt) {
			return err
		}
		if !sleep(ctx, w.opts.RetryInterval) {
			return ctx.Err()
		}
	}
	// Retries exhausted: drop the result; the lease expires and the unit
	// is re-run, deterministically producing the same bytes.
	return nil
}
