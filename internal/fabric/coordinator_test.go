package fabric

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/extract"
	"repro/internal/hardware"
	"repro/internal/montecarlo"
	"repro/internal/sched"
)

// fakeClock drives Options.Now for protocol tests (NoJanitor; expiry is
// forced explicitly with Hub.Expire).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func protoConfig(trials int) montecarlo.Config {
	return montecarlo.Config{
		Scheme: extract.Baseline, Distance: 3, Basis: extract.BasisZ,
		Params: hardware.Default().ScaledGatesTo(8e-3), Trials: trials, Seed: 7,
	}
}

// protoHub returns a hub under a fake clock plus a 4-shard single-cell run.
func protoHub(t *testing.T, cfg montecarlo.Config) (*Hub, *fakeClock, *Run) {
	t.Helper()
	clk := newFakeClock()
	h := NewHub(Options{LeaseTTL: time.Second, Now: clk.Now, NoJanitor: true})
	t.Cleanup(h.Close)
	r, err := h.Submit([]sched.Job{{Cfg: cfg}}, RunOptions{ShardShots: 1})
	if err != nil {
		t.Fatal(err)
	}
	return h, clk, r
}

func mustLease(t *testing.T, h *Hub, worker string) *Lease {
	t.Helper()
	resp, err := h.Lease(LeaseRequest{Worker: worker})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusLease {
		t.Fatalf("Lease status %q, want %q", resp.Status, StatusLease)
	}
	return resp.Lease
}

func fullResult(l *Lease) ResultRequest {
	trials := montecarlo.ShardPlan{Shards: l.Shards, Trials: l.Trials}.ShardTrials(l.Shard)
	return ResultRequest{
		Worker: "w", Lease: l.ID, Run: l.Run, Cell: l.Cell, Shard: l.Shard,
		Result: montecarlo.ShardResult{
			Shard: l.Shard, Trials: trials, Failures: 1,
			Mechanisms: 10, DetectorCount: 20,
		},
	}
}

func TestLeaseExpiryReassignsAndFirstSubmissionWins(t *testing.T) {
	cfg := protoConfig(4 * montecarlo.MinShardShots)
	h, clk, r := protoHub(t, cfg)

	l0 := mustLease(t, h, "w1")
	if l0.Shards != 4 || l0.Cfg != cfg {
		t.Fatalf("lease %+v does not carry the 4-shard plan for the cell", l0)
	}

	// Heartbeats extend the deadline past the original TTL.
	clk.Advance(600 * time.Millisecond)
	if _, err := h.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []string{l0.ID}}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(600 * time.Millisecond) // 1.2s total: past TTL, within extension
	h.Expire()
	if n := h.Stats().LeasesExpired; n != 0 {
		t.Fatalf("heartbeated lease expired (%d)", n)
	}

	// Without further heartbeats the lease lapses and the unit is re-leased
	// under a fresh id — at the front of the queue, so w2 gets shard 0.
	clk.Advance(1100 * time.Millisecond)
	h.Expire()
	if n := h.Stats().LeasesExpired; n != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", n)
	}
	l1 := mustLease(t, h, "w2")
	if l1.Cell != l0.Cell || l1.Shard != l0.Shard {
		t.Fatalf("re-lease got unit (%d,%d), want (%d,%d)", l1.Cell, l1.Shard, l0.Cell, l0.Shard)
	}
	if l1.ID == l0.ID {
		t.Fatal("re-lease reused the lease id")
	}

	// The expired worker heartbeats late: told the lease is gone.
	hb, _ := h.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []string{l0.ID}})
	if len(hb.Cancel) != 1 || hb.Cancel[0].Reason != ReasonExpired {
		t.Fatalf("late heartbeat got %+v, want ReasonExpired cancel", hb.Cancel)
	}

	// w2 submits a full tally first: accepted. The resurrected w1's full
	// tally for the same unit is a duplicate — never double-merged.
	req := fullResult(l1)
	resp, _ := h.Result(req)
	if resp.Status != StatusAccepted {
		t.Fatalf("first submission %q, want accepted", resp.Status)
	}
	late := fullResult(l0)
	late.Result.Failures = 99 // would corrupt the tally if merged
	resp, _ = h.Result(late)
	if resp.Status != StatusDuplicate {
		t.Fatalf("late duplicate %q, want duplicate", resp.Status)
	}
	st := h.Stats()
	if st.ResultsAccepted != 1 || st.ResultsDuplicate != 1 {
		t.Fatalf("stats %+v, want 1 accepted / 1 duplicate", st)
	}
	_ = r
}

func TestPartialTallyFromFixedTrialsShardRejected(t *testing.T) {
	cfg := protoConfig(4 * montecarlo.MinShardShots)
	h, _, _ := protoHub(t, cfg)

	l := mustLease(t, h, "w1")
	short := fullResult(l)
	short.Result.Trials-- // aborted mid-shard: tally is short
	resp, _ := h.Result(short)
	if resp.Status != StatusDiscarded {
		t.Fatalf("short tally %q, want discarded", resp.Status)
	}
	if n := h.Stats().ResultsDiscarded; n != 1 {
		t.Fatalf("ResultsDiscarded = %d, want 1", n)
	}
	// The unit went back to the queue front and is leased again fresh.
	l2 := mustLease(t, h, "w1")
	if l2.Cell != l.Cell || l2.Shard != l.Shard || l2.ID == l.ID {
		t.Fatalf("after rejection got lease %+v, want same unit under fresh id", l2)
	}
	resp, _ = h.Result(fullResult(l2))
	if resp.Status != StatusAccepted {
		t.Fatalf("full re-run tally %q, want accepted", resp.Status)
	}
}

func TestBankedTargetSettlesSiblings(t *testing.T) {
	cfg := protoConfig(4 * montecarlo.MinShardShots)
	cfg.TargetFailures = 2
	h, _, r := protoHub(t, cfg)

	l0 := mustLease(t, h, "w1")
	l1 := mustLease(t, h, "w2")

	// Shard 0 banks the full target. The two never-leased units settle as
	// empty shards; w2's outstanding lease is told ReasonSettled.
	req := fullResult(l0)
	req.Result.Trials = 100 // early stop: partial tallies are the norm here
	req.Result.Failures = 2
	if resp, _ := h.Result(req); resp.Status != StatusAccepted {
		t.Fatalf("banking submission not accepted: %q", resp.Status)
	}
	if n := h.Stats().UnitsSettled; n != 2 {
		t.Fatalf("UnitsSettled = %d, want 2 (the pending siblings)", n)
	}
	hb, _ := h.Heartbeat(HeartbeatRequest{Worker: "w2", Leases: []string{l1.ID}})
	if len(hb.Cancel) != 1 || hb.Cancel[0].Reason != ReasonSettled {
		t.Fatalf("leased sibling got %+v, want ReasonSettled", hb.Cancel)
	}
	// w2 aborts at its batch boundary and submits the partial: accepted,
	// and the cell merges.
	part := fullResult(l1)
	part.Result.Trials = 64
	part.Result.Failures = 0
	if resp, _ := h.Result(part); resp.Status != StatusAccepted {
		t.Fatalf("settled partial not accepted: %q", resp.Status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := results[0].Result; got.Trials != 164 || got.Failures != 2 {
		t.Fatalf("merged %d trials / %d failures, want 164 / 2", got.Trials, got.Failures)
	}
}

func TestShardErrorDoomsCellButRunCompletes(t *testing.T) {
	cfg := protoConfig(4 * montecarlo.MinShardShots)
	h, _, r := protoHub(t, cfg)
	var emitted []sched.CellResult
	r.opts.OnResult = func(res sched.CellResult) { emitted = append(emitted, res) }

	l := mustLease(t, h, "w1")
	req := fullResult(l)
	req.Result = montecarlo.ShardResult{Shard: l.Shard}
	req.Err = "graph build exploded"
	if resp, _ := h.Result(req); resp.Status != StatusAccepted {
		t.Fatalf("error submission %q, want accepted", resp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results, err := r.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "graph build exploded") {
		t.Fatalf("Wait err = %v, want the shard error", err)
	}
	if results[0].Err == nil {
		t.Fatal("cell result does not carry the error")
	}
	if len(emitted) != 1 || emitted[0].Err == nil {
		t.Fatalf("OnResult emissions %+v, want one errored cell", emitted)
	}
	// No further work remains.
	if resp, _ := h.Lease(LeaseRequest{Worker: "w1"}); resp.Status != StatusWait {
		t.Fatalf("post-error lease %q, want wait", resp.Status)
	}
}

func TestCancelRunDropsOutstandingWork(t *testing.T) {
	cfg := protoConfig(4 * montecarlo.MinShardShots)
	h, _, r := protoHub(t, cfg)

	l := mustLease(t, h, "w1")
	r.Cancel()

	hb, _ := h.Heartbeat(HeartbeatRequest{Worker: "w1", Leases: []string{l.ID}})
	if len(hb.Cancel) != 1 || hb.Cancel[0].Reason != ReasonCancelled {
		t.Fatalf("heartbeat after cancel got %+v, want ReasonCancelled", hb.Cancel)
	}
	if resp, _ := h.Result(fullResult(l)); resp.Status != StatusDiscarded {
		t.Fatalf("submit after cancel %q, want discarded", resp.Status)
	}
	if resp, _ := h.Lease(LeaseRequest{Worker: "w1"}); resp.Status != StatusWait {
		t.Fatalf("lease after cancel %q, want wait", resp.Status)
	}
	ctx := context.Background()
	if _, err := r.Wait(ctx); err == nil {
		t.Fatal("Wait on cancelled run returned nil error")
	}
	st := h.Stats()
	if st.RunsCancelled != 1 || st.ResultsDiscarded != 1 {
		t.Fatalf("stats %+v, want 1 cancelled run, 1 discarded result", st)
	}
}

func TestHubCloseTellsWorkersToShutDown(t *testing.T) {
	clk := newFakeClock()
	h := NewHub(Options{LeaseTTL: time.Second, Now: clk.Now, NoJanitor: true})
	if _, err := h.Register(RegisterRequest{}); err != nil {
		t.Fatal(err)
	}
	h.Close()
	if resp, _ := h.Lease(LeaseRequest{Worker: "w-0001"}); resp.Status != StatusShutdown {
		t.Fatalf("lease after close %q, want shutdown", resp.Status)
	}
	if _, err := h.Submit([]sched.Job{{Cfg: protoConfig(100)}}, RunOptions{}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
}

func TestMultiRunLeasingDrainsSubmissionOrder(t *testing.T) {
	clk := newFakeClock()
	h := NewHub(Options{LeaseTTL: time.Second, Now: clk.Now, NoJanitor: true})
	t.Cleanup(h.Close)
	r1, err := h.Submit([]sched.Job{{Cfg: protoConfig(100)}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Submit([]sched.Job{{Cfg: protoConfig(100)}}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, h, "w1")
	if l.Run != r1.ID() {
		t.Fatalf("first lease from run %s, want %s (submission order)", l.Run, r1.ID())
	}
	l2 := mustLease(t, h, "w1")
	if l2.Run != r2.ID() {
		t.Fatalf("second lease from run %s, want %s", l2.Run, r2.ID())
	}
}
