package extract

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/hardware"
)

// Circuit structure must be identical across physical error rates: the
// threshold sweep varies op probabilities but never the op sequence (the
// property that lets detector-error-model skeletons be compared across
// sweep points and keeps seeds aligned).
func TestStructureInvariantUnderErrorScaling(t *testing.T) {
	for _, scheme := range Schemes {
		var shapes [][3]int
		for _, p := range []float64{1e-4, 2e-3, 2e-2} {
			e, err := Build(Config{
				Scheme: scheme, Distance: 3, Basis: BasisZ,
				Params: hardware.Default().ScaledGatesTo(p),
			})
			if err != nil {
				t.Fatal(err)
			}
			shapes = append(shapes, [3]int{len(e.Circ.Moments), e.Circ.NumOps(), e.Circ.NumMeas})
		}
		for i := 1; i < len(shapes); i++ {
			if shapes[i] != shapes[0] {
				t.Errorf("%v: circuit shape changed across error rates: %v vs %v", scheme, shapes[0], shapes[i])
			}
		}
	}
}

// Basis X and basis Z experiments are mirror images: same op counts except
// for the final-readout Hadamards, same detector counts.
func TestBasisSymmetry(t *testing.T) {
	for _, scheme := range Schemes {
		ez := build(t, scheme, 3, BasisZ)
		ex := build(t, scheme, 3, BasisX)
		if len(ez.Detectors) != len(ex.Detectors) {
			t.Errorf("%v: detector counts differ across bases: %d vs %d", scheme, len(ez.Detectors), len(ex.Detectors))
		}
		hz := ez.Circ.CountKind(circuit.OpH)
		hx := ex.Circ.CountKind(circuit.OpH)
		if hx != hz+ez.Code.NumData() {
			t.Errorf("%v: basis-X should add exactly %d readout Hadamards (got %d vs %d)", scheme, ez.Code.NumData(), hx, hz)
		}
		if ez.Circ.NumMeas != ex.Circ.NumMeas {
			t.Errorf("%v: measurement counts differ across bases", scheme)
		}
	}
}

// Every noisy op must carry a probability consistent with its hardware
// source: no op may exceed the largest configured error rate (catches
// mis-wired channels).
func TestNoiseWiring(t *testing.T) {
	p := hardware.Default()
	for _, scheme := range Schemes {
		e := build(t, scheme, 3, BasisZ)
		maxP := p.PGate2
		for _, v := range []float64{p.PGate1, p.PGateTM, p.PLoadStore, p.PMeasure, p.PReset} {
			if v > maxP {
				maxP = v
			}
		}
		for mi := range e.Circ.Moments {
			for _, op := range e.Circ.Moments[mi].Ops {
				if op.Kind == circuit.OpIdle {
					// Idle probabilities come from T1 and can be anything
					// small; just require sanity.
					if op.P < 0 || op.P > 0.5 {
						t.Fatalf("%v: idle op with probability %g", scheme, op.P)
					}
					continue
				}
				if op.P < 0 || op.P > maxP {
					t.Fatalf("%v: op %v with probability %g exceeds configured maximum %g", scheme, op.Kind, op.P, maxP)
				}
				switch op.Kind {
				case circuit.OpCNOT:
					if op.P != p.PGate2 && op.P != p.PGateTM {
						t.Fatalf("%v: CNOT with unexpected probability %g", scheme, op.P)
					}
				case circuit.OpLoad, circuit.OpStore:
					if op.P != p.PLoadStore {
						t.Fatalf("%v: load/store with probability %g", scheme, op.P)
					}
				case circuit.OpMeasureZ:
					if op.P != p.PMeasure && op.P != 0 {
						t.Fatalf("%v: measurement with probability %g", scheme, op.P)
					}
				}
			}
		}
	}
}

// Compact rounds must be gate-time dominated: the dense-packed round at d=5
// stays under 2x the Natural round plus the measurement tails (guards the
// timing model against regressions that re-serialize housekeeping).
func TestCompactRoundDurationBudget(t *testing.T) {
	p := hardware.Default()
	nat, err := Build(Config{Scheme: NaturalInterleaved, Distance: 5, Rounds: 1, Basis: BasisZ, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Build(Config{Scheme: CompactInterleaved, Distance: 5, Rounds: 1, Basis: BasisZ, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Circ.Duration() > 2*nat.Circ.Duration() {
		t.Errorf("compact round %.2gs exceeds 2x natural round %.2gs — housekeeping re-serialized?",
			cmp.Circ.Duration(), nat.Circ.Duration())
	}
	if cmp.Circ.Duration() <= nat.Circ.Duration() {
		t.Errorf("compact round should still cost more than natural (8 sub-steps vs 4 layers)")
	}
}

// Gap charging must add pure-idle moments and nothing else.
func TestGapChargingAddsOnlyIdle(t *testing.T) {
	p := hardware.Default()
	without, err := Build(Config{Scheme: NaturalInterleaved, Distance: 3, Basis: BasisZ, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Build(Config{Scheme: NaturalInterleaved, Distance: 3, Basis: BasisZ, Params: p, ChargeGapIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []circuit.OpKind{circuit.OpCNOT, circuit.OpLoad, circuit.OpStore, circuit.OpMeasureZ, circuit.OpReset, circuit.OpH} {
		if without.Circ.CountKind(kind) != with.Circ.CountKind(kind) {
			t.Errorf("gap charging changed %v count", kind)
		}
	}
	if with.Circ.CountKind(circuit.OpIdle) <= without.Circ.CountKind(circuit.OpIdle) {
		t.Error("gap charging must add idle channels")
	}
	if with.Circ.Duration() <= without.Circ.Duration() {
		t.Error("gap charging must lengthen the circuit")
	}
}
