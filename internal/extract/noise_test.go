package extract

import (
	"testing"

	"repro/internal/hardware"
)

// Reannotate must reproduce, op for op, the noise annotation of a fresh
// build at the target parameters.
func TestReannotateMatchesFreshBuild(t *testing.T) {
	for _, scheme := range Schemes {
		cfg := Config{Scheme: scheme, Distance: 3, Basis: BasisZ, Params: hardware.Default()}
		e, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, phys := range []float64{5e-4, 4e-3, 1.8e-2} {
			params := hardware.Default().ScaledGatesTo(phys)
			if err := e.Reannotate(params); err != nil {
				t.Fatalf("%v p=%g: %v", scheme, phys, err)
			}
			fresh := cfg
			fresh.Params = params
			want, err := Build(fresh)
			if err != nil {
				t.Fatal(err)
			}
			got := e.Circ.OpProbs(nil)
			ref := want.Circ.OpProbs(nil)
			if len(got) != len(ref) {
				t.Fatalf("%v p=%g: %d ops vs %d", scheme, phys, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%v p=%g: op %d probability %g, fresh build has %g", scheme, phys, i, got[i], ref[i])
				}
			}
		}
	}
}

// ScaledTo also rescales coherence times (and with them the idle-error
// probabilities); Reannotate must track that too.
func TestReannotateScaledTo(t *testing.T) {
	cfg := Config{Scheme: NaturalInterleaved, Distance: 3, Basis: BasisZ, Params: hardware.Default(), ChargeGapIdle: true}
	e, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := hardware.Default().ScaledTo(8e-3)
	if err := e.Reannotate(params); err != nil {
		t.Fatal(err)
	}
	fresh := cfg
	fresh.Params = params
	want, err := Build(fresh)
	if err != nil {
		t.Fatal(err)
	}
	got, ref := e.Circ.OpProbs(nil), want.Circ.OpProbs(nil)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("op %d probability %g, fresh build has %g", i, got[i], ref[i])
		}
	}
}

// Parameters that change the circuit structure (durations, cavity depth)
// must be rejected: the annotation recipe no longer applies.
func TestReannotateRejectsStructuralChange(t *testing.T) {
	e, err := Build(Config{Scheme: CompactInterleaved, Distance: 3, Basis: BasisZ, Params: hardware.Default()})
	if err != nil {
		t.Fatal(err)
	}
	longLS := hardware.Default()
	longLS.LoadStoreTime *= 2
	if err := e.Reannotate(longLS); err == nil {
		t.Error("changed load/store duration must be rejected")
	}
	deeper := hardware.Default()
	deeper.CavityDepth++
	if err := e.Reannotate(deeper); err == nil {
		t.Error("changed cavity depth must be rejected")
	}
}

// A noise class that was zero at build time is indistinguishable from
// deliberately perfect ops; raising it later must be rejected rather than
// silently dropped.
func TestReannotateRejectsRaisingZeroClass(t *testing.T) {
	quiet := hardware.Default()
	quiet.PGate2 = 0
	e, err := Build(Config{Scheme: Baseline, Distance: 3, Basis: BasisZ, Params: quiet})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reannotate(hardware.Default()); err == nil {
		t.Error("raising a build-time-zero class must be rejected")
	}
	// Keeping the class at zero stays fine.
	other := quiet
	other.PMeasure *= 2
	if err := e.Reannotate(other); err != nil {
		t.Errorf("re-annotation with the class still zero failed: %v", err)
	}
}

// Coherence times so large that the idle error underflows to exactly zero
// must not wedge re-annotation: the same parameters (and any others that
// keep the idle classes at zero) must round-trip cleanly.
func TestReannotateWithUnderflowedIdleNoise(t *testing.T) {
	frozen := hardware.Default()
	frozen.T1Transmon, frozen.T1Cavity = 1e12, 1e12 // lambda(~1e-7 s) == 0
	e, err := Build(Config{Scheme: Baseline, Distance: 3, Basis: BasisZ, Params: frozen})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reannotate(frozen); err != nil {
		t.Errorf("re-annotating with the build parameters failed: %v", err)
	}
	scaled := frozen.ScaledGatesTo(5e-3) // keeps the huge T1s
	if err := e.Reannotate(scaled); err != nil {
		t.Errorf("gate-only rescale with idle still zero failed: %v", err)
	}
	if err := e.Reannotate(hardware.Default()); err == nil {
		t.Error("raising idle noise absent from the build must be rejected")
	}
}

// StructuralKey must separate what it must and merge what it can.
func TestStructuralKey(t *testing.T) {
	base := Config{Scheme: CompactInterleaved, Distance: 5, Basis: BasisZ, Params: hardware.Default()}
	probOnly := base
	probOnly.Params = hardware.Default().ScaledGatesTo(7e-3)
	if base.StructuralKey() != probOnly.StructuralKey() {
		t.Error("probability-only change must keep the structural key")
	}
	coherence := base
	coherence.Params.T1Cavity *= 10
	if base.StructuralKey() != coherence.StructuralKey() {
		t.Error("coherence-time change must keep the structural key")
	}
	rounds := base
	rounds.Rounds = base.Distance
	if base.StructuralKey() != rounds.StructuralKey() {
		t.Error("Rounds=0 and Rounds=Distance must normalize to the same key")
	}
	dur := base
	dur.Params.Gate2Time *= 2
	if base.StructuralKey() == dur.StructuralKey() {
		t.Error("duration change must change the structural key")
	}
	depth := base
	depth.Params.CavityDepth = 4
	if base.StructuralKey() == depth.StructuralKey() {
		t.Error("cavity-depth change must change the structural key")
	}
	zeroed := base
	zeroed.Params.PGate2 = 0
	if base.StructuralKey() == zeroed.StructuralKey() {
		t.Error("zeroing a probability class must change the structural key (its ops lose their faults)")
	}
}
