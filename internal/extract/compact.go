package extract

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/layout"
)

// compactAction is one CNOT of the Compact schedule: plaquette plaq performs
// its step-th CNOT (in the Compact per-type data order).
type compactAction struct {
	plaq, step int
}

// compactStream unrolls the pipelined Fig. 10 schedule for the given number
// of rounds. The returned stream has rounds*8+2 sub-steps: group C's last
// two CNOTs of round r execute during the first two sub-steps of round r+1,
// and the final two sub-steps are the cool-down flush of the last round's C
// extraction. stream[t] lists the CNOT actions of sub-step t; dutyStart[p]
// and dutyEnd[p] list, per plaquette, the sub-steps at which each of its
// extraction cycles begins and ends.
func compactStream(code *layout.Code, rounds int) (stream [][]compactAction, dutyStart, dutyEnd [][]int) {
	stream = make([][]compactAction, rounds*8+2)
	dutyStart = make([][]int, code.NumPlaquettes())
	dutyEnd = make([][]int, code.NumPlaquettes())
	for i := range code.Plaquettes {
		p := &code.Plaquettes[i]
		g := layout.CompactGroupOf(p)
		first, last := layout.CompactDutyWindow(g)
		for rep := 0; rep < rounds; rep++ {
			for s := 0; s < 4; s++ {
				t := rep*8 + layout.CompactStepOf(g, s)
				stream[t] = append(stream[t], compactAction{plaq: i, step: s})
			}
			dutyStart[i] = append(dutyStart[i], rep*8+first)
			dutyEnd[i] = append(dutyEnd[i], rep*8+last)
		}
	}
	return stream, dutyStart, dutyEnd
}

// buildCompact assembles the Compact-embedding experiments (§III-C). The
// schedule follows Fig. 10: eight CNOT sub-steps per round, two phase groups
// active per sub-step, transmon-mode gates for colocated data, and
// just-in-time loads with store-on-last-consecutive-use (which achieves the
// one-load-one-store-per-data-per-round property for bulk data).
//
// All-at-once pipelines all rounds into one stream preceded by a single
// (k-1)-super-cycle cavity gap; Interleaved emits one self-contained round
// (with its own pipeline flush) per turn, with (k-1)-turn gaps between.
func (e *Experiment) buildCompact() error {
	rounds := e.Config.rounds()

	// Probe pass: build one gapless unit to learn its wall-clock duration
	// for the serialization gaps.
	interleaved := e.Config.Scheme == CompactInterleaved
	unitRounds := rounds
	if interleaved {
		unitRounds = 1
	}
	probeDur, err := e.compactProbeDuration(unitRounds)
	if err != nil {
		return err
	}
	turns := float64(e.Config.Params.CavityDepth - 1)

	nslots, locs := e.slotPlan()
	b := circuit.NewBuilder(nslots, locs)
	idle := e.idlePolicy()
	for q := 0; q < e.Code.NumData(); q++ {
		b.SetOccupied(e.ModeSlot[q])
	}
	rec := newRecorder(e.Code.NumPlaquettes())

	gap := func(dur float64) {
		if dur <= 0 || !e.Config.ChargeGapIdle {
			return
		}
		b.Begin(dur)
		b.End(idle)
	}

	if interleaved {
		for r := 0; r < rounds; r++ {
			gap(turns * probeDur)
			if err := e.compactBody(b, rec, 1); err != nil {
				return err
			}
		}
	} else {
		gap(turns * probeDur)
		if err := e.compactBody(b, rec, rounds); err != nil {
			return err
		}
	}

	final := finalReadout(b, e.Config.Basis, e.Code.NumData(), func(q int) int { return e.ModeSlot[q] })
	circ, err := b.Finish()
	if err != nil {
		return err
	}
	e.Circ = circ
	return e.finishDetectors(rec, final)
}

// compactProbeDuration measures the duration of a gapless pipeline of the
// given round count by building it against a scratch builder.
func (e *Experiment) compactProbeDuration(rounds int) (float64, error) {
	nslots, locs := e.slotPlan()
	b := circuit.NewBuilder(nslots, locs)
	for q := 0; q < e.Code.NumData(); q++ {
		b.SetOccupied(e.ModeSlot[q])
	}
	rec := newRecorder(e.Code.NumPlaquettes())
	if err := e.compactBody(b, rec, rounds); err != nil {
		return 0, err
	}
	c, err := b.Finish()
	if err != nil {
		return 0, err
	}
	return c.Duration(), nil
}

// compactBody emits one pipelined stream of the given round count. Data
// begin and end in their cavity modes.
func (e *Experiment) compactBody(b *circuit.Builder, rec *recorder, rounds int) error {
	p := e.Config.Params
	idle := e.idlePolicy()
	code := e.Code
	emb := e.Emb
	anc := func(plaq int) int { return e.TransmonSlot[emb.AncHost[plaq]] }
	host := func(q int) int { return e.TransmonSlot[emb.DataHost[q]] }

	stream, dutyStart, dutyEnd := compactStream(code, rounds)

	// Invert duty boundaries: which plaquettes start/end at sub-step t.
	startsAt := make(map[int][]int)
	endsAt := make(map[int][]int)
	for i := range code.Plaquettes {
		for _, t := range dutyStart[i] {
			startsAt[t] = append(startsAt[t], i)
		}
		for _, t := range dutyEnd[i] {
			endsAt[t] = append(endsAt[t], i)
		}
	}

	loaded := make([]bool, code.NumData())
	neededAt := func(t int) map[int]bool {
		need := map[int]bool{}
		if t >= len(stream) {
			return need
		}
		for _, a := range stream[t] {
			q := code.CompactDataStep(&code.Plaquettes[a.plaq], a.step)
			if q >= 0 && !emb.Colocated(a.plaq, q) {
				need[q] = true
			}
		}
		return need
	}

	// boundary emits the housekeeping between sub-step t-1 and t (or after
	// the final sub-step when t == len(stream)), packed into at most three
	// moments per the Fig. 10 pipelining:
	//
	//	M1: basis-closing Hadamards of finished X ancillas + stores of
	//	    loaded data whose consecutive-use run ended (disjoint: a
	//	    just-finished ancilla transmon never hosts currently-loaded
	//	    data);
	//	M2: measurements of finished ancillas + resets of starting
	//	    ancillas + loads for the upcoming sub-step (disjoint: duty
	//	    windows are >= 5 sub-steps apart, and the schedule's
	//	    host-availability property keeps loads off ending/starting
	//	    ancilla transmons — the builder verifies all of this);
	//	M3: basis-opening Hadamards of starting X ancillas (must follow
	//	    their own reset in M2).
	//
	// Timing model: Fig. 10 executes this housekeeping *concurrently* with
	// neighboring CNOT sub-steps on disjoint transmons (the loads, stores,
	// resets and Hadamards all fit within one 200 ns two-qubit-gate slot).
	// The boundary moments here therefore preserve the causal order of the
	// operations and their gate-error channels but charge zero additional
	// wall-clock time, except for the measurement tail (300 ns readout
	// exceeds the 200 ns sub-step it overlaps, so the 100 ns excess is
	// charged). This keeps the Compact round near its dense-packed length
	// (~2 us) instead of serializing every housekeeping moment (~5 us),
	// matching the paper's claim that Compact has "a similar cost as
	// Natural, Interleaved".
	boundary := func(t int) {
		ended := endsAt[t-1]
		started := startsAt[t]
		need := neededAt(t)
		var stores []int
		for q := range loaded {
			if loaded[q] && !need[q] {
				stores = append(stores, q)
			}
		}
		var loads []int
		for q := 0; q < code.NumData(); q++ {
			if need[q] && !loaded[q] {
				loads = append(loads, q)
			}
		}
		var hEnd, hStart []int
		for _, pl := range ended {
			if code.Plaquettes[pl].Type == layout.PlaqX {
				hEnd = append(hEnd, pl)
			}
		}
		for _, pl := range started {
			if code.Plaquettes[pl].Type == layout.PlaqX {
				hStart = append(hStart, pl)
			}
		}

		if len(hEnd) > 0 || len(stores) > 0 {
			b.Begin(0)
			for _, pl := range hEnd {
				b.H(anc(pl), p.PGate1)
			}
			for _, q := range stores {
				b.Store(host(q), e.ModeSlot[q], p.PLoadStore)
				loaded[q] = false
			}
			b.End(idle)
		}
		if len(ended) > 0 || len(started) > 0 || len(loads) > 0 {
			// Only measurement time cannot hide under a neighboring
			// 200 ns CNOT sub-step; charge the excess.
			dur := 0.0
			if len(ended) > 0 && p.MeasureTime > p.Gate2Time {
				dur = p.MeasureTime - p.Gate2Time
			}
			b.Begin(dur)
			for _, pl := range ended {
				rec.add(pl, b.MeasureZ(anc(pl), p.PMeasure))
			}
			for _, pl := range started {
				b.Reset(anc(pl), p.PReset)
			}
			for _, q := range loads {
				b.Load(host(q), e.ModeSlot[q], p.PLoadStore)
				loaded[q] = true
			}
			b.End(idle)
			for _, pl := range ended {
				b.Discard(anc(pl))
			}
		}
		if len(hStart) > 0 {
			b.Begin(0)
			for _, pl := range hStart {
				b.H(anc(pl), p.PGate1)
			}
			b.End(idle)
		}
	}

	for t := 0; t < len(stream); t++ {
		boundary(t)
		if len(stream[t]) == 0 {
			continue
		}
		b.Begin(p.Gate2Time)
		for _, a := range stream[t] {
			pl := &code.Plaquettes[a.plaq]
			q := code.CompactDataStep(pl, a.step)
			if q < 0 {
				continue
			}
			if emb.Colocated(a.plaq, q) {
				// Transmon-mode gate: the data stays in the cavity.
				if pl.Type == layout.PlaqZ {
					b.CNOT(e.ModeSlot[q], anc(a.plaq), p.PGateTM)
				} else {
					b.CNOT(anc(a.plaq), e.ModeSlot[q], p.PGateTM)
				}
				continue
			}
			if !loaded[q] {
				return fmt.Errorf("extract: data %d not loaded for plaquette %d step %d at sub-step %d", q, a.plaq, a.step, t)
			}
			if pl.Type == layout.PlaqZ {
				b.CNOT(host(q), anc(a.plaq), p.PGate2)
			} else {
				b.CNOT(anc(a.plaq), host(q), p.PGate2)
			}
		}
		b.End(idle)
	}
	boundary(len(stream))
	for q := range loaded {
		if loaded[q] {
			return fmt.Errorf("extract: data %d still loaded at end of compact body", q)
		}
	}
	return nil
}
