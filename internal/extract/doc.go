// Package extract generates the syndrome-extraction experiments evaluated in
// the paper: the Baseline 2D surface code (Fig. 2) and the four 2.5D memory
// variants — Natural and Compact embeddings, each with All-at-once or
// Interleaved scheduling (§III-A, §III-C, §V). An Experiment bundles the
// noisy circuit, the detector definitions, and the logical observable for a
// memory experiment in a chosen basis.
//
// Trial anatomy (memory-Z, distance d, R rounds):
//
//	prepare |0>^d^2 perfectly  ->  [scheme-specific rounds with noise,
//	including the cavity-residency gaps implied by cavity depth k]  ->
//	perfect data readout.
//
// Z-plaquette syndrome records form the detectors (first record compared to
// the deterministic reference, consecutive records XORed, final record
// compared to the data readout); the logical observable is the data-readout
// parity along the logical-Z string. The memory-X experiment is the mirror
// image. The paper's cavity-size serialization appears as explicit
// cavity-idle gap moments: with depth k, an Interleaved patch waits k-1
// round-durations between its own rounds, and an All-at-once patch waits
// (k-1)*d round-durations between super-cycles (§III-A, §VI).
//
// The build is split the same way the rest of the pipeline is — an
// expensive structural half and a cheap per-noise-scale half:
//
//   - Build(Config) constructs the full Experiment: moments, gates, noise
//     annotations, detectors, observable.
//   - Config.StructuralKey identifies everything that survives a change
//     of error probabilities (scheme, distance, rounds, basis, and the
//     durations that shape the circuit). Two Configs with equal keys
//     share one circuit structure.
//   - Experiment.Reannotate / Experiment.NoiseProbs re-derive only the
//     per-op error probabilities for new hardware.Params, so a sweep
//     builds each circuit once and re-noises it per scale. NoiseProbs
//     feeds dem.Structure.Reweight directly.
//
// Entry points: Config -> Build -> Experiment; Scheme and Basis enumerate
// the five Fig. 11 setups and the two memory bases; Schemes lists them in
// paper order.
package extract
