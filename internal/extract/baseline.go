package extract

import (
	"repro/internal/circuit"
	"repro/internal/layout"
)

// alignedRoundDuration is the wall-clock length of one standard
// syndrome-extraction round (used by Baseline and Natural): ancilla reset,
// basis change, four CNOT layers, basis change, measurement.
func (e *Experiment) alignedRoundDuration() float64 {
	p := e.Config.Params
	return p.ResetTime + 2*p.Gate1Time + 4*p.Gate2Time + p.MeasureTime
}

// alignedRound emits one standard extraction round. Data qubits must
// currently reside in their data transmons (always true for Baseline; true
// between load and store for Natural). All plaquettes extract in parallel
// using the four compatible CNOT layers of layout.ZOrder/XOrder.
func (e *Experiment) alignedRound(b *circuit.Builder, rec *recorder) {
	p := e.Config.Params
	idle := e.idlePolicy()
	code := e.Code
	anc := func(plaq int) int { return e.TransmonSlot[e.Emb.AncHost[plaq]] }
	data := func(q int) int { return e.TransmonSlot[e.Emb.DataHost[q]] }

	b.Begin(p.ResetTime)
	for i := range code.Plaquettes {
		b.Reset(anc(i), p.PReset)
	}
	b.End(idle)

	hLayer := func() {
		b.Begin(p.Gate1Time)
		for i := range code.Plaquettes {
			if code.Plaquettes[i].Type == layout.PlaqX {
				b.H(anc(i), p.PGate1)
			}
		}
		b.End(idle)
	}
	hLayer()

	for l := 0; l < 4; l++ {
		b.Begin(p.Gate2Time)
		for i := range code.Plaquettes {
			pl := &code.Plaquettes[i]
			q := pl.DataIdx[l]
			if q < 0 {
				continue
			}
			if pl.Type == layout.PlaqZ { // data controls, ancilla accumulates
				b.CNOT(data(q), anc(i), p.PGate2)
			} else { // PlaqX: ancilla controls
				b.CNOT(anc(i), data(q), p.PGate2)
			}
		}
		b.End(idle)
	}

	hLayer()

	b.Begin(p.MeasureTime)
	for i := range code.Plaquettes {
		rec.add(i, b.MeasureZ(anc(i), p.PMeasure))
	}
	b.End(idle)
	for i := range code.Plaquettes {
		b.Discard(anc(i))
	}
}

// buildBaseline assembles the conventional 2D experiment: data live in their
// transmons for the whole trial; no loads, stores, or gaps.
func (e *Experiment) buildBaseline() error {
	nslots, locs := e.slotPlan()
	b := circuit.NewBuilder(nslots, locs)
	dataSlot := func(q int) int { return e.TransmonSlot[e.Emb.DataHost[q]] }
	for q := 0; q < e.Code.NumData(); q++ {
		b.SetOccupied(dataSlot(q))
	}
	rec := newRecorder(e.Code.NumPlaquettes())
	for r := 0; r < e.Config.rounds(); r++ {
		e.alignedRound(b, rec)
	}
	final := finalReadout(b, e.Config.Basis, e.Code.NumData(), dataSlot)
	circ, err := b.Finish()
	if err != nil {
		return err
	}
	e.Circ = circ
	return e.finishDetectors(rec, final)
}
