package extract

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/hardware"
	"repro/internal/layout"
	"repro/internal/stab"
)

func testParams() hardware.Params {
	p := hardware.Default()
	return p
}

func build(t *testing.T, scheme Scheme, d int, basis Basis) *Experiment {
	t.Helper()
	e, err := Build(Config{Scheme: scheme, Distance: d, Basis: basis, Params: testParams()})
	if err != nil {
		t.Fatalf("%v d=%d basis=%v: %v", scheme, d, basis, err)
	}
	return e
}

// runTableau executes the experiment's circuit on the exact stabilizer
// simulator, ignoring noise probabilities, and returns the measurement
// outcomes. Random outcomes draw from rng.
func runTableau(t *testing.T, e *Experiment, rng *rand.Rand) []byte {
	t.Helper()
	tab := stab.New(e.Circ.NumSlots)
	if e.Config.Basis == BasisX {
		// Perfect |+> preparation of the resting data slots.
		for q := 0; q < e.Code.NumData(); q++ {
			slot := e.ModeSlot[q]
			if slot < 0 {
				slot = e.TransmonSlot[e.Emb.DataHost[q]]
			}
			tab.H(slot)
		}
	}
	out := make([]byte, e.Circ.NumMeas)
	for mi := range e.Circ.Moments {
		for _, op := range e.Circ.Moments[mi].Ops {
			switch op.Kind {
			case circuit.OpReset:
				tab.Reset(op.A, rng)
			case circuit.OpH:
				tab.H(op.A)
			case circuit.OpCNOT:
				tab.CNOT(op.A, op.B)
			case circuit.OpLoad:
				// The transmon is re-initialized as part of the transfer.
				tab.Reset(op.A, rng)
				tab.SWAP(op.A, op.B)
			case circuit.OpStore:
				tab.Reset(op.B, rng)
				tab.SWAP(op.A, op.B)
			case circuit.OpMeasureZ:
				o, _ := tab.MeasureZ(op.A, rng)
				out[op.MeasIdx] = o
			case circuit.OpIdle:
				// no unitary action
			}
		}
	}
	return out
}

// Quiescence: in a noiseless execution every detector of every scheme must
// be zero — the first syndrome round is deterministic given the preparation
// basis, repeated syndromes agree, and the perfect final data readout
// reconstructs the last syndrome. This exercises the full extraction
// machinery (CNOT orders, compact pipelining, loads/stores) against the
// exact simulator.
func TestQuiescenceAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, scheme := range Schemes {
		for _, basis := range []Basis{BasisZ, BasisX} {
			for _, d := range []int{3, 5} {
				e := build(t, scheme, d, basis)
				for trial := 0; trial < 3; trial++ {
					out := runTableau(t, e, rng)
					for di, det := range e.Detectors {
						v := byte(0)
						for _, m := range det.Meas {
							v ^= out[m]
						}
						if v != 0 {
							t.Fatalf("%v d=%d basis=%v: detector %d (plaq %d round %d) fired in noiseless run",
								scheme, d, basis, di, det.Plaq, det.Round)
						}
					}
				}
			}
		}
	}
}

// The logical observable must be deterministic (and 0 for the +1 eigenstate
// preparations we use) in a noiseless run, and flip when the corresponding
// logical operator is applied mid-circuit.
func TestObservableDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, scheme := range Schemes {
		for _, basis := range []Basis{BasisZ, BasisX} {
			e := build(t, scheme, 3, basis)
			out := runTableau(t, e, rng)
			v := byte(0)
			for _, m := range e.Observable {
				v ^= out[m]
			}
			if v != 0 {
				t.Errorf("%v basis=%v: noiseless logical readout = %d, want 0", scheme, basis, v)
			}
		}
	}
}

func TestDetectorAndMeasCounts(t *testing.T) {
	for _, scheme := range Schemes {
		for _, d := range []int{3, 5} {
			e := build(t, scheme, d, BasisZ)
			nz := (d*d - 1) / 2
			wantDet := nz * (d + 1) // d rounds of syndromes + final closure
			if len(e.Detectors) != wantDet {
				t.Errorf("%v d=%d: %d detectors, want %d", scheme, d, len(e.Detectors), wantDet)
			}
			wantMeas := (d*d-1)*d + d*d // d rounds of all plaquettes + final data
			if e.Circ.NumMeas != wantMeas {
				t.Errorf("%v d=%d: %d measurements, want %d", scheme, d, e.Circ.NumMeas, wantMeas)
			}
			if len(e.Observable) != d {
				t.Errorf("%v d=%d: observable support %d, want %d", scheme, d, len(e.Observable), d)
			}
		}
	}
}

// Load/store accounting. Natural All-at-once: one load and one store per
// data per super-cycle. Natural Interleaved: one per data per round. Compact
// (pipelined, all-at-once): colocated data never move; bulk data move once
// per round.
func TestLoadStoreCounts(t *testing.T) {
	d := 5
	ndata := d * d
	rounds := d

	nat := build(t, NaturalAllAtOnce, d, BasisZ)
	if got := nat.Circ.CountKind(circuit.OpLoad); got != ndata {
		t.Errorf("natural AAO: %d loads, want %d", got, ndata)
	}

	ni := build(t, NaturalInterleaved, d, BasisZ)
	if got := ni.Circ.CountKind(circuit.OpLoad); got != ndata*rounds {
		t.Errorf("natural interleaved: %d loads, want %d", got, ndata*rounds)
	}

	// Compact: every non-colocated data use requires residency; the
	// schedule's consecutive-use property bounds loads by uses. Count
	// colocated data (never loaded).
	ca := build(t, CompactAllAtOnce, d, BasisZ)
	loads := ca.Circ.CountKind(circuit.OpLoad)
	stores := ca.Circ.CountKind(circuit.OpStore)
	if loads != stores {
		t.Errorf("compact AAO: %d loads vs %d stores", loads, stores)
	}
	// Bulk data load exactly once per round. Boundary data may need a second
	// residency per round, but the total must stay well under one load per
	// use (3 per round) — the Fig. 10 amortization property.
	maxLoads := rounds * ndata * 2
	minLoads := rounds * 1
	if loads < minLoads || loads > maxLoads {
		t.Errorf("compact AAO: %d loads outside sanity window [%d,%d]", loads, minLoads, maxLoads)
	}
	perRound := float64(loads) / float64(rounds) / float64(ndata)
	if perRound > 1.5 {
		t.Errorf("compact AAO: %.2f loads per data per round; amortization lost", perRound)
	}

	// Transmon-mode gates: one per merged plaquette per round.
	wantTM := (d*d - 1 - (d - 1)) * rounds
	if got := ca.Circ.CountKind(circuit.OpCNOT); got <= 0 {
		t.Fatal("compact AAO has no CNOTs")
	}
	tm := 0
	for mi := range ca.Circ.Moments {
		for _, op := range ca.Circ.Moments[mi].Ops {
			if op.Kind == circuit.OpCNOT && ca.Circ.SlotLoc[op.A] == circuit.SlotCavityMode ||
				op.Kind == circuit.OpCNOT && ca.Circ.SlotLoc[op.B] == circuit.SlotCavityMode {
				tm++
			}
		}
	}
	if tm != wantTM {
		t.Errorf("compact AAO: %d transmon-mode gates, want %d", tm, wantTM)
	}
}

// With gap-idle charging enabled (the Fig. 12 mode), the serialization gaps
// must scale with cavity depth: with k=1 there are no gaps, and the k=10
// circuit is much longer in wall-clock time. Without it (the Fig. 11 mode),
// cavity depth does not change the circuit.
func TestCavityDepthGaps(t *testing.T) {
	p1 := testParams()
	p1.CavityDepth = 1
	e1, err := Build(Config{Scheme: NaturalInterleaved, Distance: 3, Basis: BasisZ, Params: p1, ChargeGapIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	p10 := testParams()
	e10, err := Build(Config{Scheme: NaturalInterleaved, Distance: 3, Basis: BasisZ, Params: p10, ChargeGapIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	d1, d10 := e1.Circ.Duration(), e10.Circ.Duration()
	if d10 < 8*d1 {
		t.Errorf("k=10 duration %g not ~10x k=1 duration %g (gap idle charged)", d10, d1)
	}
	// Without gap charging the duration is independent of k.
	n1, _ := Build(Config{Scheme: NaturalInterleaved, Distance: 3, Basis: BasisZ, Params: p1})
	n10, _ := Build(Config{Scheme: NaturalInterleaved, Distance: 3, Basis: BasisZ, Params: p10})
	if n1.Circ.Duration() != n10.Circ.Duration() {
		t.Error("without gap charging, duration must not depend on cavity depth")
	}
	// Baseline is unaffected by cavity depth either way.
	b1, _ := Build(Config{Scheme: Baseline, Distance: 3, Basis: BasisZ, Params: p1})
	b10, _ := Build(Config{Scheme: Baseline, Distance: 3, Basis: BasisZ, Params: p10})
	if b1.Circ.Duration() != b10.Circ.Duration() {
		t.Error("baseline duration must not depend on cavity depth")
	}
}

// Memory schemes use dramatically fewer transmons.
func TestSlotBudget(t *testing.T) {
	d := 5
	base := build(t, Baseline, d, BasisZ)
	cmp := build(t, CompactAllAtOnce, d, BasisZ)
	baseTransmons := 0
	for _, loc := range base.Circ.SlotLoc {
		if loc == circuit.SlotTransmon {
			baseTransmons++
		}
	}
	cmpTransmons := 0
	for _, loc := range cmp.Circ.SlotLoc {
		if loc == circuit.SlotTransmon {
			cmpTransmons++
		}
	}
	if baseTransmons != 2*d*d-1 || cmpTransmons != d*d+d-1 {
		t.Errorf("transmon slots: baseline %d (want %d), compact %d (want %d)",
			baseTransmons, 2*d*d-1, cmpTransmons, d*d+d-1)
	}
}

// Building with an explicit round count different from d must work (used by
// the sensitivity sweeps).
func TestExplicitRounds(t *testing.T) {
	e, err := Build(Config{Scheme: CompactInterleaved, Distance: 3, Rounds: 7, Basis: BasisZ, Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	nz := (3*3 - 1) / 2
	if want := nz * 8; len(e.Detectors) != want {
		t.Errorf("detectors = %d, want %d", len(e.Detectors), want)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Scheme: Baseline, Distance: 4, Basis: BasisZ, Params: testParams()}); err == nil {
		t.Error("even distance must fail")
	}
	bad := testParams()
	bad.PGate2 = 2
	if _, err := Build(Config{Scheme: Baseline, Distance: 3, Basis: BasisZ, Params: bad}); err == nil {
		t.Error("invalid params must fail")
	}
	p := testParams()
	p.CavityDepth = 0
	if _, err := Build(Config{Scheme: NaturalAllAtOnce, Distance: 3, Basis: BasisZ, Params: p}); err == nil {
		t.Error("zero cavity depth must fail for memory schemes")
	}
}

// Every scheme/basis pair must produce a circuit whose every moment respects
// builder invariants (Finish succeeded) and where plaquette histories are
// strictly increasing measurement indices (time-ordering).
func TestMeasurementTimeOrdering(t *testing.T) {
	for _, scheme := range Schemes {
		e := build(t, scheme, 3, BasisZ)
		// Group detector definitions per plaquette and check round order.
		last := map[int]int{}
		for _, det := range e.Detectors {
			if det.Round <= last[det.Plaq] {
				t.Errorf("%v: detector rounds out of order for plaquette %d", scheme, det.Plaq)
			}
			last[det.Plaq] = det.Round
		}
	}
}

var _ = layout.PlaqZ // keep import if unused in some builds
