package extract

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/hardware"
)

// noiseClass identifies which hardware parameter drives an op's error
// probability. It is the bridge that lets an experiment's circuit be built
// once (structure) and re-annotated cheaply for every noise scale of a sweep.
type noiseClass uint8

const (
	noiseNone         noiseClass = iota // deliberately perfect op (built with P == 0)
	noiseReset                          // Params.PReset
	noiseGate1                          // Params.PGate1
	noiseGate2                          // Params.PGate2
	noiseGateTM                         // Params.PGateTM
	noiseLoadStore                      // Params.PLoadStore
	noiseMeasure                        // Params.PMeasure
	noiseIdleTransmon                   // Params.LambdaTransmon(moment duration)
	noiseIdleCavity                     // Params.LambdaCavity(moment duration)
)

// opNoise is the per-op annotation recipe: the driving class plus the moment
// duration (needed only by the idle classes). zeroed marks ops whose class
// probability was zero at build time: they carry no faults in any model
// structure derived from the build, so raising their class later is invalid.
type opNoise struct {
	class  noiseClass
	dur    float64
	zeroed bool
}

// classProb evaluates a noise class against a parameter set.
func classProb(p *hardware.Params, n opNoise) float64 {
	switch n.class {
	case noiseReset:
		return p.PReset
	case noiseGate1:
		return p.PGate1
	case noiseGate2:
		return p.PGate2
	case noiseGateTM:
		return p.PGateTM
	case noiseLoadStore:
		return p.PLoadStore
	case noiseMeasure:
		return p.PMeasure
	case noiseIdleTransmon:
		return p.LambdaTransmon(n.dur)
	case noiseIdleCavity:
		return p.LambdaCavity(n.dur)
	default:
		return 0
	}
}

// classOf derives the noise class of one op from its kind and slot
// locations. CNOTs between a transmon and a cavity mode are the
// transmon-mode gates of the Compact schedule; all other CNOTs are SC-SC.
func classOf(c *circuit.Circuit, op *circuit.Op, dur float64) opNoise {
	switch op.Kind {
	case circuit.OpReset:
		return opNoise{class: noiseReset}
	case circuit.OpH:
		return opNoise{class: noiseGate1}
	case circuit.OpCNOT:
		if c.SlotLoc[op.A] == circuit.SlotTransmon && c.SlotLoc[op.B] == circuit.SlotTransmon {
			return opNoise{class: noiseGate2}
		}
		return opNoise{class: noiseGateTM}
	case circuit.OpLoad, circuit.OpStore:
		return opNoise{class: noiseLoadStore}
	case circuit.OpMeasureZ:
		return opNoise{class: noiseMeasure}
	default: // OpIdle
		if c.SlotLoc[op.A] == circuit.SlotTransmon {
			return opNoise{class: noiseIdleTransmon, dur: dur}
		}
		return opNoise{class: noiseIdleCavity, dur: dur}
	}
}

// classifyNoise derives the annotation recipe for every op of the built
// circuit, in global op order. Ops whose probability is zero while their
// class probability under the build parameters is positive are deliberately
// perfect (e.g. the closing data readout) and stay perfect under any
// re-annotation. A class whose build probability is zero is ambiguous — a
// perfect op cannot be told apart from a noisy op of a zero-probability
// class — so re-annotating it to a nonzero value is rejected later.
func (e *Experiment) classifyNoise() error {
	p := e.Config.Params
	c := e.Circ
	e.noise = e.noise[:0]
	for mi := range c.Moments {
		m := &c.Moments[mi]
		for oi := range m.Ops {
			op := &m.Ops[oi]
			n := classOf(c, op, m.Duration)
			want := classProb(&p, n)
			switch {
			case op.P == want && want > 0:
				// Normal noisy op; the class drives re-annotation.
			case op.P == 0 && want == 0:
				// The whole class is zero here: indistinguishable from a
				// deliberately perfect op, and no faults were recorded.
				n.zeroed = true
			case op.P == 0:
				n = opNoise{class: noiseNone} // deliberately perfect op
			default:
				return fmt.Errorf("extract: op %v has probability %g, class %d expects %g",
					op.Kind, op.P, n.class, want)
			}
			e.noise = append(e.noise, n)
		}
	}
	return nil
}

// StructuralKey identifies the circuit structure shared by every build of a
// configuration whose parameters differ only in error probabilities and
// coherence times. Two configs with equal keys build moment-for-moment,
// op-for-op identical circuits (up to noise annotation), so a detector error
// model Structure derived from one can be Reweighted for the other. This is
// the cache key of the Monte-Carlo engine's structure cache.
type StructuralKey struct {
	Scheme        Scheme
	Distance      int
	Rounds        int // normalized: 0 => Distance
	Basis         Basis
	ChargeGapIdle bool

	// Structural hardware parameters: everything that shapes moments,
	// durations, or slot counts (as opposed to probabilities).
	Gate2Time     float64
	Gate1Time     float64
	GateTMTime    float64
	LoadStoreTime float64
	MeasureTime   float64
	ResetTime     float64
	CavityDepth   int

	// ZeroProbs marks probability classes that are zero at build time.
	// Zero-probability ops carry no faults, so a detector-error-model
	// Structure built with a class at zero cannot serve parameters that
	// raise it: the zero pattern is part of the structure.
	ZeroProbs uint8
}

// StructuralKey returns the structure cache key of the configuration.
func (c Config) StructuralKey() StructuralKey {
	var zero uint8
	for i, p := range [...]float64{
		c.Params.PGate2, c.Params.PGate1, c.Params.PGateTM,
		c.Params.PLoadStore, c.Params.PMeasure, c.Params.PReset,
	} {
		if p == 0 {
			zero |= 1 << i
		}
	}
	return StructuralKey{
		Scheme:        c.Scheme,
		Distance:      c.Distance,
		Rounds:        c.rounds(),
		Basis:         c.Basis,
		ChargeGapIdle: c.ChargeGapIdle,
		Gate2Time:     c.Params.Gate2Time,
		Gate1Time:     c.Params.Gate1Time,
		GateTMTime:    c.Params.GateTMTime,
		LoadStoreTime: c.Params.LoadStoreTime,
		MeasureTime:   c.Params.MeasureTime,
		ResetTime:     c.Params.ResetTime,
		CavityDepth:   c.Params.CavityDepth,
		ZeroProbs:     zero,
	}
}

// checkStructural rejects a re-annotation that would require a different
// circuit structure (changed durations, cavity depth, or the pattern of
// zeroed probability classes).
func (e *Experiment) checkStructural(params hardware.Params) error {
	cfg := e.Config
	cfg.Params = params
	if got, want := cfg.StructuralKey(), e.Config.StructuralKey(); got != want {
		return fmt.Errorf("extract: parameters change the circuit structure (durations, cavity depth, or zeroed noise classes); rebuild the experiment")
	}
	return nil
}

// NoiseProbs computes the per-op error probabilities the experiment's
// circuit would carry if it were rebuilt with params, in global op order
// (appending to dst), without rebuilding anything. It fails if params imply
// a structurally different circuit, or if a noise class that was zero at
// build time (and therefore indistinguishable from deliberately perfect
// ops) is being raised to a nonzero value.
func (e *Experiment) NoiseProbs(params hardware.Params, dst []float64) ([]float64, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := e.checkStructural(params); err != nil {
		return nil, err
	}
	for i := range e.noise {
		n := &e.noise[i]
		p := classProb(&params, *n)
		if n.zeroed && p != 0 {
			// This op's class was zero at build time, so no faults for it
			// exist in any structure derived from the build; silently
			// dropping its new noise would skew results.
			return nil, fmt.Errorf("extract: noise class %d was zero at build time (op %d carries no faults); rebuild the experiment to raise it", n.class, i)
		}
		dst = append(dst, p)
	}
	return dst, nil
}

// Reannotate rewrites the circuit's noise annotation in place for params,
// keeping the structure untouched. It is the cheap alternative to
// extract.Build when only error probabilities or coherence times change —
// e.g. across the physical-rate axis of a threshold sweep.
func (e *Experiment) Reannotate(params hardware.Params) error {
	ps, err := e.NoiseProbs(params, make([]float64, 0, e.Circ.NumOps()))
	if err != nil {
		return err
	}
	if err := e.Circ.SetOpProbs(ps); err != nil {
		return err
	}
	e.Config.Params = params
	return nil
}
