package extract

import "repro/internal/circuit"

// buildNatural assembles the Natural-embedding experiments (§III-A). Data
// qubits rest in mode z of the cavity under their own transmon; extraction
// rounds are the standard aligned rounds, bracketed by parallel loads and
// stores. Cavity-depth serialization appears as explicit gap moments:
//
//   - All-at-once: one gap of (k-1) super-cycles before the patch's burst of
//     d rounds (the other k-1 patches each take a full super-cycle turn).
//   - Interleaved: a gap of (k-1) single-round turns before every round.
func (e *Experiment) buildNatural() error {
	p := e.Config.Params
	rounds := e.Config.rounds()
	nslots, locs := e.slotPlan()
	b := circuit.NewBuilder(nslots, locs)
	idle := e.idlePolicy()

	for q := 0; q < e.Code.NumData(); q++ {
		b.SetOccupied(e.ModeSlot[q])
	}
	rec := newRecorder(e.Code.NumPlaquettes())

	roundDur := e.alignedRoundDuration()
	turns := float64(p.CavityDepth - 1)

	gap := func(dur float64) {
		if dur <= 0 || !e.Config.ChargeGapIdle {
			return
		}
		b.Begin(dur)
		b.End(idle)
	}
	loadAll := func() {
		b.Begin(p.LoadStoreTime)
		for q := 0; q < e.Code.NumData(); q++ {
			b.Load(e.TransmonSlot[e.Emb.DataHost[q]], e.ModeSlot[q], p.PLoadStore)
		}
		b.End(idle)
	}
	storeAll := func() {
		b.Begin(p.LoadStoreTime)
		for q := 0; q < e.Code.NumData(); q++ {
			b.Store(e.TransmonSlot[e.Emb.DataHost[q]], e.ModeSlot[q], p.PLoadStore)
		}
		b.End(idle)
	}

	if e.Config.Scheme == NaturalAllAtOnce {
		superCycle := 2*p.LoadStoreTime + float64(rounds)*roundDur
		gap(turns * superCycle)
		loadAll()
		for r := 0; r < rounds; r++ {
			e.alignedRound(b, rec)
		}
		storeAll()
	} else {
		turnDur := 2*p.LoadStoreTime + roundDur
		for r := 0; r < rounds; r++ {
			gap(turns * turnDur)
			loadAll()
			e.alignedRound(b, rec)
			storeAll()
		}
	}

	final := finalReadout(b, e.Config.Basis, e.Code.NumData(), func(q int) int { return e.ModeSlot[q] })
	circ, err := b.Finish()
	if err != nil {
		return err
	}
	e.Circ = circ
	return e.finishDetectors(rec, final)
}
