package extract

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/hardware"
	"repro/internal/layout"
)

// Scheme selects one of the five evaluated syndrome-extraction setups.
type Scheme uint8

// The five setups of Fig. 11.
const (
	Baseline Scheme = iota
	NaturalAllAtOnce
	NaturalInterleaved
	CompactAllAtOnce
	CompactInterleaved
)

var schemeNames = [...]string{
	"baseline",
	"natural-all-at-once",
	"natural-interleaved",
	"compact-all-at-once",
	"compact-interleaved",
}

func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", s)
}

// Schemes lists all five setups in the order of Fig. 11.
var Schemes = []Scheme{Baseline, NaturalAllAtOnce, NaturalInterleaved, CompactAllAtOnce, CompactInterleaved}

// Embedding returns the hardware embedding a scheme runs on.
func (s Scheme) Embedding() layout.EmbeddingKind {
	switch s {
	case Baseline:
		return layout.Baseline2D
	case NaturalAllAtOnce, NaturalInterleaved:
		return layout.Natural
	default:
		return layout.Compact
	}
}

// Interleaved reports whether the scheme stores the patch back after every
// extraction round (vs once per d-round super-cycle).
func (s Scheme) Interleaved() bool {
	return s == NaturalInterleaved || s == CompactInterleaved
}

// Basis chooses which memory experiment to run.
type Basis uint8

// Memory experiment bases. BasisZ protects logical |0>/|1> and decodes the
// Z-plaquette (bit-flip) graph; BasisX protects |+>/|-> and decodes the
// X-plaquette graph.
const (
	BasisZ Basis = iota
	BasisX
)

func (b Basis) String() string {
	if b == BasisZ {
		return "Z"
	}
	return "X"
}

// Sector returns the plaquette type whose detectors the experiment decodes.
func (b Basis) Sector() layout.PlaqType {
	if b == BasisZ {
		return layout.PlaqZ
	}
	return layout.PlaqX
}

// Config describes an experiment to build.
type Config struct {
	Scheme   Scheme
	Distance int
	// Rounds of syndrome extraction; 0 means Distance rounds (the paper's
	// convention for threshold experiments).
	Rounds int
	Basis  Basis
	Params hardware.Params
	// ChargeGapIdle controls whether the (k-1)-turn cavity-residency gaps
	// implied by cavity-depth serialization are charged as storage noise.
	// The Fig. 11 threshold study does not include this term (its five
	// setups measure gate/load-store/extraction-structure differences; the
	// thresholds would otherwise be dominated by the fixed storage floor
	// and could not be "comparable to the baseline"); the Fig. 12 cavity
	// T1 / cavity-size sensitivity panels are exactly the study of this
	// term and set it true. See DESIGN.md ("Substitutions").
	ChargeGapIdle bool
}

func (c *Config) rounds() int {
	if c.Rounds > 0 {
		return c.Rounds
	}
	return c.Distance
}

// Detector is one parity check the decoder sees: the XOR of the listed
// measurement records, which is 0 in every noiseless execution.
type Detector struct {
	Meas  []int        // measurement record indices
	Plaq  int          // plaquette id (spatial coordinate)
	Round int          // time coordinate (1-based; rounds+1 = data readout)
	Pos   layout.Coord // ancilla position, for diagnostics
}

// Experiment is a built memory experiment.
type Experiment struct {
	Config     Config
	Code       *layout.Code
	Emb        *layout.Embedding
	Circ       *circuit.Circuit
	Detectors  []Detector
	Observable []int // measurement records whose XOR is the logical readout

	// TransmonSlot maps transmon id -> circuit slot.
	TransmonSlot []int
	// ModeSlot maps data id -> the cavity-mode slot where it rests, or -1
	// for the baseline (data live in transmons).
	ModeSlot []int
	// FinalMeas maps data id -> measurement index of its perfect readout.
	FinalMeas []int

	// noise is the per-op re-annotation recipe (global op order), derived
	// once at build time.
	noise []opNoise
}

// Build constructs the experiment for cfg.
func Build(cfg Config) (*Experiment, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Params.CavityDepth < 1 && cfg.Scheme != Baseline {
		return nil, fmt.Errorf("extract: cavity depth %d invalid for %v", cfg.Params.CavityDepth, cfg.Scheme)
	}
	code, err := layout.NewRotated(cfg.Distance)
	if err != nil {
		return nil, err
	}
	emb, err := layout.NewEmbedding(cfg.Scheme.Embedding(), code)
	if err != nil {
		return nil, err
	}
	e := &Experiment{Config: cfg, Code: code, Emb: emb}
	switch cfg.Scheme {
	case Baseline:
		err = e.buildBaseline()
	case NaturalAllAtOnce, NaturalInterleaved:
		err = e.buildNatural()
	default:
		err = e.buildCompact()
	}
	if err != nil {
		return nil, err
	}
	if err := e.classifyNoise(); err != nil {
		return nil, err
	}
	return e, nil
}

// slotPlan allocates circuit slots: one per transmon, plus one cavity-mode
// slot per data qubit for the memory embeddings (the mode the simulated
// patch occupies; the other k-1 modes belong to other logical qubits and
// enter the model only through the serialization gaps).
func (e *Experiment) slotPlan() (nslots int, locs []circuit.Loc) {
	nt := e.Emb.NumTransmons()
	e.TransmonSlot = make([]int, nt)
	for i := range e.TransmonSlot {
		e.TransmonSlot[i] = i
		locs = append(locs, circuit.SlotTransmon)
	}
	e.ModeSlot = make([]int, e.Code.NumData())
	if e.Config.Scheme == Baseline {
		for i := range e.ModeSlot {
			e.ModeSlot[i] = -1
		}
		return nt, locs
	}
	for d := range e.ModeSlot {
		e.ModeSlot[d] = nt + d
		locs = append(locs, circuit.SlotCavityMode)
	}
	return nt + e.Code.NumData(), locs
}

// idlePolicy returns the Builder.End callback charging storage errors by
// slot location.
func (e *Experiment) idlePolicy() func(slot int, loc circuit.Loc, dur float64) float64 {
	p := e.Config.Params
	return func(_ int, loc circuit.Loc, dur float64) float64 {
		if loc == circuit.SlotTransmon {
			return p.LambdaTransmon(dur)
		}
		return p.LambdaCavity(dur)
	}
}

// recorder accumulates per-plaquette measurement histories.
type recorder struct {
	meas [][]int // plaquette id -> measurement indices in round order
}

func newRecorder(nplaq int) *recorder {
	return &recorder{meas: make([][]int, nplaq)}
}

func (r *recorder) add(plaq, measIdx int) {
	r.meas[plaq] = append(r.meas[plaq], measIdx)
}

// finishDetectors builds the detector list and observable after the circuit
// body is complete. finalMeas maps data id to its perfect-readout index.
func (e *Experiment) finishDetectors(rec *recorder, finalMeas []int) error {
	sector := e.Config.Basis.Sector()
	rounds := e.Config.rounds()
	e.FinalMeas = finalMeas
	for i := range e.Code.Plaquettes {
		p := &e.Code.Plaquettes[i]
		if p.Type != sector {
			continue
		}
		hist := rec.meas[p.ID]
		if len(hist) != rounds {
			return fmt.Errorf("extract: plaquette %d measured %d times, want %d", p.ID, len(hist), rounds)
		}
		// First record vs the deterministic preparation reference.
		e.Detectors = append(e.Detectors, Detector{
			Meas: []int{hist[0]}, Plaq: p.ID, Round: 1, Pos: p.Ancilla,
		})
		for r := 1; r < rounds; r++ {
			e.Detectors = append(e.Detectors, Detector{
				Meas: []int{hist[r-1], hist[r]}, Plaq: p.ID, Round: r + 1, Pos: p.Ancilla,
			})
		}
		// Closure: final record vs the reconstructed plaquette parity from
		// the perfect data readout.
		closure := []int{hist[rounds-1]}
		for _, q := range p.DataIdx {
			if q >= 0 {
				closure = append(closure, finalMeas[q])
			}
		}
		e.Detectors = append(e.Detectors, Detector{
			Meas: closure, Plaq: p.ID, Round: rounds + 1, Pos: p.Ancilla,
		})
	}
	support := e.Code.LogicalZ
	if e.Config.Basis == BasisX {
		support = e.Code.LogicalX
	}
	for _, q := range support {
		e.Observable = append(e.Observable, finalMeas[q])
	}
	return nil
}

// finalReadout emits the perfect closing measurement of all data qubits.
// slotOf maps data id to the slot where the data rests at the end of the
// body. In BasisX the readout is preceded by a perfect Hadamard.
func finalReadout(b *circuit.Builder, basis Basis, ndata int, slotOf func(int) int) []int {
	if basis == BasisX {
		b.Begin(0)
		for q := 0; q < ndata; q++ {
			b.H(slotOf(q), 0)
		}
		b.End(nil)
	}
	final := make([]int, ndata)
	b.Begin(0)
	for q := 0; q < ndata; q++ {
		final[q] = b.MeasureZ(slotOf(q), 0)
	}
	b.End(nil)
	return final
}
