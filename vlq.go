// Package vlq is the public API of a from-scratch Go reproduction of
// "Virtualized Logical Qubits: A 2.5D Architecture for Error-Corrected
// Quantum Computing" (Duckering, Baker, Schuster, Chong — MICRO 2020,
// arXiv:2009.01982).
//
// The library spans the full system the paper describes:
//
//   - rotated-surface-code geometry and the Natural/Compact hardware
//     embeddings with their resource accounting (Fig. 1/2/7/8, Table II);
//   - gate-level syndrome-extraction circuits for the five evaluated setups
//     (Baseline 2D; Natural and Compact, each All-at-once or Interleaved,
//     including the pipelined Fig. 10 schedule) with circuit-level Pauli
//     noise from the Table I hardware model, split into a structural build
//     and a cheap per-noise-scale re-annotation;
//   - detector-error-model extraction split the same way (an immutable
//     fault Structure reweighted per noise scale, with the decoding-graph
//     topology hoisted alongside it so each scale pays only an edge
//     reweight), word-packed 64-shot batch sampling with geometric
//     skip-sampling over rare mechanisms, union-find and exact
//     minimum-weight-matching decoders with allocation-free batch entry
//     points, a parallel Monte-Carlo engine with a bounded LRU structure
//     cache, per-worker ChaCha8 streams, optional early stopping, and an
//     importance-sampled rare-event mode (boosted proposal sampling with
//     likelihood-ratio-weighted estimates, error bars, and effective
//     sample sizes for deep sub-threshold points), a
//     sweep scheduler draining whole threshold/sensitivity grids
//     (Fig. 11 / Fig. 12) through one shared worker pool with streamed,
//     deterministic per-cell results, and an HTTP/JSON serving front end
//     (SweepServer, cmd/vlqserve) that runs sweeps as cancellable jobs
//     streaming NDJSON/SSE cells, sharing one engine across clients;
//   - the virtualized-logical-qubit machine: virtual/physical addressing,
//     load/store paging, DRAM-like refresh scheduling, qubit movement, and
//     transversal-CNOT vs lattice-surgery operation latencies (§III);
//   - magic-state distillation throughput/footprint models (Fig. 13);
//   - exact stabilizer-tableau verification, including process tomography
//     of the transversal CNOT on full logical patches (§III-B).
//
// Quickstart:
//
//	res, err := vlq.RunMonteCarlo(vlq.MonteCarloConfig{
//		Scheme:   vlq.CompactInterleaved,
//		Distance: 3,
//		Params:   vlq.DefaultHardware().ScaledGatesTo(2e-3),
//		Trials:   10_000,
//	})
//
// See examples/ for runnable scenarios and bench_test.go for the harness
// that regenerates every table and figure of the paper's evaluation.
package vlq

import (
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/dem"
	"repro/internal/extract"
	"repro/internal/fabric"
	"repro/internal/hardware"
	"repro/internal/layout"
	"repro/internal/magic"
	"repro/internal/montecarlo"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/surgery"
	"repro/internal/tomo"
)

// Hardware model (Table I).
type (
	// HardwareParams is the device model: Table I coherence times and gate
	// durations plus per-operation Pauli error probabilities.
	HardwareParams = hardware.Params
	// PhysicalAddr identifies a stack of transmons (a physical address).
	PhysicalAddr = hardware.PhysicalAddr
	// VirtualAddr is a logical qubit's resting place: stack plus cavity mode.
	VirtualAddr = hardware.VirtualAddr
)

// DefaultHardware returns the Table I starting-point hardware model.
func DefaultHardware() HardwareParams { return hardware.Default() }

// PRef is the paper's typical operating point (2e-3) used in §VI.
const PRef = hardware.PRef

// Surface-code geometry and embeddings.
type (
	// Code is a distance-d rotated surface code patch.
	Code = layout.Code
	// Embedding maps a Code onto transmons and cavities.
	Embedding = layout.Embedding
	// EmbeddingKind selects Baseline2D, Natural, or Compact.
	EmbeddingKind = layout.EmbeddingKind
	// Resources summarizes hardware cost (the Table II quantities).
	Resources = layout.Resources
)

// Embedding kinds.
const (
	Baseline2DEmbedding = layout.Baseline2D
	NaturalEmbedding    = layout.Natural
	CompactEmbedding    = layout.Compact
)

// NewRotatedCode constructs the distance-d rotated surface code.
func NewRotatedCode(d int) (*Code, error) { return layout.NewRotated(d) }

// NewEmbedding maps code c onto hardware under the given embedding kind.
func NewEmbedding(kind EmbeddingKind, c *Code) (*Embedding, error) {
	return layout.NewEmbedding(kind, c)
}

// EmbeddingResources returns the hardware cost of one distance-d patch with
// cavity depth k.
func EmbeddingResources(kind EmbeddingKind, d, k int) Resources {
	return layout.EmbeddingResources(kind, d, k)
}

// Baseline2DPatchesResources is the cost of n contiguous baseline patches.
func Baseline2DPatchesResources(n, d int) Resources {
	return layout.Baseline2DPatchesResources(n, d)
}

// Syndrome-extraction experiments.
type (
	// Scheme is one of the five evaluated extraction setups.
	Scheme = extract.Scheme
	// Basis selects the memory experiment (Z or X).
	Basis = extract.Basis
	// ExperimentConfig describes an experiment to build.
	ExperimentConfig = extract.Config
	// Experiment is a built noisy memory experiment with detectors and a
	// logical observable.
	Experiment = extract.Experiment
)

// The five extraction schemes of Fig. 11.
const (
	Baseline           = extract.Baseline
	NaturalAllAtOnce   = extract.NaturalAllAtOnce
	NaturalInterleaved = extract.NaturalInterleaved
	CompactAllAtOnce   = extract.CompactAllAtOnce
	CompactInterleaved = extract.CompactInterleaved
)

// Memory experiment bases.
const (
	BasisZ = extract.BasisZ
	BasisX = extract.BasisX
)

// Schemes lists all five setups in Fig. 11 order.
var Schemes = extract.Schemes

// BuildExperiment constructs a memory experiment.
func BuildExperiment(cfg ExperimentConfig) (*Experiment, error) { return extract.Build(cfg) }

// Detector error models and decoders.
type (
	// DetectorModel is the merged fault model of an experiment at one
	// noise scale.
	DetectorModel = dem.Model
	// DetectorStructure is the immutable, noise-independent half of a
	// detector error model: build once per circuit structure, Reweight per
	// noise scale.
	DetectorStructure = dem.Structure
	// DecodingGraphStructure is the hoisted, noise-independent half of a
	// decoding graph (detector decomposition, edge topology, boundary
	// assignment), built once per DetectorStructure and weighted per noise
	// scale.
	DecodingGraphStructure = dem.GraphStructure
	// BatchSampler draws 64 word-packed shots per pass from a model.
	BatchSampler = dem.BatchSampler
	// DecodingGraph is the weighted matching graph decoders consume.
	DecodingGraph = dem.Graph
	// Decoder predicts the logical observable from fired detectors.
	Decoder = decoder.Decoder
	// BatchDecoder decodes many shots per call with reusable buffers.
	BatchDecoder = decoder.BatchDecoder
	// DecodeBatchBuffer is the reusable flat shot container BatchDecoders
	// consume.
	DecodeBatchBuffer = decoder.Batch
)

// BuildDetectorModel enumerates and merges the experiment's faults.
func BuildDetectorModel(e *Experiment) (*DetectorModel, error) { return dem.Build(e) }

// BuildDetectorStructure enumerates and merges the experiment's faults
// without fixing probabilities; Reweight it with Experiment.NoiseProbs for
// each noise scale of a sweep.
func BuildDetectorStructure(e *Experiment) (*DetectorStructure, error) {
	return dem.BuildStructure(e)
}

// NewUnionFindDecoder returns the weighted union-find decoder (also a
// BatchDecoder).
func NewUnionFindDecoder(g *DecodingGraph) Decoder { return decoder.NewUnionFind(g) }

// NewMWPMDecoder returns the exact minimum-weight perfect-matching decoder.
func NewMWPMDecoder(g *DecodingGraph) Decoder { return decoder.NewMWPM(g) }

// NewMWPMFallbackDecoder returns exact matching with a transparent
// union-find fallback on oversized clusters (also a BatchDecoder).
func NewMWPMFallbackDecoder(g *DecodingGraph) Decoder { return decoder.NewMWPMFallback(g) }

// NewBlossomDecoder returns the sparse-blossom exact minimum-weight
// matching decoder (also a BatchDecoder): strictly minimum-weight
// corrections at union-find-like per-shot cost.
func NewBlossomDecoder(g *DecodingGraph) Decoder { return decoder.NewBlossom(g) }

// Monte-Carlo engine (Fig. 11 / Fig. 12).
type (
	// MonteCarloConfig describes one logical-error-rate measurement.
	MonteCarloConfig = montecarlo.Config
	// MonteCarloResult is its outcome.
	MonteCarloResult = montecarlo.Result
	// SweepPoint is one cell of a threshold sweep.
	SweepPoint = montecarlo.SweepPoint
	// SensitivityPanel identifies one Fig. 12 study.
	SensitivityPanel = montecarlo.Panel
	// SensitivityPoint is one cell of a sensitivity sweep.
	SensitivityPoint = montecarlo.SensitivityPoint
	// DecoderKind selects the trial decoder ("uf", "blossom", "mwpm", or
	// "exact").
	DecoderKind = montecarlo.DecoderKind
	// MonteCarloEngine caches circuit structures and detector-error-model
	// Structures across the points of a sweep.
	MonteCarloEngine = montecarlo.Engine
	// SweepOptions tunes sweeps (early stopping, rare-event mode).
	SweepOptions = montecarlo.SweepOptions
	// WeightedMonteCarloResult is the importance-sampled tally of a
	// rare-event run: likelihood-ratio-weighted estimate, variance,
	// relative error, and effective sample size, merging deterministically
	// like MonteCarloResult (see MonteCarloResult.Weighted).
	WeightedMonteCarloResult = montecarlo.WeightedResult
	// WeightedBatchSampler samples 64-shot batches from a boosted proposal
	// model while tracking per-shot log likelihood ratios against the
	// target model.
	WeightedBatchSampler = dem.WeightedBatchSampler
)

// DefaultRareEventBoost is the proposal boost factor rare-event runs use
// when MonteCarloConfig.Boost is zero.
const DefaultRareEventBoost = montecarlo.DefaultBoost

// NewWeightedBatchSampler returns a sampler drawing from proposal while
// weighting shots back to target; the models must share fault structure.
func NewWeightedBatchSampler(target, proposal *DetectorModel) (*WeightedBatchSampler, error) {
	return dem.NewWeightedBatchSampler(target, proposal)
}

// NewMonteCarloEngine returns an engine with an empty structure cache,
// bounded by LRU eviction at the default entry cap. The package-level
// RunMonteCarlo and sweep functions share one default engine; use a
// dedicated engine to bound its cache's lifetime.
func NewMonteCarloEngine() *MonteCarloEngine { return montecarlo.NewEngine() }

// NewMonteCarloEngineWithCache returns an engine whose structure cache
// holds at most maxEntries entries (LRU eviction; <= 0 disables eviction).
func NewMonteCarloEngineWithCache(maxEntries int) *MonteCarloEngine {
	return montecarlo.NewEngineWithCache(maxEntries)
}

// The sweep scheduler (serving-oriented sweep execution).
type (
	// SweepScheduler drains sweep cells through one shared worker pool over
	// a MonteCarloEngine, streaming per-cell results as they finish while
	// keeping results deterministic regardless of pool width.
	SweepScheduler = sched.Scheduler
	// SweepSchedulerOptions tunes the pool width, queue order, shard
	// stealing threshold, and result streaming.
	SweepSchedulerOptions = sched.Options
	// SweepQueueOrder selects the job-queue order (cost-descending by
	// default, FIFO as the benchmark baseline).
	SweepQueueOrder = sched.QueueOrder
	// ShardPlan is the fixed decomposition of one point's trials into
	// stealable shard units.
	ShardPlan = montecarlo.ShardPlan
	// ShardResult is one shard's mergeable tally.
	ShardResult = montecarlo.ShardResult
	// ShardBudget coordinates early stop and abort across one point's
	// shards.
	ShardBudget = montecarlo.ShardBudget
	// SweepJob is one schedulable sweep cell (a Monte-Carlo config plus an
	// opaque tag).
	SweepJob = sched.Job
	// SweepCellResult is one finished cell, indexed by submission order.
	SweepCellResult = sched.CellResult
	// ThresholdSweepCell tags a Fig. 11 grid cell on a SweepJob.
	ThresholdSweepCell = sched.ThresholdCell
	// SensitivitySweepCell tags a Fig. 12 panel cell on a SweepJob.
	SensitivitySweepCell = sched.SensitivityCell
	// MonteCarloWorkerState is the reusable per-worker scratch threaded
	// through consecutive cells by the scheduler.
	MonteCarloWorkerState = montecarlo.WorkerState
)

// Queue orders for SweepSchedulerOptions.Queue.
const (
	SweepOrderCost = sched.OrderCost
	SweepOrderFIFO = sched.OrderFIFO
)

// MinShardShots is the shot floor below which sweep-cell sharding never
// engages (see montecarlo.MinShardShots).
const MinShardShots = montecarlo.MinShardShots

// NewSweepScheduler returns a scheduler over the engine (a fresh engine if
// nil).
func NewSweepScheduler(en *MonteCarloEngine, opts SweepSchedulerOptions) *SweepScheduler {
	return sched.New(en, opts)
}

// SweepCellCost estimates a cell's relative decode cost (detectors x
// rounds x trials) — the scheduler's longest-first ordering key.
func SweepCellCost(cfg MonteCarloConfig) float64 { return sched.CellCost(cfg) }

// PlanShards returns the fixed shard plan for a trial budget under a shard
// size (0 disables; positive values are floored at MinShardShots).
func PlanShards(trials, shardShots int) ShardPlan { return montecarlo.PlanShards(trials, shardShots) }

// MergeShards folds the shards of one point into a single Result,
// deterministically in its inputs.
func MergeShards(cfg MonteCarloConfig, parts []ShardResult) (MonteCarloResult, error) {
	return montecarlo.MergeShards(cfg, parts)
}

// ThresholdSweepJobs builds a Fig. 11 grid as scheduler jobs.
func ThresholdSweepJobs(scheme Scheme, distances []int, physRates []float64, base HardwareParams, trials int, seed int64, dec DecoderKind, opts SweepOptions) []SweepJob {
	return sched.ThresholdJobs(scheme, distances, physRates, base, trials, seed, dec, opts)
}

// SensitivitySweepJobs builds one Fig. 12 panel as scheduler jobs.
func SensitivitySweepJobs(panel SensitivityPanel, values []float64, distances []int, trials int, seed int64, dec DecoderKind, opts SweepOptions) ([]SweepJob, error) {
	return sched.SensitivityJobs(panel, values, distances, trials, seed, dec, opts)
}

// The sweep-serving front end (HTTP/JSON over the scheduler).
type (
	// SweepServer is the HTTP front end: POST /v1/sweeps submits
	// threshold/sensitivity jobs whose cells stream back as NDJSON or SSE,
	// with job status/cancel, engine cache stats, and bounded concurrency.
	// It implements http.Handler; see cmd/vlqserve for a ready-made binary.
	SweepServer = serve.Server
	// SweepServerConfig tunes the server: shared engine, concurrent-job
	// and queue-depth bounds, default pool width, retained finished jobs.
	SweepServerConfig = serve.Config
	// SweepServerRequest is the POST /v1/sweeps body.
	SweepServerRequest = serve.SweepRequest
	// SweepServerCellRecord is one streamed cell (NDJSON line / SSE event).
	SweepServerCellRecord = serve.CellRecord
	// SweepServerJobStatus is one job's wire-form status.
	SweepServerJobStatus = serve.JobStatus
	// SweepServerStats is the GET /v1/stats payload.
	SweepServerStats = serve.StatsResponse
	// EngineCacheStats is a snapshot of a MonteCarloEngine's structure
	// cache counters (builds, hits, evictions, entries).
	EngineCacheStats = montecarlo.CacheStats
)

// NewSweepServer builds the HTTP sweep service (zero Config is usable: a
// fresh default engine, 2 concurrent sweeps, queue of 8).
func NewSweepServer(cfg SweepServerConfig) *SweepServer { return serve.NewServer(cfg) }

// The distributed sweep fabric (lease-based coordinator/worker cluster).
type (
	// FabricHub is the coordinator: it leases sweep shard units to
	// registered workers and merges their results exactly once per unit,
	// bit-identically to a local run — at any worker count, under any
	// fault schedule. See cmd/vlqfabric and vlqserve -fabric-listen.
	FabricHub = fabric.Hub
	// FabricHubOptions tunes the coordinator (lease TTL, clock, janitor).
	FabricHubOptions = fabric.Options
	// FabricRunOptions tunes one submitted sweep run (shard size, queue
	// order, per-cell callback).
	FabricRunOptions = fabric.RunOptions
	// FabricRun is one sweep executing over the fabric.
	FabricRun = fabric.Run
	// FabricWorker pulls leases from a coordinator and executes them on a
	// Monte-Carlo engine; see cmd/vlqworker for a ready-made binary.
	FabricWorker = fabric.Worker
	// FabricWorkerOptions tunes a worker (engine, polling, heartbeats).
	FabricWorkerOptions = fabric.WorkerOptions
	// FabricTransport is a worker's view of a coordinator: in-process
	// (FabricLocal) or HTTP/JSON (FabricHTTPTransport).
	FabricTransport = fabric.Transport
	// FabricLocal binds a worker directly to an in-process hub.
	FabricLocal = fabric.Local
	// FabricHTTPTransport speaks the fabric JSON protocol to a remote
	// coordinator (the Hub's Handler serves it).
	FabricHTTPTransport = fabric.HTTPTransport
	// FabricStats is the coordinator's counter snapshot (workers, leases,
	// exactly-once merge outcomes).
	FabricStats = fabric.Stats
)

// NewFabricHub returns a fabric coordinator ready to accept runs and
// workers.
func NewFabricHub(opts FabricHubOptions) *FabricHub { return fabric.NewHub(opts) }

// NewFabricWorker returns a fabric worker over the transport.
func NewFabricWorker(tr FabricTransport, opts FabricWorkerOptions) *FabricWorker {
	return fabric.NewWorker(tr, opts)
}

// RunMonteCarloReference measures one logical error rate on the
// pre-batching scalar engine (fresh model build per call, one RNG draw per
// mechanism per shot). It exists to benchmark and cross-check the batched
// engine.
func RunMonteCarloReference(cfg MonteCarloConfig) (MonteCarloResult, error) {
	return montecarlo.RunReference(cfg)
}

// Decoder kinds for Monte-Carlo trials: union-find, sparse-blossom exact
// matching (the production matcher), and the older exact matchers (wrapped
// with a union-find fallback past their size ceilings when used in runs).
const (
	DecodeUnionFind = montecarlo.UF
	DecodeBlossom   = montecarlo.Blossom
	DecodeMWPM      = montecarlo.MWPM
	DecodeExact     = montecarlo.Exact
)

// DecoderKinds lists every selectable decoder kind.
var DecoderKinds = decoder.Kinds

// SensitivityPanels lists the seven Fig. 12 panels.
var SensitivityPanels = montecarlo.Panels

// RunMonteCarlo measures one logical error rate.
func RunMonteCarlo(cfg MonteCarloConfig) (MonteCarloResult, error) { return montecarlo.Run(cfg) }

// ThresholdSweep runs a Fig. 11 grid for one scheme.
func ThresholdSweep(scheme Scheme, distances []int, physRates []float64, base HardwareParams, trials int, seed int64, dec DecoderKind) ([]SweepPoint, error) {
	return montecarlo.ThresholdSweep(scheme, distances, physRates, base, trials, seed, dec)
}

// EstimateThreshold interpolates the crossing point of a sweep.
func EstimateThreshold(points []SweepPoint) float64 { return montecarlo.EstimateThreshold(points) }

// DefaultPhysRates returns a log grid bracketing the threshold region.
func DefaultPhysRates(n int) []float64 { return montecarlo.DefaultPhysRates(n) }

// SensitivitySweep runs one Fig. 12 panel on Compact-Interleaved.
func SensitivitySweep(panel SensitivityPanel, values []float64, distances []int, trials int, seed int64, dec DecoderKind) ([]SensitivityPoint, error) {
	return montecarlo.SensitivitySweep(panel, values, distances, trials, seed, dec)
}

// OperatingPoint returns the §VI baseline parameters (all gate errors 2e-3).
func OperatingPoint() HardwareParams { return montecarlo.OperatingPoint() }

// The VLQ machine (the paper's core contribution).
type (
	// Machine is a virtualized-logical-qubit machine.
	Machine = core.Machine
	// MachineConfig describes one.
	MachineConfig = core.Config
	// MachineStats is its schedule accounting.
	MachineStats = core.Stats
	// QubitID names an allocated logical qubit.
	QubitID = core.QubitID
)

// NewMachine builds a VLQ machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return core.New(cfg) }

// Logical operation latencies in timesteps (rounds of d EC cycles).
const (
	CostCNOTSurgery     = surgery.CostCNOTSurgery
	CostCNOTTransversal = surgery.CostCNOTTransversal
	CostMove            = surgery.CostMove
)

// Magic-state distillation (§VII).
type (
	// DistillationProtocol is one Fig. 13 contender.
	DistillationProtocol = magic.Protocol
)

// The §VII protocols.
var (
	FastLattice  = magic.FastLattice
	SmallLattice = magic.SmallLattice
	VQubits      = magic.VQubits
	VQubitsSolo  = magic.VQubitsSolo
)

// DistillationProtocols lists the Fig. 13 contenders.
var DistillationProtocols = magic.Protocols

// Circuit15to1Counts returns the §VII 15-to-1 operation inventory.
func Circuit15to1Counts() magic.Distill15to1Counts { return magic.Circuit15to1Counts() }

// EstimateVQubitsSchedule runs the 15-to-1 dataflow on a VLQ machine.
func EstimateVQubitsSchedule(params HardwareParams, d int) (magic.ScheduleEstimate, error) {
	return magic.EstimateVQubitsSchedule(params, d)
}

// Process tomography (§III-B).
type (
	// TomographyReport is the transversal-CNOT verification result.
	TomographyReport = tomo.Report
)

// VerifyTransversalCNOT runs stabilizer process tomography of the
// transversal CNOT on two full distance-d patches sharing one stack.
func VerifyTransversalCNOT(d int) (*TomographyReport, error) {
	return tomo.VerifyTransversalCNOT(d)
}
